module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value

(* the fixture queries are literals; a parse failure is a bug here,
   not an input error *)
let twig s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let paper b author ~year ~keywords =
  let p = Doc.Builder.child b author "paper" in
  ignore (Doc.Builder.child b p ~value:(Value.Text "a title") "title");
  ignore (Doc.Builder.child b p ~value:(Value.Int year) "year");
  for i = 1 to keywords do
    ignore
      (Doc.Builder.child b p
         ~value:(Value.Text (Printf.sprintf "kw%d" i))
         "keyword")
  done;
  p

let bibliography () =
  let b = Doc.Builder.create () in
  let root = Doc.Builder.root b "bibliography" in
  (* a1: name n6, papers p4 (old, 2 keywords) and p5 (2001, 2 keywords),
     and a book *)
  let a1 = Doc.Builder.child b root "author" in
  ignore (Doc.Builder.child b a1 ~value:(Value.Text "n6") "name");
  ignore (paper b a1 ~year:1998 ~keywords:2);
  ignore (paper b a1 ~year:2001 ~keywords:2);
  let book = Doc.Builder.child b a1 "book" in
  ignore (Doc.Builder.child b book ~value:(Value.Text "book title") "title");
  (* a2: name n7, paper p8 (2002, 1 keyword) *)
  let a2 = Doc.Builder.child b root "author" in
  ignore (Doc.Builder.child b a2 ~value:(Value.Text "n7") "name");
  ignore (paper b a2 ~year:2002 ~keywords:1);
  (* a3: name, paper p9 (1999, 1 keyword) *)
  let a3 = Doc.Builder.child b root "author" in
  ignore (Doc.Builder.child b a3 ~value:(Value.Text "n9") "name");
  ignore (paper b a3 ~year:1999 ~keywords:1);
  Doc.Builder.finish b

let example_2_1_query () =
  twig
    "for t0 in //author, t1 in t0/name, t2 in t0/paper[year[. > 2000]], \
     t3 in t2/title, t4 in t2/keyword"

let figure_4 pairs =
  let b = Doc.Builder.create () in
  let root = Doc.Builder.root b "r" in
  List.iter
    (fun (nb, nc) ->
      let a = Doc.Builder.child b root "a" in
      for _ = 1 to nb do
        ignore (Doc.Builder.child b a "b")
      done;
      for _ = 1 to nc do
        ignore (Doc.Builder.child b a "c")
      done)
    pairs;
  Doc.Builder.finish b

let figure_4_doc_a () = figure_4 [ (10, 100); (100, 10) ]
let figure_4_doc_b () = figure_4 [ (10, 10); (100, 100) ]

let figure_4_query () =
  twig "for t0 in //a, t1 in t0/b, t2 in t0/c"

let movie_fragment () =
  let b = Doc.Builder.create () in
  let root = Doc.Builder.root b "movies" in
  let movie genre ~actors ~producers =
    let m = Doc.Builder.child b root "movie" in
    ignore (Doc.Builder.child b m ~value:(Value.Text genre) "type");
    for i = 1 to actors do
      ignore
        (Doc.Builder.child b m
           ~value:(Value.Text (Printf.sprintf "actor%d" i))
           "actor")
    done;
    for i = 1 to producers do
      ignore
        (Doc.Builder.child b m
           ~value:(Value.Text (Printf.sprintf "prod%d" i))
           "producer")
    done
  in
  movie "Action" ~actors:10 ~producers:3;
  movie "Action" ~actors:12 ~producers:4;
  movie "Documentary" ~actors:2 ~producers:1;
  movie "Documentary" ~actors:1 ~producers:1;
  movie "Drama" ~actors:6 ~producers:2;
  Doc.Builder.finish b
