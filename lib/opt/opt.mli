(** Cost-based ordering of twig branch evaluation.

    The paper motivates selectivity estimation as optimizer input but
    never builds the optimizer. This module closes that loop for the
    one degree of freedom the exact evaluator exposes: at every twig
    node with [k] branch sub-twigs, {!Xtwig_eval.Eval_twig} multiplies
    the branches' counts left to right and stops as soon as the
    running product hits zero — so the {e order} of branches decides
    how much work a non-matching element costs. Branch sub-twigs play
    the role of relations in a join orderer; a plan assigns every
    multi-branch node a permutation.

    The orderer is a Selinger-style dynamic program over
    bitset-encoded branch subsets (best cost and best order memoized
    per subset), costed from the caller's selectivity estimates.
    Because the estimator only sees structure and 1-d value summaries,
    value predicates are handled by an Axiom-style constraint
    propagation pass first: each predicate's range is intersected with
    the histogram's domain, the narrowed interval is priced as a
    [trueFraction], and the fractions scale the structural cardinality
    estimates before the DP runs. Propagation only ever {e narrows}:
    intervals shrink and fractions fall monotonically — the property
    suite pins this.

    Plans are advisory: applying one reorders branch evaluation but
    never changes the answer (order-invariance is the differential
    oracle in the tests). Planning itself is total — on any internal
    failure, including an injected [opt.plan] fault, it degrades to
    the identity plan, never to a wrong or raised answer. *)

(** {1 Constraint propagation} *)

type interval = { lo : float; hi : float }
(** A closed value interval; either bound may be infinite. Empty when
    [lo > hi]. *)

type refined = { itv : interval; frac : float }
(** A value constraint under propagation: the narrowed interval and
    the estimated fraction of values satisfying every predicate seen
    so far ([trueFraction], in [\[0, 1\]]). *)

val top : ?hist:Xtwig_hist.Hist1d.t -> unit -> refined
(** The unconstrained starting point: the histogram's domain (its
    min/max are the column constraints) when one is known, else
    [(-inf, +inf)]; fraction 1. *)

val constrain :
  ?hist:Xtwig_hist.Hist1d.t -> refined -> Xtwig_path.Path_types.value_pred ->
  refined
(** Intersect one predicate into a constraint. Guarantees
    [result.itv] is contained in the input interval and
    [result.frac <= frac] — propagation never widens. With a
    histogram the fraction is read off the narrowed interval
    ([frac_range] / [frac_cmp]); without one, textbook default
    selectivities apply multiplicatively. *)

val path_frac :
  (string -> Xtwig_hist.Hist1d.t option) -> Xtwig_path.Path_types.path -> float
(** Product of propagated fractions over every value predicate in a
    path (steps and nested branching predicates), looking histograms
    up by step label. 1 for predicate-free paths. *)

(** {1 The subset DP} *)

val subset_prob : float array -> int -> float
(** [subset_prob probs s]: product of [probs.(i)] over the set bits of
    [s], multiplied in increasing index order — the canonical prefix
    probability both {!order_cost} and {!best_order} use, so their
    float arithmetic agrees bit for bit (the oracle test compares them
    with [=]). *)

val order_cost : costs:float array -> probs:float array -> int array -> float
(** Modeled cost of evaluating branches in the given order:
    [sum_j costs.(o_j) * subset_prob probs (set of o_0..o_{j-1})] —
    branch [i] costs [costs.(i)] but is only reached when every
    earlier branch found a match (probability [probs.(j)] each,
    independence assumed). *)

val best_order : costs:float array -> probs:float array -> int array * float
(** The Selinger DP: subsets of branches encoded as bitsets, best
    cost/last-branch memoized per subset, order reconstructed from the
    memo. Returns an order whose {!order_cost} equals the exact
    minimum over all [k!] permutations (ties broken toward the
    identity). Arrays must have equal length [k <= 16]; beyond that a
    greedy rank order (provably optimal under the independence model)
    is used instead. *)

(** {1 Plans} *)

type node_model = { costs : float array; probs : float array }
(** The per-branch cost model the DP ran on at one twig node — kept on
    the plan so tests can replay the exhaustive oracle against it. *)

type plan = {
  orders : int array array;
      (** per pre-order twig node (same numbering as
          {!Xtwig_eval.Eval_twig}), the branch evaluation order; [[||]]
          means default order *)
  models : node_model array;  (** per node; empty arrays below 2 branches *)
  cost : float;  (** modeled cost of the chosen orders *)
  default_cost : float;  (** modeled cost of the input (syntactic) order *)
  changed : bool;  (** some order differs from the identity *)
  fallback : bool;  (** planning failed and degraded to the default order *)
}

val identity_plan : twig:Xtwig_path.Path_types.twig -> fallback:bool -> plan
(** The default-order plan (all orders empty, zero costs). *)

val plan :
  estimate:(Xtwig_path.Path_types.twig -> float) ->
  ?vhist:(string -> Xtwig_hist.Hist1d.t option) ->
  Xtwig_path.Path_types.twig ->
  plan
(** Cost and order a twig. [estimate] prices structural sub-twigs
    (typically [Estimator_backend.estimate] of a built instance);
    [vhist] resolves a step label to a value histogram for the
    propagation pass (default: none known). Total: any exception from
    the estimator — and the [opt.plan] fault point — degrades to
    {!identity_plan} with [fallback = true] (counted in
    [opt.fallbacks]). Metrics: [opt.plans], [opt.order_changed],
    [opt.fallbacks], [opt.plan_ns]; span [opt.plan]. *)

val apply : plan -> Xtwig_path.Path_types.twig -> Xtwig_path.Path_types.twig
(** Reorder the twig's sub-lists according to the plan (pre-order
    node numbering). Malformed or missing permutations leave the
    affected node's order unchanged, so [apply] is total and safe on
    any twig/plan pairing. *)

val to_lines : plan -> string list
(** Stable one-line-per-fact rendering ([cost], [default_cost],
    [changed], [fallback], one [order <node> <i...>] per reordered
    node) — shared by the CLI and the wire protocol. *)
