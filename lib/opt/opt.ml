open Xtwig_path.Path_types
module Hist1d = Xtwig_hist.Hist1d
module Value = Xtwig_xml.Value
module Counters = Xtwig_util.Counters
module Trace = Xtwig_obs.Trace
module Fault = Xtwig_fault.Fault

(* ---------------- constraint propagation ---------------- *)

type interval = { lo : float; hi : float }
type refined = { itv : interval; frac : float }

let full_interval = { lo = neg_infinity; hi = infinity }

let top ?hist () =
  let itv =
    match Option.bind hist Hist1d.domain with
    | Some (lo, hi) -> { lo; hi }
    | None -> full_interval
  in
  { itv; frac = 1.0 }

(* Textbook default selectivities, used multiplicatively when no
   histogram covers the label (System R's catalog-less fallbacks; the
   Axiom snippet's 0.8-for-unknown plays the same role). *)
let default_frac = function
  | Cmp (Eq, _) -> 0.1
  | Cmp (Ne, _) -> 0.9
  | Cmp ((Lt | Le | Ge | Gt), _) -> 0.33
  | Range _ -> 0.25

let range_of_pred = function
  | Range (a, b) -> Some (a, b)
  | Cmp (op, v) -> (
      match Value.as_float v with
      | None -> None
      | Some x -> (
          match op with
          | Lt | Le -> Some (neg_infinity, x)
          | Ge | Gt -> Some (x, infinity)
          | Eq -> Some (x, x)
          | Ne -> None))

let constrain ?hist r pred =
  let itv =
    match range_of_pred pred with
    | None -> r.itv
    | Some (a, b) -> { lo = Float.max r.itv.lo a; hi = Float.min r.itv.hi b }
  in
  let fresh =
    if itv.lo > itv.hi then 0.
    else
      match hist with
      | None -> r.frac *. default_frac pred
      | Some h -> (
          match pred with
          | Cmp (Eq, v) -> (
              match Value.as_float v with
              | Some x -> Hist1d.frac_cmp h `Eq x
              | None -> r.frac *. default_frac pred)
          | Cmp (Ne, _) -> r.frac *. default_frac pred
          | _ ->
              (* price the narrowed interval, clamped to the domain *)
              let dlo, dhi =
                match Hist1d.domain h with
                | Some (a, b) -> (a, b)
                | None -> (itv.lo, itv.hi)
              in
              let lo = Float.max itv.lo dlo and hi = Float.min itv.hi dhi in
              if lo > hi then 0. else Hist1d.frac_range h lo hi)
  in
  { itv; frac = Float.min r.frac fresh }

let rec path_frac vhist p =
  List.fold_left
    (fun acc st ->
      let acc =
        match st.vpred with
        | None -> acc
        | Some pred ->
            let hist = vhist st.label in
            let r = constrain ?hist (top ?hist ()) pred in
            acc *. r.frac
      in
      List.fold_left (fun acc bp -> acc *. path_frac vhist bp) acc st.branches)
    1.0 p

(* ---------------- the subset DP ---------------- *)

let subset_prob probs s =
  let k = Array.length probs in
  let acc = ref 1.0 in
  for i = 0 to k - 1 do
    if s land (1 lsl i) <> 0 then acc := !acc *. probs.(i)
  done;
  !acc

let order_cost ~costs ~probs order =
  let acc = ref 0.0 and s = ref 0 in
  Array.iter
    (fun i ->
      acc := !acc +. (subset_prob probs !s *. costs.(i));
      s := !s lor (1 lsl i))
    order;
  !acc

let max_dp_branches = 16

(* The classic rank rule for pipelined filters — exact under the
   independence model, used past the DP's subset budget. *)
let greedy_order ~costs ~probs =
  let k = Array.length costs in
  let idx = Array.init k Fun.id in
  let rank i = costs.(i) /. Float.max 1e-12 (1. -. probs.(i)) in
  Array.stable_sort (fun a b -> compare (rank a) (rank b)) idx;
  (idx, order_cost ~costs ~probs idx)

let best_order ~costs ~probs =
  let k = Array.length costs in
  if k <> Array.length probs then invalid_arg "Opt.best_order: length mismatch";
  if k <= 1 then
    let o = Array.init k Fun.id in
    (o, order_cost ~costs ~probs o)
  else if k > max_dp_branches then greedy_order ~costs ~probs
  else begin
    let n = 1 lsl k in
    (* canonical subset probability: strip the highest bit, so the
       product multiplies in increasing index order — bit-identical to
       subset_prob *)
    let prob = Array.make n 1.0 in
    for s = 1 to n - 1 do
      let hi = ref 0 in
      for i = 0 to k - 1 do
        if s land (1 lsl i) <> 0 then hi := i
      done;
      prob.(s) <- prob.(s land lnot (1 lsl !hi)) *. probs.(!hi)
    done;
    let cost = Array.make n infinity in
    let last = Array.make n (-1) in
    cost.(0) <- 0.;
    for s = 0 to n - 1 do
      if cost.(s) < infinity then
        for i = 0 to k - 1 do
          if s land (1 lsl i) = 0 then begin
            let ns = s lor (1 lsl i) in
            let c = cost.(s) +. (prob.(s) *. costs.(i)) in
            if c < cost.(ns) then begin
              cost.(ns) <- c;
              last.(ns) <- i
            end
          end
        done
    done;
    let order = Array.make k 0 in
    let s = ref (n - 1) in
    for j = k - 1 downto 0 do
      let i = last.(!s) in
      order.(j) <- i;
      s := !s land lnot (1 lsl i)
    done;
    (* prefer the identity on cost ties: reordering for free churns
       plans (and CI diffs) without buying anything *)
    let id = Array.init k Fun.id in
    if order_cost ~costs ~probs id <= cost.(n - 1) then
      (id, order_cost ~costs ~probs id)
    else (order, cost.(n - 1))
  end

(* ---------------- plans ---------------- *)

type node_model = { costs : float array; probs : float array }

type plan = {
  orders : int array array;
  models : node_model array;
  cost : float;
  default_cost : float;
  changed : bool;
  fallback : bool;
}

let empty_model = { costs = [||]; probs = [||] }

let identity_plan ~twig ~fallback =
  let n = twig_size twig in
  {
    orders = Array.make n [||];
    models = Array.make n empty_model;
    cost = 0.;
    default_cost = 0.;
    changed = false;
    fallback;
  }

let is_identity perm =
  let ok = ref true in
  Array.iteri (fun i v -> if v <> i then ok := false) perm;
  !ok

let is_permutation perm k =
  Array.length perm = k
  &&
  let seen = Array.make k false in
  Array.for_all
    (fun i -> i >= 0 && i < k && not seen.(i) && (seen.(i) <- true; true))
    perm

let apply p t =
  let ctr = ref 0 in
  let rec go t =
    let id = !ctr in
    incr ctr;
    let kids = List.map go t.subs in
    let perm = if id < Array.length p.orders then p.orders.(id) else [||] in
    let k = List.length kids in
    let subs =
      if k >= 2 && is_permutation perm k then
        let a = Array.of_list kids in
        Array.to_list (Array.map (fun i -> a.(i)) perm)
      else kids
    in
    { t with subs }
  in
  go t

let to_lines p =
  let b = Printf.sprintf in
  let head =
    [
      b "cost %.6g" p.cost;
      b "default_cost %.6g" p.default_cost;
      b "changed %b" p.changed;
      b "fallback %b" p.fallback;
    ]
  in
  let orders = ref [] in
  Array.iteri
    (fun tn perm ->
      if Array.length perm >= 2 then
        orders :=
          b "order %d %s" tn
            (String.concat " "
               (Array.to_list (Array.map string_of_int perm)))
          :: !orders)
    p.orders;
  head @ List.rev !orders

(* value predicates are priced by propagation, not by the structural
   estimator: strip them from the twigs we cost *)
let rec strip_path p =
  List.map
    (fun st ->
      { st with vpred = None; branches = List.map strip_path st.branches })
    p

let rec strip_twig t =
  { path = strip_path t.path; subs = List.map strip_twig t.subs }

let m_plans = Counters.counter "opt.plans"
let m_changed = Counters.counter "opt.order_changed"
let m_fallbacks = Counters.counter "opt.fallbacks"
let t_plan = Counters.timer "opt.plan_ns"

let compute_plan ~estimate ~vhist t =
  Fault.point "opt.plan";
  let n = twig_size t in
  let node_path = Array.make n [] in
  let children = Array.make n [||] in
  let parent = Array.make n (-1) in
  let subtree = Array.make n t in
  let ctr = ref 0 in
  let rec index par t =
    let id = !ctr in
    incr ctr;
    node_path.(id) <- t.path;
    parent.(id) <- par;
    subtree.(id) <- t;
    children.(id) <- Array.of_list (List.map (index id) t.subs);
    id
  in
  ignore (index (-1) t);
  (* propagated trueFraction of each node's own path, and its product
     down a root chain / over a subtree *)
  let frac = Array.init n (fun v -> path_frac vhist node_path.(v)) in
  let chain_frac = Array.make n 1.0 in
  for v = 0 to n - 1 do
    chain_frac.(v) <-
      (if parent.(v) < 0 then 1.0 else chain_frac.(parent.(v))) *. frac.(v)
  done;
  let rec tree_frac v =
    Array.fold_left (fun acc c -> acc *. tree_frac c) frac.(v) children.(v)
  in
  (* chain_twig v ~tail: the root .. v ancestor chain with [tail]
     grafted under v — the structural sub-queries the estimator
     prices *)
  let rec chain_twig v ~tail =
    let t = { path = node_path.(v); subs = tail } in
    if parent.(v) < 0 then t else chain_twig parent.(v) ~tail:[ t ]
  in
  (* card.(v): estimated binding tuples of the chain down to v,
     value fractions applied; full.(v): same with v's whole subtree
     attached below its parent — drives the early-exit probability *)
  let card =
    Array.init n (fun v ->
        Float.max 0.
          (estimate (strip_twig (chain_twig v ~tail:[])) *. chain_frac.(v)))
  in
  let full =
    Array.init n (fun v ->
        if parent.(v) < 0 then card.(v)
        else
          let sub = strip_twig subtree.(v) in
          let q = chain_twig parent.(v) ~tail:[ sub ] in
          Float.max 0.
            (estimate (strip_twig q)
            *. chain_frac.(parent.(v))
            *. tree_frac v))
  in
  let orders = Array.make n [||] in
  let models = Array.make n empty_model in
  (* per-binding evaluation cost at node v: order the branches by the
     DP, each branch costing one path evaluation plus its expected
     matches times the child's own cost, reached only while every
     earlier branch kept the running product non-zero *)
  let rec node_cost v =
    let kids = children.(v) in
    let k = Array.length kids in
    if k = 0 then (0., 0.)
    else begin
      let denom = Float.max 1e-9 card.(v) in
      let sub = Array.map node_cost kids in
      let m = Array.map (fun c -> card.(c) /. denom) kids in
      let p =
        Array.map (fun c -> Float.min 1.0 (full.(c) /. denom)) kids
      in
      let costs =
        Array.init k (fun i -> 1.0 +. (m.(i) *. (1.0 +. fst sub.(i))))
      in
      let dcosts =
        Array.init k (fun i -> 1.0 +. (m.(i) *. (1.0 +. snd sub.(i))))
      in
      let order, best = best_order ~costs ~probs:p in
      orders.(v) <- order;
      models.(v) <- { costs; probs = p };
      let def = order_cost ~costs:dcosts ~probs:p (Array.init k Fun.id) in
      (best, def)
    end
  in
  let best, def = node_cost 0 in
  let weight = Float.max 1.0 card.(0) in
  let changed =
    Array.exists (fun o -> Array.length o >= 2 && not (is_identity o)) orders
  in
  {
    orders;
    models;
    cost = weight *. best;
    default_cost = weight *. def;
    changed;
    fallback = false;
  }

let plan ~estimate ?(vhist = fun _ -> None) t =
  Counters.incr m_plans;
  Counters.time t_plan (fun () ->
      Trace.with_span ~name:"opt.plan" (fun () ->
          match compute_plan ~estimate ~vhist t with
          | p ->
              if p.changed then Counters.incr m_changed;
              p
          | exception _ ->
              Counters.incr m_fallbacks;
              identity_plan ~twig:t ~fallback:true))
