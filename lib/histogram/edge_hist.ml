type bucket = {
  frac : float;
  count : int;
  mean : float array;
  lo : int array;
  hi : int array;
}

(* Interned flat bucket table: the bucket list of one histogram laid
   out as dense arrays (bucket-major for the per-dimension columns),
   with the context bounds pre-widened by the ±0.5 compatibility slack
   and P(count >= 1) precomputed per (bucket, dim). Tables are
   hash-consed on their content, so structurally identical histograms
   — common across XBUILD's incremental rebuilds — share one table and
   one identity key ([tid]), which makes "same histogram?" an integer
   comparison for compiled-plan validation. *)
type table = {
  tid : int;
  tdims : int;
  tn : int;  (* bucket count *)
  tfrac : float array;  (* tn *)
  tmean : float array;  (* tn * tdims, bucket-major *)
  tp1 : float array;  (* tn * tdims: p_ge1 per (bucket, dim) *)
  tlo : float array;  (* tn * tdims: float lo - 0.5 *)
  thi : float array;  (* tn * tdims: float hi + 0.5 *)
}

type t = {
  dims : int;
  buckets : bucket list;
  exact : bool;
  (* lazily-computed interned table; the benign race (two domains
     computing it concurrently) resolves to the same canonical table,
     so a torn publish can at worst duplicate the computation *)
  mutable tbl : table option;
}

(* A cell groups points during construction. *)
type cell = { pts : (int array * int) list; weight : int }

let cell_of_points pts =
  { pts; weight = List.fold_left (fun a (_, m) -> a + m) 0 pts }

let bucket_of_cell dims total cell =
  let mean = Array.make dims 0.0 in
  let lo = Array.make dims max_int in
  let hi = Array.make dims min_int in
  List.iter
    (fun (v, m) ->
      for d = 0 to dims - 1 do
        mean.(d) <- mean.(d) +. (float_of_int (v.(d) * m));
        if v.(d) < lo.(d) then lo.(d) <- v.(d);
        if v.(d) > hi.(d) then hi.(d) <- v.(d)
      done)
    cell.pts;
  let w = float_of_int cell.weight in
  for d = 0 to dims - 1 do
    mean.(d) <- mean.(d) /. w
  done;
  { frac = w /. float_of_int total; count = cell.weight; mean; lo; hi }

(* Weighted variance of a cell along one dimension. *)
let variance cell d =
  let w = float_of_int cell.weight in
  let mean =
    List.fold_left (fun a (v, m) -> a +. float_of_int (v.(d) * m)) 0.0 cell.pts
    /. w
  in
  List.fold_left
    (fun a (v, m) ->
      let dx = float_of_int v.(d) -. mean in
      a +. (float_of_int m *. dx *. dx))
    0.0 cell.pts
  /. w

(* Split a cell along dimension [d] at the weighted median value,
   keeping equal values together. Returns None if all values equal. *)
let split_cell cell d =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a.(d) b.(d)) cell.pts in
  match sorted with
  | [] | [ _ ] -> None
  | (first, _) :: _ ->
      let vmin = first.(d) in
      let half = cell.weight / 2 in
      let rec cut acc accw = function
        | [] -> None
        | ((v, m) as p) :: rest ->
            if accw >= half && accw > 0 && v.(d) > vmin then
              Some (List.rev acc, p :: rest)
            else cut (p :: acc) (accw + m) rest
      in
      (match cut [] 0 sorted with
      | Some (l, r) when l <> [] && r <> [] ->
          Some (cell_of_points l, cell_of_points r)
      | _ -> (
          (* fall back: cut at the first value change *)
          let rec cut2 acc = function
            | [] -> None
            | ((v, _) as p) :: rest ->
                if v.(d) > vmin && acc <> [] then Some (List.rev acc, p :: rest)
                else cut2 (p :: acc) rest
          in
          match cut2 [] sorted with
          | Some (l, r) -> Some (cell_of_points l, cell_of_points r)
          | None -> None))

let build ?(budget = 32) dist =
  let budget = Stdlib.max 1 budget in
  let dims = Sparse_dist.dims dist in
  let total = Sparse_dist.total dist in
  let points = Sparse_dist.points dist in
  if total = 0 then { dims; buckets = []; exact = true; tbl = None }
  else begin
    let cells = ref [ cell_of_points points ] in
    let n_cells = ref 1 in
    let continue = ref true in
    while !continue && !n_cells < budget do
      (* pick the (cell, dim) with the largest weighted variance *)
      let best = ref None in
      List.iter
        (fun c ->
          if List.length c.pts > 1 then
            for d = 0 to dims - 1 do
              let score = float_of_int c.weight *. variance c d in
              match !best with
              | Some (s, _, _) when s >= score -> ()
              | _ -> if score > 0.0 then best := Some (score, c, d)
            done)
        !cells;
      match !best with
      | None -> continue := false
      | Some (_, cell, d) -> (
          match split_cell cell d with
          | None -> continue := false
          | Some (l, r) ->
              cells := l :: r :: List.filter (fun c -> c != cell) !cells;
              incr n_cells)
    done;
    let buckets = List.map (bucket_of_cell dims total) !cells in
    let exact = List.for_all (fun c -> List.length c.pts = 1) !cells in
    { dims; buckets; exact; tbl = None }
  end

let exact dist = build ~budget:max_int dist

let dims t = t.dims
let bucket_count t = List.length t.buckets
let buckets t = t.buckets
let total_frac t = List.fold_left (fun a b -> a +. b.frac) 0.0 t.buckets
let is_exact t = t.exact

let compatible b ctx =
  List.for_all
    (fun (d, v) ->
      v >= float_of_int b.lo.(d) -. 0.5 && v <= float_of_int b.hi.(d) +. 0.5)
    ctx

let ctx_distance b ctx =
  List.fold_left
    (fun a (d, v) ->
      let dx = b.mean.(d) -. v in
      a +. (dx *. dx))
    0.0 ctx

let enum_buckets t ~ctx =
  match t.buckets with
  | [] -> []
  | all -> (
      match ctx with
      | [] -> List.map (fun b -> (b.frac, b)) all
      | _ -> (
          let ok = List.filter (fun b -> compatible b ctx) all in
          match ok with
          | [] ->
              (* nearest-bucket fallback so estimates never drop to 0
                 because two bucketizations disagree *)
              let best =
                List.fold_left
                  (fun acc b ->
                    match acc with
                    | Some (d0, _) when d0 <= ctx_distance b ctx -> acc
                    | _ -> Some (ctx_distance b ctx, b))
                  None all
              in
              (match best with Some (_, b) -> [ (1.0, b) ] | None -> [])
          | _ ->
              let mass = List.fold_left (fun a b -> a +. b.frac) 0.0 ok in
              List.map (fun b -> (b.frac /. mass, b)) ok))

let enum t ~ctx = List.map (fun (w, b) -> (w, b.mean)) (enum_buckets t ~ctx)

let p_ge1 b d =
  if b.lo.(d) >= 1 then 1.0
  else if b.hi.(d) = 0 then 0.0
  else Stdlib.min 1.0 b.mean.(d)

(* ------------------------------------------------------------------ *)
(* Hash-consed flat tables                                             *)

(* The intern key is the full table content (sans id). [count] is not
   part of it: estimation reads only frac/mean/lo/hi, so histograms
   differing only in absolute counts are interchangeable here. *)
let intern_tbl :
    ( int * float array * float array * float array * float array * float array,
      table )
    Hashtbl.t =
  Hashtbl.create 256

let intern_lock = Mutex.create ()
let next_tid = ref 0 (* guarded by intern_lock *)

let table t =
  match t.tbl with
  | Some tb -> tb
  | None ->
      let n = List.length t.buckets in
      let k = t.dims in
      let tfrac = Array.make n 0.0 in
      let nk = n * k in
      let tmean = Array.make nk 0.0 in
      let tp1 = Array.make nk 0.0 in
      let tlo = Array.make nk 0.0 in
      let thi = Array.make nk 0.0 in
      List.iteri
        (fun b bucket ->
          tfrac.(b) <- bucket.frac;
          for d = 0 to k - 1 do
            let o = (b * k) + d in
            tmean.(o) <- bucket.mean.(d);
            tp1.(o) <- p_ge1 bucket d;
            tlo.(o) <- float_of_int bucket.lo.(d) -. 0.5;
            thi.(o) <- float_of_int bucket.hi.(d) +. 0.5
          done)
        t.buckets;
      let key = (k, tfrac, tmean, tp1, tlo, thi) in
      Mutex.lock intern_lock;
      let tb =
        match Hashtbl.find_opt intern_tbl key with
        | Some tb -> tb
        | None ->
            let tb =
              {
                tid = !next_tid;
                tdims = k;
                tn = n;
                tfrac;
                tmean;
                tp1;
                tlo;
                thi;
              }
            in
            incr next_tid;
            Hashtbl.add intern_tbl key tb;
            tb
      in
      Mutex.unlock intern_lock;
      t.tbl <- Some tb;
      tb

let table_id t = (table t).tid

let interned_tables () =
  Mutex.lock intern_lock;
  let n = Hashtbl.length intern_tbl in
  Mutex.unlock intern_lock;
  n

let marginal_frac t ~ctx =
  List.fold_left
    (fun a b -> if compatible b ctx then a +. b.frac else a)
    0.0 t.buckets

let expected_product t ~over =
  List.fold_left
    (fun acc b ->
      let p = List.fold_left (fun p d -> p *. b.mean.(d)) 1.0 over in
      acc +. (b.frac *. p))
    0.0 t.buckets

let mean t d = expected_product t ~over:[ d ]

let size_bytes t = bucket_count t * 4 * ((2 * t.dims) + 1)

let pp ppf t =
  Format.fprintf ppf "@[<v>edge-hist: %d dims, %d buckets%s@," t.dims
    (bucket_count t)
    (if t.exact then " (exact)" else "");
  List.iter
    (fun b ->
      Format.fprintf ppf "  f=%.4f n=%d mean=[%s]@," b.frac b.count
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%.2f") b.mean))))
    t.buckets;
  Format.fprintf ppf "@]"
