(** Budgeted multidimensional histograms over integer count vectors —
    the edge-histograms [H_i(C_1, ..., C_k)] of Definition 3.1.

    The exact {!Sparse_dist} is compressed into at most [budget]
    buckets by recursive MHIST-style splitting: starting from a single
    bucket holding every point, the bucket/dimension pair with the
    largest weighted variance is split at its weighted median until
    the budget is reached or every bucket is a single point. When the
    distribution's support fits the budget the histogram is exact and
    estimation over it is error-free (the property the paper's
    zero-error discussions rely on).

    Within a bucket, dimensions are treated as independent and
    concentrated at their (weighted) mean — the standard uniform-
    bucket assumption. *)

type bucket = {
  frac : float;  (** fraction of elements in this bucket *)
  count : int;  (** number of underlying elements *)
  mean : float array;  (** weighted mean count per dimension *)
  lo : int array;  (** per-dimension minimum *)
  hi : int array;  (** per-dimension maximum *)
}

type t

val build : ?budget:int -> Sparse_dist.t -> t
(** [budget] is the maximum bucket count (default 32, min 1). *)

val exact : Sparse_dist.t -> t
(** One bucket per distinct vector, regardless of size. *)

val dims : t -> int
val bucket_count : t -> int
val buckets : t -> bucket list
val total_frac : t -> float
(** 1.0 for non-empty distributions, 0.0 for empty ones. *)

val is_exact : t -> bool
(** True when every bucket holds a single distinct vector. *)

val enum : t -> ctx:(int * float) list -> (float * float array) list
(** Conditional enumeration: the buckets compatible with the context
    (a [dim -> value] partial assignment), with their fractions
    renormalized to sum to 1, paired with their mean vectors. A bucket
    is compatible when the context value falls within its per-
    dimension range (±0.5 slack). If no bucket is compatible, the
    nearest bucket by mean distance on the context dimensions is
    returned with weight 1 — the estimator must not lose mass merely
    because bucketizations disagree. [ctx = \[\]] enumerates all
    buckets. Empty histograms enumerate nothing. *)

val enum_buckets : t -> ctx:(int * float) list -> (float * bucket) list
(** As {!enum}, but returning the full buckets, so callers can read
    per-dimension bounds (e.g. to bound [P(count >= 1)] within a
    bucket). *)

val p_ge1 : bucket -> int -> float
(** [P(count on dim >= 1)] within a bucket: 1 when the bucket's lower
    bound is >= 1, 0 when its upper bound is 0, and the capped mean
    otherwise (the within-bucket uniformity approximation). Exact on
    single-point buckets. *)

val marginal_frac : t -> ctx:(int * float) list -> float
(** Unnormalized mass of the context-compatible buckets — the
    [H_i(C ∩ C')] denominator of the Correlation-Scope Independence
    assumption. *)

val expected_product : t -> over:int list -> float
(** [Σ_b frac(b) · Π_{d ∈ over} mean_b(d)]; repeats allowed. *)

val mean : t -> int -> float

(** {1 Hash-consed flat bucket tables}

    The compiled estimation kernel (see [lib/xsketch/plan.ml]) iterates
    buckets in tight array loops. {!table} lays the bucket list out as
    dense arrays and {e interns} the result on its content: two
    histograms with identical buckets — the common case across XBUILD's
    incremental sketch rebuilds — share one table, and sharing is
    checkable by comparing {!table_id}s (or the tables physically).
    Interning is thread-safe; the per-histogram memo field makes
    repeated calls free. *)

type table = private {
  tid : int;  (** identity key, unique per distinct content *)
  tdims : int;
  tn : int;  (** bucket count *)
  tfrac : float array;  (** [tn] bucket fractions, in bucket order *)
  tmean : float array;  (** [tn * tdims], bucket-major mean vectors *)
  tp1 : float array;  (** [tn * tdims], {!p_ge1} per (bucket, dim) *)
  tlo : float array;  (** [tn * tdims], lower bounds minus the 0.5 slack *)
  thi : float array;  (** [tn * tdims], upper bounds plus the 0.5 slack *)
}

val table : t -> table
(** The interned flat table of this histogram (memoized). *)

val table_id : t -> int
(** [table_id a = table_id b] iff [a] and [b] have identical bucket
    contents (fractions, means, bounds). *)

val interned_tables : unit -> int
(** Number of distinct tables interned process-wide (monotone; exposed
    for tests and leak diagnostics). *)

val size_bytes : t -> int
(** Storage charge: 4 bytes per stored scalar — per bucket one
    fraction plus a packed (mean, range) scalar pair per dimension:
    [4 * (2*dims + 1)] bytes per bucket. *)

val pp : Format.formatter -> t -> unit
