(* Per-tenant service-level objectives: declared latency/error
   targets, outcome attribution counters and error-budget burn rate.

   An objective declares at most two targets: a p99 latency bound and
   an allowed error-rate fraction. The tracker classifies every
   finished request into ok / degraded / failed / shed, counts each
   class per tenant in the Metrics registry (so exposition and
   snapshots see them), and maintains a burn-rate gauge: how fast the
   tenant is spending its error budget, where 1.0 means "exactly at
   the objective". Burn rate is the max of
     - (failed + shed) / requests / err_rate_objective, and
     - over-latency fraction / 1% (a p99 bound allows 1% of requests
       over it by definition),
   each term dropping out when its target is undeclared. *)

type objective = { p99_s : float option; err_rate : float option }

let no_objective = { p99_s = None; err_rate = None }

type outcome = Served_ok | Served_degraded | Failed | Shed

(* ------------------------------------------------------------------ *)
(* Objective-spec parsing: "tenant=p99:5ms,err:0.1%"                   *)

let parse_duration s =
  let num suffix =
    let body = String.sub s 0 (String.length s - String.length suffix) in
    float_of_string_opt body
  in
  let ends suffix =
    let ls = String.length s and lx = String.length suffix in
    ls > lx && String.sub s (ls - lx) lx = suffix
  in
  if ends "ms" then Option.map (fun v -> v /. 1e3) (num "ms")
  else if ends "us" then Option.map (fun v -> v /. 1e6) (num "us")
  else if ends "s" then num "s"
  else None

let parse_rate s =
  let ls = String.length s in
  if ls > 1 && s.[ls - 1] = '%' then
    Option.map (fun v -> v /. 100.0) (float_of_string_opt (String.sub s 0 (ls - 1)))
  else float_of_string_opt s

let parse_objective parts =
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun o ->
          match String.index_opt part ':' with
          | Some i -> (
              let key = String.sub part 0 i in
              let v = String.sub part (i + 1) (String.length part - i - 1) in
              match key with
              | "p99" -> (
                  match parse_duration v with
                  | Some d when d > 0.0 -> Ok { o with p99_s = Some d }
                  | _ -> Error (Printf.sprintf "bad p99 duration %S (want e.g. 5ms)" v))
              | "err" -> (
                  match parse_rate v with
                  | Some r when r >= 0.0 && r <= 1.0 -> Ok { o with err_rate = Some r }
                  | _ -> Error (Printf.sprintf "bad err rate %S (want e.g. 0.1%%)" v))
              | k -> Error (Printf.sprintf "unknown objective %S (want p99 or err)" k))
          | None -> Error (Printf.sprintf "bad objective %S (want KEY:VALUE)" part)))
    (Ok no_objective) parts

let parse spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
      let tenant = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match parse_objective (String.split_on_char ',' rest) with
      | Ok o -> Ok (tenant, o)
      | Error e -> Error (Printf.sprintf "--slo %s: %s" tenant e))
  | _ -> Error (Printf.sprintf "bad SLO spec %S (want TENANT=p99:5ms,err:0.1%%)" spec)

let parse_all specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun l -> Result.map (fun t -> t :: l) (parse spec)))
    (Ok []) specs
  |> Result.map List.rev

let objective_text o =
  let parts =
    (match o.p99_s with
    | Some d -> [ Printf.sprintf "p99:%gms" (d *. 1e3) ]
    | None -> [])
    @
    match o.err_rate with
    | Some r -> [ Printf.sprintf "err:%g%%" (r *. 100.0) ]
    | None -> []
  in
  match parts with [] -> "(none)" | _ -> String.concat "," parts

(* ------------------------------------------------------------------ *)
(* Tracking                                                            *)

type cells = {
  objective : objective;
  c_requests : Metrics.counter;
  c_ok : Metrics.counter;
  c_degraded : Metrics.counter;
  c_failed : Metrics.counter;
  c_shed : Metrics.counter;
  c_lat_viol : Metrics.counter;
  g_burn : Metrics.gauge;
}

type t = {
  declared : (string * objective) list;
  table : (string, cells) Hashtbl.t;
  table_lock : Mutex.t;
}

let cells_for objective tenant =
  let labels = [ ("tenant", tenant) ] in
  {
    objective;
    c_requests =
      Metrics.counter ~help:"requests classified for SLO accounting" ~labels
        "slo.requests";
    c_ok = Metrics.counter ~labels "slo.ok";
    c_degraded =
      Metrics.counter ~help:"served with degraded fidelity (coarse fallback)"
        ~labels "slo.degraded";
    c_failed = Metrics.counter ~help:"typed error responses" ~labels "slo.failed";
    c_shed = Metrics.counter ~help:"requests shed by admission control" ~labels "slo.shed";
    c_lat_viol =
      Metrics.counter ~help:"served over the tenant's p99 latency objective"
        ~labels "slo.latency_violations";
    g_burn =
      Metrics.gauge
        ~help:"error-budget burn rate (1.0 = exactly at objective)" ~labels
        "slo.burn_rate";
  }

let create declared =
  let t =
    { declared; table = Hashtbl.create 8; table_lock = Mutex.create () }
  in
  (* pre-register declared tenants so their series exist (at zero)
     before the first request *)
  List.iter
    (fun (tenant, o) ->
      Hashtbl.replace t.table tenant (cells_for o tenant))
    declared;
  t

let cells t tenant =
  Mutex.lock t.table_lock;
  let c =
    match Hashtbl.find_opt t.table tenant with
    | Some c -> c
    | None ->
        (* undeclared tenants are tracked (attribution is always
           useful) against an empty objective: burn rate stays 0 *)
        let c = cells_for no_objective tenant in
        Hashtbl.add t.table tenant c;
        c
  in
  Mutex.unlock t.table_lock;
  c

let burn_of c =
  let reqs = float_of_int (Metrics.counter_value c.c_requests) in
  if reqs <= 0.0 then 0.0
  else
    let err_burn =
      match c.objective.err_rate with
      | Some r when r > 0.0 ->
          let bad =
            float_of_int
              (Metrics.counter_value c.c_failed + Metrics.counter_value c.c_shed)
          in
          bad /. reqs /. r
      | Some _ ->
          (* a 0% objective: any error is an infinite burn; cap to a
             large finite value so exposition stays numeric *)
          if Metrics.counter_value c.c_failed + Metrics.counter_value c.c_shed > 0
          then 1e9
          else 0.0
      | None -> 0.0
    in
    let lat_burn =
      match c.objective.p99_s with
      | Some _ ->
          let over = float_of_int (Metrics.counter_value c.c_lat_viol) in
          over /. reqs /. 0.01
      | None -> 0.0
    in
    Float.max err_burn lat_burn

let record t ~tenant ?latency_s outcome =
  let c = cells t tenant in
  Metrics.incr c.c_requests;
  (match outcome with
  | Served_ok -> Metrics.incr c.c_ok
  | Served_degraded -> Metrics.incr c.c_degraded
  | Failed -> Metrics.incr c.c_failed
  | Shed -> Metrics.incr c.c_shed);
  (match (outcome, latency_s, c.objective.p99_s) with
  | (Served_ok | Served_degraded), Some l, Some bound when l > bound ->
      Metrics.incr c.c_lat_viol
  | _ -> ());
  Metrics.set c.g_burn (burn_of c)

let burn_rate t tenant =
  Mutex.lock t.table_lock;
  let c = Hashtbl.find_opt t.table tenant in
  Mutex.unlock t.table_lock;
  match c with Some c -> burn_of c | None -> 0.0

let tenants t =
  Mutex.lock t.table_lock;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  Mutex.unlock t.table_lock;
  List.sort compare names

let objective_of t tenant =
  Mutex.lock t.table_lock;
  let c = Hashtbl.find_opt t.table tenant in
  Mutex.unlock t.table_lock;
  match c with Some c -> Some c.objective | None -> None

let report_tenant t tenant =
  let c = cells t tenant in
  Printf.sprintf
    "slo %s: objective %s requests %d ok %d degraded %d failed %d shed %d \
     latency_violations %d burn_rate %.3f"
    tenant (objective_text c.objective)
    (Metrics.counter_value c.c_requests)
    (Metrics.counter_value c.c_ok)
    (Metrics.counter_value c.c_degraded)
    (Metrics.counter_value c.c_failed)
    (Metrics.counter_value c.c_shed)
    (Metrics.counter_value c.c_lat_viol)
    (burn_of c)

let report t =
  let buf = Buffer.create 256 in
  List.iter
    (fun tenant ->
      Buffer.add_string buf (report_tenant t tenant);
      Buffer.add_char buf '\n')
    (tenants t);
  Buffer.contents buf
