(** Per-tenant service-level objectives: declared latency/error
    targets, outcome attribution and error-budget burn rate.

    Objectives are declared as [TENANT=p99:5ms,err:0.1%] (either part
    optional; durations take [us]/[ms]/[s] suffixes; rates take a [%]
    suffix or a bare fraction). Every finished request is classified —
    served at full fidelity, served degraded, failed with a typed
    error, or shed by admission control — into per-tenant counters in
    the {!Metrics} registry ([slo.requests], [slo.ok], [slo.degraded],
    [slo.failed], [slo.shed], [slo.latency_violations], each labeled
    [{tenant=…}]), and a [slo.burn_rate] gauge tracks how fast the
    tenant spends its error budget: 1.0 means exactly at objective,
    above 1.0 the budget is burning down. Undeclared tenants are
    tracked for attribution with an empty objective (burn rate 0). *)

type objective = { p99_s : float option; err_rate : float option }

val no_objective : objective

type outcome = Served_ok | Served_degraded | Failed | Shed

val parse : string -> (string * objective, string) result
(** One [TENANT=p99:5ms,err:0.1%] spec. *)

val parse_all : string list -> ((string * objective) list, string) result

val objective_text : objective -> string
(** Round-trippable rendering, ["(none)"] for {!no_objective}. *)

type t

val create : (string * objective) list -> t
(** Declared tenants' metric series are registered immediately (at
    zero), so they appear in exposition before the first request. *)

val record : t -> tenant:string -> ?latency_s:float -> outcome -> unit
(** Classify one finished request. [latency_s] (served outcomes only)
    is checked against the tenant's p99 bound; over-bound requests
    count as latency violations. Updates the burn-rate gauge. *)

val burn_rate : t -> string -> float
(** Max over declared targets of (observed bad fraction / allowed bad
    fraction); a p99 bound allows 1% over-bound by definition. 0.0 for
    unknown tenants or empty objectives. *)

val tenants : t -> string list
(** All tracked tenants (declared plus observed), sorted. *)

val objective_of : t -> string -> objective option

val report_tenant : t -> string -> string
(** One tenant's line: objective, outcome counts
    (ok/degraded/failed/shed/latency violations), burn rate. *)

val report : t -> string
(** {!report_tenant} for every tracked tenant, one line each. *)
