(* A process-wide metrics registry: counters, gauges and fixed-bucket
   histograms, optionally labeled. Cells are registered once (module
   initialization) and updated from any domain; reads tolerate
   concurrent writers (a snapshot is consistent per cell, not across
   cells, which is all the harness needs). *)

type counter = { cr_cell : int Atomic.t }
type gauge = { ga_cell : float Atomic.t }

type histogram = {
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_counts : int Atomic.t array; (* length bounds + 1; last = overflow *)
  h_sum : float Atomic.t;
}

type cell = Counter_cell of counter | Gauge_cell of gauge | Hist_cell of histogram

type key = { k_name : string; k_labels : (string * string) list }

let registry : (key, cell) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

(* one help string per metric family (by name); first writer wins *)
let helps : (string, string) Hashtbl.t = Hashtbl.create 16

let norm_labels labels = List.sort compare labels

let register ?help name labels make check =
  let key = { k_name = name; k_labels = norm_labels labels } in
  Mutex.lock registry_lock;
  (match help with
  | Some h when not (Hashtbl.mem helps name) -> Hashtbl.add helps name h
  | _ -> ());
  let cell =
    match Hashtbl.find_opt registry key with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add registry key c;
        c
  in
  Mutex.unlock registry_lock;
  match check cell with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter ?help ?(labels = []) name =
  register ?help name labels
    (fun () -> Counter_cell { cr_cell = Atomic.make 0 })
    (function Counter_cell c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cr_cell by)
let counter_value c = Atomic.get c.cr_cell

let gauge ?help ?(labels = []) name =
  register ?help name labels
    (fun () -> Gauge_cell { ga_cell = Atomic.make 0.0 })
    (function Gauge_cell g -> Some g | _ -> None)

let set g v = Atomic.set g.ga_cell v
let gauge_value g = Atomic.get g.ga_cell

let rec atomic_add_float cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then atomic_add_float cell x

(* default bounds: 1us .. ~134s in x2 steps — latency in seconds *)
let exponential ~start ~factor ~n =
  if n < 1 || start <= 0.0 || factor <= 1.0 then
    invalid_arg "Metrics.exponential";
  Array.init n (fun i -> start *. (factor ** float_of_int i))

let default_bounds = exponential ~start:1e-6 ~factor:2.0 ~n:28

let histogram ?help ?(labels = []) ?(bounds = default_bounds) name =
  let sorted = Array.copy bounds in
  Array.sort compare sorted;
  if sorted <> bounds then invalid_arg "Metrics.histogram: bounds not sorted";
  register ?help name labels
    (fun () ->
      Hist_cell
        {
          h_bounds = bounds;
          h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
        })
    (function Hist_cell h -> Some h | _ -> None)

let bucket_index bounds x =
  (* first bucket whose upper bound admits x; length bounds = overflow *)
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h x =
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h.h_bounds x) 1);
  atomic_add_float h.h_sum x

let time h f =
  let t0 = Monotonic_clock.now () in
  Fun.protect
    ~finally:(fun () ->
      observe h (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9))
    f

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type hview = { bounds : float array; counts : int array; count : int; sum : float }

type value = Counter of int | Gauge of float | Histogram of hview

type entry = { name : string; labels : (string * string) list; value : value }

type snapshot = entry list

let histogram_view h =
  let counts = Array.map Atomic.get h.h_counts in
  {
    bounds = Array.copy h.h_bounds;
    counts;
    count = Array.fold_left ( + ) 0 counts;
    sum = Atomic.get h.h_sum;
  }

let snapshot () =
  Mutex.lock registry_lock;
  let entries =
    Hashtbl.fold
      (fun k c acc ->
        let value =
          match c with
          | Counter_cell c -> Counter (counter_value c)
          | Gauge_cell g -> Gauge (gauge_value g)
          | Hist_cell h -> Histogram (histogram_view h)
        in
        { name = k.k_name; labels = k.k_labels; value } :: acc)
      registry []
  in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) entries

let find snap name =
  List.find_opt (fun e -> e.name = name && e.labels = []) snap
  |> Option.map (fun e -> e.value)

let counter_of snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

(* [diff before after]: counters and histograms become deltas (entries
   new in [after] count from zero); gauges keep their [after] value. *)
let diff before after =
  let prior name labels =
    List.find_opt (fun e -> e.name = name && e.labels = labels) before
  in
  List.map
    (fun e ->
      match (e.value, prior e.name e.labels) with
      | Counter a, Some { value = Counter b; _ } -> { e with value = Counter (a - b) }
      | Histogram a, Some { value = Histogram b; _ }
        when Array.length a.counts = Array.length b.counts ->
          let counts = Array.mapi (fun i c -> c - b.counts.(i)) a.counts in
          {
            e with
            value =
              Histogram
                {
                  a with
                  counts;
                  count = a.count - b.count;
                  sum = a.sum -. b.sum;
                };
          }
      | _ -> e)
    after

let reset_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ c ->
      match c with
      | Counter_cell c -> Atomic.set c.cr_cell 0
      | Gauge_cell g -> Atomic.set g.ga_cell 0.0
      | Hist_cell h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Atomic.set h.h_sum 0.0)
    registry;
  Mutex.unlock registry_lock

(* ------------------------------------------------------------------ *)
(* Percentiles from bucket counts (linear interpolation inside the
   selected bucket; the overflow bucket reports the largest bound)     *)

let percentile_of (h : hview) p =
  if h.count = 0 then Float.nan
  else begin
    let rank = p /. 100.0 *. float_of_int h.count in
    let nb = Array.length h.bounds in
    let acc = ref 0.0 and result = ref Float.nan and i = ref 0 in
    while Float.is_nan !result && !i <= nb do
      let c = float_of_int h.counts.(!i) in
      if !acc +. c >= rank && c > 0.0 then begin
        if !i >= nb then result := h.bounds.(nb - 1)
        else
          let lo = if !i = 0 then 0.0 else h.bounds.(!i - 1) in
          let hi = h.bounds.(!i) in
          let frac = (rank -. !acc) /. c in
          result := lo +. ((hi -. lo) *. Float.min 1.0 (Float.max 0.0 frac))
      end;
      acc := !acc +. c;
      Stdlib.incr i
    done;
    if Float.is_nan !result then h.bounds.(nb - 1) else !result
  end

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Prometheus exposition-format label-value escaping: backslash,
   double quote and line feed — and only those — get a backslash.
   OCaml's %S is wrong here (it emits decimal \ddd escapes scrapers
   reject). *)
let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_text labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (prom_escape v))
             labels)
      ^ "}"

let render snap =
  let buf = Buffer.create 1024 in
  (* snapshots are (name, labels)-sorted, so every series of a family
     is adjacent: emit # HELP/# TYPE when the family changes, never per
     series — scrapers reject repeated metadata lines *)
  let announced = ref "" in
  let announce name kind =
    if name <> !announced then begin
      announced := name;
      let base = sanitize name in
      (match Hashtbl.find_opt helps name with
      | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base h)
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun e ->
      let base = sanitize e.name in
      match e.value with
      | Counter n ->
          announce e.name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" base (label_text e.labels) n)
      | Gauge v ->
          announce e.name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %g\n" base (label_text e.labels) v)
      | Histogram h ->
          announce e.name "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" base
                   (label_text (e.labels @ [ ("le", Printf.sprintf "%g" b) ]))
                   !cum))
            h.bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" base
               (label_text (e.labels @ [ ("le", "+Inf") ]))
               h.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %g\n" base (label_text e.labels) h.sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" base (label_text e.labels) h.count))
    snap;
  Buffer.contents buf

(* a float rendered as a JSON number token; non-finite values (empty
   percentiles are nan) become null, which every JSON parser accepts —
   nan/inf literals are not JSON *)
let json_number v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_key e =
  e.name
  ^
  match e.labels with
  | [] -> ""
  | ls -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"

let to_json snap =
  let buf = Buffer.create 1024 in
  let sect kind f =
    let entries = List.filter f snap in
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" kind);
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\n    \"%s\": " (json_escape (json_key e)));
        match e.value with
        | Counter n -> Buffer.add_string buf (string_of_int n)
        | Gauge v -> Buffer.add_string buf (Printf.sprintf "%g" v)
        | Histogram h ->
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"count\": %d, \"sum\": %g, \"bounds\": [%s], \"counts\": [%s]}"
                 h.count h.sum
                 (String.concat ", "
                    (List.map (Printf.sprintf "%g") (Array.to_list h.bounds)))
                 (String.concat ", "
                    (List.map string_of_int (Array.to_list h.counts)))))
      entries;
    Buffer.add_string buf (if entries = [] then "},\n" else "\n  },\n")
  in
  Buffer.add_string buf "{\n";
  sect "counters" (fun e -> match e.value with Counter _ -> true | _ -> false);
  sect "gauges" (fun e -> match e.value with Gauge _ -> true | _ -> false);
  let b = Buffer.contents buf in
  Buffer.clear buf;
  Buffer.add_string buf b;
  sect "histograms" (fun e ->
      match e.value with Histogram _ -> true | _ -> false);
  (* drop the trailing comma of the last section *)
  let s = Buffer.contents buf in
  let s =
    let n = String.length s in
    if n >= 2 && String.sub s (n - 2) 2 = ",\n" then String.sub s 0 (n - 2) ^ "\n"
    else s
  in
  s ^ "}\n"

let dump_json path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json snap))
