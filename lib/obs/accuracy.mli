(** Streaming estimator-accuracy telemetry.

    Given a workload with true counts, per-query absolute and relative
    errors stream into {!Metrics} histograms (registered as
    [<name>.rel_error] / [<name>.abs_error], so they appear in every
    metrics snapshot and exposition), and error {e percentiles} are
    read back histogram-backed — the paper's Section 6 methodology of
    reporting the error distribution, not just its mean. *)

type t

val create : ?sanity:float -> ?name:string -> unit -> t
(** [sanity] (default 1.0) is the workload's sanity bound: relative
    error is [|est - true| / max sanity true], exactly
    {!Xtwig_workload.Error_metric}'s definition. [name] (default
    ["accuracy"]) prefixes the metric names; two [create]s with one
    name share cells. *)

val observe : t -> truth:float -> estimate:float -> unit

val count : t -> int

val rel_error : t -> truth:float -> estimate:float -> float
(** The sanity-bounded relative error of one pair, without recording. *)

val percentile : t -> float -> float
(** Histogram-backed relative-error percentile (p in [0..100]);
    [nan] before the first observation. *)

val mean_rel : t -> float

val rel_view : t -> Metrics.hview
val abs_view : t -> Metrics.hview

val report : t -> string
(** One line: count, mean, p50/p90/p99 relative error. *)

val report_json : t -> string
(** The same figures as one JSON object. Safe on an empty stream: the
    percentiles an empty histogram reports as [nan] render as [null],
    never as the non-JSON [nan] literal. *)
