(** Span tracing with Chrome [trace_event] JSON export.

    Spans record into per-domain buffers — only the owning domain ever
    writes its buffer, so recording inside {!Xtwig_util.Pool} workers
    is lock-free and each span is tagged with its domain id (the trace
    [tid]). Disabled (the default), {!with_span} is a single atomic
    load plus the closure call; the instrumented hot paths (XBUILD
    scoring, embedding enumeration, engine queries) cost nothing
    measurable.

    Load a dump in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: one track per domain, spans nested by B/E pairing. *)

val enable : ?cap:int -> unit -> unit
(** Start recording. [cap] (default 1_000_000) bounds the events kept
    per domain: beyond it, new spans are dropped whole — a recorded
    "B" always gets its "E", so pairing survives saturation. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events (buffers are kept). *)

val dropped : unit -> int
(** Spans dropped due to the cap since the last {!reset}. *)

val with_span : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_span ~name f] brackets [f] with "B"/"E" events on the
    calling domain's track, also on exception. [args] become the
    span's Chrome args (keep them cheap: they are evaluated by the
    caller even when tracing is disabled). *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val now_ns : unit -> int64
(** The trace clock (monotonic nanoseconds) — pair with {!complete} to
    record a span retrospectively. *)

val complete :
  ?args:(string * string) list -> name:string -> start_ns:int64 -> dur_ns:int64 -> unit -> unit
(** [complete ~name ~start_ns ~dur_ns ()] records a Chrome "X"
    (complete) event: a span with explicit start and duration. X
    events carry no nesting obligation, so a phase measured across
    event-loop ticks (queue wait, response write) can be booked from
    whichever domain observed its end. Negative durations clamp to 0. *)

(** {1 Trace-context propagation} *)

val with_trace_id : int -> (unit -> 'a) -> 'a
(** [with_trace_id id f] makes [id] the ambient trace id of the
    calling domain for the duration of [f]: every span, instant and
    complete event recorded within (that does not already carry one)
    gains a ["trace_id"] arg. Nests; restores the previous id on exit,
    also on exception. Cheap enough to call unconditionally — one DLS
    access — whether or not tracing is enabled. *)

val current_trace_id : unit -> int option
(** The ambient trace id installed by the innermost {!with_trace_id}
    on this domain, if any. *)

(** {1 Export} *)

val to_json_string : unit -> string
(** Chrome trace_event "JSON Array Format": [{"traceEvents": [...]}],
    one event per line, with [thread_name] metadata per domain. *)

val dump : string -> unit
(** Write {!to_json_string} to a file. *)

(** {1 Validation} *)

val validate_string : string -> (int, string) result
(** Check a dump produced by this module: every "B" is closed by a
    matching "E" on the same tid in stack (nesting) order, with a
    non-negative duration; "X" events must carry a non-negative [dur].
    [Ok n] is the number of well-formed spans (B/E pairs plus X
    events); an event-free trace is an error. *)

val validate_file : string -> (int, string) result
