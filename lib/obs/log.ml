(* Structured event logging: leveled JSONL records into a bounded
   in-memory ring and, optionally, an append-only sink channel.

   The hot-path contract matches Trace: with logging disabled (the
   default) [event] is one atomic load and returns — fields are
   evaluated by the caller, so keep them cheap. Enabled, the record is
   formatted and pushed under a mutex: the emitters (the xtwigd select
   loop, engine lifecycle transitions) are low-rate control-plane
   paths, never the per-estimate hot loop. *)

type level = Debug | Info | Warn | Error

type field = S of string | I of int | F of float | B of bool

let level_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_text = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let enabled_flag = Atomic.make false
let min_level = Atomic.make (level_int Info)

type sink = No_sink | Channel of out_channel | Owned_channel of out_channel

type state = {
  mutable ring : string array;
  mutable ring_len : int; (* records currently held *)
  mutable ring_next : int; (* next write slot *)
  mutable emitted : int;
  mutable sink : sink;
}

let st = { ring = Array.make 256 ""; ring_len = 0; ring_next = 0; emitted = 0; sink = No_sink }
let lock = Mutex.create ()

let close_sink () =
  match st.sink with
  | Owned_channel oc ->
      (try close_out oc with Sys_error _ -> ());
      st.sink <- No_sink
  | Channel _ -> st.sink <- No_sink
  | No_sink -> ()

let enable ?(level = Info) ?(ring_cap = 256) ?path ?channel () =
  if ring_cap < 1 then invalid_arg "Log.enable: ring_cap < 1";
  Mutex.lock lock;
  close_sink ();
  st.ring <- Array.make ring_cap "";
  st.ring_len <- 0;
  st.ring_next <- 0;
  (match (path, channel) with
  | Some _, Some _ ->
      Mutex.unlock lock;
      invalid_arg "Log.enable: path and channel are exclusive"
  | Some p, None ->
      st.sink <- Owned_channel (open_out_gen [ Open_append; Open_creat ] 0o644 p)
  | None, Some oc -> st.sink <- Channel oc
  | None, None -> ());
  Mutex.unlock lock;
  Atomic.set min_level (level_int level);
  Atomic.set enabled_flag true

let disable () =
  Atomic.set enabled_flag false;
  Mutex.lock lock;
  close_sink ();
  Mutex.unlock lock

let enabled () = Atomic.get enabled_flag

let field_json = function
  | S s -> "\"" ^ Metrics.json_escape s ^ "\""
  | I n -> string_of_int n
  | F v -> Metrics.json_number v
  | B b -> if b then "true" else "false"

let format_line ~ts level name fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\"" ts
       (level_text level)
       (Metrics.json_escape name));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (Metrics.json_escape k) (field_json v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let event ?(fields = []) level name =
  if Atomic.get enabled_flag && level_int level >= Atomic.get min_level then begin
    let line = format_line ~ts:(Unix.gettimeofday ()) level name fields in
    Mutex.lock lock;
    let cap = Array.length st.ring in
    st.ring.(st.ring_next) <- line;
    st.ring_next <- (st.ring_next + 1) mod cap;
    if st.ring_len < cap then st.ring_len <- st.ring_len + 1;
    st.emitted <- st.emitted + 1;
    (match st.sink with
    | No_sink -> ()
    | Channel oc | Owned_channel oc ->
        output_string oc line;
        output_char oc '\n');
    Mutex.unlock lock
  end

let debug ?fields name = event ?fields Debug name
let info ?fields name = event ?fields Info name
let warn ?fields name = event ?fields Warn name
let error ?fields name = event ?fields Error name

let recent () =
  Mutex.lock lock;
  let cap = Array.length st.ring in
  let start = (st.ring_next - st.ring_len + cap) mod cap in
  let out =
    List.init st.ring_len (fun i -> st.ring.((start + i) mod cap))
  in
  Mutex.unlock lock;
  out

let emitted () =
  Mutex.lock lock;
  let n = st.emitted in
  Mutex.unlock lock;
  n

let flush () =
  Mutex.lock lock;
  (match st.sink with
  | No_sink -> ()
  | Channel oc | Owned_channel oc -> ( try Stdlib.flush oc with Sys_error _ -> ()));
  Mutex.unlock lock
