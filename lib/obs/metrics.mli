(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms, optionally labeled.

    This generalizes the original flat [Counters] table (which is now a
    thin adapter over this module). Cells are registered once —
    typically at module initialization, before domains spawn — and
    updated from any domain: counters and histogram buckets are
    {!Atomic.t} increments, gauge sets are atomic stores, histogram
    sums are CAS loops. Registration under a name that already holds a
    different metric kind raises [Invalid_argument].

    Metric names follow the [subsystem.verb.unit] scheme documented in
    DESIGN.md (e.g. [xbuild.round.seconds], [engine.timeouts]).
    Variants of one logical metric are distinguished by labels, e.g.
    [xbuild.ops_applied{op.kind="f-stabilize"}]. *)

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Registered under [(name, labels)]; two calls with the same pair
    share one cell. [help] sets the family's [# HELP] line in
    {!render} (first writer wins; shared across all label sets). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val exponential : start:float -> factor:float -> n:int -> float array
(** [n] exponentially growing bucket upper bounds from [start]. *)

val default_bounds : float array
(** [exponential ~start:1e-6 ~factor:2.0 ~n:28] — 1us to ~134s, for
    latencies in seconds. *)

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?bounds:float array ->
  string ->
  histogram
(** Fixed-bucket histogram: [bounds] are strictly increasing upper
    bounds, plus an implicit overflow bucket. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its elapsed monotonic time in seconds,
    also on exception. *)

(** {1 Snapshots} *)

type hview = {
  bounds : float array;
  counts : int array;  (** per bucket, [length bounds + 1] (overflow last) *)
  count : int;  (** total observations *)
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hview

type entry = { name : string; labels : (string * string) list; value : value }

type snapshot = entry list
(** Sorted by (name, labels). *)

val histogram_view : histogram -> hview
(** Live read of one histogram (consistent per bucket). *)

val snapshot : unit -> snapshot
(** Consistent per cell, not across cells. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff before after]: counters and histograms become deltas (cells
    registered after [before] count from zero); gauges keep their
    [after] value. This is how the bench harness isolates one run's
    activity without resetting the registry. *)

val reset_all : unit -> unit
(** Zero every registered cell (registration is kept). *)

val find : snapshot -> string -> value option
(** Unlabeled entry under this exact name. *)

val counter_of : snapshot -> string -> int
(** Value of the named unlabeled counter; 0 when absent. *)

val percentile_of : hview -> float -> float
(** Histogram-backed percentile (p in [0..100]): linear interpolation
    inside the selected bucket; observations in the overflow bucket
    report the largest finite bound; [nan] on an empty histogram. *)

(** {1 Exposition} *)

val render : snapshot -> string
(** Prometheus exposition text: [# HELP]/[# TYPE] emitted exactly once
    per metric family (labeled series of one family are adjacent in a
    snapshot), [_bucket{le=...}] cumulative bucket lines,
    [_sum]/[_count]. Dots in names are sanitized to underscores; label
    values escape backslash, double quote and newline per the
    exposition format. *)

val to_json : snapshot -> string

val json_number : float -> string
(** A float as a JSON number token; non-finite values (e.g. the [nan]
    an empty histogram's percentile reports) render as [null], keeping
    emitted documents parseable. *)

val dump_json : string -> snapshot -> unit
(** Write {!to_json} to a file. *)

(**/**)

val json_escape : string -> string
(** Shared with {!Trace}'s exporter. *)
