(* Streaming estimator-accuracy telemetry: per-query absolute and
   relative error flow into Metrics histograms, so the error profile
   of a workload is available as a distribution (p50/p90/p99), not
   just a mean — the paper reports error percentiles for exactly this
   reason. *)

type t = {
  sanity : float;
  rel : Metrics.histogram;
  abs_ : Metrics.histogram;
}

(* relative error spans ~1e-4 (excellent) to ~1e4 (hopeless) *)
let rel_bounds = Metrics.exponential ~start:1e-4 ~factor:2.0 ~n:28

(* absolute error in result-count units *)
let abs_bounds = Metrics.exponential ~start:1.0 ~factor:2.0 ~n:32

let create ?(sanity = 1.0) ?(name = "accuracy") () =
  {
    sanity;
    rel = Metrics.histogram ~bounds:rel_bounds (name ^ ".rel_error");
    abs_ = Metrics.histogram ~bounds:abs_bounds (name ^ ".abs_error");
  }

(* the paper's sanity-bounded absolute relative error (Section 6):
   |est - true| / max(sanity, true) *)
let rel_error t ~truth ~estimate =
  Float.abs (estimate -. truth) /. Stdlib.max t.sanity truth

let observe t ~truth ~estimate =
  Metrics.observe t.rel (rel_error t ~truth ~estimate);
  Metrics.observe t.abs_ (Float.abs (estimate -. truth))

let rel_view t = Metrics.histogram_view t.rel
let abs_view t = Metrics.histogram_view t.abs_

let count t = (rel_view t).Metrics.count

let percentile t p = Metrics.percentile_of (rel_view t) p

let mean_rel t =
  let v = rel_view t in
  if v.Metrics.count = 0 then Float.nan
  else v.Metrics.sum /. float_of_int v.Metrics.count

let report t =
  let v = rel_view t in
  if v.Metrics.count = 0 then "accuracy: no observations"
  else
    Printf.sprintf
      "accuracy over %d queries: rel error mean=%.3f p50=%.3f p90=%.3f p99=%.3f"
      v.Metrics.count (mean_rel t)
      (Metrics.percentile_of v 50.0)
      (Metrics.percentile_of v 90.0)
      (Metrics.percentile_of v 99.0)

(* an empty stream yields nan percentiles, which [json_number] maps to
   null — the emitted object is always parseable JSON *)
let report_json t =
  let v = rel_view t in
  let n = Metrics.json_number in
  Printf.sprintf
    "{\"count\": %d, \"rel_error_mean\": %s, \"rel_error_p50\": %s, \
     \"rel_error_p90\": %s, \"rel_error_p99\": %s}"
    v.Metrics.count
    (n (mean_rel t))
    (n (Metrics.percentile_of v 50.0))
    (n (Metrics.percentile_of v 90.0))
    (n (Metrics.percentile_of v 99.0))
