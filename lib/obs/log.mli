(** Structured event logging: leveled JSONL records, ring-buffered in
    memory and optionally appended to a sink.

    This replaces ad-hoc [Printf.eprintf] in the serving binaries with
    machine-readable events — one JSON object per line, each carrying
    a wall-clock [ts], a [level], an [event] name and typed fields
    (access-log records carry tenant, verb, bytes, status, trace id
    and phase timings; lifecycle records carry reload generations,
    breaker transitions and shed decisions).

    Disabled (the default), {!event} is a single atomic load — the
    same contract as {!Trace.with_span}. Field lists are evaluated by
    the caller either way, so keep their construction cheap. Emission
    is mutex-serialized; emitters are control-plane paths, not the
    per-estimate hot loop. *)

type level = Debug | Info | Warn | Error

type field = S of string | I of int | F of float | B of bool
(** Field values; rendered as JSON string / int / number (non-finite
    floats become [null]) / bool. *)

val enable :
  ?level:level -> ?ring_cap:int -> ?path:string -> ?channel:out_channel -> unit -> unit
(** Start recording events at [level] (default [Info]) and above.
    [ring_cap] (default 256) bounds the in-memory ring read back by
    {!recent}; older records are overwritten. [path] appends each
    record to a JSONL file (created if missing); [channel] streams to
    an existing channel instead (not closed by {!disable}); giving
    both is an error. Re-enabling resets the ring and replaces the
    sink. *)

val disable : unit -> unit
(** Stop recording and close a [path]-opened sink. *)

val enabled : unit -> bool

val event : ?fields:(string * field) list -> level -> string -> unit
(** [event level name ~fields] records one JSONL line
    [{"ts":…,"level":…,"event":name,…fields}] if logging is enabled at
    [level]. One atomic load when disabled. *)

val debug : ?fields:(string * field) list -> string -> unit
val info : ?fields:(string * field) list -> string -> unit
val warn : ?fields:(string * field) list -> string -> unit
val error : ?fields:(string * field) list -> string -> unit

val recent : unit -> string list
(** The ring's contents, oldest first — at most [ring_cap] lines. *)

val emitted : unit -> int
(** Records emitted since {!enable} (including ones the ring has since
    overwritten). *)

val flush : unit -> unit
(** Flush the sink channel, if any. *)

val level_text : level -> string

val level_of_string : string -> level option
(** Inverse of {!level_text} ("debug", "info", "warn", "error"),
    case-insensitive. *)
