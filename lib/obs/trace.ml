(* Span tracing into per-domain buffers, exported as Chrome
   trace_event JSON ("B"/"E" duration events, one tid per domain).

   The hot-path contract: with tracing disabled (the default),
   [with_span] is one atomic load and a closure call. Enabled, each
   span appends two events to the buffer of the *current* domain —
   only the owning domain ever writes its buffer, so recording is
   lock-free; the global registry of buffers is only locked on a
   domain's first event and at dump/reset time. *)

type phase = B | E | I | X

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int64; (* monotonic ns *)
  ev_dur : int64; (* ns; only meaningful for X (complete) events *)
  ev_args : (string * string) list;
}

type buf = {
  tid : int; (* domain id *)
  mutable events : event array;
  mutable len : int;
  mutable dropped : int;
}

let enabled_flag = Atomic.make false
let soft_cap = Atomic.make 1_000_000

let bufs : buf list ref = ref []
let bufs_lock = Mutex.create ()

let dummy_event =
  { ev_name = ""; ev_phase = I; ev_ts = 0L; ev_dur = 0L; ev_args = [] }

let key : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_buf () =
  match Domain.DLS.get key with
  | Some b -> b
  | None ->
      let b =
        {
          tid = (Domain.self () :> int);
          events = Array.make 1024 dummy_event;
          len = 0;
          dropped = 0;
        }
      in
      Mutex.lock bufs_lock;
      bufs := b :: !bufs;
      Mutex.unlock bufs_lock;
      Domain.DLS.set key (Some b);
      b

let enabled () = Atomic.get enabled_flag
let enable ?cap () =
  (match cap with Some c -> Atomic.set soft_cap c | None -> ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock bufs_lock;
  List.iter
    (fun b ->
      b.len <- 0;
      b.dropped <- 0)
    !bufs;
  Mutex.unlock bufs_lock

let dropped () =
  Mutex.lock bufs_lock;
  let n = List.fold_left (fun acc b -> acc + b.dropped) 0 !bufs in
  Mutex.unlock bufs_lock;
  n

(* append unconditionally, growing as needed (used for E events, whose
   matching B is already recorded: pairing survives the cap) *)
let push b ev =
  if b.len >= Array.length b.events then begin
    let grown = Array.make (2 * Array.length b.events) dummy_event in
    Array.blit b.events 0 grown 0 b.len;
    b.events <- grown
  end;
  b.events.(b.len) <- ev;
  b.len <- b.len + 1

(* append only under the soft cap; [false] = dropped. Dropping whole
   spans (never just their E half) keeps every recorded B paired. *)
let push_capped b ev =
  if b.len >= Atomic.get soft_cap then begin
    b.dropped <- b.dropped + 1;
    false
  end
  else begin
    push b ev;
    true
  end

let now = Monotonic_clock.now
let now_ns () = now ()

(* Ambient trace id: a per-domain slot set by [with_trace_id] and
   stamped onto every event recorded while it is live, so deep spans
   (plan compilation, estimator work) correlate with the originating
   request without threading an id through every call site. *)
let trace_id_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_trace_id () = !(Domain.DLS.get trace_id_key)

let with_trace_id id f =
  let slot = Domain.DLS.get trace_id_key in
  let saved = !slot in
  slot := Some id;
  Fun.protect ~finally:(fun () -> slot := saved) f

let stamp args =
  match current_trace_id () with
  | None -> args
  | Some id ->
      if List.mem_assoc "trace_id" args then args
      else ("trace_id", string_of_int id) :: args

let with_span ?(args = []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = my_buf () in
    let recorded =
      push_capped b
        {
          ev_name = name;
          ev_phase = B;
          ev_ts = now ();
          ev_dur = 0L;
          ev_args = stamp args;
        }
    in
    Fun.protect
      ~finally:(fun () ->
        if recorded then
          push b
            { ev_name = name; ev_phase = E; ev_ts = now (); ev_dur = 0L; ev_args = [] })
      f
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then
    ignore
      (push_capped (my_buf ())
         {
           ev_name = name;
           ev_phase = I;
           ev_ts = now ();
           ev_dur = 0L;
           ev_args = stamp args;
         })

(* A retrospective span: recorded after the fact from a start/duration
   pair as a Chrome "X" (complete) event. Unlike B/E pairs, X events
   need no nesting discipline, so phases measured across select-loop
   ticks (queue wait, response write) can be booked on any domain. *)
let complete ?(args = []) ~name ~start_ns ~dur_ns () =
  if Atomic.get enabled_flag then
    ignore
      (push_capped (my_buf ())
         {
           ev_name = name;
           ev_phase = X;
           ev_ts = start_ns;
           ev_dur = (if Int64.compare dur_ns 0L < 0 then 0L else dur_ns);
           ev_args = stamp args;
         })

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export (JSON Array Format, one event per line)   *)

let escape = Metrics.json_escape

let phase_text = function B -> "B" | E -> "E" | I -> "i" | X -> "X"

let event_line buf tid ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (escape ev.ev_name) (phase_text ev.ev_phase)
       (Int64.to_float ev.ev_ts /. 1e3)
       tid);
  if ev.ev_phase = I then Buffer.add_string buf ",\"s\":\"t\"";
  if ev.ev_phase = X then
    Buffer.add_string buf
      (Printf.sprintf ",\"dur\":%.3f" (Int64.to_float ev.ev_dur /. 1e3));
  (match ev.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_json_string () =
  Mutex.lock bufs_lock;
  let snap = List.map (fun b -> (b.tid, Array.sub b.events 0 b.len)) !bufs in
  Mutex.unlock bufs_lock;
  let snap = List.sort compare (List.map (fun (tid, evs) -> (tid, evs)) snap) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun (tid, _) ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    snap;
  List.iter
    (fun (tid, evs) ->
      Array.iter
        (fun ev ->
          if not !first then Buffer.add_string buf ",\n";
          first := false;
          event_line buf tid ev)
        evs)
    snap;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let dump path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_string ()))

(* ------------------------------------------------------------------ *)
(* Validation: every "B" has a matching, properly nested "E"           *)

(* minimal field extraction from the one-event-per-line format emitted
   above (no JSON dependency; quoted values never contain unescaped
   quotes) *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\":\"" key in
  match
    let plen = String.length pat in
    let n = String.length line in
    let rec find i =
      if i + plen > n then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
      let buf = Buffer.create 16 in
      let n = String.length line in
      let rec go i =
        if i >= n then None
        else
          match line.[i] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when i + 1 < n ->
              Buffer.add_char buf line.[i + 1];
              go (i + 2)
          | c ->
              Buffer.add_char buf c;
              go (i + 1)
      in
      go start

let num_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        Stdlib.incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let validate_string text =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let spans = ref 0 in
  let err = ref None in
  let fail line fmt =
    Printf.ksprintf
      (fun msg -> if !err = None then err := Some (Printf.sprintf "%s: %s" msg line))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if !err = None then
        match string_field line "ph" with
        | None | Some "M" | Some "i" -> ()
        | Some ph -> (
            let name = Option.value ~default:"?" (string_field line "name") in
            let tid =
              int_of_float (Option.value ~default:(-1.0) (num_field line "tid"))
            in
            let ts = Option.value ~default:Float.nan (num_field line "ts") in
            if tid < 0 then fail line "event without tid"
            else if Float.is_nan ts then fail line "event without ts"
            else
              let s = stack tid in
              match ph with
              | "X" ->
                  (* complete events carry their own duration; they are
                     self-contained and need no stack discipline *)
                  let dur = Option.value ~default:Float.nan (num_field line "dur") in
                  if Float.is_nan dur then fail line "X event without dur"
                  else if dur < 0.0 then fail line "X event %S with negative dur" name
                  else Stdlib.incr spans
              | "B" -> s := (name, ts) :: !s
              | "E" -> (
                  match !s with
                  | [] -> fail line "unmatched E (empty stack on tid %d)" tid
                  | (bn, bts) :: rest ->
                      if bn <> name then
                        fail line "E %S does not close innermost B %S" name bn
                      else if ts < bts then
                        fail line "span %S ends before it begins" name
                      else begin
                        Stdlib.incr spans;
                        s := rest
                      end)
              | other -> fail line "unknown phase %S" other))
    lines;
  (match !err with
  | None ->
      Hashtbl.iter
        (fun tid s ->
          match !s with
          | [] -> ()
          | (name, _) :: _ ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf "unclosed span %S on tid %d" name tid))
        stacks
  | Some _ -> ());
  match !err with
  | Some e -> Error e
  | None ->
      if !spans = 0 then Error "trace contains no spans" else Ok !spans

let validate_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string text
