module Stats = Xtwig_util.Stats

type t = {
  sanity : float;
  average : float;
  per_query : float array;
}

let sanity_bound truths =
  let positive = Array.of_list (List.filter (fun c -> c > 0.0) (Array.to_list truths)) in
  (* [Stats.percentile] returns nan on empty input; an all-negative (or
     empty) bucket must yield the neutral bound 1.0, not poison every
     downstream error with nan *)
  if Array.length positive = 0 then 1.0 else Stats.percentile positive 10.0

let evaluate ~truths ~estimates =
  if Array.length truths <> Array.length estimates then
    invalid_arg "Error_metric.evaluate: length mismatch";
  let sanity = sanity_bound truths in
  let per_query =
    Array.mapi
      (fun i c -> Float.abs (estimates.(i) -. c) /. Stdlib.max sanity c)
      truths
  in
  { sanity; average = Stats.mean per_query; per_query }

let average_error ~truths ~estimates = (evaluate ~truths ~estimates).average
