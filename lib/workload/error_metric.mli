(** The paper's evaluation metric (Section 6.1): average absolute
    relative error with a sanity bound.

    For a query with true count [c] and estimate [r], the error is
    [|r - c| / max(s, c)] where the sanity bound [s] is the 10th
    percentile of the true counts of the (positive part of the)
    workload — this avoids artificially high percentages on low-count
    queries and defines the metric for negative queries ([c = 0]). *)

type t = {
  sanity : float;
  average : float;
  per_query : float array;
}

val sanity_bound : float array -> float
(** 10th percentile of the strictly-positive true counts; 1.0 when
    there are none (an empty or all-negative bucket — e.g. a focused
    scoring workload whose every query turned out unsatisfiable). *)

val evaluate : truths:float array -> estimates:float array -> t
(** Requires equal lengths. Empty input yields
    [{ sanity = 1.0; average = 0.0; per_query = [||] }]. *)

val average_error : truths:float array -> estimates:float array -> float
