(** Refinement operations (Section 5).

    Localized transformations that grow a Twig XSKETCH:

    - {e structural}: [b-stabilize] / [f-stabilize] split a node to
      create an additional backward- or forward-stable edge;
    - {e edge}: [edge-refine] allocates more buckets to one edge
      histogram; [edge-expand] inserts an additional dimension into a
      histogram's scope, lifting the independence assumption across
      that edge;
    - {e value}: [value-refine] allocates more buckets to a value
      histogram. ([value-expand] — multidimensional value histograms —
      is outside the prototype configuration, exactly as in the
      paper's Section 6.1 prototype.)

    Operations reference node ids of the sketch they were generated
    from and must be applied to that sketch. *)

type op =
  | B_stabilize of { src : int; dst : int }
      (** split [dst] by parent node, making every incoming edge
          B-stable *)
  | F_stabilize of { src : int; dst : int }
      (** split [src] into elements with / without a child in [dst] *)
  | Edge_refine of { node : int; hist : int; extra_buckets : int }
  | Edge_expand of { node : int; dim : Sketch.dim; into : int option }
      (** add [dim] to histogram [into] at [node] (absorbing it from
          any other histogram that covered it); [None] starts a new
          1-bucket histogram *)
  | Value_refine of { node : int; extra_buckets : int }
  | Value_split of { node : int; ways : int }
      (** {e Extension beyond the paper}: split a node with
          categorical values by its [ways] most common values (plus an
          "other" group). The resulting per-value nodes make string-equality
          branch predicates exact through plain edge statistics, and
          follow-up f-stabilize refinements can then capture
          value-to-structure correlations (e.g. genre-driven actor
          counts) that the prototype's independence assumption
          misses. *)

val apply : Sketch.t -> op -> Sketch.t
(** Returns the refined sketch. Structural operations rebuild the
    synopsis and remap every histogram configuration onto the new
    nodes (an old dimension maps to every new edge its endpoints
    split into; ineligible dimensions are dropped by the build). A
    no-op refinement (e.g. splitting an already-stable edge) returns
    an equivalent sketch. *)

val touched_labels : Sketch.t -> op -> string list
(** Tag names around the transformed region — used to focus the
    scoring workload. *)

val gen_candidates : ?count:int -> Sketch.t -> Xtwig_util.Prng.t -> op list
(** Samples a candidate pool (default size 8): structural candidates
    on nodes drawn with probability proportional to extent size times
    unstable degree (as in the paper), edge-refine / edge-expand /
    value-refine candidates on nodes drawn by extent size.
    [Edge_expand] proposes the scope-eligible dimension most
    correlated with the histogram's current dimensions. *)

val describe : Sketch.t -> op -> string

val kind_name : op -> string
(** The op's kind as a stable label ("b-stabilize", "f-stabilize",
    "edge-refine", "edge-expand", "value-refine", "value-split") —
    used as the [op.kind] metric label and trace-span argument. *)

val all_kinds : string list
(** Every {!kind_name}, in declaration order. *)
