open Xtwig_path.Path_types
module G = Xtwig_synopsis.Graph_synopsis
module Doc = Xtwig_xml.Doc

type ebranch = {
  bnode : int;
  bvpred : value_pred option;
  bsubs : ebranch list list;
}

type enode = {
  eid : int;
  snode : int;
  vpred : value_pred option;
  branches : ebranch list list;
  kids : enode list list;
}

(* Domain-local: every domain (XBUILD's main loop, pool workers, the
   estimation engine) tracks truncation of its own enumerations; a
   shared ref here was a data race once scoring fanned out. *)
let truncated_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let set_truncated b = Domain.DLS.get truncated_key := b
let last_truncated () = !(Domain.DLS.get truncated_key)

(* A chain item: one embedded single-step twig node. *)
type item = {
  inode : int;
  ivpred : value_pred option;
  ibranches : ebranch list list;
}

let bare_item v = { inode = v; ivpred = None; ibranches = [] }

(* Candidate target chains for one step's axis+label, as reversed
   node lists with the matching node in head position. [from = None]
   is the virtual root above the document root. *)
let step_chains syn max_len from axis label =
  let matches v = String.equal (G.tag_name syn v) label in
  match axis with
  | Child ->
      let targets =
        match from with
        | None -> [ G.root_node syn ]
        | Some u -> List.map (fun (e : G.edge) -> e.dst) (G.out_edges syn u)
      in
      List.filter_map (fun v -> if matches v then Some [ v ] else None) targets
  | Descendant ->
      let out = ref [] in
      let rec dfs rev_path len v =
        let rev_path = v :: rev_path in
        if matches v then out := rev_path :: !out;
        if len < max_len then
          List.iter
            (fun (e : G.edge) -> dfs rev_path (len + 1) e.dst)
            (G.out_edges syn v)
      in
      (match from with
      | None -> dfs [] 0 (G.root_node syn)
      | Some u ->
          List.iter (fun (e : G.edge) -> dfs [] 1 e.dst) (G.out_edges syn u));
      List.rev !out

let take_capped cap l =
  (* bounded scans: enumeration lists can be long and this runs per
     path expansion, so neither the length check nor the truncation
     walks past [cap] elements *)
  let rec longer_than n = function
    | [] -> false
    | _ :: tl -> n = 0 || longer_than (n - 1) tl
  in
  if longer_than cap l then begin
    set_truncated true;
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    take cap l
  end
  else l

let t_embed = Xtwig_util.Counters.timer "embed.ns"

(* Memo table for [step_chains] results, keyed by (from, axis, label)
   with [from]/[axis] packed into one int. Chains depend only on the
   synopsis graph, so a memo attached to an embedding cache is valid
   for every query against that synopsis — XBUILD's scoring queries
   share most of their steps (the same //tag roots), which makes the
   descendant-axis DFS the dominant repeated work. *)
type chains_memo = (int * string, int list list) Hashtbl.t

let chains_key from axis =
  (((match from with None -> 0 | Some u -> u + 1) * 2)
  + match axis with Xtwig_path.Path_types.Child -> 0 | Descendant -> 1)

(* Per-call memoization structure: one level per path-step suffix,
   compiled from the twig before enumeration. [l_chains] caches the
   full expansion of this suffix per context node and [l_branch] the
   embedded branching predicates per target, so synopsis chains that
   converge on the same node share their downstream expansion instead
   of redoing it (the dominant cost on descendant axes). Items carry
   no embedding ids, so returning a shared list is observationally
   identical to recomputation; the truncation flag only ever latches
   true within one call, so skipping a repeat [take_capped] cannot
   change it. *)
type levels = Lnil | Lcons of level

and level = {
  l_step : step;
  l_preds : levels list; (* compiled branching-predicate paths *)
  l_next : levels;
  l_chains : (int, item list list) Hashtbl.t; (* context node -> chains *)
  l_branch : (int, ebranch list list option) Hashtbl.t; (* target -> preds *)
}

let rec compile_steps (p : path) : levels =
  match p with
  | [] -> Lnil
  | s :: rest ->
      Lcons
        {
          l_step = s;
          l_preds = List.map compile_steps s.branches;
          l_next = compile_steps rest;
          l_chains = Hashtbl.create 8;
          l_branch = Hashtbl.create 8;
        }

type ctwig = { ct_levels : levels; ct_subs : ctwig list }

let rec compile_twig (t : twig) : ctwig =
  { ct_levels = compile_steps t.path; ct_subs = List.map compile_twig t.subs }

let embeddings ?chains ?(max_alternatives = 64) syn twig =
  Xtwig_obs.Trace.with_span ~name:"embed.enumerate" @@ fun () ->
  Xtwig_util.Counters.time t_embed @@ fun () ->
  set_truncated false;
  (* embedding-node ids: dense, unique within one [embeddings] result
     (across all returned roots) — estimator memo tables key on them *)
  let next_eid = ref 0 in
  let fresh_eid () =
    let i = !next_eid in
    Stdlib.incr next_eid;
    i
  in
  let max_len = Doc.max_depth (G.doc syn) + 1 in
  let chains_for =
    match chains with
    | None -> fun from axis label -> step_chains syn max_len from axis label
    | Some memo ->
        fun from axis label ->
          let key = (chains_key from axis, label) in
          (match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let r = step_chains syn max_len from axis label in
              Hashtbl.add memo key r;
              r)
  in
  (* chains embedding a whole path: lists of items, first step first;
     memoized per (level, context node) in the compiled levels *)
  let rec path_chains from lv : item list list =
    match lv with
    | Lnil -> [ [] ]
    | Lcons l -> (
        let key = match from with None -> -1 | Some u -> u in
        match Hashtbl.find_opt l.l_chains key with
        | Some r -> r
        | None ->
            let s = l.l_step in
            let raw = chains_for from s.axis s.label in
            let r =
              List.concat_map
                (fun rev_chain ->
                  match rev_chain with
                  | [] -> []
                  | target :: intermediates_rev -> (
                      match branch_preds l target with
                      | None -> [] (* unsatisfiable branching predicate *)
                      | Some ibranches ->
                          let head =
                            List.rev_map bare_item intermediates_rev
                            @ [ { inode = target; ivpred = s.vpred; ibranches } ]
                          in
                          List.map
                            (fun tail -> head @ tail)
                            (path_chains (Some target) l.l_next)))
                raw
              |> take_capped max_alternatives
            in
            Hashtbl.add l.l_chains key r;
            r)
  (* one branching predicate at node [u]: all alternative embedded
     chains, or None when there are none *)
  and branch_preds l u : ebranch list list option =
    match Hashtbl.find_opt l.l_branch u with
    | Some r -> r
    | None ->
        let embedded =
          List.map
            (fun lp ->
              List.filter_map chain_to_ebranch (path_chains (Some u) lp))
            l.l_preds
        in
        let r =
          if List.exists (fun alts -> alts = []) embedded then None
          else Some embedded
        in
        Hashtbl.add l.l_branch u r;
        r
  and chain_to_ebranch items : ebranch option =
    match items with
    | [] -> None
    | [ it ] -> Some { bnode = it.inode; bvpred = it.ivpred; bsubs = it.ibranches }
    | it :: rest -> (
        match chain_to_ebranch rest with
        | None -> None
        | Some tail ->
            Some
              {
                bnode = it.inode;
                bvpred = it.ivpred;
                bsubs = it.ibranches @ [ [ tail ] ];
              })
  in
  (* all alternative embeddings of one twig node evaluated from a
     context synopsis node *)
  let rec embed_twig from (ct : ctwig) : enode list =
    List.filter_map
      (fun items -> embed_chain items ct.ct_subs)
      (path_chains from ct.ct_levels)
  (* one chain plus the twig children attached at its end; None when
     some child cannot be embedded *)
  and embed_chain items subs : enode option =
    match List.rev items with
    | [] -> None
    | last :: _ ->
        let kid_alts = List.map (embed_twig (Some last.inode)) subs in
        if List.exists (fun alts -> alts = []) kid_alts then None
        else
          let rec wrap = function
            | [] -> assert false
            | [ it ] ->
                {
                  eid = fresh_eid ();
                  snode = it.inode;
                  vpred = it.ivpred;
                  branches = it.ibranches;
                  kids = kid_alts;
                }
            | it :: rest ->
                let inner = wrap rest in
                {
                  eid = fresh_eid ();
                  snode = it.inode;
                  vpred = it.ivpred;
                  branches = it.ibranches;
                  kids = [ [ inner ] ];
                }
          in
          Some (wrap items)
  in
  embed_twig None (compile_twig twig)

(* ------------------------------------------------------------------ *)
(* Embedding cache                                                     *)

module Counters = Xtwig_util.Counters

let c_hits = Counters.counter "embed.cache_hits"
let c_misses = Counters.counter "embed.cache_misses"

type cache = {
  csyn : G.t;
  tbl : (string, enode list * bool) Hashtbl.t;
  chains : chains_memo;
  lock : Mutex.t;
  mutable frozen : bool;
}

let create_cache syn =
  {
    csyn = syn;
    tbl = Hashtbl.create 64;
    chains = Hashtbl.create 64;
    lock = Mutex.create ();
    frozen = false;
  }

let cache_synopsis c = c.csyn
let freeze c = c.frozen <- true
let thaw c = c.frozen <- false

let cache_key ?(max_alternatives = 64) twig =
  Printf.sprintf "%d#%s" max_alternatives
    (Xtwig_path.Path_printer.twig_to_string twig)

let embeddings_cached cache ?(max_alternatives = 64) syn twig =
  if syn != cache.csyn then begin
    (* a different synopsis: the cache does not apply *)
    Counters.incr c_misses;
    embeddings ~max_alternatives syn twig
  end
  else
    let key = cache_key ~max_alternatives twig in
    (* lock-free lookups are sound under the ownership rule (the cache
       is warmed by one domain, then frozen before any fan-out); the
       insertion lock only defends against a caller that violates it,
       turning a memory race into (at worst) a duplicated enumeration *)
    match Hashtbl.find_opt cache.tbl key with
    | Some (roots, trunc) ->
        Counters.incr c_hits;
        set_truncated trunc;
        roots
    | None ->
        Counters.incr c_misses;
        (* a cache fill is real work that chaos scenarios target; the
           engine's retry path re-enters here *)
        Xtwig_fault.Fault.point "embed.fill";
        (* the chains memo is shared mutable state: used only while the
           cache is thawed (single-owner phase); frozen-cache misses on
           worker domains enumerate without it *)
        let chains = if cache.frozen then None else Some cache.chains in
        let roots = embeddings ?chains ~max_alternatives syn twig in
        if not cache.frozen then begin
          Mutex.lock cache.lock;
          if not cache.frozen then
            Hashtbl.replace cache.tbl key (roots, last_truncated ());
          Mutex.unlock cache.lock
        end;
        roots

let visited_nodes roots =
  let seen = Hashtbl.create 32 in
  let rec walk_b (b : ebranch) =
    Hashtbl.replace seen b.bnode ();
    List.iter (List.iter walk_b) b.bsubs
  in
  let rec walk (e : enode) =
    Hashtbl.replace seen e.snode ();
    List.iter (List.iter walk_b) e.branches;
    List.iter (List.iter walk) e.kids
  in
  List.iter walk roots;
  List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let rec size e =
  1 + List.fold_left (fun a alts -> List.fold_left (fun a k -> a + size k) a alts) 0 e.kids

let pp syn ppf e =
  let rec go indent e =
    Format.fprintf ppf "%s%s (node %d)%s%s@." indent (G.tag_name syn e.snode)
      e.snode
      (if e.vpred <> None then " [vpred]" else "")
      (if e.branches <> [] then
         Printf.sprintf " [%d branch pred(s)]" (List.length e.branches)
       else "");
    List.iteri
      (fun i alts ->
        Format.fprintf ppf "%s kid %d (%d alternatives):@." indent i
          (List.length alts);
        List.iter (go (indent ^ "  ")) alts)
      e.kids
  in
  go "" e

(* ------------------------------------------------------------------ *)
(* Structural correspondence between two enumerations                  *)

(* Two enumerations of one query against structurally-identical
   synopses (e.g. before/after a no-effect split, whose result is a
   fresh graph with fresh node ids) produce trees of the same shape
   with renamed synopsis nodes. [structural_remap] walks both in
   lockstep, checking shape and binding synopsis nodes bijectively; on
   success the compiled-plan cache repatches the old plans onto the
   new sketch under the renaming instead of recompiling. Value
   predicates are compared by presence only: plan structure never
   depends on the predicate's constant (the value fractions it feeds
   are payload, recomputed from the new tree on repatch), so two
   different queries whose trees differ only in predicate constants
   still correspond. A non-bijective correspondence (one old node
   matching two new ones, or vice versa) means the partitions
   genuinely differ and the walk fails. *)
let same_presence a b =
  match (a, b) with None, None | Some _, Some _ -> true | _ -> false

let structural_remap (olds : enode list) (news : enode list) :
    ((int, enode) Hashtbl.t * (int, int) Hashtbl.t * (int, int) Hashtbl.t)
    option =
  let emap = Hashtbl.create 64 in
  let o2n = Hashtbl.create 32 in
  let n2o = Hashtbl.create 32 in
  let bind a b =
    match (Hashtbl.find_opt o2n a, Hashtbl.find_opt n2o b) with
    | Some b', Some a' -> b' = b && a' = a
    | None, None ->
        Hashtbl.add o2n a b;
        Hashtbl.add n2o b a;
        true
    | _ -> false
  in
  let rec walk_b (ob : ebranch) (nb : ebranch) =
    bind ob.bnode nb.bnode
    && same_presence ob.bvpred nb.bvpred
    && List.compare_lengths ob.bsubs nb.bsubs = 0
    && List.for_all2
         (fun oa na ->
           List.compare_lengths oa na = 0 && List.for_all2 walk_b oa na)
         ob.bsubs nb.bsubs
  in
  let rec walk (oe : enode) (ne : enode) =
    bind oe.snode ne.snode
    && same_presence oe.vpred ne.vpred
    && List.compare_lengths oe.branches ne.branches = 0
    && List.for_all2
         (fun oa na ->
           List.compare_lengths oa na = 0 && List.for_all2 walk_b oa na)
         oe.branches ne.branches
    && List.compare_lengths oe.kids ne.kids = 0
    && List.for_all2
         (fun oa na ->
           List.compare_lengths oa na = 0 && List.for_all2 walk oa na)
         oe.kids ne.kids
    && begin
         Hashtbl.replace emap oe.eid ne;
         true
       end
  in
  if
    List.compare_lengths olds news = 0
    && List.for_all2 walk olds news
  then Some (emap, o2n, n2o)
  else None
