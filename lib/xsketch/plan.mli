(** Compiled estimation plans (see DESIGN.md §12, "Plan compilation &
    caching").

    A plan is the compilation of a factored embedding against one
    sketch, factored into two phases:

    - a {e structure} phase — the TREEPARSE-style analysis of the
      reference evaluator (which histograms to enumerate, which kid
      alternatives are bucket-dependent, which environment entries
      exist at each program point, the scratch-cell layout), a pure
      function of the twig shape and the synopsis partition structure,
      summarized by a renaming-invariant {!signature};
    - a {e payload} phase — the interned bucket tables and float
      constants read from one concrete sketch, rebuilt in isolation by
      the repatch path when only payloads changed.

    {!run} interprets the plan as a flat numeric kernel over a
    per-domain [Bigarray] float64 arena and the plan's int32 slab,
    allocating zero words on the OCaml heap in steady state (held by a
    [Gc.minor_words] delta over {!run_batch} in test/test_plan.ml).

    {b Byte-identity:} [run (compile sk e)] replays the reference
    evaluator's floating-point operations in the exact same order, so
    it equals [Estimator.estimate_embedding sk e] bit-for-bit —
    whether the plan came from {!compile} or from a repatch (every
    payload constant is a pure function of the sketch). Held by
    test/test_plan.ml. *)

type t

val compile : Sketch.t -> Embed.enode -> t
(** Compile one embedding against one sketch (both phases). Counted
    under [plan.compiles]; the structure phase is timed under
    [plan.compile_ns] and the payload phase under [plan.repatch_ns]
    (it IS a repatch, and counts as one), so [plan.compile_ns]
    measures exactly the work a repatch skips. *)

val signature : t -> int
(** The plan's structural signature: a hash of the embedding-tree
    shape and the dimension layouts at the visited synopsis nodes,
    with node ids replaced by dense first-visit numbers — invariant
    under any consistent renaming of synopsis nodes, so payload-only
    refinements and structure-preserving re-partitions keep it
    stable. *)

val run : t -> float
(** Evaluate a compiled plan (the estimate of its embedding). Counted
    under [plan.runs]. The returned float is boxed by the caller's
    binding (we compile without flambda); the interpreter itself does
    not allocate. *)

val run_batch : t array -> float array -> unit
(** [run_batch ts out] stores [run ts.(i)] into [out.(i)] for every
    plan, without boxing any intermediate result — the zero-allocation
    entry point ([Invalid_argument] when [out] is shorter than
    [ts]). *)

val valid : t -> Sketch.t -> bool
(** Whether the plan may be reused for [sketch] as-is: the same
    sketch, or the same synopsis graph with unchanged histograms
    (physically, or by interned-table identity) and value summaries at
    every synopsis node the plan reads. XBUILD's incremental rebuilds
    share summary objects across candidates, so most non-structural
    refinements keep most plans valid. *)

val repatch : t -> Sketch.t -> t option
(** Payload-phase-only recompilation: when [sketch] shares the plan's
    synopsis and the dimension structure of every histogram the plan
    enumerates is unchanged, rebuild the bucket tables and float
    constants onto the existing skeleton. [None] when the structure
    phase would have to rerun. Counted under [plan.repatches], timed
    under [plan.repatch_ns]. *)

val compile_roots : Sketch.t -> Embed.enode list -> t array
(** Compile every embedding of one query, in enumeration order. *)

val run_all : t array -> float
(** Sum of {!run} over the plans, in order — the query estimate.
    Timed under [plan.run_ns]. *)

val estimate_once : Sketch.t -> Embed.enode list -> float
(** Compile-and-run without caching (for one-shot sketches, e.g.
    XBUILD's structural candidates that keep no cache). *)

(** {1 Plan cache}

    Keyed like the embedding cache — one synopsis by physical
    identity, queries by {!Embed.cache_key} — and governed by the same
    single-owner freeze discipline: one domain warms and thaws, worker
    domains read lock-free after {!freeze} and never insert. Entries
    are spread over [2^4] shards by key hash, each with its own
    insertion mutex, so concurrent owner-phase fills from a pool touch
    one shard and no global lock.

    A cached entry is reused directly when the caller's embeddings are
    physically the cached ones and every plan still {!valid}-ates
    ([plan.cache_hits]). A stale entry is {e repaired}, cheapest
    mechanism first: payload drift repatches plan-by-plan, structure
    drift recompiles only the affected plans, and a re-enumeration of
    an unchanged shape (fresh embedding objects, or the fresh synopsis
    node ids of a structure-preserving split reached through the
    [fallback] cache) cross-repatches under the structural renaming of
    {!Embed.structural_remap}. Repairs of this cache's own entries
    count under [plan.cache_invalidations], split by cause into
    [plan.invalidation{cause=payload|structure}]; entries replaced
    because the embeddings were re-enumerated into a different shape
    are evictions, counted only under [plan.invalidation{cause=evict}].
    First-time compiles count under [plan.cache_misses]; successful
    cross-cache reuse under [plan.fallback_reuses]. *)

type cache

val create_cache :
  ?fallback:cache -> ?tiered:bool -> Xtwig_synopsis.Graph_synopsis.t -> cache
(** [fallback] is the retiring cache this one replaces after a
    structural refinement step: entries missing here but present there
    are cross-repatched onto the new synopsis instead of recompiled.
    The fallback must be quiescent (frozen, or owner-idle) for the
    lifetime of the link; {!freeze} drops it, which also bounds
    fallback chains at depth one.

    [tiered] (default false) opts the cache into tiered execution:
    when the caller supplies an interpreter ({!estimate_cached}'s
    [interp]), a cold structure's first sighting within a generation
    (one thaw/freeze phase) is answered by the reference evaluator
    instead of the compiler; only structures that recur across
    generations — the durable workload — compile. Untiered caches
    keep the compile-always contract. *)

val cache_synopsis : cache -> Xtwig_synopsis.Graph_synopsis.t
val freeze : cache -> unit
val thaw : cache -> unit

val plans_cached : cache -> key:string -> Sketch.t -> Embed.enode list -> t array
(** Get-or-compile the plans of one query ([key] is its
    {!Embed.cache_key}; [roots] its embeddings for [sketch]). *)

val estimate_cached :
  ?interp:(Embed.enode -> float) ->
  cache ->
  key:string ->
  Sketch.t ->
  Embed.enode list ->
  float
(** [run_all (plans_cached ...)]. [interp] enables tiered execution:
    the first sighting of a cold structure that cannot adopt a cached
    skeleton is evaluated by [interp] (the caller's reference
    evaluator — bit-identical to a compiled plan by construction)
    instead of paying for a compile; only a structure seen again under
    the same key compiles. Counted under [plan.interp_estimates]. *)
