(** Compiled estimation plans (see DESIGN.md, "Compiled estimation
    plans").

    A plan is the one-shot compilation of a factored embedding against
    one sketch: the TREEPARSE-style analysis of the reference
    evaluator — which histograms to enumerate, which kid alternatives
    are bucket-dependent, which environment entries exist at each
    program point — is resolved at compile time into flat int/float
    arrays, and {!run} interprets them with a preallocated scratch
    environment indexed by dense edge slots. Histogram buckets are
    read from hash-consed flat tables ({!Xtwig_hist.Edge_hist.table}).

    {b Byte-identity:} [run (compile sk e)] replays the reference
    evaluator's floating-point operations in the exact same order, so
    it equals [Estimator.estimate_embedding sk e] bit-for-bit (held by
    test/test_plan.ml). *)

type t

val compile : Sketch.t -> Embed.enode -> t
(** Compile one embedding against one sketch. Counted under
    [plan.compiles] and timed under [plan.compile_ns]. *)

val run : t -> float
(** Evaluate a compiled plan (the estimate of its embedding). Counted
    under [plan.runs]. *)

val valid : t -> Sketch.t -> bool
(** Whether the plan may be reused for [sketch]: the same sketch, or
    the same synopsis graph with unchanged histograms (physically, or
    by interned-table identity) and value summaries at every synopsis
    node the plan reads. XBUILD's incremental rebuilds share summary
    objects across candidates, so most non-structural refinements keep
    most plans valid. *)

val compile_roots : Sketch.t -> Embed.enode list -> t array
(** Compile every embedding of one query, in enumeration order. *)

val run_all : t array -> float
(** Sum of {!run} over the plans, in order — the query estimate.
    Timed under [plan.run_ns]. *)

val estimate_once : Sketch.t -> Embed.enode list -> float
(** Compile-and-run without caching (for one-shot sketches, e.g.
    XBUILD's structural candidates). *)

(** {1 Plan cache}

    Keyed like the embedding cache — one synopsis by physical
    identity, queries by {!Embed.cache_key} — and governed by the same
    single-owner freeze discipline: one domain warms and thaws, worker
    domains read lock-free after {!freeze} and never insert. A cached
    entry is reused only when the caller's embeddings are physically
    the cached ones and every plan still {!valid}-ates; reuse counts
    under [plan.cache_hits], first-time compiles under
    [plan.cache_misses], recompiles forced by refined sketches under
    [plan.cache_invalidations]. *)

type cache

val create_cache : Xtwig_synopsis.Graph_synopsis.t -> cache
val cache_synopsis : cache -> Xtwig_synopsis.Graph_synopsis.t
val freeze : cache -> unit
val thaw : cache -> unit

val plans_cached : cache -> key:string -> Sketch.t -> Embed.enode list -> t array
(** Get-or-compile the plans of one query ([key] is its
    {!Embed.cache_key}; [roots] its embeddings for [sketch]). *)

val estimate_cached : cache -> key:string -> Sketch.t -> Embed.enode list -> float
(** [run_all (plans_cached ...)]. *)
