module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Prng = Xtwig_util.Prng
module Sparse_dist = Xtwig_hist.Sparse_dist

type op =
  | B_stabilize of { src : int; dst : int }
  | F_stabilize of { src : int; dst : int }
  | Edge_refine of { node : int; hist : int; extra_buckets : int }
  | Edge_expand of { node : int; dim : Sketch.dim; into : int option }
  | Value_refine of { node : int; extra_buckets : int }
  | Value_split of { node : int; ways : int }

(* ------------------------------------------------------------------ *)
(* Application                                                         *)

(* Remap a histogram configuration onto a synopsis obtained by
   splitting: every new node inherits the spec of the old node its
   extent came from, with each old dimension expanded to all new edges
   between the split images of its endpoints. *)
let remap_config old_syn (cfg : Sketch.config) new_syn : Sketch.config =
  let n_new = G.node_count new_syn in
  let old_of_new =
    Array.init n_new (fun n' ->
        let ext = G.extent new_syn n' in
        G.node_of_elem old_syn ext.(0))
  in
  (* images of each old node *)
  let images = Hashtbl.create 64 in
  Array.iteri
    (fun n' o ->
      Hashtbl.replace images o (n' :: Option.value ~default:[] (Hashtbl.find_opt images o)))
    old_of_new;
  let images o = Option.value ~default:[] (Hashtbl.find_opt images o) in
  let especs =
    Array.init n_new (fun n' ->
        let o = old_of_new.(n') in
        List.map
          (fun (spec : Sketch.hist_spec) ->
            let dims =
              List.concat_map
                (fun (d : Sketch.dim) ->
                  let srcs = if d.kind = Sketch.Forward then [ n' ] else images d.src in
                  List.concat_map
                    (fun s ->
                      List.filter_map
                        (fun t ->
                          match G.edge new_syn ~src:s ~dst:t with
                          | Some _ -> Some { d with Sketch.src = s; dst = t }
                          | None -> None)
                        (images d.dst))
                    srcs
                )
                spec.dims
              |> List.sort_uniq compare
            in
            (* a split can multiply one dimension into several; keep the
               spec's joint dimensionality bounded *)
            let dims = List.filteri (fun i _ -> i < 6) dims in
            { spec with Sketch.dims })
          cfg.especs.(o))
  in
  let vbudgets = Array.init n_new (fun n' -> cfg.vbudgets.(old_of_new.(n'))) in
  { Sketch.especs; vbudgets }

(* Drop a dimension from every spec of a node; remove empty specs and
   report the bucket budget freed by specs that disappeared entirely
   (so edge-expand can absorb it into the joint histogram). *)
let remove_dim specs (dim : Sketch.dim) =
  let freed = ref 0 in
  let kept =
    List.filter_map
      (fun (spec : Sketch.hist_spec) ->
        let dims = List.filter (fun d -> d <> dim) spec.dims in
        match dims with
        | [] ->
            freed := !freed + spec.Sketch.budget;
            None
        | _ -> Some { spec with Sketch.dims = dims })
      specs
  in
  (kept, !freed)

let apply sketch op =
  let syn = Sketch.synopsis sketch in
  let cfg = Sketch.config sketch in
  match op with
  | B_stabilize { src = _; dst } ->
      let syn' = G.split syn ~node:dst ~group_of:(G.b_stabilize_groups syn ~dst) in
      if syn' == syn then sketch
      else Sketch.build ~prev:sketch syn' (remap_config syn cfg syn')
  | F_stabilize { src; dst } ->
      let syn' = G.split syn ~node:src ~group_of:(G.f_stabilize_groups syn ~dst) in
      if syn' == syn then sketch
      else Sketch.build ~prev:sketch syn' (remap_config syn cfg syn')
  | Edge_refine { node; hist; extra_buckets } ->
      let especs = Array.copy cfg.especs in
      especs.(node) <-
        List.mapi
          (fun i (spec : Sketch.hist_spec) ->
            if i = hist then
              { spec with Sketch.budget = Stdlib.min 64 (spec.budget + extra_buckets) }
            else spec)
          especs.(node);
      Sketch.build ~prev:sketch syn { cfg with Sketch.especs = especs }
  | Edge_expand { node; dim; into } ->
      (* cap joint dimensionality: beyond 4 dims the bucket space is
         too sparse for the budgets XBUILD works with *)
      let too_wide =
        match into with
        | None -> false
        | Some i -> (
            match List.nth_opt cfg.especs.(node) i with
            | Some s -> List.length s.Sketch.dims >= 4
            | None -> false)
      in
      if too_wide then sketch
      else
      let especs = Array.copy cfg.especs in
      let specs, freed = remove_dim especs.(node) dim in
      (* a joint histogram with one bucket carries no correlation: give
         the expansion the freed budget plus room to separate a few
         modes right away *)
      let specs =
        match into with
        | None -> specs @ [ { Sketch.dims = [ dim ]; budget = Stdlib.max 2 freed } ]
        | Some i ->
            (* [into] indexes the ORIGINAL spec list; recover the spec
               by structural identity after removal *)
            let target = List.nth cfg.especs.(node) i in
            let target_dims = List.filter (fun d -> d <> dim) target.Sketch.dims in
            List.map
              (fun (spec : Sketch.hist_spec) ->
                if spec.Sketch.dims = target_dims && spec.budget = target.budget
                then
                  {
                    Sketch.dims = spec.Sketch.dims @ [ dim ];
                    budget = Stdlib.min 64 (Stdlib.max 4 (spec.budget + freed));
                  }
                else spec)
              specs
      in
      especs.(node) <- specs;
      Sketch.build ~prev:sketch syn { cfg with Sketch.especs = especs }
  | Value_refine { node; extra_buckets } ->
      let vbudgets = Array.copy cfg.vbudgets in
      vbudgets.(node) <- Stdlib.min 128 (vbudgets.(node) + extra_buckets);
      Sketch.build ~prev:sketch syn { cfg with Sketch.vbudgets = vbudgets }
  | Value_split { node; ways } ->
      (* group by an exact fresh MCV of the node's text values — the
         construction phase has the document at hand, like the other
         structural refinements *)
      let doc = G.doc syn in
      let texts =
        Array.to_list (G.extent syn node)
        |> List.filter_map (fun e ->
               match Xtwig_xml.Doc.value doc e with
               | Xtwig_xml.Value.Text s
                 when Xtwig_xml.Value.as_float (Xtwig_xml.Value.Text s) = None ->
                   Some s
               | _ -> None)
      in
      if texts = [] then sketch
      else begin
        let mcv = Xtwig_hist.Mcv.build ~budget:(Stdlib.max 1 ways) texts in
        let group_of e =
          let v = Xtwig_xml.Value.to_string (Xtwig_xml.Doc.value doc e) in
          match Xtwig_hist.Mcv.rank mcv v with
          | Some r -> r
          | None -> Stdlib.max 1 ways
        in
        let syn' = G.split syn ~node ~group_of in
        if syn' == syn then sketch
        else Sketch.build ~prev:sketch syn' (remap_config syn cfg syn')
      end

(* ------------------------------------------------------------------ *)

let touched_labels sketch op =
  let syn = Sketch.synopsis sketch in
  let labels =
    match op with
    | B_stabilize { src; dst } | F_stabilize { src; dst } ->
        [ G.tag_name syn src; G.tag_name syn dst ]
    | Edge_refine { node; _ } | Value_refine { node; _ } | Value_split { node; _ } ->
        [ G.tag_name syn node ]
    | Edge_expand { node; dim; _ } ->
        [ G.tag_name syn node; G.tag_name syn dim.src; G.tag_name syn dim.dst ]
  in
  List.sort_uniq compare labels

let kind_name = function
  | B_stabilize _ -> "b-stabilize"
  | F_stabilize _ -> "f-stabilize"
  | Edge_refine _ -> "edge-refine"
  | Edge_expand _ -> "edge-expand"
  | Value_refine _ -> "value-refine"
  | Value_split _ -> "value-split"

let all_kinds =
  [
    "b-stabilize"; "f-stabilize"; "edge-refine"; "edge-expand"; "value-refine";
    "value-split";
  ]

let describe sketch op =
  let syn = Sketch.synopsis sketch in
  let name n = Printf.sprintf "%s#%d" (G.tag_name syn n) n in
  match op with
  | B_stabilize { src; dst } -> Printf.sprintf "b-stabilize %s->%s" (name src) (name dst)
  | F_stabilize { src; dst } -> Printf.sprintf "f-stabilize %s->%s" (name src) (name dst)
  | Edge_refine { node; hist; extra_buckets } ->
      Printf.sprintf "edge-refine %s hist %d +%d buckets" (name node) hist extra_buckets
  | Edge_expand { node; dim; into } ->
      Printf.sprintf "edge-expand %s += %s->%s%s (into %s)" (name node)
        (name dim.src) (name dim.dst)
        (match dim.kind with Sketch.Forward -> "" | Sketch.Backward -> " (backward)")
        (match into with None -> "new" | Some i -> string_of_int i)
  | Value_refine { node; extra_buckets } ->
      Printf.sprintf "value-refine %s +%d buckets" (name node) extra_buckets
  | Value_split { node; ways } ->
      Printf.sprintf "value-split %s into %d" (name node) ways

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)

let unstable_degree syn n =
  let f acc (e : G.edge) = if e.b_stable && e.f_stable then acc else acc + 1 in
  List.fold_left f 0 (G.out_edges syn n) + List.fold_left f 0 (G.in_edges syn n)

let sample_node_weighted prng weights nodes =
  match nodes with
  | [] -> None
  | _ ->
      let w = Array.of_list (List.map weights nodes) in
      if Array.for_all (fun x -> x <= 0.0) w then None
      else Some (List.nth nodes (Prng.sample_weighted prng w))

(* The scope-eligible dimension (not currently covered) most correlated
   with [spec]'s dimensions at [node]. *)
let best_expand_dim sketch node (covered : Sketch.dim list) =
  let syn = Sketch.synopsis sketch in
  let eligible =
    List.filter_map
      (fun (src, dst) ->
        let kind = if src = node then Sketch.Forward else Sketch.Backward in
        let d = { Sketch.src; dst; kind } in
        if List.mem d covered then None else Some d)
      (Tsn.scope_edges syn node)
  in
  match (eligible, covered) with
  | [], _ -> None
  | ds, [] -> Some (List.hd ds)
  | ds, anchor :: _ ->
      (* score by |corr| against the first covered dimension, using the
         exact two-dimensional distribution *)
      let scored =
        List.map
          (fun d ->
            let sd = Sketch.distribution sketch node [| anchor; d |] in
            (Float.abs (Sparse_dist.correlation sd 0 1), d))
          ds
      in
      let best =
        List.fold_left
          (fun acc (s, d) ->
            match acc with
            | Some (s0, _) when s0 >= s -> acc
            | _ -> Some (s, d))
          None scored
      in
      Option.map snd best

let gen_candidates ?(count = 8) sketch prng =
  let syn = Sketch.synopsis sketch in
  let cfg = Sketch.config sketch in
  let all_nodes = List.init (G.node_count syn) Fun.id in
  let struct_weight n =
    float_of_int (G.extent_size syn n) *. float_of_int (unstable_degree syn n)
  in
  let extent_weight n = float_of_int (G.extent_size syn n) in
  let out = ref [] in
  let add op = if not (List.mem op !out) then out := op :: !out in
  let attempts = count * 6 in
  for _ = 1 to attempts do
    if List.length !out < count then
      match Prng.int prng 6 with
      | 0 -> (
          (* b-stabilize: an unstable incoming edge of a sampled node *)
          match sample_node_weighted prng struct_weight all_nodes with
          | None -> ()
          | Some v -> (
              let cands =
                List.filter (fun (e : G.edge) -> not e.b_stable) (G.in_edges syn v)
              in
              match cands with
              | [] -> ()
              | es ->
                  let e = Prng.pick_list prng es in
                  add (B_stabilize { src = e.src; dst = e.dst })))
      | 1 -> (
          match sample_node_weighted prng struct_weight all_nodes with
          | None -> ()
          | Some u -> (
              let cands =
                List.filter (fun (e : G.edge) -> not e.f_stable) (G.out_edges syn u)
              in
              match cands with
              | [] -> ()
              | es ->
                  let e = Prng.pick_list prng es in
                  add (F_stabilize { src = e.src; dst = e.dst })))
      | 2 -> (
          (* edge-refine on a node that has a histogram *)
          let with_hists =
            List.filter (fun n -> cfg.especs.(n) <> []) all_nodes
          in
          match sample_node_weighted prng extent_weight with_hists with
          | None -> ()
          | Some n ->
              let hist = Prng.int prng (List.length cfg.especs.(n)) in
              let current = (List.nth cfg.especs.(n) hist).Sketch.budget in
              add (Edge_refine { node = n; hist; extra_buckets = Stdlib.max 2 current }))
      | 3 -> (
          (* edge-expand: favour hub nodes with several stable child
             edges, where joint distributions have correlations to
             capture *)
          let hub_weight n =
            let stable_out =
              List.length
                (List.filter (fun (e : G.edge) -> e.f_stable) (G.out_edges syn n))
            in
            if stable_out < 2 then 0.0
            else float_of_int (G.extent_size syn n) *. float_of_int stable_out
          in
          match sample_node_weighted prng hub_weight all_nodes with
          | None -> ()
          | Some n -> (
              let covered =
                List.concat_map (fun (s : Sketch.hist_spec) -> s.dims) cfg.especs.(n)
              in
              match best_expand_dim sketch n covered with
              | None -> ()
              | Some dim ->
                  let into =
                    if cfg.especs.(n) = [] then None
                    else Some (Prng.int prng (List.length cfg.especs.(n)))
                  in
                  add (Edge_expand { node = n; dim; into })))
      | 4 -> (
          let with_vals =
            List.filter (fun n -> Sketch.vhist sketch n <> None) all_nodes
          in
          match sample_node_weighted prng extent_weight with_vals with
          | None -> ()
          | Some n -> add (Value_refine { node = n; extra_buckets = 4 }))
      | _ -> (
          (* value-split only pays off on genuinely categorical nodes:
             a few values covering most of the mass *)
          let with_cats =
            List.filter
              (fun n ->
                match Sketch.vcat sketch n with
                | Some m ->
                    List.length (Xtwig_hist.Mcv.entries m) >= 2
                    && Xtwig_hist.Mcv.other_mass m <= 0.5
                | None -> false)
              all_nodes
          in
          match sample_node_weighted prng extent_weight with_cats with
          | None -> ()
          | Some n -> add (Value_split { node = n; ways = 4 }))
  done;
  List.rev !out
