(** Selectivity estimation for twig queries over Twig XSKETCHes
    (Section 4).

    The estimate of a query is the sum of the estimates of its
    embeddings. Each embedding is evaluated by a top-down traversal
    that mirrors the TREEPARSE decomposition:

    - at each embedding node, histogram dimensions matching edges
      already expanded upstream form the correlation set [D] and
      condition the bucket enumeration ({b Correlation-Scope
      Independence}: distributions are independent of counts outside
      the histogram's scope, so conditioning reduces to a ratio of
      histogram marginals — realized here by renormalizing the
      context-compatible buckets);
    - child edges covered by a histogram contribute their per-bucket
      mean counts multiplicatively (the expansion set [E]);
    - child edges not covered by any histogram contribute their exact
      average fanout [count(u->v)/|u|] ({b Forward Uniformity}),
      independently of everything else ({b Forward Independence} —
      also embodied by treating distinct histograms at one node as
      independent);
    - value predicates contribute fractions from the node's value
      histogram, independent of structure (the prototype configuration
      of Section 6.1);
    - branching predicates contribute existence fractions: the
      expected number of matching children, capped at 1, estimated
      from the covering histogram when one exists and from average
      fanout otherwise.

    On a fully-refined synopsis with exact histograms covering every
    queried edge, the estimate equals the true selectivity (the
    zero-error property the paper derives for full distribution
    information). *)

val estimate_embedding : Sketch.t -> Embed.enode -> float
(** Estimate for one factored embedding: sums over each twig child's
    alternative assignments are distributed through the product over
    children (per bucket), which evaluates the full cross product of
    assignments without materializing it. This is the {e reference}
    recursive evaluator; the production path compiles the same
    traversal into a flat plan ({!Plan}) whose result is byte-identical
    by construction. *)

val estimate :
  ?max_alternatives:int ->
  ?cache:Embed.cache ->
  ?plans:Plan.cache ->
  Sketch.t ->
  Xtwig_path.Path_types.twig ->
  float
(** Sum over all embeddings of the query, evaluated through compiled
    plans. When [cache] is given and keyed to this sketch's synopsis,
    the embedding enumeration is shared across calls (and across the
    sketches of one XBUILD scoring step, which differ only in
    histograms). When [plans] is likewise keyed, compiled plans are
    cached per query and revalidated against [sketch] on reuse; a
    plans cache for a different synopsis is bypassed. Estimates are
    identical with or without either cache, and bit-identical to
    {!estimate_reference}. *)

val estimate_reference :
  ?max_alternatives:int ->
  ?cache:Embed.cache ->
  Sketch.t ->
  Xtwig_path.Path_types.twig ->
  float
(** The recursive evaluator, kept as the differential-testing baseline
    for the compiled path (timed under [estimator.reference_ns], not
    [estimator.ns]). *)

val estimate_path : Sketch.t -> Xtwig_path.Path_types.path -> float
(** Single-path-expression cardinality (a chain twig). *)

val existence_frac : Sketch.t -> int -> Embed.ebranch list -> float
(** [existence_frac t u alts]: estimated fraction of node [u]'s
    elements with at least one match of a branching predicate, given
    the predicate's alternative embeddings. Exposed for tests. *)
