(** Twig XSKETCH synopses (Definition 3.1).

    A Twig XSKETCH couples a {!Xtwig_synopsis.Graph_synopsis.t} with
    localized distribution information:

    - per synopsis node, a set of {e edge histograms}, each
      approximating the joint distribution of a tuple of edge counts
      drawn from the node's twig stable neighborhood (forward counts
      to F-stable children; backward counts to F-stable children of
      B-stable ancestors);
    - per synopsis node with numeric leaf values, a one-dimensional
      {e value histogram} (the configuration of the paper's prototype).

    Keeping a {e set} of histograms per node (rather than exactly one)
    lets the initial coarse synopsis carry the paper's
    "single-dimensional edge-histograms ... to forward-stable children
    only", with the edge-expand refinement merging histograms into
    higher-dimensional ones as the budget grows. Dimensions of
    distinct histograms at one node are treated as independent — the
    Forward Independence assumption made structural. *)

type dim_kind = Forward | Backward

type dim = { src : int; dst : int; kind : dim_kind }
(** One histogram dimension: the count of synopsis edge [src -> dst].
    [Forward] dims have [src] = the owning node; [Backward] dims have
    [src] = a B-stable ancestor of the owning node. *)

type hist_spec = { dims : dim list; budget : int }
(** Configuration of one histogram: which edges it covers and its
    bucket budget. *)

type config = {
  especs : hist_spec list array;  (** per synopsis node *)
  vbudgets : int array;
      (** per synopsis node; 0 = no value histogram *)
}

type t

(** {1 Construction} *)

val build : ?prev:t -> Xtwig_synopsis.Graph_synopsis.t -> config -> t
(** Computes every configured histogram from the document. Histogram
    dimensions whose edges are not scope-eligible for the owning node
    (per {!Xtwig_synopsis.Tsn}) are dropped silently — this is what
    keeps configurations valid across structural refinements.

    When [prev] is given, built histograms and value summaries are
    reused at per-histogram granularity whenever they are provably
    identical:

    - [prev] over the {e same} (physically equal) synopsis: a
      histogram is reused when its valid dimensions and bucket budget
      are unchanged — non-structural refinements rebuild only the one
      histogram they touch;
    - [prev] over {e another synopsis of the same document} (after a
      structural split): each node is matched to the previous node
      with the elementwise-identical extent, and a histogram is reused
      when the owning node and every dimension endpoint have such a
      match (edge distributions depend only on those extents). Only
      the split images and their scope neighbours rebuild.

    Reuse is observable through the [sketch.*] counters of
    {!Xtwig_util.Counters}. *)

val build_with :
  ?prev:t ->
  node_map:(int -> int) ->
  Xtwig_synopsis.Graph_synopsis.t ->
  config ->
  t
(** [build] with an explicit node correspondence: [node_map n] is the
    node of [prev] whose extent is elementwise identical to [n]'s
    under the caller's element correspondence, or [-1]. This is the
    construction {!apply_delta} runs after a splice, where the
    documents differ and {!build}'s same-document matching cannot
    apply. Callers must uphold the elementwise-extent invariant — it
    is exactly what makes histogram and value-summary reuse sound. *)

(** {1 Incremental maintenance} *)

type delta =
  | Insert of { parent : Xtwig_xml.Doc.node; fragment : Xtwig_xml.Doc.t }
      (** graft [fragment] (a parsed document) as a new last child of
          [parent] *)
  | Delete of Xtwig_xml.Doc.node
      (** remove the subtree rooted at a (non-root) node *)

val apply_delta : ?reuse:bool -> t -> delta -> t
(** Incrementally maintain the sketch under a subtree insert or
    delete, without re-running XBUILD:

    - the document is spliced ({!Xtwig_xml.Doc.splice_insert} /
      [splice_delete]);
    - the partition is carried across — surviving groups persist,
      inserted elements of a known tag join that tag's smallest node,
      fresh tags get fresh nodes;
    - the configuration follows its nodes (dimensions whose endpoint
      vanished are dropped); fresh nodes start with the coarsest
      defaults;
    - every histogram and value summary whose owning node and
      dimension endpoints have elementwise-identical extents across
      the splice is reused in place; only the neighbourhood of the
      edit recomputes.

    Differential contract: the result equals
    [build (synopsis result) (config result)] — a from-scratch build
    over the same synopsis and configuration — bucket for bucket.
    [~reuse:false] forces that from-scratch path (the differential
    harness in [bench ingest] compares the two). Raises
    [Invalid_argument] on an out-of-range node (or deleting the
    root). Runs through the [sketch.delta] fault point. Reuse is
    observable via the [sketch.delta*] counters. *)

val coarsest :
  ?ebudget:int -> ?vbudget:int -> Xtwig_synopsis.Graph_synopsis.t -> t
(** The initial synopsis of XBUILD: one 1-d histogram per F-stable
    child edge ([ebudget] buckets each, default 1) and a [vbudget]-
    bucket value histogram on every node with numeric values
    (default 2). *)

val default_of_doc : ?ebudget:int -> ?vbudget:int -> Xtwig_xml.Doc.t -> t
(** [coarsest] over the label-split synopsis. *)

(** {1 Accessors} *)

val synopsis : t -> Xtwig_synopsis.Graph_synopsis.t
val doc : t -> Xtwig_xml.Doc.t
val config : t -> config

val changed_nodes : t -> int list option
(** For a sketch built with [~prev]: the nodes of [prev] (in [prev]'s
    numbering, sorted) whose summary data is not provably carried over
    unchanged — split images, scope neighbours whose histograms were
    rebuilt, and any node whose reuse failed. An estimate over [prev]
    whose embeddings avoid all of these equals the estimate over this
    sketch (provided the embedding enumeration was not truncated), so
    XBUILD reuses the base estimate instead of recomputing. [None]
    when the sketch was built from scratch. *)


val hists : t -> int -> (dim array * Xtwig_hist.Edge_hist.t) list
(** The built histograms of one node, paired with their dimension
    scopes. *)

val vhist : t -> int -> Xtwig_hist.Hist1d.t option
(** Numeric value histogram of a node, when its elements carry numeric
    values. *)

val vcat : t -> int -> Xtwig_hist.Mcv.t option
(** Most-common-value summary of a node's categorical (text) values —
    the extension beyond the paper's numeric-only prototype that
    serves string-equality predicates (see DESIGN.md §5). *)

val node_count : t -> int

val covering_hist :
  t -> int -> dim -> (dim array * Xtwig_hist.Edge_hist.t * int) option
(** [covering_hist t n d] finds the histogram at node [n] containing
    dimension [d], returning (scope, histogram, dim index). *)

val avg_fanout : t -> src:int -> dst:int -> float
(** [count(src -> dst) / |src|] — the Forward Uniformity estimate for
    uncovered edges; 0 for absent edges. *)

val exist_frac : t -> src:int -> dst:int -> float
(** Fraction of [src] elements with at least one child in [dst],
    straight from the synopsis edge record — the exact unconditioned
    existence probability for single-step branching predicates
    (1.0 when the edge is F-stable, 0 when absent). *)

val value_frac : t -> int -> Xtwig_path.Path_types.value_pred -> float
(** Estimated fraction of node elements satisfying a value predicate,
    from the node's value histogram. Falls back to 0.1 when the node
    has no histogram (a predicate on an unsummarized node). *)

(** {1 Size accounting} *)

val size_bytes : t -> int
(** Structure + edge histograms (buckets plus 8 bytes per scope
    dimension) + value histograms. This is the x-axis of Figure 9. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Exact references (tests / reference summaries)} *)

val exact_for_scopes : Xtwig_synopsis.Graph_synopsis.t -> dim list list array -> t
(** Builds with unbounded bucket budgets (exact histograms) for the
    given per-node histogram groupings, and exact-budget value
    histograms; the zero-error configuration used by tests. *)

val dim_edges_of_node : t -> int -> (int * int) list
(** All scope-eligible edges of a node (delegates to Tsn). *)

val distribution : t -> int -> dim array -> Xtwig_hist.Sparse_dist.t
(** The exact edge distribution of one node over the given dimensions,
    recomputed from the document — used by refinement scoring and by
    tests. *)
