module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module Edge_hist = Xtwig_hist.Edge_hist
module Sparse_dist = Xtwig_hist.Sparse_dist
module Hist1d = Xtwig_hist.Hist1d

type dim_kind = Forward | Backward

type dim = { src : int; dst : int; kind : dim_kind }

type hist_spec = { dims : dim list; budget : int }

type config = { especs : hist_spec list array; vbudgets : int array }

type t = {
  syn : G.t;
  config : config;
  ehists : (dim array * Edge_hist.t) list array;
  ebudgets : int list array;
      (* bucket budget of each built histogram, aligned with [ehists];
         needed to decide reuse across rebuilds *)
  vhists : Hist1d.t option array;
  vcats : Xtwig_hist.Mcv.t option array;
  changed_vs_prev : int list option;
      (* when built with [~prev]: the prev-numbering nodes whose data
         is not provably identical in this sketch (see [build]) *)
}

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)

module Counters = Xtwig_util.Counters

let c_builds = Counters.counter "sketch.builds"
let c_dists = Counters.counter "sketch.dists_computed"
let c_ehists_built = Counters.counter "sketch.ehists_built"
let c_ehists_reused = Counters.counter "sketch.ehists_reused"
let c_vals_built = Counters.counter "sketch.value_summaries_built"
let c_vals_reused = Counters.counter "sketch.value_summaries_reused"

(* ------------------------------------------------------------------ *)
(* Distribution computation                                            *)

(* Count of [e]'s children lying in synopsis node [z] — answered by
   the synopsis' structural index. *)
let forward_count syn e z = G.child_count syn e z

(* The (unique, B-stable-chain) ancestor of [e] in node [a], if any. *)
let ancestor_in syn e a =
  let doc = G.doc syn in
  let rec up e =
    if G.node_of_elem syn e = a then Some e
    else match Doc.parent doc e with None -> None | Some p -> up p
  in
  up e

let count_for_dim syn n e d =
  match d.kind with
  | Forward -> forward_count syn e d.dst
  | Backward -> (
      ignore n;
      match ancestor_in syn e d.src with
      | Some anc -> forward_count syn anc d.dst
      | None -> 0)

let distribution_of syn n dims =
  Counters.incr c_dists;
  let k = Array.length dims in
  let vectors =
    Array.to_list
      (Array.map
         (fun e -> Array.init k (fun i -> count_for_dim syn n e dims.(i)))
         (G.extent syn n))
  in
  Sparse_dist.of_vectors ~dims:k vectors

(* ------------------------------------------------------------------ *)
(* Build                                                               *)

let valid_dims syn n dims =
  let eligible = Tsn.scope_edges syn n in
  List.filter
    (fun d ->
      List.mem (d.src, d.dst) eligible
      &&
      match d.kind with
      | Forward -> d.src = n
      | Backward -> d.src <> n)
    dims

(* Incremental construction. [node_map] maps each node of the synopsis
   being built to the node of [prev] with the {e identical} extent, if
   one exists:

   - when [prev] is built over the same (physically equal) synopsis,
     the map is the identity;
   - when [prev] is built over {e another synopsis of the same
     document} (the situation after a structural split), a new node
     maps to the previous node holding its first element, provided
     their extents coincide elementwise. Splits refine the partition,
     so the only nodes without an image are the split products.

   A built histogram can be reused whenever its owning node and every
   dimension endpoint have identical extents in both synopses: edge
   distributions depend only on those extents (children membership for
   forward counts, the B-stable ancestor chain for backward counts)
   and on the immutable document. Value summaries depend only on the
   owning node's extent and the budget. *)
let node_map_of prev syn =
  let n_nodes = G.node_count syn in
  match prev with
  | None -> (fun _ -> -1)
  | Some p when p.syn == syn -> (fun n -> n)
  | Some p when G.doc p.syn == G.doc syn ->
      let psyn = p.syn in
      let map =
        Array.init n_nodes (fun n ->
            let ext = G.extent syn n in
            let o = G.node_of_elem psyn ext.(0) in
            let pext = G.extent psyn o in
            if Array.length pext <> Array.length ext then -1
            else begin
              let same = ref true in
              let i = ref 0 in
              let len = Array.length ext in
              while !same && !i < len do
                if ext.(!i) <> pext.(!i) then same := false;
                Stdlib.incr i
              done;
              if !same then o else -1
            end)
      in
      fun n -> map.(n)
  | Some _ -> (fun _ -> -1)

let t_build_ns = Counters.timer "sketch.build_ns"

(* The full construction, parameterized over the node correspondence.
   [node_map] maps each node of [syn] to the node of [prev] whose
   extent is elementwise identical under the caller's element
   correspondence (identity for [build]; the splice survivor map for
   [apply_delta]), or [-1]. Reuse soundness only needs that invariant:
   edge distributions depend on the extents of the owning node and of
   every dimension endpoint, value summaries on the owning node's
   extent alone. *)
let build_with ?prev ~node_map syn config =
  Counters.time t_build_ns @@ fun () ->
  Counters.incr c_builds;
  let n_nodes = G.node_count syn in
  if Array.length config.especs <> n_nodes || Array.length config.vbudgets <> n_nodes
  then invalid_arg "Sketch.build: config arity mismatch";
  (* previous histogram with exactly these dimensions (in [prev]'s node
     ids) and this budget, at previous node [o] *)
  let prev_hist o (old_dims : dim array) budget =
    match prev with
    | None -> None
    | Some p ->
        let rec scan hs bs =
          match (hs, bs) with
          | (dims', h) :: hs', b' :: bs' ->
              if b' = budget && dims' = old_dims then Some h else scan hs' bs'
          | _, _ -> None
        in
        scan p.ehists.(o) p.ebudgets.(o)
  in
  let reuse_hist n dims budget =
    let o = node_map n in
    if o < 0 then None
    else
      let old_dims =
        let ok = ref true in
        let mapped =
          Array.map
            (fun d ->
              let s = node_map d.src and t = node_map d.dst in
              if s < 0 || t < 0 then begin
                ok := false;
                d
              end
              else { d with src = s; dst = t })
            dims
        in
        if !ok then Some mapped else None
      in
      match old_dims with
      | None -> None
      | Some old_dims -> prev_hist o old_dims budget
  in
  let ehists = Array.make n_nodes [] in
  let ebudgets = Array.make n_nodes [] in
  for n = 0 to n_nodes - 1 do
    (* node-level fast path: same synopsis and unchanged spec list
       share the previous node's histogram list wholesale *)
    match prev with
    | Some p when p.syn == syn && p.config.especs.(n) = config.especs.(n) ->
        Counters.incr ~by:(List.length p.ehists.(n)) c_ehists_reused;
        ehists.(n) <- p.ehists.(n);
        ebudgets.(n) <- p.ebudgets.(n)
    | _ ->
    let built =
      List.filter_map
        (fun spec ->
          match valid_dims syn n spec.dims with
          | [] -> None
          | dims ->
              let dims = Array.of_list dims in
              let h =
                match reuse_hist n dims spec.budget with
                | Some h ->
                    Counters.incr c_ehists_reused;
                    h
                | None ->
                    Counters.incr c_ehists_built;
                    Edge_hist.build ~budget:spec.budget
                      (distribution_of syn n dims)
              in
              Some (dims, h, spec.budget))
        config.especs.(n)
    in
    ehists.(n) <- List.map (fun (d, h, _) -> (d, h)) built;
    ebudgets.(n) <- List.map (fun (_, _, b) -> b) built
  done;
  let doc = G.doc syn in
  let vhists = Array.make n_nodes None in
  let vcats = Array.make n_nodes None in
  for n = 0 to n_nodes - 1 do
    let vb = config.vbudgets.(n) in
    let reused =
      let o = node_map n in
      match prev with
      | Some p when o >= 0 && p.config.vbudgets.(o) = vb ->
          vhists.(n) <- p.vhists.(o);
          vcats.(n) <- p.vcats.(o);
          true
      | _ -> false
    in
    if reused then Counters.incr c_vals_reused
    else if vb > 0 then begin
      Counters.incr c_vals_built;
      (* one extent pass collecting both the numeric values and the
         text values that are not merely numbers in disguise *)
      let nums = ref [] and texts = ref [] in
      Array.iter
        (fun e ->
          let v = Doc.value doc e in
          match Value.as_float v with
          | Some x -> nums := x :: !nums
          | None -> (
              match v with
              | Value.Text s -> texts := s :: !texts
              | Value.Null | Value.Int _ | Value.Float _ -> ()))
        (G.extent syn n);
      (match !nums with
      | [] -> ()
      | l -> vhists.(n) <- Some (Hist1d.build ~budget:vb (Array.of_list (List.rev l))));
      match !texts with
      | [] -> ()
      | l -> vcats.(n) <- Some (Xtwig_hist.Mcv.build ~budget:vb (List.rev l))
    end
  done;
  (* Changed-node summary for the estimation-skip optimisation in
     XBUILD: an old node is {e unchanged} when some new node carries
     the elementwise-identical extent and physically the same summary
     objects, hist for hist (same list position) and value summary.
     Estimates of queries whose embeddings only touch unchanged nodes
     are then provably identical to the previous sketch's. *)
  let changed_vs_prev =
    match prev with
    | None -> None
    | Some p ->
        let pn = Array.length p.ehists in
        let ok = Array.make pn false in
        for n = 0 to n_nodes - 1 do
          let o = node_map n in
          if o >= 0 then begin
            let same_hists =
              List.compare_lengths ehists.(n) p.ehists.(o) = 0
              && List.for_all2
                   (fun (_, h) (_, h') -> h == h')
                   ehists.(n) p.ehists.(o)
            in
            let same_opt a b =
              match (a, b) with
              | None, None -> true
              | Some x, Some y -> x == y
              | _ -> false
            in
            if
              same_hists
              && same_opt vhists.(n) p.vhists.(o)
              && same_opt vcats.(n) p.vcats.(o)
            then ok.(o) <- true
          end
        done;
        let changed = ref [] in
        for o = pn - 1 downto 0 do
          if not ok.(o) then changed := o :: !changed
        done;
        Some !changed
  in
  { syn; config; ehists; ebudgets; vhists; vcats; changed_vs_prev }

let build ?prev syn config =
  build_with ?prev ~node_map:(node_map_of prev syn) syn config

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)

type delta =
  | Insert of { parent : Doc.node; fragment : Doc.t }
  | Delete of Doc.node

let c_deltas = Counters.counter "sketch.deltas"
let c_delta_nodes_kept = Counters.counter "sketch.delta_nodes_kept"
let t_delta_ns = Counters.timer "sketch.delta_ns"

(* Smallest synopsis node carrying [tname], if any — where inserted
   elements of an already-known tag are filed. *)
let min_node_with_label syn tname =
  match G.nodes_with_label syn tname with
  | [] -> -1
  | n :: rest -> List.fold_left Stdlib.min n rest

let apply_delta ?(reuse = true) t delta =
  Xtwig_fault.Fault.point "sketch.delta";
  Counters.time t_delta_ns @@ fun () ->
  Counters.incr c_deltas;
  let syn = t.syn in
  let doc = G.doc syn in
  let n_nodes = G.node_count syn in
  (* 1. splice the document; [emap] maps each old element to its new
     id, -1 for deleted ones (the identity under an insert: survivors
     keep their ids, the fragment is appended) *)
  let doc', emap =
    match delta with
    | Insert { parent; fragment } ->
        (Doc.splice_insert doc ~parent ~fragment, Array.init (Doc.size doc) Fun.id)
    | Delete node -> Doc.splice_delete doc node
  in
  (* 2. partition keys in the new numbering. Survivors keep their old
     synopsis node as the key, so every surviving group persists (and
     [of_partition]'s dense first-appearance renumbering preserves
     their relative order). Inserted elements of a known tag join that
     tag's smallest node; fresh tags get keys disjoint from the old
     node ids, one group per tag. *)
  let n_new = Doc.size doc' in
  let keys = Array.make n_new (-1) in
  Array.iteri
    (fun e e' -> if e' >= 0 then keys.(e') <- G.node_of_elem syn e)
    emap;
  for e' = 0 to n_new - 1 do
    if keys.(e') < 0 then
      keys.(e') <-
        (match min_node_with_label syn (Doc.tag_name doc' e') with
        | -1 -> n_nodes + Doc.tag doc' e'
        | n -> n)
  done;
  let syn' = G.of_partition doc' keys in
  let n_nodes' = G.node_count syn' in
  (* 3. node correspondences. [image]: old node -> the new node its
     survivors landed in (every survivor shares the key, hence the
     group), -1 when the whole extent was deleted. [nmap]: new node ->
     old node, defined only when the extents are elementwise identical
     through [emap] — the reuse precondition of [build_with]. *)
  let image = Array.make n_nodes (-1) in
  let nmap = Array.make n_nodes' (-1) in
  for o = 0 to n_nodes - 1 do
    let ext = G.extent syn o in
    let surv = ref (-1) in
    let intact = ref true in
    Array.iter
      (fun e ->
        let e' = Array.unsafe_get emap e in
        if e' < 0 then intact := false else if !surv < 0 then surv := e')
      ext;
    if !surv >= 0 then begin
      let n' = G.node_of_elem syn' !surv in
      image.(o) <- n';
      if !intact then begin
        let ext' = G.extent syn' n' in
        if Array.length ext' = Array.length ext then begin
          let same = ref true in
          Array.iteri
            (fun i e -> if emap.(e) <> Array.unsafe_get ext' i then same := false)
            ext;
          if !same then begin
            nmap.(n') <- o;
            Counters.incr c_delta_nodes_kept
          end
        end
      end
    end
  done;
  (* 4. carry the configuration across: specs follow their owning node
     through [image]; dimensions whose endpoint vanished are dropped
     (exactly the silent-drop rule [build] applies to scope-ineligible
     dims). Nodes of fresh tags start with the coarsest defaults — no
     edge histograms (Forward Uniformity serves their edges) and a
     2-bucket value summary, matching [coarsest]. *)
  let especs' = Array.make n_nodes' [] in
  let vbudgets' = Array.make n_nodes' 2 in
  for o = 0 to n_nodes - 1 do
    let n' = image.(o) in
    if n' >= 0 then begin
      vbudgets'.(n') <- t.config.vbudgets.(o);
      especs'.(n') <-
        List.filter_map
          (fun spec ->
            match
              List.filter_map
                (fun d ->
                  let s = image.(d.src) and dst = image.(d.dst) in
                  if s < 0 || dst < 0 then None
                  else Some { d with src = s; dst })
                spec.dims
            with
            | [] -> None
            | dims -> Some { spec with dims })
          t.config.especs.(o)
    end
  done;
  let config' = { especs = especs'; vbudgets = vbudgets' } in
  if reuse then build_with ~prev:t ~node_map:(fun n -> nmap.(n)) syn' config'
  else build_with ~node_map:(fun _ -> -1) syn' config'

let coarsest ?(ebudget = 1) ?(vbudget = 2) syn =
  let n_nodes = G.node_count syn in
  let especs =
    Array.init n_nodes (fun n ->
        List.filter_map
          (fun (e : G.edge) ->
            if e.f_stable then
              Some
                {
                  dims = [ { src = n; dst = e.dst; kind = Forward } ];
                  budget = ebudget;
                }
            else None)
          (G.out_edges syn n))
  in
  let vbudgets = Array.make n_nodes vbudget in
  build syn { especs; vbudgets }

let default_of_doc ?ebudget ?vbudget doc =
  coarsest ?ebudget ?vbudget (G.label_split doc)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let synopsis t = t.syn
let doc t = G.doc t.syn
let config t = t.config
let changed_nodes t = t.changed_vs_prev
let hists t n = t.ehists.(n)
let vhist t n = t.vhists.(n)
let vcat t n = t.vcats.(n)
let node_count t = G.node_count t.syn

let covering_hist t n d =
  let rec scan = function
    | [] -> None
    | (dims, h) :: rest -> (
        let idx = ref (-1) in
        Array.iteri (fun i d' -> if d' = d then idx := i) dims;
        match !idx with -1 -> scan rest | i -> Some (dims, h, i))
  in
  scan t.ehists.(n)

let avg_fanout t ~src ~dst =
  match G.edge t.syn ~src ~dst with
  | None -> 0.0
  | Some e ->
      let n = G.extent_size t.syn src in
      if n = 0 then 0.0 else float_of_int e.count /. float_of_int n

let exist_frac t ~src ~dst =
  match G.edge t.syn ~src ~dst with
  | None -> 0.0
  | Some e ->
      let n = G.extent_size t.syn src in
      if n = 0 then 0.0 else float_of_int e.src_with_child /. float_of_int n

let value_frac t n pred =
  match (pred : Xtwig_path.Path_types.value_pred) with
  (* string equality goes to the categorical summary *)
  | Cmp (Eq, Value.Text s) when Value.as_float (Value.Text s) = None -> (
      match t.vcats.(n) with
      | Some m -> Xtwig_hist.Mcv.frac_eq m s
      | None -> 0.1)
  | Cmp (Ne, Value.Text s) when Value.as_float (Value.Text s) = None -> (
      match t.vcats.(n) with
      | Some m -> Xtwig_hist.Mcv.frac_ne m s
      | None -> 0.9)
  | _ -> (
      match t.vhists.(n) with
      | None -> 0.1
      | Some h -> (
          match pred with
          | Range (lo, hi) -> Hist1d.frac_range h lo hi
          | Cmp (op, v) -> (
              match Value.as_float v with
              | None -> 0.1
              | Some x ->
                  let op' =
                    match op with
                    | Xtwig_path.Path_types.Lt -> `Lt
                    | Le -> `Le
                    | Eq -> `Eq
                    | Ne -> `Ne
                    | Ge -> `Ge
                    | Gt -> `Gt
                  in
                  Hist1d.frac_cmp h op' x)))

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)

let size_bytes t =
  let structural = G.structure_bytes t.syn in
  let ebytes =
    Array.fold_left
      (fun acc hs ->
        List.fold_left
          (fun acc (dims, h) ->
            acc + Edge_hist.size_bytes h + (8 * Array.length dims))
          acc hs)
      0 t.ehists
  in
  let vbytes =
    Array.fold_left
      (fun acc vh ->
        match vh with None -> acc | Some h -> acc + Hist1d.size_bytes h)
      0 t.vhists
  in
  let cbytes =
    Array.fold_left
      (fun acc vc ->
        match vc with None -> acc | Some m -> acc + Xtwig_hist.Mcv.size_bytes m)
      0 t.vcats
  in
  structural + ebytes + vbytes + cbytes

let pp_stats ppf t =
  let nh = Array.fold_left (fun a l -> a + List.length l) 0 t.ehists in
  let nv =
    Array.fold_left (fun a v -> match v with Some _ -> a + 1 | None -> a) 0 t.vhists
  in
  Format.fprintf ppf "xsketch: %a; %d edge-hists, %d value-hists, %d bytes"
    G.pp_stats t.syn nh nv (size_bytes t)

(* ------------------------------------------------------------------ *)
(* Exact references                                                    *)

let exact_for_scopes syn groupings =
  let n_nodes = G.node_count syn in
  if Array.length groupings <> n_nodes then
    invalid_arg "Sketch.exact_for_scopes: arity mismatch";
  let especs =
    Array.map
      (fun groups -> List.map (fun dims -> { dims; budget = max_int }) groups)
      groupings
  in
  let vbudgets = Array.make n_nodes max_int in
  build syn { especs; vbudgets }

let dim_edges_of_node t n = Tsn.scope_edges t.syn n

let distribution t n dims = distribution_of t.syn n dims
