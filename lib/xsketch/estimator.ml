module G = Xtwig_synopsis.Graph_synopsis
module Edge_hist = Xtwig_hist.Edge_hist
open Embed

(* Synopsis edges are keyed as [src * node_count + dst] throughout the
   traversal: the environment and the per-subtree "needs" sets live on
   hot paths (consulted per bucket combination), so they use plain
   integer keys instead of tuples and structural hashing. *)

let rec env_find (key : int) (env : (int * (float * float)) list) =
  match env with
  | [] -> None
  | (k, v) :: rest -> if k = key then Some v else env_find key rest

let rec env_mem (key : int) (env : (int * (float * float)) list) =
  match env with
  | [] -> false
  | (k, _) :: rest -> k = key || env_mem key rest

let rec mem_int (x : int) = function
  | [] -> false
  | (k : int) :: rest -> k = x || mem_int x rest

let vfrac sketch snode = function
  | None -> 1.0
  | Some p -> Sketch.value_frac sketch snode p

(* Existence fraction of one branching predicate (a list of alternative
   embedded paths) below an element of node [u]: expected number of
   matching children, capped at 1. *)
let rec branch_frac sketch u (alts : ebranch list) =
  let one (b : ebranch) =
    (* the synopsis records the exact unconditioned existence fraction
       of every edge *)
    let expected = Sketch.exist_frac sketch ~src:u ~dst:b.bnode in
    let nested =
      List.fold_left
        (fun acc pred -> acc *. branch_frac sketch b.bnode pred)
        (vfrac sketch b.bnode b.bvpred)
        b.bsubs
    in
    Stdlib.min 1.0 (expected *. nested)
  in
  Stdlib.min 1.0 (List.fold_left (fun acc b -> acc +. one b) 0.0 alts)

(* Branch fraction of one alternative with the expected child count
   taken from the environment when an enumerated histogram fixed it —
   this is what correlates branching predicates with structural-join
   counts once edge-expand covers the branch edge. *)
let branch_frac_env sketch nn u env (alts : ebranch list) =
  let one (b : ebranch) =
    let expected =
      match env_find ((u * nn) + b.bnode) env with
      (* conditioned on the enumerated bucket: correlates the branch
         with the structural-join counts *)
      | Some (_, p1) -> p1
      | None -> Sketch.exist_frac sketch ~src:u ~dst:b.bnode
    in
    let nested =
      List.fold_left
        (fun acc pred -> acc *. branch_frac sketch b.bnode pred)
        (vfrac sketch b.bnode b.bvpred)
        b.bsubs
    in
    Stdlib.min 1.0 (expected *. nested)
  in
  Stdlib.min 1.0 (List.fold_left (fun acc b -> acc +. one b) 0.0 alts)

let all_branch_fracs_env sketch nn u env (preds : ebranch list list) =
  List.fold_left
    (fun acc alts -> acc *. branch_frac_env sketch nn u env alts)
    1.0 preds

(* ------------------------------------------------------------------ *)

(* Environment of expanded edge counts: edge key -> (representative
   count, within-bucket P(count >= 1)), threaded top-down so that
   backward-count dimensions and branch existence can condition on the
   counts chosen upstream (the correlation sets D_i). *)

let estimate_embedding sketch (root : enode) =
  let syn = Sketch.synopsis sketch in
  let nn = G.node_count syn in
  let ekey u v = (u * nn) + v in
  (* Edges referenced by any histogram dimension in the subtree of an
     embedding node: if an upstream bucket enumeration fixes one of
     these, the subtree's value depends on it and must be recomputed
     per bucket. Memoized per enode id for the traversal. *)
  let memo_needs : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let rec needs_of (e : enode) : int list =
    match Hashtbl.find_opt memo_needs e.eid with
    | Some l -> l
    | None ->
        let own =
          List.concat_map
            (fun ((dims : Sketch.dim array), _) ->
              Array.to_list
                (Array.map (fun (d : Sketch.dim) -> ekey d.src d.dst) dims))
            (Sketch.hists sketch e.snode)
        in
        let l =
          List.sort_uniq compare
            (own
            @ List.concat_map
                (fun alts -> List.concat_map needs_of alts)
                e.kids)
        in
        Hashtbl.add memo_needs e.eid l;
        l
  in
  (* expected number of tuple extensions below [e], per element bound
     to [e] *)
  let rec expand (e : enode) (env : (int * (float * float)) list) : float =
    let n = e.snode in
    let hs = Sketch.hists sketch n in
    let hist_edges ((dims : Sketch.dim array), _) =
      Array.to_list (Array.map (fun (d : Sketch.dim) -> ekey d.src d.dst) dims)
    in
    (* is the edge to an alternative covered by histogram [i]? *)
    let covering_idx (a : enode) =
      let d : Sketch.dim = { src = n; dst = a.snode; kind = Sketch.Forward } in
      let rec scan i = function
        | [] -> None
        | (dims, _) :: rest ->
            if Array.exists (fun d' -> d' = d) dims then Some i else scan (i + 1) rest
      in
      scan 0 hs
    in
    (* first edges of this node's branching predicates: a histogram
       covering one of them carries the branch/count correlation and
       must be enumerated too *)
    let branch_first_edges =
      List.concat_map
        (fun alts -> List.map (fun (b : ebranch) -> ekey n b.bnode) alts)
        e.branches
    in
    (* histograms needing bucket enumeration: they cover some
       alternative's edge, a branch edge, or a dimension some subtree
       conditions on *)
    let all_alts = List.concat e.kids in
    let enum_flag =
      Array.of_list
        (List.mapi
           (fun i h ->
             List.exists (fun a -> covering_idx a = Some i) all_alts
             ||
             let es = hist_edges h in
             List.exists (fun ed -> mem_int ed es) branch_first_edges
             || List.exists
                  (fun a -> List.exists (fun ed -> mem_int ed es) (needs_of a))
                  all_alts)
           hs)
    in
    let enum_hists = List.filteri (fun i _ -> enum_flag.(i)) hs in
    let enum_edges = List.concat_map hist_edges enum_hists in
    (* value of one alternative under an environment: its value
       predicate times its subtree expansion (the alternative's own
       branching predicates are handled inside its [expand], where its
       histograms can condition them) *)
    let alt_value (a : enode) env' =
      vfrac sketch a.snode a.vpred *. expand a env'
    in
    (* one alternative's full contribution: count factor x value *)
    let alt_contrib (a : enode) env' ~fixed =
      let count =
        match env_find (ekey n a.snode) env' with
        | Some (c, _) -> c
        | None -> Sketch.avg_fanout sketch ~src:n ~dst:a.snode
      in
      let v = match fixed with Some v -> v | None -> alt_value a env' in
      count *. v
    in
    (* does this alternative's contribution change per bucket? *)
    let alt_dep (a : enode) =
      mem_int (ekey n a.snode) enum_edges
      || List.exists (fun ed -> mem_int ed enum_edges) (needs_of a)
    in
    (* kid dependence flags as a flat array: the per-combination leaf
       below indexes them per kid, so no linear List.nth rescans *)
    let kid_arr = Array.of_list e.kids in
    let nk = Array.length kid_arr in
    let kid_dep = Array.map (fun alts -> List.exists alt_dep alts) kid_arr in
    let indep_factor = ref 1.0 in
    Array.iteri
      (fun i alts ->
        if not kid_dep.(i) then
          indep_factor :=
            !indep_factor
            *. List.fold_left
                 (fun s a -> s +. alt_contrib a env ~fixed:None)
                 0.0 alts)
      kid_arr;
    let indep_factor = !indep_factor in
    (* pre-compute bucket-independent alternative values inside
       dependent kids (the count factor may vary while the subtree
       value does not); dense [i * width + j] indexing, same trick as
       the integer edge keys above *)
    let width =
      Array.fold_left (fun w alts -> Stdlib.max w (List.length alts)) 0 kid_arr
    in
    let fixed_values = Array.make (Stdlib.max 1 (nk * width)) 0.0 in
    let fixed_set = Array.make (Stdlib.max 1 (nk * width)) false in
    Array.iteri
      (fun i alts ->
        if kid_dep.(i) then
          List.iteri
            (fun j a ->
              let subtree_dep =
                List.exists (fun ed -> mem_int ed enum_edges) (needs_of a)
              in
              if not subtree_dep then begin
                fixed_values.((i * width) + j) <- alt_value a env;
                fixed_set.((i * width) + j) <- true
              end)
            alts)
      kid_arr;
    (* does the node's own branch factor vary with the bucket combo? *)
    let branch_dep =
      List.exists (fun ed -> mem_int ed enum_edges) branch_first_edges
    in
    (* sum over the bucket combos of the enumerated histograms *)
    let rec combos hlist env' acc_w =
      match hlist with
      | [] ->
          let factor = ref 1.0 in
          if branch_dep then
            factor := all_branch_fracs_env sketch nn n env' e.branches;
          Array.iteri
            (fun i alts ->
              if kid_dep.(i) then begin
                let s = ref 0.0 in
                List.iteri
                  (fun j a ->
                    let fixed =
                      if fixed_set.((i * width) + j) then
                        Some fixed_values.((i * width) + j)
                      else None
                    in
                    s := !s +. alt_contrib a env' ~fixed)
                  alts;
                factor := !factor *. !s
              end)
            kid_arr;
          acc_w *. !factor
      | ((dims : Sketch.dim array), h) :: rest ->
          (* correlation set D: dimensions fixed upstream *)
          let ctx = ref [] in
          Array.iteri
            (fun di (d : Sketch.dim) ->
              match env_find (ekey d.src d.dst) env' with
              | Some (v, _) -> ctx := (di, v) :: !ctx
              | None -> ())
            dims;
          List.fold_left
            (fun acc (w, bucket) ->
              let w' = acc_w *. w in
              if w' < 1e-9 then acc
              else begin
                let env'' = ref env' in
                Array.iteri
                  (fun di (d : Sketch.dim) ->
                    let key = ekey d.src d.dst in
                    if not (env_mem key !env'') then
                      env'' :=
                        ( key,
                          ( (bucket : Edge_hist.bucket).mean.(di),
                            Edge_hist.p_ge1 bucket di ) )
                        :: !env'')
                  dims;
                acc +. combos rest !env'' w'
              end)
            0.0
            (Edge_hist.enum_buckets h ~ctx:!ctx)
    in
    let dep_factor =
      match enum_hists with [] -> 1.0 | hl -> combos hl env 1.0
    in
    let indep_branch_factor =
      if branch_dep then 1.0 else all_branch_fracs_env sketch nn n env e.branches
    in
    indep_branch_factor *. indep_factor *. dep_factor
  in
  let n0 = root.snode in
  float_of_int (G.extent_size syn n0)
  *. vfrac sketch n0 root.vpred
  *. expand root []

let t_estimate = Xtwig_util.Counters.timer "estimator.ns"
let t_reference = Xtwig_util.Counters.timer "estimator.reference_ns"

let embeddings_of ?max_alternatives ?cache syn twig =
  match cache with
  | Some c -> Embed.embeddings_cached c ?max_alternatives syn twig
  | None -> Embed.embeddings ?max_alternatives syn twig

(* The recursive evaluator above, kept as the differential baseline
   for the compiled plans (timed separately so estimator.ns tracks
   only the production path). *)
let estimate_reference ?max_alternatives ?cache sketch twig =
  Xtwig_obs.Trace.with_span ~name:"estimator.estimate_reference" @@ fun () ->
  Xtwig_util.Counters.time t_reference @@ fun () ->
  let embs = embeddings_of ?max_alternatives ?cache (Sketch.synopsis sketch) twig in
  List.fold_left (fun acc e -> acc +. estimate_embedding sketch e) 0.0 embs

(* Production path: compile each embedding into a flat plan and run
   it. When [plans] is given and keyed to this sketch's synopsis, the
   compiled plans are cached per query alongside the embedding cache
   and revalidated against [sketch] on every reuse. *)
let estimate ?max_alternatives ?cache ?plans sketch twig =
  Xtwig_obs.Trace.with_span ~name:"estimator.estimate" @@ fun () ->
  Xtwig_util.Counters.time t_estimate @@ fun () ->
  let syn = Sketch.synopsis sketch in
  let embs = embeddings_of ?max_alternatives ?cache syn twig in
  match plans with
  | Some pc when Plan.cache_synopsis pc == syn ->
      (* the reference evaluator backs tiered execution: a cold
         structure's first sighting is interpreted instead of paying
         for a throwaway compile; bit-identical either way *)
      Plan.estimate_cached pc
        ~interp:(fun e -> estimate_embedding sketch e)
        ~key:(Embed.cache_key ?max_alternatives twig)
        sketch embs
  | _ -> Plan.estimate_once sketch embs

let estimate_path sketch p =
  estimate sketch { Xtwig_path.Path_types.path = p; subs = [] }

let existence_frac = branch_frac
