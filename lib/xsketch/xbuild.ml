module Prng = Xtwig_util.Prng
module Stats = Xtwig_util.Stats
module Counters = Xtwig_util.Counters
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace

let c_steps = Counters.counter "xbuild.steps"
let c_candidates = Counters.counter "xbuild.candidates_scored"
let c_est_skipped = Counters.counter "xbuild.estimates_skipped"
let c_est_computed = Counters.counter "xbuild.estimates_computed"
let t_build = Counters.timer "xbuild.ns"
let t_apply = Counters.timer "xbuild.apply_ns"
let t_gen = Counters.timer "xbuild.gen_ns"

(* per-round latency distribution: a round = candidate generation +
   base pass + scoring + the chosen apply *)
let h_round =
  Metrics.histogram
    ~bounds:(Metrics.exponential ~start:1e-4 ~factor:2.0 ~n:24)
    "xbuild.round.seconds"

(* applied refinements by kind, e.g. xbuild.ops_applied{op.kind=...} *)
let c_ops_applied =
  List.map
    (fun k -> (k, Metrics.counter ~labels:[ ("op.kind", k) ] "xbuild.ops_applied"))
    Refinement.all_kinds

let count_applied op =
  match List.assoc_opt (Refinement.kind_name op) c_ops_applied with
  | Some c -> Metrics.incr c
  | None -> ()

type step_info = {
  step : int;
  op : Refinement.op;
  description : string;
  size : int;
  workload_error : float;
}

(* The paper's sanity bound: the 10th percentile of the positive true
   counts. Computed once per truth vector — every candidate of one
   scoring step shares it. *)
let sanity_floor truths =
  let m = ref 0 in
  Array.iter (fun c -> if c > 0.0 then Stdlib.incr m) truths;
  if !m = 0 then 1.0
  else begin
    let positive = Array.make !m 0.0 in
    let i = ref 0 in
    Array.iter
      (fun c ->
        if c > 0.0 then begin
          positive.(!i) <- c;
          Stdlib.incr i
        end)
      truths;
    Stats.percentile positive 10.0
  end

(* Average absolute relative error against precomputed truths. *)
let error_against ~truths ~sanity ?cache sketch queries =
  let i = ref (-1) in
  let errs =
    List.map
      (fun q ->
        Stdlib.incr i;
        let est = Estimator.estimate ?cache sketch q in
        let c = truths.(!i) in
        Float.abs (est -. c) /. Stdlib.max sanity c)
      queries
  in
  Stats.mean_list errs

let workload_error sketch ~truth queries =
  match queries with
  | [] -> 0.0
  | _ ->
      let truths = Array.of_list (List.map truth queries) in
      let sanity = sanity_floor truths in
      error_against ~truths ~sanity sketch queries

let build ?pool ?(seed = 42) ?(candidates = 8) ?(max_steps = 400) ?(ebudget0 = 1)
    ?(vbudget0 = 2) ?on_step ?plan_cache_out ~workload ~truth ~budget doc =
  Counters.time t_build @@ fun () ->
  let prng = Prng.create seed in
  let sketch = ref (Sketch.default_of_doc ~ebudget:ebudget0 ~vbudget:vbudget0 doc) in
  (* a fixed anchor workload keeps candidate scores comparable across
     steps; per-step queries focused on the touched regions are added
     on top (the paper's region-local sampling) *)
  let anchor = workload prng ~focus:[] in
  (* embedding cache, recreated whenever a structural step replaces
     the synopsis; within one step every non-split candidate shares
     the enumeration warmed by the base-error pass *)
  let ecache = ref (Embed.create_cache (Sketch.synopsis !sketch)) in
  (* compiled-plan cache, same lifecycle: recreated on structural
     steps, revalidated entry-by-entry across the histogram-only
     sketches of one scoring step *)
  let pcache = ref (Plan.create_cache ~tiered:true (Sketch.synopsis !sketch)) in
  let step = ref 0 in
  let continue = ref true in
  while !continue && Sketch.size_bytes !sketch < budget && !step < max_steps do
    incr step;
    Counters.incr c_steps;
    Metrics.time h_round @@ fun () ->
    Trace.with_span ~name:"xbuild.round" ~args:[ ("step", string_of_int !step) ]
    @@ fun () ->
    let cands =
      Trace.with_span ~name:"xbuild.gen_candidates" @@ fun () ->
      Counters.time t_gen @@ fun () ->
      Refinement.gen_candidates ~count:candidates !sketch prng
    in
    if cands = [] then continue := false
    else begin
      let focus =
        List.sort_uniq compare
          (List.concat_map (Refinement.touched_labels !sketch) cands)
      in
      let queries = anchor @ workload prng ~focus in
      (* truths are resolved once on this thread: worker domains only
         read the resulting array *)
      let truths = Array.of_list (List.map truth queries) in
      let sanity = sanity_floor truths in
      let cache =
        if Embed.cache_synopsis !ecache == Sketch.synopsis !sketch then !ecache
        else begin
          ecache := Embed.create_cache (Sketch.synopsis !sketch);
          !ecache
        end
      in
      let plans =
        if Plan.cache_synopsis !pcache == Sketch.synopsis !sketch then !pcache
        else begin
          (* a structural step replaced the synopsis: the retiring
             cache becomes the fallback, so queries whose partition is
             structurally unchanged cross-repatch their old plans
             instead of recompiling. The base pass below migrates the
             live entries; [Plan.freeze] then drops the link. *)
          pcache :=
            Plan.create_cache ~fallback:!pcache ~tiered:true
              (Sketch.synopsis !sketch);
          !pcache
        end
      in
      let qarr = Array.of_list queries in
      let nq = Array.length qarr in
      let base_terms = Array.make nq 0.0 in
      let visited = Array.make nq [] in
      let trunc = Array.make nq false in
      let syn0 = Sketch.synopsis !sketch in
      Embed.thaw cache;
      Plan.thaw plans;
      (* the base-error pass warms [cache] with this step's queries
         (main domain) and records, per query, the synopsis nodes its
         embeddings touch: a candidate that changes none of them has a
         provably identical estimate, which is reused below *)
      Trace.with_span ~name:"xbuild.base_pass" (fun () ->
          for i = 0 to nq - 1 do
            let embs = Embed.embeddings_cached cache syn0 qarr.(i) in
            trunc.(i) <- Embed.last_truncated ();
            visited.(i) <- Embed.visited_nodes embs;
            let est = Estimator.estimate ~cache ~plans !sketch qarr.(i) in
            let c = truths.(i) in
            base_terms.(i) <- Float.abs (est -. c) /. Stdlib.max sanity c
          done);
      Embed.freeze cache;
      Plan.freeze plans;
      let base_error = Stats.mean base_terms in
      let base_size = Sketch.size_bytes !sketch in
      let score op =
        Trace.with_span ~name:"xbuild.score"
          ~args:[ ("op.kind", Refinement.kind_name op) ]
        @@ fun () ->
        Counters.incr c_candidates;
        let refined = Counters.time t_apply @@ fun () -> Refinement.apply !sketch op in
        let size = Sketch.size_bytes refined in
        if size <= base_size then None
        else
          let same_syn = Sketch.synopsis refined == syn0 in
          let changed = Sketch.changed_nodes refined in
          (* structural candidates can't use the shared caches (their
             synopsis is new); a candidate-local embedding cache at
             least shares the per-step chain expansions across this
             candidate's queries. Worker-local, so mutation is safe. *)
          let cand_cache =
            lazy (Embed.create_cache (Sketch.synopsis refined))
          in
          (* a candidate-local plan cache never sees a repeated query,
             but it carries the shared compile context, amortizing the
             per-node analysis across this candidate's queries — and
             the step's frozen shared cache as fallback, so a
             structural candidate that leaves a query's partition
             shape intact repatches that query's plans instead of
             compiling them. Worker-local, so mutation is safe; the
             fallback is frozen and only read. *)
          let cand_plans =
            lazy
              (Plan.create_cache ~fallback:plans ~tiered:true
                 (Sketch.synopsis refined))
          in
          let err =
            let terms = Array.make nq 0.0 in
            for i = 0 to nq - 1 do
              let skip =
                (same_syn || not trunc.(i))
                &&
                match changed with
                | Some ch ->
                    not (List.exists (fun v -> List.mem v ch) visited.(i))
                | None -> false
              in
              if skip then begin
                Counters.incr c_est_skipped;
                terms.(i) <- base_terms.(i)
              end
              else begin
                Counters.incr c_est_computed;
                let est =
                  if same_syn then
                    Estimator.estimate ~cache ~plans refined qarr.(i)
                  else
                    Estimator.estimate ~cache:(Lazy.force cand_cache)
                      ~plans:(Lazy.force cand_plans) refined qarr.(i)
                in
                let c = truths.(i) in
                terms.(i) <- Float.abs (est -. c) /. Stdlib.max sanity c
              end
            done;
            Stats.mean terms
          in
          let gain = (base_error -. err) /. float_of_int (size - base_size) in
          Some (gain, op, refined, size, err)
      in
      (* Candidates are independent: score them on the domain pool when
         one is given. Each candidate keeps its index in the sampled
         order, and the reduction below picks the best (gain, index)
         pair in index order — strictly-greater gain wins, ties keep
         the earliest candidate — which is exactly the sequential
         fold's choice. The selected refinement, and therefore the
         whole build, is bit-identical however many domains score. *)
      let carr = Array.of_list cands in
      let scored =
        match pool with
        | None -> Array.map score carr
        | Some p -> Xtwig_util.Pool.map_array p ~f:(fun _i op -> score op) carr
      in
      let best = ref None in
      Array.iter
        (fun r ->
          match (r, !best) with
          | None, _ -> ()
          | Some _, None -> best := r
          | Some (g, _, _, _, _), Some (g0, _, _, _, _) ->
              if g > g0 then best := r)
        scored;
      (match !best with
      | None -> continue := false
      | Some (_, op, refined, size, err) ->
          let description = Refinement.describe !sketch op in
          count_applied op;
          sketch := refined;
          (match on_step with
          | None -> ()
          | Some f ->
              f refined
                { step = !step; op; description; size; workload_error = err }))
    end
  done;
  (* hand the warm (frozen, quiescent) plan cache to the caller: an
     estimation session built on the result repatches the build's
     plans instead of compiling its first batch cold *)
  (match plan_cache_out with Some r -> r := Some !pcache | None -> ());
  !sketch
