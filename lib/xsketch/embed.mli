(** Expansion of twig queries into maximal twig embeddings (Section 4).

    A twig query is first rewritten into its {e maximal} forms — every
    multi-step path becomes a chain of single-step twig nodes and
    every ['//'] is expanded with valid synopsis paths — and each
    maximal form is matched onto concrete synopsis nodes. The
    selectivity of the query is the sum of the selectivities of its
    unique embeddings.

    Materializing the full cross product of per-child node assignments
    is exponential, so embeddings are kept {e factored}: each twig
    child carries the list of its alternative embedded chains, and the
    estimator distributes the sum over alternatives through the
    product over children (sound because different children's
    assignments are independent choices and binding-tuple sets of
    distinct assignments are disjoint). Only the root's alternative
    chains are returned as separate embeddings. Branching predicates
    are existential: their alternatives are combined into one
    existence fraction rather than summed as disjoint embeddings. *)

type ebranch = {
  bnode : int;  (** synopsis node *)
  bvpred : Xtwig_path.Path_types.value_pred option;
  bsubs : ebranch list list;
      (** one entry per existential predicate below this node (nested
          branching predicates and the chain continuation); each entry
          lists its alternative embeddings *)
}

type enode = {
  eid : int;
      (** dense id, unique within one {!embeddings} result — the
          estimator keys its per-traversal memo tables on it instead
          of hashing enode structure *)
  snode : int;  (** synopsis node *)
  vpred : Xtwig_path.Path_types.value_pred option;
  branches : ebranch list list;
      (** as [bsubs]: one alternatives-list per branching predicate *)
  kids : enode list list;
      (** one entry per twig child (chain intermediates have exactly
          one); each entry lists the child's alternative embedded
          chains — at least one, or the node would not exist *)
}

type chains_memo
(** Memo of per-step synopsis chain expansions, valid for one synopsis
    graph. Owned by an embedding {!cache} (queries against one
    synopsis share most of their step expansions); not constructible
    directly. *)

val embeddings :
  ?chains:chains_memo ->
  ?max_alternatives:int ->
  Xtwig_synopsis.Graph_synopsis.t ->
  Xtwig_path.Path_types.twig ->
  enode list
(** The factored embeddings of the query: one per alternative chain of
    the root path, each rooted at a node matching the first step
    (anchored at the synopsis root for child-axis roots). Descendant
    steps are expanded with synopsis paths of length bounded by the
    document depth. [max_alternatives] (default 64) bounds the
    alternative chains kept per path expansion; overflow is reported
    by {!last_truncated}. A node one of whose twig children (or
    branching predicates) cannot be embedded at all is dropped
    (selectivity 0). *)

val last_truncated : unit -> bool
(** Whether the calling domain's most recent {!embeddings} call hit a
    cap. The flag is domain-local, so concurrent enumerations on pool
    workers do not clobber each other's truncation status. *)

(** {1 Embedding cache}

    Embeddings depend only on the synopsis {e graph} and the query —
    not on histograms — so every non-structural refinement candidate
    scored by XBUILD shares one enumeration. A cache is keyed to one
    synopsis by physical identity; queries against any other synopsis
    bypass it. Hits and misses are counted under [embed.cache_hits] /
    [embed.cache_misses] in {!Xtwig_util.Counters}. *)

type cache

val create_cache : Xtwig_synopsis.Graph_synopsis.t -> cache

val cache_synopsis : cache -> Xtwig_synopsis.Graph_synopsis.t
(** The synopsis the cache is keyed to. *)

val freeze : cache -> unit
(** Stop accepting insertions. The ownership rule for domain-parallel
    callers (XBUILD's scoring fan-out, the estimation engine's batch
    evaluation): exactly one domain warms the cache, freezes it, and
    only then shares it — worker domains read it lock-free and never
    insert. *)

val thaw : cache -> unit
(** Re-enable insertions. Only the owning domain may thaw, and only
    while no other domain holds the cache. *)

val cache_key : ?max_alternatives:int -> Xtwig_path.Path_types.twig -> string
(** The string key a query enumerates under (also used by the
    compiled-plan cache, so a query's embeddings and plans share one
    identity). *)

val embeddings_cached :
  cache ->
  ?max_alternatives:int ->
  Xtwig_synopsis.Graph_synopsis.t ->
  Xtwig_path.Path_types.twig ->
  enode list
(** As {!embeddings}, consulting the cache when the given synopsis is
    the cache's. Also restores the {!last_truncated} flag of the
    cached enumeration. Insertions happen only while the cache is
    thawed (and are lock-protected as a second line of defence);
    lookups are lock-free under the {!freeze} ownership rule. *)

val visited_nodes : enode list -> int list
(** Sorted distinct synopsis nodes referenced anywhere in the given
    embeddings — chain nodes, alternatives and branching-predicate
    nodes. An estimate reads sketch data only at these nodes, which is
    what lets XBUILD reuse a base estimate for refinement candidates
    that change none of them. *)

val size : enode -> int
(** Number of embedding nodes, counting each alternative (branch
    nodes excluded). *)

val pp : Xtwig_synopsis.Graph_synopsis.t -> Format.formatter -> enode -> unit

val structural_remap :
  enode list ->
  enode list ->
  ((int, enode) Hashtbl.t * (int, int) Hashtbl.t * (int, int) Hashtbl.t) option
(** [structural_remap olds news] walks two enumerations of one query in
    lockstep and, when they have identical shape and value predicates
    up to a bijective renaming of synopsis nodes, returns
    [(emap, o2n, n2o)]: old embedding id to new {!enode}, and the
    old-to-new / new-to-old synopsis-node bijection. This is how the
    compiled-plan cache recognizes re-enumerations against a
    structurally-identical synopsis (e.g. the fresh node ids a
    no-effect split produces) and repatches instead of recompiling.
    [None] when the shapes differ or the correspondence is not
    bijective. *)
