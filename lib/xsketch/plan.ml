(* Compiled estimation plans: the TREEPARSE-style recursive evaluator
   of [Estimator] lowered into flat arrays (see DESIGN.md, "Plan
   compilation & caching").

   Compilation is factored into two phases:

   - the {e structure} phase — which histograms need bucket
     enumeration, which kid alternatives depend on the enumerated
     combination, which environment entries are bound at each program
     point, the dense slot layout and the scratch-cell layout of the
     interpreter. All of that is a pure function of the twig shape and
     the synopsis partition structure (dimension layouts at the
     visited nodes); it is summarized by a renaming-invariant
     structural signature ([psig]).
   - the {e payload} phase — the interned bucket tables, value
     fractions, average fanouts, existence fractions and branch
     constants read from one concrete sketch. [payload_of] rebuilds
     exactly these onto an existing skeleton (the repatch path), which
     is why refinements that only perturb payloads never pay for the
     structure analysis again.

   The run-time interpreter [run] is a flat numeric kernel: per-node
   index arrays live in one preallocated int32 Bigarray slab, and all
   mutable float state (environment slots, fixed values, per-node and
   per-enumeration-level accumulator cells) lives in a per-domain
   float64 Bigarray arena. The kernel allocates nothing on the OCaml
   heap: no closures, no float refs, no boxed float arguments or
   returns (we are compiled without flambda, so each of those would
   allocate) — held by a [Gc.minor_words] delta test over
   {!run_batch} in test/test_plan.ml.

   Byte-identity contract: [run] replays the reference evaluator's
   float operations in the exact same order (fold orders, the
   [w' < 1e-9] pruning, the reverse-dimension context distance, the
   renormalization in bucket order), so [run (compile sk e) =
   Estimator.estimate_embedding sk e] bit-for-bit. test/test_plan.ml
   holds this differentially across datasets, workloads and refinement
   budgets; repatched plans are indistinguishable from fresh compiles
   because every payload constant is a deterministic pure function of
   (sketch, node ids). *)

module G = Xtwig_synopsis.Graph_synopsis
module Edge_hist = Xtwig_hist.Edge_hist
module Counters = Xtwig_util.Counters
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module A1 = Bigarray.Array1
open Embed

let t_compile = Counters.timer "plan.compile_ns"
let t_repatch = Counters.timer "plan.repatch_ns"
let t_run = Counters.timer "plan.run_ns"
let c_compiles = Counters.counter "plan.compiles"
let c_runs = Counters.counter "plan.runs"
let c_hits = Counters.counter "plan.cache_hits"
let c_misses = Counters.counter "plan.cache_misses"

(* [plan.cache_invalidations] counts entries whose plans genuinely
   failed revalidation (payload or structure drift). Entries replaced
   because the caller's embeddings were re-enumerated are {e evictions},
   not invalidations — the earlier aggregate overcounted them. The
   cause split lives in the labeled [plan.invalidation] family. *)
let c_invalid = Counters.counter "plan.cache_invalidations"
let c_repatch = Counters.counter "plan.repatches"
let c_fallback_reuse = Counters.counter "plan.fallback_reuses"

(* skeleton-store outcomes on the compile path: a miss is a genuinely
   novel structure; a reject is a signature hit whose structural
   correspondence could not be established (hash collision or a
   layout difference the signature abstracts) *)
let c_skel_adopt = Counters.counter "plan.skeleton_adoptions"
let c_skel_miss = Counters.counter "plan.skeleton_misses"
let c_skel_reject = Counters.counter "plan.skeleton_rejects"

(* cold first sightings served by the reference evaluator instead of
   the compiler (tiered execution: compile only what recurs) *)
let c_interp = Counters.counter "plan.interp_estimates"

let c_inv_payload =
  Metrics.counter ~labels:[ ("cause", "payload") ] "plan.invalidation"

let c_inv_structure =
  Metrics.counter ~labels:[ ("cause", "structure") ] "plan.invalidation"

let c_inv_evict =
  Metrics.counter ~labels:[ ("cause", "evict") ] "plan.invalidation"

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t
type iarr = (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t

(* ------------------------------------------------------------------ *)
(* Plan representation                                                 *)

(* One enumerated histogram at a node. Its context dimensions (the
   correlation set D at this program point) and the dimensions it
   binds live in the plan's int32 slab: [ctx_off] addresses [n_ctx]
   dimension indices followed by [n_ctx] environment slots, [bind_off]
   likewise for the bound dimensions. *)
type hplan = {
  tb : Edge_hist.table;
  h_idx : int;  (* index in the node's histogram list, for repatching *)
  n_ctx : int;
  ctx_off : int;
  n_bind : int;
  bind_off : int;
}

(* One alternative of one twig kid. [count_slot >= 0] when the edge
   count comes from an enumerated bucket, else [count_const] (average
   fanout). [fixed_idx >= 0] when the alternative sits under a
   bucket-dependent kid but its own subtree value is combo-invariant
   and is precomputed once into the fixed scratch. *)
type aplan = {
  child : int;  (* plan-node index *)
  a_vfrac : float;
  count_slot : int;
  count_const : float;
  fixed_idx : int;
}

type kplan = { k_dep : bool; alts : aplan array }

(* One alternative of one branching predicate. [b_slot >= 0] reads the
   bucket-conditioned P(count >= 1) from scratch; [b_default] is the
   synopsis existence fraction, [b_nested] the compile-time-constant
   nested factor (value predicate times nested branch fractions). *)
type balt = { b_slot : int; b_default : float; b_nested : float }

(* [scr] is the node's base offset in the float64 scratch arena:
   +0 result, +1 independent-kid product, +2 kid alternative sum,
   +3 leaf factor, +4 branch-factor product, +5 branch alternative
   sum, then one 5-cell block per enumeration level (including the
   leaf level): +0 incoming weight, +1 combination sum, +2 compatible
   mass, +3 best distance, +4 distance accumulator. *)
type pnode = {
  kids : kplan array;
  enum : hplan array;
  branches : balt array array;
  branch_dep : bool;
  branch_const : float;  (* branch factor when [not branch_dep] *)
  pe : enode;  (* the embedding node this plan node compiles *)
  scr : int;
}

type t = {
  nodes : pnode array;  (* children before parents *)
  root : int;
  root_const : float;  (* extent size x root value fraction *)
  n_slots : int;
  n_fixed : int;
  o_p1 : int;  (* scratch offset of the P(count>=1) slots (= n_slots) *)
  o_fixed : int;  (* scratch offset of the fixed values (= 2*n_slots) *)
  scr_len : int;  (* total scratch cells the kernel touches *)
  islab : iarr;  (* structural int32 slab: ctx/bind dims and slots *)
  psig : int;  (* renaming-invariant structural signature *)
  (* validation: a plan hard-codes histogram tables and value
     fractions, so reuse requires the same synopsis and unchanged
     summaries at every visited node *)
  v_sketch : Sketch.t;
  v_syn : G.t;
  v_nodes : int array;
  v_hists : (Sketch.dim array * Edge_hist.t) list array;
  v_vnodes : int array;
  v_vh : Xtwig_hist.Hist1d.t option array;
  v_vc : Xtwig_hist.Mcv.t option array;
}

let signature t = t.psig

(* ------------------------------------------------------------------ *)
(* Compile-time constants (shared logic with the reference evaluator) *)

let vfrac sketch snode = function
  | None -> 1.0
  | Some p -> Sketch.value_frac sketch snode p

let rec branch_frac sketch u (alts : ebranch list) =
  let one (b : ebranch) =
    let expected = Sketch.exist_frac sketch ~src:u ~dst:b.bnode in
    let nested =
      List.fold_left
        (fun acc pred -> acc *. branch_frac sketch b.bnode pred)
        (vfrac sketch b.bnode b.bvpred)
        b.bsubs
    in
    Stdlib.min 1.0 (expected *. nested)
  in
  Stdlib.min 1.0 (List.fold_left (fun acc b -> acc +. one b) 0.0 alts)

(* Sorted int-array sets: the needs-sets and enumerated-edge sets are
   consulted per (alternative, histogram) pair during analysis, so
   they are flat sorted arrays with binary-search membership and
   two-pointer intersection instead of nested list scans. *)

let sorted_uniq (a : int array) =
  let n = Array.length a in
  if n = 0 then a
  else begin
    Array.sort (fun (x : int) (y : int) -> compare x y) a;
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    if !m = n then a else Array.sub a 0 !m
  end

let mem_sorted (x : int) (a : int array) =
  let lo = ref 0 in
  let hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
  done;
  !found

let intersects (a : int array) (b : int array) =
  let na = Array.length a in
  let nb = Array.length b in
  let i = ref 0 in
  let j = ref 0 in
  let hit = ref false in
  while (not !hit) && !i < na && !j < nb do
    let x = a.(!i) in
    let y = b.(!j) in
    if x = y then hit := true else if x < y then incr i else incr j
  done;
  !hit

let concat_arrays (parts : int array list) =
  let total = List.fold_left (fun s a -> s + Array.length a) 0 parts in
  let buf = Array.make (Stdlib.max 1 total) 0 in
  let off = ref 0 in
  List.iter
    (fun a ->
      Array.blit a 0 buf !off (Array.length a);
      off := !off + Array.length a)
    parts;
  if total = Array.length buf then buf else Array.sub buf 0 total

(* Closure-free scans for the structure phase's per-node analysis:
   top-level recursive functions taking every capture as an argument
   allocate nothing, where the equivalent local closures cost a block
   each per node visited. *)

(* does [dims] contain a Forward dimension src->dst? *)
let rec dims_cover (dims : Sketch.dim array) src dst i =
  i < Array.length dims
  && ((let d = dims.(i) in
       d.src = src && d.dst = dst
       && match d.kind with Sketch.Forward -> true | _ -> false)
     || dims_cover dims src dst (i + 1))

(* index of the first histogram whose dimensions cover src->dst, -1
   when none does *)
let rec cover_scan (harr : (Sketch.dim array * Xtwig_hist.Edge_hist.t) array)
    nh src dst i =
  if i = nh then -1
  else if dims_cover (fst harr.(i)) src dst 0 then i
  else cover_scan harr nh src dst (i + 1)

let rec arr_mem (a : int array) (x : int) i =
  i < Array.length a && (a.(i) = x || arr_mem a x (i + 1))

(* prefix membership: x in a.(0 .. n-1) *)
let rec arr_mem_n (a : int array) (x : int) n i =
  i < n && (a.(i) = x || arr_mem_n a x n (i + 1))

(* any element of [bfe] present in [es] *)
let rec edges_hit (es : int array) (bfe : int array) i =
  i < Array.length bfe && (arr_mem es bfe.(i) 0 || edges_hit es bfe (i + 1))

(* any element of [es] present in the sorted set [nd] *)
let rec es_hit_sorted (es : int array) (nd : int array) i =
  i < Array.length es && (mem_sorted es.(i) nd || es_hit_sorted es nd (i + 1))

(* any alternative's needs-set intersecting [es] *)
let rec needs_hit (es : int array) (aneeds : int array array) j =
  j < Array.length aneeds
  && (es_hit_sorted es aneeds.(j) 0 || needs_hit es aneeds (j + 1))

let rec all_true (a : bool array) i = i >= Array.length a || (a.(i) && all_true a (i + 1))

let rec vlist_mem n = function
  | [] -> false
  | (m, _) :: r -> m = n || vlist_mem n r

let rec vplist_mem n = function
  | [] -> false
  | (m, _, _) :: r -> m = n || vplist_mem n r

(* ------------------------------------------------------------------ *)
(* Structural signatures                                               *)

(* A hash of the structure phase's input, computed by a pure walk of
   the embedding tree — no compilation needed: the tree shape and the
   dimension layouts at the visited synopsis nodes, with node ids
   replaced by dense first-visit numbers. Invariant under any
   consistent renaming of synopsis nodes — two sketches whose
   partitions differ only away from a query, or are equal up to the
   fresh node ids a split produces, give its plans identical
   signatures, which is what keys the repatch-first cache behaviour.
   Value predicates are hashed by presence only: their constants are
   payload (value fractions recomputed on repatch), so plans for
   different predicate values share one signature and one skeleton.
   Collisions and over-discrimination are both harmless, because
   skeleton adoption re-verifies the structural correspondence through
   {!Embed.structural_remap} and [repatch_onto] before any reuse. *)
let vpresence = function None -> 0 | Some _ -> 1

let skel_sig sketch (root : enode) : int =
  let canon = Hashtbl.create 32 in
  let order = ref [] in
  let next = ref 0 in
  let cid n =
    match Hashtbl.find_opt canon n with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add canon n i;
        order := n :: !order;
        i
  in
  let h = ref 5381 in
  let mix x = h := (!h * 33) + x in
  let rec wbranch (b : ebranch) =
    mix 29;
    mix (cid b.bnode);
    mix (vpresence b.bvpred);
    List.iter
      (fun alts ->
        mix 31;
        List.iter wbranch alts)
      b.bsubs
  in
  let rec wnode (e : enode) =
    mix 17;
    mix (cid e.snode);
    mix (vpresence e.vpred);
    List.iter
      (fun alts ->
        mix 19;
        List.iter wbranch alts)
      e.branches;
    List.iter
      (fun alts ->
        mix 23;
        List.iter wnode alts)
      e.kids
  in
  wnode root;
  List.iter
    (fun n ->
      mix 37;
      mix (cid n);
      List.iter
        (fun ((dims : Sketch.dim array), _) ->
          mix 41;
          Array.iter
            (fun (d : Sketch.dim) ->
              mix (cid d.src);
              mix (cid d.dst);
              mix (match d.kind with Sketch.Forward -> 1 | Sketch.Backward -> 2))
            dims)
        (Sketch.hists sketch n))
    (List.rev !order);
  !h land max_int

(* ------------------------------------------------------------------ *)
(* Payload phase (fills histogram tables and float constants; shared
   by fresh compiles, repatching and skeleton adoption — defined ahead
   of the compiler so the structure phase can call it) *)

let payload_of ~(enode_of : enode -> enode) ~(node_of : int -> int) (t : t)
    sketch : t =
  Counters.incr c_repatch;
  (* inherits the ambient trace id when an engine batch is compiling,
     so per-request plan work shows under the request in a trace *)
  Trace.with_span ~name:"plan.repatch" @@ fun () ->
  Counters.time t_repatch @@ fun () ->
  let syn = Sketch.synopsis sketch in
  let nodes =
    Array.map
      (fun p ->
        let e = enode_of p.pe in
        let n = e.snode in
        let hs = Sketch.hists sketch n in
        let harr = Array.of_list hs in
        let enum =
          Array.map
            (fun hp -> { hp with tb = Edge_hist.table (snd harr.(hp.h_idx)) })
            p.enum
        in
        let kids =
          let karr = Array.of_list e.kids in
          Array.mapi
            (fun i kp ->
              let aarr = Array.of_list karr.(i) in
              {
                kp with
                alts =
                  Array.mapi
                    (fun j a ->
                      let (en : enode) = aarr.(j) in
                      {
                        a with
                        a_vfrac = vfrac sketch en.snode en.vpred;
                        count_const =
                          Sketch.avg_fanout sketch ~src:n ~dst:en.snode;
                      })
                    kp.alts;
              })
            p.kids
        in
        let branches =
          let barr = Array.of_list e.branches in
          Array.mapi
            (fun i alts ->
              let aarr = Array.of_list barr.(i) in
              Array.mapi
                (fun j b ->
                  let (eb : ebranch) = aarr.(j) in
                  let nested =
                    List.fold_left
                      (fun acc pred ->
                        acc *. branch_frac sketch eb.bnode pred)
                      (vfrac sketch eb.bnode eb.bvpred)
                      eb.bsubs
                  in
                  {
                    b with
                    b_default = Sketch.exist_frac sketch ~src:n ~dst:eb.bnode;
                    b_nested = nested;
                  })
                alts)
            p.branches
        in
        let branch_const =
          if p.branch_dep then 1.0
          else
            Array.fold_left
              (fun acc (alts : balt array) ->
                acc
                *. Stdlib.min 1.0
                     (Array.fold_left
                        (fun s b ->
                          s +. Stdlib.min 1.0 (b.b_default *. b.b_nested))
                        0.0 alts))
              1.0 branches
        in
        { p with enum; kids; branches; branch_const; pe = e })
      t.nodes
  in
  let re = nodes.(t.root).pe in
  let root_const =
    float_of_int (G.extent_size syn re.snode)
    *. vfrac sketch re.snode re.vpred
  in
  let v_nodes = Array.map node_of t.v_nodes in
  let v_hists = Array.map (fun n -> Sketch.hists sketch n) v_nodes in
  let v_vnodes = Array.map node_of t.v_vnodes in
  let v_vh = Array.map (fun n -> Sketch.vhist sketch n) v_vnodes in
  let v_vc = Array.map (fun n -> Sketch.vcat sketch n) v_vnodes in
  {
    t with
    nodes;
    root_const;
    v_sketch = sketch;
    v_syn = syn;
    v_nodes;
    v_hists;
    v_vnodes;
    v_vh;
    v_vc;
  }

(* ------------------------------------------------------------------ *)
(* Structure phase (the compiler)                                      *)

(* mutable staging record for one kid alternative, filled across the
   two child-compilation phases *)
type tmp_alt = {
  ta : enode;
  t_subdep : bool;
  mutable t_child : int;
  mutable t_fix : int;
}

(* Shared compile context: the needs-sets and per-node edge-key arrays
   depend only on (sketch, enode), and the factored embeddings of one
   query share subtree enodes, so one context amortizes the analysis
   across the plans of a whole query batch. *)
type cctx = {
  cx_sketch : Sketch.t;
  cx_syn : G.t;
  cx_nn : int;
  cx_sedges : (int, int array array) Hashtbl.t;
  cx_nhists : (int, (Sketch.dim array * Edge_hist.t) array) Hashtbl.t;
      (* per-synopsis-node histogram list as an array, for indexed
         closure-free scans *)
  cx_nkeys : (int, int array) Hashtbl.t;
      (* per-synopsis-node sorted-uniq union of every histogram's edge
         keys — the node's own contribution to any needs-set, shared
         across all embeddings that visit the node *)
  cx_needs : (int, int array) Hashtbl.t;
}

let context sketch =
  let syn = Sketch.synopsis sketch in
  {
    cx_sketch = sketch;
    cx_syn = syn;
    cx_nn = G.node_count syn;
    cx_sedges = Hashtbl.create 16;
    cx_nhists = Hashtbl.create 16;
    cx_nkeys = Hashtbl.create 16;
    cx_needs = Hashtbl.create 64;
  }

let compile_in ?sig_ cx (root : enode) : t =
  (* the signature is cache-keying work, not compilation: the cached
     paths (skeleton store, tiered fills) have already computed it for
     the lookup that failed, and pass it in *)
  let psig =
    match sig_ with Some s -> s | None -> skel_sig cx.cx_sketch root
  in
  Counters.incr c_compiles;
  (* structure phase: everything whose shape depends only on the twig
     and the synopsis partition structure — needs analysis, slot and
     scratch layout, enumeration topology. Payload constants are left
     as placeholders and filled by the shared payload phase below, so
     [plan.compile_ns] times exactly the work a repatch skips. *)
  let skel =
    Trace.with_span ~name:"plan.compile" @@ fun () ->
    Counters.time t_compile @@ fun () ->
    let sketch = cx.cx_sketch in
  let syn = cx.cx_syn in
  let nn = cx.cx_nn in
  let ekey u v = (u * nn) + v in
  (* per-synopsis-node edge-key arrays, one per histogram (embeddings
     revisit synopsis nodes across alternatives, so memoized) *)
  let snode_edges = cx.cx_sedges in
  let hist_edge_arrays n hs =
    match Hashtbl.find_opt snode_edges n with
    | Some a -> a
    | None ->
        let a =
          Array.of_list
            (List.map
               (fun ((dims : Sketch.dim array), _) ->
                 Array.map (fun (d : Sketch.dim) -> ekey d.src d.dst) dims)
               hs)
        in
        Hashtbl.add snode_edges n a;
        a
  in
  let memo_needs = cx.cx_needs in
  (* the node's own keys, sorted once per synopsis node *)
  let node_hists n hs =
    match Hashtbl.find_opt cx.cx_nhists n with
    | Some a -> a
    | None ->
        let a = Array.of_list hs in
        Hashtbl.add cx.cx_nhists n a;
        a
  in
  let node_keys n hs =
    match Hashtbl.find_opt cx.cx_nkeys n with
    | Some a -> a
    | None ->
        let arrs = hist_edge_arrays n hs in
        let a = sorted_uniq (concat_arrays (Array.to_list arrs)) in
        Hashtbl.add cx.cx_nkeys n a;
        a
  in
  (* needs-set of a subtree: the sorted-uniq union of the node's own
     keys with the kids' needs-sets, built by sorted merges — each
     input is already sorted-uniq, so no re-sort of the whole set.
     Intermediate unions ping-pong between two reusable buffers (safe:
     the kids' sets are materialized before any merging starts), so
     the only allocation is the final exact-size memoized array. *)
  let mbuf_a = ref (Array.make 64 0) in
  let mbuf_b = ref (Array.make 64 0) in
  let rec needs_of (e : enode) : int array =
    match Hashtbl.find_opt memo_needs e.eid with
    | Some a -> a
    | None ->
        let own = node_keys e.snode (Sketch.hists sketch e.snode) in
        let kid_sets =
          List.concat_map (fun alts -> List.map needs_of alts) e.kids
        in
        let a =
          match kid_sets with
          | [] -> own
          | _ ->
              (* merge [cur] (length [len], in mbuf_a) with each kid
                 set into mbuf_b, swapping after each pass *)
              let len = ref (Array.length own) in
              let cap = List.fold_left (fun c k -> c + Array.length k) !len
                  kid_sets in
              if Array.length !mbuf_a < cap then begin
                mbuf_a := Array.make cap 0;
                mbuf_b := Array.make cap 0
              end;
              Array.blit own 0 !mbuf_a 0 !len;
              List.iter
                (fun (k : int array) ->
                  let a = !mbuf_a and b = !mbuf_b in
                  let nk = Array.length k in
                  let i = ref 0 and j = ref 0 and m = ref 0 in
                  while !i < !len && !j < nk do
                    let x = a.(!i) and y = k.(!j) in
                    if x < y then begin
                      b.(!m) <- x;
                      incr i
                    end
                    else if y < x then begin
                      b.(!m) <- y;
                      incr j
                    end
                    else begin
                      b.(!m) <- x;
                      incr i;
                      incr j
                    end;
                    incr m
                  done;
                  while !i < !len do
                    b.(!m) <- a.(!i);
                    incr i;
                    incr m
                  done;
                  while !j < nk do
                    b.(!m) <- k.(!j);
                    incr j;
                    incr m
                  done;
                  len := !m;
                  mbuf_a := b;
                  mbuf_b := a)
                kid_sets;
              Array.sub !mbuf_a 0 !len
        in
        Hashtbl.add memo_needs e.eid a;
        a
  in
  (* A compile sees a handful of distinct slots, bound keys and visited
     nodes, so the dynamic sets below are flat arrays with linear scans
     — measurably cheaper than hash tables at this size, in both
     lookups and allocation. *)
  (* dense environment slots, one per distinct edge key bound anywhere *)
  let slot_keys = ref (Array.make 8 0) in
  let n_slots = ref 0 in
  let slot_of key =
    let a = !slot_keys in
    let n = !n_slots in
    let rec find i = if i = n then -1 else if a.(i) = key then i else find (i + 1) in
    let s = find 0 in
    if s >= 0 then s
    else begin
      let a =
        if n = Array.length a then begin
          let b = Array.make (2 * n) 0 in
          Array.blit a 0 b 0 n;
          slot_keys := b;
          b
        end
        else a
      in
      a.(n) <- key;
      n_slots := n + 1;
      n
    end
  in
  (* edge keys bound at the current program point — the static mirror
     of the reference's environment threading. Binds nest strictly
     (pushed in a node's phase 2, popped at its exit), so a stack. *)
  let bstack = ref (Array.make 16 0) in
  let n_bound = ref 0 in
  let bound_mem key = arr_mem_n !bstack key !n_bound 0 in
  let bound_push key =
    let a =
      if !n_bound = Array.length !bstack then begin
        let b = Array.make (2 * !n_bound) 0 in
        Array.blit !bstack 0 b 0 !n_bound;
        bstack := b;
        b
      end
      else !bstack
    in
    a.(!n_bound) <- key;
    incr n_bound
  in
  (* the int32 slab under construction (ctx/bind dims and slots) *)
  let ibuf = ref (Array.make 64 0) in
  let ilen = ref 0 in
  let ipush v =
    let a =
      if !ilen = Array.length !ibuf then begin
        let b = Array.make (2 * !ilen) 0 in
        Array.blit !ibuf 0 b 0 !ilen;
        ibuf := b;
        b
      end
      else !ibuf
    in
    a.(!ilen) <- v;
    incr ilen
  in
  (* phase-2 scratch, grown to the widest histogram seen; safe to
     share across the recursion because a node's phase-2 loop flushes
     each histogram's layout into the slab before the next iteration,
     and child compiles run strictly before (phase 1) or after
     (phase 4) the parent's phase 2 *)
  let s_ctx_d = ref (Array.make 8 0) in
  let s_ctx_s = ref (Array.make 8 0) in
  let s_bind_d = ref (Array.make 8 0) in
  let s_bind_s = ref (Array.make 8 0) in
  let s_bind_k = ref (Array.make 8 0) in
  let ensure_k k =
    if Array.length !s_ctx_d < k then begin
      s_ctx_d := Array.make k 0;
      s_ctx_s := Array.make k 0;
      s_bind_d := Array.make k 0;
      s_bind_s := Array.make k 0;
      s_bind_k := Array.make k 0
    end
  in
  (* scratch-cell layout: node blocks are assigned relative offsets
     here and shifted past the slot/fixed regions once their sizes are
     final *)
  let scr_off = ref 0 in
  let n_fixed = ref 0 in
  let rev_nodes = ref [] in
  let n_nodes = ref 0 in
  let push p =
    rev_nodes := p :: !rev_nodes;
    let i = !n_nodes in
    incr n_nodes;
    i
  in
  (* validation accumulators: every visited synopsis node's histogram
     list, every consulted value summary *)
  let vlist = ref [] in
  let note_node n =
    if not (vlist_mem n !vlist) then
      vlist := (n, Sketch.hists sketch n) :: !vlist
  in
  let vplist = ref [] in
  let note_vpred n = function
    | None -> ()
    | Some _ ->
        if not (vplist_mem n !vplist) then
          vplist := (n, Sketch.vhist sketch n, Sketch.vcat sketch n) :: !vplist
  in
  let rec note_branch (b : ebranch) =
    note_vpred b.bnode b.bvpred;
    List.iter (List.iter note_branch) b.bsubs
  in
  let compile_balt u (b : ebranch) =
    note_branch b;
    let key = ekey u b.bnode in
    (* b_default/b_nested are payload *)
    {
      b_slot = (if bound_mem key then slot_of key else -1);
      b_default = 0.0;
      b_nested = 0.0;
    }
  in
  let rec compile_node (e : enode) : int =
    let n = e.snode in
    note_node n;
    note_vpred n e.vpred;
    let hs = Sketch.hists sketch n in
    let harr = node_hists n hs in
    let edge_arrs = hist_edge_arrays n hs in
    let nh = Array.length edge_arrs in
    let branch_first_edges =
      match e.branches with
      | [] -> [||]
      | bs ->
          Array.of_list
            (List.concat_map
               (fun alts -> List.map (fun (b : ebranch) -> ekey n b.bnode) alts)
               bs)
    in
    (* per-alternative facts, each computed once: the first histogram
       covering the kid edge (monomorphic field compares — the generic
       structural equality on [Sketch.dim] records dominated compile
       time) and the subtree needs-set *)
    let alts_arr = Array.of_list (List.concat e.kids) in
    let na = Array.length alts_arr in
    let aneeds = Array.map needs_of alts_arr in
    let cover = Array.make (Stdlib.max 1 na) (-1) in
    for j = 0 to na - 1 do
      cover.(j) <- cover_scan harr nh n alts_arr.(j).snode 0
    done;
    let enum_flag = Array.make (Stdlib.max 1 nh) false in
    for i = 0 to nh - 1 do
      let es = edge_arrs.(i) in
      enum_flag.(i) <-
        arr_mem_n cover i na 0
        || edges_hit es branch_first_edges 0
        || needs_hit es aneeds 0
    done;
    let enum_edges =
      (* every histogram enumerated (the common case: most nodes carry
         one histogram) — the union is the node's memoized key set *)
      if all_true enum_flag 0 then node_keys n hs
      else begin
        let parts = ref [] in
        Array.iteri
          (fun i es -> if enum_flag.(i) then parts := es :: !parts)
          edge_arrs;
        sorted_uniq (concat_arrays !parts)
      end
    in
    let kid_tmp : (bool * tmp_alt array) array =
      let ai = ref (-1) in
      Array.of_list
        (List.map
           (fun alts ->
             let dep = ref false in
             let tas =
               Array.of_list
                 (List.map
                    (fun (a : enode) ->
                      incr ai;
                      let sub = intersects aneeds.(!ai) enum_edges in
                      if sub || mem_sorted (ekey n a.snode) enum_edges then
                        dep := true;
                      { ta = a; t_subdep = sub; t_child = -1; t_fix = -1 })
                    alts)
             in
             (!dep, tas))
           e.kids)
    in
    (* phase 1 — children evaluated under the entry environment:
       independent kids, plus the combo-invariant alternatives of
       dependent kids (the reference's fixed_values) *)
    for gi = 0 to Array.length kid_tmp - 1 do
      let dep, alts = kid_tmp.(gi) in
      for aj = 0 to Array.length alts - 1 do
        let a = alts.(aj) in
        if not dep then a.t_child <- compile_node a.ta
        else if not a.t_subdep then begin
          a.t_child <- compile_node a.ta;
          a.t_fix <- !n_fixed;
          incr n_fixed
        end
      done
    done;
    (* phase 2 — the enumerated histograms, in order: dimensions bound
       upstream (or by an earlier histogram of this node) join the
       context; the rest bind new slots. A key repeated within one
       histogram neither conditions nor binds twice, mirroring the
       reference's env_mem guard. *)
    let node_binds = ref 0 in
    let rev_enum = ref [] in
    let n_enum = ref 0 in
    for i = 0 to nh - 1 do
      if enum_flag.(i) then begin
          let dims, h = harr.(i) in
          let k = Array.length dims in
          ensure_k k;
          let ctx_d = !s_ctx_d and ctx_s = !s_ctx_s in
          let bind_d = !s_bind_d and bind_s = !s_bind_s in
          let bind_k = !s_bind_k in
          let nctx = ref 0 and nbind = ref 0 in
          for di = 0 to k - 1 do
            let d = dims.(di) in
            let key = ekey d.src d.dst in
            if bound_mem key then begin
              ctx_d.(!nctx) <- di;
              ctx_s.(!nctx) <- slot_of key;
              incr nctx
            end
            else if not (arr_mem_n bind_k key !nbind 0) then begin
              bind_k.(!nbind) <- key;
              bind_d.(!nbind) <- di;
              bind_s.(!nbind) <- slot_of key;
              incr nbind
            end
          done;
          for j = 0 to !nbind - 1 do
            bound_push bind_k.(j)
          done;
          node_binds := !node_binds + !nbind;
          incr n_enum;
          (* flatten into the slab: ctx dims, ctx slots, bind dims,
             bind slots *)
          let ctx_off = !ilen in
          for j = 0 to !nctx - 1 do
            ipush ctx_d.(j)
          done;
          for j = 0 to !nctx - 1 do
            ipush ctx_s.(j)
          done;
          let bind_off = !ilen in
          for j = 0 to !nbind - 1 do
            ipush bind_d.(j)
          done;
          for j = 0 to !nbind - 1 do
            ipush bind_s.(j)
          done;
          rev_enum :=
            {
              tb = Edge_hist.table h;
              h_idx = i;
              n_ctx = !nctx;
              ctx_off;
              n_bind = !nbind;
              bind_off;
            }
            :: !rev_enum
        end
    done;
    let enum =
      match !rev_enum with
      | [] -> [||]
      | hd :: _ ->
          let arr = Array.make !n_enum hd in
          List.iteri (fun i hp -> arr.(!n_enum - 1 - i) <- hp) !rev_enum;
          arr
    in
    (* phase 3 — branching predicates. When no enumerated histogram
       covers a branch edge the whole factor is a compile-time
       constant (edge keys with source [n] cannot be bound upstream:
       ancestors' dimensions never point at a descendant's children) *)
    let branch_dep =
      Array.exists (fun ed -> mem_sorted ed enum_edges) branch_first_edges
    in
    let branches =
      Array.of_list
        (List.map
           (fun alts -> Array.of_list (List.map (compile_balt n) alts))
           e.branches)
    in
    let branch_const = 1.0 (* payload *) in
    (* phase 4 — children evaluated per bucket combination, under the
       extended environment *)
    for gi = 0 to Array.length kid_tmp - 1 do
      let dep, alts = kid_tmp.(gi) in
      if dep then
        for aj = 0 to Array.length alts - 1 do
          let a = alts.(aj) in
          if a.t_subdep then a.t_child <- compile_node a.ta
        done
    done;
    (* assemble, then pop this node's bindings *)
    let kids =
      Array.map
        (fun (dep, alts) ->
          {
            k_dep = dep;
            alts =
              Array.map
                (fun a ->
                  let ckey = ekey n a.ta.snode in
                  {
                    child = a.t_child;
                    a_vfrac = 0.0 (* payload *);
                    count_slot =
                      (if bound_mem ckey then slot_of ckey else -1);
                    count_const = 0.0 (* payload *);
                    fixed_idx = a.t_fix;
                  })
                alts;
          })
        kid_tmp
    in
    n_bound := !n_bound - !node_binds;
    let scr = !scr_off in
    scr_off := !scr_off + 6 + (5 * (!n_enum + 1));
    push { kids; enum; branches; branch_dep; branch_const; pe = e; scr }
  in
  let root_idx = compile_node root in
  let root_const = 0.0 (* payload *) in
  let v_nodes = Array.of_list (List.rev_map fst !vlist) in
  let v_hists = Array.of_list (List.rev_map snd !vlist) in
  let v_vnodes = Array.of_list (List.rev_map (fun (n, _, _) -> n) !vplist) in
  let v_vh = Array.of_list (List.rev_map (fun (_, h, _) -> h) !vplist) in
  let v_vc = Array.of_list (List.rev_map (fun (_, _, c) -> c) !vplist) in
  let shift = (2 * !n_slots) + !n_fixed in
  let nodes =
    Array.map
      (fun p -> { p with scr = p.scr + shift })
      (Array.of_list (List.rev !rev_nodes))
  in
  let islab = A1.create Bigarray.Int32 Bigarray.C_layout (Stdlib.max 1 !ilen) in
  for i = 0 to !ilen - 1 do
    A1.unsafe_set islab i (Int32.of_int !ibuf.(i))
  done;
  {
    nodes;
    root = root_idx;
    root_const;
    n_slots = !n_slots;
    n_fixed = !n_fixed;
    o_p1 = !n_slots;
    o_fixed = 2 * !n_slots;
    scr_len = shift + !scr_off;
    islab;
    psig;
    v_sketch = sketch;
    v_syn = syn;
    v_nodes;
    v_hists;
    v_vnodes;
    v_vh;
    v_vc;
  }
  in
  payload_of ~enode_of:(fun e -> e) ~node_of:(fun n -> n) skel cx.cx_sketch

let compile sketch root = compile_in (context sketch) root

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let same_phys_opt a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

(* Histogram lists are usually physically shared across incremental
   rebuilds; content comparison via interned table ids catches the
   rebuilt-but-identical case. *)
let hists_equal l l' =
  l == l'
  || List.compare_lengths l l' = 0
     && List.for_all2
          (fun ((d : Sketch.dim array), h) ((d' : Sketch.dim array), h') ->
            d = d' && (h == h' || Edge_hist.table_id h = Edge_hist.table_id h'))
          l l'

let valid t sketch =
  sketch == t.v_sketch
  || Sketch.synopsis sketch == t.v_syn
     &&
     let ok = ref true in
     Array.iteri
       (fun i n ->
         if !ok && not (hists_equal t.v_hists.(i) (Sketch.hists sketch n)) then
           ok := false)
       t.v_nodes;
     Array.iteri
       (fun i n ->
         if
           !ok
           && not
                (same_phys_opt t.v_vh.(i) (Sketch.vhist sketch n)
                && same_phys_opt t.v_vc.(i) (Sketch.vcat sketch n))
         then ok := false)
       t.v_vnodes;
     !ok

(* ------------------------------------------------------------------ *)
(* Payload phase (repatching)                                          *)

(* An invalidated plan whose *structure* is unchanged compiles to the
   same skeleton: only the interned bucket tables and the payload
   float constants move. [payload_of] rebuilds exactly those, skipping
   the needs/dependency analysis; every rebuilt constant is a pure
   function of (sketch, node ids), so the result is indistinguishable
   from a fresh [compile].

   Two entry points share it: [repatch] (same synopsis — the
   histogram-content and value-summary refinements XBUILD scores by
   the thousand) and [repatch_onto] (a different synopsis whose
   partition is structurally identical along the plan, under the node
   renaming established by {!Embed.structural_remap} — the fresh node
   ids a no-effect or elsewhere-targeted split produces). *)

let dims_equal (d : Sketch.dim array) (d' : Sketch.dim array) =
  d == d' || d = d'

let hist_structure_equal l l' =
  l == l'
  || List.compare_lengths l l' = 0
     && List.for_all2
          (fun ((d : Sketch.dim array), _) ((d' : Sketch.dim array), _) ->
            dims_equal d d')
          l l'

let repatch (t : t) sketch : t option =
  if Sketch.synopsis sketch != t.v_syn then None
  else
    let ok = ref true in
    Array.iteri
      (fun i n ->
        if !ok && not (hist_structure_equal t.v_hists.(i) (Sketch.hists sketch n))
        then ok := false)
      t.v_nodes;
    if not !ok then None
    else Some (payload_of ~enode_of:(fun e -> e) ~node_of:(fun n -> n) t sketch)

(* Cross-synopsis structural check: the dimension layouts at every
   node the plan visits must match under the entry's node renaming.
   Dimension endpoints may reference synopsis nodes outside the
   embedding tree (e.g. a backward dimension from a parent), so the
   renaming is extended over them here — bijectively, which preserves
   every edge-key (in)equality the structure phase depended on.
   Bindings added by a plan that then fails elsewhere stay in the
   maps: they only ever make later checks more conservative (a miss
   compiles), never unsound (a success always reflects the checked
   plan's own correspondences). *)
let bind_pair o2n n2o a b =
  match (Hashtbl.find_opt o2n a, Hashtbl.find_opt n2o b) with
  | Some b', Some a' -> b' = b && a' = a
  | None, None ->
      Hashtbl.add o2n a b;
      Hashtbl.add n2o b a;
      true
  | _ -> false

let dims_remap_ok o2n n2o l l' =
  List.compare_lengths l l' = 0
  && List.for_all2
       (fun ((d : Sketch.dim array), _) ((d' : Sketch.dim array), _) ->
         Array.length d = Array.length d'
         &&
         let ok = ref true in
         Array.iteri
           (fun i (x : Sketch.dim) ->
             let y = d'.(i) in
             if
               !ok
               && not
                    (x.kind = y.kind
                    && bind_pair o2n n2o x.src y.src
                    && bind_pair o2n n2o x.dst y.dst)
             then ok := false)
           d;
         !ok)
       l l'

let repatch_onto (t : t) sketch ~(emap : (int, enode) Hashtbl.t)
    ~(o2n : (int, int) Hashtbl.t) ~(n2o : (int, int) Hashtbl.t) : t option =
  let ok = ref true in
  Array.iteri
    (fun i n ->
      if !ok then
        match Hashtbl.find_opt o2n n with
        | None -> ok := false
        | Some n' ->
            if not (dims_remap_ok o2n n2o t.v_hists.(i) (Sketch.hists sketch n'))
            then ok := false)
    t.v_nodes;
  if not !ok then None
  else
    match
      payload_of
        ~enode_of:(fun e -> Hashtbl.find emap e.eid)
        ~node_of:(fun n -> Hashtbl.find o2n n)
        t sketch
    with
    | t' -> Some t'
    | exception Not_found -> None

(* ------------------------------------------------------------------ *)
(* Interpreter: a zero-allocation flat kernel                          *)

(* All mutable float state lives in the caller-provided float64 arena
   [ba] (layout in {!pnode}); per-histogram index arrays live in the
   plan's int32 slab. Helpers return only unit, int or bool and take
   no float arguments — without flambda, closures, float refs and
   boxed float calls would each allocate, and the [Gc.minor_words]
   test holds this kernel to zero. Float lets below stay unboxed:
   they are consumed only by float arithmetic, comparisons and
   Bigarray stores. *)

let rec expand (t : t) (ba : farr) (slab : iarr) (idx : int) : unit =
  let p = Array.unsafe_get t.nodes idx in
  let base = p.scr in
  let nk = Array.length p.kids in
  (* independent kids: entry-environment contributions *)
  A1.unsafe_set ba (base + 1) 1.0;
  for i = 0 to nk - 1 do
    let kid = Array.unsafe_get p.kids i in
    if not kid.k_dep then begin
      A1.unsafe_set ba (base + 2) 0.0;
      let alts = kid.alts in
      for j = 0 to Array.length alts - 1 do
        let a = Array.unsafe_get alts j in
        let count =
          if a.count_slot >= 0 then A1.unsafe_get ba a.count_slot
          else a.count_const
        in
        expand t ba slab a.child;
        let cres =
          A1.unsafe_get ba (Array.unsafe_get t.nodes a.child).scr
        in
        A1.unsafe_set ba (base + 2)
          (A1.unsafe_get ba (base + 2) +. (count *. (a.a_vfrac *. cres)))
      done;
      A1.unsafe_set ba (base + 1)
        (A1.unsafe_get ba (base + 1) *. A1.unsafe_get ba (base + 2))
    end
  done;
  (* combo-invariant alternative values inside dependent kids *)
  for i = 0 to nk - 1 do
    let kid = Array.unsafe_get p.kids i in
    if kid.k_dep then begin
      let alts = kid.alts in
      for j = 0 to Array.length alts - 1 do
        let a = Array.unsafe_get alts j in
        if a.fixed_idx >= 0 then begin
          expand t ba slab a.child;
          A1.unsafe_set ba (t.o_fixed + a.fixed_idx)
            (a.a_vfrac
            *. A1.unsafe_get ba (Array.unsafe_get t.nodes a.child).scr)
        end
      done
    end
  done;
  let ne = Array.length p.enum in
  let dep =
    if ne = 0 then 1.0
    else begin
      A1.unsafe_set ba (base + 6) 1.0;
      combos t ba slab p 0;
      A1.unsafe_get ba (base + 7)
    end
  in
  let ibf = if p.branch_dep then 1.0 else p.branch_const in
  A1.unsafe_set ba base (ibf *. A1.unsafe_get ba (base + 1) *. dep)

(* the bucket-conditioned branch factor, into cell base+4 *)
and branch_factor (t : t) (ba : farr) (p : pnode) : unit =
  let base = p.scr in
  A1.unsafe_set ba (base + 4) 1.0;
  let nb = Array.length p.branches in
  for bi = 0 to nb - 1 do
    let alts = Array.unsafe_get p.branches bi in
    A1.unsafe_set ba (base + 5) 0.0;
    for j = 0 to Array.length alts - 1 do
      let b = Array.unsafe_get alts j in
      let expected =
        if b.b_slot >= 0 then A1.unsafe_get ba (t.o_p1 + b.b_slot)
        else b.b_default
      in
      let x = expected *. b.b_nested in
      A1.unsafe_set ba (base + 5)
        (A1.unsafe_get ba (base + 5) +. (if 1.0 <= x then 1.0 else x))
    done;
    let s = A1.unsafe_get ba (base + 5) in
    A1.unsafe_set ba (base + 4)
      (A1.unsafe_get ba (base + 4) *. (if 1.0 <= s then 1.0 else s))
  done

(* per-combination leaf (level [l] = enum length): branch factor first
   (when it varies), then the dependent kids in order — the
   reference's combos base case. Result (weight x factor) goes into
   the level's sum cell. *)
and leaf (t : t) (ba : farr) (slab : iarr) (p : pnode) (l : int) : unit =
  let base = p.scr in
  let lb = base + 6 + (5 * l) in
  A1.unsafe_set ba (base + 3) 1.0;
  if p.branch_dep then begin
    branch_factor t ba p;
    A1.unsafe_set ba (base + 3) (A1.unsafe_get ba (base + 4))
  end;
  let nk = Array.length p.kids in
  for i = 0 to nk - 1 do
    let kid = Array.unsafe_get p.kids i in
    if kid.k_dep then begin
      A1.unsafe_set ba (base + 2) 0.0;
      let alts = kid.alts in
      for j = 0 to Array.length alts - 1 do
        let a = Array.unsafe_get alts j in
        let count =
          if a.count_slot >= 0 then A1.unsafe_get ba a.count_slot
          else a.count_const
        in
        if a.fixed_idx >= 0 then
          A1.unsafe_set ba (base + 2)
            (A1.unsafe_get ba (base + 2)
            +. (count *. A1.unsafe_get ba (t.o_fixed + a.fixed_idx)))
        else begin
          expand t ba slab a.child;
          A1.unsafe_set ba (base + 2)
            (A1.unsafe_get ba (base + 2)
            +. count
               *. (a.a_vfrac
                  *. A1.unsafe_get ba (Array.unsafe_get t.nodes a.child).scr))
        end
      done;
      A1.unsafe_set ba (base + 3)
        (A1.unsafe_get ba (base + 3) *. A1.unsafe_get ba (base + 2))
    end
  done;
  A1.unsafe_set ba (lb + 1) (A1.unsafe_get ba lb *. A1.unsafe_get ba (base + 3))

(* write bucket [b]'s means and P(count>=1) into the bound slots *)
and bind_bucket (t : t) (ba : farr) (slab : iarr) (h : hplan) (b : int) : unit =
  let tb = h.tb in
  let k = tb.Edge_hist.tdims in
  for m = 0 to h.n_bind - 1 do
    let o = (b * k) + Int32.to_int (A1.unsafe_get slab (h.bind_off + m)) in
    let s = Int32.to_int (A1.unsafe_get slab (h.bind_off + h.n_bind + m)) in
    A1.unsafe_set ba s (Array.unsafe_get tb.Edge_hist.tmean o);
    A1.unsafe_set ba (t.o_p1 + s) (Array.unsafe_get tb.Edge_hist.tp1 o)
  done

(* bucket [b] compatible with every bound context dimension? *)
and compat_from (ba : farr) (slab : iarr) (h : hplan) (tb : Edge_hist.table)
    (b : int) (m : int) : bool =
  m >= h.n_ctx
  ||
  let k = tb.Edge_hist.tdims in
  let o = (b * k) + Int32.to_int (A1.unsafe_get slab (h.ctx_off + m)) in
  let v =
    A1.unsafe_get ba (Int32.to_int (A1.unsafe_get slab (h.ctx_off + h.n_ctx + m)))
  in
  v >= Array.unsafe_get tb.Edge_hist.tlo o
  && v <= Array.unsafe_get tb.Edge_hist.thi o
  && compat_from ba slab h tb b (m + 1)

(* one pass over the buckets accumulating compatible mass (into cell
   lb+2, in bucket order) and counting the compatible buckets *)
and count_mass (ba : farr) (slab : iarr) (h : hplan) (tb : Edge_hist.table)
    (lb : int) (b : int) (nb : int) (acc : int) : int =
  if b >= nb then acc
  else if compat_from ba slab h tb b 0 then begin
    A1.unsafe_set ba (lb + 2)
      (A1.unsafe_get ba (lb + 2) +. Array.unsafe_get tb.Edge_hist.tfrac b);
    count_mass ba slab h tb lb (b + 1) nb (acc + 1)
  end
  else count_mass ba slab h tb lb (b + 1) nb acc

(* context distance of bucket [b], accumulated in the reference's
   reverse-dimension order, into cell lb+4 *)
and dist_to (ba : farr) (slab : iarr) (h : hplan) (tb : Edge_hist.table)
    (lb : int) (b : int) : unit =
  A1.unsafe_set ba (lb + 4) 0.0;
  let k = tb.Edge_hist.tdims in
  for m = h.n_ctx - 1 downto 0 do
    let o = (b * k) + Int32.to_int (A1.unsafe_get slab (h.ctx_off + m)) in
    let dx =
      Array.unsafe_get tb.Edge_hist.tmean o
      -. A1.unsafe_get ba
           (Int32.to_int (A1.unsafe_get slab (h.ctx_off + h.n_ctx + m)))
    in
    A1.unsafe_set ba (lb + 4) (A1.unsafe_get ba (lb + 4) +. (dx *. dx))
  done

(* nearest-bucket scan: cell lb+3 holds the best distance so far *)
and best_from (ba : farr) (slab : iarr) (h : hplan) (tb : Edge_hist.table)
    (lb : int) (b : int) (nb : int) (best : int) : int =
  if b >= nb then best
  else begin
    dist_to ba slab h tb lb b;
    if not (A1.unsafe_get ba (lb + 3) <= A1.unsafe_get ba (lb + 4)) then begin
      A1.unsafe_set ba (lb + 3) (A1.unsafe_get ba (lb + 4));
      best_from ba slab h tb lb (b + 1) nb b
    end
    else best_from ba slab h tb lb (b + 1) nb best
  end

(* enumeration level [l]: reads its incoming weight from its own cell,
   writes its combination sum into the next one *)
and combos (t : t) (ba : farr) (slab : iarr) (p : pnode) (l : int) : unit =
  let ne = Array.length p.enum in
  if l = ne then leaf t ba slab p l
  else begin
    let lb = p.scr + 6 + (5 * l) in
    let h = Array.unsafe_get p.enum l in
    let tb = h.tb in
    let nb = tb.Edge_hist.tn in
    A1.unsafe_set ba (lb + 1) 0.0;
    if nb = 0 then ()
    else if h.n_ctx = 0 then begin
      let frac = tb.Edge_hist.tfrac in
      for b = 0 to nb - 1 do
        let w' = A1.unsafe_get ba lb *. Array.unsafe_get frac b in
        if not (w' < 1e-9) then begin
          bind_bucket t ba slab h b;
          A1.unsafe_set ba (lb + 5) w';
          combos t ba slab p (l + 1);
          A1.unsafe_set ba (lb + 1)
            (A1.unsafe_get ba (lb + 1) +. A1.unsafe_get ba (lb + 6))
        end
      done
    end
    else begin
      A1.unsafe_set ba (lb + 2) 0.0;
      let nok = count_mass ba slab h tb lb 0 nb 0 in
      if nok = 0 then begin
        (* nearest-bucket fallback *)
        dist_to ba slab h tb lb 0;
        A1.unsafe_set ba (lb + 3) (A1.unsafe_get ba (lb + 4));
        let best = best_from ba slab h tb lb 1 nb 0 in
        let w' = A1.unsafe_get ba lb *. 1.0 in
        if not (w' < 1e-9) then begin
          bind_bucket t ba slab h best;
          A1.unsafe_set ba (lb + 5) w';
          combos t ba slab p (l + 1);
          A1.unsafe_set ba (lb + 1) (0.0 +. A1.unsafe_get ba (lb + 6))
        end
      end
      else begin
        let frac = tb.Edge_hist.tfrac in
        for b = 0 to nb - 1 do
          if compat_from ba slab h tb b 0 then begin
            let w' =
              A1.unsafe_get ba lb
              *. (Array.unsafe_get frac b /. A1.unsafe_get ba (lb + 2))
            in
            if not (w' < 1e-9) then begin
              bind_bucket t ba slab h b;
              A1.unsafe_set ba (lb + 5) w';
              combos t ba slab p (l + 1);
              A1.unsafe_set ba (lb + 1)
                (A1.unsafe_get ba (lb + 1) +. A1.unsafe_get ba (lb + 6))
            end
          end
        done
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Per-domain scratch arena                                            *)

(* One float64 slab per domain, grown to the largest plan it has run
   (growth allocates; steady state does not). Plans are immutable and
   may be shared across domains — every run's mutable state is
   domain-local here, so concurrent runs of one plan are safe. *)
type arena = { mutable abuf : farr }

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { abuf = A1.create Bigarray.Float64 Bigarray.C_layout 256 })

let arena_for (t : t) : farr =
  let ar = Domain.DLS.get arena_key in
  if A1.dim ar.abuf < t.scr_len then
    ar.abuf <-
      A1.create Bigarray.Float64 Bigarray.C_layout
        (Stdlib.max t.scr_len (2 * A1.dim ar.abuf));
  ar.abuf

let run (t : t) : float =
  Counters.incr c_runs;
  let ba = arena_for t in
  expand t ba t.islab t.root;
  t.root_const *. A1.unsafe_get ba (Array.unsafe_get t.nodes t.root).scr

let run_batch (ts : t array) (out : float array) : unit =
  if Array.length out < Array.length ts then
    invalid_arg "Plan.run_batch: output array too short";
  for i = 0 to Array.length ts - 1 do
    let t = Array.unsafe_get ts i in
    Counters.incr c_runs;
    let ba = arena_for t in
    expand t ba t.islab t.root;
    out.(i) <-
      t.root_const *. A1.unsafe_get ba (Array.unsafe_get t.nodes t.root).scr
  done

(* ------------------------------------------------------------------ *)
(* Sharded plan cache                                                  *)

type centry = { ce_roots : enode list; ce_plans : t array; ce_sig : int }

(* [sseen] maps keys that missed to the cache generation (thaw count)
   of the sighting, for tiered execution: a key seen again in a LATER
   generation is part of the recurring workload and pays for
   compilation; re-sightings within one generation are the same
   query probed against throwaway refinement candidates and stay on
   the reference evaluator. *)
type shard = {
  stbl : (string, centry) Hashtbl.t;
  sseen : (string, int) Hashtbl.t;
  slock : Mutex.t;
}

(* skeleton store: one representative compiled plan per structural
   signature, sharded like the entry tables. Any compile path checks
   here first and adopts the skeleton through the payload phase — the
   compiler only ever runs once per structure a cache's synopsis has
   seen, no matter how many queries or refinement candidates share
   it. *)
type skshard = { sk_tbl : (int, t) Hashtbl.t; sk_lock : Mutex.t }

let shard_bits = 4
let shard_count = 1 lsl shard_bits

(* The skeleton store is process-global: structural signatures are
   invariant under synopsis-node renaming, so a structure compiled for
   one refinement candidate's synopsis (or an earlier build step's) is
   adoptable by any later cache — exactly the reuse that throwaway
   candidate caches would otherwise lose. All access is under the
   owning shard's lock (compile paths only — cache hits never come
   here), and a shard that outgrows its cap is dropped wholesale
   rather than tracked by recency. *)
let skel_shard_cap = 1024

let skel_global : skshard array =
  Array.init 16 (fun _ -> { sk_tbl = Hashtbl.create 64; sk_lock = Mutex.create () })

type cache = {
  psyn : G.t;
  shards : shard array;
  mutable cfrozen : bool;
  (* tiered execution opt-in: only caches whose owner follows the
     thaw/freeze phase discipline (XBUILD's scoring loop) may decline
     cold structures to the reference evaluator — a cache used as a
     plain memo keeps the compile-always contract *)
  ctier : bool;
  (* generation = thaw count. Each owner phase (an XBUILD step's base
     pass, an engine batch) bumps it; the tier uses it to tell
     recurring keys (seen under an earlier generation — compile) from
     within-phase re-sightings (interpret). *)
  mutable cgen : int;
  (* the retiring cache a structural step replaces: entries found
     there are cross-repatched onto this cache's synopsis instead of
     recompiled. Dropped on [freeze] (by then the owner's warm pass
     has migrated everything it needs), which also bounds the chain
     at depth one. *)
  mutable cfallback : cache option;
  (* sketch-scoped compile context reused across the queries compiled
     against one sketch (the per-node edge-key arrays dominate compile
     setup); owner-phase only — frozen callers build their own *)
  mutable ccx : cctx option;
}

let create_cache ?fallback ?(tiered = false) syn =
  {
    psyn = syn;
    shards =
      Array.init shard_count (fun _ ->
          {
            stbl = Hashtbl.create 8;
            sseen = Hashtbl.create 8;
            slock = Mutex.create ();
          });
    cfrozen = false;
    ctier = tiered;
    cgen = 1;
    cfallback = fallback;
    ccx = None;
  }

let cache_synopsis c = c.psyn

let freeze c =
  c.cfrozen <- true;
  c.cfallback <- None

let thaw c =
  c.cfrozen <- false;
  c.cgen <- c.cgen + 1

let shard_of cache key =
  Array.unsafe_get cache.shards (Hashtbl.hash key land (shard_count - 1))

let compile_roots sketch roots =
  let cx = context sketch in
  Array.of_list (List.map (compile_in cx) roots)

let skel_shard s = Array.unsafe_get skel_global (s land 15)

let skel_find s =
  let sh = skel_shard s in
  Mutex.lock sh.sk_lock;
  let r = Hashtbl.find_opt sh.sk_tbl s in
  Mutex.unlock sh.sk_lock;
  r

let skel_publish s p =
  let sh = skel_shard s in
  Mutex.lock sh.sk_lock;
  if Hashtbl.length sh.sk_tbl >= skel_shard_cap then Hashtbl.reset sh.sk_tbl;
  Hashtbl.replace sh.sk_tbl s p;
  Mutex.unlock sh.sk_lock

(* Structure reuse: before paying for the structure phase, look for a
   previously compiled plan with the same structural signature and
   adopt it by rebuilding only the payload under the structural node
   renaming. The skeleton may come from a different query, from a
   refinement candidate's layout, or from a pre-split synopsis; the
   remap re-verifies that the structures really correspond, so a
   signature collision degrades to a compile, never to a wrong
   plan. *)
let try_adopt sketch (root : enode) : int * t option =
  let s = skel_sig sketch root in
  match skel_find s with
  | None ->
      Counters.incr c_skel_miss;
      (s, None)
  | Some skel -> (
      match Embed.structural_remap [ skel.nodes.(skel.root).pe ] [ root ] with
      | None ->
          Counters.incr c_skel_reject;
          (s, None)
      | Some (emap, o2n, n2o) -> (
          match repatch_onto skel sketch ~emap ~o2n ~n2o with
          | Some _ as r ->
              Counters.incr c_skel_adopt;
              (s, r)
          | None ->
              Counters.incr c_skel_reject;
              (s, None)))

(* Adopt-or-compile. Only a genuinely novel structure runs the
   compiler; [compiled] records that. *)
let build_plan (cx : cctx Lazy.t) ~(compiled : bool ref) sketch (root : enode) :
    t =
  match try_adopt sketch root with
  | _, Some p -> p
  | s, None ->
      compiled := true;
      let p = compile_in ~sig_:s (Lazy.force cx) root in
      skel_publish s p;
      p

(* Raised inside a tiered fill to decline producing plans for this
   sighting; the caller answers the query with the reference
   evaluator instead. Never escapes [plans_cached_in]. *)
exception Tier_cold

let entry_sig plans =
  Array.fold_left (fun a (p : t) -> (a * 33) + p.psig) 5381 plans land max_int

(* Get-or-compile. A hit requires the embeddings to be the cached ones
   (physically — the embedding cache returns a shared list) and every
   plan to still validate against [sketch]. Anything else repairs:
   payload drift repatches plan-by-plan, structure drift recompiles
   the affected plans, re-enumerated embeddings of an unchanged shape
   cross-repatch under the structural renaming, and only a shape
   change pays for full compilation. Inserts happen only while the
   cache is thawed (the same single-owner freeze discipline as the
   embedding cache), under the target shard's lock. *)
let plans_cached_in cache ~tier ~key sketch roots : t array option =
  (* tiering needs both an interpreter to decline to (caller side) and
     a cache owner that opted into the phase discipline *)
  let tier = tier && cache.ctier in
  let shard = shard_of cache key in
  let entry = Hashtbl.find_opt shard.stbl key in
  match entry with
  | Some e
    when e.ce_roots == roots && Array.for_all (fun p -> valid p sketch) e.ce_plans
    ->
      Counters.incr c_hits;
      Some e.ce_plans
  | _ ->
      (match entry with
      | Some _ -> ()
      | None -> Counters.incr c_misses);
      (* compiling (or repatching) is the expensive fill that chaos
         scenarios target; the engine retries the whole compile phase *)
      Xtwig_fault.Fault.point "plan.fill";
      (* the per-query needs memo is keyed by embedding ids (unique
         only within one enumeration), so each call gets a fresh one;
         the per-node edge arrays depend only on the sketch and are
         shared across calls while this cache is owner-thawed *)
      let fresh_context () =
        if cache.cfrozen then context sketch
        else
          match cache.ccx with
          | Some cx when cx.cx_sketch == sketch ->
              { cx with cx_needs = Hashtbl.create 64 }
          | _ ->
              let cx = context sketch in
              cache.ccx <- Some cx;
              cx
      in
      let compile_all () =
        let cx = lazy (fresh_context ()) in
        let compiled = ref false in
        Array.of_list (List.map (build_plan cx ~compiled sketch) roots)
      in
      (* repair a stale entry plan-by-plan, so one structurally-changed
         embedding doesn't force the query's other embeddings through
         the full compiler; a slot whose structure drifted still
         adopts an isomorphic skeleton when one is cached *)
      let repair_same_roots (e : centry) =
        let rarr = Array.of_list roots in
        let cx = lazy (fresh_context ()) in
        let drifted = ref false in
        let compiled = ref false in
        let plans =
          Array.mapi
            (fun i p ->
              match repatch p sketch with
              | Some p' -> p'
              | None ->
                  drifted := true;
                  (* under the tier, a structurally drifted slot that
                     cannot adopt a skeleton declines the whole repair
                     unless the drift has proven durable. Frozen
                     sightings are refinement candidates being scored
                     — compiling would ping-pong the entry between
                     throwaway candidate layouts, so they always
                     decline. Thawed sightings (the owner phase) mark
                     the key and decline once: if the drifted entry is
                     seen again in a later generation the structure
                     really recurs and compiles; if the cache is
                     replaced first (most structural steps), the
                     compile was never needed. Either way the entry is
                     left in place and this sighting is interpreted. *)
                  if tier then
                    match try_adopt sketch rarr.(i) with
                    | _, Some p' -> p'
                    | _, None ->
                        if cache.cfrozen then raise_notrace Tier_cold
                        else (
                          match Hashtbl.find_opt shard.sseen key with
                          | Some g when g < cache.cgen ->
                              build_plan cx ~compiled sketch rarr.(i)
                          | Some _ -> raise_notrace Tier_cold
                          | None ->
                              Mutex.lock shard.slock;
                              if Hashtbl.length shard.sseen >= 4096 then
                                Hashtbl.reset shard.sseen;
                              Hashtbl.replace shard.sseen key cache.cgen;
                              Mutex.unlock shard.slock;
                              raise_notrace Tier_cold)
                  else build_plan cx ~compiled sketch rarr.(i))
            e.ce_plans
        in
        (!drifted, plans)
      in
      let repair_remap (e : centry) =
        match Embed.structural_remap e.ce_roots roots with
        | None -> None
        | Some (emap, o2n, n2o) ->
            let rarr = Array.of_list roots in
            let cx = lazy (fresh_context ()) in
            let compiled = ref false in
            let repatched = ref false in
            let plans =
              Array.mapi
                (fun i p ->
                  match repatch_onto p sketch ~emap ~o2n ~n2o with
                  | Some p' ->
                      repatched := true;
                      p'
                  | None -> build_plan cx ~compiled sketch rarr.(i))
                e.ce_plans
            in
            Some (!repatched, plans)
      in
      (* cold key: nothing cached under this key yet. Tiered execution
         makes its first sighting cheap — adopt a cached skeleton for
         every root if possible (pure payload work), otherwise decline
         ([None]) so the caller falls back to the reference evaluator,
         and remember the key with the current generation. A key
         sighted again in a LATER generation (the next XBUILD base
         pass, the next engine batch) is part of the recurring
         workload and pays for compilation; re-sightings within one
         generation are the same one-shot query probed against
         throwaway refinement candidates and keep interpreting. The
         non-tiered path compiles unconditionally. *)
      let adopt_all () =
        let rec go acc = function
          | [] -> Some (Array.of_list (List.rev acc))
          | r :: rest -> (
              match try_adopt sketch r with
              | _, Some p -> go (p :: acc) rest
              | _, None -> None)
        in
        go [] roots
      in
      let cold () =
        if not tier then Some (compile_all ())
        else
          match adopt_all () with
          | Some plans -> Some plans
          | None -> (
              match Hashtbl.find_opt shard.sseen key with
              | Some g when g + 1 < cache.cgen -> Some (compile_all ())
              | Some _ -> None
              | None ->
                  if not cache.cfrozen then begin
                    Mutex.lock shard.slock;
                    if Hashtbl.length shard.sseen >= 4096 then
                      Hashtbl.reset shard.sseen;
                    Hashtbl.replace shard.sseen key cache.cgen;
                    Mutex.unlock shard.slock
                  end;
                  None)
      in
      let plans =
        match entry with
        | Some e when e.ce_roots == roots -> (
            (* the caller's sketch genuinely drifted from the entry's:
               an invalidation, by cause — structure when any plan's
               layout changed (even if a skeleton made the rebuild
               cheap), payload when repatching alone repaired it. A
               tier-declined repair keeps the entry and counts nothing:
               the entry was not replaced. *)
            match repair_same_roots e with
            | exception Tier_cold -> None
            | drifted, plans ->
                Counters.incr c_invalid;
                Metrics.incr
                  (if drifted then c_inv_structure else c_inv_payload);
                Some plans)
        | Some e -> (
            (* the embeddings were re-enumerated: the entry is replaced
               whatever happens — an eviction, not an invalidation (and
               when the new enumeration has the same shape, the old
               plans are still repatched rather than recompiled) *)
            match repair_remap e with
            | exception Tier_cold -> None
            | Some (_, plans) ->
                Metrics.incr c_inv_evict;
                Some plans
            | None ->
                Metrics.incr c_inv_evict;
                Some (compile_all ()))
        | None -> (
            match cache.cfallback with
            | None -> cold ()
            | Some fb -> (
                match Hashtbl.find_opt (shard_of fb key).stbl key with
                | None -> cold ()
                | Some e -> (
                    match repair_remap e with
                    | exception Tier_cold -> None
                    | Some (repatched, plans) ->
                        if repatched then Counters.incr c_fallback_reuse;
                        Some plans
                    | None -> cold ())))
      in
      (match plans with
      | Some plans when not cache.cfrozen ->
          Mutex.lock shard.slock;
          if not cache.cfrozen then begin
            Hashtbl.replace shard.stbl key
              { ce_roots = roots; ce_plans = plans; ce_sig = entry_sig plans };
            (* the key has plans again: a later drift re-earns its
               compile through a fresh across-generation sighting *)
            Hashtbl.remove shard.sseen key
          end;
          Mutex.unlock shard.slock
      | _ -> ());
      plans

let plans_cached cache ~key sketch roots =
  match plans_cached_in cache ~tier:false ~key sketch roots with
  | Some plans -> plans
  | None -> assert false (* non-tiered fills always produce plans *)

let run_all plans =
  Counters.time t_run @@ fun () ->
  Array.fold_left (fun acc p -> acc +. run p) 0.0 plans

(* [interp] enables tiered execution: when the fill path declines a
   cold structure (first sighting, no adoptable skeleton), the
   estimate is produced by the caller's reference evaluator instead of
   a throwaway compile. The reference evaluator is the semantic
   baseline every plan replicates bit-for-bit, so the tier choice can
   never change a result — only where the time is spent. *)
let estimate_cached ?interp cache ~key sketch roots =
  match interp with
  | None -> run_all (plans_cached cache ~key sketch roots)
  | Some f -> (
      match plans_cached_in cache ~tier:true ~key sketch roots with
      | Some plans -> run_all plans
      | None ->
          Counters.incr c_interp;
          List.fold_left (fun acc e -> acc +. f e) 0.0 roots)

let estimate_once sketch roots = run_all (compile_roots sketch roots)
