(* Compiled estimation plans: the TREEPARSE-style recursive evaluator
   of [Estimator] lowered into flat arrays (see DESIGN.md, "Compiled
   estimation plans").

   [compile] runs the reference traversal's *analysis* once per
   (sketch, embedding): which histograms need bucket enumeration,
   which kid alternatives depend on the enumerated combination, which
   environment entries are bound at each program point. All of that is
   static — the enumeration structure never depends on bucket values —
   so the run-time interpreter [run] is three tight loops over int and
   float arrays, with the environment held in preallocated scratch
   arrays indexed by dense edge slots instead of an assoc list rebuilt
   per bucket combination.

   Byte-identity contract: [run] replays the reference evaluator's
   float operations in the exact same order (fold orders, the
   [w' < 1e-9] pruning, the reverse-dimension context distance, the
   renormalization in bucket order), so [run (compile sk e) =
   Estimator.estimate_embedding sk e] bit-for-bit. test/test_plan.ml
   holds this differentially across datasets, workloads and refinement
   budgets. *)

module G = Xtwig_synopsis.Graph_synopsis
module Edge_hist = Xtwig_hist.Edge_hist
module Counters = Xtwig_util.Counters
open Embed

let t_compile = Counters.timer "plan.compile_ns"
let t_run = Counters.timer "plan.run_ns"
let c_compiles = Counters.counter "plan.compiles"
let c_runs = Counters.counter "plan.runs"
let c_hits = Counters.counter "plan.cache_hits"
let c_misses = Counters.counter "plan.cache_misses"
let c_invalid = Counters.counter "plan.cache_invalidations"
let c_repatch = Counters.counter "plan.repatches"

(* ------------------------------------------------------------------ *)
(* Plan representation                                                 *)

(* One enumerated histogram at a node. [ctx_*] are the dimensions
   whose edge was already bound upstream (the correlation set D at
   this program point), [bind_*] the ones this histogram binds. *)
type hplan = {
  tb : Edge_hist.table;
  h_idx : int;  (* index in the node's histogram list, for repatching *)
  ctx_dims : int array;  (* ascending dimension index *)
  ctx_slots : int array;
  bind_dims : int array;
  bind_slots : int array;
}

(* One alternative of one twig kid. [count_slot >= 0] when the edge
   count comes from an enumerated bucket, else [count_const] (average
   fanout). [fixed_idx >= 0] when the alternative sits under a
   bucket-dependent kid but its own subtree value is combo-invariant
   and is precomputed once into the fixed scratch. *)
type aplan = {
  child : int;  (* plan-node index *)
  a_vfrac : float;
  count_slot : int;
  count_const : float;
  fixed_idx : int;
}

type kplan = { k_dep : bool; alts : aplan array }

(* One alternative of one branching predicate. [b_slot >= 0] reads the
   bucket-conditioned P(count >= 1) from scratch; [b_default] is the
   synopsis existence fraction, [b_nested] the compile-time-constant
   nested factor (value predicate times nested branch fractions). *)
type balt = { b_slot : int; b_default : float; b_nested : float }

type pnode = {
  kids : kplan array;
  enum : hplan array;
  branches : balt array array;
  branch_dep : bool;
  branch_const : float;  (* branch factor when [not branch_dep] *)
  pe : enode;  (* the embedding node this plan node compiles *)
}

type t = {
  nodes : pnode array;  (* children before parents *)
  root : int;
  root_const : float;  (* extent size x root value fraction *)
  n_slots : int;
  n_fixed : int;
  (* validation: a plan hard-codes histogram tables and value
     fractions, so reuse requires the same synopsis and unchanged
     summaries at every visited node *)
  v_sketch : Sketch.t;
  v_syn : G.t;
  v_nodes : int array;
  v_hists : (Sketch.dim array * Edge_hist.t) list array;
  v_vnodes : int array;
  v_vh : Xtwig_hist.Hist1d.t option array;
  v_vc : Xtwig_hist.Mcv.t option array;
}

(* ------------------------------------------------------------------ *)
(* Compile-time constants (shared logic with the reference evaluator) *)

let vfrac sketch snode = function
  | None -> 1.0
  | Some p -> Sketch.value_frac sketch snode p

let rec branch_frac sketch u (alts : ebranch list) =
  let one (b : ebranch) =
    let expected = Sketch.exist_frac sketch ~src:u ~dst:b.bnode in
    let nested =
      List.fold_left
        (fun acc pred -> acc *. branch_frac sketch b.bnode pred)
        (vfrac sketch b.bnode b.bvpred)
        b.bsubs
    in
    Stdlib.min 1.0 (expected *. nested)
  in
  Stdlib.min 1.0 (List.fold_left (fun acc b -> acc +. one b) 0.0 alts)

(* Sorted int-array sets: the needs-sets and enumerated-edge sets are
   consulted per (alternative, histogram) pair during analysis, so
   they are flat sorted arrays with binary-search membership and
   two-pointer intersection instead of nested list scans. *)

let sorted_uniq (a : int array) =
  let n = Array.length a in
  if n = 0 then a
  else begin
    Array.sort (fun (x : int) (y : int) -> compare x y) a;
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    if !m = n then a else Array.sub a 0 !m
  end

let mem_sorted (x : int) (a : int array) =
  let lo = ref 0 in
  let hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
  done;
  !found

let intersects (a : int array) (b : int array) =
  let na = Array.length a in
  let nb = Array.length b in
  let i = ref 0 in
  let j = ref 0 in
  let hit = ref false in
  while (not !hit) && !i < na && !j < nb do
    let x = a.(!i) in
    let y = b.(!j) in
    if x = y then hit := true else if x < y then incr i else incr j
  done;
  !hit

let concat_arrays (parts : int array list) =
  let total = List.fold_left (fun s a -> s + Array.length a) 0 parts in
  let buf = Array.make (Stdlib.max 1 total) 0 in
  let off = ref 0 in
  List.iter
    (fun a ->
      Array.blit a 0 buf !off (Array.length a);
      off := !off + Array.length a)
    parts;
  if total = Array.length buf then buf else Array.sub buf 0 total

(* ------------------------------------------------------------------ *)
(* Compiler                                                            *)

(* mutable staging record for one kid alternative, filled across the
   two child-compilation phases *)
type tmp_alt = {
  ta : enode;
  t_subdep : bool;
  mutable t_child : int;
  mutable t_fix : int;
}

(* Shared compile context: the needs-sets and per-node edge-key arrays
   depend only on (sketch, enode), and the factored embeddings of one
   query share subtree enodes, so one context amortizes the analysis
   across the plans of a whole query batch. *)
type cctx = {
  cx_sketch : Sketch.t;
  cx_syn : G.t;
  cx_nn : int;
  cx_sedges : (int, int array array) Hashtbl.t;
  cx_needs : (int, int array) Hashtbl.t;
}

let context sketch =
  let syn = Sketch.synopsis sketch in
  {
    cx_sketch = sketch;
    cx_syn = syn;
    cx_nn = G.node_count syn;
    cx_sedges = Hashtbl.create 16;
    cx_needs = Hashtbl.create 64;
  }

let compile_in cx (root : enode) : t =
  Counters.incr c_compiles;
  Counters.time t_compile @@ fun () ->
  let sketch = cx.cx_sketch in
  let syn = cx.cx_syn in
  let nn = cx.cx_nn in
  let ekey u v = (u * nn) + v in
  (* per-synopsis-node edge-key arrays, one per histogram (embeddings
     revisit synopsis nodes across alternatives, so memoized) *)
  let snode_edges = cx.cx_sedges in
  let hist_edge_arrays n hs =
    match Hashtbl.find_opt snode_edges n with
    | Some a -> a
    | None ->
        let a =
          Array.of_list
            (List.map
               (fun ((dims : Sketch.dim array), _) ->
                 Array.map (fun (d : Sketch.dim) -> ekey d.src d.dst) dims)
               hs)
        in
        Hashtbl.add snode_edges n a;
        a
  in
  let memo_needs = cx.cx_needs in
  let rec needs_of (e : enode) : int array =
    match Hashtbl.find_opt memo_needs e.eid with
    | Some a -> a
    | None ->
        let arrs = hist_edge_arrays e.snode (Sketch.hists sketch e.snode) in
        let total = ref 0 in
        Array.iter (fun a -> total := !total + Array.length a) arrs;
        let kid_needs =
          List.map
            (fun alts ->
              List.map
                (fun k ->
                  let x = needs_of k in
                  total := !total + Array.length x;
                  x)
                alts)
            e.kids
        in
        let buf = Array.make (Stdlib.max 1 !total) 0 in
        let off = ref 0 in
        let put a =
          Array.blit a 0 buf !off (Array.length a);
          off := !off + Array.length a
        in
        Array.iter put arrs;
        List.iter (List.iter put) kid_needs;
        let a =
          sorted_uniq
            (if !total = Array.length buf then buf else Array.sub buf 0 !total)
        in
        Hashtbl.add memo_needs e.eid a;
        a
  in
  (* A compile sees a handful of distinct slots, bound keys and visited
     nodes, so the dynamic sets below are flat arrays with linear scans
     — measurably cheaper than hash tables at this size, in both
     lookups and allocation. *)
  (* dense environment slots, one per distinct edge key bound anywhere *)
  let slot_keys = ref (Array.make 8 0) in
  let n_slots = ref 0 in
  let slot_of key =
    let a = !slot_keys in
    let n = !n_slots in
    let rec find i = if i = n then -1 else if a.(i) = key then i else find (i + 1) in
    let s = find 0 in
    if s >= 0 then s
    else begin
      let a =
        if n = Array.length a then begin
          let b = Array.make (2 * n) 0 in
          Array.blit a 0 b 0 n;
          slot_keys := b;
          b
        end
        else a
      in
      a.(n) <- key;
      n_slots := n + 1;
      n
    end
  in
  (* edge keys bound at the current program point — the static mirror
     of the reference's environment threading. Binds nest strictly
     (pushed in a node's phase 2, popped at its exit), so a stack. *)
  let bstack = ref (Array.make 16 0) in
  let n_bound = ref 0 in
  let bound_mem key =
    let a = !bstack in
    let n = !n_bound in
    let rec go i = i < n && (a.(i) = key || go (i + 1)) in
    go 0
  in
  let bound_push key =
    let a =
      if !n_bound = Array.length !bstack then begin
        let b = Array.make (2 * !n_bound) 0 in
        Array.blit !bstack 0 b 0 !n_bound;
        bstack := b;
        b
      end
      else !bstack
    in
    a.(!n_bound) <- key;
    incr n_bound
  in
  let n_fixed = ref 0 in
  let rev_nodes = ref [] in
  let n_nodes = ref 0 in
  let push p =
    rev_nodes := p :: !rev_nodes;
    let i = !n_nodes in
    incr n_nodes;
    i
  in
  (* validation accumulators: every visited synopsis node's histogram
     list, every consulted value summary *)
  let vlist = ref [] in
  let note_node n =
    if not (List.exists (fun (m, _) -> m = n) !vlist) then
      vlist := (n, Sketch.hists sketch n) :: !vlist
  in
  let vplist = ref [] in
  let note_vpred n = function
    | None -> ()
    | Some _ ->
        if not (List.exists (fun (m, _, _) -> m = n) !vplist) then
          vplist := (n, Sketch.vhist sketch n, Sketch.vcat sketch n) :: !vplist
  in
  let rec note_branch (b : ebranch) =
    note_vpred b.bnode b.bvpred;
    List.iter (List.iter note_branch) b.bsubs
  in
  let compile_balt u (b : ebranch) =
    note_branch b;
    let nested =
      List.fold_left
        (fun acc pred -> acc *. branch_frac sketch b.bnode pred)
        (vfrac sketch b.bnode b.bvpred)
        b.bsubs
    in
    let key = ekey u b.bnode in
    {
      b_slot = (if bound_mem key then slot_of key else -1);
      b_default = Sketch.exist_frac sketch ~src:u ~dst:b.bnode;
      b_nested = nested;
    }
  in
  let rec compile_node (e : enode) : int =
    let n = e.snode in
    note_node n;
    note_vpred n e.vpred;
    let hs = Sketch.hists sketch n in
    let edge_arrs = hist_edge_arrays n hs in
    let nh = Array.length edge_arrs in
    let branch_first_edges =
      Array.of_list
        (List.concat_map
           (fun alts -> List.map (fun (b : ebranch) -> ekey n b.bnode) alts)
           e.branches)
    in
    (* per-alternative facts, each computed once: the first histogram
       covering the kid edge (monomorphic field compares — the generic
       structural equality on [Sketch.dim] records dominated compile
       time) and the subtree needs-set *)
    let alts_arr = Array.of_list (List.concat e.kids) in
    let na = Array.length alts_arr in
    let aneeds = Array.map needs_of alts_arr in
    let cover =
      Array.map
        (fun (a : enode) ->
          let dst = a.snode in
          let covers (dims : Sketch.dim array) =
            Array.exists
              (fun (d' : Sketch.dim) ->
                d'.src = n && d'.dst = dst
                && match d'.kind with Sketch.Forward -> true | _ -> false)
              dims
          in
          let rec scan i = function
            | [] -> -1
            | (dims, _) :: rest -> if covers dims then i else scan (i + 1) rest
          in
          scan 0 hs)
        alts_arr
    in
    let enum_flag =
      Array.init nh (fun i ->
          (let rec anyc j = j < na && (cover.(j) = i || anyc (j + 1)) in
           anyc 0)
          ||
          let es = edge_arrs.(i) in
          Array.exists
            (fun ed -> Array.exists (fun (ed' : int) -> ed' = ed) es)
            branch_first_edges
          ||
          let rec anyn j =
            j < na
            && (Array.exists (fun ed -> mem_sorted ed aneeds.(j)) es
               || anyn (j + 1))
          in
          anyn 0)
    in
    let enum_edges =
      let parts = ref [] in
      Array.iteri
        (fun i es -> if enum_flag.(i) then parts := es :: !parts)
        edge_arrs;
      sorted_uniq (concat_arrays !parts)
    in
    let kid_tmp : (bool * tmp_alt array) array =
      let ai = ref (-1) in
      Array.of_list
        (List.map
           (fun alts ->
             let dep = ref false in
             let tas =
               Array.of_list
                 (List.map
                    (fun (a : enode) ->
                      incr ai;
                      let sub = intersects aneeds.(!ai) enum_edges in
                      if sub || mem_sorted (ekey n a.snode) enum_edges then
                        dep := true;
                      { ta = a; t_subdep = sub; t_child = -1; t_fix = -1 })
                    alts)
             in
             (!dep, tas))
           e.kids)
    in
    (* phase 1 — children evaluated under the entry environment:
       independent kids, plus the combo-invariant alternatives of
       dependent kids (the reference's fixed_values) *)
    Array.iter
      (fun (dep, alts) ->
        Array.iter
          (fun a ->
            if not dep then a.t_child <- compile_node a.ta
            else if not a.t_subdep then begin
              a.t_child <- compile_node a.ta;
              a.t_fix <- !n_fixed;
              incr n_fixed
            end)
          alts)
      kid_tmp;
    (* phase 2 — the enumerated histograms, in order: dimensions bound
       upstream (or by an earlier histogram of this node) join the
       context; the rest bind new slots. A key repeated within one
       histogram neither conditions nor binds twice, mirroring the
       reference's env_mem guard. *)
    let node_binds = ref 0 in
    let rev_enum = ref [] in
    let n_enum = ref 0 in
    List.iteri
      (fun i ((dims : Sketch.dim array), h) ->
        if enum_flag.(i) then begin
          let k = Array.length dims in
          let ctx_d = Array.make k 0 and ctx_s = Array.make k 0 in
          let bind_d = Array.make k 0 and bind_s = Array.make k 0 in
          let bind_k = Array.make k 0 in
          let nctx = ref 0 and nbind = ref 0 in
          Array.iteri
            (fun di (d : Sketch.dim) ->
              let key = ekey d.src d.dst in
              if bound_mem key then begin
                ctx_d.(!nctx) <- di;
                ctx_s.(!nctx) <- slot_of key;
                incr nctx
              end
              else begin
                let rec dup j = j < !nbind && (bind_k.(j) = key || dup (j + 1)) in
                if not (dup 0) then begin
                  bind_k.(!nbind) <- key;
                  bind_d.(!nbind) <- di;
                  bind_s.(!nbind) <- slot_of key;
                  incr nbind
                end
              end)
            dims;
          for j = 0 to !nbind - 1 do
            bound_push bind_k.(j)
          done;
          node_binds := !node_binds + !nbind;
          incr n_enum;
          rev_enum :=
            {
              tb = Edge_hist.table h;
              h_idx = i;
              ctx_dims = (if !nctx = k then ctx_d else Array.sub ctx_d 0 !nctx);
              ctx_slots = (if !nctx = k then ctx_s else Array.sub ctx_s 0 !nctx);
              bind_dims = (if !nbind = k then bind_d else Array.sub bind_d 0 !nbind);
              bind_slots = (if !nbind = k then bind_s else Array.sub bind_s 0 !nbind);
            }
            :: !rev_enum
        end)
      hs;
    let enum =
      match !rev_enum with
      | [] -> [||]
      | hd :: _ ->
          let arr = Array.make !n_enum hd in
          List.iteri (fun i hp -> arr.(!n_enum - 1 - i) <- hp) !rev_enum;
          arr
    in
    (* phase 3 — branching predicates. When no enumerated histogram
       covers a branch edge the whole factor is a compile-time
       constant (edge keys with source [n] cannot be bound upstream:
       ancestors' dimensions never point at a descendant's children) *)
    let branch_dep =
      Array.exists (fun ed -> mem_sorted ed enum_edges) branch_first_edges
    in
    let branches =
      Array.of_list
        (List.map
           (fun alts -> Array.of_list (List.map (compile_balt n) alts))
           e.branches)
    in
    let branch_const =
      if branch_dep then 1.0
      else
        Array.fold_left
          (fun acc (alts : balt array) ->
            acc
            *. Stdlib.min 1.0
                 (Array.fold_left
                    (fun s b ->
                      s +. Stdlib.min 1.0 (b.b_default *. b.b_nested))
                    0.0 alts))
          1.0 branches
    in
    (* phase 4 — children evaluated per bucket combination, under the
       extended environment *)
    Array.iter
      (fun (dep, alts) ->
        if dep then
          Array.iter
            (fun a -> if a.t_subdep then a.t_child <- compile_node a.ta)
            alts)
      kid_tmp;
    (* assemble, then pop this node's bindings *)
    let kids =
      Array.map
        (fun (dep, alts) ->
          {
            k_dep = dep;
            alts =
              Array.map
                (fun a ->
                  let ckey = ekey n a.ta.snode in
                  {
                    child = a.t_child;
                    a_vfrac = vfrac sketch a.ta.snode a.ta.vpred;
                    count_slot =
                      (if bound_mem ckey then slot_of ckey else -1);
                    count_const =
                      Sketch.avg_fanout sketch ~src:n ~dst:a.ta.snode;
                    fixed_idx = a.t_fix;
                  })
                alts;
          })
        kid_tmp
    in
    n_bound := !n_bound - !node_binds;
    push { kids; enum; branches; branch_dep; branch_const; pe = e }
  in
  let root_idx = compile_node root in
  let root_const =
    float_of_int (G.extent_size syn root.snode)
    *. vfrac sketch root.snode root.vpred
  in
  let v_nodes = Array.of_list (List.rev_map fst !vlist) in
  let v_hists = Array.of_list (List.rev_map snd !vlist) in
  let v_vnodes = Array.of_list (List.rev_map (fun (n, _, _) -> n) !vplist) in
  let v_vh = Array.of_list (List.rev_map (fun (_, h, _) -> h) !vplist) in
  let v_vc = Array.of_list (List.rev_map (fun (_, _, c) -> c) !vplist) in
  {
    nodes = Array.of_list (List.rev !rev_nodes);
    root = root_idx;
    root_const;
    n_slots = !n_slots;
    n_fixed = !n_fixed;
    v_sketch = sketch;
    v_syn = syn;
    v_nodes;
    v_hists;
    v_vnodes;
    v_vh;
    v_vc;
  }

let compile sketch root = compile_in (context sketch) root

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let same_phys_opt a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

(* Histogram lists are usually physically shared across incremental
   rebuilds; content comparison via interned table ids catches the
   rebuilt-but-identical case. *)
let hists_equal l l' =
  l == l'
  || List.compare_lengths l l' = 0
     && List.for_all2
          (fun ((d : Sketch.dim array), h) ((d' : Sketch.dim array), h') ->
            d = d' && (h == h' || Edge_hist.table_id h = Edge_hist.table_id h'))
          l l'

let valid t sketch =
  sketch == t.v_sketch
  || Sketch.synopsis sketch == t.v_syn
     &&
     let ok = ref true in
     Array.iteri
       (fun i n ->
         if !ok && not (hists_equal t.v_hists.(i) (Sketch.hists sketch n)) then
           ok := false)
       t.v_nodes;
     Array.iteri
       (fun i n ->
         if
           !ok
           && not
                (same_phys_opt t.v_vh.(i) (Sketch.vhist sketch n)
                && same_phys_opt t.v_vc.(i) (Sketch.vcat sketch n))
         then ok := false)
       t.v_vnodes;
     !ok

(* ------------------------------------------------------------------ *)
(* Repatching                                                          *)

(* An invalidated plan whose histogram *structure* is unchanged (same
   synopsis, same dimension layout at every visited node — the
   histogram-content and value-summary refinements XBUILD scores by
   the thousand) compiles to the same skeleton: only the interned
   bucket tables and the compile-time float constants move. Repatch
   rebuilds exactly those, skipping the needs/dependency analysis.
   The result is indistinguishable from a fresh [compile]. *)

let dims_equal (d : Sketch.dim array) (d' : Sketch.dim array) =
  d == d' || d = d'

let hist_structure_equal l l' =
  l == l'
  || List.compare_lengths l l' = 0
     && List.for_all2
          (fun ((d : Sketch.dim array), _) ((d' : Sketch.dim array), _) ->
            dims_equal d d')
          l l'

let repatch (t : t) sketch : t option =
  if Sketch.synopsis sketch != t.v_syn then None
  else
    let ok = ref true in
    Array.iteri
      (fun i n ->
        if !ok && not (hist_structure_equal t.v_hists.(i) (Sketch.hists sketch n))
        then ok := false)
      t.v_nodes;
    if not !ok then None
    else begin
      Counters.incr c_repatch;
      Counters.time t_compile @@ fun () ->
      let nodes =
        Array.map
          (fun p ->
            let e = p.pe in
            let n = e.snode in
            let hs = Sketch.hists sketch n in
            let harr = Array.of_list hs in
            let enum =
              Array.map
                (fun hp -> { hp with tb = Edge_hist.table (snd harr.(hp.h_idx)) })
                p.enum
            in
            let kids =
              let karr = Array.of_list e.kids in
              Array.mapi
                (fun i kp ->
                  let aarr = Array.of_list karr.(i) in
                  {
                    kp with
                    alts =
                      Array.mapi
                        (fun j a ->
                          let (en : enode) = aarr.(j) in
                          { a with a_vfrac = vfrac sketch en.snode en.vpred })
                        kp.alts;
                  })
                p.kids
            in
            let branches =
              let barr = Array.of_list e.branches in
              Array.mapi
                (fun i alts ->
                  let aarr = Array.of_list barr.(i) in
                  Array.mapi
                    (fun j b ->
                      let (eb : ebranch) = aarr.(j) in
                      let nested =
                        List.fold_left
                          (fun acc pred ->
                            acc *. branch_frac sketch eb.bnode pred)
                          (vfrac sketch eb.bnode eb.bvpred)
                          eb.bsubs
                      in
                      { b with b_nested = nested })
                    alts)
                p.branches
            in
            let branch_const =
              if p.branch_dep then 1.0
              else
                Array.fold_left
                  (fun acc (alts : balt array) ->
                    acc
                    *. Stdlib.min 1.0
                         (Array.fold_left
                            (fun s b ->
                              s +. Stdlib.min 1.0 (b.b_default *. b.b_nested))
                            0.0 alts))
                  1.0 branches
            in
            { p with enum; kids; branches; branch_const })
          t.nodes
      in
      let re = nodes.(t.root).pe in
      let root_const =
        float_of_int (G.extent_size t.v_syn re.snode)
        *. vfrac sketch re.snode re.vpred
      in
      let v_hists = Array.map (fun n -> Sketch.hists sketch n) t.v_nodes in
      let v_vh = Array.map (fun n -> Sketch.vhist sketch n) t.v_vnodes in
      let v_vc = Array.map (fun n -> Sketch.vcat sketch n) t.v_vnodes in
      Some
        {
          t with
          nodes;
          root_const;
          v_sketch = sketch;
          v_hists;
          v_vh;
          v_vc;
        }
    end

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let run (t : t) : float =
  Counters.incr c_runs;
  let nodes = t.nodes in
  let counts = Array.make (Stdlib.max 1 t.n_slots) 0.0 in
  let p1s = Array.make (Stdlib.max 1 t.n_slots) 0.0 in
  let fixed = Array.make (Stdlib.max 1 t.n_fixed) 0.0 in
  let rec expand (idx : int) : float =
    let p = nodes.(idx) in
    let nk = Array.length p.kids in
    (* independent kids: entry-environment contributions *)
    let indep = ref 1.0 in
    for i = 0 to nk - 1 do
      let kid = p.kids.(i) in
      if not kid.k_dep then begin
        let s = ref 0.0 in
        let alts = kid.alts in
        for j = 0 to Array.length alts - 1 do
          let a = alts.(j) in
          let count =
            if a.count_slot >= 0 then counts.(a.count_slot) else a.count_const
          in
          s := !s +. (count *. (a.a_vfrac *. expand a.child))
        done;
        indep := !indep *. !s
      end
    done;
    (* combo-invariant alternative values inside dependent kids *)
    for i = 0 to nk - 1 do
      let kid = p.kids.(i) in
      if kid.k_dep then begin
        let alts = kid.alts in
        for j = 0 to Array.length alts - 1 do
          let a = alts.(j) in
          if a.fixed_idx >= 0 then
            fixed.(a.fixed_idx) <- a.a_vfrac *. expand a.child
        done
      end
    done;
    let branch_factor () =
      let acc = ref 1.0 in
      let nb = Array.length p.branches in
      for bi = 0 to nb - 1 do
        let alts = p.branches.(bi) in
        let s = ref 0.0 in
        for j = 0 to Array.length alts - 1 do
          let b = alts.(j) in
          let expected = if b.b_slot >= 0 then p1s.(b.b_slot) else b.b_default in
          s := !s +. Stdlib.min 1.0 (expected *. b.b_nested)
        done;
        acc := !acc *. Stdlib.min 1.0 !s
      done;
      !acc
    in
    (* per-combination leaf: branch factor first (when it varies),
       then the dependent kids in order — the reference's combos base
       case *)
    let leaf acc_w =
      let factor = ref 1.0 in
      if p.branch_dep then factor := branch_factor ();
      for i = 0 to nk - 1 do
        let kid = p.kids.(i) in
        if kid.k_dep then begin
          let s = ref 0.0 in
          let alts = kid.alts in
          for j = 0 to Array.length alts - 1 do
            let a = alts.(j) in
            let count =
              if a.count_slot >= 0 then counts.(a.count_slot) else a.count_const
            in
            let v =
              if a.fixed_idx >= 0 then fixed.(a.fixed_idx)
              else a.a_vfrac *. expand a.child
            in
            s := !s +. (count *. v)
          done;
          factor := !factor *. !s
        end
      done;
      acc_w *. !factor
    in
    let ne = Array.length p.enum in
    let rec combos hi acc_w =
      if hi = ne then leaf acc_w
      else begin
        let h = p.enum.(hi) in
        let tb = h.tb in
        let nb = tb.Edge_hist.tn in
        let k = tb.Edge_hist.tdims in
        let frac = tb.Edge_hist.tfrac in
        let nc = Array.length h.ctx_dims in
        let bind b =
          let nbind = Array.length h.bind_dims in
          for m = 0 to nbind - 1 do
            let o = (b * k) + h.bind_dims.(m) in
            let s = h.bind_slots.(m) in
            counts.(s) <- tb.Edge_hist.tmean.(o);
            p1s.(s) <- tb.Edge_hist.tp1.(o)
          done
        in
        if nb = 0 then 0.0
        else if nc = 0 then begin
          let acc = ref 0.0 in
          for b = 0 to nb - 1 do
            let w' = acc_w *. frac.(b) in
            if not (w' < 1e-9) then begin
              bind b;
              acc := !acc +. combos (hi + 1) w'
            end
          done;
          !acc
        end
        else begin
          let compat b =
            let ok = ref true in
            let m = ref 0 in
            while !ok && !m < nc do
              let o = (b * k) + h.ctx_dims.(!m) in
              let v = counts.(h.ctx_slots.(!m)) in
              if not (v >= tb.Edge_hist.tlo.(o) && v <= tb.Edge_hist.thi.(o))
              then ok := false;
              incr m
            done;
            !ok
          in
          let mass = ref 0.0 in
          let nok = ref 0 in
          for b = 0 to nb - 1 do
            if compat b then begin
              mass := !mass +. frac.(b);
              incr nok
            end
          done;
          if !nok = 0 then begin
            (* nearest-bucket fallback, context distance accumulated
               in the reference's reverse-dimension order *)
            let dist b =
              let a = ref 0.0 in
              for m = nc - 1 downto 0 do
                let o = (b * k) + h.ctx_dims.(m) in
                let dx = tb.Edge_hist.tmean.(o) -. counts.(h.ctx_slots.(m)) in
                a := !a +. (dx *. dx)
              done;
              !a
            in
            let best = ref 0 in
            let best_d = ref (dist 0) in
            for b = 1 to nb - 1 do
              let d = dist b in
              if not (!best_d <= d) then begin
                best := b;
                best_d := d
              end
            done;
            let w' = acc_w *. 1.0 in
            if not (w' < 1e-9) then begin
              bind !best;
              0.0 +. combos (hi + 1) w'
            end
            else 0.0
          end
          else begin
            let mass = !mass in
            let acc = ref 0.0 in
            for b = 0 to nb - 1 do
              if compat b then begin
                let w' = acc_w *. (frac.(b) /. mass) in
                if not (w' < 1e-9) then begin
                  bind b;
                  acc := !acc +. combos (hi + 1) w'
                end
              end
            done;
            !acc
          end
        end
      end
    in
    let dep_factor = if ne = 0 then 1.0 else combos 0 1.0 in
    let ibf = if p.branch_dep then 1.0 else p.branch_const in
    ibf *. !indep *. dep_factor
  in
  t.root_const *. expand t.root

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)

type centry = { ce_roots : enode list; ce_plans : t array }

type cache = {
  psyn : G.t;
  ctbl : (string, centry) Hashtbl.t;
  clock : Mutex.t;
  mutable cfrozen : bool;
  (* sketch-scoped compile context reused across the queries compiled
     against one sketch (the per-node edge-key arrays dominate compile
     setup); owner-phase only — frozen callers build their own *)
  mutable ccx : cctx option;
}

let create_cache syn =
  {
    psyn = syn;
    ctbl = Hashtbl.create 64;
    clock = Mutex.create ();
    cfrozen = false;
    ccx = None;
  }

let cache_synopsis c = c.psyn
let freeze c = c.cfrozen <- true
let thaw c = c.cfrozen <- false
let compile_roots sketch roots =
  let cx = context sketch in
  Array.of_list (List.map (compile_in cx) roots)

(* Get-or-compile. A hit requires the embeddings to be the cached ones
   (physically — the embedding cache returns a shared list) and every
   plan to still validate against [sketch]; anything else recompiles,
   inserting only while the cache is thawed (the same single-owner
   freeze discipline as the embedding cache). *)
let plans_cached cache ~key sketch roots =
  let entry = Hashtbl.find_opt cache.ctbl key in
  match entry with
  | Some e
    when e.ce_roots == roots && Array.for_all (fun p -> valid p sketch) e.ce_plans
    ->
      Counters.incr c_hits;
      e.ce_plans
  | _ ->
      (match entry with
      | Some _ -> Counters.incr c_invalid
      | None -> Counters.incr c_misses);
      (* compiling (or repatching) is the expensive fill that chaos
         scenarios target; the engine retries the whole compile phase *)
      Xtwig_fault.Fault.point "plan.fill";
      (* the per-query needs memo is keyed by embedding ids (unique
         only within one enumeration), so each call gets a fresh one;
         the per-node edge arrays depend only on the sketch and are
         shared across calls while this cache is owner-thawed *)
      let fresh_context () =
        if cache.cfrozen then context sketch
        else
          match cache.ccx with
          | Some cx when cx.cx_sketch == sketch ->
              { cx with cx_needs = Hashtbl.create 64 }
          | _ ->
              let cx = context sketch in
              cache.ccx <- Some cx;
              cx
      in
      (* a stale entry for the same embeddings usually differs only in
         histogram contents — repatch its plans instead of recompiling;
         per plan, so one structurally-changed embedding doesn't force
         the query's other embeddings through the full compiler *)
      let plans =
        match entry with
        | Some e when e.ce_roots == roots ->
            let rarr = Array.of_list roots in
            let cx = lazy (fresh_context ()) in
            Array.mapi
              (fun i p ->
                match repatch p sketch with
                | Some p' -> p'
                | None -> compile_in (Lazy.force cx) rarr.(i))
              e.ce_plans
        | _ ->
            let cx = fresh_context () in
            Array.of_list (List.map (compile_in cx) roots)
      in
      if not cache.cfrozen then begin
        Mutex.lock cache.clock;
        if not cache.cfrozen then
          Hashtbl.replace cache.ctbl key { ce_roots = roots; ce_plans = plans };
        Mutex.unlock cache.clock
      end;
      plans

let run_all plans =
  Counters.time t_run @@ fun () ->
  Array.fold_left (fun acc p -> acc +. run p) 0.0 plans

let estimate_cached cache ~key sketch roots =
  run_all (plans_cached cache ~key sketch roots)

let estimate_once sketch roots = run_all (compile_roots sketch roots)
