(** The XBUILD construction algorithm (Figure 8).

    Starting from the coarsest synopsis (label-split graph with 1-d
    edge histograms on forward-stable child edges), XBUILD repeatedly:

    + samples a pool of candidate refinements (nodes drawn with
      probability proportional to extent size x unstable degree);
    + samples a scoring workload of twig queries focused on the
      regions the candidates touch;
    + scores every candidate by the {e marginal gain} criterion —
      reduction of average estimation error on the workload per byte
      of extra space — and applies the best one;

    until the space budget is exhausted. True selectivities for the
    scoring workload come from a caller-supplied [truth] oracle (this
    repository uses the exact evaluator with memoization, where the
    paper used a large reference summary — see DESIGN.md). *)

type step_info = {
  step : int;
  op : Refinement.op;
  description : string;
      (** human-readable form of [op], rendered against the sketch it
          was generated from (node ids shift across splits, so callers
          cannot render it themselves afterwards) *)
  size : int;  (** bytes after applying the op *)
  workload_error : float;  (** scoring-workload error after the op *)
}

val build :
  ?pool:Xtwig_util.Pool.t ->
  ?seed:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?ebudget0:int ->
  ?vbudget0:int ->
  ?on_step:(Sketch.t -> step_info -> unit) ->
  ?plan_cache_out:Plan.cache option ref ->
  workload:
    (Xtwig_util.Prng.t -> focus:string list -> Xtwig_path.Path_types.twig list) ->
  truth:(Xtwig_path.Path_types.twig -> float) ->
  budget:int ->
  Xtwig_xml.Doc.t ->
  Sketch.t
(** [candidates] is the per-step candidate-pool size (default 8);
    [max_steps] bounds the loop (default 400); [ebudget0]/[vbudget0]
    configure the coarsest synopsis. [on_step] observes every applied
    refinement — the benchmark harness uses it to snapshot
    error-vs-size curves in a single build.

    [pool] fans candidate scoring out across the given worker domains.
    Candidate generation, workload sampling and truth resolution stay
    on the calling domain (they consume the PRNG and the caller's
    [truth] closure, which need not be thread-safe); workers receive a
    frozen embedding cache and immutable sketches. The applied
    refinement is chosen by deterministic (gain, candidate-index)
    reduction, so the resulting synopsis is {e bit-identical} to the
    sequential build — parallelism changes wall-clock time only.

    [plan_cache_out], when given, receives the build's final shared
    {!Plan.cache} (frozen, quiescent): a session created on the
    returned sketch can adopt it — or chain it as the [fallback] of a
    fresh cache when the last applied step was structural — and
    repatch the build's plans instead of compiling its first queries
    cold. *)

val workload_error :
  Sketch.t -> truth:(Xtwig_path.Path_types.twig -> float) ->
  Xtwig_path.Path_types.twig list -> float
(** Average absolute relative error with the paper's sanity bound (the
    10th percentile of the true counts of the evaluated workload). *)
