(** Persistence for Twig XSKETCH configurations.

    A built sketch is determined by (document, element partition,
    histogram configuration); the histograms themselves are cheap to
    recompute (one document pass) while {e finding} a good partition
    and configuration is what XBUILD spends minutes on. This module
    saves exactly that product — the partition (run-length encoded)
    and the configuration — in a small, versioned, line-oriented text
    format, and rebuilds the sketch against the same document on load.

    {2 Format versions}

    The current format is [xtwig-sketch/v2]: a magic line, a [meta]
    line carrying the build's space budget, seed and an MD5 digest of
    the document's tag table, then the v1 body. The digest rejects a
    mismatched document before any decoding; budget and seed make
    sketch files self-describing for provenance ([-1] = unknown).
    Files written by the pre-versioning format ([xtwig-sketch v1]) are
    still read — their body embeds the full tag list, which guards
    document identity the slow way. Any other first line is rejected
    with a typed error instead of garbage decoding.

    {2 Crash safety}

    v2 files end with a [checksum <md5-hex>] line covering every
    preceding byte; the line is mandatory, so truncation anywhere —
    including exactly after the [end] marker — reads as
    [Xerror.Corrupt], never as a silently smaller sketch. {!write_res}
    publishes atomically (sibling temp file, fsync, rename): a crash
    or injected fault mid-write leaves the destination either absent
    or its previous complete version. {!read_res} quarantines a
    corrupt file (renames it to [<path>.quarantined], or
    [<path>.quarantined.N] with the first free [N] when earlier
    evidence already sits there) before
    reporting, so the next write starts clean and the evidence
    survives.

    Fault points ({!Xtwig_fault.Fault.point}): [sketch_io.write],
    [sketch_io.fsync], [sketch_io.rename] on the write path (surface
    as [Xerror.Io], destination untouched) and [sketch_io.read]. *)

type meta = { version : int; budget : int option; seed : int option }
(** Provenance of a loaded sketch file. v1 files carry no budget or
    seed. *)

(** {1 Result-typed surface (supported)} *)

val write_res :
  ?budget:int -> ?seed:int -> Sketch.t -> string ->
  (unit, Xtwig_util.Xerror.t) result
(** [write_res ?budget ?seed sketch path] writes a v2 file recording
    the build's budget and seed when given. Atomic: temp file + fsync
    + rename, so [path] never holds a partial file. Errors are
    [Xerror.Io]. *)

val read_res :
  Xtwig_xml.Doc.t -> string -> (meta * Sketch.t, Xtwig_util.Xerror.t) result
(** [read_res doc path] rebuilds the sketch against [doc]. Errors are
    [Xerror.Io] (file system), [Xerror.Corrupt] (damaged bytes —
    truncation or checksum mismatch; the file is renamed to
    [<path>.quarantined] first) or [Xerror.Sketch_format] (unknown
    version, malformed content, document mismatch). *)

val of_string_res :
  Xtwig_xml.Doc.t -> string -> (meta * Sketch.t, Xtwig_util.Xerror.t) result

val to_string : ?budget:int -> ?seed:int -> Sketch.t -> string
(** The exact bytes {!write_res} writes — also the canonical identity
    of a built sketch (the parallel-build differential tests compare
    synopses by these bytes). *)

val tag_digest : Xtwig_xml.Doc.t -> string
(** MD5 hex digest of the document's tag table, as embedded in v2
    headers. *)
