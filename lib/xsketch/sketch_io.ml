module G = Xtwig_synopsis.Graph_synopsis
module Doc = Xtwig_xml.Doc
module Xerror = Xtwig_util.Xerror
module Fault = Xtwig_fault.Fault

exception Format_error of string

(* Damaged bytes (torn write, checksum mismatch) as opposed to
   well-formed-but-wrong content; [read_res] quarantines on this. *)
exception Corrupt_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt
let fail_corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt_error s)) fmt

let magic_v1 = "xtwig-sketch v1"
let magic_v2 = "xtwig-sketch/v2"

let tag_digest doc =
  let buf = Buffer.create 256 in
  for t = 0 to Doc.tag_count doc - 1 do
    Buffer.add_string buf (Doc.tag_to_string doc t);
    Buffer.add_char buf '\000'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let emit_partition buf syn =
  let doc = G.doc syn in
  let n = Doc.size doc in
  (* run-length encode the element -> node assignment *)
  Buffer.add_string buf "partition";
  let i = ref 0 in
  while !i < n do
    let v = G.node_of_elem syn !i in
    let start = !i in
    while !i < n && G.node_of_elem syn !i = v do
      incr i
    done;
    Buffer.add_string buf (Printf.sprintf " %d*%d" v (!i - start))
  done;
  Buffer.add_char buf '\n'

let emit_dim buf (d : Sketch.dim) =
  Buffer.add_string buf
    (Printf.sprintf "%d>%d%s" d.src d.dst
       (match d.kind with Sketch.Forward -> "f" | Sketch.Backward -> "b"))

let emit_config buf (cfg : Sketch.config) =
  Array.iteri
    (fun n specs ->
      List.iter
        (fun (spec : Sketch.hist_spec) ->
          Buffer.add_string buf (Printf.sprintf "ehist %d %d" n spec.budget);
          List.iter
            (fun d ->
              Buffer.add_char buf ' ';
              emit_dim buf d)
            spec.dims;
          Buffer.add_char buf '\n')
        specs)
    cfg.especs;
  Buffer.add_string buf "vbudgets";
  Array.iter (fun b -> Buffer.add_string buf (Printf.sprintf " %d" b)) cfg.vbudgets;
  Buffer.add_char buf '\n'

let to_string ?(budget = -1) ?(seed = -1) sketch =
  let syn = Sketch.synopsis sketch in
  let doc = G.doc syn in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v2;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "meta budget %d seed %d digest %s\n" budget seed
       (tag_digest doc));
  Buffer.add_string buf (Printf.sprintf "elements %d\n" (Doc.size doc));
  Buffer.add_string buf "tags";
  for t = 0 to Doc.tag_count doc - 1 do
    Buffer.add_string buf (" " ^ Doc.tag_to_string doc t)
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (G.node_count syn));
  emit_partition buf syn;
  emit_config buf (Sketch.config sketch);
  Buffer.add_string buf "end\n";
  (* trailing integrity line: a digest over every preceding byte, so a
     torn write (truncation anywhere, including exactly after the end
     marker) is detectable on read *)
  let body = Buffer.contents buf in
  body ^ "checksum " ^ Digest.to_hex (Digest.string body) ^ "\n"

(* Atomic publish: write to a sibling temp file, fsync, then rename
   over the destination — a crash or injected fault at any step leaves
   the destination either absent or its previous complete version. *)
let write_res ?budget ?seed sketch path =
  let tmp = path ^ ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Fault.point "sketch_io.write";
    let oc = open_out tmp in
    (match
       output_string oc (to_string ?budget ?seed sketch);
       flush oc;
       Fault.point "sketch_io.fsync";
       Unix.fsync (Unix.descr_of_out_channel oc)
     with
    | () -> close_out oc
    | exception e ->
        close_out_noerr oc;
        raise e);
    Fault.point "sketch_io.rename";
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      cleanup ();
      Error (Xerror.Io msg)
  | exception Unix.Unix_error (err, fn, _) ->
      cleanup ();
      Error (Xerror.Io (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  | exception Fault.Injected { point; _ } ->
      cleanup ();
      Error (Xerror.Io (Printf.sprintf "injected fault at %s" point))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let parse_dim s : Sketch.dim =
  match String.index_opt s '>' with
  | None -> fail "bad dimension %S" s
  | Some i -> (
      let src = int_of_string_opt (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let n = String.length rest in
      if n < 2 then fail "bad dimension %S" s
      else
        let dst = int_of_string_opt (String.sub rest 0 (n - 1)) in
        let kind =
          match rest.[n - 1] with
          | 'f' -> Sketch.Forward
          | 'b' -> Sketch.Backward
          | _ -> fail "bad dimension kind in %S" s
        in
        match (src, dst) with
        | Some src, Some dst -> { Sketch.src; dst; kind }
        | _ -> fail "bad dimension %S" s)

type meta = { version : int; budget : int option; seed : int option }

let parse_meta line =
  match String.split_on_char ' ' line with
  | [ "meta"; "budget"; b; "seed"; s; "digest"; d ] -> (
      match (int_of_string_opt b, int_of_string_opt s) with
      | Some b, Some s ->
          let opt v = if v < 0 then None else Some v in
          ({ version = 2; budget = opt b; seed = opt s }, d)
      | _ -> fail "bad meta line %S" line)
  | _ -> fail "bad meta line %S" line

(* The body shared by v1 and v2: elements/tags/nodes/partition header
   then ehist/vbudgets configuration lines up to the end marker. *)
let parse_body doc lines =
  let expect_prefix line p =
    if not (String.length line >= String.length p && String.sub line 0 (String.length p) = p)
    then fail "expected %S, got %S" p line
  in
  match lines with
  | elems :: tags :: nodes :: partition :: rest ->
      expect_prefix elems "elements ";
      let n_elems =
        match int_of_string_opt (String.sub elems 9 (String.length elems - 9)) with
        | Some n -> n
        | None -> fail "bad element count"
      in
      if n_elems <> Doc.size doc then
        fail "document mismatch: sketch built over %d elements, document has %d"
          n_elems (Doc.size doc);
      expect_prefix tags "tags ";
      let tag_names =
        String.split_on_char ' ' (String.sub tags 5 (String.length tags - 5))
      in
      let doc_tags = List.init (Doc.tag_count doc) (Doc.tag_to_string doc) in
      if tag_names <> doc_tags then
        fail "document mismatch: tag vocabulary differs";
      expect_prefix nodes "nodes ";
      let n_nodes =
        match int_of_string_opt (String.sub nodes 6 (String.length nodes - 6)) with
        | Some n -> n
        | None -> fail "bad node count"
      in
      expect_prefix partition "partition ";
      let node_of = Array.make n_elems 0 in
      let pos = ref 0 in
      List.iter
        (fun run ->
          match String.split_on_char '*' run with
          | [ v; len ] -> (
              match (int_of_string_opt v, int_of_string_opt len) with
              | Some v, Some len ->
                  if !pos + len > n_elems then fail "partition overruns document";
                  Array.fill node_of !pos len v;
                  pos := !pos + len
              | _ -> fail "bad partition run %S" run)
          | _ -> fail "bad partition run %S" run)
        (String.split_on_char ' '
           (String.sub partition 10 (String.length partition - 10)));
      if !pos <> n_elems then fail "partition covers %d of %d elements" !pos n_elems;
      let syn = G.of_partition doc node_of in
      if G.node_count syn <> n_nodes then
        fail "node count mismatch: file says %d, partition yields %d" n_nodes
          (G.node_count syn);
      let especs = Array.make n_nodes [] in
      let vbudgets = ref None in
      let finished = ref false in
      List.iter
        (fun line ->
          if !finished then fail "content after end marker"
          else if line = "end" then finished := true
          else if String.length line >= 6 && String.sub line 0 6 = "ehist " then begin
            match String.split_on_char ' ' line with
            | "ehist" :: node :: budget :: dims -> (
                match (int_of_string_opt node, int_of_string_opt budget) with
                | Some node, Some budget when node >= 0 && node < n_nodes ->
                    let dims = List.map parse_dim dims in
                    especs.(node) <- especs.(node) @ [ { Sketch.dims; budget } ]
                | _ -> fail "bad ehist line %S" line)
            | _ -> fail "bad ehist line %S" line
          end
          else if String.length line >= 9 && String.sub line 0 9 = "vbudgets " then begin
            let bs =
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some b -> b
                  | None -> fail "bad vbudget %S" s)
                (String.split_on_char ' '
                   (String.sub line 9 (String.length line - 9)))
            in
            if List.length bs <> n_nodes then
              fail "vbudgets arity %d, expected %d" (List.length bs) n_nodes;
            vbudgets := Some (Array.of_list bs)
          end
          else fail "unrecognized line %S" line)
        rest;
      if not !finished then fail "missing end marker";
      let vbudgets =
        match !vbudgets with Some v -> v | None -> fail "missing vbudgets"
      in
      Sketch.build syn { Sketch.especs; vbudgets }
  | _ -> fail "truncated sketch file"

(* Split off the trailing "checksum <hex>" line, returning the bytes
   it covers and the claimed digest. [None] when the last line is not
   a checksum line (truncated or pre-checksum file). *)
let split_checksum text =
  let len = String.length text in
  (* the writer always terminates the checksum line; a file that does
     not end in '\n' lost its tail to a torn write *)
  if len = 0 || text.[len - 1] <> '\n' then None
  else
    let body_end = len - 1 in
    let line_start =
      match String.rindex_from_opt text (body_end - 1) '\n' with
      | Some i -> i + 1
      | None -> 0
    in
    let line = String.sub text line_start (body_end - line_start) in
    if String.length line >= 9 && String.sub line 0 9 = "checksum " then
      Some
        ( String.sub text 0 line_start,
          String.sub line 9 (String.length line - 9) )
    else None

(* Bytes-level verification of a v2 file: the checksum line is
   mandatory, and covers everything before it. Returns the covered
   body on success; raises [Corrupt_error] on a torn or tampered
   file. Runs before any content parsing so damage is classified as
   damage, never mistaken for a format quirk. *)
let verify_v2_checksum text =
  match split_checksum text with
  | None -> fail_corrupt "missing checksum line (torn write?)"
  | Some (body, claimed) ->
      let actual = Digest.to_hex (Digest.string body) in
      if not (String.equal actual claimed) then
        fail_corrupt "checksum mismatch: file says %s, content hashes to %s"
          claimed actual;
      body

let of_string_res doc text =
  match
    let first_line =
      match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    if text = "" then fail_corrupt "empty sketch file"
    else if first_line = magic_v2 then begin
      let body = verify_v2_checksum text in
      let lines = String.split_on_char '\n' body in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      match lines with
      | _magic :: meta_line :: rest ->
          let meta, digest = parse_meta meta_line in
          ignore meta.version;
          if digest <> tag_digest doc then
            fail
              "document mismatch: tag-table digest %s does not match the \
               document's %s"
              digest (tag_digest doc);
          (meta, parse_body doc rest)
      | _ -> fail "truncated sketch file (missing meta line)"
    end
    else if first_line = magic_v1 then begin
      (* the pre-versioning format: no meta line, no checksum — the
         body's full tag list still guards document identity *)
      let lines = String.split_on_char '\n' text in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      match lines with
      | _magic :: rest ->
          ({ version = 1; budget = None; seed = None }, parse_body doc rest)
      | [] -> fail "empty sketch file"
    end
    else if
      (* a proper prefix of a magic line with nothing after it is a
         write torn inside the header, not a foreign format *)
      String.index_opt text '\n' = None
      && (String.length first_line < String.length magic_v2
          && String.sub magic_v2 0 (String.length first_line) = first_line
         || String.length first_line < String.length magic_v1
            && String.sub magic_v1 0 (String.length first_line) = first_line)
    then fail_corrupt "truncated sketch file (torn write inside the header)"
    else
      fail "unknown sketch format %S (supported: %S, %S)" first_line magic_v2
        magic_v1
  with
  | res -> Ok res
  | exception Format_error msg -> Error (Xerror.Sketch_format msg)
  | exception Corrupt_error msg -> Error (Xerror.Corrupt msg)

(* Move a damaged file aside so the next write starts clean and the
   evidence survives for inspection. Repeated corruptions of the same
   path must each keep their evidence, so the destination takes the
   first free counter suffix instead of overwriting [.quarantined].
   Best-effort: quarantining must never turn a readable error into a
   crash. *)
let quarantine path =
  let base = path ^ ".quarantined" in
  let rec free n =
    let dst = if n = 0 then base else Printf.sprintf "%s.%d" base n in
    if Sys.file_exists dst && n < 1000 then free (n + 1) else dst
  in
  try
    let dst = free 0 in
    Sys.rename path dst;
    Some dst
  with Sys_error _ -> None

let read_res doc path =
  match
    Fault.point "sketch_io.read";
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error msg -> Error (Xerror.Io msg)
  | exception Fault.Injected { point; _ } ->
      Error (Xerror.Io (Printf.sprintf "injected fault at %s" point))
  | text -> (
      match of_string_res doc text with
      | Error (Xerror.Corrupt _) as err ->
          ignore (quarantine path);
          err
      | res -> res)

