open Embed

type sets = {
  expansion : (int * int) list;
  uncovered : (int * int) list;
  correlation : (int * int) list;
}

let parse sketch root =
  Xtwig_obs.Trace.with_span ~name:"treeparse.parse" @@ fun () ->
  let covered = ref [] in
  let out = ref [] in
  let rec go (e : enode) =
    if e.kids <> [] then begin
      let n = e.snode in
      let scope =
        List.concat_map
          (fun ((dims : Sketch.dim array), _) ->
            Array.to_list
              (Array.map (fun (d : Sketch.dim) -> (d.src, d.dst)) dims))
          (Sketch.hists sketch n)
        |> List.sort_uniq compare
      in
      (* the sets are taken over the first alternative of each child —
         the maximal-twig view the paper's pseudo-code works on *)
      let kid_edges =
        List.filter_map
          (fun alts ->
            match alts with [] -> None | k :: _ -> Some (n, k.snode))
          e.kids
      in
      let uncovered =
        List.sort_uniq compare
          (List.filter (fun ed -> not (List.mem ed scope)) kid_edges)
      in
      let correlation = List.filter (fun ed -> List.mem ed !covered) scope in
      let expansion = List.filter (fun ed -> not (List.mem ed !covered)) scope in
      covered := !covered @ expansion;
      out := (e, { expansion; uncovered; correlation }) :: !out
    end;
    List.iter (fun alts -> match alts with k :: _ -> go k | [] -> ()) e.kids
  in
  go root;
  List.rev !out

let pp syn ppf parsed =
  let edge (u, v) =
    Printf.sprintf "%s->%s"
      (Xtwig_synopsis.Graph_synopsis.tag_name syn u)
      (Xtwig_synopsis.Graph_synopsis.tag_name syn v)
  in
  let set s = String.concat ", " (List.map edge s) in
  List.iter
    (fun ((e : enode), sets) ->
      Format.fprintf ppf "node %s: E={%s} U={%s} D={%s}@."
        (Xtwig_synopsis.Graph_synopsis.tag_name syn e.snode)
        (set sets.expansion) (set sets.uncovered) (set sets.correlation))
    parsed
