(** A fixed-size pool of worker domains.

    OCaml 5 domains are heavyweight (each owns a minor heap and takes
    part in every GC barrier), so spawning them per scoring step — as
    the first parallel XBUILD did — wastes more time in domain startup
    than candidate scoring saves. A [Pool.t] spawns its workers once
    and feeds them closures through a mutex/condition job queue;
    XBUILD, the estimation engine and the benchmark harness all share
    this one primitive.

    {2 Ownership and determinism rules}

    - Jobs must not mutate state shared with other jobs; they may read
      anything frozen before {!submit} (sketches, documents, a frozen
      {!Xtwig_sketch.Embed.cache}).
    - Scheduling is nondeterministic; {e results} are made
      deterministic by indexed reduction: {!map_array} returns results
      in input order no matter which worker ran what, and
      {!map_reduce} merges them left-to-right on the calling domain.
      Any tie-breaking must therefore use the input index, never
      arrival order.
    - A job that raises does not kill its worker: the exception (with
      its backtrace) is stored in the job's future and re-raised by
      {!await} on the calling domain — panics propagate, workers
      survive.
    - Jobs must not {!await} futures of the same pool (the pool does
      no work-stealing; a full pool would deadlock). *)

type t

val create : ?seed:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] workers ([Invalid_argument]
    when [domains < 1]). [seed] (default 0) salts the per-worker PRNG
    streams — see {!prng}.

    A 1-domain pool spawns no worker at all: jobs run inline on the
    submitting domain (under the persistent worker-0 identity, PRNG
    stream and fault scoping included), skipping the future hand-off
    and condvar churn — observationally identical to a single spawned
    worker, which also drains jobs in submission order. *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Graceful shutdown: workers drain every already-submitted job, then
    exit and are joined. Idempotent. Submitting after [shutdown]
    raises [Invalid_argument]. *)

val with_pool : ?seed:int -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

(** {1 Futures} *)

type 'a future

val submit : ?scope:int -> t -> (unit -> 'a) -> 'a future
(** Enqueue one job. The job runs through the [pool.task] fault point
    ({!Xtwig_fault.Fault.point}) before the user closure. [scope], when
    given, wraps the whole job (fault point included) in
    {!Xtwig_fault.Fault.with_scope} with the work-unit's input index,
    making injected fault sequences independent of which worker runs
    the job. On a 1-domain pool the job runs to completion inside
    [submit] itself and the returned future is already resolved. *)

val await : 'a future -> 'a
(** Block until the job finished; re-raises the job's exception with
    the worker's backtrace if it failed (workers record backtraces, so
    the originating frame survives the domain hop). *)

val await_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** As {!await} but returning the failure as a value — for callers
    that degrade instead of unwinding (the engine's per-query retry). *)

val poll : 'a future -> 'a option
(** Non-blocking {!await}: [None] while the job is still queued or
    running; re-raises like {!await} if it failed. *)

(** {1 Deterministic indexed fan-out} *)

val map_array : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array pool ~f xs] computes [f i xs.(i)] on the workers and
    returns the results {e in input order}. The first failing job's
    exception is re-raised (after every job was scheduled). *)

val map_reduce :
  t -> map:(int -> 'a -> 'b) -> merge:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** Indexed reduction: [map] runs on the workers, [merge] folds the
    results in index order on the calling domain — the reduction is
    deterministic regardless of scheduling. *)

(** {1 Worker-local state} *)

val worker_index : unit -> int option
(** Inside a pool job: [Some i] with [i] the worker's index in
    [0, size-1]. [None] on any domain not owned by a pool. *)

val prng : unit -> Prng.t
(** The calling worker's private PRNG stream, seeded deterministically
    from the pool's [seed] and the worker index — statistically
    independent streams without any cross-domain synchronisation.
    Draws interleave with the worker's job schedule, so randomized
    jobs are reproducible only per-worker, not per-job.
    [Invalid_argument] outside a pool worker. *)
