(** Errors as values: the one variant type spanning every failure the
    public entry points can report.

    The [_res] functions of {!Xtwig_xml.Xml_parser},
    {!Xtwig_path.Path_parser}, {!Xtwig_sketch.Sketch_io} and the whole
    of [Xtwig_engine.Engine] return [('a, Xerror.t) result] instead of
    raising; the CLI maps each class to a stable exit code so scripts
    can dispatch on failures without parsing messages. *)

type parse_kind = Xml | Path | Twig

type t =
  | Usage of string  (** malformed invocation / bad argument values *)
  | Parse of parse_kind * string
      (** malformed XML document or path/twig query text *)
  | Io of string  (** file-system failures ([Sys_error] payloads) *)
  | Sketch_format of string
      (** malformed, mismatched or unknown-version sketch files *)
  | Corrupt of string
      (** a sketch file whose bytes are damaged — truncated (torn
          write) or checksum-mismatched; {!Xtwig_sketch.Sketch_io}
          quarantines the file before reporting this *)
  | Engine of string  (** estimation-engine failures (bad session
                          parameters, closed sessions) *)
  | Overload of string
      (** admission control shed the request — a serving layer's
          per-tenant queue was full or its circuit breaker open; the
          caller holds a well-formed, typed answer (never a closed
          socket) and may retry after backoff *)

val to_string : t -> string
(** One line, prefixed with the error class
    (["parse error (xml): ..."], ["sketch format error: ..."]). *)

val payload : t -> string
(** The message alone, without the class prefix — what travels in a
    wire response body after the class token. *)

val exit_code : t -> int
(** The CLI contract: 2 = usage, 3 = parse, 4 = io/format, 1 = engine
    (generic runtime failure). *)

val pp : Format.formatter -> t -> unit
