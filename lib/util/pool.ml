module Fault = Xtwig_fault.Fault

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a state;
}

type t = {
  mutex : Mutex.t;
  wakeup : Condition.t;  (* a job was queued, or shutdown began *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  pool_seed : int;
  (* 1-domain pools run jobs inline on the submitting domain under
     this persistent worker-0 identity: no spawned domain, no future
     hand-off, no condvar. [None] for multi-domain pools. *)
  inline : (int * Prng.t) option;
}

(* Worker-local identity: (worker index, PRNG stream). Set once when
   the worker starts; [None] on every domain a pool does not own. *)
let worker_key : (int * Prng.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let worker_index () =
  match Domain.DLS.get worker_key with Some (i, _) -> Some i | None -> None

let prng () =
  match Domain.DLS.get worker_key with
  | Some (_, g) -> g
  | None -> invalid_arg "Pool.prng: not inside a pool worker"

(* SplitMix64 finalizer over (seed, index): decorrelates the worker
   streams even for adjacent seeds. *)
let worker_seed seed index =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.wakeup pool.mutex
  done;
  (* graceful shutdown: drain the queue before exiting *)
  match Queue.take_opt pool.queue with
  | Some job ->
      Mutex.unlock pool.mutex;
      job ();
      worker_loop pool
  | None ->
      Mutex.unlock pool.mutex

let create ?(seed = 0) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    {
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      pool_seed = seed;
      inline =
        (if domains = 1 then Some (0, Prng.create (worker_seed seed 0))
         else None);
    }
  in
  (* inline jobs fail on the submitting domain, so its backtrace
     capture plays the role the spawned workers' does *)
  if domains = 1 then Printexc.record_backtrace true;
  if domains > 1 then
    pool.workers <-
      Array.init domains (fun i ->
          Domain.spawn (fun () ->
              (* backtrace capture is per-domain state, off by default on
                 spawned domains — without this, a panicking job's stored
                 backtrace is empty and the originating frame is lost *)
              Printexc.record_backtrace true;
              Domain.DLS.set worker_key
                (Some (i, Prng.create (worker_seed seed i)));
              worker_loop pool));
  pool

let size pool =
  match pool.inline with Some _ -> 1 | None -> Array.length pool.workers

let shutdown pool =
  Mutex.lock pool.mutex;
  let was_stopping = pool.stopping in
  pool.stopping <- true;
  Condition.broadcast pool.wakeup;
  Mutex.unlock pool.mutex;
  if not was_stopping then Array.iter Domain.join pool.workers

let with_pool ?seed ~domains f =
  let pool = create ?seed ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let fulfill fut st =
  Mutex.lock fut.fmutex;
  fut.fstate <- st;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let submit ?scope pool f =
  let task () =
    Fault.point "pool.task";
    f ()
  in
  (* the fault scope wraps the whole task, pool.task point included,
     so a scenario's verdicts depend on the work-unit index rather
     than on which worker happened to pick the job up *)
  let task =
    match scope with
    | None -> task
    | Some s -> fun () -> Fault.with_scope s task
  in
  match pool.inline with
  | Some id ->
      (* run on the submitting domain under the pool's persistent
         worker-0 identity. Jobs run in submission order, which is
         exactly the order a single spawned worker would drain the
         queue in — the PRNG stream and scoped fault verdicts are the
         ones a 1-domain pool produced before the bypass existed. *)
      if pool.stopping then invalid_arg "Pool.submit: pool is shut down";
      let saved = Domain.DLS.get worker_key in
      Domain.DLS.set worker_key (Some id);
      let st =
        match task () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Domain.DLS.set worker_key saved;
      { fmutex = Mutex.create (); fcond = Condition.create (); fstate = st }
  | None ->
      let fut =
        { fmutex = Mutex.create (); fcond = Condition.create (); fstate = Pending }
      in
      let job () =
        match task () with
        | v -> fulfill fut (Done v)
        | exception e -> fulfill fut (Failed (e, Printexc.get_raw_backtrace ()))
      in
      Mutex.lock pool.mutex;
      if pool.stopping then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.submit: pool is shut down"
      end;
      Queue.add job pool.queue;
      Condition.signal pool.wakeup;
      Mutex.unlock pool.mutex;
      fut

let is_pending fut = match fut.fstate with Pending -> true | _ -> false

let await fut =
  Mutex.lock fut.fmutex;
  while is_pending fut do
    Condition.wait fut.fcond fut.fmutex
  done;
  let st = fut.fstate in
  Mutex.unlock fut.fmutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await_result fut =
  Mutex.lock fut.fmutex;
  while is_pending fut do
    Condition.wait fut.fcond fut.fmutex
  done;
  let st = fut.fstate in
  Mutex.unlock fut.fmutex;
  match st with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let poll fut =
  Mutex.lock fut.fmutex;
  let st = fut.fstate in
  Mutex.unlock fut.fmutex;
  match st with
  | Pending -> None
  | Done v -> Some v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let map_array pool ~f xs =
  let futs = Array.mapi (fun i x -> submit ~scope:i pool (fun () -> f i x)) xs in
  Array.map await futs

let map_reduce pool ~map ~merge ~init xs =
  Array.fold_left merge init (map_array pool ~f:map xs)
