(** Lightweight global performance counters and monotonic timers.

    Counters are registered once (typically at module initialization)
    and incremented from anywhere — including worker domains: cells are
    {!Atomic.t}, so concurrent increments from XBUILD's parallel
    candidate scoring are safe. The benchmark harness resets them
    before a run and reports the totals afterwards, which is how the
    perf trajectory of the build inner loop is tracked across PRs
    (see DESIGN.md "Performance").

    Timers are counters accumulating monotonic nanoseconds. *)

type t
(** A named counter. *)

val counter : string -> t
(** [counter name] returns the counter registered under [name],
    creating it on first use. Names are global; two calls with the
    same name share one cell. *)

val incr : ?by:int -> t -> unit
(** Atomic increment (default [by] = 1). *)

val value : t -> int

val name : t -> string

(** {1 Timers} *)

val timer : string -> t
(** A counter meant to accumulate elapsed monotonic nanoseconds.
    Conventionally named with an [.ns] suffix. *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds from an arbitrary
    origin. *)

val time : t -> (unit -> 'a) -> 'a
(** [time t f] runs [f] and adds its elapsed monotonic nanoseconds to
    [t], also on exception. *)

(** {1 Registry} *)

val reset_all : unit -> unit
(** Zero every registered counter (values only; registration is kept). *)

val all : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val get : string -> int
(** Current value of the named counter; 0 when never registered. *)
