(** Lightweight global performance counters and monotonic timers.

    Counters are registered once (typically at module initialization)
    and incremented from anywhere — including worker domains: cells are
    {!Atomic.t}, so concurrent increments from XBUILD's parallel
    candidate scoring are safe. The benchmark harness snapshots them
    around a run and reports the delta, which is how the perf
    trajectory of the build inner loop is tracked across PRs
    (see DESIGN.md "Performance").

    This module is a compatibility view over the generalized
    {!Xtwig_obs.Metrics} registry: a counter registered here is the
    unlabeled [Metrics] counter of the same name, and {!snapshot} /
    {!reset} iterate the shared registry. New code that needs gauges,
    histograms or labels should use [Metrics] directly.

    Timers are counters accumulating monotonic nanoseconds. *)

type t
(** A named counter. *)

val counter : string -> t
(** [counter name] returns the counter registered under [name],
    creating it on first use. Names are global; two calls with the
    same name share one cell. *)

val incr : ?by:int -> t -> unit
(** Atomic increment (default [by] = 1). *)

val value : t -> int

val name : t -> string

(** {1 Timers} *)

val timer : string -> t
(** A counter meant to accumulate elapsed monotonic nanoseconds.
    Conventionally named with an [.ns] suffix. *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds from an arbitrary
    origin. *)

val time : t -> (unit -> 'a) -> 'a
(** [time t f] runs [f] and adds its elapsed monotonic nanoseconds to
    [t], also on exception. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every registered cell of the shared metrics registry —
    including gauges and histograms (values only; registration is
    kept). *)

val reset_all : unit -> unit
(** Alias of {!reset} (the original name). *)

val snapshot : unit -> (string * int) list
(** Every registered counter cell with its current value, sorted by
    name; labeled [Metrics] counters appear as [name{k=v,...}].
    Prefer {!Xtwig_obs.Metrics.snapshot}/[diff] for before/after
    deltas — it also carries gauges and histograms. *)

val all : unit -> (string * int) list
(** Alias of {!snapshot} (the original name). *)

val get : string -> int
(** Current value of the named counter; 0 when never registered. *)
