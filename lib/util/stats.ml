let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let mean_list xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  sorted.(idx)
  end

let median xs = percentile xs 50.0

let minimum xs = Array.fold_left Stdlib.min infinity xs
let maximum xs = Array.fold_left Stdlib.max neg_infinity xs

let histogram_text ?(width = 40) xs =
  if Array.length xs = 0 then "(empty)"
  else
    let lo = minimum xs and hi = maximum xs in
    let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let buckets = Array.make width 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. span *. float_of_int (width - 1)) in
        buckets.(b) <- buckets.(b) + 1)
      xs;
    let top = Array.fold_left Stdlib.max 1 buckets in
    let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
    let buf = Buffer.create (width + 32) in
    Array.iter
      (fun c ->
        let g = c * (Array.length glyphs - 1) / top in
        Buffer.add_char buf glyphs.(g))
      buckets;
    Printf.sprintf "[%s] min=%.3g max=%.3g" (Buffer.contents buf) lo hi
