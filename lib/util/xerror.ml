type parse_kind = Xml | Path | Twig

type t =
  | Usage of string
  | Parse of parse_kind * string
  | Io of string
  | Sketch_format of string
  | Corrupt of string
  | Engine of string
  | Overload of string

let kind_name = function Xml -> "xml" | Path -> "path" | Twig -> "twig"

let to_string = function
  | Usage msg -> "usage error: " ^ msg
  | Parse (k, msg) -> Printf.sprintf "parse error (%s): %s" (kind_name k) msg
  | Io msg -> "io error: " ^ msg
  | Sketch_format msg -> "sketch format error: " ^ msg
  | Corrupt msg -> "corrupt sketch file: " ^ msg
  | Engine msg -> "engine error: " ^ msg
  | Overload msg -> "overload: " ^ msg

let payload = function
  | Usage m | Io m | Sketch_format m | Corrupt m | Engine m | Overload m -> m
  | Parse (_, m) -> m

let exit_code = function
  | Usage _ -> 2
  | Parse _ -> 3
  | Io _ | Sketch_format _ | Corrupt _ -> 4
  | Engine _ | Overload _ -> 1

let pp ppf e = Format.pp_print_string ppf (to_string e)
