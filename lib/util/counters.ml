(* Thin compatibility adapter over Xtwig_obs.Metrics: the flat counter
   table the perf work of PR 1/2 was built on is now one view of the
   generalized metrics registry, so counters registered here appear in
   Metrics snapshots/expositions and vice versa. *)

module Metrics = Xtwig_obs.Metrics

type t = { cname : string; cell : Metrics.counter }

let counter name = { cname = name; cell = Metrics.counter name }
let incr ?by t = Metrics.incr ?by t.cell
let value t = Metrics.counter_value t.cell
let name t = t.cname

(* ------------------------------------------------------------------ *)

let timer = counter

let now_ns = Monotonic_clock.now

let time t f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () -> incr ~by:(Int64.to_int (Int64.sub (now_ns ()) t0)) t)
    f

(* ------------------------------------------------------------------ *)

let reset_all () = Metrics.reset_all ()
let reset = reset_all

let label_suffix = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      ^ "}"

let snapshot () =
  List.filter_map
    (fun (e : Metrics.entry) ->
      match e.Metrics.value with
      | Metrics.Counter n -> Some (e.Metrics.name ^ label_suffix e.Metrics.labels, n)
      | _ -> None)
    (Metrics.snapshot ())

let all = snapshot

let get name =
  match List.assoc_opt name (snapshot ()) with Some v -> v | None -> 0
