type t = { cname : string; cell : int Atomic.t }

(* The registry is only mutated by [counter], which callers invoke at
   module-initialization time (before domains spawn); increments on
   registered counters are atomic and domain-safe. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_lock;
  c

let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t.cell by)
let value t = Atomic.get t.cell
let name t = t.cname

(* ------------------------------------------------------------------ *)

let timer = counter

let now_ns = Monotonic_clock.now

let time t f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () -> incr ~by:(Int64.to_int (Int64.sub (now_ns ()) t0)) t)
    f

(* ------------------------------------------------------------------ *)

let reset_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_lock

let all () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun n c acc -> (n, value c) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort compare l

let get name =
  Mutex.lock registry_lock;
  let v = match Hashtbl.find_opt registry name with
    | Some c -> value c
    | None -> 0
  in
  Mutex.unlock registry_lock;
  v
