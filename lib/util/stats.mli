(** Small numeric helpers shared by the estimation-error machinery and
    the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val mean_list : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: nearest-rank percentile of
    the (copied, sorted) data. Returns [nan] on empty input — a
    percentile of nothing is not a number, and raising here used to
    abort whole workload-error aggregations over one empty bucket.
    Callers that need a sentinel (e.g. the sanity bound) must check
    for the empty case themselves. *)

val median : float array -> float
(** 50th percentile; [nan] on empty input. *)

val minimum : float array -> float
val maximum : float array -> float

val histogram_text : ?width:int -> float array -> string
(** A one-line sparkline-ish rendering used by the CLI's [inspect]
    command. *)
