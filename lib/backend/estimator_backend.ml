module Xerror = Xtwig_util.Xerror
module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Sketch_io = Xtwig_sketch.Sketch_io
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen

type doc = Doc.t
type twig = Xtwig_path.Path_types.twig

module type S = sig
  type t

  val name : string
  val build : ?budget:int -> ?seed:int -> doc -> (t, Xerror.t) result
  val load : doc -> string -> (t, Xerror.t) result
  val estimate : t -> twig -> float
  val coarse : t -> twig -> float
  val size_bytes : t -> int
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let name_of (Instance ((module M), _)) = M.name
let estimate (Instance ((module M), v)) q = M.estimate v q
let coarse (Instance ((module M), v)) q = M.coarse v q
let size_bytes (Instance ((module M), v)) = M.size_bytes v

(* ------------------------------------------------------------------ *)
(* XSKETCH: the paper's estimator, behind the generic surface. The
   engine's compiled fast path (Engine.of_sketch) bypasses this module
   on purpose; this is the uncompiled reference evaluator, for callers
   that want XSKETCH through the same door every other backend uses. *)

module Xsketch = struct
  type t = { sk : Sketch.t; coarse_sk : Sketch.t Lazy.t }

  let name = "xsketch"

  let wrap sk =
    { sk; coarse_sk = lazy (Sketch.default_of_doc (Sketch.doc sk)) }

  let build ?(budget = 8192) ?(seed = 42) doc =
    if budget <= 0 then Error (Xerror.Usage "budget must be positive")
    else
      let truth_tbl = Hashtbl.create 256 in
      let truth q =
        let k = Xtwig_path.Path_printer.twig_to_string q in
        match Hashtbl.find_opt truth_tbl k with
        | Some v -> v
        | None ->
            let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
            Hashtbl.add truth_tbl k v;
            v
      in
      let workload prng ~focus =
        Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
      in
      match Xbuild.build ~seed ~budget ~workload ~truth doc with
      | sk -> Ok (wrap sk)
      | exception e ->
          Error (Xerror.Engine ("xbuild failed: " ^ Printexc.to_string e))

  let load doc path = Result.map (fun (_, sk) -> wrap sk) (Sketch_io.read_res doc path)
  let estimate t q = Est.estimate t.sk q
  let coarse t q = Est.estimate (Lazy.force t.coarse_sk) q
  let size_bytes t = Sketch.size_bytes t.sk
end

module Cst = struct
  type t = Xtwig_cst.Cst.t

  let name = "cst"

  let build ?(budget = 8192) ?seed doc =
    ignore seed;
    if budget <= 0 then Error (Xerror.Usage "budget must be positive")
    else
      match Xtwig_cst.Cst.build ~budget_bytes:budget doc with
      | t -> Ok t
      | exception e ->
          Error (Xerror.Engine ("cst build failed: " ^ Printexc.to_string e))

  let load _doc _path =
    Error (Xerror.Sketch_format "the cst backend has no persistent format")

  let estimate t q = Xtwig_cst.Cst.estimate t q

  (* the trie estimate is already O(query); it is its own floor *)
  let coarse t q = try Xtwig_cst.Cst.estimate t q with _ -> 0.0
  let size_bytes t = Xtwig_cst.Cst.size_bytes t
end

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref []

let register (module M : S) =
  let key = String.lowercase_ascii M.name in
  if not (Hashtbl.mem registry key) then order := !order @ [ key ];
  Hashtbl.replace registry key (module M : S)

let () =
  register (module Xsketch);
  register (module Cst)

let backends () = List.filter_map (Hashtbl.find_opt registry) !order
let names () = !order

let find name =
  match Hashtbl.find_opt registry (String.lowercase_ascii name) with
  | Some m -> Ok m
  | None ->
      Error
        (Xerror.Usage
           (Printf.sprintf "unknown backend %S (known: %s)" name
              (String.concat ", " (names ()))))

let build (module M : S) ?budget ?seed doc =
  Result.map (fun v -> Instance ((module M), v)) (M.build ?budget ?seed doc)

let load (module M : S) doc path =
  Result.map (fun v -> Instance ((module M), v)) (M.load doc path)

let of_sketch sk = Instance ((module Xsketch), Xsketch.wrap sk)
