(** The common signature every selectivity estimator serves behind.

    The paper builds one estimator (the Twig XSKETCH) and compares it
    against one baseline (the CST); a serving system wants both — and
    future ones (Bayesian networks, sampling — see PAPERS.md) — behind
    a single audited surface, so the engine, the wire protocol and the
    CLI never grow a per-estimator code path. {!S} is that surface:
    Result-typed construction, a total [estimate], and a cheap
    [coarse] floor the engine degrades to when the full estimate is
    unavailable (timeout, fault, breaker).

    Implementations register themselves in a process-global registry
    keyed by {!S.name}; {!find} is how [--backend NAME] and the
    service catalog resolve one. XSKETCH and CST are registered at
    module initialization. *)

type doc = Xtwig_xml.Doc.t
type twig = Xtwig_path.Path_types.twig

module type S = sig
  type t

  val name : string
  (** Registry key, lowercase (["xsketch"], ["cst"]). *)

  val build :
    ?budget:int -> ?seed:int -> doc -> (t, Xtwig_util.Xerror.t) result
  (** Construct a summary of [doc] within [budget] bytes (default
      8192). Never raises. *)

  val load : doc -> string -> (t, Xtwig_util.Xerror.t) result
  (** Rebuild a persisted summary against [doc]. Backends without a
      persistent format return [Xerror.Sketch_format]. *)

  val estimate : t -> twig -> float
  (** The backend's full-fidelity selectivity estimate. Total for
      well-formed twigs (exceptions are treated as faults by the
      engine and retried/degraded, never propagated). *)

  val coarse : t -> twig -> float
  (** A cheap degradation floor: the same-shaped answer at the
      accuracy floor. Must be O(query) — the engine calls it on the
      failure path where no further budget exists. *)

  val size_bytes : t -> int
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance
(** A backend packaged with a built value — what the engine and the
    service catalog actually hold. *)

val name_of : instance -> string
val estimate : instance -> twig -> float
val coarse : instance -> twig -> float
val size_bytes : instance -> int

(** {1 Built-in backends} *)

module Xsketch : S
(** The paper's estimator: XBUILD construction, TREEPARSE estimation,
    [Sketch_io] persistence. [coarse] is the label-split estimate
    (built lazily, once). *)

module Cst : S
(** The correlated-suffix-tree baseline. No persistent format;
    [coarse] reuses [estimate] (already cheap). *)

(** {1 Registry} *)

val register : (module S) -> unit
(** Replaces any previous backend with the same [name]. *)

val backends : unit -> (module S) list
val names : unit -> string list

val find : string -> ((module S), Xtwig_util.Xerror.t) result
(** Case-insensitive; [Xerror.Usage] names the known backends on a
    miss. *)

(** {1 Instance helpers} *)

val build :
  (module S) ->
  ?budget:int ->
  ?seed:int ->
  doc ->
  (instance, Xtwig_util.Xerror.t) result

val load :
  (module S) -> doc -> string -> (instance, Xtwig_util.Xerror.t) result

val of_sketch : Xtwig_sketch.Sketch.t -> instance
(** Wrap an already-built XSKETCH (e.g. one loaded through
    [Sketch_io]) as an {!Xsketch} instance. *)
