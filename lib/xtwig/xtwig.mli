(** The public facade of the repository: every entry point an
    application — the [xtwig] CLI, the [xtwigd] service, a test
    harness — needs, and nothing that can raise.

    The internal libraries grew one layer per paper section (parsing,
    synopses, XBUILD, the hardened engine); each kept its own partial
    functions for its own tests. This module is the single audited
    surface over them: every function here either is total or returns
    [(_, Xerror.t) result], so a caller that types against [Xtwig]
    cannot be surprised by an exception. The raising variants are gone
    from the public signatures ({!Xtwig_sketch.Sketch_io},
    {!Xtwig_xml.Xml_parser}, {!Xtwig_path.Path_parser} export only
    [_res] entry points); this facade is the supported way in.

    Two kinds of estimator sessions exist, mirroring the engine:

    - {!open_sketch_session} over a concrete XSKETCH ({!sketch}) —
      the compiled fast path with plan caching, the one the paper
      benchmarks and [xtwigd] serves by default;
    - {!open_backend_session} over any registered
      {!Backend.instance} — the generic path ([--backend cst], future
      estimators), same hardening fabric, opaque evaluation.

    Both return an {!Engine.t}; batches, stats, breaker state and
    close are uniform from there. *)

module Xerror = Xtwig_util.Xerror
module Backend = Xtwig_backend.Estimator_backend
module Engine = Xtwig_engine.Engine

type doc = Xtwig_xml.Doc.t
type twig = Xtwig_path.Path_types.twig
type path = Xtwig_path.Path_types.path
type sketch = Xtwig_sketch.Sketch.t

(** {1 Documents} *)

val doc_of_string : string -> (doc, Xerror.t) result
(** Parse an XML document. Errors are [Xerror.Parse (Xml, _)]. *)

val doc_of_file : string -> (doc, Xerror.t) result
(** As {!doc_of_string}; file-system failures are [Xerror.Io]. *)

val doc_to_file : string -> doc -> (unit, Xerror.t) result
val doc_size : doc -> int

val sketch_doc : sketch -> doc
(** The document a sketch summarizes — after {!update_session} this is
    how a caller observes the updated document. Total. *)

(** {1 Queries} *)

val twig_of_string : string -> (twig, Xerror.t) result
(** Errors are [Xerror.Parse (Twig, _)]. *)

val path_of_string : string -> (path, Xerror.t) result
(** Errors are [Xerror.Parse (Path, _)]. *)

val twig_to_string : twig -> string
(** Canonical concrete syntax; [twig_of_string] round-trips it. *)

val selectivity : doc -> twig -> int
(** The exact answer, by full evaluation — the ground truth every
    estimate is judged against. Total. *)

(** {1 Cost-based optimization}

    The first consumer of the estimates: a Selinger-style subset DP
    ({!Xtwig_opt.Opt}) orders each twig node's branches by modeled
    cost, so cheap/selective branches run first and the evaluator's
    early zero-exit skips the expensive ones. Plans are advisory —
    ordered evaluation returns counts bit-equal to {!selectivity} for
    any plan, and planning itself degrades to the default order on any
    failure, so neither function can produce a wrong answer. *)

module Opt = Xtwig_opt.Opt

val optimize : sketch -> twig -> Opt.plan
(** Plan a twig's branch evaluation order, costed by the sketch's
    estimates through the {!Backend} registry, with constraint
    propagation over the sketch's 1-d value histograms refining
    value-predicate selectivities before costing. Total: failures
    (including an injected [opt.plan] fault) yield the identity plan
    with [fallback = true]. *)

val optimize_backend : Backend.instance -> twig -> Opt.plan
(** As {!optimize} over any registered backend. No histogram access,
    so propagation falls back to default predicate selectivities. *)

val selectivity_ordered : doc -> Opt.plan -> twig -> int
(** Exact evaluation under the plan's branch orders
    ({!Xtwig_eval.Eval_twig.selectivity_ordered}). Bit-equal to
    {!selectivity} always. Total. *)

(** {1 XSKETCH synopses} *)

val build_sketch :
  ?budget:int ->
  ?seed:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?jobs:int ->
  ?on_step:(step:int -> description:string -> size:int -> unit) ->
  doc ->
  (sketch, Xerror.t) result
(** Run XBUILD (defaults: budget 8192, seed 42, the library's
    candidate/step defaults, [jobs] = 1 — candidate scoring fans out
    to a domain pool when [jobs] > 1). [on_step] observes every
    applied refinement (the CLI prints progress with it). Errors are
    [Xerror.Usage] (non-positive budget/jobs) or [Xerror.Engine] (a
    fault-injection point fired during the build). *)

(** {1 Incremental updates} *)

type delta = Xtwig_sketch.Sketch.delta =
  | Insert of { parent : int; fragment : doc }
      (** graft [fragment] as a new last child of node [parent] *)
  | Delete of int  (** remove the subtree rooted at a non-root node *)

val update_sketch : ?reuse:bool -> sketch -> delta -> (sketch, Xerror.t) result
(** Incrementally maintain a sketch under a subtree insert/delete
    ({!Xtwig_sketch.Sketch.apply_delta}): the document is spliced and
    only the summaries in the edit's neighbourhood recompute — the
    result is bucket-for-bucket identical to rebuilding over the
    updated document with the carried-over configuration.
    [~reuse:false] forces that from-scratch path (the differential
    check of [bench ingest]). Errors: [Xerror.Usage] on an
    out-of-range node or deleting the root, [Xerror.Engine] on an
    injected [sketch.delta] fault. *)

val update_session : Engine.t -> delta -> (unit, Xerror.t) result
(** {!update_sketch} inside a live session: swaps the maintained
    sketch in, rebuilds the coarse fallback, starts a fresh embedding
    cache and chains the plan cache so the next batch repatches
    instead of compiling cold. Owner-domain only, between batches —
    see {!Engine.update}. *)

val save_sketch :
  ?budget:int -> ?seed:int -> sketch -> string -> (unit, Xerror.t) result
(** Crash-safe persistence: temp file + fsync + atomic rename, so the
    destination never holds a partial file — the hot-reload path of
    [xtwigd] depends on this. Errors are [Xerror.Io]. *)

val load_sketch : doc -> string -> (sketch, Xerror.t) result
(** Rebuild a saved sketch against [doc]. Errors: [Xerror.Io],
    [Xerror.Corrupt] (the damaged file is quarantined first),
    [Xerror.Sketch_format]. *)

(** {1 Estimator backends} *)

val backends : unit -> string list
(** Registered backend names (["xsketch"], ["cst"], ...). *)

val build_backend :
  backend:string ->
  ?budget:int ->
  ?seed:int ->
  doc ->
  (Backend.instance, Xerror.t) result
(** Resolve [backend] in the registry (case-insensitive;
    [Xerror.Usage] names the known backends on a miss) and build its
    summary of [doc]. *)

val load_backend :
  backend:string -> doc -> string -> (Backend.instance, Xerror.t) result
(** Backends without a persistent format return
    [Xerror.Sketch_format]. *)

(** {1 Estimation sessions} *)

val open_sketch_session :
  ?name:string ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  sketch ->
  (Engine.t, Xerror.t) result
(** The compiled XSKETCH path (plan cache, embedding cache, pool
    fan-out). [name] labels the session's metrics with a [tenant]
    label — see {!Engine.of_sketch}. *)

val open_backend_session :
  ?name:string ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  Backend.instance ->
  (Engine.t, Xerror.t) result
(** Any registered backend behind the same hardening fabric — see
    {!Engine.of_backend}. *)

val estimate :
  ?timeout_s:float -> Engine.t -> twig -> (Engine.answer, Xerror.t) result

val estimate_batch :
  ?timeout_s:float ->
  ?trace_id:int ->
  Engine.t ->
  twig list ->
  (Engine.answer list, Xerror.t) result
(** Never raises; answers in query order. [trace_id] propagates a
    client-supplied trace context into the batch's spans. See
    {!Engine.estimate_batch}. *)

val explain :
  ?timeout_s:float ->
  ?trace_id:int ->
  Engine.t ->
  twig ->
  (Engine.provenance, Xerror.t) result
(** One query's estimate with its provenance — backend, plan tier,
    embedding count, retries, fallback reason. See {!Engine.explain}. *)

val close_session : Engine.t -> unit

(** {1 Observability} *)

val metrics_render : unit -> string
(** Prometheus text-format snapshot of every metric in the process —
    what [xtwigd]'s [metrics] verb and the CLI's [--metrics] flag
    serve. *)

val version : string
(** The facade/protocol version ("1"): bumped when the wire protocol
    or this signature changes incompatibly. *)
