module Xerror = Xtwig_util.Xerror
module Backend = Xtwig_backend.Estimator_backend
module Engine = Xtwig_engine.Engine
module Pool = Xtwig_util.Pool
module Wgen = Xtwig_workload.Wgen

type doc = Xtwig_xml.Doc.t
type twig = Xtwig_path.Path_types.twig
type path = Xtwig_path.Path_types.path
type sketch = Xtwig_sketch.Sketch.t

(* ---------------- documents ---------------- *)

let doc_of_string = Xtwig_xml.Xml_parser.parse_string_res
let doc_of_file = Xtwig_xml.Xml_parser.parse_file_res

let doc_to_file path doc =
  match Xtwig_xml.Xml_writer.to_file path doc with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Xerror.Io msg)

let doc_size = Xtwig_xml.Doc.size
let sketch_doc = Xtwig_sketch.Sketch.doc

(* ---------------- queries ---------------- *)

let twig_of_string = Xtwig_path.Path_parser.parse_twig_res
let path_of_string = Xtwig_path.Path_parser.parse_path_res
let twig_to_string = Xtwig_path.Path_printer.twig_to_string
let selectivity = Xtwig_eval.Eval_twig.selectivity

(* ---------------- optimizer ---------------- *)

module Opt = Xtwig_opt.Opt
module Synopsis = Xtwig_synopsis.Graph_synopsis

(* Resolve a step label to the value histogram of the biggest synopsis
   node carrying one — the propagation pass's column statistics. *)
let sketch_vhist sk label =
  let syn = Xtwig_sketch.Sketch.synopsis sk in
  List.fold_left
    (fun acc node ->
      match Xtwig_sketch.Sketch.vhist sk node with
      | None -> acc
      | Some h -> (
          let sz = Synopsis.extent_size syn node in
          match acc with
          | Some (best, _) when best >= sz -> acc
          | _ -> Some (sz, h)))
    None
    (Synopsis.nodes_with_label syn label)
  |> Option.map snd

let optimize sk q =
  let inst = Backend.of_sketch sk in
  Opt.plan ~estimate:(Backend.estimate inst) ~vhist:(sketch_vhist sk) q

let optimize_backend inst q = Opt.plan ~estimate:(Backend.estimate inst) q

let selectivity_ordered doc plan q =
  Xtwig_eval.Eval_twig.selectivity_ordered doc ~orders:plan.Opt.orders q

(* ---------------- XSKETCH synopses ---------------- *)

(* XBUILD needs ground truth for its workload queries; memoize it so
   repeated refinement scoring pays one evaluation per query. *)
let memo_truth doc =
  let tbl = Hashtbl.create 256 in
  fun q ->
    let k = twig_to_string q in
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
        let v = float_of_int (selectivity doc q) in
        Hashtbl.add tbl k v;
        v

let build_sketch ?(budget = 8192) ?(seed = 42) ?candidates ?max_steps
    ?(jobs = 1) ?on_step doc =
  if budget < 1 then Error (Xerror.Usage "budget must be >= 1")
  else if jobs < 1 then Error (Xerror.Usage "jobs must be >= 1")
  else
    let truth = memo_truth doc in
    let workload prng ~focus =
      Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
    in
    let on_step =
      Option.map
        (fun f _ (info : Xtwig_sketch.Xbuild.step_info) ->
          f ~step:info.step ~description:info.description ~size:info.size)
        on_step
    in
    let build pool =
      Xtwig_sketch.Xbuild.build ?pool ?candidates ?max_steps ?on_step ~seed
        ~budget ~workload ~truth doc
    in
    match
      if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> build (Some p))
      else build None
    with
    | sk -> Ok sk
    | exception exn -> Error (Xerror.Engine (Printexc.to_string exn))

type delta = Xtwig_sketch.Sketch.delta =
  | Insert of { parent : int; fragment : doc }
  | Delete of int

let update_sketch ?reuse sk delta =
  match Xtwig_sketch.Sketch.apply_delta ?reuse sk delta with
  | sk' -> Ok sk'
  | exception Invalid_argument msg -> Error (Xerror.Usage msg)
  | exception exn -> Error (Xerror.Engine (Printexc.to_string exn))

let save_sketch = Xtwig_sketch.Sketch_io.write_res

let load_sketch doc path =
  Result.map snd (Xtwig_sketch.Sketch_io.read_res doc path)

(* ---------------- backends ---------------- *)

let backends = Backend.names

let build_backend ~backend ?budget ?seed doc =
  Result.bind (Backend.find backend) (fun b -> Backend.build b ?budget ?seed doc)

let load_backend ~backend doc path =
  Result.bind (Backend.find backend) (fun b -> Backend.load b doc path)

(* ---------------- sessions ---------------- *)

let open_sketch_session ?name ?jobs ?timeout_s ?retries ?backoff_s
    ?breaker_threshold ?breaker_cooldown_s sk =
  Engine.of_sketch ?name ?jobs ?timeout_s ?retries ?backoff_s
    ?breaker_threshold ?breaker_cooldown_s sk

let open_backend_session ?name ?jobs ?timeout_s ?retries ?backoff_s
    ?breaker_threshold ?breaker_cooldown_s inst =
  Engine.of_backend ?name ?jobs ?timeout_s ?retries ?backoff_s
    ?breaker_threshold ?breaker_cooldown_s inst

let update_session = Engine.update
let estimate = Engine.estimate
let estimate_batch = Engine.estimate_batch
let explain = Engine.explain
let close_session = Engine.close

(* ---------------- observability ---------------- *)

let metrics_render () = Xtwig_obs.Metrics.(render (snapshot ()))
let version = "1"
