(** Parser for the concrete syntax of paths and twig queries.

    Path syntax (grammar, informally):
    {v
      path      ::= ("/" | "//")? segment (("/" | "//") segment)*
      segment   ::= label pred*
      pred      ::= "[" value-pred "]" | "[" rel-path "]"
      value-pred::= "." cmp literal | "." "in" number ".." number
      cmp       ::= "<" | "<=" | "=" | "!=" | ">=" | ">"
      literal   ::= number | quoted-string
    v}
    A leading ["//"] (or an interior one) makes the following step use
    the descendant axis.

    Twig syntax is a for-clause:
    {v
      for t0 in //movie[genre], t1 in t0/actor, t2 in t0/producer
    v}
    The [for] keyword is optional; bindings are separated by [','] or
    [';']; each non-first binding must start with a previously bound
    variable. A trailing [return ...] clause is ignored. *)

val parse_path_res : string -> (Path_types.path, Xtwig_util.Xerror.t) result
(** Errors are [Xerror.Parse (Path, _)]. This is the supported entry
    point. *)

val parse_twig_res : string -> (Path_types.twig, Xtwig_util.Xerror.t) result
(** Errors are [Xerror.Parse (Twig, _)], including re-bound or unbound
    variables. This is the supported entry point. *)
