open Path_types

exception Parse_error of string

type st = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d in %S: %s" st.pos st.src msg))

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_label_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '@' -> true
  | _ -> false

let read_label st =
  let start = st.pos in
  while (not (eof st)) && is_label_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a label";
  String.sub st.src start (st.pos - start)

let read_number st =
  let start = st.pos in
  if peek st = '-' then advance st;
  while
    (not (eof st))
    && (match peek st with '0' .. '9' | '.' | 'e' | 'E' | '+' -> true | _ -> false)
    && not (looking_at st "..")
  do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let read_quoted st =
  eat st "\"";
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          if eof st then fail st "dangling escape";
          Buffer.add_char buf (peek st);
          advance st;
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  Buffer.contents buf

let read_literal st : Xtwig_xml.Value.t =
  if peek st = '"' then Text (read_quoted st)
  else
    let f = read_number st in
    if Float.is_integer f && Float.abs f < 1e15 then Int (int_of_float f)
    else Float f

let read_comparison st =
  if looking_at st "<=" then begin eat st "<="; Le end
  else if looking_at st ">=" then begin eat st ">="; Ge end
  else if looking_at st "!=" then begin eat st "!="; Ne end
  else if looking_at st "<" then begin eat st "<"; Lt end
  else if looking_at st ">" then begin eat st ">"; Gt end
  else if looking_at st "=" then begin eat st "="; Eq end
  else fail st "expected a comparison operator"

(* Inside "[...]": a value predicate starts with '.', otherwise it is a
   relative branch path. *)
let rec read_pred st =
  skip_ws st;
  if peek st = '.' && not (looking_at st "..") then begin
    advance st;
    skip_ws st;
    if looking_at st "in" then begin
      eat st "in";
      skip_ws st;
      let lo = read_number st in
      skip_ws st;
      eat st "..";
      skip_ws st;
      let hi = read_number st in
      if lo > hi then fail st "empty range";
      `Value (Range (lo, hi))
    end
    else
      let op = read_comparison st in
      skip_ws st;
      let v = read_literal st in
      `Value (Cmp (op, v))
  end
  else `Branch (read_path_body st ~leading_axis_required:false)

and read_step st axis =
  let label = read_label st in
  let vpred = ref None in
  let branches = ref [] in
  let rec preds () =
    skip_ws st;
    if peek st = '[' then begin
      advance st;
      (match read_pred st with
      | `Value p ->
          if !vpred <> None then fail st "duplicate value predicate";
          vpred := Some p
      | `Branch b -> branches := b :: !branches);
      skip_ws st;
      eat st "]";
      preds ()
    end
  in
  preds ();
  { axis; label; vpred = !vpred; branches = List.rev !branches }

and read_path_body st ~leading_axis_required =
  skip_ws st;
  let first_axis =
    if looking_at st "//" then begin eat st "//"; Descendant end
    else if looking_at st "/" then begin eat st "/"; Child end
    else if leading_axis_required then fail st "expected '/' or '//'"
    else Child
  in
  let first = read_step st first_axis in
  let rec more acc =
    if looking_at st "//" then begin
      eat st "//";
      more (read_step st Descendant :: acc)
    end
    else if looking_at st "/" then begin
      eat st "/";
      more (read_step st Child :: acc)
    end
    else List.rev acc
  in
  more [ first ]

let path_of_string s =
  let st = { src = s; pos = 0 } in
  let p = read_path_body st ~leading_axis_required:false in
  skip_ws st;
  if not (eof st) then fail st "trailing input after the path";
  p

(* ------------------------------------------------------------------ *)
(* Twig for-clause parsing                                             *)

type binding = { var : string; parent : string option; bpath : path }

let read_var st =
  let start = st.pos in
  while (not (eof st)) && is_label_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a variable name";
  String.sub st.src start (st.pos - start)

let read_binding st ~bound =
  skip_ws st;
  let var = read_var st in
  if List.mem_assoc var bound then fail st (Printf.sprintf "variable %s re-bound" var);
  skip_ws st;
  eat st "in";
  skip_ws st;
  if peek st = '/' then
    (* absolute path: only legal for the first binding *)
    { var; parent = None; bpath = read_path_body st ~leading_axis_required:true }
  else begin
    let head = read_var st in
    if not (List.mem_assoc head bound) then
      fail st (Printf.sprintf "unbound variable %s" head);
    let bpath = read_path_body st ~leading_axis_required:true in
    { var; parent = Some head; bpath }
  end

let twig_of_string s =
  let st = { src = s; pos = 0 } in
  skip_ws st;
  if looking_at st "for " then eat st "for";
  let rec bindings acc bound =
    let b = read_binding st ~bound in
    let bound = (b.var, ()) :: bound in
    skip_ws st;
    if peek st = ',' || peek st = ';' then begin
      advance st;
      bindings (b :: acc) bound
    end
    else List.rev (b :: acc)
  in
  let bs = bindings [] [] in
  skip_ws st;
  if looking_at st "return" then st.pos <- String.length st.src;
  skip_ws st;
  if not (eof st) then fail st "trailing input after the bindings";
  match bs with
  | [] -> fail st "no bindings"
  | { parent = Some _; _ } :: _ -> fail st "the first binding must be absolute"
  | root :: rest ->
      if List.exists (fun b -> b.parent = None) rest then
        fail st "only the first binding may be absolute";
      (* group children by parent, preserving order *)
      let subs_of var =
        List.filter (fun b -> b.parent = Some var) rest
      in
      let rec build b = { path = b.bpath; subs = List.map build (subs_of b.var) } in
      let t = build root in
      let built = twig_size t in
      if built <> List.length bs then
        fail st "some bindings are unreachable from the root";
      t

(* ------------------------------------------------------------------ *)
(* Result-typed entry points: the supported public surface. *)

let parse_path_res s =
  match path_of_string s with
  | p -> Ok p
  | exception Parse_error msg -> Error (Xtwig_util.Xerror.Parse (Path, msg))

let parse_twig_res s =
  match twig_of_string s with
  | t -> Ok t
  | exception Parse_error msg -> Error (Xtwig_util.Xerror.Parse (Twig, msg))
