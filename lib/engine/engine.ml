module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Plan = Xtwig_sketch.Plan
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module Pool = Xtwig_util.Pool
module Xerror = Xtwig_util.Xerror
module Counters = Xtwig_util.Counters
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace

let c_queries = Counters.counter "engine.queries"
let c_timeouts = Counters.counter "engine.timeouts"
let c_batches = Counters.counter "engine.batches"

let c_fallback =
  Metrics.counter ~labels:[ ("reason", "timeout") ] "engine.fallback"

let h_query =
  Metrics.histogram
    ~bounds:(Metrics.exponential ~start:1e-6 ~factor:2.0 ~n:26)
    "engine.query.seconds"

(* batch-scoped trace ids: unique across every session of the process,
   so the spans and answers of concurrent batches can be correlated *)
let next_trace_id = Atomic.make 1

type answer = {
  query : Xtwig_path.Path_types.twig;
  estimate : float;
  fallback : bool;
  elapsed_s : float;
  trace_id : int;
}

type stats = {
  jobs : int;
  sketch_bytes : int;
  queries_served : int;
  batches : int;
  timeouts : int;
  build_s : float;
  estimate_s : float;
}

type t = {
  sk : Sketch.t;
  coarse : Sketch.t;  (* label-split fallback, shares the document *)
  cache : Embed.cache;  (* session-lived, keyed to sk's synopsis *)
  pcache : Plan.cache;  (* compiled plans, same lifecycle as [cache] *)
  pool : Pool.t option;
  n_jobs : int;
  default_timeout : float;
  on_embedding : (Xtwig_path.Path_types.twig -> unit) option;
  build_s : float;
  (* owner-domain bookkeeping: batches are submitted and aggregated by
     the owning domain only, so plain mutable fields suffice *)
  mutable closed : bool;
  mutable queries_served : int;
  mutable batches : int;
  mutable timeouts : int;
  mutable estimate_s : float;
}

let now = Unix.gettimeofday

let make_pool jobs =
  if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None

let of_sketch ?(jobs = 1) ?(timeout_s = 5.0) ?on_embedding sk =
  if jobs < 1 then Error (Xerror.Engine "jobs must be >= 1")
  else
    Ok
      {
        sk;
        coarse = Sketch.default_of_doc (Sketch.doc sk);
        cache = Embed.create_cache (Sketch.synopsis sk);
        pcache = Plan.create_cache (Sketch.synopsis sk);
        pool = make_pool jobs;
        n_jobs = jobs;
        default_timeout = timeout_s;
        on_embedding;
        build_s = 0.0;
        closed = false;
        queries_served = 0;
        batches = 0;
        timeouts = 0;
        estimate_s = 0.0;
      }

let create ?(seed = 42) ?(jobs = 1) ?candidates ?max_steps ?(timeout_s = 5.0)
    ?on_embedding ~budget doc =
  if budget <= 0 then Error (Xerror.Engine "budget must be positive")
  else if jobs < 1 then Error (Xerror.Engine "jobs must be >= 1")
  else begin
    let pool = make_pool jobs in
    let truth_tbl = Hashtbl.create 256 in
    let truth q =
      let k = Xtwig_path.Path_printer.twig_to_string q in
      match Hashtbl.find_opt truth_tbl k with
      | Some v -> v
      | None ->
          let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
          Hashtbl.add truth_tbl k v;
          v
    in
    let workload prng ~focus =
      Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
    in
    let t0 = now () in
    let sk =
      Xbuild.build ?pool ~seed ?candidates ?max_steps ~budget ~workload ~truth
        doc
    in
    let build_s = now () -. t0 in
    Ok
      {
        sk;
        coarse = Sketch.default_of_doc doc;
        cache = Embed.create_cache (Sketch.synopsis sk);
        pcache = Plan.create_cache (Sketch.synopsis sk);
        pool;
        n_jobs = jobs;
        default_timeout = timeout_s;
        on_embedding;
        build_s;
        closed = false;
        queries_served = 0;
        batches = 0;
        timeouts = 0;
        estimate_s = 0.0;
      }
  end

(* Evaluate one query through its pre-compiled plans (one per
   embedding), checking the deadline between embedding contributions
   (runs on a worker when the session has a pool). The sum visits
   plans in enumeration order — identical to Estimator.estimate's
   fold, so jobs > 1 changes scheduling, never values. *)
let eval_one t ~trace_id ~deadline q plans =
  Trace.with_span ~name:"engine.query"
    ~args:[ ("trace_id", string_of_int trace_id) ]
  @@ fun () ->
  let t0 = now () in
  let n = Array.length plans in
  let rec go acc i =
    if i = n then (acc, false)
    else if now () > deadline then ((* degrade *) Est.estimate t.coarse q, true)
    else begin
      (match t.on_embedding with None -> () | Some f -> f q);
      go (acc +. Plan.run plans.(i)) (i + 1)
    end
  in
  let estimate, fallback =
    if now () > deadline then (Est.estimate t.coarse q, true)
    else go 0.0 0
  in
  if fallback then
    Trace.instant ~args:[ ("trace_id", string_of_int trace_id) ] "engine.fallback";
  let elapsed_s = now () -. t0 in
  Metrics.observe h_query elapsed_s;
  { query = q; estimate; fallback; elapsed_s; trace_id }

let estimate_batch ?timeout_s t queries =
  if t.closed then Error (Xerror.Engine "session is closed")
  else begin
    let timeout = Option.value timeout_s ~default:t.default_timeout in
    let trace_id = Atomic.fetch_and_add next_trace_id 1 in
    Trace.with_span ~name:"engine.estimate_batch"
      ~args:
        [
          ("trace_id", string_of_int trace_id);
          ("queries", string_of_int (List.length queries));
        ]
    @@ fun () ->
    let t0 = now () in
    (* enumeration and plan compilation on the owner domain against
       the session caches; frozen before any fan-out (the cache
       ownership rule) *)
    Embed.thaw t.cache;
    Plan.thaw t.pcache;
    let embedded =
      Trace.with_span ~name:"engine.embed_batch" (fun () ->
          List.map
            (fun q ->
              let embs =
                Embed.embeddings_cached t.cache (Sketch.synopsis t.sk) q
              in
              let plans =
                Plan.plans_cached t.pcache ~key:(Embed.cache_key q) t.sk embs
              in
              (q, plans))
            queries)
    in
    Embed.freeze t.cache;
    Plan.freeze t.pcache;
    let earr = Array.of_list embedded in
    let run i (q, plans) =
      ignore i;
      let deadline = now () +. timeout in
      eval_one t ~trace_id ~deadline q plans
    in
    let answers =
      match t.pool with
      | None -> Array.mapi run earr
      | Some p -> Pool.map_array p ~f:run earr
    in
    let answers = Array.to_list answers in
    t.batches <- t.batches + 1;
    t.queries_served <- t.queries_served + List.length answers;
    let timeouts =
      List.fold_left (fun n a -> if a.fallback then n + 1 else n) 0 answers
    in
    t.timeouts <- t.timeouts + timeouts;
    Counters.incr c_batches;
    Counters.incr ~by:(List.length answers) c_queries;
    Counters.incr ~by:timeouts c_timeouts;
    Metrics.incr ~by:timeouts c_fallback;
    t.estimate_s <- t.estimate_s +. (now () -. t0);
    Ok answers
  end

let estimate ?timeout_s t q =
  match estimate_batch ?timeout_s t [ q ] with
  | Ok [ a ] -> Ok a
  | Ok _ -> assert false
  | Error e -> Error e

let sketch t = t.sk

let stats t =
  {
    jobs = t.n_jobs;
    sketch_bytes = Sketch.size_bytes t.sk;
    queries_served = t.queries_served;
    batches = t.batches;
    timeouts = t.timeouts;
    build_s = t.build_s;
    estimate_s = t.estimate_s;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.pool with None -> () | Some p -> Pool.shutdown p
  end

let with_engine ?seed ?jobs ?candidates ?max_steps ?timeout_s ~budget doc f =
  match create ?seed ?jobs ?candidates ?max_steps ?timeout_s ~budget doc with
  | Error e -> Error e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))
