module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Plan = Xtwig_sketch.Plan
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module Pool = Xtwig_util.Pool
module Xerror = Xtwig_util.Xerror
module Counters = Xtwig_util.Counters
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module Fault = Xtwig_fault.Fault
module Backend = Xtwig_backend.Estimator_backend

let c_queries = Counters.counter "engine.queries"
let c_timeouts = Counters.counter "engine.timeouts"
let c_batches = Counters.counter "engine.batches"
let c_retries = Metrics.counter "engine.retries"
let g_circuit = Metrics.gauge "engine.circuit_state"

type fallback_reason = Timeout | Fault | Circuit_open | Guard

let reason_label = function
  | Timeout -> "timeout"
  | Fault -> "fault"
  | Circuit_open -> "circuit_open"
  | Guard -> "guard"

let c_fallback r =
  Metrics.counter ~labels:[ ("reason", reason_label r) ] "engine.fallback"

let h_query =
  Metrics.histogram
    ~bounds:(Metrics.exponential ~start:1e-6 ~factor:2.0 ~n:26)
    "engine.query.seconds"

(* batch-scoped trace ids: unique across every session of the process,
   so the spans and answers of concurrent batches can be correlated *)
let next_trace_id = Atomic.make 1

type answer = {
  query : Xtwig_path.Path_types.twig;
  estimate : float;
  fallback : bool;
  reason : fallback_reason option;
  retries : int;
  elapsed_s : float;
  trace_id : int;
}

type stats = {
  name : string;
  backend : string;
  jobs : int;
  sketch_bytes : int;
  queries_served : int;
  batches : int;
  timeouts : int;
  retries : int;
  degraded : int;
  breaker_trips : int;
  build_s : float;
  estimate_s : float;
}

(* Closed = normal serving; Open_until = tripping, every query
   degrades until the cooldown expires; Half_open = one probe query is
   in flight deciding whether to close again. *)
type breaker = Closed | Open_until of float | Half_open

(* What actually answers a query: either the compiled XSKETCH fast
   path (embedding cache + plan cache + coarse label-split fallback)
   or an opaque estimator behind the Estimator_backend signature. The
   hardening fabric (retry, breaker, timeout, guards) is shared. *)
type core =
  | Sk of {
      sk : Sketch.t;
      coarse : Sketch.t;  (* label-split fallback, shares the document *)
      cache : Embed.cache;  (* session-lived, keyed to sk's synopsis *)
      pcache : Plan.cache;  (* compiled plans, same lifecycle as [cache] *)
    }
  | Bk of Backend.instance

type t = {
  mutable core : core;
      (* swapped wholesale by [update]; owner-domain only, like every
         other mutable field *)
  name : string option;  (* tenant label; labels the session metrics *)
  pool : Pool.t option;
  n_jobs : int;
  default_timeout : float;
  on_embedding : (Xtwig_path.Path_types.twig -> unit) option;
  build_s : float;
  (* hardening knobs *)
  retry_limit : int;
  backoff_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  max_embeddings : int;
  max_embed_nodes : int;
  (* owner-domain bookkeeping: batches are submitted and aggregated by
     the owning domain only, so plain mutable fields suffice (workers
     communicate outcomes only through the answers they return) *)
  mutable closed : bool;
  mutable queries_served : int;
  mutable batches : int;
  mutable timeouts : int;
  mutable retries_total : int;
  mutable degraded : int;
  mutable breaker_trips : int;
  mutable breaker : breaker;
  mutable consec_failures : int;
  mutable estimate_s : float;
  (* per-session observability cells: tenant-labeled when [name] is
     given, the process-global unlabeled cells otherwise *)
  h_query_s : Metrics.histogram;
  fb_counter : fallback_reason -> Metrics.counter;
}

let session_metrics name =
  match name with
  | None -> (h_query, c_fallback)
  | Some tenant ->
      ( Metrics.histogram
          ~labels:[ ("tenant", tenant) ]
          ~bounds:(Metrics.exponential ~start:1e-6 ~factor:2.0 ~n:26)
          "engine.query.seconds",
        fun r ->
          Metrics.counter
            ~labels:[ ("reason", reason_label r); ("tenant", tenant) ]
            "engine.fallback" )

let now = Unix.gettimeofday

let make_pool jobs =
  if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None

let mk ?name ~core ~jobs ~timeout_s ~on_embedding ~build_s ~retries ~backoff_s
    ~breaker_threshold ~breaker_cooldown_s ~max_embeddings ~max_embed_nodes
    ?pool () =
  let h_query_s, fb_counter = session_metrics name in
  {
    core;
    name;
    pool = (match pool with Some p -> p | None -> make_pool jobs);
    n_jobs = jobs;
    default_timeout = timeout_s;
    on_embedding;
    build_s;
    retry_limit = retries;
    backoff_s;
    breaker_threshold;
    breaker_cooldown_s;
    max_embeddings;
    max_embed_nodes;
    closed = false;
    queries_served = 0;
    batches = 0;
    timeouts = 0;
    retries_total = 0;
    degraded = 0;
    breaker_trips = 0;
    breaker = Closed;
    consec_failures = 0;
    estimate_s = 0.0;
    h_query_s;
    fb_counter;
  }

let check_session_args ~jobs ~retries =
  if jobs < 1 then Error (Xerror.Engine "jobs must be >= 1")
  else if retries < 0 then Error (Xerror.Engine "retries must be >= 0")
  else Ok ()

let of_sketch ?name ?(jobs = 1) ?(timeout_s = 5.0) ?(retries = 2)
    ?(backoff_s = 0.001) ?(breaker_threshold = 8) ?(breaker_cooldown_s = 0.25)
    ?(max_embeddings = 100_000) ?(max_embed_nodes = 1_000_000) ?on_embedding sk
    =
  Result.map
    (fun () ->
      let core =
        Sk
          {
            sk;
            coarse = Sketch.default_of_doc (Sketch.doc sk);
            cache = Embed.create_cache (Sketch.synopsis sk);
            pcache = Plan.create_cache (Sketch.synopsis sk);
          }
      in
      mk ?name ~core ~jobs ~timeout_s ~on_embedding ~build_s:0.0 ~retries
        ~backoff_s ~breaker_threshold ~breaker_cooldown_s ~max_embeddings
        ~max_embed_nodes ())
    (check_session_args ~jobs ~retries)

let of_backend ?name ?(jobs = 1) ?(timeout_s = 5.0) ?(retries = 2)
    ?(backoff_s = 0.001) ?(breaker_threshold = 8) ?(breaker_cooldown_s = 0.25)
    ?on_embedding inst =
  Result.map
    (fun () ->
      mk ?name ~core:(Bk inst) ~jobs ~timeout_s ~on_embedding ~build_s:0.0
        ~retries ~backoff_s ~breaker_threshold ~breaker_cooldown_s
        ~max_embeddings:max_int ~max_embed_nodes:max_int ())
    (check_session_args ~jobs ~retries)

let create ?name ?(seed = 42) ?(jobs = 1) ?candidates ?max_steps
    ?(timeout_s = 5.0) ?(retries = 2) ?(backoff_s = 0.001)
    ?(breaker_threshold = 8) ?(breaker_cooldown_s = 0.25)
    ?(max_embeddings = 100_000) ?(max_embed_nodes = 1_000_000) ?on_embedding
    ~budget doc =
  if budget <= 0 then Error (Xerror.Engine "budget must be positive")
  else if jobs < 1 then Error (Xerror.Engine "jobs must be >= 1")
  else if retries < 0 then Error (Xerror.Engine "retries must be >= 0")
  else begin
    let pool = make_pool jobs in
    let truth_tbl = Hashtbl.create 256 in
    let truth q =
      let k = Xtwig_path.Path_printer.twig_to_string q in
      match Hashtbl.find_opt truth_tbl k with
      | Some v -> v
      | None ->
          let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
          Hashtbl.add truth_tbl k v;
          v
    in
    let workload prng ~focus =
      Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
    in
    let t0 = now () in
    let built_plans = ref None in
    let sk =
      Xbuild.build ?pool ~seed ?candidates ?max_steps
        ~plan_cache_out:built_plans ~budget ~workload ~truth doc
    in
    let build_s = now () -. t0 in
    (* seed the session's plan cache with the build's: adopt it when
       the final step kept the synopsis, otherwise chain it as the
       fallback so the first batch repatches instead of compiling *)
    let pcache =
      match !built_plans with
      | Some pc when Plan.cache_synopsis pc == Sketch.synopsis sk -> pc
      | Some pc -> Plan.create_cache ~fallback:pc (Sketch.synopsis sk)
      | None -> Plan.create_cache (Sketch.synopsis sk)
    in
    let core =
      Sk
        {
          sk;
          coarse = Sketch.default_of_doc doc;
          cache = Embed.create_cache (Sketch.synopsis sk);
          pcache;
        }
    in
    Ok
      (mk ?name ~core ~jobs ~timeout_s ~on_embedding ~build_s ~retries
         ~backoff_s ~breaker_threshold ~breaker_cooldown_s ~max_embeddings
         ~max_embed_nodes ~pool ())
  end

(* Capped exponential backoff between retry attempts: base * 2^k,
   never more than 50 ms — the engine bounds tail latency, so waiting
   longer than a query is worth is not an option. *)
let backoff t k =
  let d = Float.min (t.backoff_s *. (2.0 ** float_of_int k)) 0.05 in
  if d > 0.0 then Unix.sleepf d

(* The coarse estimate is the degradation floor; if even that fails
   (for XSKETCH it is pure arithmetic, so only a fault-injection hook
   or a genuine bug could make it raise) the engine still answers. *)
let coarse_estimate t q =
  match t.core with
  | Sk { coarse; _ } -> ( try Est.estimate coarse q with _ -> 0.0)
  | Bk inst -> ( try Backend.coarse inst q with _ -> 0.0)

let degrade_answer t ~trace_id ~t0 ~reason ~retries q =
  Metrics.incr (t.fb_counter reason);
  Trace.instant
    ~args:[ ("trace_id", string_of_int trace_id) ]
    "engine.fallback";
  let elapsed_s = now () -. t0 in
  Metrics.observe t.h_query_s elapsed_s;
  {
    query = q;
    estimate = coarse_estimate t q;
    fallback = true;
    reason = Some reason;
    retries;
    elapsed_s;
    trace_id;
  }

(* Evaluate one query through its pre-compiled plans (one per
   embedding), checking the deadline between embedding contributions
   (runs on a worker when the session has a pool). The sum visits
   plans in enumeration order — identical to Estimator.estimate's
   fold, so jobs > 1 changes scheduling, never values. A raising
   evaluation (injected fault at [engine.query], a panicking
   [on_embedding] hook) is retried with backoff, then degraded to the
   coarse estimate — never propagated. *)
let eval_one t ~trace_id ~deadline q plans =
  Trace.with_span ~name:"engine.query"
    ~args:[ ("trace_id", string_of_int trace_id) ]
  @@ fun () ->
  let t0 = now () in
  let run_plans () =
    Fault.point "engine.query";
    match t.core with
    | Sk _ ->
        let n = Array.length plans in
        let rec go acc i =
          if i = n then Some acc
          else if now () > deadline then None
          else begin
            (match t.on_embedding with None -> () | Some f -> f q);
            go (acc +. Plan.run plans.(i)) (i + 1)
          end
        in
        if now () > deadline then None else go 0.0 0
    | Bk inst ->
        (* opaque backends evaluate in one step: the deadline is
           checked before (and re-checked after, so an over-budget
           answer still reports Timeout) but cannot interrupt the
           estimate itself *)
        if now () > deadline then None
        else begin
          (match t.on_embedding with None -> () | Some f -> f q);
          let v = Backend.estimate inst q in
          if now () > deadline then None else Some v
        end
  in
  let rec attempt k =
    match run_plans () with
    | Some est -> (est, None, k)
    | None -> (coarse_estimate t q, Some Timeout, k)
    | exception _ when k < t.retry_limit ->
        Metrics.incr c_retries;
        backoff t k;
        attempt (k + 1)
    | exception _ -> (coarse_estimate t q, Some Fault, k)
  in
  let estimate, reason, retries = attempt 0 in
  (match reason with
  | Some r ->
      Metrics.incr (t.fb_counter r);
      Trace.instant
        ~args:[ ("trace_id", string_of_int trace_id) ]
        "engine.fallback"
  | None -> ());
  let elapsed_s = now () -. t0 in
  Metrics.observe t.h_query_s elapsed_s;
  { query = q; estimate; fallback = reason <> None; reason; retries; elapsed_s; trace_id }

(* Owner-domain circuit-breaker gate, consulted once per query during
   the (sequential) compile phase. Cooldown expiry flips the breaker
   to half-open and lets exactly one probe query through; [probe]
   records which. *)
let breaker_blocks t probe i =
  match t.breaker with
  | Closed -> false
  | Half_open ->
      if !probe = None then begin
        probe := Some i;
        false
      end
      else true
  | Open_until until ->
      if now () < until then true
      else begin
        t.breaker <- Half_open;
        Metrics.set g_circuit 2.0;
        probe := Some i;
        false
      end

let trip t =
  t.breaker <- Open_until (now () +. t.breaker_cooldown_s);
  t.breaker_trips <- t.breaker_trips + 1;
  t.consec_failures <- 0;
  Metrics.set g_circuit 1.0

(* Outcome accounting, in query order on the owner: fault-degraded
   answers feed the failure streak (and fail a probe outright);
   anything that actually ran resets it (a timeout means the fabric
   worked — the query was just expensive). *)
let record_outcome t ~probe i a =
  match a.reason with
  | Some Fault ->
      t.consec_failures <- t.consec_failures + 1;
      if probe = Some i || t.consec_failures >= t.breaker_threshold then trip t
  | Some Circuit_open -> ()
  | Some Timeout | Some Guard | None ->
      t.consec_failures <- 0;
      if probe = Some i then begin
        t.breaker <- Closed;
        Metrics.set g_circuit 0.0
      end

(* Compile phase for one query, on the owner under the query's fault
   scope: enumerate embeddings (guarded by cardinality and node-count
   ceilings), compile plans; injected faults at [embed.fill] /
   [plan.fill] are retried with backoff while the deadline allows. The
   deadline is set here, before compilation, so compile time spends
   the same budget evaluation does. *)
let compile_prep t ~timeout ~probe i q =
  Fault.with_scope i @@ fun () ->
  if breaker_blocks t probe i then Error (Circuit_open, 0)
  else begin
    let deadline = now () +. timeout in
    match t.core with
    | Bk _ ->
        (* opaque backends have no compile phase: evaluation happens
           in eval_one, under the same deadline *)
        Ok ([||], deadline, 0)
    | Sk { sk; cache; pcache; _ } ->
        let rec attempt k =
          match
            let embs = Embed.embeddings_cached cache (Sketch.synopsis sk) q in
            if List.length embs > t.max_embeddings then `Guard
            else begin
              let nodes =
                List.fold_left (fun a e -> a + Embed.size e) 0 embs
              in
              if nodes > t.max_embed_nodes then `Guard
              else
                `Plans (Plan.plans_cached pcache ~key:(Embed.cache_key q) sk embs)
            end
          with
          | `Plans plans -> Ok (plans, deadline, k)
          | `Guard -> Error (Guard, k)
          | exception _ when k < t.retry_limit && now () <= deadline ->
              Metrics.incr c_retries;
              backoff t k;
              attempt (k + 1)
          | exception _ -> Error (Fault, k)
        in
        if now () > deadline then Error (Timeout, 0) else attempt 0
  end

let estimate_batch ?timeout_s ?trace_id t queries =
  if t.closed then Error (Xerror.Engine "session is closed")
  else begin
    match
      let timeout = Option.value timeout_s ~default:t.default_timeout in
      let trace_id =
        (* a client-propagated id (threaded here by the serving layer)
           replaces the minted one, so the server's and the engine's
           spans share it end to end *)
        match trace_id with
        | Some id -> id
        | None -> Atomic.fetch_and_add next_trace_id 1
      in
      Trace.with_trace_id trace_id
      @@ fun () ->
      Trace.with_span ~name:"engine.estimate_batch"
        ~args:
          [
            ("trace_id", string_of_int trace_id);
            ("queries", string_of_int (List.length queries));
          ]
      @@ fun () ->
      let t0 = now () in
      (* enumeration and plan compilation on the owner domain against
         the session caches; frozen before any fan-out (the cache
         ownership rule) *)
      (match t.core with
      | Sk { cache; pcache; _ } ->
          Embed.thaw cache;
          Plan.thaw pcache
      | Bk _ -> ());
      let probe = ref None in
      let prepped =
        Trace.with_span ~name:"engine.embed_batch" (fun () ->
            List.mapi
              (fun i q -> (q, compile_prep t ~timeout ~probe i q))
              queries)
      in
      (match t.core with
      | Sk { cache; pcache; _ } ->
          Embed.freeze cache;
          Plan.freeze pcache
      | Bk _ -> ());
      let earr = Array.of_list prepped in
      let run (q, prep) =
        match prep with
        | Ok (plans, deadline, retries) ->
            let a = eval_one t ~trace_id ~deadline q plans in
            { a with retries = a.retries + retries }
        | Error (reason, retries) ->
            degrade_answer t ~trace_id ~t0:(now ()) ~reason ~retries q
      in
      (* last line of the never-raise contract: whatever escapes a
         query's evaluation (or its pool job) is one answer's
         degradation, not the batch's exception *)
      let safe_run i =
        match run earr.(i) with
        | a -> a
        | exception _ ->
            degrade_answer t ~trace_id ~t0:(now ()) ~reason:Fault ~retries:0
              (fst earr.(i))
      in
      let answers =
        match t.pool with
        | None ->
            Array.init (Array.length earr) (fun i ->
                Fault.with_scope i (fun () -> safe_run i))
        | Some p ->
            let futs =
              Array.mapi (fun i item -> Pool.submit ~scope:i p (fun () -> run item)) earr
            in
            Array.mapi
              (fun i fut ->
                match Pool.await_result fut with
                | Ok a -> a
                | Error _ ->
                    (* the job itself failed (injected [pool.task]
                       fault, worker panic): one retry on the owner
                       under the same scope, then degrade *)
                    t.retries_total <- t.retries_total + 1;
                    Metrics.incr c_retries;
                    Fault.with_scope i (fun () -> safe_run i))
              futs
      in
      let answers = Array.to_list answers in
      List.iteri (fun i a -> record_outcome t ~probe:!probe i a) answers;
      let count p = List.fold_left (fun n a -> if p a then n + 1 else n) 0 answers in
      let timeouts = count (fun a -> a.reason = Some Timeout) in
      let degraded =
        count (fun a ->
            match a.reason with
            | Some (Fault | Circuit_open | Guard) -> true
            | _ -> false)
      in
      let retries =
        List.fold_left (fun n (a : answer) -> n + a.retries) 0 answers
      in
      t.batches <- t.batches + 1;
      t.queries_served <- t.queries_served + List.length answers;
      t.timeouts <- t.timeouts + timeouts;
      t.degraded <- t.degraded + degraded;
      t.retries_total <- t.retries_total + retries;
      Counters.incr c_batches;
      Counters.incr ~by:(List.length answers) c_queries;
      Counters.incr ~by:timeouts c_timeouts;
      t.estimate_s <- t.estimate_s +. (now () -. t0);
      answers
    with
    | answers -> Ok answers
    | exception e ->
        (* estimate_batch never raises: a failure that slipped every
           per-query net is still a typed error *)
        Error
          (Xerror.Engine
             (Printf.sprintf "internal failure: %s" (Printexc.to_string e)))
  end

let estimate ?timeout_s t q =
  match estimate_batch ?timeout_s t [ q ] with
  | Ok [ a ] -> Ok a
  | Ok _ -> assert false
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Per-query provenance: which tier of the plan economy answered       *)

type plan_tier =
  | Cache_hit
  | Repatch
  | Skeleton_adoption
  | Fresh_compile
  | Reference_interp
  | Backend_opaque

let tier_label = function
  | Cache_hit -> "cache_hit"
  | Repatch -> "repatch"
  | Skeleton_adoption -> "skeleton_adoption"
  | Fresh_compile -> "fresh_compile"
  | Reference_interp -> "reference_interp"
  | Backend_opaque -> "backend"

type provenance = {
  pv_answer : answer;
  pv_backend : string;
  pv_tier : plan_tier;
  pv_embeddings : int;
}

(* Tier classification reads the process-global plan counters around
   this query's (owner-domain, sequential) compile phase. A fresh
   compile also runs the shared payload phase, so [plan.compiles] is
   checked before [plan.repatches]; adoption and interpretation are
   tier-path outcomes and take precedence over the repatch they may
   also book. Concurrent compile phases of OTHER sessions on other
   domains could alias into the deltas — xtwigd drains tenant queues
   from one thread, so its explains are exact; a multi-threaded
   embedder should serialize explain calls itself. *)
let explain ?timeout_s ?trace_id t q =
  if t.closed then Error (Xerror.Engine "session is closed")
  else begin
    match
      let timeout = Option.value timeout_s ~default:t.default_timeout in
      let tid =
        match trace_id with
        | Some id -> id
        | None -> Atomic.fetch_and_add next_trace_id 1
      in
      Trace.with_trace_id tid @@ fun () ->
      Trace.with_span ~name:"engine.explain"
        ~args:[ ("trace_id", string_of_int tid) ]
      @@ fun () ->
      let t0 = now () in
      (match t.core with
      | Sk { cache; pcache; _ } ->
          Embed.thaw cache;
          Plan.thaw pcache
      | Bk _ -> ());
      let probe = ref None in
      let snap () =
        ( Counters.get "plan.cache_hits",
          Counters.get "plan.compiles",
          Counters.get "plan.repatches",
          Counters.get "plan.skeleton_adoptions",
          Counters.get "plan.interp_estimates" )
      in
      let _h0, c0, r0, s0, i0 = snap () in
      let prep = compile_prep t ~timeout ~probe 0 q in
      let _h1, c1, r1, s1, i1 = snap () in
      (match t.core with
      | Sk { cache; pcache; _ } ->
          Embed.freeze cache;
          Plan.freeze pcache
      | Bk _ -> ());
      let a =
        match prep with
        | Ok (plans, deadline, retries) -> (
            match
              Fault.with_scope 0 (fun () -> eval_one t ~trace_id:tid ~deadline q plans)
            with
            | a -> { a with retries = a.retries + retries }
            | exception _ ->
                degrade_answer t ~trace_id:tid ~t0:(now ()) ~reason:Fault
                  ~retries q)
        | Error (reason, retries) ->
            degrade_answer t ~trace_id:tid ~t0:(now ()) ~reason ~retries q
      in
      record_outcome t ~probe:!probe 0 a;
      t.batches <- t.batches + 1;
      t.queries_served <- t.queries_served + 1;
      (match a.reason with
      | Some Timeout -> t.timeouts <- t.timeouts + 1
      | Some _ -> t.degraded <- t.degraded + 1
      | None -> ());
      t.retries_total <- t.retries_total + a.retries;
      Counters.incr c_batches;
      Counters.incr c_queries;
      if a.reason = Some Timeout then Counters.incr c_timeouts;
      t.estimate_s <- t.estimate_s +. (now () -. t0);
      let tier =
        match t.core with
        | Bk _ -> Backend_opaque
        | Sk _ ->
            if c1 > c0 then Fresh_compile
            else if s1 > s0 then Skeleton_adoption
            else if i1 > i0 then Reference_interp
            else if r1 > r0 then Repatch
            else Cache_hit
      in
      let embeddings =
        match prep with Ok (plans, _, _) -> Array.length plans | Error _ -> 0
      in
      let backend =
        match t.core with Sk _ -> "xsketch" | Bk inst -> Backend.name_of inst
      in
      { pv_answer = a; pv_backend = backend; pv_tier = tier; pv_embeddings = embeddings }
    with
    | p -> Ok p
    | exception e ->
        Error
          (Xerror.Engine
             (Printf.sprintf "internal failure: %s" (Printexc.to_string e)))
  end

(* ------------------------------------------------------------------ *)
(* Incremental document updates                                        *)

(* Swap the core for one maintained incrementally across a subtree
   splice. Runs on the owner domain between batches (the same
   single-writer discipline as [stats] / [close]): workers only ever
   see the core their batch captured. The embedding cache is keyed to
   the synopsis and must start fresh; the plan cache chains the old
   one as its fallback so the first batch after an update repatches
   matching skeletons instead of compiling from nothing. *)
let update t delta =
  if t.closed then Error (Xerror.Engine "session is closed")
  else
    match t.core with
    | Bk inst ->
        Error
          (Xerror.Usage
             (Printf.sprintf
                "Engine.update: %s-backend session holds no document"
                (Backend.name_of inst)))
    | Sk { sk; pcache; _ } -> (
        match Sketch.apply_delta sk delta with
        | sk' ->
            let syn' = Sketch.synopsis sk' in
            t.core <-
              Sk
                {
                  sk = sk';
                  coarse = Sketch.default_of_doc (Sketch.doc sk');
                  cache = Embed.create_cache syn';
                  pcache = Plan.create_cache ~fallback:pcache syn';
                };
            Ok ()
        | exception Invalid_argument msg -> Error (Xerror.Usage msg)
        | exception Fault.Injected _ ->
            Error (Xerror.Engine "injected fault at sketch.delta")
        | exception e -> Error (Xerror.Engine (Printexc.to_string e)))

let sketch t =
  match t.core with
  | Sk { sk; _ } -> sk
  | Bk inst ->
      invalid_arg
        (Printf.sprintf "Engine.sketch: %s-backend session has no sketch"
           (Backend.name_of inst))

let backend_name t =
  match t.core with Sk _ -> "xsketch" | Bk inst -> Backend.name_of inst

let name t = t.name

let breaker_state t =
  match t.breaker with
  | Closed -> `Closed
  | Open_until _ -> `Open
  | Half_open -> `Half_open

let stats t =
  {
    name = Option.value t.name ~default:"";
    backend = backend_name t;
    jobs = t.n_jobs;
    sketch_bytes =
      (match t.core with
      | Sk { sk; _ } -> Sketch.size_bytes sk
      | Bk inst -> Backend.size_bytes inst);
    queries_served = t.queries_served;
    batches = t.batches;
    timeouts = t.timeouts;
    retries = t.retries_total;
    degraded = t.degraded;
    breaker_trips = t.breaker_trips;
    build_s = t.build_s;
    estimate_s = t.estimate_s;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.pool with None -> () | Some p -> Pool.shutdown p
  end

let with_engine ?seed ?jobs ?candidates ?max_steps ?timeout_s ~budget doc f =
  match create ?seed ?jobs ?candidates ?max_steps ?timeout_s ~budget doc with
  | Error e -> Error e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))
