(** A long-lived, concurrent estimation session over one built
    synopsis.

    The paper treats estimation as a one-shot computation; a serving
    system treats it as a session: build (or load) a synopsis once,
    then answer batches of twig queries against it for the lifetime of
    the process. [Engine.t] packages exactly that — the built sketch,
    a coarse fallback sketch, a long-lived embedding cache, and an
    optional {!Xtwig_util.Pool} of worker domains that evaluates the
    queries of a batch concurrently.

    {2 Concurrency model}

    One domain owns the session (creates it, submits batches, reads
    stats, closes it). Within a batch, embedding enumeration runs on
    the owner against the session cache (warm, then freeze), and
    per-embedding estimation fans out to the pool; results return in
    query order, so a batch's answers are identical whatever [jobs]
    is.

    {2 Timeouts and graceful degradation}

    Estimation cost is query-dependent (embedding counts multiply
    along branching paths), and a serving layer must bound tail
    latency. Each query gets a deadline; the evaluation checks it
    between embedding contributions (cooperative — a single
    embedding's traversal is never interrupted) and on expiry the
    engine degrades to the {e coarse label-split estimate}: cheap,
    always available, and the starting point of XBUILD — the
    same-shaped answer at the accuracy floor rather than no answer.
    Fallbacks are flagged per answer and counted in {!stats}. *)

type t

type answer = {
  query : Xtwig_path.Path_types.twig;
  estimate : float;
  fallback : bool;
      (** the per-query deadline expired and [estimate] is the coarse
          label-split estimate *)
  elapsed_s : float;  (** evaluation wall time of this query *)
  trace_id : int;
      (** the batch's trace id — unique per {!estimate_batch} call
          across every session of the process, and attached to the
          batch's [engine.query] trace spans so an answer can be
          correlated with its spans in a {!Xtwig_obs.Trace} dump *)
}

type stats = {
  jobs : int;  (** worker domains serving this session (1 = inline) *)
  sketch_bytes : int;
  queries_served : int;
  batches : int;
  timeouts : int;  (** answers that took the fallback path *)
  build_s : float;  (** XBUILD wall time; 0 for {!of_sketch} sessions *)
  estimate_s : float;  (** cumulative batch evaluation wall time *)
}

val create :
  ?seed:int ->
  ?jobs:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  ?on_embedding:(Xtwig_path.Path_types.twig -> unit) ->
  budget:int ->
  Xtwig_xml.Doc.t ->
  (t, Xtwig_util.Xerror.t) result
(** [create ~budget doc] runs XBUILD (candidate scoring on the pool
    when [jobs > 1]) and opens a session over the result. [jobs]
    (default 1) is the worker-domain count; [timeout_s] (default 5.0)
    the per-query deadline; [seed]/[candidates]/[max_steps] are
    XBUILD's. Errors: [Xerror.Engine] on non-positive [budget] or
    [jobs].

    [on_embedding] is a fault-injection/observability hook invoked on
    the evaluating domain before each embedding's contribution — the
    timeout tests hang a chosen query with it; a tracing caller can
    count embedding visits. *)

val of_sketch :
  ?jobs:int ->
  ?timeout_s:float ->
  ?on_embedding:(Xtwig_path.Path_types.twig -> unit) ->
  Xtwig_sketch.Sketch.t ->
  (t, Xtwig_util.Xerror.t) result
(** Open a session over an already-built (or loaded) sketch. *)

val estimate_batch :
  ?timeout_s:float -> t -> Xtwig_path.Path_types.twig list ->
  (answer list, Xtwig_util.Xerror.t) result
(** Evaluate a batch concurrently; answers come back in query order
    and are bit-identical to [jobs = 1] evaluation (absent timeouts).
    [timeout_s] overrides the session default for this batch. Errors:
    [Xerror.Engine] on a closed session. *)

val estimate :
  ?timeout_s:float -> t -> Xtwig_path.Path_types.twig ->
  (answer, Xtwig_util.Xerror.t) result
(** One-query batch. *)

val sketch : t -> Xtwig_sketch.Sketch.t
val stats : t -> stats

val close : t -> unit
(** Shut the pool down and mark the session closed (idempotent);
    subsequent batches return [Xerror.Engine]. *)

val with_engine :
  ?seed:int ->
  ?jobs:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  budget:int ->
  Xtwig_xml.Doc.t ->
  (t -> 'a) ->
  ('a, Xtwig_util.Xerror.t) result
(** [create] + callback + guaranteed [close]. *)
