(** A long-lived, concurrent, crash-safe estimation session over one
    built synopsis.

    The paper treats estimation as a one-shot computation; a serving
    system treats it as a session: build (or load) a synopsis once,
    then answer batches of twig queries against it for the lifetime of
    the process. [Engine.t] packages exactly that — the built sketch,
    a coarse fallback sketch, a long-lived embedding cache, and an
    optional {!Xtwig_util.Pool} of worker domains that evaluates the
    queries of a batch concurrently.

    {2 Concurrency model}

    One domain owns the session (creates it, submits batches, reads
    stats, closes it). Within a batch, embedding enumeration and plan
    compilation run on the owner against the session caches (warm,
    then freeze), and per-query evaluation fans out to the pool;
    results return in query order, so a batch's answers are identical
    whatever [jobs] is.

    {2 Timeouts and graceful degradation}

    Estimation cost is query-dependent (embedding counts multiply
    along branching paths), and a serving layer must bound tail
    latency. Each query's deadline starts when its compilation starts
    — compile time spends the same budget evaluation does — and the
    evaluation checks it between embedding contributions (cooperative
    — a single embedding's traversal is never interrupted). On expiry
    the engine degrades to the {e coarse label-split estimate}: cheap,
    always available, and the starting point of XBUILD — the
    same-shaped answer at the accuracy floor rather than no answer.

    {2 Hardening}

    {!estimate_batch} {b never raises}: every failure becomes either a
    degraded answer (flagged with its {!fallback_reason}) or a typed
    [Error _]. The failure paths, in the order they engage:

    - {b Retry}: an exception out of a cache fill ([embed.fill],
      [plan.fill]), a query evaluation ([engine.query]) or a pool job
      ([pool.task]) is retried up to [retries] times with capped
      exponential backoff before degrading with reason [Fault].
    - {b Circuit breaker}: [breaker_threshold] consecutive
      fault-degraded answers trip the breaker; while open, queries
      degrade immediately with reason [Circuit_open] (no work
      submitted). After [breaker_cooldown_s] one probe query is let
      through (half-open); its outcome closes or re-opens the breaker.
    - {b Guards}: a query whose embedding enumeration exceeds
      [max_embeddings] embeddings or [max_embed_nodes] total nodes
      degrades with reason [Guard] instead of exhausting memory.

    Degradations are counted per reason in
    [engine.fallback{reason=...}], retries in [engine.retries], and
    the breaker state is exported as the [engine.circuit_state] gauge
    (0 closed, 1 open, 2 half-open) — see {!Xtwig_obs.Metrics}. *)

type t

type fallback_reason =
  | Timeout  (** the per-query deadline expired (compile or eval) *)
  | Fault  (** retries exhausted on a raising evaluation or fill *)
  | Circuit_open  (** the breaker was open; no work was attempted *)
  | Guard  (** embedding enumeration exceeded the cardinality guards *)

type answer = {
  query : Xtwig_path.Path_types.twig;
  estimate : float;
  fallback : bool;
      (** [estimate] is the coarse label-split estimate, not the full
          sketch's; [reason] says why *)
  reason : fallback_reason option;  (** [None] iff [fallback = false] *)
  retries : int;  (** retry attempts this answer consumed *)
  elapsed_s : float;  (** evaluation wall time of this query *)
  trace_id : int;
      (** the batch's trace id — unique per {!estimate_batch} call
          across every session of the process, and attached to the
          batch's [engine.query] trace spans so an answer can be
          correlated with its spans in a {!Xtwig_obs.Trace} dump *)
}

type stats = {
  name : string;  (** the session's tenant label ([""] if unnamed) *)
  backend : string;
      (** which estimator answers: ["xsketch"] for {!of_sketch} /
          {!create} sessions, the backend's registry name for
          {!of_backend} sessions *)
  jobs : int;  (** worker domains serving this session (1 = inline) *)
  sketch_bytes : int;
  queries_served : int;
  batches : int;
  timeouts : int;  (** answers degraded with reason [Timeout] *)
  retries : int;  (** total retry attempts across all batches *)
  degraded : int;
      (** answers degraded with reason [Fault], [Circuit_open] or
          [Guard] *)
  breaker_trips : int;  (** times the circuit breaker opened *)
  build_s : float;  (** XBUILD wall time; 0 for {!of_sketch} sessions *)
  estimate_s : float;  (** cumulative batch evaluation wall time *)
}

val create :
  ?name:string ->
  ?seed:int ->
  ?jobs:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?max_embeddings:int ->
  ?max_embed_nodes:int ->
  ?on_embedding:(Xtwig_path.Path_types.twig -> unit) ->
  budget:int ->
  Xtwig_xml.Doc.t ->
  (t, Xtwig_util.Xerror.t) result
(** [create ~budget doc] runs XBUILD (candidate scoring on the pool
    when [jobs > 1]) and opens a session over the result. [jobs]
    (default 1) is the worker-domain count; [timeout_s] (default 5.0)
    the per-query deadline; [seed]/[candidates]/[max_steps] are
    XBUILD's. Hardening knobs (see the module preamble): [retries]
    (default 2), [backoff_s] (base backoff, default 1 ms, doubling,
    capped at 50 ms), [breaker_threshold] (default 8),
    [breaker_cooldown_s] (default 0.25), [max_embeddings] (default
    100_000), [max_embed_nodes] (default 1_000_000). Errors:
    [Xerror.Engine] on non-positive [budget], [jobs] or negative
    [retries].

    [on_embedding] is a fault-injection/observability hook invoked on
    the evaluating domain before each embedding's contribution — the
    timeout tests hang a chosen query with it; a tracing caller can
    count embedding visits. *)

val of_sketch :
  ?name:string ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?max_embeddings:int ->
  ?max_embed_nodes:int ->
  ?on_embedding:(Xtwig_path.Path_types.twig -> unit) ->
  Xtwig_sketch.Sketch.t ->
  (t, Xtwig_util.Xerror.t) result
(** Open a session over an already-built (or loaded) sketch. Same
    defaults as {!create}. [name] is the session's tenant label: when
    given, the session's [engine.query.seconds] histogram and
    [engine.fallback] counters carry a [tenant] label, so a
    multi-sketch catalog (the [xtwigd] service, the CLI's per-tenant
    stats) reports each sketch separately instead of one global
    blob. *)

val of_backend :
  ?name:string ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?on_embedding:(Xtwig_path.Path_types.twig -> unit) ->
  Xtwig_backend.Estimator_backend.instance ->
  (t, Xtwig_util.Xerror.t) result
(** Open a session over any registered estimator backend (see
    {!Xtwig_backend.Estimator_backend}): the same hardening fabric —
    retry with backoff, circuit breaker, timeout degradation to the
    backend's [coarse] floor — around an opaque [estimate] function.
    Differences from the compiled XSKETCH path: evaluation is one
    uninterruptible step (the deadline is checked before and after,
    never inside), and the embedding-cardinality guards do not apply
    (no embedding enumeration happens here). *)

val estimate_batch :
  ?timeout_s:float -> ?trace_id:int -> t -> Xtwig_path.Path_types.twig list ->
  (answer list, Xtwig_util.Xerror.t) result
(** Evaluate a batch concurrently; answers come back in query order
    and are bit-identical to [jobs = 1] evaluation (absent timeouts).
    [timeout_s] overrides the session default for this batch.
    [trace_id] replaces the minted batch trace id with a
    client-propagated one (the serving layer threads the protocol's
    request id here), making it the ambient
    {!Xtwig_obs.Trace.with_trace_id} for the compile phase — the
    batch's [engine.*] and [plan.*] spans then share the caller's id
    end to end.

    Never raises, under any fault scenario: failures degrade
    individual answers (see the module preamble), and anything that
    slips every per-query net returns [Error (Xerror.Engine _)].
    Errors: [Xerror.Engine] on a closed session.

    Each query runs under the fault scope of its batch index
    ({!Xtwig_fault.Fault.with_scope}), so injected fault sequences are
    byte-identical across runs and across [jobs] counts. *)

val estimate :
  ?timeout_s:float -> t -> Xtwig_path.Path_types.twig ->
  (answer, Xtwig_util.Xerror.t) result
(** One-query batch. *)

(** {2 Estimate provenance}

    The plan economy (PR 4/6) decides per query how much work an
    estimate costs — serve compiled plans from cache, repatch a stale
    entry's payload, adopt a cached skeleton, compile fresh, or (under
    tiered execution) interpret through the reference evaluator.
    {!explain} surfaces that decision per request instead of only in
    aggregate counters. *)

type plan_tier =
  | Cache_hit  (** valid compiled plans served straight from cache *)
  | Repatch  (** a stale entry's payload constants were rebuilt *)
  | Skeleton_adoption  (** an isomorphic cached skeleton was adopted *)
  | Fresh_compile  (** at least one plan went through full compilation *)
  | Reference_interp  (** tier declined to compile; reference evaluator answered *)
  | Backend_opaque  (** an {!of_backend} session — no plan economy *)

val tier_label : plan_tier -> string
(** Stable lowercase token, e.g. ["cache_hit"] — the wire encoding of
    the serving layer's [explain] verb. *)

type provenance = {
  pv_answer : answer;  (** the estimate itself, as {!estimate} returns *)
  pv_backend : string;  (** {!backend_name} of the session *)
  pv_tier : plan_tier;
  pv_embeddings : int;
      (** embeddings enumerated (= compiled plans) for the query; 0
          when the compile phase degraded or on a backend session *)
}

val explain :
  ?timeout_s:float -> ?trace_id:int -> t -> Xtwig_path.Path_types.twig ->
  (provenance, Xtwig_util.Xerror.t) result
(** Evaluate one query (inline on the owner, identical estimate to
    {!estimate}) and report its provenance. Tier classification reads
    the process-global plan counters around this query's sequential
    compile phase, so it is exact when at most one session is
    compiling at a time (the [xtwigd] drain loop's situation);
    concurrent compile phases of other sessions can alias into it.
    Never raises; same error contract as {!estimate_batch}. *)

val update :
  t -> Xtwig_sketch.Sketch.delta -> (unit, Xtwig_util.Xerror.t) result
(** Apply a subtree insert/delete to the session's document and swap
    in the incrementally maintained sketch
    ({!Xtwig_sketch.Sketch.apply_delta}): summaries untouched by the
    edit are reused in place, the coarse fallback is rebuilt over the
    new document, the embedding cache starts fresh (it is keyed to the
    synopsis), and the plan cache chains the old one as its fallback
    so the next batch repatches matching skeletons instead of
    compiling cold.

    Owner-domain only, between batches — the same single-writer
    discipline as {!stats} and {!close}; a batch in flight keeps the
    core it captured. Errors: [Xerror.Usage] on an {!of_backend}
    session or an out-of-range node, [Xerror.Engine] on a closed
    session or an injected [sketch.delta] fault. *)

val sketch : t -> Xtwig_sketch.Sketch.t
(** The session's sketch. Raises [Invalid_argument] on an
    {!of_backend} session — those have no [Sketch.t]; use
    {!backend_name} to tell the two apart. *)

val backend_name : t -> string
(** ["xsketch"] for {!create}/{!of_sketch} sessions, the backend's
    registry name otherwise. *)

val name : t -> string option
(** The tenant label the session was opened with. *)

val stats : t -> stats

val breaker_state : t -> [ `Closed | `Open | `Half_open ]
(** Owner-domain view of the circuit breaker, for tests and the CLI's
    stats output. *)

val close : t -> unit
(** Shut the pool down and mark the session closed (idempotent);
    subsequent batches return [Xerror.Engine]. *)

val with_engine :
  ?seed:int ->
  ?jobs:int ->
  ?candidates:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  budget:int ->
  Xtwig_xml.Doc.t ->
  (t -> 'a) ->
  ('a, Xtwig_util.Xerror.t) result
(** [create] + callback + guaranteed [close]. *)
