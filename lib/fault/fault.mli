(** Deterministic fault injection: a process-wide registry of named
    failure points.

    Production code marks the places where the outside world can fail
    — file I/O, pool task dispatch, cache fills, query evaluation —
    with {!point}. With no scenario installed (the default), a point
    is one atomic load and a fall-through: the same disabled-path
    contract as {!Xtwig_obs.Trace}. With a scenario installed, each
    arrival at a point is counted and a pure decision function of
    [(seed, point, scope, hit)] decides whether to raise {!Injected}
    there.

    {2 Determinism}

    No wall clock and no shared PRNG stream enter the decision: the
    [hit] index is a per-[(point, scope)] counter and the verdict is a
    SplitMix64 finalizer over the scenario seed, the point name, the
    scope and the hit index. Callers that process independent work
    units (the engine's per-query evaluation, a pool's per-task jobs)
    wrap each unit in {!with_scope} with the unit's input index, which
    makes the injected fault sequence a pure function of the scenario
    — byte-identical across runs {e and} across worker-domain counts,
    no matter how the scheduler interleaves the units
    (test/test_fault.ml pins this).

    {2 Scenario grammar}

    A scenario is [seed=N] plus rules, separated by [';'] (or
    whitespace — handy in shells):

    {v
    seed=7;io.*:p0.01;pool.task:n3;engine.query:s1,4,9;plan.fill:every5
    v}

    - [PATTERN:pFLOAT] — fire each hit independently with that
      probability;
    - [PATTERN:nINT] — fire exactly on the INTth hit (1-based);
    - [PATTERN:everyINT] — fire every INTth hit;
    - [PATTERN:sI1,I2,...] — fire on exactly the scripted hits;
    - [PATTERN:always] — fire on every hit.

    [PATTERN] is a point name, or a prefix followed by ['*']. The
    first matching rule wins. The environment variable
    [XTWIG_FAULT_SPEC] carries a scenario into tests and CI
    ({!env_spec}); the CLI's [--fault-spec] flag and the bench
    harness's [fault-audit] mode parse the same grammar. *)

exception
  Injected of {
    point : string;
    scope : int;
    hit : int;
  }
(** The injected failure. Carries the point name, the caller's
    {!with_scope} scope (0 outside any scope) and the 1-based hit
    index at which the rule fired. *)

type trigger =
  | Always
  | Prob of float  (** independent per-hit probability in [0,1] *)
  | Nth of int  (** the one 1-based hit to fire on *)
  | Every of int  (** every [n]th hit *)
  | Script of int list  (** exactly these 1-based hits *)

type rule = { pattern : string; trigger : trigger }
(** [pattern] is a point name or a ['*']-terminated prefix. *)

type spec = { seed : int; rules : rule list }

val parse_spec : string -> (spec, string) result
(** Parse the grammar above. The error is a one-line description of
    the offending item. *)

val spec_to_string : spec -> string
(** Canonical re-rendering ([parse_spec] of it yields an equal spec). *)

val env_spec : unit -> (spec option, string) result
(** The scenario in [XTWIG_FAULT_SPEC], if the variable is set. *)

(** {1 Installation} *)

val install : spec -> unit
(** Install a scenario and enable injection. Replaces any previous
    scenario; counters and the fired log start fresh. *)

val disable : unit -> unit
(** Disable injection and drop the scenario. Idempotent. *)

val reset : unit -> unit
(** Clear hit counters and the fired log, keeping the installed
    scenario — the next batch replays the same fault sequence. *)

val enabled : unit -> bool
val active : unit -> spec option

(** {1 Failure points} *)

val point : string -> unit
(** [point name] marks a failure point. Raises {!Injected} when the
    installed scenario fires here; returns [unit] otherwise. With no
    scenario installed this is a single atomic load. *)

val fires : string -> bool
(** As {!point} but returning the verdict instead of raising (for
    call sites that degrade inline rather than unwind). The hit is
    counted and logged exactly as {!point} does. *)

val with_scope : int -> (unit -> 'a) -> 'a
(** Run the thunk with the calling domain's fault scope set to the
    given work-unit index; restores the previous scope afterwards
    (also on exception). Scopes are domain-local, so concurrent
    workers carry independent scopes. *)

val scope : unit -> int
(** The calling domain's current scope (0 = unscoped). *)

(** {1 Audit} *)

val injected_count : unit -> int
(** Faults fired since {!install}/{!reset}. *)

val log : unit -> (string * int * int) list
(** Every fired [(point, scope, hit)] since {!install}/{!reset},
    sorted — a canonical form independent of worker interleaving. *)

val log_to_string : unit -> string
(** One [point scope hit] line per fired fault, sorted — the byte
    representation the determinism tests compare. *)
