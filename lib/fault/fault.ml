module Metrics = Xtwig_obs.Metrics

exception
  Injected of {
    point : string;
    scope : int;
    hit : int;
  }

let () =
  Printexc.register_printer (function
    | Injected { point; scope; hit } ->
        Some
          (Printf.sprintf "Fault.Injected(point=%s, scope=%d, hit=%d)" point
             scope hit)
    | _ -> None)

type trigger =
  | Always
  | Prob of float
  | Nth of int
  | Every of int
  | Script of int list

type rule = { pattern : string; trigger : trigger }
type spec = { seed : int; rules : rule list }

(* ------------------------------------------------------------------ *)
(* State. The enabled flag is the only thing the disabled path reads;
   everything else lives behind [lock] and is only touched while a
   scenario is installed (injection is a test/chaos facility — the
   enabled-path cost of one global mutex is irrelevant next to the
   faults it produces, and a single lock keeps hit counting exact
   across domains). *)

let on = Atomic.make false

type state = {
  spec : spec;
  counts : (string * int, int ref) Hashtbl.t;  (* (point, scope) -> hits *)
  mutable fired : (string * int * int) list;  (* newest first *)
  mutable fired_n : int;
}

let lock = Mutex.create ()
let state : state ref = ref { spec = { seed = 0; rules = [] }; counts = Hashtbl.create 0; fired = []; fired_n = 0 }

(* Domain-local scope: the index of the work unit being processed. *)
let scope_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let scope () = Domain.DLS.get scope_key

let with_scope s f =
  let old = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key old) f

(* ------------------------------------------------------------------ *)
(* Decision function: a SplitMix64 finalizer over (seed, point, scope,
   hit). Stateless, so the verdict for a given hit does not depend on
   how work interleaves across domains. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform ~seed ~point ~hit ~sc =
  let open Int64 in
  let z = add (of_int seed) (mul (of_int (Hashtbl.hash point + 1)) 0x9E3779B97F4A7C15L) in
  let z = add z (mul (of_int (sc + 1)) 0xD1B54A32D192ED03L) in
  let z = add z (mul (of_int (hit + 1)) 0x8CB92BA72F3D8DD7L) in
  (* 53 mantissa bits -> uniform in [0, 1) *)
  to_float (shift_right_logical (mix64 z) 11) *. (1.0 /. 9007199254740992.0)

let matches pattern name =
  let n = String.length pattern in
  if n > 0 && pattern.[n - 1] = '*' then
    String.length name >= n - 1 && String.sub name 0 (n - 1) = String.sub pattern 0 (n - 1)
  else String.equal pattern name

let verdict ~seed ~point ~sc ~hit = function
  | Always -> true
  | Prob p -> uniform ~seed ~point ~hit ~sc < p
  | Nth n -> hit = n
  | Every n -> n > 0 && hit mod n = 0
  | Script hits -> List.mem hit hits

(* ------------------------------------------------------------------ *)
(* The point itself *)

let c_injected point = Metrics.counter ~labels:[ ("point", point) ] "fault.injected"

(* Returns [Some (scope, hit)] when the installed scenario fires at
   [name]; counts the hit either way. *)
let check_slow name =
  let sc = scope () in
  Mutex.lock lock;
  let st = !state in
  let key = (name, sc) in
  let c =
    match Hashtbl.find_opt st.counts key with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add st.counts key c;
        c
  in
  incr c;
  let hit = !c in
  let fire =
    match List.find_opt (fun r -> matches r.pattern name) st.spec.rules with
    | Some r -> verdict ~seed:st.spec.seed ~point:name ~sc ~hit r.trigger
    | None -> false
  in
  if fire then begin
    st.fired <- (name, sc, hit) :: st.fired;
    st.fired_n <- st.fired_n + 1
  end;
  Mutex.unlock lock;
  if fire then begin
    Metrics.incr (c_injected name);
    Some (sc, hit)
  end
  else None

let fires name = if Atomic.get on then check_slow name <> None else false

let point name =
  if Atomic.get on then
    match check_slow name with
    | None -> ()
    | Some (sc, hit) -> raise (Injected { point = name; scope = sc; hit })

(* ------------------------------------------------------------------ *)
(* Installation *)

let install spec =
  Mutex.lock lock;
  state := { spec; counts = Hashtbl.create 64; fired = []; fired_n = 0 };
  Mutex.unlock lock;
  Atomic.set on true

let disable () =
  Atomic.set on false;
  Mutex.lock lock;
  state := { spec = { seed = 0; rules = [] }; counts = Hashtbl.create 0; fired = []; fired_n = 0 };
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  let st = !state in
  state := { spec = st.spec; counts = Hashtbl.create 64; fired = []; fired_n = 0 };
  Mutex.unlock lock

let enabled () = Atomic.get on

let active () =
  if Atomic.get on then begin
    Mutex.lock lock;
    let s = !state.spec in
    Mutex.unlock lock;
    Some s
  end
  else None

let injected_count () =
  Mutex.lock lock;
  let n = !state.fired_n in
  Mutex.unlock lock;
  n

let log () =
  Mutex.lock lock;
  let l = !state.fired in
  Mutex.unlock lock;
  List.sort compare l

let log_to_string () =
  String.concat ""
    (List.map (fun (p, s, h) -> Printf.sprintf "%s %d %d\n" p s h) (log ()))

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let trigger_to_string = function
  | Always -> "always"
  | Prob p -> Printf.sprintf "p%g" p
  | Nth n -> Printf.sprintf "n%d" n
  | Every n -> Printf.sprintf "every%d" n
  | Script hits -> "s" ^ String.concat "," (List.map string_of_int hits)

let spec_to_string spec =
  String.concat ";"
    (Printf.sprintf "seed=%d" spec.seed
    :: List.map
         (fun r -> Printf.sprintf "%s:%s" r.pattern (trigger_to_string r.trigger))
         spec.rules)

let parse_trigger item s =
  let after prefix =
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  in
  let starts prefix =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  if s = "always" then Ok Always
  else if starts "every" then
    match int_of_string_opt (after "every") with
    | Some n when n >= 1 -> Ok (Every n)
    | _ -> Error (Printf.sprintf "bad 'every' trigger in %S" item)
  else if starts "p" then
    match float_of_string_opt (after "p") with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
    | _ -> Error (Printf.sprintf "bad probability trigger in %S (want p0..p1)" item)
  else if starts "n" then
    match int_of_string_opt (after "n") with
    | Some n when n >= 1 -> Ok (Nth n)
    | _ -> Error (Printf.sprintf "bad 'n' trigger in %S" item)
  else if starts "s" then begin
    let parts = String.split_on_char ',' (after "s") in
    let hits = List.filter_map int_of_string_opt parts in
    if List.length hits = List.length parts && hits <> [] && List.for_all (fun h -> h >= 1) hits
    then Ok (Script (List.sort_uniq compare hits))
    else Error (Printf.sprintf "bad script trigger in %S (want s1,4,9)" item)
  end
  else Error (Printf.sprintf "unknown trigger in %S" item)

let parse_spec text =
  (* items separated by ';' or whitespace *)
  let items =
    String.split_on_char ';'
      (String.map (function ' ' | '\t' | '\n' -> ';' | c -> c) text)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed rules = function
    | [] -> Ok { seed; rules = List.rev rules }
    | item :: rest -> (
        match String.index_opt item '=' with
        | Some i when String.sub item 0 i = "seed" -> (
            match int_of_string_opt (String.sub item (i + 1) (String.length item - i - 1)) with
            | Some s -> go s rules rest
            | None -> Error (Printf.sprintf "bad seed in %S" item))
        | _ -> (
            match String.index_opt item ':' with
            | None -> Error (Printf.sprintf "expected PATTERN:TRIGGER, got %S" item)
            | Some i -> (
                let pattern = String.sub item 0 i in
                let tr = String.sub item (i + 1) (String.length item - i - 1) in
                if pattern = "" then Error (Printf.sprintf "empty pattern in %S" item)
                else
                  match parse_trigger item tr with
                  | Ok trigger -> go seed ({ pattern; trigger } :: rules) rest
                  | Error e -> Error e)))
  in
  go 0 [] items

let env_spec () =
  match Sys.getenv_opt "XTWIG_FAULT_SPEC" with
  | None -> Ok None
  | Some "" -> Ok None
  | Some text -> Result.map Option.some (parse_spec text)
