(** The server's set of named tenants, each an estimation session over
    its own document and synopsis.

    A tenant is declared by a {!source} — where its document lives,
    where (or how) its synopsis comes from — and holds one live
    {!Xtwig.Engine.t} opened through the {!Xtwig} facade with the
    tenant's name, so every engine metric carries a [tenant] label.

    {2 Hot reload}

    {!reload} re-reads the tenant's source files and opens a {e new}
    engine before touching the old one: on any failure (missing file,
    corrupt sketch, mismatched document) the old engine keeps serving
    and the error is returned to the caller — a bad deploy cannot take
    a tenant down. On success the engines swap, the generation number
    increments, and the old session is closed. Combined with
    [Sketch_io]'s atomic-rename writes (a sketch file is never
    observable half-written), this is the zero-downtime reload path:
    write the new sketch, then send [reload]. *)

type source = {
  doc_path : string;
  sketch_path : string option;
      (** [None]: build at load time with [budget]/[seed]. *)
  backend : string;  (** registry name; ["xsketch"] is the fast path *)
  budget : int;
  seed : int;
}

val source :
  ?sketch_path:string -> ?backend:string -> ?budget:int -> ?seed:int ->
  string -> source
(** [source doc_path] with defaults [backend = "xsketch"],
    [budget = 8192], [seed = 42]. *)

type tenant

val tenant_name : tenant -> string
val tenant_generation : tenant -> int
(** 1 after the initial load, +1 per successful {!reload}. *)

val engine : tenant -> Xtwig.Engine.t
val tenant_doc : tenant -> Xtwig.doc

type t

val create :
  ?jobs:int ->
  ?timeout_s:float ->
  (string * source) list ->
  (t, Xtwig.Xerror.t) result
(** Load every tenant (building or reading each synopsis); the first
    failure aborts, closing the tenants already opened. Tenant names
    must be nonempty, unique, and use only [[A-Za-z0-9._-]] (they
    travel on protocol header lines). *)

val find : t -> string -> (tenant, Xtwig.Xerror.t) result
(** [Xerror.Usage] naming the known tenants on a miss. *)

val names : t -> string list
(** In declaration order. *)

val reload : t -> string -> (int, Xtwig.Xerror.t) result
(** Returns the new generation. See the module preamble for the
    keep-the-old-engine failure contract. *)

val update : t -> string -> Xtwig.delta -> (int, Xtwig.Xerror.t) result
(** Apply a subtree insert/delete to the tenant's live session
    ({!Xtwig.update_session}) — the sketch is maintained incrementally
    rather than rebuilt — and bump the generation. On failure
    (backend session, out-of-range node, injected fault) the tenant
    keeps serving its current document. *)

val close : t -> unit
