(** The xtwigd wire protocol: framing, request/response codec, and a
    small blocking client.

    {2 Framing}

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of UTF-8 text. Frames larger than {!max_frame} are a
    protocol error — the peer closes the connection rather than
    buffer unboundedly. The incremental {!decoder} turns a TCP byte
    stream back into complete payloads.

    {2 Payloads}

    A request payload is a header line
    [<id> <verb> [<tenant>] [trace=<n>]] followed by an optional body
    ([estimate]/[explain]: one query line; [batch]: one query per
    line). [id] is an arbitrary nonnegative integer the client uses to
    match responses to requests — the server echoes it verbatim, and
    per-tenant responses can overtake each other across tenants, so
    clients must not assume ordering.

    The optional trailing [trace=<n>] token is the client's trace
    context: the server threads it connection → tenant queue → batch →
    {!Xtwig.Engine.estimate_batch}, so the request's server-side spans
    ([serve.queue_wait], [serve.batch], [engine.query], [plan.*])
    carry the client's id in one Chrome trace. Without the token the
    wire format is byte-identical to the pre-trace protocol.

    A response payload is [<id> ok] followed by the body, or
    [<id> err <class> <message>] where [class] is the stable token of
    the {!Xtwig.Xerror} constructor ({!error_class}) — a shed request
    under overload is [err overload ...], a well-formed, typed answer,
    never a closed socket.

    {2 Answers on the wire}

    Each estimate travels as [<estimate> <fallback> <reason>] where
    [estimate] is the hexadecimal float literal ([%h]) of the engine's
    answer — decoding it yields the {e bit-identical} float, which is
    what lets the differential tests compare served answers against
    direct {!Xtwig.Engine} calls byte for byte. *)

type update_op =
  | Ins of { parent : int; fragment_xml : string }
      (** graft the parsed fragment as a new last child of [parent] *)
  | Del of int  (** remove the subtree rooted at this node *)

type request =
  | Ping
  | List  (** one body line per tenant: [name generation backend bytes] *)
  | Metrics  (** body = the Prometheus rendering of the registry *)
  | Stats of string  (** body = [key value] lines of {!Xtwig.Engine.stats} *)
  | Reload of string
      (** re-open the tenant's engine from its source files; body =
          the new generation number. Acts as an ordering barrier in
          the tenant's queue. *)
  | Update of { tenant : string; op : update_op }
      (** apply a subtree insert/delete to the tenant's document and
          swap in the incrementally maintained sketch
          ({!Xtwig.update_session}); body = the new generation number.
          Wire body: [insert <parent>] followed by the fragment XML on
          the remaining lines, or [delete <node>]. Barriers the
          tenant's queue exactly like [Reload]. *)
  | Estimate of { tenant : string; query : string; trace : int option }
  | Batch of { tenant : string; queries : string list; trace : int option }
  | Explain of { tenant : string; query : string; trace : int option }
      (** one query, answered with its provenance (plan tier, embedding
          count, retries, fallback reason) — see {!encode_provenance} *)
  | Optimize of { tenant : string; query : string; trace : int option }
      (** one query, answered with its cost-based branch-order plan —
          see {!encode_plan} *)

type response = Reply of string | Fail of Xtwig.Xerror.t

val max_frame : int
(** 16 MiB. *)

val frame : string -> string
(** [frame payload] is the wire bytes: length prefix + payload.
    Raises [Invalid_argument] on payloads over {!max_frame} (a local
    programming error, not a peer input). *)

(** {1 Incremental frame decoding} *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. *)

val next_frame : decoder -> (string option, string) result
(** [Ok (Some payload)] per complete frame (call repeatedly),
    [Ok None] when more bytes are needed, [Error _] on an oversized
    length prefix — the connection is poisoned and must be closed. *)

(** {1 Codec} *)

val encode_request : id:int -> request -> string
val decode_request : string -> (int * request, string) result
val encode_response : id:int -> response -> string
val decode_response : string -> (int * response, string) result

val error_class : Xtwig.Xerror.t -> string
(** [usage], [parse-xml], [parse-path], [parse-twig], [io],
    [sketch-format], [corrupt], [engine] or [overload]. *)

type wire_answer = { estimate : float; fallback : bool; reason : string }
(** [reason] is [-] when the answer did not degrade, else [timeout],
    [fault], [circuit-open] or [guard]. *)

val encode_answer : Xtwig.Engine.answer -> string
val decode_answer : string -> (wire_answer, string) result

val encode_provenance : Xtwig.Engine.provenance -> string
(** The [explain] reply body: one [key value] pair per line — [answer]
    (in the {!encode_answer} wire format, so estimates stay
    byte-comparable), [backend], [tier] ({!Xtwig.Engine.tier_label}),
    [embeddings], [retries], [fallback_reason], [elapsed_us],
    [trace_id]. *)

val encode_plan : Xtwig.Opt.plan -> string
(** The [optimize] reply body: {!Xtwig.Opt.to_lines} joined with
    newlines — [cost], [default_cost], [changed], [fallback], then one
    [order <node> <i...>] line per reordered twig node. Byte-equal to
    rendering the same plan locally, so served plans diff cleanly
    against direct {!Xtwig.optimize} calls. *)

val provenance_field : string -> string -> string option
(** [provenance_field body key] is the value of [key] in an explain
    (or optimize) reply body, if present. *)

(** {1 Client}

    A blocking client for tests, the load generator and operators.
    One thread may send while another receives (the open-loop bench
    does exactly that); two threads must not share a direction. *)

module Client : sig
  type t

  val connect_unix : string -> (t, Xtwig.Xerror.t) result
  val connect_tcp : string -> int -> (t, Xtwig.Xerror.t) result

  val send : t -> id:int -> request -> (unit, Xtwig.Xerror.t) result

  val recv : t -> (int * response, Xtwig.Xerror.t) result
  (** Blocks for the next complete response frame. [Xerror.Io] on
      EOF or a malformed frame. *)

  val call : t -> id:int -> request -> (response, Xtwig.Xerror.t) result
  (** [send] then [recv], checking the echoed id. Only valid when no
      other requests are in flight on this client. *)

  val close : t -> unit
end
