module Xerror = Xtwig.Xerror
module Engine = Xtwig.Engine
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module Log = Xtwig_obs.Log
module Slo = Xtwig_obs.Slo
module Fault = Xtwig_fault.Fault

type config = {
  listen : [ `Unix of string | `Tcp of string * int ];
  jobs : int;
  timeout_s : float;
  queue_cap : int;
  slo : (string * Slo.objective) list;
}

let default_config =
  {
    listen = `Unix "xtwigd.sock";
    jobs = 1;
    timeout_s = 5.0;
    queue_cap = 64;
    slo = [];
  }

(* ---------------- metrics ---------------- *)

let m_accepted = Metrics.counter "serve.accepted"
let m_conns = Metrics.gauge "serve.connections"
let m_uncaught = Metrics.counter "serve.uncaught"
let m_request verb = Metrics.counter ~labels:[ ("verb", verb) ] "serve.requests"
let m_shed tenant = Metrics.counter ~labels:[ ("tenant", tenant) ] "serve.shed"

let m_reloads tenant =
  Metrics.counter ~labels:[ ("tenant", tenant) ] "serve.reloads"

let m_updates tenant =
  Metrics.counter ~labels:[ ("tenant", tenant) ] "serve.updates"

let g_queue tenant =
  Metrics.gauge
    ~help:"requests currently parked in the tenant's queue"
    ~labels:[ ("tenant", tenant) ]
    "serve.queue_depth"

let h_request = Metrics.histogram "serve.request.seconds"

(* the per-request phase breakdown: queue_wait (enqueue to drain),
   coalesce (drain to engine submit), execute (the engine call) and
   write (response enqueued to frame flushed), each labeled so a p999
   spike in the request histogram is attributable to one phase *)
let h_phase phase tenant =
  Metrics.histogram
    ~help:"per-request phase latency (queue_wait/coalesce/execute/write)"
    ~labels:[ ("phase", phase); ("tenant", tenant) ]
    "serve.phase.seconds"

let ns_to_s ns = Int64.to_float ns /. 1e9

(* ---------------- connections ---------------- *)

(* a queued output frame; [on_flush] fires when its last byte reaches
   the socket (the end of the request's write phase) *)
type out_frame = { bytes : string; on_flush : (unit -> unit) option }

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  outq : out_frame Queue.t;  (* frames waiting to be written *)
  mutable out_off : int;  (* consumed prefix of the head frame *)
  mutable alive : bool;
  rbuf : Bytes.t;
}

type item = {
  conn : conn;
  id : int;
  tenant : string;
  verb : string;
  trace : int option;  (* client-supplied trace context, if any *)
  work :
    [ `Batch of Xtwig.twig list
    | `Explain of Xtwig.twig
    | `Optimize of Xtwig.twig
    | `Reload
    | `Update of Xtwig.delta ];
  enqueued_at : float;
  enq_ns : int64;  (* trace-clock enqueue time, for the phase spans *)
}

type t = {
  cfg : config;
  cat : Catalog.t;
  slo : Slo.t;
  listen_fd : Unix.file_descr;
  unix_path : string option;
  stopping : bool Atomic.t;
  mutable conns : conn list;
  queues : (string, item Queue.t) Hashtbl.t;
  breaker_seen : (string, string) Hashtbl.t;
      (* last observed breaker state per tenant, to log transitions *)
}

let catalog t = t.cat
let slo t = t.slo

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

let stop t = Atomic.set t.stopping true

(* ---------------- setup ---------------- *)

let bind_listen = function
  | `Unix path ->
      (* replace a stale socket file; refuse to unlink anything else *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> failwith (path ^ " exists and is not a socket")
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | `Tcp (host, p) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, p));
      Unix.listen fd 64;
      (fd, None)

let create cfg tenants =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Catalog.create ~jobs:cfg.jobs ~timeout_s:cfg.timeout_s tenants with
  | Error e -> Error e
  | Ok cat -> (
      match bind_listen cfg.listen with
      | fd, unix_path ->
          Unix.set_nonblock fd;
          Ok
            {
              cfg;
              cat;
              slo = Slo.create cfg.slo;
              listen_fd = fd;
              unix_path;
              stopping = Atomic.make false;
              conns = [];
              queues = Hashtbl.create 16;
              breaker_seen = Hashtbl.create 16;
            }
      | exception exn ->
          Catalog.close cat;
          Error (Xerror.Io (Printexc.to_string exn)))

(* ---------------- output ---------------- *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Log.debug ~fields:[ ("conns", Log.I (List.length t.conns - 1)) ]
      "serve.conn_closed";
    Metrics.set m_conns (float_of_int (List.length t.conns - 1))
  end

let respond ?on_flush conn ~id resp =
  if conn.alive then
    Queue.add
      { bytes = Protocol.frame (Protocol.encode_response ~id resp); on_flush }
      conn.outq

(* drain as much pending output as the socket accepts; connection
   failures (peer gone, injected serve.write fault) drop the conn *)
let flush_conn t conn =
  try
    Fault.point "serve.write";
    let progress = ref true in
    while conn.alive && !progress && not (Queue.is_empty conn.outq) do
      let head = Queue.peek conn.outq in
      let remaining = String.length head.bytes - conn.out_off in
      match Unix.write_substring conn.fd head.bytes conn.out_off remaining with
      | 0 -> progress := false
      | n ->
          if n = remaining then begin
            ignore (Queue.pop conn.outq);
            conn.out_off <- 0;
            match head.on_flush with None -> () | Some f -> f ()
          end
          else begin
            conn.out_off <- conn.out_off + n;
            progress := false
          end
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          progress := false
    done
  with
  | Fault.Injected _ | Unix.Unix_error _ -> close_conn t conn

(* ---------------- request handling ---------------- *)

let queue_of t tenant =
  match Hashtbl.find_opt t.queues tenant with
  | Some q -> q
  | None ->
      let q = Queue.create ()
      in
      Hashtbl.add t.queues tenant q;
      q

(* the queue-depth gauge mirrors the queue after EVERY mutation —
   enqueue (including reloads, which bypass admission), each drain
   pop, and shed decisions (which leave the length unchanged but must
   re-publish it: the shed path used to leave depth accounting to the
   next drain) *)
let refresh_queue_gauge t tenant =
  let depth =
    match Hashtbl.find_opt t.queues tenant with
    | Some q -> Queue.length q
    | None -> 0
  in
  Metrics.set (g_queue tenant) (float_of_int depth)

let trace_args it =
  match it.trace with
  | Some tid -> [ ("trace_id", string_of_int tid) ]
  | None -> []

(* outcome accounting when a request's response is enqueued: request
   histogram, phase histograms + X spans, SLO classification, and the
   access-log record (emitted from the write-flush callback so it can
   carry the complete phase breakdown including the write) *)
let finish_item t it ~run_start_ns ~exec_start_ns ~exec_end_ns resp =
  let latency_s = Unix.gettimeofday () -. it.enqueued_at in
  Metrics.observe h_request latency_s;
  let queue_wait_ns = Int64.sub run_start_ns it.enq_ns in
  let coalesce_ns = Int64.sub exec_start_ns run_start_ns in
  let exec_ns = Int64.sub exec_end_ns exec_start_ns in
  Metrics.observe (h_phase "queue_wait" it.tenant) (ns_to_s queue_wait_ns);
  Metrics.observe (h_phase "coalesce" it.tenant) (ns_to_s coalesce_ns);
  Metrics.observe (h_phase "execute" it.tenant) (ns_to_s exec_ns);
  let args = trace_args it in
  Trace.complete ~args ~name:"serve.queue_wait" ~start_ns:it.enq_ns
    ~dur_ns:queue_wait_ns ();
  let status, outcome =
    match resp with
    | Protocol.Reply body ->
        (* a served answer degrades the SLO outcome iff any answer in
           the body carries the fallback flag ("<est> 1 <reason>") *)
        let degraded =
          List.exists
            (fun line ->
              match Protocol.decode_answer line with
              | Ok a -> a.Protocol.fallback
              | Error _ -> false)
            (if body = "" then [] else String.split_on_char '\n' body)
        in
        ( "ok",
          if degraded then Slo.Served_degraded else Slo.Served_ok )
    | Protocol.Fail e -> (
        match e with
        | Xerror.Overload _ -> (Protocol.error_class e, Slo.Shed)
        | _ -> (Protocol.error_class e, Slo.Failed))
  in
  Slo.record t.slo ~tenant:it.tenant ~latency_s outcome;
  let write_start_ns = Trace.now_ns () in
  let frame_bytes =
    String.length (Protocol.encode_response ~id:it.id resp) + 4
  in
  let on_flush () =
    let write_ns = Int64.sub (Trace.now_ns ()) write_start_ns in
    Metrics.observe (h_phase "write" it.tenant) (ns_to_s write_ns);
    Trace.complete ~args ~name:"serve.write" ~start_ns:write_start_ns
      ~dur_ns:write_ns ();
    Log.info "serve.access"
      ~fields:
        ([
           ("tenant", Log.S it.tenant);
           ("verb", Log.S it.verb);
           ("id", Log.I it.id);
           ("status", Log.S status);
           ("bytes", Log.I frame_bytes);
         ]
        @ (match it.trace with
          | Some tid -> [ ("trace_id", Log.I tid) ]
          | None -> [])
        @ [
            ("queue_wait_us", Log.F (Int64.to_float queue_wait_ns /. 1e3));
            ("coalesce_us", Log.F (Int64.to_float coalesce_ns /. 1e3));
            ("execute_us", Log.F (Int64.to_float exec_ns /. 1e3));
            ("write_us", Log.F (Int64.to_float write_ns /. 1e3));
            ("total_ms", Log.F (latency_s *. 1e3));
          ])
  in
  respond ~on_flush it.conn ~id:it.id resp

let stats_body t tn tenant =
  let st = Engine.stats (Catalog.engine tn) in
  let breaker =
    match Engine.breaker_state (Catalog.engine tn) with
    | `Closed -> "closed"
    | `Open -> "open"
    | `Half_open -> "half-open"
  in
  String.concat "\n"
    ([
       "name " ^ st.Engine.name;
       "backend " ^ st.Engine.backend;
       Printf.sprintf "generation %d" (Catalog.tenant_generation tn);
       Printf.sprintf "jobs %d" st.Engine.jobs;
       Printf.sprintf "sketch_bytes %d" st.Engine.sketch_bytes;
       Printf.sprintf "queries_served %d" st.Engine.queries_served;
       Printf.sprintf "batches %d" st.Engine.batches;
       Printf.sprintf "timeouts %d" st.Engine.timeouts;
       Printf.sprintf "retries %d" st.Engine.retries;
       Printf.sprintf "degraded %d" st.Engine.degraded;
       Printf.sprintf "breaker_trips %d" st.Engine.breaker_trips;
       "breaker " ^ breaker;
     ]
    @
    (* per-tenant SLO block: objective, attribution, burn rate *)
    [
      "slo_objective "
      ^ Slo.objective_text
          (Option.value (Slo.objective_of t.slo tenant) ~default:Slo.no_objective);
      Printf.sprintf "slo_burn_rate %.3f" (Slo.burn_rate t.slo tenant);
      Slo.report_tenant t.slo tenant;
    ])

let list_body t =
  String.concat "\n"
    (List.map
       (fun name ->
         match Catalog.find t.cat name with
         | Ok tn ->
             let st = Engine.stats (Catalog.engine tn) in
             Printf.sprintf "%s %d %s %d" name
               (Catalog.tenant_generation tn)
               st.Engine.backend st.Engine.sketch_bytes
         | Error _ -> name)
       (Catalog.names t.cat))

(* parse every query of a batch up front: a malformed query rejects
   the whole request before it costs any engine work *)
let parse_queries qs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | q :: rest -> (
        match Xtwig.twig_of_string q with
        | Ok tw -> go (tw :: acc) rest
        | Error e -> Error e)
  in
  go [] qs

let admit t tn it =
  let q = queue_of t it.tenant in
  if Queue.length q >= t.cfg.queue_cap then
    Error
      (Xerror.Overload
         (Printf.sprintf "tenant %s: queue full (%d pending)" it.tenant
            (Queue.length q)))
  else if Engine.breaker_state (Catalog.engine tn) = `Open then
    Error (Xerror.Overload (Printf.sprintf "tenant %s: circuit breaker open" it.tenant))
  else begin
    Queue.add it q;
    refresh_queue_gauge t it.tenant;
    Ok ()
  end

let rec handle_request t conn id req =
  let now = Unix.gettimeofday () in
  match req with
  | Protocol.Ping ->
      Metrics.incr (m_request "ping");
      respond conn ~id (Protocol.Reply ("pong " ^ Xtwig.version))
  | Protocol.List ->
      Metrics.incr (m_request "list");
      respond conn ~id (Protocol.Reply (list_body t))
  | Protocol.Metrics ->
      Metrics.incr (m_request "metrics");
      respond conn ~id (Protocol.Reply (Xtwig.metrics_render ()))
  | Protocol.Stats tenant -> (
      Metrics.incr (m_request "stats");
      match Catalog.find t.cat tenant with
      | Ok tn -> respond conn ~id (Protocol.Reply (stats_body t tn tenant))
      | Error e -> respond conn ~id (Protocol.Fail e))
  | Protocol.Reload tenant -> (
      Metrics.incr (m_request "reload");
      match Catalog.find t.cat tenant with
      | Ok _ ->
          (* not subject to the queue cap: the control plane must be
             able to reload a tenant that is drowning *)
          Queue.add
            {
              conn;
              id;
              tenant;
              verb = "reload";
              trace = None;
              work = `Reload;
              enqueued_at = now;
              enq_ns = Trace.now_ns ();
            }
            (queue_of t tenant);
          refresh_queue_gauge t tenant
      | Error e -> respond conn ~id (Protocol.Fail e))
  | Protocol.Update { tenant; op } -> (
      Metrics.incr (m_request "update");
      match Catalog.find t.cat tenant with
      | Error e -> respond conn ~id (Protocol.Fail e)
      | Ok _ -> (
          (* parse the fragment up front: a malformed fragment is the
             client's error before it reaches the queue *)
          let delta =
            match op with
            | Protocol.Del node -> Ok (Xtwig.Delete node)
            | Protocol.Ins { parent; fragment_xml } ->
                Result.map
                  (fun fragment -> Xtwig.Insert { parent; fragment })
                  (Xtwig.doc_of_string fragment_xml)
          in
          match delta with
          | Error e -> respond conn ~id (Protocol.Fail e)
          | Ok delta ->
              (* like reload, not subject to the queue cap: a document
                 mutation must not be shed behind a query flood *)
              Queue.add
                {
                  conn;
                  id;
                  tenant;
                  verb = "update";
                  trace = None;
                  work = `Update delta;
                  enqueued_at = now;
                  enq_ns = Trace.now_ns ();
                }
                (queue_of t tenant);
              refresh_queue_gauge t tenant))
  | Protocol.Estimate { tenant; query; trace } ->
      Metrics.incr (m_request "estimate");
      enqueue_work t conn id tenant ~verb:"estimate" ~trace
        (`Queries [ query ]) now
  | Protocol.Batch { tenant; queries; trace } ->
      Metrics.incr (m_request "batch");
      enqueue_work t conn id tenant ~verb:"batch" ~trace (`Queries queries) now
  | Protocol.Explain { tenant; query; trace } ->
      Metrics.incr (m_request "explain");
      enqueue_work t conn id tenant ~verb:"explain" ~trace (`One query) now
  | Protocol.Optimize { tenant; query; trace } ->
      Metrics.incr (m_request "optimize");
      enqueue_work t conn id tenant ~verb:"optimize" ~trace (`Opt query) now

and enqueue_work t conn id tenant ~verb ~trace payload now =
  match Catalog.find t.cat tenant with
  | Error e -> respond conn ~id (Protocol.Fail e)
  | Ok tn -> (
      let work =
        match payload with
        | `Queries qs -> Result.map (fun ts -> `Batch ts) (parse_queries qs)
        | `One q -> Result.map (fun tw -> `Explain tw) (Xtwig.twig_of_string q)
        | `Opt q -> Result.map (fun tw -> `Optimize tw) (Xtwig.twig_of_string q)
      in
      match work with
      | Error e -> respond conn ~id (Protocol.Fail e)
      | Ok (`Batch []) -> respond conn ~id (Protocol.Reply "")
      | Ok work -> (
          let it =
            {
              conn;
              id;
              tenant;
              verb;
              trace;
              work;
              enqueued_at = now;
              enq_ns = Trace.now_ns ();
            }
          in
          match admit t tn it with
          | Ok () -> ()
          | Error e ->
              Metrics.incr (m_shed tenant);
              refresh_queue_gauge t tenant;
              Slo.record t.slo ~tenant Slo.Shed;
              Log.warn "serve.shed"
                ~fields:
                  [
                    ("tenant", Log.S tenant);
                    ("verb", Log.S verb);
                    ("id", Log.I id);
                    ( "depth",
                      Log.I
                        (match Hashtbl.find_opt t.queues tenant with
                        | Some q -> Queue.length q
                        | None -> 0) );
                  ];
              respond conn ~id (Protocol.Fail e)))

(* ---------------- queue processing ---------------- *)

(* log circuit-breaker transitions observed after engine work: the
   breaker lives inside the engine, so the serving layer notices state
   changes at the drain boundary *)
let note_breaker t tenant_name =
  match Catalog.find t.cat tenant_name with
  | Error _ -> ()
  | Ok tn ->
      let state =
        match Engine.breaker_state (Catalog.engine tn) with
        | `Closed -> "closed"
        | `Open -> "open"
        | `Half_open -> "half-open"
      in
      let prev = Hashtbl.find_opt t.breaker_seen tenant_name in
      if prev <> Some state then begin
        Hashtbl.replace t.breaker_seen tenant_name state;
        if prev <> None then
          Log.warn "serve.breaker"
            ~fields:
              [
                ("tenant", Log.S tenant_name);
                ("from", Log.S (Option.value prev ~default:"?"));
                ("to", Log.S state);
              ]
      end

(* the trace context of a coalesced run: the first client-supplied id
   in arrival order (an uncontended run has at most one) *)
let run_trace_id items = List.find_map (fun it -> it.trace) items

(* answer a coalesced run of batch items with one engine call; the
   engine returns answers in query order, so slicing them back per
   request preserves each request's order. The run's coalesce and
   execute phase times are shared by its items — one engine call
   served them all. *)
let process_run t tenant_name ~run_start_ns (items : item list) =
  match Catalog.find t.cat tenant_name with
  | Error e ->
      let ts = Trace.now_ns () in
      List.iter
        (fun it ->
          finish_item t it ~run_start_ns ~exec_start_ns:ts ~exec_end_ns:ts
            (Protocol.Fail e))
        items
  | Ok tn -> (
      let queries =
        List.concat_map
          (fun it ->
            match it.work with
            | `Batch qs -> qs
            | `Explain _ | `Optimize _ | `Reload | `Update _ -> [])
          items
      in
      let trace_id = run_trace_id items in
      let exec_start_ns = Trace.now_ns () in
      let finish_all resp_of =
        let exec_end_ns = Trace.now_ns () in
        List.iter
          (fun it ->
            finish_item t it ~run_start_ns ~exec_start_ns ~exec_end_ns
              (resp_of it))
          items
      in
      match
        Trace.with_span ~name:"serve.batch"
          ~args:
            ((match trace_id with
             | Some tid -> [ ("trace_id", string_of_int tid) ]
             | None -> [])
            @ [
                ("tenant", tenant_name);
                ("queries", string_of_int (List.length queries));
              ])
        @@ fun () ->
        Fault.point "serve.batch";
        Engine.estimate_batch ?trace_id (Catalog.engine tn) queries
      with
      | Ok answers ->
          let rest = ref answers in
          finish_all (fun it ->
              match it.work with
              | `Reload | `Explain _ | `Optimize _ | `Update _ -> assert false
              | `Batch qs ->
                  let n = List.length qs in
                  let mine = List.filteri (fun i _ -> i < n) !rest in
                  rest := List.filteri (fun i _ -> i >= n) !rest;
                  Protocol.Reply
                    (String.concat "\n" (List.map Protocol.encode_answer mine)));
          note_breaker t tenant_name
      | Error e ->
          finish_all (fun _ -> Protocol.Fail e);
          note_breaker t tenant_name
      | exception Fault.Injected { point; _ } ->
          let e = Xerror.Engine ("injected fault at " ^ point) in
          finish_all (fun _ -> Protocol.Fail e))

(* an explain runs alone (its own engine call), but inside the normal
   queue so it observes the reload barrier ordering *)
let process_explain t tenant_name ~run_start_ns it q =
  match Catalog.find t.cat tenant_name with
  | Error e ->
      let ts = Trace.now_ns () in
      finish_item t it ~run_start_ns ~exec_start_ns:ts ~exec_end_ns:ts
        (Protocol.Fail e)
  | Ok tn -> (
      let exec_start_ns = Trace.now_ns () in
      let finish resp =
        finish_item t it ~run_start_ns ~exec_start_ns
          ~exec_end_ns:(Trace.now_ns ()) resp
      in
      match
        Fault.point "serve.batch";
        Engine.explain ?trace_id:it.trace (Catalog.engine tn) q
      with
      | Ok p ->
          finish (Protocol.Reply (Protocol.encode_provenance p));
          note_breaker t tenant_name
      | Error e ->
          finish (Protocol.Fail e);
          note_breaker t tenant_name
      | exception Fault.Injected { point; _ } ->
          finish (Protocol.Fail (Xerror.Engine ("injected fault at " ^ point))))

(* an optimize also runs alone inside the queue (barrier-ordered like
   explain). Planning itself is total — an [opt.plan] fault degrades
   to the identity plan with [fallback true], never an error — so the
   only failure modes here are an unknown tenant or a backend without
   a sketch to cost against. *)
let process_optimize t tenant_name ~run_start_ns it q =
  match Catalog.find t.cat tenant_name with
  | Error e ->
      let ts = Trace.now_ns () in
      finish_item t it ~run_start_ns ~exec_start_ns:ts ~exec_end_ns:ts
        (Protocol.Fail e)
  | Ok tn -> (
      let exec_start_ns = Trace.now_ns () in
      let finish resp =
        finish_item t it ~run_start_ns ~exec_start_ns
          ~exec_end_ns:(Trace.now_ns ()) resp
      in
      match
        Trace.with_span ~name:"serve.optimize"
          ~args:[ ("tenant", tenant_name) ]
        @@ fun () ->
        let sk = Engine.sketch (Catalog.engine tn) in
        Xtwig.optimize sk q
      with
      | plan -> finish (Protocol.Reply (Protocol.encode_plan plan))
      | exception Invalid_argument _ ->
          finish
            (Protocol.Fail
               (Xerror.Usage
                  ("tenant " ^ tenant_name
                 ^ " serves a sketch-less backend; optimize needs xsketch"))))

let process_reload t tenant_name it =
  match
    Fault.point "serve.reload";
    Catalog.reload t.cat tenant_name
  with
  | Ok generation ->
      Metrics.incr (m_reloads tenant_name);
      Log.info "serve.reload"
        ~fields:
          [ ("tenant", Log.S tenant_name); ("generation", Log.I generation) ];
      Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
      respond it.conn ~id:it.id (Protocol.Reply (string_of_int generation))
  | Error e ->
      Log.error "serve.reload_failed"
        ~fields:
          [
            ("tenant", Log.S tenant_name);
            ("error", Log.S (Xerror.to_string e));
          ];
      Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
      respond it.conn ~id:it.id (Protocol.Fail e)
  | exception Fault.Injected { point; _ } ->
      Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
      respond it.conn ~id:it.id
        (Protocol.Fail (Xerror.Engine ("injected fault at " ^ point)))

(* an update barriers the queue like a reload: batches enqueued before
   it are answered over the old document, batches after it over the
   new one — the engine core swaps between engine calls, never during
   one *)
let process_update t tenant_name it delta =
  match Catalog.update t.cat tenant_name delta with
  | Ok generation ->
      Metrics.incr (m_updates tenant_name);
      Log.info "serve.update"
        ~fields:
          [ ("tenant", Log.S tenant_name); ("generation", Log.I generation) ];
      Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
      respond it.conn ~id:it.id (Protocol.Reply (string_of_int generation))
  | Error e ->
      Log.error "serve.update_failed"
        ~fields:
          [
            ("tenant", Log.S tenant_name);
            ("error", Log.S (Xerror.to_string e));
          ];
      Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
      respond it.conn ~id:it.id (Protocol.Fail e)

let drain_queue t tenant_name q =
  while not (Queue.is_empty q) do
    let run_start_ns = Trace.now_ns () in
    (* take the maximal prefix of estimate/batch items: one engine
       call for the whole run; an explain runs alone; a reload is
       processed alone, so it barriers the queue *)
    let run = ref [] in
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty q) do
      match (Queue.peek q).work with
      | `Batch _ -> run := Queue.pop q :: !run
      | `Explain _ | `Optimize _ | `Reload | `Update _ -> stop := true
    done;
    refresh_queue_gauge t tenant_name;
    (match List.rev !run with
    | [] -> ()
    | items -> process_run t tenant_name ~run_start_ns items);
    if not (Queue.is_empty q) then begin
      match (Queue.peek q).work with
      | `Explain tw ->
          let it = Queue.pop q in
          refresh_queue_gauge t tenant_name;
          process_explain t tenant_name ~run_start_ns:it.enq_ns it tw
      | `Optimize tw ->
          let it = Queue.pop q in
          refresh_queue_gauge t tenant_name;
          process_optimize t tenant_name ~run_start_ns:it.enq_ns it tw
      | `Reload ->
          let it = Queue.pop q in
          refresh_queue_gauge t tenant_name;
          process_reload t tenant_name it
      | `Update delta ->
          let it = Queue.pop q in
          refresh_queue_gauge t tenant_name;
          process_update t tenant_name it delta
      | `Batch _ -> ()
    end
  done;
  refresh_queue_gauge t tenant_name

let process_queues t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.queues name with
      | Some q when not (Queue.is_empty q) -> drain_queue t name q
      | _ -> ())
    (Catalog.names t.cat)

(* ---------------- input ---------------- *)

let handle_frame t conn payload =
  match
    Fault.point "serve.decode";
    Protocol.decode_request payload
  with
  | Ok (id, req) -> handle_request t conn id req
  | Error msg -> (
      (* undecodable: answer on the id if the header carries one,
         otherwise the frame is unanswerable — drop it *)
      match String.split_on_char ' ' payload with
      | id :: _ when int_of_string_opt id <> None ->
          respond conn ~id:(int_of_string id) (Protocol.Fail (Xerror.Usage msg))
      | _ -> ())
  | exception Fault.Injected { point; _ } -> (
      match String.split_on_char ' ' payload with
      | id :: _ when int_of_string_opt id <> None ->
          respond conn ~id:(int_of_string id)
            (Protocol.Fail (Xerror.Engine ("injected fault at " ^ point)))
      | _ -> ())

let read_conn t conn =
  try
    Fault.point "serve.read";
    match Unix.read conn.fd conn.rbuf 0 (Bytes.length conn.rbuf) with
    | 0 -> close_conn t conn
    | n ->
        Trace.with_span ~name:"serve.read"
          ~args:[ ("bytes", string_of_int n) ]
        @@ fun () ->
        Protocol.feed conn.dec conn.rbuf n;
        let continue = ref true in
        while !continue && conn.alive do
          match Protocol.next_frame conn.dec with
          | Ok (Some payload) -> handle_frame t conn payload
          | Ok None -> continue := false
          | Error _ ->
              (* oversized frame: unrecoverable framing state *)
              close_conn t conn
        done
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  with
  | Fault.Injected _ | Unix.Unix_error _ -> close_conn t conn

let accept_conns t =
  let continue = ref true in
  while !continue do
    match
      Fault.point "serve.accept";
      Unix.accept ~cloexec:true t.listen_fd
    with
    | fd, _ ->
        Unix.set_nonblock fd;
        Metrics.incr m_accepted;
        let conn =
          {
            fd;
            dec = Protocol.decoder ();
            outq = Queue.create ();
            out_off = 0;
            alive = true;
            rbuf = Bytes.create 65536;
          }
        in
        t.conns <- conn :: t.conns;
        Log.debug ~fields:[ ("conns", Log.I (List.length t.conns)) ]
          "serve.conn_accepted";
        Metrics.set m_conns (float_of_int (List.length t.conns))
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        continue := false
    | exception Fault.Injected _ ->
        (* the pending connection stays in the backlog; the next tick
           will offer it again *)
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* ---------------- main loop ---------------- *)

let teardown t =
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Catalog.close t.cat;
  Metrics.set m_conns 0.0

let serve t =
  while not (Atomic.get t.stopping) do
    (try
       let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
       let writes =
         List.filter_map
           (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
           t.conns
       in
       let readable, writable, _ =
         try Unix.select reads writes [] 0.05
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       if List.mem t.listen_fd readable then accept_conns t;
       List.iter
         (fun c ->
           if c.alive && List.mem c.fd readable then read_conn t c)
         t.conns;
       process_queues t;
       List.iter
         (fun c ->
           if c.alive && (List.mem c.fd writable || not (Queue.is_empty c.outq))
           then flush_conn t c)
         t.conns;
       t.conns <- List.filter (fun c -> c.alive) t.conns
     with exn ->
       (* nothing below should ever reach here; the chaos tests gate
          this counter at zero *)
       Metrics.incr m_uncaught;
       Log.error ~fields:[ ("exn", Log.S (Printexc.to_string exn)) ]
         "serve.uncaught";
       Printf.eprintf "xtwigd: uncaught %s\n%!" (Printexc.to_string exn));
    ()
  done;
  teardown t
