module Xerror = Xtwig.Xerror
module Engine = Xtwig.Engine
module Metrics = Xtwig_obs.Metrics
module Fault = Xtwig_fault.Fault

type config = {
  listen : [ `Unix of string | `Tcp of string * int ];
  jobs : int;
  timeout_s : float;
  queue_cap : int;
}

let default_config =
  { listen = `Unix "xtwigd.sock"; jobs = 1; timeout_s = 5.0; queue_cap = 64 }

(* ---------------- metrics ---------------- *)

let m_accepted = Metrics.counter "serve.accepted"
let m_conns = Metrics.gauge "serve.connections"
let m_uncaught = Metrics.counter "serve.uncaught"
let m_request verb = Metrics.counter ~labels:[ ("verb", verb) ] "serve.requests"
let m_shed tenant = Metrics.counter ~labels:[ ("tenant", tenant) ] "serve.shed"

let m_reloads tenant =
  Metrics.counter ~labels:[ ("tenant", tenant) ] "serve.reloads"

let g_queue tenant =
  Metrics.gauge ~labels:[ ("tenant", tenant) ] "serve.queue_depth"

let h_request = Metrics.histogram "serve.request.seconds"

(* ---------------- connections ---------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  outq : string Queue.t;  (* frames waiting to be written *)
  mutable out_off : int;  (* consumed prefix of the head frame *)
  mutable alive : bool;
  rbuf : Bytes.t;
}

type item = {
  conn : conn;
  id : int;
  work : [ `Batch of Xtwig.twig list | `Reload ];
  enqueued_at : float;
}

type t = {
  cfg : config;
  cat : Catalog.t;
  listen_fd : Unix.file_descr;
  unix_path : string option;
  stopping : bool Atomic.t;
  mutable conns : conn list;
  queues : (string, item Queue.t) Hashtbl.t;
}

let catalog t = t.cat

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

let stop t = Atomic.set t.stopping true

(* ---------------- setup ---------------- *)

let bind_listen = function
  | `Unix path ->
      (* replace a stale socket file; refuse to unlink anything else *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> failwith (path ^ " exists and is not a socket")
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | `Tcp (host, p) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, p));
      Unix.listen fd 64;
      (fd, None)

let create cfg tenants =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Catalog.create ~jobs:cfg.jobs ~timeout_s:cfg.timeout_s tenants with
  | Error e -> Error e
  | Ok cat -> (
      match bind_listen cfg.listen with
      | fd, unix_path ->
          Unix.set_nonblock fd;
          Ok
            {
              cfg;
              cat;
              listen_fd = fd;
              unix_path;
              stopping = Atomic.make false;
              conns = [];
              queues = Hashtbl.create 16;
            }
      | exception exn ->
          Catalog.close cat;
          Error (Xerror.Io (Printexc.to_string exn)))

(* ---------------- output ---------------- *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Metrics.set m_conns (float_of_int (List.length t.conns - 1))
  end

let respond conn ~id resp =
  if conn.alive then
    Queue.add (Protocol.frame (Protocol.encode_response ~id resp)) conn.outq

let finish_item it resp =
  Metrics.observe h_request (Unix.gettimeofday () -. it.enqueued_at);
  respond it.conn ~id:it.id resp

(* drain as much pending output as the socket accepts; connection
   failures (peer gone, injected serve.write fault) drop the conn *)
let flush_conn t conn =
  try
    Fault.point "serve.write";
    let progress = ref true in
    while conn.alive && !progress && not (Queue.is_empty conn.outq) do
      let head = Queue.peek conn.outq in
      let remaining = String.length head - conn.out_off in
      match Unix.write_substring conn.fd head conn.out_off remaining with
      | 0 -> progress := false
      | n ->
          if n = remaining then begin
            ignore (Queue.pop conn.outq);
            conn.out_off <- 0
          end
          else begin
            conn.out_off <- conn.out_off + n;
            progress := false
          end
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          progress := false
    done
  with
  | Fault.Injected _ | Unix.Unix_error _ -> close_conn t conn

(* ---------------- request handling ---------------- *)

let queue_of t tenant =
  match Hashtbl.find_opt t.queues tenant with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues tenant q;
      q

let stats_body tn =
  let st = Engine.stats (Catalog.engine tn) in
  let breaker =
    match Engine.breaker_state (Catalog.engine tn) with
    | `Closed -> "closed"
    | `Open -> "open"
    | `Half_open -> "half-open"
  in
  String.concat "\n"
    [
      "name " ^ st.Engine.name;
      "backend " ^ st.Engine.backend;
      Printf.sprintf "generation %d" (Catalog.tenant_generation tn);
      Printf.sprintf "jobs %d" st.Engine.jobs;
      Printf.sprintf "sketch_bytes %d" st.Engine.sketch_bytes;
      Printf.sprintf "queries_served %d" st.Engine.queries_served;
      Printf.sprintf "batches %d" st.Engine.batches;
      Printf.sprintf "timeouts %d" st.Engine.timeouts;
      Printf.sprintf "retries %d" st.Engine.retries;
      Printf.sprintf "degraded %d" st.Engine.degraded;
      Printf.sprintf "breaker_trips %d" st.Engine.breaker_trips;
      "breaker " ^ breaker;
    ]

let list_body t =
  String.concat "\n"
    (List.map
       (fun name ->
         match Catalog.find t.cat name with
         | Ok tn ->
             let st = Engine.stats (Catalog.engine tn) in
             Printf.sprintf "%s %d %s %d" name
               (Catalog.tenant_generation tn)
               st.Engine.backend st.Engine.sketch_bytes
         | Error _ -> name)
       (Catalog.names t.cat))

(* parse every query of a batch up front: a malformed query rejects
   the whole request before it costs any engine work *)
let parse_queries qs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | q :: rest -> (
        match Xtwig.twig_of_string q with
        | Ok tw -> go (tw :: acc) rest
        | Error e -> Error e)
  in
  go [] qs

let admit t tenant_name tn n_queued_item =
  let q = queue_of t tenant_name in
  if Queue.length q >= t.cfg.queue_cap then
    Error
      (Xerror.Overload
         (Printf.sprintf "tenant %s: queue full (%d pending)" tenant_name
            (Queue.length q)))
  else if Engine.breaker_state (Catalog.engine tn) = `Open then
    Error
      (Xerror.Overload
         (Printf.sprintf "tenant %s: circuit breaker open" tenant_name))
  else begin
    Queue.add n_queued_item q;
    Metrics.set (g_queue tenant_name) (float_of_int (Queue.length q));
    Ok ()
  end

let rec handle_request t conn id req =
  let now = Unix.gettimeofday () in
  match req with
  | Protocol.Ping ->
      Metrics.incr (m_request "ping");
      respond conn ~id (Protocol.Reply ("pong " ^ Xtwig.version))
  | Protocol.List ->
      Metrics.incr (m_request "list");
      respond conn ~id (Protocol.Reply (list_body t))
  | Protocol.Metrics ->
      Metrics.incr (m_request "metrics");
      respond conn ~id (Protocol.Reply (Xtwig.metrics_render ()))
  | Protocol.Stats tenant -> (
      Metrics.incr (m_request "stats");
      match Catalog.find t.cat tenant with
      | Ok tn -> respond conn ~id (Protocol.Reply (stats_body tn))
      | Error e -> respond conn ~id (Protocol.Fail e))
  | Protocol.Reload tenant -> (
      Metrics.incr (m_request "reload");
      match Catalog.find t.cat tenant with
      | Ok _ ->
          (* not subject to the queue cap: the control plane must be
             able to reload a tenant that is drowning *)
          Queue.add
            { conn; id; work = `Reload; enqueued_at = now }
            (queue_of t tenant)
      | Error e -> respond conn ~id (Protocol.Fail e))
  | Protocol.Estimate { tenant; query } ->
      Metrics.incr (m_request "estimate");
      enqueue_batch t conn id tenant [ query ] now
  | Protocol.Batch { tenant; queries } ->
      Metrics.incr (m_request "batch");
      enqueue_batch t conn id tenant queries now

and enqueue_batch t conn id tenant queries now =
  match Catalog.find t.cat tenant with
  | Error e -> respond conn ~id (Protocol.Fail e)
  | Ok tn -> (
      match parse_queries queries with
      | Error e -> respond conn ~id (Protocol.Fail e)
      | Ok [] -> respond conn ~id (Protocol.Reply "")
      | Ok twigs -> (
          match
            admit t tenant tn { conn; id; work = `Batch twigs; enqueued_at = now }
          with
          | Ok () -> ()
          | Error e ->
              Metrics.incr (m_shed tenant);
              respond conn ~id (Protocol.Fail e)))

(* ---------------- queue processing ---------------- *)

(* answer a coalesced run of batch items with one engine call; the
   engine returns answers in query order, so slicing them back per
   request preserves each request's order *)
let process_run t tenant_name (items : item list) =
  match Catalog.find t.cat tenant_name with
  | Error e -> List.iter (fun it -> finish_item it (Protocol.Fail e)) items
  | Ok tn -> (
      let queries =
        List.concat_map
          (fun it -> match it.work with `Batch qs -> qs | `Reload -> [])
          items
      in
      match
        Fault.point "serve.batch";
        Engine.estimate_batch (Catalog.engine tn) queries
      with
      | Ok answers ->
          let rest = ref answers in
          List.iter
            (fun it ->
              match it.work with
              | `Reload -> ()
              | `Batch qs ->
                  let n = List.length qs in
                  let mine = List.filteri (fun i _ -> i < n) !rest in
                  rest := List.filteri (fun i _ -> i >= n) !rest;
                  finish_item it
                    (Protocol.Reply
                       (String.concat "\n" (List.map Protocol.encode_answer mine))))
            items
      | Error e -> List.iter (fun it -> finish_item it (Protocol.Fail e)) items
      | exception Fault.Injected { point; _ } ->
          let e = Xerror.Engine ("injected fault at " ^ point) in
          List.iter (fun it -> finish_item it (Protocol.Fail e)) items)

let process_reload t tenant_name it =
  match
    Fault.point "serve.reload";
    Catalog.reload t.cat tenant_name
  with
  | Ok generation ->
      Metrics.incr (m_reloads tenant_name);
      finish_item it (Protocol.Reply (string_of_int generation))
  | Error e -> finish_item it (Protocol.Fail e)
  | exception Fault.Injected { point; _ } ->
      finish_item it (Protocol.Fail (Xerror.Engine ("injected fault at " ^ point)))

let drain_queue t tenant_name q =
  while not (Queue.is_empty q) do
    (* take the maximal prefix of estimate/batch items: one engine
       call for the whole run; a reload is processed alone, so it
       barriers the queue *)
    let run = ref [] in
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty q) do
      match (Queue.peek q).work with
      | `Batch _ -> run := Queue.pop q :: !run
      | `Reload -> stop := true
    done;
    (match List.rev !run with
    | [] -> ()
    | items -> process_run t tenant_name items);
    if (not (Queue.is_empty q)) && (Queue.peek q).work = `Reload then
      process_reload t tenant_name (Queue.pop q)
  done;
  Metrics.set (g_queue tenant_name) 0.0

let process_queues t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.queues name with
      | Some q when not (Queue.is_empty q) -> drain_queue t name q
      | _ -> ())
    (Catalog.names t.cat)

(* ---------------- input ---------------- *)

let handle_frame t conn payload =
  match
    Fault.point "serve.decode";
    Protocol.decode_request payload
  with
  | Ok (id, req) -> handle_request t conn id req
  | Error msg -> (
      (* undecodable: answer on the id if the header carries one,
         otherwise the frame is unanswerable — drop it *)
      match String.split_on_char ' ' payload with
      | id :: _ when int_of_string_opt id <> None ->
          respond conn ~id:(int_of_string id) (Protocol.Fail (Xerror.Usage msg))
      | _ -> ())
  | exception Fault.Injected { point; _ } -> (
      match String.split_on_char ' ' payload with
      | id :: _ when int_of_string_opt id <> None ->
          respond conn ~id:(int_of_string id)
            (Protocol.Fail (Xerror.Engine ("injected fault at " ^ point)))
      | _ -> ())

let read_conn t conn =
  try
    Fault.point "serve.read";
    match Unix.read conn.fd conn.rbuf 0 (Bytes.length conn.rbuf) with
    | 0 -> close_conn t conn
    | n ->
        Protocol.feed conn.dec conn.rbuf n;
        let continue = ref true in
        while !continue && conn.alive do
          match Protocol.next_frame conn.dec with
          | Ok (Some payload) -> handle_frame t conn payload
          | Ok None -> continue := false
          | Error _ ->
              (* oversized frame: unrecoverable framing state *)
              close_conn t conn
        done
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  with
  | Fault.Injected _ | Unix.Unix_error _ -> close_conn t conn

let accept_conns t =
  let continue = ref true in
  while !continue do
    match
      Fault.point "serve.accept";
      Unix.accept ~cloexec:true t.listen_fd
    with
    | fd, _ ->
        Unix.set_nonblock fd;
        Metrics.incr m_accepted;
        let conn =
          {
            fd;
            dec = Protocol.decoder ();
            outq = Queue.create ();
            out_off = 0;
            alive = true;
            rbuf = Bytes.create 65536;
          }
        in
        t.conns <- conn :: t.conns;
        Metrics.set m_conns (float_of_int (List.length t.conns))
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        continue := false
    | exception Fault.Injected _ ->
        (* the pending connection stays in the backlog; the next tick
           will offer it again *)
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* ---------------- main loop ---------------- *)

let teardown t =
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Catalog.close t.cat;
  Metrics.set m_conns 0.0

let serve t =
  while not (Atomic.get t.stopping) do
    (try
       let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
       let writes =
         List.filter_map
           (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
           t.conns
       in
       let readable, writable, _ =
         try Unix.select reads writes [] 0.05
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       if List.mem t.listen_fd readable then accept_conns t;
       List.iter
         (fun c ->
           if c.alive && List.mem c.fd readable then read_conn t c)
         t.conns;
       process_queues t;
       List.iter
         (fun c ->
           if c.alive && (List.mem c.fd writable || not (Queue.is_empty c.outq))
           then flush_conn t c)
         t.conns;
       t.conns <- List.filter (fun c -> c.alive) t.conns
     with exn ->
       (* nothing below should ever reach here; the chaos tests gate
          this counter at zero *)
       Metrics.incr m_uncaught;
       Printf.eprintf "xtwigd: uncaught %s\n%!" (Printexc.to_string exn));
    ()
  done;
  teardown t
