module Xerror = Xtwig.Xerror
module Engine = Xtwig.Engine

let ( let* ) = Result.bind

type source = {
  doc_path : string;
  sketch_path : string option;
  backend : string;
  budget : int;
  seed : int;
}

let source ?sketch_path ?(backend = "xsketch") ?(budget = 8192) ?(seed = 42)
    doc_path =
  { doc_path; sketch_path; backend; budget; seed }

type tenant = {
  name : string;
  src : source;
  mutable doc : Xtwig.doc;
  mutable engine : Engine.t;
  mutable generation : int;
}

let tenant_name t = t.name
let tenant_generation t = t.generation
let engine t = t.engine
let tenant_doc t = t.doc

type t = {
  jobs : int;
  timeout_s : float;
  tenants : (string, tenant) Hashtbl.t;
  order : string list;
}

(* build-or-load the tenant's session from its source files; shared by
   the initial load and every reload *)
let open_session ~jobs ~timeout_s ~name src =
  let* doc = Xtwig.doc_of_file src.doc_path in
  let* eng =
    match String.lowercase_ascii src.backend with
    | "xsketch" ->
        let* sk =
          match src.sketch_path with
          | Some p -> Xtwig.load_sketch doc p
          | None -> Xtwig.build_sketch ~budget:src.budget ~seed:src.seed doc
        in
        Xtwig.open_sketch_session ~name ~jobs ~timeout_s sk
    | backend ->
        let* inst =
          match src.sketch_path with
          | Some p -> Xtwig.load_backend ~backend doc p
          | None -> Xtwig.build_backend ~backend ~budget:src.budget ~seed:src.seed doc
        in
        Xtwig.open_backend_session ~name ~jobs ~timeout_s inst
  in
  Ok (doc, eng)

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       n

let create ?(jobs = 1) ?(timeout_s = 5.0) specs =
  let tenants = Hashtbl.create 16 in
  let close_all () =
    Hashtbl.iter (fun _ t -> Engine.close t.engine) tenants
  in
  let rec load = function
    | [] -> Ok ()
    | (name, src) :: rest ->
        let* () =
          if not (valid_name name) then
            Error (Xerror.Usage ("bad tenant name " ^ name))
          else if Hashtbl.mem tenants name then
            Error (Xerror.Usage ("duplicate tenant " ^ name))
          else Ok ()
        in
        let* doc, engine = open_session ~jobs ~timeout_s ~name src in
        Hashtbl.add tenants name { name; src; doc; engine; generation = 1 };
        load rest
  in
  match load specs with
  | Ok () -> Ok { jobs; timeout_s; tenants; order = List.map fst specs }
  | Error e ->
      close_all ();
      Error e

let names t = t.order

let find t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> Ok tn
  | None ->
      Error
        (Xerror.Usage
           (Printf.sprintf "unknown tenant %s (have: %s)" name
              (String.concat ", " t.order)))

let update t name delta =
  let* tn = find t name in
  (* the engine swaps its core only on success, so a failed update
     leaves the tenant serving its current document *)
  let* () = Engine.update tn.engine delta in
  tn.doc <- Xtwig.sketch_doc (Engine.sketch tn.engine);
  tn.generation <- tn.generation + 1;
  Ok tn.generation

let reload t name =
  let* tn = find t name in
  (* open the replacement first: any failure leaves the live engine
     untouched and still serving *)
  let* doc, fresh =
    open_session ~jobs:t.jobs ~timeout_s:t.timeout_s ~name tn.src
  in
  let old = tn.engine in
  tn.doc <- doc;
  tn.engine <- fresh;
  tn.generation <- tn.generation + 1;
  Engine.close old;
  Ok tn.generation

let close t = Hashtbl.iter (fun _ tn -> Engine.close tn.engine) t.tenants
