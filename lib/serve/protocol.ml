module Xerror = Xtwig.Xerror

type update_op =
  | Ins of { parent : int; fragment_xml : string }
  | Del of int

type request =
  | Ping
  | List
  | Metrics
  | Stats of string
  | Reload of string
  | Update of { tenant : string; op : update_op }
  | Estimate of { tenant : string; query : string; trace : int option }
  | Batch of { tenant : string; queries : string list; trace : int option }
  | Explain of { tenant : string; query : string; trace : int option }
  | Optimize of { tenant : string; query : string; trace : int option }

type response = Reply of string | Fail of Xerror.t

let max_frame = 16 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.frame: payload over max_frame";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* ---------------- incremental decoder ---------------- *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let feed d src n =
  let cap = Bytes.length d.buf in
  if d.len + n > cap then begin
    let cap' = max (d.len + n) (2 * cap) in
    let buf' = Bytes.create cap' in
    Bytes.blit d.buf 0 buf' 0 d.len;
    d.buf <- buf'
  end;
  Bytes.blit src 0 d.buf d.len n;
  d.len <- d.len + n

let next_frame d =
  if d.len < 4 then Ok None
  else
    let n = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    if n < 0 || n > max_frame then
      Error (Printf.sprintf "frame length %d out of bounds" n)
    else if d.len < 4 + n then Ok None
    else begin
      let payload = Bytes.sub_string d.buf 4 n in
      Bytes.blit d.buf (4 + n) d.buf 0 (d.len - 4 - n);
      d.len <- d.len - 4 - n;
      Ok (Some payload)
    end

(* ---------------- codec ---------------- *)

let split_header payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )

let body_lines body = if body = "" then [] else String.split_on_char '\n' body

(* a client-supplied trace context rides as an optional trailing
   [trace=N] header token — absent, the wire format is byte-identical
   to the pre-trace protocol, so old clients keep working *)
let trace_token = function
  | None -> ""
  | Some tid -> Printf.sprintf " trace=%d" tid

let encode_request ~id req =
  match req with
  | Ping -> Printf.sprintf "%d ping" id
  | List -> Printf.sprintf "%d list" id
  | Metrics -> Printf.sprintf "%d metrics" id
  | Stats t -> Printf.sprintf "%d stats %s" id t
  | Reload t -> Printf.sprintf "%d reload %s" id t
  | Update { tenant; op = Ins { parent; fragment_xml } } ->
      Printf.sprintf "%d update %s\ninsert %d\n%s" id tenant parent fragment_xml
  | Update { tenant; op = Del node } ->
      Printf.sprintf "%d update %s\ndelete %d" id tenant node
  | Estimate { tenant; query; trace } ->
      Printf.sprintf "%d estimate %s%s\n%s" id tenant (trace_token trace) query
  | Batch { tenant; queries; trace } ->
      Printf.sprintf "%d batch %s%s\n%s" id tenant (trace_token trace)
        (String.concat "\n" queries)
  | Explain { tenant; query; trace } ->
      Printf.sprintf "%d explain %s%s\n%s" id tenant (trace_token trace) query
  | Optimize { tenant; query; trace } ->
      Printf.sprintf "%d optimize %s%s\n%s" id tenant (trace_token trace) query

let parse_id s =
  match int_of_string_opt s with
  | Some id when id >= 0 -> Ok id
  | _ -> Error (Printf.sprintf "bad request id %S" s)

(* tenant names travel on the header line, so they cannot contain
   whitespace or newlines; the catalog enforces the same alphabet *)
let valid_tenant t =
  t <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       t

let check_tenant t k = if valid_tenant t then Ok (k t) else Error ("bad tenant name " ^ t)

let parse_trace tok =
  let pfx = "trace=" in
  let lp = String.length pfx in
  if String.length tok > lp && String.sub tok 0 lp = pfx then
    match int_of_string_opt (String.sub tok lp (String.length tok - lp)) with
    | Some tid when tid >= 0 -> Ok (Some tid)
    | _ -> Error (Printf.sprintf "bad trace token %S" tok)
  else Error (Printf.sprintf "bad trace token %S" tok)

(* the update body: an op line ([insert <parent>] with the fragment
   XML as the rest of the body, or [delete <node>]), parsed here so a
   malformed op is a protocol error, not engine work — the fragment
   itself stays opaque text for the server to parse *)
let parse_update_op body =
  let op_line, rest = split_header body in
  match String.split_on_char ' ' op_line with
  | [ "insert"; p ] -> (
      match int_of_string_opt p with
      | Some parent when parent >= 0 ->
          if rest = "" then Error "insert op without a fragment"
          else Ok (Ins { parent; fragment_xml = rest })
      | _ -> Error (Printf.sprintf "bad insert parent %S" p))
  | [ "delete"; n ] -> (
      match int_of_string_opt n with
      | Some node when node >= 0 ->
          if rest <> "" then Error "delete op with trailing body"
          else Ok (Del node)
      | _ -> Error (Printf.sprintf "bad delete node %S" n))
  | _ -> Error (Printf.sprintf "bad update op %S" op_line)

let decode_request payload =
  let header, body = split_header payload in
  match String.split_on_char ' ' header with
  | [ id; "ping" ] -> Result.map (fun id -> (id, Ping)) (parse_id id)
  | [ id; "list" ] -> Result.map (fun id -> (id, List)) (parse_id id)
  | [ id; "metrics" ] -> Result.map (fun id -> (id, Metrics)) (parse_id id)
  | [ id; "stats"; t ] ->
      Result.bind (parse_id id) (fun id -> check_tenant t (fun t -> (id, Stats t)))
  | [ id; "reload"; t ] ->
      Result.bind (parse_id id) (fun id -> check_tenant t (fun t -> (id, Reload t)))
  | [ id; "update"; t ] ->
      Result.bind (parse_id id) (fun id ->
          if not (valid_tenant t) then Error ("bad tenant name " ^ t)
          else
            Result.map
              (fun op -> (id, Update { tenant = t; op }))
              (parse_update_op body))
  | id :: (("estimate" | "batch" | "explain" | "optimize") as verb) :: t
    :: rest -> (
      match
        match rest with
        | [] -> Ok None
        | [ tok ] -> parse_trace tok
        | _ -> Error (Printf.sprintf "bad request header %S" header)
      with
      | Error e -> Error e
      | Ok trace ->
          Result.bind (parse_id id) (fun id ->
              check_tenant t (fun t ->
                  match verb with
                  | "estimate" ->
                      (id, Estimate { tenant = t; query = body; trace })
                  | "batch" ->
                      (id, Batch { tenant = t; queries = body_lines body; trace })
                  | "optimize" ->
                      (id, Optimize { tenant = t; query = body; trace })
                  | _ -> (id, Explain { tenant = t; query = body; trace }))))
  | _ -> Error (Printf.sprintf "bad request header %S" header)

let error_class = function
  | Xerror.Usage _ -> "usage"
  | Xerror.Parse (Xerror.Xml, _) -> "parse-xml"
  | Xerror.Parse (Xerror.Path, _) -> "parse-path"
  | Xerror.Parse (Xerror.Twig, _) -> "parse-twig"
  | Xerror.Io _ -> "io"
  | Xerror.Sketch_format _ -> "sketch-format"
  | Xerror.Corrupt _ -> "corrupt"
  | Xerror.Engine _ -> "engine"
  | Xerror.Overload _ -> "overload"

let error_of_class cls msg =
  match cls with
  | "usage" -> Ok (Xerror.Usage msg)
  | "parse-xml" -> Ok (Xerror.Parse (Xerror.Xml, msg))
  | "parse-path" -> Ok (Xerror.Parse (Xerror.Path, msg))
  | "parse-twig" -> Ok (Xerror.Parse (Xerror.Twig, msg))
  | "io" -> Ok (Xerror.Io msg)
  | "sketch-format" -> Ok (Xerror.Sketch_format msg)
  | "corrupt" -> Ok (Xerror.Corrupt msg)
  | "engine" -> Ok (Xerror.Engine msg)
  | "overload" -> Ok (Xerror.Overload msg)
  | _ -> Error (Printf.sprintf "unknown error class %S" cls)

(* error messages may span lines (parser positions, paths); they ride
   in the body with the class on the header line *)
let encode_response ~id resp =
  match resp with
  | Reply "" -> Printf.sprintf "%d ok" id
  | Reply body -> Printf.sprintf "%d ok\n%s" id body
  | Fail e ->
      Printf.sprintf "%d err %s\n%s" id (error_class e) (Xerror.payload e)

let decode_response payload =
  let header, body = split_header payload in
  match String.split_on_char ' ' header with
  | [ id; "ok" ] -> Result.map (fun id -> (id, Reply body)) (parse_id id)
  | [ id; "err"; cls ] ->
      Result.bind (parse_id id) (fun id ->
          Result.map (fun e -> (id, Fail e)) (error_of_class cls body))
  | _ -> Error (Printf.sprintf "bad response header %S" header)

(* ---------------- answers ---------------- *)

type wire_answer = { estimate : float; fallback : bool; reason : string }

let reason_token = function
  | None -> "-"
  | Some Xtwig.Engine.Timeout -> "timeout"
  | Some Xtwig.Engine.Fault -> "fault"
  | Some Xtwig.Engine.Circuit_open -> "circuit-open"
  | Some Xtwig.Engine.Guard -> "guard"

let encode_answer (a : Xtwig.Engine.answer) =
  Printf.sprintf "%h %d %s" a.Xtwig.Engine.estimate
    (if a.Xtwig.Engine.fallback then 1 else 0)
    (reason_token a.Xtwig.Engine.reason)

(* the explain verb's reply body: one [key value] pair per line. The
   first line is the answer in the exact [encode_answer] wire format,
   so an explain reply's estimate is byte-comparable with an estimate
   reply's. *)
let encode_provenance (p : Xtwig.Engine.provenance) =
  let a = p.Xtwig.Engine.pv_answer in
  String.concat "\n"
    [
      "answer " ^ encode_answer a;
      "backend " ^ p.Xtwig.Engine.pv_backend;
      "tier " ^ Xtwig.Engine.tier_label p.Xtwig.Engine.pv_tier;
      Printf.sprintf "embeddings %d" p.Xtwig.Engine.pv_embeddings;
      Printf.sprintf "retries %d" a.Xtwig.Engine.retries;
      "fallback_reason " ^ reason_token a.Xtwig.Engine.reason;
      Printf.sprintf "elapsed_us %.1f" (a.Xtwig.Engine.elapsed_s *. 1e6);
      Printf.sprintf "trace_id %d" a.Xtwig.Engine.trace_id;
    ]

(* the optimize verb's reply body: the plan's stable line rendering
   ([cost]/[default_cost]/[changed]/[fallback] plus one [order] line
   per reordered node) — byte-comparable with a direct
   [Xtwig.Opt.to_lines] of the same plan, which is the differential
   oracle of the serve tests *)
let encode_plan (p : Xtwig.Opt.plan) = String.concat "\n" (Xtwig.Opt.to_lines p)

(* field lookup in an explain or optimize reply body; [None] when
   absent *)
let provenance_field body key =
  List.find_map
    (fun line ->
      let pfx = key ^ " " in
      let lp = String.length pfx in
      if String.length line >= lp && String.sub line 0 lp = pfx then
        Some (String.sub line lp (String.length line - lp))
      else None)
    (body_lines body)

let decode_answer line =
  match String.split_on_char ' ' line with
  | [ est; fb; reason ] -> (
      match (float_of_string_opt est, fb) with
      | Some estimate, ("0" | "1") ->
          Ok { estimate; fallback = fb = "1"; reason }
      | _ -> Error (Printf.sprintf "bad answer line %S" line))
  | _ -> Error (Printf.sprintf "bad answer line %S" line)

(* ---------------- client ---------------- *)

module Client = struct
  type t = { fd : Unix.file_descr; dec : decoder; rbuf : Bytes.t }

  let wrap_io f =
    match f () with
    | v -> Ok v
    | exception Unix.Unix_error (e, fn, _) ->
        Error (Xerror.Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

  let connect sockaddr domain =
    wrap_io (fun () ->
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try Unix.connect fd sockaddr
         with e ->
           Unix.close fd;
           raise e);
        { fd; dec = decoder (); rbuf = Bytes.create 65536 })

  let connect_unix path = connect (Unix.ADDR_UNIX path) Unix.PF_UNIX

  let connect_tcp host port =
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | [] -> Error (Xerror.Io (Printf.sprintf "cannot resolve %s:%d" host port))
    | ai :: _ -> connect ai.Unix.ai_addr ai.Unix.ai_family

  let send t ~id req =
    let bytes = frame (encode_request ~id req) in
    wrap_io (fun () ->
        let n = String.length bytes in
        let sent = ref 0 in
        while !sent < n do
          sent :=
            !sent + Unix.write_substring t.fd bytes !sent (n - !sent)
        done)

  let rec recv t =
    match next_frame t.dec with
    | Error msg -> Error (Xerror.Io ("protocol: " ^ msg))
    | Ok (Some payload) -> (
        match decode_response payload with
        | Ok r -> Ok r
        | Error msg -> Error (Xerror.Io ("protocol: " ^ msg)))
    | Ok None -> (
        match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
        | 0 -> Error (Xerror.Io "connection closed by server")
        | n ->
            feed t.dec t.rbuf n;
            recv t
        | exception Unix.Unix_error (e, fn, _) ->
            Error (Xerror.Io (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

  let call t ~id req =
    Result.bind (send t ~id req) (fun () ->
        Result.bind (recv t) (fun (rid, resp) ->
            if rid = id then Ok resp
            else
              Error
                (Xerror.Io
                   (Printf.sprintf "response id %d for request %d (pipelined \
                                    requests need send/recv)" rid id))))

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
