(** The xtwigd server: a single-threaded event loop multiplexing many
    client connections over one {!Catalog.t}.

    {2 Concurrency model}

    One thread owns the loop ([Unix.select] over nonblocking sockets);
    per-query fan-out happens {e inside} each tenant's engine (its
    [jobs] pool), not across requests. This keeps the serving layer
    free of locks and makes answer content deterministic: requests for
    one tenant are answered in arrival order, so a differential test
    can replay the same queries directly against an engine and demand
    byte-identical estimates.

    {2 Batching, admission control, backpressure}

    Requests park in per-tenant FIFO queues; each loop tick drains a
    tenant's queue, coalescing consecutive estimate/batch requests
    into one {!Xtwig.Engine.estimate_batch} call (one compile/cache
    pass for the whole group). A [reload] request is an ordering
    barrier: estimates queued before it are answered by the old
    engine, after it by the new one.

    Admission control sheds {e before} queueing: when a tenant's queue
    holds [queue_cap] requests, or its circuit breaker is open (the
    engine is degrading everything anyway), the request is answered
    immediately with a typed [Xerror.Overload] — the client always
    holds a well-formed response, never a closed socket. Shed counts
    are exported as [serve.shed{tenant=...}].

    {2 Failure points}

    [serve.accept], [serve.read], [serve.write] (connection-level: an
    injected fault closes or skips that connection), [serve.decode],
    [serve.batch], [serve.reload] (request-level: the affected
    requests are answered with a typed [engine] error). Anything
    unexpected that escapes a handler is counted in [serve.uncaught]
    and the connection dropped — the chaos tests gate that counter at
    zero.

    {2 Observability}

    Every request's life is split into four phases, exported as
    [serve.phase.seconds{phase,tenant}] histograms and as Chrome-trace
    [X] spans: [queue_wait] (enqueue → drain), [coalesce] (drain →
    engine submit), [execute] (the engine call) and [write] (response
    enqueued → frame flushed). A client-supplied [trace=<n>] header
    token is threaded through the queue into
    {!Xtwig.Engine.estimate_batch}, so the server-side spans of that
    request — down to [plan.*] — carry the client's trace id.

    Access and lifecycle events go to {!Xtwig_obs.Log}: one
    [serve.access] record per flushed response (tenant, verb, status,
    bytes, trace id, all four phase timings), plus [serve.shed],
    [serve.reload] and [serve.breaker] transitions. Per-tenant SLO
    objectives ({!config.slo}) are tracked by an {!Xtwig_obs.Slo.t};
    the [stats] verb reports the objective and current burn rate. *)

type config = {
  listen : [ `Unix of string | `Tcp of string * int ];
      (** [`Tcp (host, 0)] binds an ephemeral port; read it back with
          {!port}. *)
  jobs : int;  (** worker domains per tenant engine *)
  timeout_s : float;  (** per-query engine deadline *)
  queue_cap : int;  (** per-tenant pending-request cap *)
  slo : (string * Xtwig_obs.Slo.objective) list;
      (** per-tenant SLO objectives; tenants without one are tracked
          with empty objectives (burn rate 0) *)
}

val default_config : config
(** Unix socket ["xtwigd.sock"], 1 job, 5 s timeout, queue cap 64. *)

type t

val create :
  config -> (string * Catalog.source) list -> (t, Xtwig.Xerror.t) result
(** Load the catalog and bind the socket (a stale Unix socket file is
    replaced). Ignores SIGPIPE process-wide — a peer hangup must be
    an [EPIPE] error, not process death. *)

val serve : t -> unit
(** Run the loop until {!stop}. Never raises: handler failures become
    error responses or dropped connections, counted in
    [serve.uncaught] when unexpected. *)

val stop : t -> unit
(** Thread- and signal-safe; {!serve} returns within one loop tick
    (~50 ms), closing connections, the socket and the catalog. *)

val port : t -> int option
(** The bound TCP port, for [`Tcp (_, 0)] configs. *)

val catalog : t -> Catalog.t

val slo : t -> Xtwig_obs.Slo.t
(** The server's SLO tracker, for tests and embedding harnesses. *)
