open Xtwig_path.Path_types
module Doc = Xtwig_xml.Doc

(* Internal indexed form: twig nodes numbered in pre-order, children as
   index lists, so (twig node, element) pairs can key a memo table even
   when the input twig physically shares sub-trees. *)
type itwig = { paths : path array; subs : int list array }

let index_twig t =
  let n = twig_size t in
  let paths = Array.make n [] in
  let subs = Array.make n [] in
  let counter = ref 0 in
  let rec go t =
    let id = !counter in
    incr counter;
    paths.(id) <- t.path;
    let kids = List.map go t.subs in
    subs.(id) <- kids;
    id
  in
  ignore (go t);
  { paths; subs }

(* Counts saturate well below max_int so that degenerate queries (e.g.
   pairing thousands of top-level siblings repeatedly) stay ordered
   instead of wrapping around. *)
let saturation = 1 lsl 55

let sat_add a b = if a > saturation - b then saturation else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > saturation / b then saturation
  else a * b

let run doc it =
  let width = Array.length it.paths in
  let memo : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* tuples rooted at element [e] bound to twig node [tn]; memo keys
     are [e * width + tn] — unboxed ints hash and compare faster than
     the equivalent pairs *)
  let rec tuples_at e tn =
    match it.subs.(tn) with
    | [] -> 1
    | subs -> (
        let key = (e * width) + tn in
        match Hashtbl.find_opt memo key with
        | Some v -> v
        | None ->
            let v =
              List.fold_left
                (fun acc sub ->
                  if acc = 0 then 0
                  else
                    let matches =
                      Eval_path.eval doc ~from:(Some e) it.paths.(sub)
                    in
                    let s =
                      List.fold_left
                        (fun s e' -> sat_add s (tuples_at e' sub))
                        0 matches
                    in
                    sat_mul acc s)
                1 subs
            in
            Hashtbl.add memo key v;
            v)
  in
  let roots = Eval_path.eval doc ~from:None it.paths.(0) in
  List.fold_left (fun acc e -> sat_add acc (tuples_at e 0)) 0 roots

let selectivity doc t = run doc (index_twig t)

(* Plan-driven branch order: permute each node's sub list before the
   same memoized evaluation runs. The per-branch counts multiply with
   [sat_mul] — min(saturation, product) over non-negatives, which is
   commutative and associative, and the early exit only skips work
   whose product is already pinned at zero — so any order returns the
   same count bit for bit (the differential tests hold this). *)
let is_permutation perm k =
  Array.length perm = k
  &&
  let seen = Array.make k false in
  Array.for_all
    (fun i ->
      i >= 0 && i < k && (not seen.(i))
      &&
      (seen.(i) <- true;
       true))
    perm

let selectivity_ordered doc ~orders t =
  let it = index_twig t in
  let subs =
    Array.mapi
      (fun tn kids ->
        let perm = if tn < Array.length orders then orders.(tn) else [||] in
        let k = List.length kids in
        if k >= 2 && is_permutation perm k then
          let a = Array.of_list kids in
          Array.to_list (Array.map (fun i -> a.(i)) perm)
        else kids)
      it.subs
  in
  run doc { it with subs }

let bindings ?(limit = 1000) doc t =
  let it = index_twig t in
  let width = Array.length it.paths in
  let out = ref [] in
  let n_out = ref 0 in
  let tuple = Array.make width (-1) in
  let exception Done in
  let rec emit e tn k =
    tuple.(tn) <- e;
    match it.subs.(tn) with
    | [] -> k ()
    | subs ->
        let rec across = function
          | [] -> k ()
          | sub :: more ->
              let matches = Eval_path.eval doc ~from:(Some e) it.paths.(sub) in
              List.iter (fun e' -> emit e' sub (fun () -> across more)) matches
        in
        across subs
  in
  (try
     let roots = Eval_path.eval doc ~from:None it.paths.(0) in
     List.iter
       (fun e ->
         emit e 0 (fun () ->
             out := Array.copy tuple :: !out;
             incr n_out;
             if !n_out >= limit then raise Done))
       roots
   with Done -> ());
  List.rev !out

let node_matches doc t = Eval_path.count doc ~from:None t.path
