open Xtwig_path.Path_types
module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value

let value_pred_holds pred (v : Value.t) =
  match pred with
  | Range (lo, hi) -> (
      match Value.as_float v with
      | Some f -> lo <= f && f <= hi
      | None -> false)
  | Cmp (op, bound) -> (
      let test c =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Eq -> c = 0
        | Ne -> c <> 0
        | Ge -> c >= 0
        | Gt -> c > 0
      in
      match (Value.as_float v, Value.as_float bound) with
      | Some a, Some b -> test (Float.compare a b)
      | _ -> (
          match (v, bound) with
          | Text a, Text b -> test (String.compare a b)
          | _ -> false))

(* Labels are matched on interned tag codes, and candidates for
   root-anchored descendant steps come from the document's tag index,
   so a ['//tag'] step costs O(|tag|) instead of a full-document scan
   with a string comparison per node. Both enumerations preserve
   document order, so result sets are unchanged. *)

(* value- and branching-predicate checks for a node whose label is
   already known to match *)
let rec residual_matches doc s n =
  (match s.vpred with
  | None -> true
  | Some p -> value_pred_holds p (Doc.value doc n))
  && List.for_all (fun b -> exists doc ~from:n b) s.branches

and step_matches doc s n =
  (match Doc.tag_of_string doc s.label with
  | Some code -> Doc.tag doc n = code
  | None -> false)
  && residual_matches doc s n

(* matches of one step, in document order *)
and step_results doc from s =
  match Doc.tag_of_string doc s.label with
  | None -> []
  | Some code -> (
      match (from, s.axis) with
      | None, Child ->
          let r = Doc.root doc in
          if Doc.tag doc r = code && residual_matches doc s r then [ r ]
          else []
      | None, Descendant ->
          List.filter
            (residual_matches doc s)
            (Array.to_list (Doc.nodes_with_tag doc code))
      | Some n, Child ->
          Array.fold_right
            (fun k acc ->
              if Doc.tag doc k = code && residual_matches doc s k then k :: acc
              else acc)
            (Doc.children doc n) []
      | Some n, Descendant ->
          let acc = ref [] in
          let rec go n =
            Array.iter
              (fun k ->
                if Doc.tag doc k = code && residual_matches doc s k then
                  acc := k :: !acc;
                go k)
              (Doc.children doc n)
          in
          go n;
          List.rev !acc)

and eval doc ~from p =
  match p with
  | [] -> ( match from with None -> [] | Some n -> [ n ])
  | s :: rest ->
      let here = step_results doc from s in
      if rest = [] then here
      else
        (* child-axis steps from distinct nodes yield distinct nodes; a
           descendant step may revisit, so dedupe while keeping order *)
        let seen = Hashtbl.create 16 in
        List.concat_map
          (fun n ->
            List.filter
              (fun m ->
                if Hashtbl.mem seen m then false
                else begin
                  Hashtbl.add seen m ();
                  true
                end)
              (eval doc ~from:(Some n) rest))
          here

(* existence only: stop at the first full match instead of
   materializing the result set *)
and exists doc ~from p =
  match p with [] -> true | s :: rest -> exists_step doc (Some from) s rest

and exists_step doc from s rest =
  match Doc.tag_of_string doc s.label with
  | None -> false
  | Some code -> (
      let check n =
        Doc.tag doc n = code
        && residual_matches doc s n
        &&
        match rest with
        | [] -> true
        | s' :: rest' -> exists_step doc (Some n) s' rest'
      in
      match (from, s.axis) with
      | None, Child -> check (Doc.root doc)
      | None, Descendant -> Array.exists check (Doc.nodes_with_tag doc code)
      | Some n, Child -> Array.exists check (Doc.children doc n)
      | Some n, Descendant ->
          let exception Found in
          let rec go n =
            Array.iter
              (fun k ->
                if check k then raise Found;
                go k)
              (Doc.children doc n)
          in
          (try
             go n;
             false
           with Found -> true))

let count doc ~from p = List.length (eval doc ~from p)
