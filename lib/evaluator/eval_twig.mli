(** Exact twig-query evaluation: the number of binding tuples.

    The selectivity [s(T_Q)] of a twig query is the number of binding
    tuples it generates (Section 2 of the paper): each tuple assigns
    one document element to every twig node such that every
    parent/child pair of twig nodes is connected by the child's path
    expression. *)

val selectivity : Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig -> int
(** Exact binding-tuple count. Memoized internally; linear-ish in
    (matched elements x twig nodes). *)

val selectivity_ordered :
  Xtwig_xml.Doc.t ->
  orders:int array array ->
  Xtwig_path.Path_types.twig ->
  int
(** As {!selectivity}, but each twig node's branches are evaluated in
    the order given by [orders.(tn)] (pre-order twig-node numbering —
    the numbering {!Xtwig_opt.Opt} plans against). Entries that are
    missing, empty or not a permutation of the node's branch count
    fall back to the syntactic order, so a degraded or mismatched plan
    can never change the evaluation. The count returned is bit-equal
    to {!selectivity} for every order: branch counts combine with the
    commutative, associative saturating product and the early zero
    exit never changes a value — order only moves the work. *)

(** {1 Saturating counters}

    Counts saturate at [1 lsl 55] — far above any real selectivity but
    well below [max_int] — so degenerate queries stay ordered instead
    of wrapping. Exposed for the edge-case tests. *)

val saturation : int

val sat_add : int -> int -> int
(** [min saturation (a + b)] for non-negative operands. *)

val sat_mul : int -> int -> int
(** [0] when either operand is 0, else [min saturation (a * b)] —
    commutative and associative on non-negatives, which is what makes
    branch reordering answer-preserving. *)

val bindings :
  ?limit:int -> Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig ->
  Xtwig_xml.Doc.node array list
(** Materializes binding tuples (pre-order twig-node order), up to
    [limit] (default 1000) — used by tests and the examples, not by
    the benchmarks. *)

val node_matches : Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig -> int
(** Number of elements matched by the root twig node alone (its
    per-node result cardinality). *)
