(** Graph synopses of XML documents (Section 3.1).

    A synopsis is a partition of the document's elements into nodes of
    equal tag; synopsis edges connect two nodes when some document
    edge connects their extents. Each edge carries localized
    backward- and forward-stability flags:

    - [u -> v] is {b B-stable} when every element of [v] has a parent
      in [u] (in a tree: its unique parent lies in [u]);
    - [u -> v] is {b F-stable} when every element of [u] has at least
      one child in [v].

    The synopsis is a value: refinement operations return new
    synopses. All derived structure (extents, edges, stabilities) is
    recomputed from the canonical partition array, which keeps the
    split operations trivially correct. *)

type edge = {
  src : int;
  dst : int;
  count : int;  (** number of document edges between the extents *)
  src_with_child : int;  (** elements of [src] with >= 1 child in [dst] *)
  b_stable : bool;
  f_stable : bool;
}

type t

(** {1 Construction} *)

val of_partition : Xtwig_xml.Doc.t -> int array -> t
(** [of_partition doc node_of] builds a synopsis from an
    element-to-group assignment. Group ids are renumbered densely in
    order of first appearance. Raises [Invalid_argument] if two
    elements of one group carry different tags or the array length
    differs from the document size. *)

val label_split : Xtwig_xml.Doc.t -> t
(** The coarsest synopsis: one node per tag (the starting point
    [S_0(G)] of XBUILD and the "coarsest synopsis" of Table 1). *)

val perfect : Xtwig_xml.Doc.t -> t
(** One synopsis node per document element — the zero-error reference
    summary (exponentially large; tests only). *)

val stabilize_fixpoint : ?max_rounds:int -> t -> t
(** Repeatedly applies b-stabilize / f-stabilize splits until every
    edge is both backward and forward stable (or [max_rounds], default
    100, is hit). On such a synopsis every edge is scope-eligible for
    full-information histograms, which makes it the natural reference
    summary: exact histograms over it estimate structure-only twigs
    with zero error. Can grow large on irregular documents — meant for
    tests and reference-summary construction, not for budgeted
    synopses. *)

(** {1 Accessors} *)

val doc : t -> Xtwig_xml.Doc.t
val node_count : t -> int
val edge_count : t -> int
val extent : t -> int -> int array
(** Do not mutate. *)

val extent_size : t -> int -> int
val node_tag : t -> int -> Xtwig_xml.Doc.tag
val tag_name : t -> int -> string
val node_of_elem : t -> int -> int
val nodes_with_tag : t -> Xtwig_xml.Doc.tag -> int list
val nodes_with_label : t -> string -> int list
(** Nodes whose tag has the given name ([] for unknown labels). *)

val child_count : t -> int -> int -> int
(** [child_count t e z]: number of children of document element [e]
    lying in synopsis node [z] — the forward-count primitive of edge
    distributions, answered in [O(log deg)] from a per-document
    structural index (element children bucketed by synopsis node)
    that every {!split} maintains. *)

val child_nodes_of_elem : t -> int -> (int * int) list
(** [(node, count)] pairs for the children of one element, sorted by
    node id. *)

val edge : t -> src:int -> dst:int -> edge option
val out_edges : t -> int -> edge list
(** Edges leaving a node, ordered by destination id. *)

val in_edges : t -> int -> edge list
val edges : t -> edge list
val root_node : t -> int
(** The node whose extent holds the document root. *)

(** {1 Refinement support} *)

val split : t -> node:int -> group_of:(int -> int) -> t
(** [split t ~node ~group_of] partitions [node]'s extent by
    [group_of] (arbitrary small non-negative group keys). If only one
    group is non-empty the synopsis is returned unchanged (physically
    equal). Node ids are {e not} stable across a split — the result is
    renumbered densely; callers that track per-node state should remap
    it through the extents (every new node's extent is a subset of
    exactly one old node's extent, splits being refinements). *)

val b_stabilize_groups : t -> dst:int -> int -> int
(** Grouping function for the b-stabilize refinement on edge
    [src -> dst]: [b_stabilize_groups t ~dst] maps each element of
    [dst] to the synopsis node of its parent, so splitting separates
    elements by parent node and every resulting incoming edge is
    B-stable. (Returns the parent node id as the group key; the
    document root maps to a reserved fresh key.) *)

val f_stabilize_groups : t -> dst:int -> int -> int
(** Grouping function for the f-stabilize refinement on edge
    [src -> dst], to be applied to node [src]: elements with at least
    one child in [dst] map to 0, others to 1. *)

(** {1 Inspection} *)

val structure_bytes : t -> int
(** Storage charge for the structural part: 8 bytes per node (tag +
    extent count) + 9 bytes per edge (endpoints, count, stability
    bits). *)

val pp_stats : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
(** Full dump (small synopses only). *)
