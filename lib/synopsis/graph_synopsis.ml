module Doc = Xtwig_xml.Doc

type edge = {
  src : int;
  dst : int;
  count : int;
  src_with_child : int;
  b_stable : bool;
  f_stable : bool;
}

type t = {
  doc : Doc.t;
  node_of : int array;
  n_nodes : int;
  node_tag : int array;
  extents : int array array;
  out : edge list array;
  inc : edge list array;
  edge_tbl : (int * int, edge) Hashtbl.t;
  by_tag : (int, int list) Hashtbl.t; (* tag -> node ids *)
  root_node : int;
  (* structural index: per element, its children bucketed by synopsis
     node, in CSR form — [cc_node.(i), cc_count.(i)] for
     [i in cc_off.(e) .. cc_off.(e+1) - 1], sorted by node id. Rebuilt
     by [derive], so every [split] maintains it. *)
  cc_off : int array;
  cc_node : int array;
  cc_count : int array;
}

let derive doc node_of =
  let n_elems = Doc.size doc in
  if Array.length node_of <> n_elems then
    invalid_arg "Graph_synopsis.of_partition: wrong array length";
  (* dense renumbering in order of first appearance; group ids from
     every in-repo producer ([label_split], [perfect], [split]) are
     small non-negative ints, so an array-backed remap applies — the
     hashtable is only a fallback for exotic caller-supplied ids *)
  let n_nodes = ref 0 in
  let dense = Array.make n_elems 0 in
  let lo = ref max_int and hi = ref min_int in
  for e = 0 to n_elems - 1 do
    let g = node_of.(e) in
    if g < !lo then lo := g;
    if g > !hi then hi := g
  done;
  if !lo >= 0 && !hi <= (2 * n_elems) + 64 then begin
    let remap = Array.make (!hi + 1) (-1) in
    for e = 0 to n_elems - 1 do
      let g = node_of.(e) in
      let id =
        if remap.(g) >= 0 then remap.(g)
        else begin
          let id = !n_nodes in
          incr n_nodes;
          remap.(g) <- id;
          id
        end
      in
      dense.(e) <- id
    done
  end
  else begin
    let remap = Hashtbl.create 64 in
    for e = 0 to n_elems - 1 do
      let g = node_of.(e) in
      let id =
        match Hashtbl.find_opt remap g with
        | Some id -> id
        | None ->
            let id = !n_nodes in
            incr n_nodes;
            Hashtbl.add remap g id;
            id
      in
      dense.(e) <- id
    done
  end;
  let n_nodes = !n_nodes in
  let node_tag = Array.make n_nodes (-1) in
  let sizes = Array.make n_nodes 0 in
  for e = 0 to n_elems - 1 do
    let v = dense.(e) in
    let t = Doc.tag doc e in
    if node_tag.(v) = -1 then node_tag.(v) <- t
    else if node_tag.(v) <> t then
      invalid_arg "Graph_synopsis.of_partition: mixed tags in one node";
    sizes.(v) <- sizes.(v) + 1
  done;
  let extents = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make n_nodes 0 in
  for e = 0 to n_elems - 1 do
    let v = dense.(e) in
    extents.(v).(fill.(v)) <- e;
    fill.(v) <- fill.(v) + 1
  done;
  (* One pass over elements builds both the CSR child-count-by-node
     index (a sorted run-length encoding of child node ids per
     element) and the edge aggregates: count(u,v) is the sum of v-runs
     over u's elements, src_with_child(u,v) the number of u-elements
     carrying a v-run. Edges are tallied under the int key
     [u * n_nodes + v] — this loop runs once per split *candidate* in
     XBUILD, so it avoids tuple boxing and per-element allocations. *)
  let cc_off = Array.make (n_elems + 1) 0 in
  let cap = ref (n_elems + (n_elems / 2) + 16) in
  let cc_node = ref (Array.make !cap 0) in
  let cc_count = ref (Array.make !cap 0) in
  let cc_len = ref 0 in
  let push v c =
    if !cc_len = !cap then begin
      let ncap = 2 * !cap in
      let nn = Array.make ncap 0 and nc = Array.make ncap 0 in
      Array.blit !cc_node 0 nn 0 !cc_len;
      Array.blit !cc_count 0 nc 0 !cc_len;
      cc_node := nn;
      cc_count := nc;
      cap := ncap
    end;
    !cc_node.(!cc_len) <- v;
    !cc_count.(!cc_len) <- c;
    incr cc_len
  in
  (* scratch multiplicity per node for the current element *)
  let scratch = Array.make n_nodes 0 in
  let touched = Array.make n_nodes 0 in
  let ecounts : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  for el = 0 to n_elems - 1 do
    let kids = Doc.children doc el in
    let nk = Array.length kids in
    let nt = ref 0 in
    for i = 0 to nk - 1 do
      let id = dense.(kids.(i)) in
      if scratch.(id) = 0 then begin
        touched.(!nt) <- id;
        Stdlib.incr nt
      end;
      scratch.(id) <- scratch.(id) + 1
    done;
    let tn = !nt in
    (* insertion sort: elements have few distinct child nodes *)
    for i = 1 to tn - 1 do
      let x = touched.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && touched.(!j) > x do
        touched.(!j + 1) <- touched.(!j);
        decr j
      done;
      touched.(!j + 1) <- x
    done;
    let u = dense.(el) in
    for i = 0 to tn - 1 do
      let v = touched.(i) in
      let c = scratch.(v) in
      scratch.(v) <- 0;
      push v c;
      let key = (u * n_nodes) + v in
      match Hashtbl.find_opt ecounts key with
      | Some (cnt, swc) ->
          cnt := !cnt + c;
          swc := !swc + 1
      | None -> Hashtbl.add ecounts key (ref c, ref 1)
    done;
    cc_off.(el + 1) <- cc_off.(el) + tn
  done;
  let cc_node = Array.sub !cc_node 0 (Stdlib.max 1 !cc_len) in
  let cc_count = Array.sub !cc_count 0 (Stdlib.max 1 !cc_len) in
  (* count(u,v) = number of v-elements whose parent is in u (each
     element has exactly one parent); b_stable(u,v) <=> count = |v|,
     f_stable(u,v) <=> src_with_child = |u| *)
  let edge_tbl = Hashtbl.create 256 in
  let out = Array.make n_nodes [] in
  let inc = Array.make n_nodes [] in
  Hashtbl.iter
    (fun key (cnt, swc) ->
      let u = key / n_nodes and v = key mod n_nodes in
      let b_stable = !cnt = sizes.(v) in
      let f_stable = !swc = sizes.(u) in
      let e =
        { src = u; dst = v; count = !cnt; src_with_child = !swc; b_stable; f_stable }
      in
      Hashtbl.add edge_tbl (u, v) e;
      out.(u) <- e :: out.(u);
      inc.(v) <- e :: inc.(v))
    ecounts;
  for v = 0 to n_nodes - 1 do
    out.(v) <- List.sort (fun a b -> compare a.dst b.dst) out.(v);
    inc.(v) <- List.sort (fun a b -> compare a.src b.src) inc.(v)
  done;
  let by_tag = Hashtbl.create 64 in
  for v = n_nodes - 1 downto 0 do
    let t = node_tag.(v) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_tag t) in
    Hashtbl.replace by_tag t (v :: prev)
  done;
  {
    doc;
    node_of = dense;
    n_nodes;
    node_tag;
    extents;
    out;
    inc;
    edge_tbl;
    by_tag;
    root_node = dense.(Doc.root doc);
    cc_off;
    cc_node;
    cc_count;
  }

let of_partition doc node_of = derive doc node_of

let label_split doc =
  of_partition doc (Array.init (Doc.size doc) (fun e -> Doc.tag doc e))

let perfect doc = of_partition doc (Array.init (Doc.size doc) Fun.id)

let doc t = t.doc
let node_count t = t.n_nodes
let edge_count t = Hashtbl.length t.edge_tbl
let extent t v = t.extents.(v)
let extent_size t v = Array.length t.extents.(v)
let node_tag t v = t.node_tag.(v)
let tag_name t v = Doc.tag_to_string t.doc t.node_tag.(v)
let node_of_elem t e = t.node_of.(e)

let nodes_with_tag t tag =
  Option.value ~default:[] (Hashtbl.find_opt t.by_tag tag)

let nodes_with_label t label =
  match Doc.tag_of_string t.doc label with
  | None -> []
  | Some tag -> nodes_with_tag t tag

let child_count t e z =
  let lo = ref t.cc_off.(e) and hi = ref t.cc_off.(e + 1) in
  let found = ref 0 in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.cc_node.(mid) in
    if v = z then begin
      found := t.cc_count.(mid);
      lo := !hi
    end
    else if v < z then lo := mid + 1
    else hi := mid
  done;
  !found

let child_nodes_of_elem t e =
  let lo = t.cc_off.(e) and hi = t.cc_off.(e + 1) in
  List.init (hi - lo) (fun i -> (t.cc_node.(lo + i), t.cc_count.(lo + i)))

let edge t ~src ~dst = Hashtbl.find_opt t.edge_tbl (src, dst)
let out_edges t v = t.out.(v)
let in_edges t v = t.inc.(v)
let edges t = Hashtbl.fold (fun _ e acc -> e :: acc) t.edge_tbl []
let root_node t = t.root_node

let split t ~node ~group_of =
  let ext = t.extents.(node) in
  (* how many distinct groups? *)
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let g = group_of e in
      if not (Hashtbl.mem groups g) then Hashtbl.add groups g ())
    ext;
  if Hashtbl.length groups <= 1 then t
  else begin
    let node_of = Array.copy t.node_of in
    (* keep ids of untouched nodes stable: reuse [node]'s id for the
       first group, allocate fresh ids beyond n_nodes for the rest *)
    let fresh = ref t.n_nodes in
    let assign = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        let g = group_of e in
        let id =
          match Hashtbl.find_opt assign g with
          | Some id -> id
          | None ->
              let id = if Hashtbl.length assign = 0 then node else !fresh in
              if id <> node then incr fresh;
              Hashtbl.add assign g id;
              id
        in
        node_of.(e) <- id)
      ext;
    derive t.doc node_of
  end

let b_stabilize_groups t ~dst =
  ignore dst;
  fun e ->
    match Doc.parent t.doc e with
    | None -> t.n_nodes (* reserved fresh key for the root *)
    | Some p -> t.node_of.(p)

let f_stabilize_groups t ~dst =
  fun e ->
    let kids = Doc.children t.doc e in
    let has =
      Array.exists (fun k -> t.node_of.(k) = dst) kids
    in
    if has then 0 else 1

let stabilize_fixpoint ?(max_rounds = 100) t =
  let rec round t k =
    if k = 0 then t
    else
      let unstable =
        List.find_opt (fun e -> not (e.b_stable && e.f_stable)) (edges t)
      in
      match unstable with
      | None -> t
      | Some e ->
          let t' =
            if not e.b_stable then
              split t ~node:e.dst ~group_of:(b_stabilize_groups t ~dst:e.dst)
            else split t ~node:e.src ~group_of:(f_stabilize_groups t ~dst:e.dst)
          in
          if t' == t then
            (* the split was a no-op (cannot happen for a genuinely
               unstable edge, but guard against looping) *)
            t
          else round t' (k - 1)
  in
  round t max_rounds

let structure_bytes t = (8 * t.n_nodes) + (9 * edge_count t)

let pp_stats ppf t =
  Format.fprintf ppf "synopsis: %d nodes, %d edges over %d elements"
    t.n_nodes (edge_count t) (Doc.size t.doc)

let pp ppf t =
  pp_stats ppf t;
  Format.pp_print_newline ppf ();
  for v = 0 to t.n_nodes - 1 do
    Format.fprintf ppf "  node %d %s |%d|@." v (tag_name t v) (extent_size t v)
  done;
  List.iter
    (fun e ->
      Format.fprintf ppf "  edge %d->%d count=%d%s%s@." e.src e.dst e.count
        (if e.b_stable then " B" else "")
        (if e.f_stable then " F" else ""))
    (List.sort compare (edges t))
