type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

let is_null = function Null -> true | Int _ | Float _ | Text _ -> false

let as_float = function
  | Null -> None
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Text s -> float_of_string_opt s

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Text s -> s

let of_string s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> Text s)

(* [of_string] over a byte slice without materialising the string for
   the common shapes. The classification must agree with [of_string]
   exactly, so the fast paths only cover cases where OCaml's literal
   grammar is unambiguous:
   - a pure decimal integer (optional sign, <= 18 digits) parses
     manually — same result as [int_of_string];
   - a slice whose first character can start neither an int nor a
     float literal (any letter but the inf/nan starters) is [Text];
   everything else falls back to [of_string] on the extracted slice. *)
(* One scan rejecting slices no numeric literal can match, so common
   almost-numeric texts (dates, phone numbers, "0417 9931") skip two
   failed parses in [of_slice]. Sound because OCaml int/float literals
   only contain [0-9A-Za-z._+-], with an inner sign legal only right
   after an exponent marker. *)
let rec numericish b i fin prev =
  i >= fin
  ||
  let c = Bytes.unsafe_get b i in
  (match c with
  | '0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' | '.' | '_' -> true
  | '+' | '-' -> prev = 'e' || prev = 'E' || prev = 'p' || prev = 'P'
  | _ -> false)
  && numericish b (i + 1) fin c

let rec all_digits b i fin =
  i >= fin
  ||
  let c = Bytes.unsafe_get b i in
  c >= '0' && c <= '9' && all_digits b (i + 1) fin

let of_slice b ~pos ~len =
  if len = 0 then Null
  else
    let c0 = Bytes.unsafe_get b pos in
    let signed = c0 = '-' || c0 = '+' in
    let i0 = pos + if signed then 1 else 0 in
    let fin = pos + len in
    if i0 < fin && fin - i0 <= 18 && all_digits b i0 fin then begin
      let v = ref 0 in
      for i = i0 to fin - 1 do
        v := (10 * !v) + (Char.code (Bytes.unsafe_get b i) - 48)
      done;
      Int (if c0 = '-' then - !v else !v)
    end
    else
      match c0 with
      | 'a' .. 'z' | 'A' .. 'Z'
        when not
               (c0 = 'i' || c0 = 'I' || c0 = 'n' || c0 = 'N' || c0 = 'x'
              || c0 = 'X' || c0 = 'o' || c0 = 'O' || c0 = 'b' || c0 = 'B') ->
          Text (Bytes.sub_string b pos len)
      | ' ' | '!' .. '*' | ',' | '/' | ':' .. '?' ->
          (* first char already outside every numeric literal *)
          Text (Bytes.sub_string b pos len)
      | _ ->
          if numericish b (pos + 1) fin c0 then
            of_string (Bytes.sub_string b pos len)
          else Text (Bytes.sub_string b pos len)

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Text x, Text y -> String.equal x y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | (Null | Int _ | Float _ | Text _), _ -> false

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Text x, Text y -> String.compare x y
  | Text _, _ -> 1
  | _, Text _ -> -1
  | x, y -> (
      match (as_float x, as_float y) with
      | Some fx, Some fy -> Float.compare fx fy
      | _ -> 0)

let pp ppf v =
  match v with
  | Null -> Format.pp_print_string ppf "null"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "%S" s
