exception Parse_error of string

type state = { src : string; mutable pos : int; mutable line : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "line %d (offset %d): %s" st.line st.pos msg))

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then st.line <- st.line + 1;
    st.pos <- st.pos + 1
  end

let skip_ws st =
  while (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" s)

let skip_until st marker =
  let n = String.length marker in
  let limit = String.length st.src - n in
  let rec loop () =
    if st.pos > limit then fail st (Printf.sprintf "unterminated, expected %S" marker)
    else if looking_at st marker then
      for _ = 1 to n do
        advance st
      done
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '@' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entity st =
  (* called just past '&' *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity";
  let ent = String.sub st.src start (st.pos - start) in
  advance st;
  match ent with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length ent > 1 && ent.[0] = '#' then
        let code =
          if ent.[1] = 'x' || ent.[1] = 'X' then
            int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
          else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
        in
        match code with
        | Some c when c < 128 -> String.make 1 (Char.chr c)
        | Some _ -> "?"
        | None -> fail st (Printf.sprintf "bad character reference &%s;" ent)
      else fail st (Printf.sprintf "unknown entity &%s;" ent)

let read_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st then ()
    else
      match peek st with
      | '<' ->
          if looking_at st "<![CDATA[" then begin
            expect st "<![CDATA[";
            let start = st.pos in
            while (not (looking_at st "]]>")) && not (eof st) do
              advance st
            done;
            Buffer.add_string buf (String.sub st.src start (st.pos - start));
            expect st "]]>";
            loop ()
          end
          else ()
      | '&' ->
          advance st;
          Buffer.add_string buf (decode_entity st);
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  String.trim (Buffer.contents buf)

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (decode_entity st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let skip_misc st =
  let rec loop () =
    skip_ws st;
    if looking_at st "<!--" then begin
      skip_until st "-->";
      loop ()
    end
    else if looking_at st "<?" then begin
      skip_until st "?>";
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_until st ">";
      loop ()
    end
  in
  loop ()

(* Parses one element; [parent < 0] means this is the root. *)
let rec parse_element st builder parent =
  expect st "<";
  let name = read_name st in
  let node =
    if parent < 0 then Doc.Builder.root builder name
    else Doc.Builder.child builder parent name
  in
  (* attributes become leaf children *)
  let rec attrs () =
    skip_ws st;
    match peek st with
    | '>' | '/' -> ()
    | _ ->
        let aname = read_name st in
        skip_ws st;
        expect st "=";
        skip_ws st;
        let v = read_attr_value st in
        ignore (Doc.Builder.child builder node ~value:(Value.of_string v) aname);
        attrs ()
  in
  attrs ();
  if looking_at st "/>" then expect st "/>"
  else begin
    expect st ">";
    let text = Buffer.create 16 in
    let rec content () =
      let t = read_text st in
      if t <> "" then begin
        if Buffer.length text > 0 then Buffer.add_char text ' ';
        Buffer.add_string text t
      end;
      if eof st then fail st (Printf.sprintf "unterminated element <%s>" name)
      else if looking_at st "</" then begin
        expect st "</";
        let close = read_name st in
        if close <> name then
          fail st (Printf.sprintf "mismatched close tag </%s> for <%s>" close name);
        skip_ws st;
        expect st ">"
      end
      else if looking_at st "<!--" then begin
        skip_until st "-->";
        content ()
      end
      else begin
        parse_element st builder node;
        content ()
      end
    in
    content ();
    let t = Buffer.contents text in
    if t <> "" then Doc.Builder.set_value builder node (Value.of_string t)
  end

(* The PR-8 whole-string recursive parser, kept verbatim as the
   differential baseline for the streaming parser: bench [ingest]
   measures the speedup against it and the test suite checks the two
   produce byte-identical documents. *)
let reference_parse_string src =
  let st = { src; pos = 0; line = 1 } in
  let builder = Doc.Builder.create ~hint:(1 + (String.length src / 32)) () in
  skip_misc st;
  if eof st then fail st "empty document";
  parse_element st builder (-1);
  skip_misc st;
  if not (eof st) then fail st "trailing content after the root element";
  Doc.Builder.finish builder

(* ------------------------------------------------------------------ *)
(* Result-typed entry points: the supported public surface, now routed
   through the chunked streaming parser ({!Sax}). All failures funnel
   into Xerror values; Sax errors carry the same message format the
   recursive parser used. *)

let parse_string_res src =
  match
    Xtwig_fault.Fault.point "xml.parse";
    Sax.parse_string src
  with
  | doc -> Ok doc
  | exception Sax.Error msg -> Error (Xtwig_util.Xerror.Parse (Xml, msg))
  | exception Xtwig_fault.Fault.Injected { point; _ } ->
      Error (Xtwig_util.Xerror.Io (Printf.sprintf "injected fault at %s" point))

let parse_file_res path =
  match
    Xtwig_fault.Fault.point "xml.parse";
    (let ic = open_in_bin path in
     Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Sax.parse_channel ic))
  with
  | doc -> Ok doc
  | exception Sax.Error msg -> Error (Xtwig_util.Xerror.Parse (Xml, msg))
  | exception Sys_error msg -> Error (Xtwig_util.Xerror.Io msg)
  | exception Xtwig_fault.Fault.Injected { point; _ } ->
      Error (Xtwig_util.Xerror.Io (Printf.sprintf "injected fault at %s" point))

let reference_parse_string_res src =
  match reference_parse_string src with
  | doc -> Ok doc
  | exception Parse_error msg -> Error (Xtwig_util.Xerror.Parse (Xml, msg))
