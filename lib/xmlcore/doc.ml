type node = int
type tag = int

type t = {
  size : int;
  tags : tag array;
  parents : node array; (* -1 for the root *)
  child_arr : node array array;
  values : Value.t array;
  tag_names : string array;
  tag_codes : (string, tag) Hashtbl.t;
  by_tag : node array array;
  depths : int array;
  max_depth : int; (* cached: consulted per embedding enumeration *)
}

(* Shared assembly: freeze columns (ids in an order where parents
   precede children and sibling order is id order) into the full
   indexed representation. Child arrays are derived from the parent
   column alone with a counts-then-fill pass — ascending ids reproduce
   document order because every construction path allocates children
   in document order. *)
let assemble ~tags ~parents ~values ~tag_names ~tag_codes =
  let size = Array.length tags in
  (* [parents.(i)] is validated (or correct by construction) before
     assembly, so the fill passes use unchecked accesses: this runs
     once per parse and per splice. *)
  let ccount = Array.make size 0 in
  for i = 1 to size - 1 do
    let p = Array.unsafe_get parents i in
    Array.unsafe_set ccount p (Array.unsafe_get ccount p + 1)
  done;
  let child_arr = Array.map (fun c -> Array.make c 0) ccount in
  let cfill = Array.make size 0 in
  for i = 1 to size - 1 do
    let p = Array.unsafe_get parents i in
    let k = Array.unsafe_get cfill p in
    Array.unsafe_set (Array.unsafe_get child_arr p) k i;
    Array.unsafe_set cfill p (k + 1)
  done;
  let counts = Array.make (Array.length tag_names) 0 in
  Array.iter (fun t -> counts.(t) <- counts.(t) + 1) tags;
  let by_tag = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (Array.length tag_names) 0 in
  for i = 0 to size - 1 do
    let t = Array.unsafe_get tags i in
    let k = Array.unsafe_get fill t in
    Array.unsafe_set (Array.unsafe_get by_tag t) k i;
    Array.unsafe_set fill t (k + 1)
  done;
  let depths = Array.make size 0 in
  let max_depth = ref 0 in
  for i = 1 to size - 1 do
    let d = Array.unsafe_get depths (Array.unsafe_get parents i) + 1 in
    Array.unsafe_set depths i d;
    if d > !max_depth then max_depth := d
  done;
  {
    size;
    tags;
    parents;
    child_arr;
    values;
    tag_names;
    tag_codes;
    by_tag;
    depths;
    max_depth = !max_depth;
  }

module Builder = struct
  type b = {
    mutable n : int;
    mutable tags : tag array;
    mutable parents : node array;
    mutable values : Value.t array;
    mutable names : string list;   (* reversed interned names *)
    mutable name_count : int;
    codes : (string, tag) Hashtbl.t;
    mutable finished : bool;
  }

  type t = b

  let create ?(hint = 1024) () =
    {
      n = 0;
      tags = Array.make hint 0;
      parents = Array.make hint (-1);
      values = Array.make hint Value.Null;
      names = [];
      name_count = 0;
      codes = Hashtbl.create 64;
      finished = false;
    }

  let intern b name =
    match Hashtbl.find_opt b.codes name with
    | Some c -> c
    | None ->
        let c = b.name_count in
        Hashtbl.add b.codes name c;
        b.names <- name :: b.names;
        b.name_count <- c + 1;
        c

  let grow b =
    let cap = Array.length b.tags in
    if b.n >= cap then begin
      let cap' = Stdlib.max 8 (cap * 2) in
      let extend a fill =
        let a' = Array.make cap' fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.tags <- extend b.tags 0;
      b.parents <- extend b.parents (-1);
      b.values <- extend b.values Value.Null
    end

  let alloc b parent value name =
    assert (not b.finished);
    grow b;
    let id = b.n in
    b.n <- id + 1;
    b.tags.(id) <- intern b name;
    b.parents.(id) <- parent;
    b.values.(id) <- value;
    id

  let root b ?(value = Value.Null) name =
    assert (b.n = 0);
    alloc b (-1) value name

  let child b parent ?(value = Value.Null) name =
    assert (parent >= 0 && parent < b.n);
    alloc b parent value name

  let set_value b node v =
    assert (node >= 0 && node < b.n);
    b.values.(node) <- v

  let finish b =
    assert (not b.finished);
    assert (b.n > 0);
    b.finished <- true;
    let size = b.n in
    assemble
      ~tags:(Array.sub b.tags 0 size)
      ~parents:(Array.sub b.parents 0 size)
      ~values:(Array.sub b.values 0 size)
      ~tag_names:(Array.of_list (List.rev b.names))
      ~tag_codes:b.codes
end

let of_columns ~tags ~parents ~values ~tag_names =
  let size = Array.length tags in
  if size = 0 then invalid_arg "Doc.of_columns: empty document";
  if Array.length parents <> size || Array.length values <> size then
    invalid_arg "Doc.of_columns: column length mismatch";
  if parents.(0) <> -1 then invalid_arg "Doc.of_columns: node 0 must be the root";
  let ntags = Array.length tag_names in
  for i = 0 to size - 1 do
    let t = Array.unsafe_get tags i in
    if t < 0 || t >= ntags then
      invalid_arg "Doc.of_columns: tag code out of range";
    let p = Array.unsafe_get parents i in
    if i > 0 && (p < 0 || p >= i) then
      invalid_arg "Doc.of_columns: parents must precede children"
  done;
  let tag_codes = Hashtbl.create (2 * ntags) in
  Array.iteri (fun c name -> Hashtbl.replace tag_codes name c) tag_names;
  if Hashtbl.length tag_codes <> ntags then
    invalid_arg "Doc.of_columns: duplicate tag name";
  assemble ~tags ~parents ~values ~tag_names ~tag_codes

let splice_insert t ~parent ~fragment =
  if parent < 0 || parent >= t.size then
    invalid_arg "Doc.splice_insert: parent out of range";
  let n = t.size and m = fragment.size in
  let tags = Array.make (n + m) 0 in
  let parents = Array.make (n + m) 0 in
  let values = Array.make (n + m) Value.Null in
  Array.blit t.tags 0 tags 0 n;
  Array.blit t.parents 0 parents 0 n;
  Array.blit t.values 0 values 0 n;
  (* re-intern the fragment's tags into (a copy of) this document's
     tag space, appending unseen names *)
  let codes = Hashtbl.copy t.tag_codes in
  let extra = ref [] in
  let count = ref (Array.length t.tag_names) in
  let map_tag ft =
    let name = fragment.tag_names.(ft) in
    match Hashtbl.find_opt codes name with
    | Some c -> c
    | None ->
        let c = !count in
        Hashtbl.add codes name c;
        extra := name :: !extra;
        incr count;
        c
  in
  for j = 0 to m - 1 do
    tags.(n + j) <- map_tag fragment.tags.(j);
    parents.(n + j) <- (if j = 0 then parent else n + fragment.parents.(j));
    values.(n + j) <- fragment.values.(j)
  done;
  let tag_names = Array.make !count "" in
  Array.blit t.tag_names 0 tag_names 0 (Array.length t.tag_names);
  List.iteri
    (fun i name -> tag_names.(!count - 1 - i) <- name)
    !extra;
  assemble ~tags ~parents ~values ~tag_names ~tag_codes:codes

let splice_delete t node =
  if node <= 0 || node >= t.size then
    invalid_arg "Doc.splice_delete: node out of range (or the root)";
  let del = Array.make t.size false in
  del.(node) <- true;
  (* descendants have larger ids than their ancestors *)
  for i = node + 1 to t.size - 1 do
    if del.(t.parents.(i)) then del.(i) <- true
  done;
  let map = Array.make t.size (-1) in
  let k = ref 0 in
  for i = 0 to t.size - 1 do
    if not del.(i) then begin
      map.(i) <- !k;
      incr k
    end
  done;
  let size' = !k in
  let tags = Array.make size' 0 in
  let parents = Array.make size' (-1) in
  let values = Array.make size' Value.Null in
  for i = 0 to t.size - 1 do
    let i' = map.(i) in
    if i' >= 0 then begin
      tags.(i') <- t.tags.(i);
      parents.(i') <- (if t.parents.(i) < 0 then -1 else map.(t.parents.(i)));
      values.(i') <- t.values.(i)
    end
  done;
  (* tag codes are kept stable even when a tag loses its last node *)
  ( assemble ~tags ~parents ~values ~tag_names:t.tag_names
      ~tag_codes:t.tag_codes,
    map )

let size t = t.size
let root _ = 0
let tag t n = t.tags.(n)
let tag_name t n = t.tag_names.(t.tags.(n))
let parent t n = if t.parents.(n) < 0 then None else Some t.parents.(n)
let children t n = t.child_arr.(n)
let value t n = t.values.(n)
let tag_count t = Array.length t.tag_names
let tag_to_string t c = t.tag_names.(c)
let tag_of_string t name = Hashtbl.find_opt t.tag_codes name
let nodes_with_tag t c = t.by_tag.(c)
let depth t n = t.depths.(n)

let iter t f =
  for i = 0 to t.size - 1 do
    f i
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc i
  done;
  !acc

let children_with_tag t n c =
  Array.fold_left (fun acc k -> if t.tags.(k) = c then acc + 1 else acc) 0 t.child_arr.(n)

let max_depth t = t.max_depth

let leaf_count t =
  fold t ~init:0 ~f:(fun acc n ->
      if Array.length t.child_arr.(n) = 0 then acc + 1 else acc)

let label_path t n =
  let rec up n acc =
    let acc = tag_name t n :: acc in
    match parent t n with None -> acc | Some p -> up p acc
  in
  up n []

let pp_summary ppf t =
  Format.fprintf ppf "document: %d nodes, %d tags, depth %d" t.size
    (tag_count t) (max_depth t)
