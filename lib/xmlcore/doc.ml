type node = int
type tag = int

type t = {
  size : int;
  tags : tag array;
  parents : node array; (* -1 for the root *)
  child_arr : node array array;
  values : Value.t array;
  tag_names : string array;
  tag_codes : (string, tag) Hashtbl.t;
  by_tag : node array array;
  depths : int array;
  max_depth : int; (* cached: consulted per embedding enumeration *)
}

module Builder = struct
  type b = {
    mutable n : int;
    mutable tags : tag array;
    mutable parents : node array;
    mutable values : Value.t array;
    mutable kids : node list array; (* reversed child lists *)
    mutable names : string list;   (* reversed interned names *)
    mutable name_count : int;
    codes : (string, tag) Hashtbl.t;
    mutable finished : bool;
  }

  type t = b

  let create ?(hint = 1024) () =
    {
      n = 0;
      tags = Array.make hint 0;
      parents = Array.make hint (-1);
      values = Array.make hint Value.Null;
      kids = Array.make hint [];
      names = [];
      name_count = 0;
      codes = Hashtbl.create 64;
      finished = false;
    }

  let intern b name =
    match Hashtbl.find_opt b.codes name with
    | Some c -> c
    | None ->
        let c = b.name_count in
        Hashtbl.add b.codes name c;
        b.names <- name :: b.names;
        b.name_count <- c + 1;
        c

  let grow b =
    let cap = Array.length b.tags in
    if b.n >= cap then begin
      let cap' = Stdlib.max 8 (cap * 2) in
      let extend a fill =
        let a' = Array.make cap' fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.tags <- extend b.tags 0;
      b.parents <- extend b.parents (-1);
      b.values <- extend b.values Value.Null;
      b.kids <- extend b.kids []
    end

  let alloc b parent value name =
    assert (not b.finished);
    grow b;
    let id = b.n in
    b.n <- id + 1;
    b.tags.(id) <- intern b name;
    b.parents.(id) <- parent;
    b.values.(id) <- value;
    b.kids.(id) <- [];
    if parent >= 0 then b.kids.(parent) <- id :: b.kids.(parent);
    id

  let root b ?(value = Value.Null) name =
    assert (b.n = 0);
    alloc b (-1) value name

  let child b parent ?(value = Value.Null) name =
    assert (parent >= 0 && parent < b.n);
    alloc b parent value name

  let set_value b node v =
    assert (node >= 0 && node < b.n);
    b.values.(node) <- v

  let finish b =
    assert (not b.finished);
    assert (b.n > 0);
    b.finished <- true;
    let size = b.n in
    let tags = Array.sub b.tags 0 size in
    let parents = Array.sub b.parents 0 size in
    let values = Array.sub b.values 0 size in
    let child_arr =
      Array.init size (fun i -> Array.of_list (List.rev b.kids.(i)))
    in
    let tag_names = Array.of_list (List.rev b.names) in
    let counts = Array.make (Array.length tag_names) 0 in
    Array.iter (fun t -> counts.(t) <- counts.(t) + 1) tags;
    let by_tag = Array.map (fun c -> Array.make c 0) counts in
    let fill = Array.make (Array.length tag_names) 0 in
    for i = 0 to size - 1 do
      let t = tags.(i) in
      by_tag.(t).(fill.(t)) <- i;
      fill.(t) <- fill.(t) + 1
    done;
    let depths = Array.make size 0 in
    for i = 1 to size - 1 do
      (* parents precede children because ids are allocated top-down *)
      depths.(i) <- depths.(parents.(i)) + 1
    done;
    {
      size;
      tags;
      parents;
      child_arr;
      values;
      tag_names;
      tag_codes = b.codes;
      by_tag;
      depths;
      max_depth = Array.fold_left Stdlib.max 0 depths;
    }
end

let size t = t.size
let root _ = 0
let tag t n = t.tags.(n)
let tag_name t n = t.tag_names.(t.tags.(n))
let parent t n = if t.parents.(n) < 0 then None else Some t.parents.(n)
let children t n = t.child_arr.(n)
let value t n = t.values.(n)
let tag_count t = Array.length t.tag_names
let tag_to_string t c = t.tag_names.(c)
let tag_of_string t name = Hashtbl.find_opt t.tag_codes name
let nodes_with_tag t c = t.by_tag.(c)
let depth t n = t.depths.(n)

let iter t f =
  for i = 0 to t.size - 1 do
    f i
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc i
  done;
  !acc

let children_with_tag t n c =
  Array.fold_left (fun acc k -> if t.tags.(k) = c then acc + 1 else acc) 0 t.child_arr.(n)

let max_depth t = t.max_depth

let leaf_count t =
  fold t ~init:0 ~f:(fun acc n ->
      if Array.length t.child_arr.(n) = 0 then acc + 1 else acc)

let label_path t n =
  let rec up n acc =
    let acc = tag_name t n :: acc in
    match parent t n with None -> acc | Some p -> up p acc
  in
  up n []

let pp_summary ppf t =
  Format.fprintf ppf "document: %d nodes, %d tags, depth %d" t.size
    (tag_count t) (max_depth t)
