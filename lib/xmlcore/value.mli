(** Leaf values attached to document nodes.

    Following the paper's data model, leaf elements (and attributes)
    carry values; interior elements carry [Null]. Numeric values are
    the ones value predicates range over. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

val is_null : t -> bool

val as_float : t -> float option
(** Numeric view: [Int] and [Float] convert; [Text] parses if it is a
    number; [Null] and non-numeric text are [None]. *)

val to_string : t -> string
(** Rendering used by the serializer; [Null] renders as [""]. *)

val of_string : string -> t
(** Inverse of {!to_string} modulo numeric canonicalization: integers
    parse to [Int], other numbers to [Float], everything else to
    [Text]; [""] parses to [Null]. *)

val of_slice : Bytes.t -> pos:int -> len:int -> t
(** [of_string] over a byte slice, allocating the string only when the
    result is [Text] or the shape needs the full parser. Agrees with
    [of_string (Bytes.sub_string b pos len)] exactly — the streaming
    parser's value classification ({!Sax}). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
