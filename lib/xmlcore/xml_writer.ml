let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write_node buf doc node depth =
  let pad = String.make (2 * depth) ' ' in
  let name = Doc.tag_name doc node in
  let kids = Doc.children doc node in
  let v = Doc.value doc node in
  if Array.length kids = 0 then
    if Value.is_null v then
      Buffer.add_string buf (Printf.sprintf "%s<%s/>\n" pad name)
    else
      Buffer.add_string buf
        (Printf.sprintf "%s<%s>%s</%s>\n" pad name
           (escape (Value.to_string v))
           name)
  else begin
    Buffer.add_string buf (Printf.sprintf "%s<%s>" pad name);
    if not (Value.is_null v) then
      Buffer.add_string buf (escape (Value.to_string v));
    Buffer.add_char buf '\n';
    Array.iter (fun k -> write_node buf doc k (depth + 1)) kids;
    Buffer.add_string buf (Printf.sprintf "%s</%s>\n" pad name)
  end

let to_buffer buf doc = write_node buf doc (Doc.root doc) 0

let to_string doc =
  let buf = Buffer.create (64 * Doc.size doc) in
  to_buffer buf doc;
  Buffer.contents buf

let to_file path doc =
  Xtwig_fault.Fault.point "xml.write";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (64 * Doc.size doc) in
      to_buffer buf doc;
      Buffer.output_buffer oc buf)

let text_size doc =
  let buf = Buffer.create (64 * Doc.size doc) in
  to_buffer buf doc;
  Buffer.length buf
