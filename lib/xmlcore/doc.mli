(** Immutable XML document trees.

    A document is an arena of nodes identified by dense integer ids
    (the root has id 0). Tags are interned to integer codes. The
    representation is struct-of-arrays so that the exact evaluator,
    synopsis construction and dataset generators can traverse ~100K
    element documents cheaply. *)

type node = int
(** Node identifier, [0 .. size - 1]. *)

type tag = int
(** Interned tag code, [0 .. tag_count - 1]. *)

type t

(** {1 Construction} *)

module Builder : sig
  type doc := t
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] pre-sizes the arenas. *)

  val root : t -> ?value:Value.t -> string -> node
  (** Creates the root node. Must be called exactly once, first. *)

  val child : t -> node -> ?value:Value.t -> string -> node
  (** [child b parent tag] appends a new child under [parent]. *)

  val set_value : t -> node -> Value.t -> unit

  val finish : t -> doc
  (** Freezes the builder. The builder must not be reused. *)
end

val of_columns :
  tags:tag array ->
  parents:node array ->
  values:Value.t array ->
  tag_names:string array ->
  t
(** Bulk constructor over pre-assembled columns — the freeze step of
    the streaming parser's arena ({!Sax}). Requirements (checked,
    [Invalid_argument] otherwise): non-empty; [parents.(0) = -1];
    [parents.(i) < i] for every other node (parents precede children,
    sibling order = id order); tag codes index [tag_names]; tag names
    distinct. Child arrays, per-tag indexes and depths are derived in
    bulk passes. *)

(** {1 Splicing}

    Functional subtree edits, the document half of synopsis deltas.
    Both return a new document; the receiver is untouched. *)

val splice_insert : t -> parent:node -> fragment:t -> t
(** Graft [fragment] (its root becomes the last child of [parent]).
    Existing nodes keep their ids and tag codes — the result extends
    the id space, fragment node [j] becoming [size t + j] — so
    per-node state carries over by identity. Fragment tags are
    re-interned, appending new codes. *)

val splice_delete : t -> node -> t * int array
(** Remove the subtree rooted at [node] (the root itself cannot be
    deleted). Returns the new document and the old-id-to-new-id map
    ([-1] for removed nodes); surviving nodes keep their relative
    order and all tag codes remain valid. *)

(** {1 Accessors} *)

val size : t -> int
(** Number of nodes (the paper's "element count"). *)

val root : t -> node
val tag : t -> node -> tag
val tag_name : t -> node -> string
val parent : t -> node -> node option
val children : t -> node -> node array
(** Children in document order. Do not mutate the returned array. *)

val value : t -> node -> Value.t
val tag_count : t -> int
val tag_to_string : t -> tag -> string
val tag_of_string : t -> string -> tag option
val nodes_with_tag : t -> tag -> node array
(** All nodes carrying [tag], in document order. Do not mutate. *)

val depth : t -> node -> int
(** Root has depth 0. *)

(** {1 Traversal} *)

val iter : t -> (node -> unit) -> unit
(** Visits every node in document (pre)order. *)

val fold : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val children_with_tag : t -> node -> tag -> int
(** Number of children of the node carrying the given tag — the
    "forward count" primitive of edge distributions. *)

(** {1 Statistics} *)

val max_depth : t -> int
val leaf_count : t -> int
val label_path : t -> node -> string list
(** Tags from the root down to (and including) the node. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: node count, tag count, max depth. *)
