(** A small XML parser for the subset the repository produces and the
    paper's data model needs.

    Supported: elements, attributes (turned into leaf child nodes, per
    the paper's convention that attributes are containment children),
    text content (attached as the element's value; surrounding
    whitespace trimmed), character entities, comments, XML
    declarations, CDATA. Not supported: namespaces, DTDs, processing
    instructions other than the declaration.

    Round-trip property: [parse_string (Xml_writer.to_string d)] is
    structurally equal to [d] for any document built by this
    repository. *)

val parse_string_res : string -> (Doc.t, Xtwig_util.Xerror.t) result
(** Errors are [Xerror.Parse (Xml, _)] with message and position. This
    is the supported entry point. Runs through the [xml.parse] fault
    point; an injected fault surfaces as [Xerror.Io]. *)

val parse_file_res : string -> (Doc.t, Xtwig_util.Xerror.t) result
(** As {!parse_string_res}; file-system failures are [Xerror.Io].
    Streams the file through a bounded window ({!Sax.parse_channel})
    instead of materialising it. *)

val reference_parse_string_res : string -> (Doc.t, Xtwig_util.Xerror.t) result
(** The PR-8 whole-string recursive parser, kept as the differential
    baseline: [bench ingest] reports the streaming parser's speedup
    over it and the tests assert both produce identical documents.
    Not on any production path; no fault point. *)
