exception Error of string

(* ------------------------------------------------------------------ *)
(* Input window                                                        *)

(* A bounded window over the input. [read buf pos len] refills like
   [input]; 0 means end of input. [tok] pins a window index across
   refills (compaction rebases it instead of discarding the bytes),
   which is how name/entity slices survive a chunk boundary without
   being copied out. *)
type st = {
  read : Bytes.t -> int -> int -> int;
  mutable buf : Bytes.t;
  mutable len : int; (* valid bytes in [buf] *)
  mutable pos : int; (* cursor *)
  mutable base : int; (* absolute offset of buf.[0] *)
  mutable tok : int; (* pinned token start, -1 = none *)
  mutable seen_eof : bool;
  mutable line : int;
  mutable nhash : int; (* hash of the last scanned name (fused in scan_name) *)
}

let count_nl b off len =
  let n = ref 0 in
  for i = off to off + len - 1 do
    if Bytes.unsafe_get b i = '\n' then incr n
  done;
  !n

(* [st.line] counts newlines already slid out of the window (plus 1);
   the newlines still in the window are only counted here, on the cold
   error path — the hot loops never track lines. *)
let fail st msg =
  let line = st.line + count_nl st.buf 0 st.pos in
  raise
    (Error (Printf.sprintf "line %d (offset %d): %s" line (st.base + st.pos) msg))

let refill st =
  if st.seen_eof then false
  else begin
    let keep = if st.tok >= 0 && st.tok < st.pos then st.tok else st.pos in
    if keep > 0 then begin
      (* the discarded bytes leave the window for good: bank their
         newlines now so [fail] can recover exact line numbers *)
      st.line <- st.line + count_nl st.buf 0 keep;
      Bytes.blit st.buf keep st.buf 0 (st.len - keep);
      st.base <- st.base + keep;
      st.len <- st.len - keep;
      st.pos <- st.pos - keep;
      if st.tok >= 0 then st.tok <- st.tok - keep
    end;
    if st.len = Bytes.length st.buf then begin
      (* a pinned token fills the whole window: grow it *)
      let b = Bytes.create (2 * Bytes.length st.buf) in
      Bytes.blit st.buf 0 b 0 st.len;
      st.buf <- b
    end;
    Xtwig_fault.Fault.point "ingest.chunk";
    let n = st.read st.buf st.len (Bytes.length st.buf - st.len) in
    if n = 0 then begin
      st.seen_eof <- true;
      false
    end
    else begin
      st.len <- st.len + n;
      true
    end
  end

let rec ensure_slow st n =
  st.len - st.pos >= n || (refill st && ensure_slow st n) || st.len - st.pos >= n

let[@inline] ensure st n = st.len - st.pos >= n || ensure_slow st n
let[@inline] at_eof st = not (ensure st 1)

(* only called with at least one byte ensured *)
let[@inline] advance st = st.pos <- st.pos + 1

(* Top-level so no closure is allocated per call (the non-flambda
   compiler heap-allocates capturing local [let rec]s, which is real
   per-node garbage on the hot path). *)
let rec bytes_eq_str b p s i n =
  i = n || (Bytes.unsafe_get b (p + i) = String.unsafe_get s i && bytes_eq_str b p s (i + 1) n)

let looking_at st s =
  let n = String.length s in
  ensure st n && bytes_eq_str st.buf st.pos s 0 n

(* the expected literals never contain a newline *)
let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let rec skip_until st marker =
  let n = String.length marker in
  if not (ensure st n) then
    fail st (Printf.sprintf "unterminated, expected %S" marker)
  else if looking_at st marker then st.pos <- st.pos + n
  else begin
    advance st;
    skip_until st marker
  end

let rec skip_ws st =
  let b = st.buf and lim = st.len in
  let i = ref st.pos in
  let more = ref true in
  while !more && !i < lim do
    match Bytes.unsafe_get b !i with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | _ -> more := false
  done;
  st.pos <- !i;
  if !more && refill st then skip_ws st

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    st.pos <- st.pos + 9;
    skip_until st ">";
    skip_misc st
  end

let name_char_tbl =
  let t = Bytes.make 256 '\000' in
  String.iter
    (fun c -> Bytes.set t (Char.code c) '\001')
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:@";
  t

let[@inline] is_name_char c =
  Bytes.unsafe_get name_char_tbl (Char.code c) <> '\000'

(* Scan a name in place and return its length; the slice starts at
   [st.pos - len]. Valid only until the next [ensure]; callers intern
   or compare it immediately. Name characters never include a
   newline. Returns the length rather than a (start, len) pair so the
   hot path does not allocate a tuple per name. *)
let scan_name st =
  if at_eof st then fail st "expected a name";
  st.tok <- st.pos;
  let more = ref true in
  let h = ref 0x811c9dc5 in
  while !more do
    let b = st.buf and lim = st.len in
    let i = ref st.pos in
    let hh = ref !h in
    let go = ref true in
    while !go && !i < lim do
      let c = Bytes.unsafe_get b !i in
      if is_name_char c then begin
        hh := (!hh lxor Char.code c) * 0x01000193 land 0x3FFFFFFF;
        incr i
      end
      else go := false
    done;
    h := !hh;
    st.pos <- !i;
    if !i < lim then more := false else if not (refill st) then more := false
  done;
  let l = st.pos - st.tok in
  st.tok <- -1;
  if l = 0 then fail st "expected a name";
  st.nhash <- !h;
  l

(* ------------------------------------------------------------------ *)
(* Growable byte buffer (text scratch / per-depth accumulators)        *)

type tbuf = { mutable b : Bytes.t; mutable l : int }

let tbuf_create n = { b = Bytes.create n; l = 0 }
let tbuf_clear t = t.l <- 0

let tbuf_reserve t n =
  if t.l + n > Bytes.length t.b then begin
    let cap = ref (2 * Bytes.length t.b) in
    while t.l + n > !cap do
      cap := 2 * !cap
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.b 0 b 0 t.l;
    t.b <- b
  end

let tbuf_add_char t c =
  tbuf_reserve t 1;
  Bytes.unsafe_set t.b t.l c;
  t.l <- t.l + 1

(* [Bytes.blit] is a C call; most copies here are a handful of bytes
   (tag gaps, attribute values, short texts), where an inline loop is
   cheaper. Only used between distinct buffers. *)
let[@inline] blit_small src soff dst doff len =
  if len < 16 then
    for i = 0 to len - 1 do
      Bytes.unsafe_set dst (doff + i) (Bytes.unsafe_get src (soff + i))
    done
  else Bytes.blit src soff dst doff len

let tbuf_add_sub t src off len =
  tbuf_reserve t len;
  blit_small src off t.b t.l len;
  t.l <- t.l + len

(* ------------------------------------------------------------------ *)
(* Slice interner                                                      *)

(* Tag names interned straight from window slices: lookup hashes the
   bytes and compares against stored names without allocating; only a
   first sighting copies the slice out. Open addressing with linear
   probing — [slots.(i)] holds code + 1, 0 means empty — because a
   generic [Hashtbl.find] costs a seeded C hash call per lookup and
   this runs twice per element. *)
type interner = {
  mutable names : string array; (* code -> name *)
  mutable count : int;
  mutable slots : int array; (* hash-indexed, code + 1; 0 = empty *)
  mutable mask : int;
}

let interner_create () =
  { names = Array.make 16 ""; count = 0; slots = Array.make 128 0; mask = 127 }

let hash_str s =
  let h = ref 0x811c9dc5 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let slice_eq b off len s =
  String.length s = len && bytes_eq_str b off s 0 len

let interner_rehash it =
  let cap = 2 * (it.mask + 1) in
  let slots = Array.make cap 0 in
  let mask = cap - 1 in
  for c = 0 to it.count - 1 do
    let i = ref (hash_str it.names.(c) land mask) in
    while slots.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- c + 1
  done;
  it.slots <- slots;
  it.mask <- mask

let intern it h b off len =
  let slots = it.slots and mask = it.mask and names = it.names in
  let i = ref (h land mask) in
  let found = ref (-1) in
  let probing = ref true in
  while !probing do
    let c = Array.unsafe_get slots !i in
    if c = 0 then probing := false
    else if slice_eq b off len names.(c - 1) then begin
      found := c - 1;
      probing := false
    end
    else i := (!i + 1) land mask
  done;
  if !found >= 0 then !found
  else begin
    let c = it.count in
    if c = Array.length it.names then begin
      let a = Array.make (2 * c) "" in
      Array.blit it.names 0 a 0 c;
      it.names <- a
    end;
    it.names.(c) <- Bytes.sub_string b off len;
    it.count <- c + 1;
    slots.(!i) <- c + 1;
    if 2 * it.count > it.mask then interner_rehash it;
    c
  end

(* ------------------------------------------------------------------ *)
(* Arena node store                                                    *)

module BA = Bigarray.Array1

(* Native-int Bigarray columns: reads and writes are unboxed (an
   [Int32] element kind would box a fresh int32 on every store, which
   is exactly the per-node allocation the arena exists to avoid), and
   the columns live outside the OCaml heap so the GC never scans
   them. *)
type col = (int, Bigarray.int_elt, Bigarray.c_layout) BA.t

let ba n : col = BA.create Bigarray.Int Bigarray.C_layout n

let ba_grow (a : col) : col =
  let b = ba (2 * BA.dim a) in
  BA.blit a (BA.sub b 0 (BA.dim a));
  b

(* Struct-of-arrays store the parse events write into: tag code,
   parent and value span per node as columns, plus one shared byte
   heap holding every value's text. *)
type arena = {
  it : interner;
  mutable tags : col;
  mutable parents : col;
  mutable voff : col;
  mutable vlen : col;
  mutable n : int;
  mutable heap : Bytes.t;
  mutable hlen : int;
}

let arena_create ?(hint = 1024) () =
  {
    it = interner_create ();
    tags = ba hint;
    parents = ba hint;
    voff = ba hint;
    vlen = ba hint;
    n = 0;
    heap = Bytes.create 4096;
    hlen = 0;
  }

let add_node ar ~parent ~tag =
  if ar.n = BA.dim ar.tags then begin
    ar.tags <- ba_grow ar.tags;
    ar.parents <- ba_grow ar.parents;
    ar.voff <- ba_grow ar.voff;
    ar.vlen <- ba_grow ar.vlen
  end;
  let id = ar.n in
  ar.n <- id + 1;
  BA.unsafe_set ar.tags id tag;
  BA.unsafe_set ar.parents id parent;
  BA.unsafe_set ar.voff id 0;
  BA.unsafe_set ar.vlen id 0;
  id

let set_value_span ar id (src : tbuf) =
  if src.l > 0 then begin
    if ar.hlen + src.l > Bytes.length ar.heap then begin
      let cap = ref (2 * Bytes.length ar.heap) in
      while ar.hlen + src.l > !cap do
        cap := 2 * !cap
      done;
      let h = Bytes.create !cap in
      Bytes.blit ar.heap 0 h 0 ar.hlen;
      ar.heap <- h
    end;
    blit_small src.b 0 ar.heap ar.hlen src.l;
    BA.unsafe_set ar.voff id ar.hlen;
    BA.unsafe_set ar.vlen id src.l;
    ar.hlen <- ar.hlen + src.l
  end

let to_doc ar =
  let n = ar.n in
  let tags = Array.make n 0 in
  let parents = Array.make n 0 in
  let values = Array.make n Value.Null in
  for i = 0 to n - 1 do
    Array.unsafe_set tags i (BA.unsafe_get ar.tags i);
    Array.unsafe_set parents i (BA.unsafe_get ar.parents i);
    let l = BA.unsafe_get ar.vlen i in
    if l > 0 then
      Array.unsafe_set values i
        (Value.of_slice ar.heap ~pos:(BA.unsafe_get ar.voff i) ~len:l)
  done;
  let tag_names = Array.sub ar.it.names 0 ar.it.count in
  Doc.of_columns ~tags ~parents ~values ~tag_names

(* ------------------------------------------------------------------ *)
(* Entity and text decoding                                            *)

let rec scan_to_semi st =
  if not (ensure st 1) then begin
    st.tok <- -1;
    fail st "unterminated entity"
  end
  else if Bytes.unsafe_get st.buf st.pos = ';' then ()
  else begin
    advance st;
    scan_to_semi st
  end

(* Every supported entity decodes to exactly one byte, so this
   returns the char instead of writing through a buffer — the content
   path feeds it into the trim/join state machine directly. *)
let decode_entity st =
  (* called just past '&' *)
  st.tok <- st.pos;
  scan_to_semi st;
  let s = st.tok and l = st.pos - st.tok in
  st.pos <- st.pos + 1;
  (* skip ';' *)
  st.tok <- -1;
  let b = st.buf in
  if slice_eq b s l "amp" then '&'
  else if slice_eq b s l "lt" then '<'
  else if slice_eq b s l "gt" then '>'
  else if slice_eq b s l "quot" then '"'
  else if slice_eq b s l "apos" then '\''
  else if l > 1 && Bytes.get b s = '#' then begin
    let hex = l > 2 && (Bytes.get b (s + 1) = 'x' || Bytes.get b (s + 1) = 'X') in
    let first = s + if hex then 2 else 1 in
    let code = ref 0 in
    let digits = ref 0 in
    let valid = ref (first < s + l) in
    for i = first to s + l - 1 do
      let c = Bytes.get b i in
      let d =
        if c >= '0' && c <= '9' then Char.code c - Char.code '0'
        else if hex && c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
        else if hex && c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
        else if c = '_' && i > first then -1 (* int_of_string's separator *)
        else -2
      in
      if d = -2 then valid := false
      else if d >= 0 then begin
        incr digits;
        if !code < 0x110000 then code := (!code * if hex then 16 else 10) + d
      end
    done;
    if (not !valid) || !digits = 0 then
      fail st
        (Printf.sprintf "bad character reference &%s;" (Bytes.sub_string b s l))
    else if !code < 128 then Char.chr !code
    else '?'
  end
  else fail st (Printf.sprintf "unknown entity &%s;" (Bytes.sub_string b s l))

(* String.trim's whitespace set *)
let is_sp c = c = ' ' || c = '\012' || c = '\n' || c = '\r' || c = '\t'

(* Content text streams straight into the owning element's accumulator
   [dst] with the reference parser's semantics — each segment (the
   text between structural tags) is trimmed and non-empty segments are
   space-joined — maintained incrementally: [started] says whether
   this segment has contributed a non-whitespace byte yet (so leading
   whitespace is dropped and the join space added exactly once), and
   [pend] buffers the whitespace run seen since the last
   non-whitespace byte (flushed if more text follows, discarded at the
   segment end, where it is trailing). *)

let app_char pend dst started c =
  if is_sp c then begin
    if started then tbuf_add_char pend c;
    started
  end
  else begin
    if not started then begin
      if dst.l > 0 then tbuf_add_char dst ' '
    end
    else if pend.l > 0 then begin
      tbuf_add_sub dst pend.b 0 pend.l;
      tbuf_clear pend
    end;
    tbuf_add_char dst c;
    true
  end

let app_run pend dst started b off fin =
  let i = ref off in
  if not started then
    while !i < fin && is_sp (Bytes.unsafe_get b !i) do
      incr i
    done;
  if !i >= fin then started
  else begin
    (* hold back the trailing whitespace of the run *)
    let k = ref fin in
    while !k > !i && is_sp (Bytes.unsafe_get b (!k - 1)) do
      decr k
    done;
    if !k > !i then begin
      if not started then begin
        if dst.l > 0 then tbuf_add_char dst ' '
      end
      else if pend.l > 0 then begin
        tbuf_add_sub dst pend.b 0 pend.l;
        tbuf_clear pend
      end;
      tbuf_add_sub dst b !i (!k - !i);
      tbuf_add_sub pend b !k (fin - !k);
      true
    end
    else begin
      (* run is all whitespace and the segment has started: pend it *)
      tbuf_add_sub pend b !i (fin - !i);
      started
    end
  end

let rec read_cdata st pend dst started =
  if not (ensure st 3) then
    (* fewer than 3 bytes remain, so no terminator fits; the reference
       parser consumes them as content and reports the error at
       end-of-input — mirror its position exactly *)
    if ensure st 1 then begin
      let started = app_char pend dst started (Bytes.unsafe_get st.buf st.pos) in
      advance st;
      read_cdata st pend dst started
    end
    else fail st "expected \"]]>\""
  else
    let b = st.buf and p = st.pos in
    if
      Bytes.unsafe_get b p = ']'
      && Bytes.unsafe_get b (p + 1) = ']'
      && Bytes.unsafe_get b (p + 2) = '>'
    then begin
      st.pos <- p + 3;
      started
    end
    else begin
      let started = app_char pend dst started (Bytes.unsafe_get b p) in
      advance st;
      read_cdata st pend dst started
    end

(* One maximal text segment: characters, entities and CDATA sections
   up to the next structural '<' (or end of input), streamed into
   [dst] through the trim/join state machine above. Plain character
   runs are located with a tight window scan and blitted in bulk. *)
let rec read_segment st pend dst started =
  if ensure st 1 then begin
    let c = Bytes.unsafe_get st.buf st.pos in
    if c = '<' then begin
      (* one-byte pre-check: most '<' start tags, not CDATA sections *)
      if
        ensure st 2
        && Bytes.unsafe_get st.buf (st.pos + 1) = '!'
        && looking_at st "<![CDATA["
      then begin
        st.pos <- st.pos + 9;
        let started = read_cdata st pend dst started in
        read_segment st pend dst started
      end
    end
    else if c = '&' then begin
      advance st;
      let started = app_char pend dst started (decode_entity st) in
      read_segment st pend dst started
    end
    else begin
      let b = st.buf in
      let i = ref st.pos in
      let stop = ref false in
      while (not !stop) && !i < st.len do
        let c = Bytes.unsafe_get b !i in
        if c = '<' || c = '&' then stop := true else incr i
      done;
      let started = app_run pend dst started b st.pos !i in
      st.pos <- !i;
      read_segment st pend dst started
    end
  end

let rec attr_value_tail st dst quote =
  if at_eof st then fail st "unterminated attribute value"
  else
    let c = Bytes.unsafe_get st.buf st.pos in
    if c = quote then advance st
    else if c = '&' then begin
      advance st;
      tbuf_add_char dst (decode_entity st);
      attr_value_tail st dst quote
    end
    else begin
      (* bulk run up to the closing quote or an entity *)
      let b = st.buf in
      let i = ref st.pos in
      let stop = ref false in
      while (not !stop) && !i < st.len do
        let c = Bytes.unsafe_get b !i in
        if c = quote || c = '&' then stop := true else incr i
      done;
      tbuf_add_sub dst b st.pos (!i - st.pos);
      st.pos <- !i;
      attr_value_tail st dst quote
    end

let read_attr_value st dst =
  tbuf_clear dst;
  if at_eof st then fail st "expected a quoted attribute value";
  let quote = Bytes.unsafe_get st.buf st.pos in
  if quote <> '"' && quote <> '\'' then
    fail st "expected a quoted attribute value";
  advance st;
  attr_value_tail st dst quote

(* ------------------------------------------------------------------ *)
(* Parser driver                                                       *)

type ps = {
  mutable stack_node : int array; (* open element arena ids *)
  mutable stack_tag : int array; (* and their tag codes *)
  mutable texts : tbuf array; (* per-depth text accumulators *)
  mutable depth : int;
  seg : tbuf; (* pending-whitespace scratch for the trim/join machine *)
  attr : tbuf; (* shared attribute-value scratch *)
}

let ps_create () =
  {
    stack_node = Array.make 32 0;
    stack_tag = Array.make 32 0;
    texts = Array.init 32 (fun _ -> tbuf_create 64);
    depth = 0;
    seg = tbuf_create 256;
    attr = tbuf_create 64;
  }

let push ps node tag =
  let d = ps.depth in
  if d = Array.length ps.stack_node then begin
    let grow a fill =
      let a' = Array.make (2 * d) fill in
      Array.blit a 0 a' 0 d;
      a'
    in
    ps.stack_node <- grow ps.stack_node 0;
    ps.stack_tag <- grow ps.stack_tag 0;
    let t' = Array.init (2 * d) (fun i -> if i < d then ps.texts.(i) else tbuf_create 64) in
    ps.texts <- t'
  end;
  ps.stack_node.(d) <- node;
  ps.stack_tag.(d) <- tag;
  tbuf_clear ps.texts.(d);
  ps.depth <- d + 1

(* <name attr="v"...> — allocates the element and its attribute leaves
   in the arena; pushes unless self-closing. *)
let rec attrs st ar ps node =
  skip_ws st;
  if at_eof st then fail st "expected a name"
  else
    match Bytes.unsafe_get st.buf st.pos with
    | '>' | '/' -> ()
    | _ ->
        let l = scan_name st in
        let atag = intern ar.it st.nhash st.buf (st.pos - l) l in
        (* fast path: '=' immediately after the name *)
        if ensure st 1 && Bytes.unsafe_get st.buf st.pos = '=' then
          st.pos <- st.pos + 1
        else begin
          skip_ws st;
          expect st "="
        end;
        skip_ws st;
        read_attr_value st ps.attr;
        let anode = add_node ar ~parent:node ~tag:atag in
        set_value_span ar anode ps.attr;
        attrs st ar ps node

let open_element st ar ps parent =
  (* callers ensured a byte is available *)
  if Bytes.unsafe_get st.buf st.pos <> '<' then fail st "expected \"<\"";
  st.pos <- st.pos + 1;
  let l = scan_name st in
  let tag = intern ar.it st.nhash st.buf (st.pos - l) l in
  let node = add_node ar ~parent ~tag in
  (* fast path: '>' right after the name (no attributes) *)
  if ensure st 1 && Bytes.unsafe_get st.buf st.pos = '>' then begin
    st.pos <- st.pos + 1;
    push ps node tag
  end
  else begin
    attrs st ar ps node;
    if looking_at st "/>" then st.pos <- st.pos + 2
    else begin
      expect st ">";
      push ps node tag
    end
  end

let close_element st ar ps =
  (* just past "</" *)
  let l = scan_name st in
  let s = st.pos - l in
  let d = ps.depth - 1 in
  let open_name = ar.it.names.(ps.stack_tag.(d)) in
  if not (slice_eq st.buf s l open_name) then
    fail st
      (Printf.sprintf "mismatched close tag </%s> for <%s>"
         (Bytes.sub_string st.buf s l)
         open_name);
  (* fast path: '>' immediately after the name *)
  if ensure st 1 && Bytes.unsafe_get st.buf st.pos = '>' then st.pos <- st.pos + 1
  else begin
    skip_ws st;
    expect st ">"
  end;
  set_value_span ar ps.stack_node.(d) ps.texts.(d);
  ps.depth <- d

let run st =
  let ar = arena_create () in
  let ps = ps_create () in
  skip_misc st;
  if at_eof st then fail st "empty document";
  open_element st ar ps (-1);
  while ps.depth > 0 do
    tbuf_clear ps.seg;
    read_segment st ps.seg ps.texts.(ps.depth - 1) false;
    if at_eof st then
      fail st
        (Printf.sprintf "unterminated element <%s>"
           ar.it.names.(ps.stack_tag.(ps.depth - 1)))
    else begin
      (* at a structural '<': dispatch on the next byte instead of
         prefix-matching each alternative *)
      let c2 =
        if ensure st 2 then Bytes.unsafe_get st.buf (st.pos + 1) else '\000'
      in
      if c2 = '/' then begin
        st.pos <- st.pos + 2;
        close_element st ar ps
      end
      else if c2 = '!' && looking_at st "<!--" then begin
        st.pos <- st.pos + 4;
        skip_until st "-->"
      end
      else open_element st ar ps ps.stack_node.(ps.depth - 1)
    end
  done;
  skip_misc st;
  if not (at_eof st) then fail st "trailing content after the root element";
  to_doc ar

let make ~chunk read =
  {
    read;
    buf = Bytes.create (max 64 chunk);
    len = 0;
    pos = 0;
    base = 0;
    tok = -1;
    seen_eof = false;
    line = 1;
    nhash = 0;
  }

let parse_string ?chunk s =
  match chunk with
  | None ->
      (* whole input preloaded as a single window: no reader round
         trips, no compaction. The [ingest.chunk] fault point still
         fires once, standing in for the one chunk this path reads. *)
      Xtwig_fault.Fault.point "ingest.chunk";
      run
        {
          read = (fun _ _ _ -> 0);
          buf = Bytes.of_string s;
          len = String.length s;
          pos = 0;
          base = 0;
          tok = -1;
          seen_eof = true;
          line = 1;
          nhash = 0;
        }
  | Some c ->
      (* each read delivers at most [chunk] bytes (the window itself
         never shrinks below 64): small chunks force the refill and
         compaction paths at every token boundary, which is the whole
         point of this knob *)
      let chunk = max 1 c in
      let off = ref 0 in
      let read buf pos len =
        let n = min (min len chunk) (String.length s - !off) in
        Bytes.blit_string s !off buf pos n;
        off := !off + n;
        n
      in
      run (make ~chunk read)

let parse_channel ?(chunk = 1 lsl 18) ic =
  run (make ~chunk:(max 1 chunk) (fun buf pos len -> input ic buf pos len))
