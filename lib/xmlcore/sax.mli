(** Chunked SAX-style streaming XML parser over an arena node store.

    The PR-8 parser materialised the whole input string, then built a
    pointer-rich tree through {!Doc.Builder} — one closure frame, one
    child-list cons and several short-lived strings per element. This
    module parses the same XML subset (see {!Xml_parser}) in a single
    forward pass over a bounded window of the input, emitting
    open/close/text events straight into a struct-of-arrays arena:
    int32 Bigarray columns for tag codes, parents and value spans, and
    one shared byte heap for text. The hot loop allocates no per-node
    OCaml values — names are interned by hashing window slices, text
    runs are blitted in bulk, and the only per-document allocations
    happen in the final {!Doc.of_columns} freeze.

    The produced document is byte-identical to the reference parser's:
    same node ids (pre-order), same tag-interning order (element name
    first, then its attributes, depth-first), same value semantics
    ([Value.of_string] over the joined, trimmed text segments).

    Every window refill passes the [ingest.chunk] fault point, so the
    fault matrix can exercise mid-parse I/O failures. *)

exception Error of string
(** Parse failure, formatted as ["line %d (offset %d): %s"] — the same
    shape as {!Xml_parser}'s errors. *)

val parse_string : ?chunk:int -> string -> Doc.t
(** Parse from a string. [chunk] bounds the streaming window and each
    reader refill (default: one window covering the whole input);
    tests use small values to force refill/compaction at every token
    boundary. Raises {!Error} and {!Xtwig_fault.Fault.Injected}. *)

val parse_channel : ?chunk:int -> in_channel -> Doc.t
(** Parse from a channel without materialising the input (default
    window 256 KiB). Raises {!Error}, {!Xtwig_fault.Fault.Injected}
    and [Sys_error] (from reads). *)
