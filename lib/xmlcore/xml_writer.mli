(** XML serialization.

    Renders a {!Doc.t} back to textual XML. The byte size of this
    rendering is the "text size" column of the paper's Table 1, so the
    writer produces conventional, un-minified XML (one element per
    line, two-space indentation). *)

val to_buffer : Buffer.t -> Doc.t -> unit

val to_string : Doc.t -> string

val to_file : string -> Doc.t -> unit
(** Raises [Sys_error] on I/O failure, and
    [Xtwig_fault.Fault.Injected] from the [xml.write] fault point when
    a chaos scenario fires there. *)

val text_size : Doc.t -> int
(** Number of bytes of {!to_string} without materializing the string
    more than once. *)

val escape : string -> string
(** XML-escapes ampersand, angle brackets and both quote characters. *)
