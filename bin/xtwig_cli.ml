(* The xtwig command-line tool: generate datasets, inspect documents,
   build Twig XSKETCH synopses and estimate twig queries.

     xtwig generate --dataset imdb --scale 0.1 -o imdb.xml
     xtwig inspect imdb.xml
     xtwig estimate imdb.xml "for t0 in //movie, t1 in t0/actor" --budget 8192
     xtwig estimate imdb.xml "..." --jobs 4 --sketch imdb.sketch
     xtwig estimate imdb.xml "..." --backend cst
     xtwig workload imdb.xml --queries 20 --kind pv
     xtwig compare imdb.xml --budget 8192 --queries 100
     xtwig bench-batch imdb.xml --queries 200 --jobs 4
     xtwig stats imdb.xml --tenant a=a.sketch --tenant b=b.sketch

   Estimation paths go through the public Xtwig facade (the same
   surface xtwigd serves); every failure funnels through
   Xtwig_util.Xerror and maps to a stable exit code: 0 = ok, 2 =
   usage, 3 = parse (document or query), 4 = io/sketch-format, 1 =
   engine/runtime. *)

open Cmdliner
module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Pool = Xtwig_util.Pool
module Xerror = Xtwig_util.Xerror
module Engine = Xtwig_engine.Engine
module Fault = Xtwig_fault.Fault
module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module Accuracy = Xtwig_obs.Accuracy
module Slo = Xtwig_obs.Slo

let ( let* ) = Result.bind

(* Shared observability plumbing: [--trace FILE] records spans for the
   whole command and dumps Chrome trace-event JSON; [--metrics] prints
   a Prometheus-style snapshot of the command's activity to stderr.
   Both run in the [finally] path so failures still produce output. *)
let with_obs ~trace ~metrics body =
  (match trace with Some _ -> Trace.enable () | None -> ());
  let before = Metrics.snapshot () in
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
          Trace.dump path;
          Printf.eprintf "xtwig: wrote trace (%s)\n%!" path
      | None -> ());
      if metrics then
        prerr_string (Metrics.render (Metrics.diff before (Metrics.snapshot ()))))
    body

let load = Xtwig.doc_of_file

(* Every command body returns (unit, Xerror.t) result; this turns it
   into the documented exit code. *)
let code_of = function
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "xtwig: %s\n" (Xerror.to_string e);
      Xerror.exit_code e

let build_sketch ?(quiet = false) ?(jobs = 1) doc ~budget ~seed =
  Xtwig.build_sketch ~budget ~seed ~jobs
    ~on_step:(fun ~step ~description ~size ->
      if not quiet then
        Printf.eprintf "step %3d: %-46s -> %d bytes\n%!" step description size)
    doc

(* ---------------- shared args ---------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"XML document.")

let budget_arg =
  Arg.(value & opt int 8192 & info [ "budget" ] ~docv:"BYTES" ~doc:"Synopsis budget.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for candidate scoring and batch estimation \
           (1 = sequential; results are identical either way).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record trace spans for the whole command and write a Chrome \
           trace-event JSON dump to $(docv) (open in chrome://tracing or \
           ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a Prometheus-style snapshot of the command's metrics \
           (counters, gauges, histograms) to stderr on exit.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Install a deterministic fault-injection scenario for the whole \
           command, e.g. 'seed=7;io.*:p0.01;engine.query:n3'. Overrides the \
           XTWIG_FAULT_SPEC environment variable. The injected-fault count \
           is reported on stderr at exit.")

(* Resolve --fault-spec (flag wins over XTWIG_FAULT_SPEC), install it
   around [body], and report what actually fired. Failures to parse
   are usage errors, not injection. *)
let with_fault spec body =
  let* installed =
    match spec with
    | Some s -> (
        match Fault.parse_spec s with
        | Ok sp -> Ok (Some sp)
        | Error e -> Error (Xerror.Usage ("--fault-spec: " ^ e)))
    | None -> (
        match Fault.env_spec () with
        | Ok sp -> Ok sp
        | Error e -> Error (Xerror.Usage ("XTWIG_FAULT_SPEC: " ^ e)))
  in
  match installed with
  | None -> body ()
  | Some sp ->
      Fault.install sp;
      Fun.protect
        ~finally:(fun () ->
          Printf.eprintf "xtwig: %d fault(s) injected under %S\n%!"
            (Fault.injected_count ())
            (Fault.spec_to_string sp);
          Fault.disable ())
        body

(* ---------------- generate ---------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("xmark", `Xmark); ("imdb", `Imdb); ("sprot", `Sprot) ])) None
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc:"Dataset: xmark, imdb or sprot.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Size multiplier.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output XML file.")
  in
  let run dataset scale seed output =
    code_of
      (let doc =
         match dataset with
         | `Xmark -> Xtwig_datagen.Xmark.generate ~seed ~scale ()
         | `Imdb -> Xtwig_datagen.Imdb.generate ~seed ~scale ()
         | `Sprot -> Xtwig_datagen.Sprot.generate ~seed ~scale ()
       in
       match Xtwig_xml.Xml_writer.to_file output doc with
       | () ->
           Printf.printf "wrote %s: %d elements\n" output (Doc.size doc);
           Ok ()
       | exception Sys_error msg -> Error (Xerror.Io msg))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic XML dataset.")
    Term.(const run $ dataset $ scale $ seed $ output)

(* ---------------- inspect ---------------- *)

let inspect_cmd =
  let run file =
    code_of
      (let* doc = load file in
       let syn = Xtwig_synopsis.Graph_synopsis.label_split doc in
       let coarse = Sketch.coarsest syn in
       Format.printf "%a@." Doc.pp_summary doc;
       Format.printf "text size: %.2f MB@."
         (float_of_int (Xtwig_xml.Xml_writer.text_size doc) /. 1_048_576.0);
       Format.printf "label-split synopsis: %d nodes, %d edges, coarsest sketch %d bytes@."
         (Xtwig_synopsis.Graph_synopsis.node_count syn)
         (Xtwig_synopsis.Graph_synopsis.edge_count syn)
         (Sketch.size_bytes coarse);
       Format.printf "@.%-20s %10s %8s@." "tag" "count" "depth";
       for t = 0 to Doc.tag_count doc - 1 do
         let nodes = Doc.nodes_with_tag doc t in
         if Array.length nodes > 0 then
           Format.printf "%-20s %10d %8d@." (Doc.tag_to_string doc t)
             (Array.length nodes)
             (Doc.depth doc nodes.(0))
       done;
       Ok ())
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show document and synopsis statistics.")
    Term.(const run $ file_arg)

(* ---------------- build ---------------- *)

let build_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .sketch file.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:
            "Print document statistics after the parse (node count, max \
             depth, text bytes, parse throughput) and XBUILD step progress \
             to stderr.")
  in
  let run file budget seed jobs output verbose trace metrics fault =
    code_of
      (with_obs ~trace ~metrics @@ fun () ->
       with_fault fault @@ fun () ->
       let t0 = Unix.gettimeofday () in
       let* doc = load file in
       let parse_s = Unix.gettimeofday () -. t0 in
       if verbose then begin
         let file_bytes =
           try (Unix.stat file).Unix.st_size with Unix.Unix_error _ -> 0
         in
         Printf.eprintf
           "parsed %s: %d nodes, max depth %d, %d text bytes, %.1f MB/s\n%!"
           file (Doc.size doc) (Doc.max_depth doc)
           (Xtwig_xml.Xml_writer.text_size doc)
           (if parse_s > 0.0 then
              float_of_int file_bytes /. 1_048_576.0 /. parse_s
            else 0.0)
       end;
       let* sketch = build_sketch ~quiet:(not verbose) ~jobs doc ~budget ~seed in
       let* () = Xtwig.save_sketch ~budget ~seed sketch output in
       Printf.printf "wrote %s: %d bytes of synopsis for %d elements\n" output
         (Sketch.size_bytes sketch) (Doc.size doc);
       Ok ())
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Run XBUILD on a document and persist the synopsis configuration.")
    Term.(
      const run $ file_arg $ budget_arg $ seed_arg $ jobs_arg $ output
      $ verbose $ trace_arg $ metrics_arg $ fault_arg)

(* ---------------- estimate ---------------- *)

let timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-query deadline; on expiry the answer degrades to the coarse \
           label-split estimate.")

let estimate_cmd =
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"Twig query, e.g. 'for t0 in //movie, t1 in t0/actor'.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact selectivity.")
  in
  let sketch_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "sketch" ] ~docv:"FILE"
          ~doc:"Reuse a synopsis saved by $(b,xtwig build) instead of rebuilding.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:
            "Also print the query's evaluation wall time, timeout-fallback \
             flag and trace id.")
  in
  let backend_arg =
    Arg.(
      value & opt string "xsketch"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "Estimator backend (see $(b,xtwig backends)): 'xsketch' (the \
             default; the compiled engine path, supports $(b,--sketch)) or \
             'cst'.")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the estimate's provenance: plan tier taken (cache hit, \
             repatch, skeleton adoption, fresh compile, reference interp), \
             embedding count, retries and fallback reason — the same record \
             the xtwigd $(b,explain) verb serves.")
  in
  let optimize_flag =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Also run the cost-based branch orderer and print its plan; \
             with $(b,--exact), the exact evaluation follows the optimized \
             order (the count is identical by construction).")
  in
  let run file query budget seed exact sketch_file backend jobs timeout verbose
      explain optimize trace metrics fault =
    code_of
      (with_obs ~trace ~metrics @@ fun () ->
       with_fault fault @@ fun () ->
       let* doc = load file in
       let* q = Xtwig.twig_of_string query in
       let* engine, planner =
         match String.lowercase_ascii backend with
         | "xsketch" ->
             let* sk =
               match sketch_file with
               | Some path -> Xtwig.load_sketch doc path
               | None -> build_sketch ~quiet:true ~jobs doc ~budget ~seed
             in
             let* e = Xtwig.open_sketch_session ~jobs ~timeout_s:timeout sk in
             Ok (e, fun () -> Xtwig.optimize sk q)
         | name ->
             let* () =
               match sketch_file with
               | Some _ ->
                   Error (Xerror.Usage "--sketch applies only to --backend xsketch")
               | None -> Ok ()
             in
             let* inst = Xtwig.build_backend ~backend:name ~budget ~seed doc in
             let* e = Xtwig.open_backend_session ~jobs ~timeout_s:timeout inst in
             Ok (e, fun () -> Xtwig.optimize_backend inst q)
       in
       Fun.protect
         ~finally:(fun () -> Xtwig.close_session engine)
         (fun () ->
           let* a, prov =
             if explain then
               let* p = Xtwig.explain engine q in
               Ok (p.Engine.pv_answer, Some p)
             else
               let* a = Xtwig.estimate engine q in
               Ok (a, None)
           in
           let st = Engine.stats engine in
           Format.printf "backend:  %s, synopsis %d bytes@." st.Engine.backend
             st.Engine.sketch_bytes;
           Format.printf "estimate: %.2f%s@." a.Engine.estimate
             (if a.Engine.fallback then "  (timeout: coarse fallback)" else "");
           (match prov with
           | None -> ()
           | Some p ->
               Format.printf "tier:     %s@." (Engine.tier_label p.Engine.pv_tier);
               Format.printf "embeddings: %d@." p.Engine.pv_embeddings;
               Format.printf "retries:  %d@." a.Engine.retries;
               Format.printf "fallback reason: %s@."
                 (match a.Engine.reason with
                 | None -> "-"
                 | Some Engine.Timeout -> "timeout"
                 | Some Engine.Fault -> "fault"
                 | Some Engine.Circuit_open -> "circuit-open"
                 | Some Engine.Guard -> "guard"));
           if verbose then begin
             Format.printf "elapsed:  %.6f s@." a.Engine.elapsed_s;
             Format.printf "fallback: %b@." a.Engine.fallback;
             Format.printf "trace id: %d@." a.Engine.trace_id
           end;
           let plan = if optimize then Some (planner ()) else None in
           (match plan with
           | None -> ()
           | Some p ->
               List.iter
                 (fun l -> Format.printf "plan %s@." l)
                 (Xtwig.Opt.to_lines p));
           if exact then begin
             let n =
               match plan with
               | Some p -> Xtwig.selectivity_ordered doc p q
               | None -> Xtwig.selectivity doc q
             in
             Format.printf "exact:    %d@." n
           end;
           Ok ()))
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate a twig query's selectivity over a (built or loaded) synopsis.")
    Term.(
      const run $ file_arg $ query $ budget_arg $ seed_arg $ exact $ sketch_file
      $ backend_arg $ jobs_arg $ timeout_arg $ verbose $ explain_flag
      $ optimize_flag $ trace_arg $ metrics_arg $ fault_arg)

(* ---------------- optimize ---------------- *)

let optimize_cmd =
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Twig query to plan.")
  in
  let sketch_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "sketch" ] ~docv:"FILE"
          ~doc:"Reuse a synopsis saved by $(b,xtwig build) instead of rebuilding.")
  in
  let execute =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:
            "Evaluate the query exactly under both the default and the \
             optimized branch order and report wall times; the counts must \
             match bit for bit (they do by construction).")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"N"
          ~doc:"Repetitions per order when $(b,--execute) times them (best-of).")
  in
  let run file query budget seed sketch_file jobs execute reps trace metrics
      fault =
    code_of
      (with_obs ~trace ~metrics @@ fun () ->
       with_fault fault @@ fun () ->
       let* doc = load file in
       let* q = Xtwig.twig_of_string query in
       let* sk =
         match sketch_file with
         | Some path -> Xtwig.load_sketch doc path
         | None -> build_sketch ~quiet:true ~jobs doc ~budget ~seed
       in
       let plan = Xtwig.optimize sk q in
       List.iter (fun l -> Format.printf "%s@." l) (Xtwig.Opt.to_lines plan);
       if not execute then Ok ()
       else begin
         let time f =
           let best = ref infinity in
           let out = ref 0 in
           for _ = 1 to max 1 reps do
             let t0 = Unix.gettimeofday () in
             out := f ();
             best := Float.min !best (Unix.gettimeofday () -. t0)
           done;
           (!out, !best)
         in
         let n_def, s_def = time (fun () -> Xtwig.selectivity doc q) in
         let n_opt, s_opt =
           time (fun () -> Xtwig.selectivity_ordered doc plan q)
         in
         Format.printf "exact %d@." n_def;
         Format.printf "wall_default %.6f s@." s_def;
         Format.printf "wall_optimized %.6f s@." s_opt;
         if n_def <> n_opt then
           Error
             (Xerror.Engine
                (Printf.sprintf "order-invariance violated: %d <> %d" n_def
                   n_opt))
         else Ok ()
       end)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Plan a twig query's branch evaluation order from the synopsis's \
          cost estimates (the same plan the xtwigd $(b,optimize) verb \
          serves); optionally execute and time both orders.")
    Term.(
      const run $ file_arg $ query $ budget_arg $ seed_arg $ sketch_file
      $ jobs_arg $ execute $ reps $ trace_arg $ metrics_arg $ fault_arg)

(* ---------------- workload ---------------- *)

let workload_cmd =
  let n =
    Arg.(value & opt int 20 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("p", `P); ("pv", `Pv); ("simple", `Simple) ]) `P
      & info [ "kind" ] ~docv:"KIND" ~doc:"Workload kind: p, pv or simple.")
  in
  let run file n kind seed =
    code_of
      (let* doc = load file in
       let spec =
         match kind with
         | `P -> Wgen.paper_p
         | `Pv -> Wgen.paper_pv
         | `Simple -> Wgen.simple_paths
       in
       let qs = Wgen.generate { spec with Wgen.n_queries = n } (Prng.create seed) doc in
       List.iter
         (fun q ->
           Format.printf "%8d  %s@."
             (Xtwig_eval.Eval_twig.selectivity doc q)
             (Xtwig_path.Path_printer.twig_to_string q))
         qs;
       Ok ())
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a positive twig workload with true selectivities.")
    Term.(const run $ file_arg $ n $ kind $ seed_arg)

(* ---------------- compare ---------------- *)

let compare_cmd =
  let n =
    Arg.(value & opt int 100 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let run file budget n seed jobs =
    code_of
      (let* doc = load file in
       let qs =
         Wgen.generate { Wgen.paper_p with Wgen.n_queries = n } (Prng.create 99) doc
       in
       let truths =
         Array.of_list
           (List.map (fun q -> float_of_int (Xtwig_eval.Eval_twig.selectivity doc q)) qs)
       in
       let err name estimates =
         Format.printf "%-24s %.3f@." name
           (Xtwig_workload.Error_metric.average_error ~truths
              ~estimates:(Array.of_list estimates))
       in
       Format.printf "average absolute relative error on %d twig queries:@." n;
       let coarse = Sketch.default_of_doc doc in
       err "coarse xsketch" (List.map (fun q -> Est.estimate coarse q) qs);
       let* sketch = build_sketch ~quiet:true ~jobs doc ~budget ~seed in
       err
         (Printf.sprintf "xsketch (%d B)" (Sketch.size_bytes sketch))
         (List.map (fun q -> Est.estimate sketch q) qs);
       let cst = Xtwig_cst.Cst.build ~budget_bytes:budget doc in
       err
         (Printf.sprintf "cst (%d B)" (Xtwig_cst.Cst.size_bytes cst))
         (List.map (fun q -> Xtwig_cst.Cst.estimate cst q) qs);
       Ok ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare coarse/built XSKETCH and CST errors on a random workload.")
    Term.(const run $ file_arg $ budget_arg $ n $ seed_arg $ jobs_arg)

(* ---------------- bench-batch ---------------- *)

let bench_batch_cmd =
  let n =
    Arg.(value & opt int 200 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let run file budget n seed jobs timeout trace metrics fault =
    code_of
      (with_obs ~trace ~metrics @@ fun () ->
       with_fault fault @@ fun () ->
       let* doc = load file in
       let* () =
         if n < 1 then Error (Xerror.Usage "--queries must be >= 1") else Ok ()
       in
       let* result =
         Engine.with_engine ~seed ~jobs ~timeout_s:timeout ~budget doc
           (fun engine ->
             let qs =
               Wgen.generate
                 { Wgen.paper_p with Wgen.n_queries = n }
                 (Prng.create 99) doc
             in
             let t0 = Unix.gettimeofday () in
             let answers = Engine.estimate_batch engine qs in
             let wall = Unix.gettimeofday () -. t0 in
             Result.map (fun a -> (a, wall, Engine.stats engine)) answers)
       in
       let* answers, wall, st = result in
       let n_answers = List.length answers in
       Format.printf "engine: %d jobs, synopsis %d bytes (built in %.2fs)@."
         st.Engine.jobs st.Engine.sketch_bytes st.Engine.build_s;
       Format.printf "batch:  %d queries in %.3fs (%.0f queries/s), %d timeout(s)@."
         n_answers wall
         (float_of_int n_answers /. Float.max 1e-9 wall)
         st.Engine.timeouts;
       (* plan-cache economy of the batch: structure-phase compiles
          should be rare next to payload repatches and skeleton
          adoptions (see DESIGN.md §12) *)
       let cv key = Xtwig_util.Counters.(value (counter key)) in
       Format.printf
         "plans:  %d compiled, %d repatched, %d adopted (compile %.1fms, run %.1fms)@."
         (cv "plan.compiles") (cv "plan.repatches")
         (cv "plan.skeleton_adoptions")
         (float_of_int (cv "plan.compile_ns") /. 1e6)
         (float_of_int (cv "plan.run_ns") /. 1e6);
       Ok ())
  in
  Cmd.v
    (Cmd.info "bench-batch"
       ~doc:
         "Build a synopsis, then serve a random twig workload through the \
          concurrent estimation engine and report throughput.")
    Term.(
      const run $ file_arg $ budget_arg $ n $ seed_arg $ jobs_arg $ timeout_arg
      $ trace_arg $ metrics_arg $ fault_arg)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let n =
    Arg.(value & opt int 100 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let sketch_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "sketch" ] ~docv:"FILE"
          ~doc:"Reuse a synopsis saved by $(b,xtwig build) instead of rebuilding.")
  in
  let tenants_arg =
    Arg.(
      value & opt_all string []
      & info [ "tenant" ] ~docv:"NAME=SKETCH"
          ~doc:
            "Serve the workload through a named session over the sketch file \
             $(i,SKETCH) (repeatable). With at least one $(b,--tenant) the \
             report is a per-tenant breakdown — each tenant gets its own \
             engine, accuracy percentiles and tenant-labelled metrics — \
             matching the xtwigd catalog model. Without it, one unnamed \
             session over $(b,--sketch) or a fresh build.")
  in
  (* one tenant's serve + report: answers, then the session counters
     and accuracy, all under the tenant's own metric labels; every
     answer is classified into the SLO tracker (full-fidelity vs
     degraded, over-p99-bound) under [tenant] *)
  let serve_tenant ~slo ~tenant engine qs truths sanity label =
    let before = Metrics.snapshot () in
    let* answers =
      match Xtwig.estimate_batch engine qs with
      | Ok answers -> Ok answers
      | Error e ->
          Slo.record slo ~tenant Slo.Failed;
          Error e
    in
    let acc = Accuracy.create ~sanity ~name:("xtwig.stats" ^ label) () in
    List.iteri
      (fun i (a : Engine.answer) ->
        Accuracy.observe acc ~truth:truths.(i) ~estimate:a.Engine.estimate;
        Slo.record slo ~tenant ~latency_s:a.Engine.elapsed_s
          (if a.Engine.fallback then Slo.Served_degraded else Slo.Served_ok))
      answers;
    let st = Engine.stats engine in
    Format.printf "synopsis: %d bytes (%s), %d jobs@." st.Engine.sketch_bytes
      st.Engine.backend st.Engine.jobs;
    Format.printf
      "queries:  %d (%d timeout(s), %d degraded, %d retries, %d breaker \
       trip(s), sanity bound %g)@."
      st.Engine.queries_served st.Engine.timeouts st.Engine.degraded
      st.Engine.retries st.Engine.breaker_trips sanity;
    (* per-query latency percentiles, read back from the batch's
       engine.query.seconds histogram delta *)
    (match
       Metrics.find
         (Metrics.diff before (Metrics.snapshot ()))
         "engine.query.seconds"
     with
    | Some (Metrics.Histogram h) when h.Metrics.count > 0 ->
        Format.printf "latency:  p50=%.2g s  p90=%.2g s  p99=%.2g s@."
          (Metrics.percentile_of h 50.0)
          (Metrics.percentile_of h 90.0)
          (Metrics.percentile_of h 99.0)
    | _ -> ());
    Format.printf "%s@." (Accuracy.report acc);
    Format.printf "%s@." (Slo.report_tenant slo tenant);
    Ok ()
  in
  let parse_tenant spec =
    match String.index_opt spec '=' with
    | Some i when i > 0 && i < String.length spec - 1 ->
        Ok
          ( String.sub spec 0 i,
            String.sub spec (i + 1) (String.length spec - i - 1) )
    | _ -> Error (Xerror.Usage ("--tenant expects NAME=SKETCH, got " ^ spec))
  in
  (* bare objectives ("p99:5ms") attach to the unnamed default
     session; NAME=... attaches to that --tenant *)
  let parse_slo spec =
    if String.contains spec '=' then
      Result.map_error (fun m -> Xerror.Usage m) (Slo.parse spec)
    else
      Result.map_error (fun m -> Xerror.Usage m) (Slo.parse ("default=" ^ spec))
  in
  let slo_arg =
    Arg.(
      value & opt_all string []
      & info [ "slo" ] ~docv:"TENANT=p99:5ms,err:0.1%"
          ~doc:
            "Attach an SLO objective ($(b,p99:)$(i,DURATION) and/or \
             $(b,err:)$(i,RATE)) to a $(b,--tenant) name, or — without the \
             $(i,TENANT=) prefix — to the unnamed default session. The \
             report gains outcome attribution (ok/degraded/failed/shed) and \
             the error-budget burn rate. Repeatable.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Live-refresh mode: re-serve the workload and redraw the report \
             every $(b,--interval) seconds (Ctrl-C to stop; $(b,--rounds) \
             bounds the passes). SLO attribution and burn rate accumulate \
             across passes.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period for $(b,--follow).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 0
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Stop $(b,--follow) after $(i,N) passes (0 = until Ctrl-C).")
  in
  let run file budget seed jobs timeout n sketch_file tenants slos follow
      interval rounds trace metrics fault =
    code_of
      (with_obs ~trace ~metrics @@ fun () ->
       with_fault fault @@ fun () ->
       let* doc = load file in
       let* () =
         if n < 1 then Error (Xerror.Usage "--queries must be >= 1") else Ok ()
       in
       let* declared =
         List.fold_left
           (fun acc spec ->
             let* l = acc in
             let* t = parse_slo spec in
             Ok (t :: l))
           (Ok []) slos
         |> Result.map List.rev
       in
       let slo = Slo.create declared in
       let qs =
         Wgen.generate { Wgen.paper_p with Wgen.n_queries = n } (Prng.create seed)
           doc
       in
       let truths =
         Array.of_list
           (List.map (fun q -> float_of_int (Xtwig.selectivity doc q)) qs)
       in
       let sanity = Xtwig_workload.Error_metric.sanity_bound truths in
       (* open every session up front so --follow re-serves through the
          same engines (plan caches warm across passes) *)
       let* sessions =
         match tenants with
         | [] ->
             let* sk =
               match sketch_file with
               | Some path -> Xtwig.load_sketch doc path
               | None -> build_sketch ~quiet:true ~jobs doc ~budget ~seed
             in
             let* engine = Xtwig.open_sketch_session ~jobs ~timeout_s:timeout sk in
             Ok [ (None, "default", "", engine) ]
         | specs ->
             let* () =
               match sketch_file with
               | Some _ ->
                   Error (Xerror.Usage "--sketch and --tenant are exclusive")
               | None -> Ok ()
             in
             let* opened =
               List.fold_left
                 (fun acc spec ->
                   let* l = acc in
                   let* name, path = parse_tenant spec in
                   let* sk = Xtwig.load_sketch doc path in
                   let* engine =
                     Xtwig.open_sketch_session ~name ~jobs ~timeout_s:timeout sk
                   in
                   Ok ((Some (name, path), name, "." ^ name, engine) :: l))
                 (Ok []) specs
             in
             Ok (List.rev opened)
       in
       Fun.protect
         ~finally:(fun () ->
           List.iter (fun (_, _, _, engine) -> Xtwig.close_session engine) sessions)
         (fun () ->
           let serve_round () =
             List.fold_left
               (fun acc (header, tenant, label, engine) ->
                 let* () = acc in
                 (match header with
                 | Some (name, path) ->
                     Format.printf "@.tenant %s (%s):@." name path
                 | None -> ());
                 serve_tenant ~slo ~tenant engine qs truths sanity label)
               (Ok ()) sessions
           in
           if not follow then serve_round ()
           else begin
             (* live refresh: clear, redraw, sleep; Ctrl-C ends the
                loop cleanly instead of killing the process *)
             let stop = ref false in
             let prev =
               Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
             in
             Fun.protect
               ~finally:(fun () -> Sys.set_signal Sys.sigint prev)
               (fun () ->
                 let round = ref 0 in
                 let result = ref (Ok ()) in
                 while
                   (not !stop)
                   && Result.is_ok !result
                   && (rounds = 0 || !round < rounds)
                 do
                   incr round;
                   print_string "\027[H\027[2J";
                   Format.printf "xtwig stats --follow  round %d  (Ctrl-C to stop)@."
                     !round;
                   result := serve_round ();
                   Format.print_flush ();
                   if (not !stop) && Result.is_ok !result
                      && (rounds = 0 || !round < rounds)
                   then
                     try Unix.sleepf interval
                     with Unix.Unix_error (Unix.EINTR, _, _) -> ()
                 done;
                 !result)
           end))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Serve a random twig workload with known true counts and report \
          accuracy percentiles (p50/p90/p99 relative error), per-query \
          latency percentiles, engine counters and SLO attribution — per \
          tenant with repeated $(b,--tenant NAME=SKETCH), live with \
          $(b,--follow).")
    Term.(
      const run $ file_arg $ budget_arg $ seed_arg $ jobs_arg $ timeout_arg $ n
      $ sketch_file $ tenants_arg $ slo_arg $ follow_arg $ interval_arg
      $ rounds_arg $ trace_arg $ metrics_arg $ fault_arg)

(* ---------------- backends ---------------- *)

let backends_cmd =
  let run () =
    List.iter print_endline (Xtwig.backends ());
    0
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:"List the registered estimator backends ($(b,--backend) values).")
    Term.(const run $ const ())

let () =
  let doc = "Twig XSKETCH selectivity estimation for XML twig queries" in
  let info = Cmd.info "xtwig" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group info
          [
            generate_cmd; inspect_cmd; build_cmd; estimate_cmd; optimize_cmd;
            workload_cmd; compare_cmd; bench_batch_cmd; stats_cmd;
            backends_cmd;
          ]))
