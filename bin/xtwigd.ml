(* xtwigd: the multi-tenant estimation server.

     xtwigd --socket /tmp/xtwigd.sock --tenant movies=imdb.xml,imdb.sketch
     xtwigd --tcp 127.0.0.1:7474 --tenant a=a.xml --tenant b=b.xml,b.sketch

   Each --tenant declares NAME=DOC[,SKETCH]: the XML document and,
   optionally, a synopsis saved by `xtwig build` (without one the
   synopsis is built at startup with --budget/--seed). Reload a
   tenant without restarting by writing a new sketch file (the write
   is atomic) and sending a `reload` request.

   Observability: --log routes the structured event stream (access
   records, shed/reload/breaker lifecycle) to a JSONL file or stderr,
   --trace captures a Chrome trace of the serving path, --slo attaches
   per-tenant latency/error objectives whose burn rates surface in
   `xtwig stats`.

   SIGINT/SIGTERM shut the server down cleanly; exit codes follow the
   xtwig CLI contract. *)

open Cmdliner
module Xerror = Xtwig.Xerror
module Server = Xtwig_serve.Server
module Catalog = Xtwig_serve.Catalog
module Fault = Xtwig_fault.Fault
module Log = Xtwig_obs.Log
module Trace = Xtwig_obs.Trace
module Slo = Xtwig_obs.Slo

let ( let* ) = Result.bind

let parse_tenant ~backend ~budget ~seed spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
      let name = String.sub spec 0 i in
      let paths = String.sub spec (i + 1) (String.length spec - i - 1) in
      match String.split_on_char ',' paths with
      | [ doc ] -> Ok (name, Catalog.source ~backend ~budget ~seed doc)
      | [ doc; sketch ] ->
          Ok (name, Catalog.source ~sketch_path:sketch ~backend ~budget ~seed doc)
      | _ -> Error (Xerror.Usage ("--tenant expects NAME=DOC[,SKETCH], got " ^ spec)))
  | _ -> Error (Xerror.Usage ("--tenant expects NAME=DOC[,SKETCH], got " ^ spec))

let parse_listen socket tcp =
  match (socket, tcp) with
  | Some _, Some _ -> Error (Xerror.Usage "--socket and --tcp are exclusive")
  | None, None -> Ok (`Unix "xtwigd.sock")
  | Some path, None -> Ok (`Unix path)
  | None, Some hp -> (
      match String.rindex_opt hp ':' with
      | Some i -> (
          let host = String.sub hp 0 i in
          let port = String.sub hp (i + 1) (String.length hp - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Ok (`Tcp (host, p))
          | _ -> Error (Xerror.Usage ("bad --tcp port in " ^ hp)))
      | None -> Error (Xerror.Usage "--tcp expects HOST:PORT"))

let install_fault spec =
  match spec with
  | Some s -> (
      match Fault.parse_spec s with
      | Ok sp ->
          Fault.install sp;
          Ok ()
      | Error e -> Error (Xerror.Usage ("--fault-spec: " ^ e)))
  | None -> (
      match Fault.env_spec () with
      | Ok (Some sp) ->
          Fault.install sp;
          Ok ()
      | Ok None -> Ok ()
      | Error e -> Error (Xerror.Usage ("XTWIG_FAULT_SPEC: " ^ e)))

let setup_log log log_level =
  let* level =
    match Log.level_of_string log_level with
    | Some l -> Ok l
    | None ->
        Error
          (Xerror.Usage ("--log-level expects debug|info|warn|error, got " ^ log_level))
  in
  match log with
  | None -> Ok ()
  | Some "-" ->
      Log.enable ~level ~channel:stderr ();
      Ok ()
  | Some path -> (
      match Log.enable ~level ~path () with
      | () -> Ok ()
      | exception Sys_error msg -> Error (Xerror.Io msg))

let parse_slos specs =
  List.fold_left
    (fun acc spec ->
      let* l = acc in
      match Slo.parse spec with
      | Ok (tenant, o) -> Ok ((tenant, o) :: l)
      | Error msg -> Error (Xerror.Usage ("--slo: " ^ msg)))
    (Ok []) specs
  |> Result.map List.rev

let run socket tcp tenants backend budget seed jobs timeout queue_cap fault log
    log_level trace slos =
  let result =
    let* listen = parse_listen socket tcp in
    let* () = install_fault fault in
    let* () = setup_log log log_level in
    let* slo = parse_slos slos in
    if trace <> None then Trace.enable ();
    let* () =
      if tenants = [] then Error (Xerror.Usage "at least one --tenant is required")
      else Ok ()
    in
    let* specs =
      List.fold_left
        (fun acc spec ->
          let* l = acc in
          let* t = parse_tenant ~backend ~budget ~seed spec in
          Ok (t :: l))
        (Ok []) tenants
    in
    let specs = List.rev specs in
    let cfg = { Server.listen; jobs; timeout_s = timeout; queue_cap; slo } in
    let* server = Server.create cfg specs in
    let stop _ = Server.stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    (match listen with
    | `Unix path -> Printf.eprintf "xtwigd: listening on %s\n%!" path
    | `Tcp (host, _) ->
        Printf.eprintf "xtwigd: listening on %s:%d\n%!" host
          (Option.value ~default:0 (Server.port server)));
    let tenant_names = Catalog.names (Server.catalog server) in
    Printf.eprintf "xtwigd: tenants: %s\n%!" (String.concat ", " tenant_names);
    Log.info "xtwigd.start"
      ~fields:
        [
          ("tenants", Log.S (String.concat "," tenant_names));
          ("jobs", Log.I jobs);
          ("queue_cap", Log.I queue_cap);
        ];
    Server.serve server;
    Log.info "xtwigd.stop" ~fields:[];
    (match trace with
    | None -> ()
    | Some path -> (
        match Trace.dump path with
        | () -> Printf.eprintf "xtwigd: trace written to %s\n%!" path
        | exception Sys_error msg ->
            Printf.eprintf "xtwigd: trace write failed: %s\n%!" msg));
    Log.flush ();
    Log.disable ();
    Printf.eprintf "xtwigd: shut down\n%!";
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "xtwigd: %s\n" (Xerror.to_string e);
      Xerror.exit_code e

let cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix socket (default xtwigd.sock).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP instead of a Unix socket. Port 0 binds an ephemeral port.")
  in
  let tenants =
    Arg.(
      value & opt_all string []
      & info [ "tenant" ] ~docv:"NAME=DOC[,SKETCH]"
          ~doc:
            "Serve tenant $(i,NAME) over XML document $(i,DOC), loading the \
             synopsis from $(i,SKETCH) when given (else building one at \
             startup with $(b,--budget)/$(b,--seed)). Repeatable.")
  in
  let backend =
    Arg.(
      value & opt string "xsketch"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:"Estimator backend for every tenant (xsketch or cst).")
  in
  let budget =
    Arg.(
      value & opt int 8192
      & info [ "budget" ] ~docv:"BYTES" ~doc:"Synopsis budget for built tenants.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"XBUILD seed.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains per tenant engine.")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-query engine deadline.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Per-tenant pending-request cap; beyond it requests are shed with \
             a typed overload error.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:
            "Install a deterministic fault-injection scenario (overrides \
             XTWIG_FAULT_SPEC), e.g. 'seed=7;serve.*:p0.01'.")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"PATH"
          ~doc:
            "Write structured JSONL events (access records, shed/reload/\
             breaker lifecycle) to $(i,PATH); $(b,-) writes to stderr. \
             Off by default.")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum event level: debug, info, warn or error.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Record a Chrome trace of the serving path and write it to \
             $(i,PATH) on shutdown (open with chrome://tracing or Perfetto).")
  in
  let slo =
    Arg.(
      value & opt_all string []
      & info [ "slo" ] ~docv:"TENANT=p99:5ms,err:0.1%"
          ~doc:
            "Attach an SLO objective to a tenant: a p99 latency bound \
             ($(b,p99:)$(i,N)$(b,us|ms|s)) and/or an error-rate bound \
             ($(b,err:)$(i,N)$(b,%)). Burn rates are exported as \
             $(b,slo.burn_rate) and reported by $(b,xtwig stats). \
             Repeatable.")
  in
  let info =
    Cmd.info "xtwigd" ~version:"1.0.0"
      ~doc:"Multi-tenant twig selectivity estimation server"
  in
  Cmd.v info
    Term.(
      const run $ socket $ tcp $ tenants $ backend $ budget $ seed $ jobs
      $ timeout $ queue_cap $ fault $ log $ log_level $ trace $ slo)

let () = exit (Cmd.eval' ~term_err:2 cmd)
