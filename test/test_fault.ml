(* The fault subsystem's contracts, and the engine hardening they lock
   down:

   - the scenario grammar round-trips and rejects malformed input;
   - triggers fire exactly where their definition says, per (point,
     scope) hit counter;
   - with a scenario installed, the injected fault sequence is a pure
     function of the scenario — byte-identical across runs and across
     worker-domain counts;
   - Engine.estimate_batch NEVER raises, under any generated fault
     scenario: every query comes back as an answer (possibly degraded,
     with a typed reason) and the batch as Ok/Error;
   - retry, circuit-breaker and cardinality-guard paths behave as
     specified, deterministically. *)

module Fault = Xtwig_fault.Fault
module Engine = Xtwig_engine.Engine
module Sketch = Xtwig_sketch.Sketch
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Xerror = Xtwig_util.Xerror
module Pool = Xtwig_util.Pool
module Testgen = Xtwig_testgen.Testgen

let get = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Xerror.to_string e)

(* parse_spec errors are plain strings *)
let spec s =
  match Fault.parse_spec s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("bad spec: " ^ e)

(* every test leaves injection disabled, pass or fail *)
let protecting f () = Fun.protect ~finally:Fault.disable f

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let canonical = "seed=7;io.*:p0.01;pool.task:n3;engine.query:s1,4,9;plan.fill:every5"

let test_spec_parse () =
  let sp = spec canonical in
  Alcotest.(check int) "seed" 7 sp.Fault.seed;
  Alcotest.(check int) "rules" 4 (List.length sp.Fault.rules);
  (match sp.Fault.rules with
  | [ r1; r2; r3; r4 ] ->
      Alcotest.(check string) "glob pattern" "io.*" r1.Fault.pattern;
      Alcotest.(check bool) "prob" true (r1.Fault.trigger = Fault.Prob 0.01);
      Alcotest.(check bool) "nth" true (r2.Fault.trigger = Fault.Nth 3);
      Alcotest.(check bool) "script" true
        (r3.Fault.trigger = Fault.Script [ 1; 4; 9 ]);
      Alcotest.(check bool) "every" true (r4.Fault.trigger = Fault.Every 5)
  | _ -> Alcotest.fail "wrong rule count");
  (* whitespace separators are the same grammar *)
  let sp2 =
    spec "seed=7 io.*:p0.01 pool.task:n3 engine.query:s1,4,9 plan.fill:every5"
  in
  Alcotest.(check string) "whitespace form parses identically"
    (Fault.spec_to_string sp) (Fault.spec_to_string sp2)

let test_spec_rejects () =
  let rejected s =
    match Fault.parse_spec s with Error _ -> true | Ok _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true (rejected s))
    [
      "nocolon";
      "x:p2.0";
      "x:p-0.1";
      "x:n0";
      "x:every0";
      "x:s";
      "x:s1,zero";
      "x:frob7";
      "seed=abc;x:n1";
      ":n1";
    ]

let prop_spec_roundtrip =
  QCheck2.Test.make ~name:"spec print/parse roundtrip" ~count:200
    (Testgen.fault_spec ()) (fun spec ->
      match Fault.parse_spec (Fault.spec_to_string spec) with
      | Error _ -> false
      | Ok spec2 -> Fault.spec_to_string spec = Fault.spec_to_string spec2)

(* ------------------------------------------------------------------ *)
(* Point mechanics (single domain, scripted triggers) *)

(* make [n] arrivals at [name], returning the hit indices that fired *)
let fired_hits name n =
  let fired = ref [] in
  for i = 1 to n do
    match Fault.point name with
    | () -> ()
    | exception Fault.Injected { hit; _ } ->
        Alcotest.(check int) "hit index matches arrival" i hit;
        fired := hit :: !fired
  done;
  List.rev !fired

let test_triggers =
  protecting @@ fun () ->
  Fault.install (spec "seed=1;a:n3;b:every4;c:s2,5;d:always");
  Alcotest.(check (list int)) "nth fires once" [ 3 ] (fired_hits "a" 10);
  Alcotest.(check (list int)) "every fires on multiples" [ 4; 8 ] (fired_hits "b" 10);
  Alcotest.(check (list int)) "script fires exactly there" [ 2; 5 ] (fired_hits "c" 6);
  Alcotest.(check (list int)) "always fires on every hit" [ 1; 2; 3 ] (fired_hits "d" 3);
  Alcotest.(check (list int)) "unmatched point never fires" [] (fired_hits "zz" 5);
  Alcotest.(check int) "injected_count totals the log" 8 (Fault.injected_count ())

let test_glob_first_match =
  protecting @@ fun () ->
  Fault.install (spec "io.read:n1;io.*:n2");
  (* exact rule shadows the glob for io.read; glob covers io.write *)
  Alcotest.(check (list int)) "first matching rule wins" [ 1 ] (fired_hits "io.read" 3);
  Alcotest.(check (list int)) "glob matches by prefix" [ 2 ] (fired_hits "io.write" 3)

let test_scopes_isolate_counters =
  protecting @@ fun () ->
  Fault.install (spec "p:n2");
  (* hit counters are per (point, scope): each scope gets its own 2nd hit *)
  let fired_in_scope s =
    Fault.with_scope s (fun () ->
        let f = ref [] in
        for _ = 1 to 3 do
          match Fault.point "p" with
          | () -> ()
          | exception Fault.Injected { scope; hit; _ } -> f := (scope, hit) :: !f
        done;
        List.rev !f)
  in
  Alcotest.(check bool) "scope 1" true (fired_in_scope 1 = [ (1, 2) ]);
  Alcotest.(check bool) "scope 2" true (fired_in_scope 2 = [ (2, 2) ]);
  Alcotest.(check int) "current scope restored" 0 (Fault.scope ())

let test_disabled_and_reset =
  protecting @@ fun () ->
  Alcotest.(check bool) "disabled: no scenario" true (Fault.active () = None);
  Fault.point "anything" (* no-op *);
  Alcotest.(check bool) "disabled: fires is false" false (Fault.fires "anything");
  Fault.install (spec "seed=3;x:s1,3");
  let run () =
    let l = fired_hits "x" 4 in
    (l, Fault.log_to_string ())
  in
  let l1, log1 = run () in
  Fault.reset ();
  let l2, log2 = run () in
  Alcotest.(check (list int)) "reset replays the same sequence" l1 l2;
  Alcotest.(check string) "identical logs" log1 log2;
  Fault.disable ();
  Alcotest.(check int) "disable clears the log" 0 (Fault.injected_count ())

(* ------------------------------------------------------------------ *)
(* Engine under injection *)

let imdb = lazy (Xtwig_datagen.Imdb.generate ~seed:7 ~scale:0.02 ())

let truth_oracle doc =
  let cache = Hashtbl.create 256 in
  fun q ->
    let k = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add cache k v;
        v

let sketch_for doc =
  let truth = truth_oracle doc in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with Wgen.n_queries = 8 } prng doc
  in
  let budget = Sketch.size_bytes (Sketch.default_of_doc doc) * 2 in
  Xbuild.build ~seed:3 ~candidates:6 ~max_steps:30 ~workload ~truth ~budget doc

let sk = lazy (sketch_for (Lazy.force imdb))

let queries n = Wgen.generate { Wgen.paper_p with Wgen.n_queries = n } (Prng.create 99) (Lazy.force imdb)

(* force the shared fixtures before installing a scenario, so the
   sketch build itself (which exercises plan/embed caches) is not the
   thing being faulted *)
let warm () = ignore (Lazy.force sk)

(* run a batch against a fresh session; the engine must return Ok with
   one finite answer per query, whatever the scenario does *)
let run_batch ?(jobs = 1) ?(retries = 2) ?(breaker_threshold = max_int) qs =
  let eng =
    get
      (Engine.of_sketch ~jobs ~timeout_s:60.0 ~retries ~backoff_s:0.0
         ~breaker_threshold (Lazy.force sk))
  in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () -> Engine.estimate_batch eng qs)

let answer_key (a : Engine.answer) =
  Printf.sprintf "%.17g|%b|%s|%d" a.Engine.estimate a.Engine.fallback
    (match a.Engine.reason with
    | None -> "-"
    | Some Engine.Timeout -> "timeout"
    | Some Engine.Fault -> "fault"
    | Some Engine.Circuit_open -> "circuit"
    | Some Engine.Guard -> "guard")
    a.Engine.retries

let chaos_spec =
  "seed=5;engine.query:p0.3;plan.fill:p0.2;embed.fill:p0.15"

let test_fault_sequence_deterministic =
  protecting @@ fun () ->
  warm ();
  let qs = queries 25 in
  let sp = spec chaos_spec in
  let run jobs =
    Fault.install sp;
    let answers = get (run_batch ~jobs qs) in
    let log = Fault.log_to_string () in
    (String.concat "\n" (List.map answer_key answers), log)
  in
  let a1, l1 = run 1 in
  Alcotest.(check bool) "the scenario actually fired" true (String.length l1 > 0);
  let a1', l1' = run 1 in
  Alcotest.(check string) "same run, same fault log (byte-identical)" l1 l1';
  Alcotest.(check string) "same run, same answers" a1 a1';
  let a2, l2 = run 2 in
  let a4, l4 = run 4 in
  Alcotest.(check string) "jobs=2: identical fault log" l1 l2;
  Alcotest.(check string) "jobs=4: identical fault log" l1 l4;
  Alcotest.(check string) "jobs=2: identical answers" a1 a2;
  Alcotest.(check string) "jobs=4: identical answers" a1 a4

let test_retry_then_success =
  protecting @@ fun () ->
  warm ();
  (* first eval attempt of every query faults; one retry succeeds *)
  Fault.install (spec "engine.query:n1");
  let answers = get (run_batch ~retries:2 (queries 5)) in
  List.iter
    (fun (a : Engine.answer) ->
      Alcotest.(check bool) "no fallback after retry" false a.Engine.fallback;
      Alcotest.(check int) "one retry consumed" 1 a.Engine.retries)
    answers

let test_retries_exhausted_degrade =
  protecting @@ fun () ->
  warm ();
  Fault.install (spec "engine.query:always");
  let qs = queries 5 in
  let answers = get (run_batch ~retries:1 qs) in
  let coarse = Sketch.default_of_doc (Lazy.force imdb) in
  List.iter2
    (fun q (a : Engine.answer) ->
      Alcotest.(check bool) "degraded" true (a.Engine.reason = Some Engine.Fault);
      Alcotest.(check (float 1e-9))
        "estimate is the coarse label-split estimate"
        (Xtwig_sketch.Estimator.estimate coarse q)
        a.Engine.estimate)
    qs answers

let test_breaker_trips_and_recovers =
  protecting @@ fun () ->
  warm ();
  Fault.install (spec "engine.query:always");
  let eng =
    get
      (Engine.of_sketch ~timeout_s:60.0 ~retries:0 ~backoff_s:0.0
         ~breaker_threshold:3 ~breaker_cooldown_s:0.0 (Lazy.force sk))
  in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let qs = queries 6 in
      let b1 = get (Engine.estimate_batch eng qs) in
      Alcotest.(check int) "all fault-degraded" 6
        (List.length (List.filter (fun (a : Engine.answer) -> a.Engine.reason = Some Engine.Fault) b1));
      Alcotest.(check bool) "breaker tripped" true (Engine.breaker_state eng = `Open);
      Alcotest.(check bool) "trips counted" true ((Engine.stats eng).Engine.breaker_trips >= 1);
      (* cooldown is zero: the next batch's first query is the probe;
         faults still fire, so it fails and the breaker re-opens while
         the rest short-circuit *)
      let b2 = get (Engine.estimate_batch eng qs) in
      (match b2 with
      | first :: rest ->
          Alcotest.(check bool) "probe ran (and failed)" true
            (first.Engine.reason = Some Engine.Fault);
          Alcotest.(check bool) "rest short-circuited" true
            (List.for_all
               (fun (a : Engine.answer) -> a.Engine.reason = Some Engine.Circuit_open)
               rest)
      | [] -> Alcotest.fail "empty batch");
      Alcotest.(check bool) "re-opened" true (Engine.breaker_state eng = `Open);
      (* heal the fault: the probe succeeds and the breaker closes *)
      Fault.disable ();
      let b3 = get (Engine.estimate_batch eng qs) in
      (match b3 with
      | first :: _ ->
          Alcotest.(check bool) "probe succeeded" false first.Engine.fallback
      | [] -> Alcotest.fail "empty batch");
      Alcotest.(check bool) "closed again" true (Engine.breaker_state eng = `Closed);
      let b4 = get (Engine.estimate_batch eng qs) in
      Alcotest.(check int) "full service restored" 0
        (List.length (List.filter (fun (a : Engine.answer) -> a.Engine.fallback) b4)))

let test_guard_degrades =
  protecting @@ fun () ->
  let eng =
    get (Engine.of_sketch ~timeout_s:60.0 ~max_embeddings:0 (Lazy.force sk))
  in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let answers = get (Engine.estimate_batch eng (queries 4)) in
      List.iter
        (fun (a : Engine.answer) ->
          Alcotest.(check bool) "guard reason" true
            (a.Engine.reason = Some Engine.Guard))
        answers;
      Alcotest.(check int) "degraded counted" 4 (Engine.stats eng).Engine.degraded)

(* the tentpole property: estimate_batch never raises, under ANY
   scenario the generator can produce — including pool.task storms and
   100% failure rates on every engine-path point *)
let prop_engine_never_raises =
  let engine_points =
    [ "engine.query"; "plan.fill"; "embed.fill"; "pool.task" ]
  in
  QCheck2.Test.make ~name:"estimate_batch never raises under faults" ~count:25
    (QCheck2.Gen.pair (Testgen.fault_spec ~points:engine_points ()) (QCheck2.Gen.oneofl [ 1; 2; 4 ]))
    (fun (spec, jobs) ->
      Fun.protect ~finally:Fault.disable @@ fun () ->
      warm ();
      Fault.install spec;
      let qs = queries 8 in
      match run_batch ~jobs qs with
      | Ok answers ->
          List.length answers = List.length qs
          && List.for_all
               (fun (a : Engine.answer) ->
                 Float.is_finite a.Engine.estimate
                 && a.Engine.fallback = (a.Engine.reason <> None))
               answers
      | Error (Xerror.Engine _) -> true (* typed, not raised *)
      | Error _ -> false
      | exception e ->
          QCheck2.Test.fail_reportf "estimate_batch raised %s"
            (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* PR-9 ingest points: ingest.chunk (streaming-parse window refills)
   and sketch.delta (incremental synopsis maintenance) *)

let test_ingest_chunk_fault =
  protecting @@ fun () ->
  let xml = "<lib><a><b>1</b></a><a><b>2</b></a></lib>" in
  Fault.install (spec "ingest.chunk:always");
  (match Xtwig_xml.Xml_parser.parse_string_res xml with
  | Error (Xerror.Io msg) ->
      Alcotest.(check bool) "names the point" true
        (String.length msg >= 12 && String.sub msg 0 8 = "injected")
  | Ok _ -> Alcotest.fail "parse claimed success under injection"
  | Error e -> Alcotest.failf "expected Io, got %s" (Xerror.to_string e));
  (* a later refill of a bounded window fires mid-parse too, and the
     raw Sax surface raises the typed exception, never a crash *)
  Fault.reset ();
  Fault.install (spec "ingest.chunk:n3");
  (match Xtwig_xml.Sax.parse_string ~chunk:4 xml with
  | (_ : Xtwig_xml.Doc.t) -> Alcotest.fail "chunked parse ignored the fault"
  | exception Fault.Injected { point; _ } ->
      Alcotest.(check string) "mid-parse point" "ingest.chunk" point);
  Fault.disable ();
  match Xtwig_xml.Xml_parser.parse_string_res xml with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healthy parse failed: %s" (Xerror.to_string e)

let test_sketch_delta_fault =
  protecting @@ fun () ->
  let doc =
    get (Xtwig_xml.Xml_parser.parse_string_res "<lib><b>1</b><b>2</b></lib>")
  in
  let fragment = get (Xtwig_xml.Xml_parser.parse_string_res "<b>3</b>") in
  let sk0 = Sketch.default_of_doc doc in
  let delta = Sketch.Insert { parent = 0; fragment } in
  Fault.install (spec "sketch.delta:always");
  (* the facade turns the injected fault into a typed Engine error *)
  (match Xtwig.update_sketch sk0 delta with
  | Error (Xerror.Engine _) -> ()
  | Ok _ -> Alcotest.fail "update_sketch claimed success under injection"
  | Error e -> Alcotest.failf "expected Engine, got %s" (Xerror.to_string e));
  (* a live session survives the failed update and accepts it once the
     scenario lifts *)
  let eng = get (Engine.of_sketch sk0) in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      (match Engine.update eng delta with
      | Error (Xerror.Engine _) -> ()
      | Ok () -> Alcotest.fail "Engine.update claimed success under injection"
      | Error e -> Alcotest.failf "expected Engine, got %s" (Xerror.to_string e));
      Fault.disable ();
      match Engine.update eng delta with
      | Ok () -> ()
      | Error e -> Alcotest.failf "healthy update failed: %s" (Xerror.to_string e))

(* CI chaos hook: when XTWIG_FAULT_SPEC carries a scenario, run the
   batch under it — the fault-matrix job feeds canned chaos through
   the same never-raise assertion *)
let test_env_scenario =
  protecting @@ fun () ->
  match Fault.env_spec () with
  | Error e -> Alcotest.fail ("XTWIG_FAULT_SPEC does not parse: " ^ e)
  | Ok None -> () (* not running under the fault matrix *)
  | Ok (Some spec) ->
      warm ();
      Fault.install spec;
      let qs = queries 40 in
      (match run_batch ~jobs:2 qs with
      | Ok answers ->
          Alcotest.(check int) "every query answered" (List.length qs)
            (List.length answers)
      | Error e -> Alcotest.fail ("typed error is fine, but: " ^ Xerror.to_string e));
      (* the ingest surfaces under the same scenario: a chunked parse
         and a sketch delta either succeed or fail typed — never raise.
         Small chunks maximise ingest.chunk trigger opportunities. *)
      let xml =
        "<lib>"
        ^ String.concat ""
            (List.init 64 (fun i -> Printf.sprintf "<b><y>%d</y></b>" i))
        ^ "</lib>"
      in
      for _ = 1 to 20 do
        (match Xtwig_xml.Sax.parse_string ~chunk:8 xml with
        | (_ : Xtwig_xml.Doc.t) -> ()
        | exception Fault.Injected _ -> ());
        match Xtwig_xml.Xml_parser.parse_string_res xml with
        | Ok doc -> (
            match Xtwig_xml.Xml_parser.parse_string_res "<b><y>99</y></b>" with
            | Error _ -> () (* fragment parse itself drew a fault *)
            | Ok fragment -> (
                let sk = Sketch.default_of_doc doc in
                match
                  Xtwig.update_sketch sk
                    (Sketch.Insert { parent = Xtwig_xml.Doc.root doc; fragment })
                with
                | Ok _ | Error (Xerror.Engine _) -> ()
                | Error e ->
                    Alcotest.failf "delta under chaos: expected Engine, got %s"
                      (Xerror.to_string e)))
        | Error (Xerror.Io _) -> ()
        | Error e ->
            Alcotest.failf "parse under chaos: expected Io, got %s"
              (Xerror.to_string e)
      done;
      (* the optimizer under the same scenario: planning is total — a
         drawn opt.plan fault degrades to the default branch order,
         never a raise and never a changed answer *)
      let doc = Lazy.force imdb in
      let sketch = Lazy.force sk in
      List.iteri
        (fun i q ->
          let plan = Xtwig.optimize sketch q in
          Alcotest.(check int)
            (Printf.sprintf "optimize under chaos: q%d answer unchanged" i)
            (Xtwig.selectivity doc q)
            (Xtwig.selectivity_ordered doc plan q))
        (List.filteri (fun i _ -> i < 10) qs);
      Printf.printf "fault-matrix: %d faults injected under %S\n%!"
        (Fault.injected_count ()) (Fault.spec_to_string spec)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "canonical example parses" `Quick test_spec_parse;
          Alcotest.test_case "malformed specs rejected" `Quick test_spec_rejects;
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
        ] );
      ( "points",
        [
          Alcotest.test_case "triggers" `Quick test_triggers;
          Alcotest.test_case "glob + first match wins" `Quick test_glob_first_match;
          Alcotest.test_case "scopes isolate hit counters" `Quick
            test_scopes_isolate_counters;
          Alcotest.test_case "disabled/reset semantics" `Quick
            test_disabled_and_reset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fault sequence deterministic across runs and jobs"
            `Quick test_fault_sequence_deterministic;
          Alcotest.test_case "retry then success" `Quick test_retry_then_success;
          Alcotest.test_case "retries exhausted -> coarse fallback" `Quick
            test_retries_exhausted_degrade;
          Alcotest.test_case "breaker trips, half-opens, recovers" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "cardinality guard degrades" `Quick
            test_guard_degrades;
          QCheck_alcotest.to_alcotest prop_engine_never_raises;
          Alcotest.test_case "XTWIG_FAULT_SPEC chaos (fault matrix)" `Quick
            test_env_scenario;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "ingest.chunk surfaces typed" `Quick
            test_ingest_chunk_fault;
          Alcotest.test_case "sketch.delta surfaces typed" `Quick
            test_sketch_delta_fault;
        ] );
    ]
