module Prng = Xtwig_util.Prng
module Zipf = Xtwig_util.Zipf
module Stats = Xtwig_util.Stats

let check_float = Alcotest.(check (float 1e-9))

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_range () =
  let g = Prng.create 7 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let x = Prng.int_range g 3 7 in
    Alcotest.(check bool) "in [3,7]" true (x >= 3 && x <= 7);
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_uniformity () =
  let g = Prng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int g 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.08 && frac < 0.12))
    buckets

let test_prng_split_independent () =
  let g = Prng.create 5 in
  let h = Prng.split g in
  let x = Prng.bits64 g and y = Prng.bits64 h in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_chance_extremes () =
  let g = Prng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.chance g 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.chance g 1.0)
  done

let test_sample_weighted () =
  let g = Prng.create 17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Prng.sample_weighted g [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. 30_000.0 in
  Alcotest.(check bool) "w0 ~ 0.1" true (Float.abs (f 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "w1 ~ 0.2" true (Float.abs (f 1 -. 0.2) < 0.02);
  Alcotest.(check bool) "w2 ~ 0.7" true (Float.abs (f 2 -. 0.7) < 0.02)

let test_shuffle_permutation () =
  let g = Prng.create 4 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_geometric_mean () =
  let g = Prng.create 21 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.geometric g 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of geometric(0.5) failures-before-success is 1 *)
  Alcotest.(check bool) "mean near 1" true (Float.abs (mean -. 1.0) < 0.05)

let test_zipf_support () =
  let z = Zipf.create ~n:10 ~theta:1.0 in
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let r = Zipf.sample z g in
    Alcotest.(check bool) "rank in [1,10]" true (r >= 1 && r <= 10)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:10 ~theta:1.2 in
  let g = Prng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let r = Zipf.sample z g in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "monotone-ish tail" true (counts.(0) > 3 * counts.(9))

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  check_float "uniform mean" 2.5 (Zipf.mean z)

let test_zipf_mean_matches_samples () =
  let z = Zipf.create ~n:20 ~theta:0.8 in
  let g = Prng.create 31 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Zipf.sample z g
  done;
  let emp = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "empirical mean matches analytic" true
    (Float.abs (emp -. Zipf.mean z) < 0.1)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_float "mean list" 2.5 (Stats.mean_list [ 2.0; 3.0 ])

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p10" 10.0 (Stats.percentile xs 10.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "median of singleton" 42.0 (Stats.median [| 42.0 |])

let test_stats_percentile_unsorted () =
  check_float "unsorted input" 2.0 (Stats.percentile [| 9.0; 2.0; 5.0; 1.0 |] 40.0)

let test_stats_percentile_empty () =
  (* a percentile of nothing is nan, not an exception: workload error
     aggregation must survive an empty bucket *)
  Alcotest.(check bool)
    "empty is nan" true
    (Float.is_nan (Stats.percentile [||] 50.0));
  Alcotest.(check bool) "median of empty is nan" true (Float.is_nan (Stats.median [||]))

let test_stats_stddev () =
  check_float "constant stddev" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_minmax () =
  check_float "min" (-3.0) (Stats.minimum [| 1.0; -3.0; 2.0 |]);
  check_float "max" 2.0 (Stats.maximum [| 1.0; -3.0; 2.0 |])

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_range inclusive" `Quick test_prng_int_range;
          Alcotest.test_case "float bounds" `Quick test_prng_float;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "weighted sampling" `Quick test_sample_weighted;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "support" `Quick test_zipf_support;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "theta=0 degenerates to uniform" `Quick
            test_zipf_uniform_degenerate;
          Alcotest.test_case "analytic mean" `Quick test_zipf_mean_matches_samples;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile unsorted" `Quick test_stats_percentile_unsorted;
          Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
        ] );
    ]
