module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Embed = Xtwig_sketch.Embed
module Spath = Xtwig_sketch.Spath
module Eval = Xtwig_eval.Eval_twig
module Fx = Xtwig_fixtures.Fixtures

let checkf = Alcotest.(check (float 1e-6))
let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let parse_p s =
  match Xtwig_path.Path_parser.parse_path_res s with
  | Ok p -> p
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

(* exact sketch over the full eligible scope of every node *)
let exact_full doc =
  let syn = G.label_split doc in
  let groupings =
    Array.init (G.node_count syn) (fun n ->
        match Tsn.scope_edges syn n with
        | [] -> []
        | edges ->
            [
              List.map
                (fun (src, dst) ->
                  let kind = if src = n then Sketch.Forward else Sketch.Backward in
                  { Sketch.src; dst; kind })
                edges;
            ])
  in
  Sketch.exact_for_scopes syn groupings

let bib = Fx.bibliography ()
let bib_full = exact_full bib
let bib_coarse = Sketch.default_of_doc bib

(* ---------------- the paper's discriminating example ---------------- *)

let test_figure_4_exact_with_full_info () =
  let q = Fx.figure_4_query () in
  let da = Fx.figure_4_doc_a () and db = Fx.figure_4_doc_b () in
  checkf "doc (a) exact" 2000.0 (Est.estimate (exact_full da) q);
  checkf "doc (b) exact" 10100.0 (Est.estimate (exact_full db) q)

let test_figure_4_coarse_cannot_discriminate () =
  let q = Fx.figure_4_query () in
  let ea = Est.estimate (Sketch.default_of_doc (Fx.figure_4_doc_a ())) q in
  let eb = Est.estimate (Sketch.default_of_doc (Fx.figure_4_doc_b ())) q in
  (* the single-path information is identical: estimates must agree,
     and (per Section 3.2) cannot match both true values *)
  checkf "same estimate on both documents" ea eb;
  checkf "independence product |a|*E[b]*E[c]" 6050.0 ea

let test_example_2_1_exact () =
  checkf "Example 2.1 estimate" 3.0 (Est.estimate bib_full (Fx.example_2_1_query ()))

(* ---------------- zero-error on full information ---------------- *)

let queries_bib =
  [
    "for t0 in //author";
    "for t0 in //paper, t1 in t0/keyword";
    "for t0 in //author, t1 in t0/name, t2 in t0/paper";
    "for t0 in //author, t1 in t0/paper, t2 in t1/keyword, t3 in t1/year";
    "for t0 in //paper, t1 in t0/keyword, t2 in t0/keyword";
    "for t0 in //author, t1 in t0/paper, t2 in t0/paper";
    "for t0 in /bibliography/author/paper, t1 in t0/title";
    "for t0 in //title";
  ]

let test_zero_error_structure_only () =
  List.iter
    (fun s ->
      let q = parse_t s in
      checkf s (float_of_int (Eval.selectivity bib q)) (Est.estimate bib_full q))
    queries_bib

let test_zero_error_movie_fragment () =
  let doc = Fx.movie_fragment () in
  let sk = exact_full doc in
  List.iter
    (fun s ->
      let q = parse_t s in
      checkf s (float_of_int (Eval.selectivity doc q)) (Est.estimate sk q))
    [
      "for t0 in //movie, t1 in t0/actor, t2 in t0/producer";
      "for t0 in //movie, t1 in t0/actor, t2 in t0/actor";
      "for t0 in //movie, t1 in t0/type, t2 in t0/actor, t3 in t0/producer";
    ]

(* ---------------- assumptions in action ---------------- *)

let test_forward_uniformity_on_uncovered () =
  (* coarse sketch: author->book uncovered; estimate uses avg fanout *)
  let q = parse_t "for t0 in //author, t1 in t0/book" in
  checkf "|author| * (1/3)" 1.0 (Est.estimate bib_coarse q)

let test_branch_existence_stable () =
  (* paper->year is F-stable: [year] branch costs nothing *)
  let q = parse_t "for t0 in //paper[year]" in
  checkf "all papers" 4.0 (Est.estimate bib_coarse q)

let test_branch_existence_partial () =
  (* author[book]: 1 of 3 authors; avg fanout 1/3 capped at 1 *)
  let q = parse_t "for t0 in //author[book]" in
  checkf "one third of authors" 1.0 (Est.estimate bib_coarse q)

let test_value_pred_estimate () =
  let q = parse_t "for t0 in //year[. > 2000]" in
  checkf "half the years (exact hist)" 2.0 (Est.estimate bib_full q)

let test_existence_frac_bounds () =
  let syn = Sketch.synopsis bib_coarse in
  let a = List.hd (G.nodes_with_label syn "author") in
  let b = List.hd (G.nodes_with_label syn "book") in
  let alt = { Embed.bnode = b; bvpred = None; bsubs = [] } in
  let f = Est.existence_frac bib_coarse a [ alt ] in
  Alcotest.(check bool) "in [0,1]" true (f >= 0.0 && f <= 1.0);
  (* duplicated alternatives stay capped *)
  let f2 = Est.existence_frac bib_coarse a [ alt; alt; alt; alt ] in
  Alcotest.(check bool) "capped at 1" true (f2 <= 1.0)

let test_estimate_path_equals_chain () =
  let p = parse_p "/bibliography/author/paper/keyword" in
  checkf "path = chain twig" 6.0 (Est.estimate_path bib_full p)

let test_categorical_predicate () =
  (* the movie fragment: 2 of 5 movies have type "Action"; the MCV
     summary makes the equality branch exact on the coarse sketch *)
  let doc = Fx.movie_fragment () in
  (* vbudget 4 retains all three genres; an unseen value then gets the
     empty "other" mass, i.e. estimate 0 *)
  let sk = Sketch.coarsest ~vbudget:4 (G.label_split doc) in
  let q = parse_t "for t0 in //movie[type[. = \"Action\"]]" in
  checkf "two action movies" 2.0 (Est.estimate sk q);
  let q2 = parse_t "for t0 in //movie[type[. = \"Documentary\"]]" in
  checkf "two documentaries" 2.0 (Est.estimate sk q2);
  let q3 = parse_t "for t0 in //movie[type[. = \"Western\"]]" in
  checkf "no westerns" 0.0 (Est.estimate sk q3);
  (* at budget 2 the dropped genre shares the "other" mass: a standard,
     deliberately conservative MCV answer *)
  let sk2 = Sketch.default_of_doc doc in
  Alcotest.(check bool) "unretained value gets other-mass estimate" true
    (Est.estimate sk2 q3 > 0.0)

let test_embed_truncation_flag () =
  (* a pathological alternative explosion trips the cap but still
     returns some embeddings *)
  let doc = Fx.bibliography () in
  let syn = G.label_split doc in
  let q = parse_t "for t0 in //title" in
  let es = Xtwig_sketch.Embed.embeddings ~max_alternatives:1 syn q in
  Alcotest.(check bool) "truncated reported" true
    (Xtwig_sketch.Embed.last_truncated ());
  Alcotest.(check int) "kept within the cap" 1 (List.length es)

(* ---------------- spath baseline ---------------- *)

let test_spath_strips_hists () =
  let stripped = Spath.strip_edge_hists bib_full in
  for n = 0 to Sketch.node_count stripped - 1 do
    Alcotest.(check int) "no edge hists" 0 (List.length (Sketch.hists stripped n))
  done;
  (* value hists survive *)
  let syn = Sketch.synopsis stripped in
  let y = List.hd (G.nodes_with_label syn "year") in
  Alcotest.(check bool) "value hist kept" true (Sketch.vhist stripped y <> None)

let test_spath_single_path_accuracy () =
  (* simple paths only need counts: the structural baseline is exact on
     B-stable chains *)
  checkf "authors" 3.0 (Spath.estimate_path bib_full (parse_p "//author"));
  checkf "papers" 4.0 (Spath.estimate_path bib_full (parse_p "//author/paper"));
  checkf "keywords" 6.0
    (Spath.estimate_path bib_full (parse_p "/bibliography/author/paper/keyword"))

let test_spath_twig_independence () =
  (* the structural baseline cannot see the fig-4 correlation either *)
  let q = Fx.figure_4_query () in
  let ea = Spath.estimate (exact_full (Fx.figure_4_doc_a ())) q in
  checkf "independence estimate" 6050.0 ea

(* ---------------- properties ---------------- *)

(* On random small documents, the estimator with full-scope exact
   histograms over a fully stabilized synopsis is exact for
   structure-only star twigs: every queried edge is F-stable there and
   hence coverable. (Over a label-split synopsis the guarantee does not
   hold — optional children are not scope-eligible, by Definition 3.1.) *)
let exact_full_stabilized doc =
  let syn = G.stabilize_fixpoint ~max_rounds:500 (G.label_split doc) in
  let groupings =
    Array.init (G.node_count syn) (fun n ->
        match Tsn.scope_edges syn n with
        | [] -> []
        | edges ->
            [
              List.map
                (fun (src, dst) ->
                  let kind = if src = n then Sketch.Forward else Sketch.Backward in
                  { Sketch.src; dst; kind })
                edges;
            ])
  in
  Sketch.exact_for_scopes syn groupings

let prop_full_info_zero_error =
  QCheck2.Test.make ~name:"full info => zero error (star twigs)" ~count:25
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let doc = Xtwig_datagen.Imdb.generate ~seed ~scale:0.003 () in
      let sk = exact_full_stabilized doc in
      let queries =
        [
          "for t0 in //movie, t1 in t0/actor, t2 in t0/producer";
          "for t0 in //movie, t1 in t0/actor, t2 in t0/keyword, t3 in t0/producer";
          "for t0 in //movie, t1 in t0/director, t2 in t0/actor";
        ]
      in
      List.for_all
        (fun s ->
          let q = parse_t s in
          let truth = float_of_int (Eval.selectivity doc q) in
          let est = Est.estimate sk q in
          Float.abs (est -. truth) <= 1e-6 +. (1e-9 *. truth))
        queries)

(* Stronger form: zero error on randomly *generated* structure-only
   twigs (random shapes, descendant roots, 2-step paths, branching
   predicates), not just fixed stars. *)
let prop_full_info_zero_error_generated =
  QCheck2.Test.make ~name:"full info => zero error (generated twigs)" ~count:12
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let doc =
        if seed mod 2 = 0 then Xtwig_datagen.Sprot.generate ~seed ~scale:0.004 ()
        else Xtwig_datagen.Imdb.generate ~seed ~scale:0.004 ()
      in
      let sk = exact_full_stabilized doc in
      let spec =
        { Xtwig_workload.Wgen.paper_p with n_queries = 5; min_nodes = 3; max_nodes = 5 }
      in
      let qs =
        Xtwig_workload.Wgen.generate spec (Xtwig_util.Prng.create seed) doc
      in
      List.for_all
        (fun q ->
          let truth = float_of_int (Eval.selectivity doc q) in
          let est = Est.estimate sk q in
          Float.abs (est -. truth) <= 1e-6 +. (1e-6 *. truth))
        qs)

let prop_estimates_nonnegative =
  QCheck2.Test.make ~name:"estimates are non-negative" ~count:25
    QCheck2.Gen.(pair (0 -- 1000) (1 -- 6))
    (fun (seed, budget) ->
      let doc = Xtwig_datagen.Sprot.generate ~seed ~scale:0.01 () in
      let sk = Sketch.default_of_doc ~ebudget:budget doc in
      let prng = Xtwig_util.Prng.create seed in
      let spec = { Xtwig_workload.Wgen.paper_p with n_queries = 5 } in
      let qs = Xtwig_workload.Wgen.generate spec prng doc in
      List.for_all (fun q -> Est.estimate sk q >= 0.0) qs)

let () =
  Alcotest.run "estimator"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "Figure 4 exact with full info" `Quick
            test_figure_4_exact_with_full_info;
          Alcotest.test_case "Figure 4 coarse cannot discriminate" `Quick
            test_figure_4_coarse_cannot_discriminate;
          Alcotest.test_case "Example 2.1 exact" `Quick test_example_2_1_exact;
        ] );
      ( "zero-error",
        [
          Alcotest.test_case "bibliography structure twigs" `Quick
            test_zero_error_structure_only;
          Alcotest.test_case "movie fragment" `Quick test_zero_error_movie_fragment;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "forward uniformity" `Quick
            test_forward_uniformity_on_uncovered;
          Alcotest.test_case "stable branch is free" `Quick test_branch_existence_stable;
          Alcotest.test_case "partial branch fraction" `Quick
            test_branch_existence_partial;
          Alcotest.test_case "value predicate" `Quick test_value_pred_estimate;
          Alcotest.test_case "existence fraction bounds" `Quick
            test_existence_frac_bounds;
          Alcotest.test_case "estimate_path" `Quick test_estimate_path_equals_chain;
          Alcotest.test_case "categorical predicate (MCV)" `Quick
            test_categorical_predicate;
          Alcotest.test_case "embed truncation" `Quick test_embed_truncation_flag;
        ] );
      ( "spath-baseline",
        [
          Alcotest.test_case "strip" `Quick test_spath_strips_hists;
          Alcotest.test_case "single-path accuracy" `Quick
            test_spath_single_path_accuracy;
          Alcotest.test_case "twig independence" `Quick test_spath_twig_independence;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_full_info_zero_error;
            prop_full_info_zero_error_generated;
            prop_estimates_nonnegative;
          ] );
    ]
