(* Validate Chrome trace-event dumps (and, with a .json metrics file,
   that the metrics dump is non-empty JSON): the CI smoke step runs
   this over the artifacts of a traced bench run.

   Usage: check_trace.exe FILE... — trace files are checked for B/E
   pairing and nesting via Trace.validate_file; exits non-zero on the
   first malformed file. *)

let check_metrics path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '{' || s.[String.length s - 1] <> '}' then
    Error "not a JSON object"
  else if String.length s <= 2 then Error "empty metrics dump"
  else Ok ()

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: check_trace.exe TRACE.json [METRICS.json ...]";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      let result =
        (* a trace dump starts with {"traceEvents"; anything else is
           treated as a metrics dump *)
        let ic = open_in path in
        let head = try input_line ic with End_of_file -> "" in
        close_in ic;
        let is_trace =
          String.length head >= 14 && String.sub head 0 14 = "{\"traceEvents\""
        in
        if is_trace then
          match Xtwig_obs.Trace.validate_file path with
          | Ok spans -> Ok (Printf.sprintf "%d well-formed spans" spans)
          | Error e -> Error e
        else
          match check_metrics path with
          | Ok () -> Ok "metrics JSON object"
          | Error e -> Error e
      in
      match result with
      | Ok msg -> Printf.printf "%s: OK (%s)\n" path msg
      | Error e ->
          Printf.eprintf "%s: INVALID: %s\n" path e;
          failed := true)
    files;
  if !failed then exit 1
