(** The shared property-test toolkit: QCheck2 generators for the
    repository's core values — documents, paths, twigs, sketches and
    fault scenarios — so every suite draws from the same distributions
    and QCheck2's integrated shrinking works uniformly.

    All generators are sized where the value has a natural size knob
    ({!doc} caps node count by the QCheck size parameter, {!twig}
    bounds branch depth), which keeps shrunk counterexamples small and
    readable. Equality/structural helpers the properties need ride
    along ({!doc_equal}). *)

(** {1 Documents} *)

val label : string QCheck2.Gen.t
(** A tag name from a small fixed vocabulary — collisions are the
    point (twig matching needs repeated labels). *)

val value : Xtwig_xml.Value.t QCheck2.Gen.t
(** Null, small ints, or short lowercase text. *)

val doc : Xtwig_xml.Doc.t QCheck2.Gen.t
(** A random rooted document of 1–41 nodes (sized): node [k]'s parent
    is drawn among the nodes built before it, so every tree shape is
    reachable and shrinking drops subtrees from the end. *)

val doc_equal : Xtwig_xml.Doc.t -> Xtwig_xml.Doc.t -> bool
(** Structural equality from the roots: tags, values, child counts
    and child order. *)

(** {1 Paths and twigs} *)

val path : Xtwig_path.Path_types.path QCheck2.Gen.t
(** 1–3 steps, child/descendant axes, optional range predicates, no
    branches (branch structure belongs to {!twig}). *)

val twig : ?depth:int -> unit -> Xtwig_path.Path_types.twig QCheck2.Gen.t
(** A twig of nested sub-twigs bounded by [depth] (default 2), each
    node carrying a {!path}. *)

(** {1 Sketches} *)

val doc_with_sketch :
  (Xtwig_xml.Doc.t * Xtwig_sketch.Sketch.t) QCheck2.Gen.t
(** A generated {!doc} with its label-split sketch
    ([Sketch.default_of_doc]) — the cheap way to a serializable
    sketch whose partition varies with the document. *)

(** {1 Fault scenarios} *)

val fault_points : string list
(** The failure points production code declares, as patterns —
    including a prefix-glob entry. Scenario generators draw patterns
    from this list so every generated scenario targets real points. *)

val fault_trigger : Xtwig_fault.Fault.trigger QCheck2.Gen.t
(** Any of the five trigger shapes, with small parameters (hit
    indices 1–20, probabilities 0–0.5). *)

val fault_spec : ?points:string list -> unit -> Xtwig_fault.Fault.spec QCheck2.Gen.t
(** A scenario of 0–4 rules over [points] (default {!fault_points})
    and a small seed. Round-trips through
    [Fault.parse_spec (Fault.spec_to_string s)]. *)
