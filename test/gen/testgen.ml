module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module Sketch = Xtwig_sketch.Sketch
module Fault = Xtwig_fault.Fault
open Xtwig_path.Path_types

(* ------------------------------------------------------------------ *)
(* Documents *)

let label = QCheck2.Gen.oneofl [ "a"; "bb"; "c0"; "movie"; "year" ]

let value =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) small_int;
        map
          (fun s -> Value.Text s)
          (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
      ])

let doc =
  QCheck2.Gen.(
    sized @@ fun budget ->
    let budget = 1 + (budget mod 40) in
    map
      (fun seeds ->
        let b = Doc.Builder.create () in
        let root = Doc.Builder.root b "root" in
        let nodes = ref [| root |] in
        List.iter
          (fun (pi, (t, v)) ->
            let parent = !nodes.(pi mod Array.length !nodes) in
            let n = Doc.Builder.child b parent ~value:v t in
            nodes := Array.append !nodes [| n |])
          seeds;
        Doc.Builder.finish b)
      (list_size (return budget) (pair small_int (pair label value))))

let doc_equal d1 d2 =
  let rec eq n1 n2 =
    Doc.tag_name d1 n1 = Doc.tag_name d2 n2
    && Value.equal (Doc.value d1 n1) (Doc.value d2 n2)
    && Array.length (Doc.children d1 n1) = Array.length (Doc.children d2 n2)
    && Array.for_all2 eq (Doc.children d1 n1) (Doc.children d2 n2)
  in
  eq (Doc.root d1) (Doc.root d2)

(* ------------------------------------------------------------------ *)
(* Paths and twigs *)

let step_gen =
  QCheck2.Gen.(
    map3
      (fun axis label vp -> { axis; label; vpred = vp; branches = [] })
      (oneofl [ Child; Descendant ])
      label
      (oneof
         [
           return None;
           map
             (fun (a, b) ->
               Some (Range (float_of_int (min a b), float_of_int (max a b))))
             (pair small_int small_int);
         ]))

let path =
  QCheck2.Gen.(
    map2 (fun first rest -> first :: rest) step_gen
      (list_size (0 -- 2) step_gen))

let rec twig_sized depth =
  QCheck2.Gen.(
    if depth = 0 then map (fun p -> { path = p; subs = [] }) path
    else
      map2
        (fun p subs -> { path = p; subs })
        path
        (list_size (0 -- 2) (twig_sized (depth - 1))))

let twig ?(depth = 2) () = twig_sized depth

(* ------------------------------------------------------------------ *)
(* Sketches *)

let doc_with_sketch =
  QCheck2.Gen.map (fun d -> (d, Sketch.default_of_doc d)) doc

(* ------------------------------------------------------------------ *)
(* Fault scenarios *)

let fault_points =
  [
    "sketch_io.write";
    "sketch_io.fsync";
    "sketch_io.rename";
    "sketch_io.read";
    "sketch_io.*";
    "xml.parse";
    "xml.write";
    "pool.task";
    "embed.fill";
    "plan.fill";
    "engine.query";
    "opt.plan";
  ]

let fault_trigger =
  QCheck2.Gen.(
    oneof
      [
        return Fault.Always;
        map (fun p -> Fault.Prob (float_of_int p /. 40.0)) (0 -- 20);
        map (fun n -> Fault.Nth n) (1 -- 20);
        map (fun n -> Fault.Every n) (1 -- 20);
        map
          (fun hits -> Fault.Script (List.sort_uniq compare hits))
          (list_size (1 -- 4) (1 -- 20));
      ])

let fault_spec ?(points = fault_points) () =
  QCheck2.Gen.(
    map2
      (fun seed rules -> { Fault.seed; rules })
      (0 -- 1000)
      (list_size (0 -- 4)
         (map2
            (fun pattern trigger -> { Fault.pattern; trigger })
            (oneofl points) fault_trigger)))
