(* Crash safety of the sketch persistence layer.

   The claims under test:
   - a v2 sketch file truncated at ANY byte boundary (a torn write)
     reads as a typed error — Xerror.Corrupt for any prefix of our own
     file — and the damaged file is quarantined; never a crash, never
     a silently smaller sketch;
   - only the complete file round-trips;
   - Sketch_io.write is atomic: an injected fault at any write-path
     point (open/write, fsync, rename) leaves the destination either
     absent or its previous complete version, and no temp droppings
     that a later write would trip over;
   - checksum tampering is caught. *)

module Sketch = Xtwig_sketch.Sketch
module Sketch_io = Xtwig_sketch.Sketch_io
module Xerror = Xtwig_util.Xerror
module Fault = Xtwig_fault.Fault
module Testgen = Xtwig_testgen.Testgen

let get = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Xerror.to_string e)

let spec s =
  match Fault.parse_spec s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("bad spec: " ^ e)

let tmpdir = Filename.get_temp_dir_name ()

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat tmpdir (Printf.sprintf "xtwig_crash_%d_%d.sketch" (Unix.getpid ()) !n)

let write_raw path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let cleanup path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (path :: (path ^ ".quarantined") :: (path ^ ".tmp")
    :: List.init 8 (fun n -> Printf.sprintf "%s.quarantined.%d" path n))

(* a small document and its sketch, shared by the deterministic tests *)
let doc =
  get
    (Xtwig_xml.Xml_parser.parse_string_res
       "<lib><a><b>1</b><c>x</c></a><a><b>2</b></a><d/></lib>")

let sketch = Sketch.default_of_doc doc

(* ------------------------------------------------------------------ *)
(* Torn reads *)

let read_prefix text len =
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_raw path (String.sub text 0 len);
  let res = Sketch_io.read_res doc path in
  let quarantined = Sys.file_exists (path ^ ".quarantined") in
  let original_left = Sys.file_exists path in
  (res, quarantined, original_left)

let test_torn_write_every_boundary () =
  let text = Sketch_io.to_string sketch in
  let n = String.length text in
  for len = 0 to n - 1 do
    match read_prefix text len with
    | Ok _, _, _ ->
        Alcotest.fail (Printf.sprintf "prefix of %d/%d bytes read as Ok" len n)
    | Error (Xerror.Corrupt _), quarantined, original_left ->
        if not quarantined then
          Alcotest.fail (Printf.sprintf "prefix %d/%d: no quarantine file" len n);
        if original_left then
          Alcotest.fail
            (Printf.sprintf "prefix %d/%d: damaged file left in place" len n)
    | Error e, _, _ ->
        Alcotest.fail
          (Printf.sprintf "prefix %d/%d: expected Corrupt, got %s" len n
             (Xerror.to_string e))
  done;
  (* and the complete file round-trips *)
  match read_prefix text n with
  | Ok (_, sk2), quarantined, _ ->
      Alcotest.(check bool) "no quarantine on a healthy file" false quarantined;
      Alcotest.(check string) "identical re-serialization" text
        (Sketch_io.to_string sk2)
  | Error e, _, _ -> Alcotest.fail (Xerror.to_string e)

let test_checksum_tamper () =
  let text = Sketch_io.to_string sketch in
  (* flip one digit inside the partition body; the checksum no longer
     matches, so the damage is classified Corrupt before any parsing *)
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then Alcotest.fail ("no " ^ sub ^ " in sketch text")
      else if String.sub s i m = sub then i
      else go (i + 1)
    in
    go 0
  in
  let i = find_sub text "partition" in
  let tampered = Bytes.of_string text in
  Bytes.set tampered (i + 10)
    (if Bytes.get tampered (i + 10) = '0' then '1' else '0');
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_raw path (Bytes.to_string tampered);
  match Sketch_io.read_res doc path with
  | Error (Xerror.Corrupt _) ->
      Alcotest.(check bool) "quarantined" true (Sys.file_exists (path ^ ".quarantined"))
  | Ok _ -> Alcotest.fail "tampered file read as Ok"
  | Error e -> Alcotest.fail ("expected Corrupt, got " ^ Xerror.to_string e)

let test_garbage_still_format_error () =
  (* a file that is not a torn xtwig sketch is a foreign/malformed
     format, not corruption — and is left alone *)
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_raw path "totally not a sketch\n";
  match Sketch_io.read_res doc path with
  | Error (Xerror.Sketch_format _) ->
      Alcotest.(check bool) "not quarantined" false
        (Sys.file_exists (path ^ ".quarantined"));
      Alcotest.(check bool) "left in place" true (Sys.file_exists path)
  | Ok _ -> Alcotest.fail "garbage read as Ok"
  | Error e -> Alcotest.fail ("expected Sketch_format, got " ^ Xerror.to_string e)

let test_quarantine_no_collision () =
  (* repeated corruptions of the same path must each keep their own
     evidence: .quarantined, then .quarantined.1, .quarantined.2 — a
     later corruption never overwrites an earlier one's file *)
  let text = Sketch_io.to_string sketch in
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let corrupt_once len =
    write_raw path (String.sub text 0 len);
    match Sketch_io.read_res doc path with
    | Error (Xerror.Corrupt _) -> ()
    | Ok _ -> Alcotest.fail "corrupt prefix read as Ok"
    | Error e -> Alcotest.fail ("expected Corrupt, got " ^ Xerror.to_string e)
  in
  let n = String.length text in
  corrupt_once (n - 1);
  corrupt_once (n - 2);
  corrupt_once (n - 3);
  let len p = (Unix.stat p).Unix.st_size in
  List.iter
    (fun (suffix, expect) ->
      let p = path ^ suffix in
      Alcotest.(check bool) (suffix ^ " exists") true (Sys.file_exists p);
      Alcotest.(check int) (suffix ^ " keeps its own evidence") expect (len p))
    [ (".quarantined", n - 1); (".quarantined.1", n - 2); (".quarantined.2", n - 3) ]

(* ------------------------------------------------------------------ *)
(* Atomic writes under injected faults *)

let test_write_faults_leave_destination_intact () =
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (* publish a good version first *)
  get (Sketch_io.write_res sketch path);
  let good = Sketch_io.to_string sketch in
  List.iter
    (fun point ->
      Fault.install (spec (Printf.sprintf "%s:always" point));
      (match Sketch_io.write_res sketch path with
      | Error (Xerror.Io msg) ->
          Alcotest.(check bool)
            (point ^ " surfaces as Io") true
            (String.length msg > 0)
      | Ok () -> Alcotest.fail (point ^ ": write claimed success")
      | Error e -> Alcotest.fail (point ^ ": " ^ Xerror.to_string e));
      Fault.disable ();
      (* the previous complete version survives, bit for bit *)
      let _, sk2 = get (Sketch_io.read_res doc path) in
      Alcotest.(check string)
        (point ^ ": destination still the previous version") good
        (Sketch_io.to_string sk2);
      Alcotest.(check bool)
        (point ^ ": no temp droppings") false
        (Sys.file_exists (path ^ ".tmp")))
    [ "sketch_io.write"; "sketch_io.fsync"; "sketch_io.rename" ]

let test_read_fault_is_io () =
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  get (Sketch_io.write_res sketch path);
  Fault.install (spec "sketch_io.read:always");
  (match Sketch_io.read_res doc path with
  | Error (Xerror.Io _) -> ()
  | Ok _ -> Alcotest.fail "read claimed success under injection"
  | Error e -> Alcotest.fail ("expected Io, got " ^ Xerror.to_string e));
  Fault.disable ();
  (* the fault did not quarantine a healthy file *)
  Alcotest.(check bool) "healthy file untouched" true (Sys.file_exists path);
  ignore (get (Sketch_io.read_res doc path))

(* ------------------------------------------------------------------ *)
(* Property: random sketches, random truncation points *)

let prop_random_truncation =
  QCheck2.Test.make ~name:"random sketch, random truncation -> Corrupt + quarantine"
    ~count:60
    (QCheck2.Gen.pair Testgen.doc_with_sketch (QCheck2.Gen.float_bound_inclusive 1.0))
    (fun ((d, sk), frac) ->
      let text = Sketch_io.to_string sk in
      let n = String.length text in
      let len = min (n - 1) (int_of_float (frac *. float_of_int n)) in
      let path = fresh_path () in
      Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
      write_raw path (String.sub text 0 len);
      match Sketch_io.read_res d path with
      | Ok _ -> false
      | Error (Xerror.Corrupt _) -> Sys.file_exists (path ^ ".quarantined")
      | Error _ -> false)

let prop_write_read_roundtrip =
  QCheck2.Test.make ~name:"atomic write/read roundtrip" ~count:60
    Testgen.doc_with_sketch (fun (d, sk) ->
      let path = fresh_path () in
      Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
      match Sketch_io.write_res sk path with
      | Error _ -> false
      | Ok () -> (
          match Sketch_io.read_res d path with
          | Ok (_, sk2) -> Sketch_io.to_string sk = Sketch_io.to_string sk2
          | Error _ -> false))

let () =
  Alcotest.run "crash_io"
    [
      ( "torn reads",
        [
          Alcotest.test_case "every byte boundary" `Quick
            test_torn_write_every_boundary;
          Alcotest.test_case "checksum tamper" `Quick test_checksum_tamper;
          Alcotest.test_case "garbage stays Sketch_format" `Quick
            test_garbage_still_format_error;
          Alcotest.test_case "repeated quarantines never collide" `Quick
            test_quarantine_no_collision;
        ] );
      ( "atomic writes",
        [
          Alcotest.test_case "write faults leave destination intact" `Quick
            test_write_faults_leave_destination_intact;
          Alcotest.test_case "read fault is Io, not quarantine" `Quick
            test_read_fault_is_io;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_truncation; prop_write_read_roundtrip ] );
    ]
