module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Ref = Xtwig_sketch.Refinement
module Prng = Xtwig_util.Prng
module Fx = Xtwig_fixtures.Fixtures

let checkf = Alcotest.(check (float 1e-6))
let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let bib = Fx.bibliography ()
let coarse () = Sketch.default_of_doc bib

let node sk label =
  match G.nodes_with_label (Sketch.synopsis sk) label with
  | n :: _ -> n
  | [] -> Alcotest.failf "no %s node" label

(* ---------------- structural refinements ---------------- *)

let test_b_stabilize () =
  let sk = coarse () in
  let syn = Sketch.synopsis sk in
  let t = node sk "title" in
  let incoming = G.in_edges syn t in
  let e = List.find (fun (e : G.edge) -> not e.b_stable) incoming in
  let sk' = Ref.apply sk (Ref.B_stabilize { src = e.src; dst = e.dst }) in
  let syn' = Sketch.synopsis sk' in
  Alcotest.(check int) "node added" (G.node_count syn + 1) (G.node_count syn');
  List.iter
    (fun tn ->
      List.iter
        (fun (e : G.edge) -> Alcotest.(check bool) "b-stable now" true e.b_stable)
        (G.in_edges syn' tn))
    (G.nodes_with_label syn' "title")

let test_f_stabilize_improves_estimate () =
  (* author[book]: coarse gives 1.0 by uniformity; after f-stabilizing
     author->book the split is exact *)
  let sk = coarse () in
  let a = node sk "author" and b = node sk "book" in
  let sk' = Ref.apply sk (Ref.F_stabilize { src = a; dst = b }) in
  let q = parse_t "for t0 in //author[book]" in
  checkf "exact after split" 1.0 (Est.estimate sk' q);
  (* and the authors node is now split 1 + 2 *)
  let sizes =
    List.sort compare
      (List.map
         (G.extent_size (Sketch.synopsis sk'))
         (G.nodes_with_label (Sketch.synopsis sk') "author"))
  in
  Alcotest.(check (list int)) "split sizes" [ 1; 2 ] sizes

let test_structural_noop () =
  let sk = coarse () in
  let a = node sk "author" and p = node sk "paper" in
  (* author->paper already B-stable: applying b-stabilize is a no-op *)
  let sk' = Ref.apply sk (Ref.B_stabilize { src = a; dst = p }) in
  Alcotest.(check bool) "physically unchanged" true (sk' == sk)

let test_histogram_carryover () =
  (* after a split elsewhere, existing histograms are remapped, not
     lost: paper keeps its 3 forward hists *)
  let sk = coarse () in
  let a = node sk "author" and b = node sk "book" in
  let sk' = Ref.apply sk (Ref.F_stabilize { src = a; dst = b }) in
  let p' = node sk' "paper" in
  Alcotest.(check bool) "paper hists survive" true
    (List.length (Sketch.hists sk' p') >= 3)

(* ---------------- edge refinements ---------------- *)

let test_edge_refine_grows () =
  let sk = coarse () in
  let p = node sk "paper" in
  let k = node sk "keyword" in
  (* refine the histogram whose distribution actually has support > 1
     (keyword counts vary across papers); constant distributions cannot
     use extra buckets *)
  let hist =
    let rec scan i = function
      | [] -> Alcotest.fail "keyword hist missing"
      | (spec : Sketch.hist_spec) :: rest ->
          if List.exists (fun (d : Sketch.dim) -> d.dst = k) spec.dims then i
          else scan (i + 1) rest
    in
    scan 0 (Sketch.config sk).especs.(p)
  in
  let sk' = Ref.apply sk (Ref.Edge_refine { node = p; hist; extra_buckets = 4 }) in
  Alcotest.(check bool) "larger" true (Sketch.size_bytes sk' > Sketch.size_bytes sk);
  let specs = (Sketch.config sk').especs.(p) in
  Alcotest.(check int) "budget bumped" 5 (List.nth specs hist).Sketch.budget

let test_edge_refine_cap () =
  let sk = coarse () in
  let p = node sk "paper" in
  let sk' =
    Ref.apply sk (Ref.Edge_refine { node = p; hist = 0; extra_buckets = 1000 })
  in
  Alcotest.(check int) "capped at 64" 64
    (List.nth (Sketch.config sk').especs.(p) 0).Sketch.budget

let test_edge_expand_merges () =
  let sk = coarse () in
  let p = node sk "paper" and k = node sk "keyword" and y = node sk "year" in
  (* find the hist holding paper->keyword and expand it with paper->year *)
  let hist_idx =
    let rec scan i = function
      | [] -> Alcotest.fail "keyword hist missing"
      | (spec : Sketch.hist_spec) :: rest ->
          if List.exists (fun (d : Sketch.dim) -> d.dst = k) spec.dims then i
          else scan (i + 1) rest
    in
    scan 0 (Sketch.config sk).especs.(p)
  in
  let dim = { Sketch.src = p; dst = y; kind = Sketch.Forward } in
  let sk' = Ref.apply sk (Ref.Edge_expand { node = p; dim; into = Some hist_idx }) in
  (* year must have moved out of its own hist into the joint one *)
  match Sketch.covering_hist sk' p dim with
  | Some (dims, _, _) ->
      Alcotest.(check int) "joint hist has 2 dims" 2 (Array.length dims);
      (* no other hist still covers year *)
      let owners =
        List.filter
          (fun (dims, _) -> Array.exists (fun (d : Sketch.dim) -> d = dim) dims)
          (Sketch.hists sk' p)
      in
      Alcotest.(check int) "unique owner" 1 (List.length owners)
  | None -> Alcotest.fail "expanded dim not covered"

let test_edge_expand_fixes_figure4 () =
  (* the paper's motivating fix: covering (a->b, a->c) jointly makes the
     fig-4 estimate exact *)
  let doc = Fx.figure_4_doc_a () in
  let sk = Sketch.default_of_doc ~ebudget:8 doc in
  let syn = Sketch.synopsis sk in
  let a = List.hd (G.nodes_with_label syn "a") in
  let b = List.hd (G.nodes_with_label syn "b") in
  let c = List.hd (G.nodes_with_label syn "c") in
  let q = Fx.figure_4_query () in
  let before = Est.estimate sk q in
  Alcotest.(check bool) "coarse is wrong" true (Float.abs (before -. 2000.0) > 1.0);
  (* merge the two 1-d hists *)
  let idx_of dst =
    let rec scan i = function
      | [] -> Alcotest.fail "hist missing"
      | (spec : Sketch.hist_spec) :: rest ->
          if List.exists (fun (d : Sketch.dim) -> d.dst = dst) spec.dims then i
          else scan (i + 1) rest
    in
    scan 0 (Sketch.config sk).especs.(a)
  in
  let dim_c = { Sketch.src = a; dst = c; kind = Sketch.Forward } in
  let sk' = Ref.apply sk (Ref.Edge_expand { node = a; dim = dim_c; into = Some (idx_of b) }) in
  checkf "joint histogram is exact" 2000.0 (Est.estimate sk' q)

let test_value_refine () =
  let sk = coarse () in
  let y = node sk "year" in
  let sk' = Ref.apply sk (Ref.Value_refine { node = y; extra_buckets = 8 }) in
  Alcotest.(check bool) "value hist grew" true
    (match (Sketch.vhist sk' y, Sketch.vhist sk y) with
    | Some h', Some h -> Xtwig_hist.Hist1d.bucket_count h' >= Xtwig_hist.Hist1d.bucket_count h
    | _ -> false)

let test_value_split_extension () =
  (* split the movie fragment's type node by value, f-stabilize the
     movie edges, and the genre-correlated join becomes exact *)
  let doc = Fx.movie_fragment () in
  let sk = Sketch.default_of_doc doc in
  let syn = Sketch.synopsis sk in
  let ty = List.hd (G.nodes_with_label syn "type") in
  let q =
    parse_t
      "for t0 in //movie[type[. = \"Documentary\"]], t1 in t0/actor, t2 in \
       t0/producer"
  in
  let truth = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
  let before = Est.estimate sk q in
  let sk = Ref.apply sk (Ref.Value_split { node = ty; ways = 3 }) in
  let rec stabilize sk fuel =
    if fuel = 0 then sk
    else
      let syn = Sketch.synopsis sk in
      let unstable =
        List.concat_map
          (fun m ->
            List.filter_map
              (fun (e : G.edge) ->
                if (not e.f_stable) && G.tag_name syn e.dst = "type" then
                  Some (e.src, e.dst)
                else None)
              (G.out_edges syn m))
          (G.nodes_with_label syn "movie")
      in
      match unstable with
      | [] -> sk
      | (src, dst) :: _ ->
          stabilize (Ref.apply sk (Ref.F_stabilize { src; dst })) (fuel - 1)
  in
  let sk = stabilize sk 12 in
  let after = Est.estimate sk q in
  Alcotest.(check bool)
    (Printf.sprintf "closer to truth %.1f (%.2f -> %.2f)" truth before after)
    true
    (Float.abs (after -. truth) < Float.abs (before -. truth));
  Alcotest.(check (float 0.5)) "near exact" truth after

let test_value_split_no_categorical_noop () =
  let sk = coarse () in
  let y = node sk "year" in
  (* year holds numeric values only: value-split is a no-op *)
  let sk' = Ref.apply sk (Ref.Value_split { node = y; ways = 4 }) in
  Alcotest.(check bool) "unchanged" true (sk' == sk)

(* ---------------- candidate generation ---------------- *)

let test_gen_candidates_bounded () =
  let sk = coarse () in
  let prng = Prng.create 3 in
  let pool = Ref.gen_candidates ~count:6 sk prng in
  Alcotest.(check bool) "non-empty" true (pool <> []);
  Alcotest.(check bool) "bounded" true (List.length pool <= 6);
  (* no duplicates *)
  Alcotest.(check int) "unique" (List.length pool)
    (List.length (List.sort_uniq compare pool))

let test_gen_candidates_structural_validity () =
  let sk = coarse () in
  let syn = Sketch.synopsis sk in
  let prng = Prng.create 17 in
  let pool = Ref.gen_candidates ~count:12 sk prng in
  List.iter
    (fun op ->
      match op with
      | Ref.B_stabilize { src; dst } -> (
          match G.edge syn ~src ~dst with
          | Some e -> Alcotest.(check bool) "targets unstable edge" false e.b_stable
          | None -> Alcotest.fail "b-stabilize on a non-edge")
      | Ref.F_stabilize { src; dst } -> (
          match G.edge syn ~src ~dst with
          | Some e -> Alcotest.(check bool) "targets unstable edge" false e.f_stable
          | None -> Alcotest.fail "f-stabilize on a non-edge")
      | Ref.Edge_refine { node; hist; _ } ->
          Alcotest.(check bool) "hist exists" true
            (hist < List.length (Sketch.config sk).especs.(node))
      | Ref.Edge_expand _ | Ref.Value_refine _ | Ref.Value_split _ -> ())
    pool

let test_apply_all_candidates_safe () =
  (* every generated candidate applies without raising and never
     shrinks the synopsis *)
  let sk = coarse () in
  let prng = Prng.create 23 in
  let pool = Ref.gen_candidates ~count:16 sk prng in
  List.iter
    (fun op ->
      let sk' = Ref.apply sk op in
      Alcotest.(check bool)
        (Ref.describe sk op ^ " keeps estimates finite")
        true
        (Float.is_finite (Est.estimate sk' (parse_t "for t0 in //paper, t1 in t0/keyword"))))
    pool

let test_describe_and_touched () =
  let sk = coarse () in
  let a = node sk "author" and b = node sk "book" in
  let op = Ref.F_stabilize { src = a; dst = b } in
  Alcotest.(check bool) "describe mentions op" true
    (String.length (Ref.describe sk op) > 0);
  let labels = Ref.touched_labels sk op in
  Alcotest.(check bool) "touches author" true (List.mem "author" labels);
  Alcotest.(check bool) "touches book" true (List.mem "book" labels)

(* property: applying any candidate preserves estimator sanity on a
   randomly generated document *)
let prop_apply_preserves_partition =
  QCheck2.Test.make ~name:"apply keeps extents a partition" ~count:20
    QCheck2.Gen.(0 -- 1000)
    (fun seed ->
      let doc = Xtwig_datagen.Imdb.generate ~seed ~scale:0.004 () in
      let sk = Sketch.default_of_doc doc in
      let prng = Prng.create seed in
      let pool = Xtwig_sketch.Refinement.gen_candidates ~count:8 sk prng in
      List.for_all
        (fun op ->
          let sk' = Xtwig_sketch.Refinement.apply sk op in
          let syn = Sketch.synopsis sk' in
          let total = ref 0 in
          for n = 0 to G.node_count syn - 1 do
            total := !total + G.extent_size syn n
          done;
          !total = Xtwig_xml.Doc.size doc)
        pool)

let () =
  Alcotest.run "refinement"
    [
      ( "structural",
        [
          Alcotest.test_case "b-stabilize" `Quick test_b_stabilize;
          Alcotest.test_case "f-stabilize improves estimate" `Quick
            test_f_stabilize_improves_estimate;
          Alcotest.test_case "no-op on stable edge" `Quick test_structural_noop;
          Alcotest.test_case "histogram carryover" `Quick test_histogram_carryover;
        ] );
      ( "edge-and-value",
        [
          Alcotest.test_case "edge-refine grows" `Quick test_edge_refine_grows;
          Alcotest.test_case "edge-refine cap" `Quick test_edge_refine_cap;
          Alcotest.test_case "edge-expand merges scopes" `Quick test_edge_expand_merges;
          Alcotest.test_case "edge-expand fixes Figure 4" `Quick
            test_edge_expand_fixes_figure4;
          Alcotest.test_case "value-refine" `Quick test_value_refine;
          Alcotest.test_case "value-split extension" `Quick test_value_split_extension;
          Alcotest.test_case "value-split numeric no-op" `Quick
            test_value_split_no_categorical_noop;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "bounded pool" `Quick test_gen_candidates_bounded;
          Alcotest.test_case "structural validity" `Quick
            test_gen_candidates_structural_validity;
          Alcotest.test_case "apply is safe" `Quick test_apply_all_candidates_safe;
          Alcotest.test_case "describe / touched labels" `Quick test_describe_and_touched;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_apply_preserves_partition ] );
    ]
