(* Incremental construction tests: [Sketch.build ~prev] (used by every
   refinement op) must produce a sketch indistinguishable from a
   from-scratch build of the same configuration — same size, same
   estimates — for all six refinement-op kinds, while actually reusing
   previous histograms (checked through the counters). Also covers the
   embedding cache: cached estimation is bit-identical to uncached. *)

module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Refinement = Xtwig_sketch.Refinement
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Counters = Xtwig_util.Counters

let doc = lazy (Xtwig_datagen.Imdb.generate ~scale:0.03 ())
let base = lazy (Sketch.coarsest ~ebudget:2 ~vbudget:4 (G.label_split (Lazy.force doc)))

let queries =
  lazy
    (Wgen.generate
       { Wgen.paper_p with Wgen.n_queries = 25 }
       (Prng.create 11) (Lazy.force doc))

(* One op of each kind that actually changes the base sketch. *)
let op_of_kind base kind =
  let syn = Sketch.synopsis base in
  let cfg = Sketch.config base in
  let nodes = List.init (G.node_count syn) Fun.id in
  let candidates =
    match kind with
    | `B_stabilize ->
        List.filter_map
          (fun (e : G.edge) ->
            if e.b_stable then None
            else Some (Refinement.B_stabilize { src = e.src; dst = e.dst }))
          (G.edges syn)
    | `F_stabilize ->
        List.filter_map
          (fun (e : G.edge) ->
            if e.f_stable then None
            else Some (Refinement.F_stabilize { src = e.src; dst = e.dst }))
          (G.edges syn)
    | `Edge_refine ->
        List.filter_map
          (fun n ->
            if cfg.Sketch.especs.(n) = [] then None
            else Some (Refinement.Edge_refine { node = n; hist = 0; extra_buckets = 4 }))
          nodes
    | `Edge_expand ->
        List.concat_map
          (fun n ->
            List.map
              (fun (s, d) ->
                let kind = if s = n then Sketch.Forward else Sketch.Backward in
                Refinement.Edge_expand
                  { node = n; dim = { Sketch.src = s; dst = d; kind }; into = None })
              (Sketch.dim_edges_of_node base n))
          nodes
    | `Value_refine ->
        List.filter_map
          (fun n ->
            if Sketch.vhist base n = None then None
            else Some (Refinement.Value_refine { node = n; extra_buckets = 4 }))
          nodes
    | `Value_split ->
        List.map (fun n -> Refinement.Value_split { node = n; ways = 2 }) nodes
  in
  let changes op =
    let applied = Refinement.apply base op in
    if applied != base then Some (op, applied) else None
  in
  match List.find_map changes candidates with
  | Some r -> r
  | None -> Alcotest.failf "no effective op of the requested kind"

let kinds =
  [
    ("B_stabilize", `B_stabilize);
    ("F_stabilize", `F_stabilize);
    ("Edge_refine", `Edge_refine);
    ("Edge_expand", `Edge_expand);
    ("Value_refine", `Value_refine);
    ("Value_split", `Value_split);
  ]

(* 1. For every op kind: incremental result == from-scratch rebuild of
   the same (synopsis, config) — identical size and estimates. *)
let test_incremental_equals_scratch () =
  let base = Lazy.force base in
  let queries = Lazy.force queries in
  List.iter
    (fun (name, kind) ->
      let _op, applied = op_of_kind base kind in
      let scratch =
        Sketch.build (Sketch.synopsis applied) (Sketch.config applied)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: size" name)
        (Sketch.size_bytes scratch) (Sketch.size_bytes applied);
      List.iteri
        (fun i q ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s: estimate q%d" name i)
            (Est.estimate scratch q) (Est.estimate applied q))
        queries)
    kinds

(* 2. The incremental path really reuses: a non-structural refinement
   reuses histograms of the same synopsis, and a structural split
   reuses histograms across the split. *)
let test_counters_show_reuse () =
  let base = Lazy.force base in
  Counters.reset_all ();
  let _op, applied = op_of_kind base `Edge_refine in
  assert (applied != base);
  Alcotest.(check bool)
    "Edge_refine reuses same-synopsis histograms" true
    (Counters.get "sketch.ehists_reused" > 0);
  Counters.reset_all ();
  let _op, applied = op_of_kind base `F_stabilize in
  assert (applied != base);
  Alcotest.(check bool)
    "F_stabilize reuses histograms across the split" true
    (Counters.get "sketch.ehists_reused" > 0)

(* 3. Cached estimation is identical to uncached and actually hits. *)
let test_embed_cache_identical () =
  let base = Lazy.force base in
  let queries = Lazy.force queries in
  let cache = Embed.create_cache (Sketch.synopsis base) in
  Counters.reset_all ();
  List.iter
    (fun q ->
      let plain = Est.estimate base q in
      let c1 = Est.estimate ~cache base q in
      let c2 = Est.estimate ~cache base q in
      Alcotest.(check (float 0.0)) "cold cache estimate" plain c1;
      Alcotest.(check (float 0.0)) "warm cache estimate" plain c2)
    queries;
  Alcotest.(check bool)
    "cache hits recorded" true
    (Counters.get "embed.cache_hits" > 0);
  (* a frozen cache serves hits but swallows new insertions *)
  Embed.freeze cache;
  let fresh = Est.estimate ~cache base (List.hd queries) in
  Alcotest.(check (float 0.0))
    "frozen cache still correct" (Est.estimate base (List.hd queries)) fresh

let () =
  Alcotest.run "incremental"
    [
      ( "incremental-build",
        [
          Alcotest.test_case "incremental == scratch (all six op kinds)" `Slow
            test_incremental_equals_scratch;
          Alcotest.test_case "counters show reuse" `Quick
            test_counters_show_reuse;
          Alcotest.test_case "embed cache identical + hits" `Quick
            test_embed_cache_identical;
        ] );
    ]
