(* Differential tests for the cost-based branch orderer: on the
   IMDB/XMark workloads (value-predicate twigs included), evaluating
   under any plan's order must return counts bit-equal to the default
   [Eval_twig.selectivity] order — the order-invariance oracle — and a
   failed planner (injected [opt.plan] fault) must degrade to the
   default order, never to a wrong answer or an exception. *)

module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Eval_twig = Xtwig_eval.Eval_twig
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Fault = Xtwig_fault.Fault
module Counters = Xtwig_util.Counters
module Opt = Xtwig_opt.Opt
module Protocol = Xtwig_serve.Protocol

let datasets =
  lazy
    [
      ("imdb", Xtwig_datagen.Imdb.generate ~scale:0.03 ());
      ("xmark", Xtwig_datagen.Xmark.generate ~scale:0.03 ());
    ]

let workload doc =
  (* P plus P+V: branching structure for the orderer, value predicates
     for the propagation pass *)
  Wgen.generate { Wgen.paper_p with Wgen.n_queries = 15 } (Prng.create 5) doc
  @ Wgen.generate { Wgen.paper_pv with Wgen.n_queries = 15 } (Prng.create 6) doc

(* every workload query, on every dataset: optimized-order evaluation
   (both through the order-aware evaluator and through a reordered
   twig) is bit-equal to the default order *)
let test_order_invariance () =
  List.iter
    (fun (name, doc) ->
      let sk = Sketch.default_of_doc doc in
      let with_vpred = ref 0 in
      List.iteri
        (fun i q ->
          let plan = Xtwig.optimize sk q in
          if Xtwig_path.Path_types.twig_has_value_pred q then incr with_vpred;
          let expect = Eval_twig.selectivity doc q in
          let got = Xtwig.selectivity_ordered doc plan q in
          Alcotest.(check int)
            (Printf.sprintf "%s q%d ordered = default" name i)
            expect got;
          let via_apply = Eval_twig.selectivity doc (Opt.apply plan q) in
          Alcotest.(check int)
            (Printf.sprintf "%s q%d reordered twig = default" name i)
            expect via_apply)
        (workload doc);
      Alcotest.(check bool)
        (name ^ " workload exercises value predicates")
        true (!with_vpred > 0))
    (Lazy.force datasets)

(* a plan for one twig applied to a different twig must not change
   answers either (the evaluator rejects mismatched permutations) *)
let test_mismatched_plan_safe () =
  let _, doc = List.hd (Lazy.force datasets) in
  let sk = Sketch.default_of_doc doc in
  let qs = workload doc in
  let plans = List.map (Xtwig.optimize sk) qs in
  List.iteri
    (fun i q ->
      List.iter
        (fun plan ->
          Alcotest.(check int)
            (Printf.sprintf "q%d under foreign plan" i)
            (Eval_twig.selectivity doc q)
            (Xtwig.selectivity_ordered doc plan q))
        plans)
    (List.filteri (fun i _ -> i < 3) qs)

(* ------------------------------------------------------------------ *)
(* fault degradation: opt.plan fires -> identity plan, same answers    *)

let protecting f () = Fun.protect ~finally:Fault.disable f

let spec s =
  match Fault.parse_spec s with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "bad spec %s: %s" s e

let test_fault_degrades () =
  let _, doc = List.hd (Lazy.force datasets) in
  let sk = Sketch.default_of_doc doc in
  let q = List.hd (workload doc) in
  let clean = Xtwig.optimize sk q in
  Alcotest.(check bool) "clean plan is not a fallback" false
    clean.Opt.fallback;
  Fault.install (spec "seed=1;opt.plan:always");
  let before = Counters.value (Counters.counter "opt.fallbacks") in
  let degraded = Xtwig.optimize sk q in
  Fault.disable ();
  Alcotest.(check bool) "degraded plan is flagged" true degraded.Opt.fallback;
  Alcotest.(check bool) "degraded plan keeps default order" false
    degraded.Opt.changed;
  Alcotest.(check int) "fallback counted"
    (before + 1)
    (Counters.value (Counters.counter "opt.fallbacks"));
  (* and the answer is the default-order answer, not a wrong one *)
  Alcotest.(check int) "degraded evaluation = default"
    (Eval_twig.selectivity doc q)
    (Xtwig.selectivity_ordered doc degraded q)

(* a raising estimator is the same story: total planning, default
   order out *)
let test_raising_estimator_degrades () =
  let q =
    match Xtwig.twig_of_string "for t0 in //a, t1 in t0/b, t2 in t0/c" with
    | Ok q -> q
    | Error _ -> Alcotest.fail "twig parse"
  in
  let plan = Opt.plan ~estimate:(fun _ -> failwith "boom") q in
  Alcotest.(check bool) "raising estimator -> fallback" true plan.Opt.fallback;
  Alcotest.(check bool) "raising estimator -> default order" false
    plan.Opt.changed

(* ------------------------------------------------------------------ *)
(* wire protocol: the optimize verb round-trips and the reply body is
   byte-equal to a local rendering of the same plan                    *)

let test_protocol_roundtrip () =
  let req =
    Protocol.Optimize
      { tenant = "movies"; query = "for t0 in //movie"; trace = Some 7 }
  in
  (match Protocol.decode_request (Protocol.encode_request ~id:12 req) with
  | Ok (12, Protocol.Optimize { tenant = "movies"; query; trace = Some 7 })
    when query = "for t0 in //movie" ->
      ()
  | Ok _ -> Alcotest.fail "optimize round-trip mismatch"
  | Error e -> Alcotest.failf "optimize decode failed: %s" e);
  let _, doc = List.hd (Lazy.force datasets) in
  let sk = Sketch.default_of_doc doc in
  let q = List.hd (workload doc) in
  let plan = Xtwig.optimize sk q in
  Alcotest.(check string)
    "encode_plan = to_lines"
    (String.concat "\n" (Opt.to_lines plan))
    (Protocol.encode_plan plan);
  (* plan fields are reachable with the generic field lookup *)
  let body = Protocol.encode_plan plan in
  Alcotest.(check bool) "cost field present" true
    (Protocol.provenance_field body "cost" <> None);
  Alcotest.(check (option string))
    "fallback field" (Some "false")
    (Protocol.provenance_field body "fallback")

let () =
  Alcotest.run "opt"
    [
      ( "order-invariance",
        [
          Alcotest.test_case "workload counts bit-equal" `Slow
            test_order_invariance;
          Alcotest.test_case "foreign plans are safe" `Quick
            test_mismatched_plan_safe;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "opt.plan fault -> default order" `Quick
            (protecting test_fault_degrades);
          Alcotest.test_case "raising estimator -> default order" `Quick
            test_raising_estimator_degrades;
        ] );
      ( "protocol",
        [ Alcotest.test_case "optimize verb round-trip" `Quick
            test_protocol_roundtrip ] );
    ]
