open Xtwig_path.Path_types
module Parser = Xtwig_path.Path_parser
module Printer = Xtwig_path.Path_printer
module Xerror = Xtwig_util.Xerror

let path_of_string s =
  match Parser.parse_path_res s with
  | Ok p -> p
  | Error e -> failwith (Xerror.to_string e)

let twig_of_string s =
  match Parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xerror.to_string e)

let path = Alcotest.testable Printer.pp_path (fun a b -> a = b)
let twig_t = Alcotest.testable Printer.pp_twig equal_twig

(* ---------------- parsing paths ---------------- *)

let test_parse_simple () =
  Alcotest.check path "a/b/c"
    [ step "a"; step "b"; step "c" ]
    (path_of_string "/a/b/c")

let test_parse_descendant () =
  Alcotest.check path "//a/b"
    [ step ~axis:Descendant "a"; step "b" ]
    (path_of_string "//a/b");
  Alcotest.check path "interior //"
    [ step "a"; step ~axis:Descendant "b" ]
    (path_of_string "/a//b")

let test_parse_relative_default_child () =
  Alcotest.check path "bare label" [ step "a" ] (path_of_string "a")

let test_parse_value_preds () =
  Alcotest.check path "range"
    [ step ~vpred:(Range (3.0, 7.0)) "a" ]
    (path_of_string "/a[. in 3 .. 7]");
  Alcotest.check path "cmp int"
    [ step ~vpred:(Cmp (Gt, Xtwig_xml.Value.Int 2000)) "y" ]
    (path_of_string "/y[. > 2000]");
  Alcotest.check path "cmp string"
    [ step ~vpred:(Cmp (Eq, Xtwig_xml.Value.Text "ok")) "s" ]
    (path_of_string "/s[. = \"ok\"]")

let test_parse_branches () =
  let p = path_of_string "/a[b/c][d]/e" in
  match p with
  | [ s1; s2 ] ->
      Alcotest.(check string) "first label" "a" s1.label;
      Alcotest.(check int) "two branches" 2 (List.length s1.branches);
      Alcotest.(check string) "second label" "e" s2.label;
      Alcotest.check path "first branch" [ step "b"; step "c" ] (List.nth s1.branches 0)
  | _ -> Alcotest.fail "expected two steps"

let test_parse_nested_branch_with_pred () =
  let p = path_of_string "/paper[year[. > 2000]]" in
  match p with
  | [ s ] -> (
      match s.branches with
      | [ [ b ] ] ->
          Alcotest.(check string) "branch label" "year" b.label;
          Alcotest.(check bool) "has vpred" true (b.vpred <> None)
      | _ -> Alcotest.fail "expected one single-step branch")
  | _ -> Alcotest.fail "expected one step"

let test_parse_errors () =
  let fails s =
    match Parser.parse_path_res s with
    | Error (Xerror.Parse (Xerror.Path, _)) -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "trailing" true (fails "/a/");
  Alcotest.(check bool) "bad range" true (fails "/a[. in 7 .. 3]");
  Alcotest.(check bool) "unclosed bracket" true (fails "/a[b");
  Alcotest.(check bool) "duplicate vpred" true (fails "/a[. > 1][. < 5]")

(* ---------------- twigs ---------------- *)

let test_twig_parse () =
  let t = twig_of_string "for t0 in //m, t1 in t0/a, t2 in t0/b, t3 in t1/c" in
  Alcotest.(check int) "size" 4 (twig_size t);
  Alcotest.(check int) "root fanout" 2 (List.length t.subs);
  Alcotest.(check (list int)) "fanouts" [ 2; 1 ] (twig_fanouts t)

let test_twig_parse_no_for () =
  let t = twig_of_string "x in //m, y in x/a" in
  Alcotest.(check int) "size" 2 (twig_size t)

let test_twig_parse_return_ignored () =
  let t = twig_of_string "for t0 in //m, t1 in t0/a return t1" in
  Alcotest.(check int) "size" 2 (twig_size t)

let test_twig_errors () =
  let fails s =
    match Parser.parse_twig_res s with
    | Error (Xerror.Parse (Xerror.Twig, _)) -> true
    | _ -> false
  in
  Alcotest.(check bool) "unbound var" true (fails "for t0 in //m, t1 in tX/a");
  Alcotest.(check bool) "rebound var" true (fails "for t0 in //m, t0 in t0/a");
  Alcotest.(check bool) "second absolute" true (fails "for t0 in //m, t1 in //n");
  Alcotest.(check bool) "relative first" true (fails "for t0 in t1/a")

let test_twig_labels () =
  let t = twig_of_string "for t0 in //m[x/y], t1 in t0/a, t2 in t0/m" in
  Alcotest.(check (list string)) "labels, deduped, in order" [ "m"; "x"; "y"; "a" ]
    (twig_labels t)

let test_twig_predicates_flags () =
  let t1 = twig_of_string "for t0 in //m, t1 in t0/a" in
  Alcotest.(check bool) "no preds" false (twig_has_value_pred t1 || twig_has_branches t1);
  let t2 = twig_of_string "for t0 in //m[a], t1 in t0/b" in
  Alcotest.(check bool) "branches" true (twig_has_branches t2);
  let t3 = twig_of_string "for t0 in //m, t1 in t0/y[. > 3]" in
  Alcotest.(check bool) "value pred" true (twig_has_value_pred t3)

let test_twig_fold () =
  let t = twig_of_string "for t0 in //m, t1 in t0/a, t2 in t1/b" in
  let n = twig_fold t ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold visits all" 3 n

(* ---------------- round trips ---------------- *)

let test_roundtrip_printer_parser () =
  List.iter
    (fun s ->
      let p = path_of_string s in
      let p2 = path_of_string (Printer.path_to_string p) in
      Alcotest.check path ("roundtrip " ^ s) p p2)
    [
      "/a/b/c";
      "//a/b";
      "/a//b";
      "/a[. in 1 .. 2]/b";
      "/a[b/c][d]/e";
      "/p[y[. > 2000]]/k";
      "//site/regions//item[mailbox/mail]/name";
    ]

let test_twig_roundtrip () =
  List.iter
    (fun s ->
      let t = twig_of_string s in
      let t2 = twig_of_string (Printer.twig_to_string t) in
      Alcotest.check twig_t ("roundtrip " ^ s) t t2)
    [
      "for t0 in //movie, t1 in t0/actor, t2 in t0/producer";
      "for t0 in /a/b[c], t1 in t0/d[. in 0 .. 1], t2 in t1/e, t3 in t0/f";
      "for t0 in //a, t1 in t0//b/c";
    ]

(* qcheck: generated twigs round-trip. Generators live in the shared
   toolkit (test/gen). *)
let gen_path = Xtwig_testgen.Testgen.path
let gen_twig depth = Xtwig_testgen.Testgen.twig ~depth ()

let prop_twig_roundtrip =
  QCheck2.Test.make ~name:"twig print/parse roundtrip" ~count:200 (gen_twig 2)
    (fun t ->
      let t2 = twig_of_string (Printer.twig_to_string t) in
      equal_twig t t2)

let prop_path_roundtrip =
  QCheck2.Test.make ~name:"path print/parse roundtrip" ~count:200 gen_path
    (fun p ->
      let p2 = path_of_string (Printer.path_to_string p) in
      p = p2)

let prop_size_positive =
  QCheck2.Test.make ~name:"twig_size >= 1 and = |fold|" ~count:100 (gen_twig 3)
    (fun t ->
      twig_size t = twig_fold t ~init:0 ~f:(fun a _ -> a + 1) && twig_size t >= 1)

let () =
  Alcotest.run "pathlang"
    [
      ( "parse-paths",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "descendant" `Quick test_parse_descendant;
          Alcotest.test_case "relative default child" `Quick
            test_parse_relative_default_child;
          Alcotest.test_case "value predicates" `Quick test_parse_value_preds;
          Alcotest.test_case "branches" `Quick test_parse_branches;
          Alcotest.test_case "nested branch with pred" `Quick
            test_parse_nested_branch_with_pred;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "twigs",
        [
          Alcotest.test_case "parse" `Quick test_twig_parse;
          Alcotest.test_case "parse without for" `Quick test_twig_parse_no_for;
          Alcotest.test_case "return ignored" `Quick test_twig_parse_return_ignored;
          Alcotest.test_case "errors" `Quick test_twig_errors;
          Alcotest.test_case "labels" `Quick test_twig_labels;
          Alcotest.test_case "predicate flags" `Quick test_twig_predicates_flags;
          Alcotest.test_case "fold" `Quick test_twig_fold;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "paths" `Quick test_roundtrip_printer_parser;
          Alcotest.test_case "twigs" `Quick test_twig_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_twig_roundtrip; prop_path_roundtrip; prop_size_positive ] );
    ]
