module Doc = Xtwig_xml.Doc
module Eval_path = Xtwig_eval.Eval_path
module Eval_twig = Xtwig_eval.Eval_twig
module Fx = Xtwig_fixtures.Fixtures
open Xtwig_path.Path_types

let parse_p s =
  match Xtwig_path.Path_parser.parse_path_res s with
  | Ok p -> p
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let bib = Fx.bibliography ()

let count_path doc s = Eval_path.count doc ~from:None (parse_p s)

(* ---------------- value predicates ---------------- *)

let test_value_pred_holds () =
  let open Xtwig_xml.Value in
  Alcotest.(check bool) "range in" true (Eval_path.value_pred_holds (Range (1.0, 3.0)) (Int 2));
  Alcotest.(check bool) "range boundary" true
    (Eval_path.value_pred_holds (Range (1.0, 3.0)) (Int 3));
  Alcotest.(check bool) "range out" false
    (Eval_path.value_pred_holds (Range (1.0, 3.0)) (Int 4));
  Alcotest.(check bool) "gt" true (Eval_path.value_pred_holds (Cmp (Gt, Int 2000)) (Int 2001));
  Alcotest.(check bool) "gt fails" false
    (Eval_path.value_pred_holds (Cmp (Gt, Int 2000)) (Int 2000));
  Alcotest.(check bool) "string eq" true
    (Eval_path.value_pred_holds (Cmp (Eq, Text "x")) (Text "x"));
  Alcotest.(check bool) "null never matches" false
    (Eval_path.value_pred_holds (Cmp (Ne, Int 0)) Null);
  Alcotest.(check bool) "numeric text coerces" true
    (Eval_path.value_pred_holds (Cmp (Ge, Int 5)) (Text "7"))

(* ---------------- path evaluation ---------------- *)

let test_absolute_paths () =
  Alcotest.(check int) "authors" 3 (count_path bib "/bibliography/author");
  Alcotest.(check int) "papers" 4 (count_path bib "/bibliography/author/paper");
  Alcotest.(check int) "keywords" 6 (count_path bib "/bibliography/author/paper/keyword");
  Alcotest.(check int) "books" 1 (count_path bib "/bibliography/author/book");
  Alcotest.(check int) "wrong root" 0 (count_path bib "/nope/author")

let test_descendant_paths () =
  Alcotest.(check int) "//paper" 4 (count_path bib "//paper");
  Alcotest.(check int) "//keyword" 6 (count_path bib "//keyword");
  Alcotest.(check int) "//title (papers+book)" 5 (count_path bib "//title");
  Alcotest.(check int) "//author/paper" 4 (count_path bib "//author/paper");
  Alcotest.(check int) "interior //" 5 (count_path bib "/bibliography//title")

let test_value_predicates_on_paths () =
  Alcotest.(check int) "recent years" 2 (count_path bib "//year[. > 2000]");
  Alcotest.(check int) "range" 2 (count_path bib "//year[. in 1998 .. 1999]")

let test_branch_predicates () =
  Alcotest.(check int) "authors with book" 1 (count_path bib "//author[book]");
  Alcotest.(check int) "authors with paper" 3 (count_path bib "//author[paper]");
  Alcotest.(check int) "papers with recent year" 2
    (count_path bib "//paper[year[. > 2000]]");
  Alcotest.(check int) "nested branch" 1
    (count_path bib "//author[book/title]");
  Alcotest.(check int) "impossible branch" 0 (count_path bib "//author[movie]")

let test_result_distinct_in_doc_order () =
  let r = Eval_path.eval bib ~from:None (parse_p "//keyword") in
  let sorted = List.sort_uniq compare r in
  Alcotest.(check int) "distinct" (List.length r) (List.length sorted);
  Alcotest.(check (list int)) "document order" sorted r

let test_exists () =
  let a = List.hd (Eval_path.eval bib ~from:None (parse_p "//author")) in
  Alcotest.(check bool) "has name" true (Eval_path.exists bib ~from:a (parse_p "name"));
  Alcotest.(check bool) "no movie" false (Eval_path.exists bib ~from:a (parse_p "movie"))

(* ---------------- twig evaluation ---------------- *)

let test_example_2_1 () =
  Alcotest.(check int) "paper Example 2.1: 3 binding tuples" 3
    (Eval_twig.selectivity bib (Fx.example_2_1_query ()))

let test_figure_4 () =
  let q = Fx.figure_4_query () in
  Alcotest.(check int) "doc (a): 2000" 2000
    (Eval_twig.selectivity (Fx.figure_4_doc_a ()) q);
  Alcotest.(check int) "doc (b): 10100" 10100
    (Eval_twig.selectivity (Fx.figure_4_doc_b ()) q)

let test_single_node_twig () =
  let q = parse_t "for t0 in //paper" in
  Alcotest.(check int) "path-equivalent" 4 (Eval_twig.selectivity bib q)

let test_chain_twig_equals_path () =
  (* child-axis chains: tuple count equals endpoint count in a tree *)
  let q = parse_t "for t0 in //author, t1 in t0/paper, t2 in t1/keyword" in
  Alcotest.(check int) "chain = path count" 6 (Eval_twig.selectivity bib q)

let test_star_twig_product () =
  (* per author: papers x names; a1: 2x1, a2: 1x1, a3: 1x1 -> 4 *)
  let q = parse_t "for t0 in //author, t1 in t0/paper, t2 in t0/name" in
  Alcotest.(check int) "star product" 4 (Eval_twig.selectivity bib q)

let test_self_join_twig () =
  (* keyword pairs per paper: p4: 2x2, p5: 2x2, p8: 1, p9: 1 -> 10 *)
  let q = parse_t "for t0 in //paper, t1 in t0/keyword, t2 in t0/keyword" in
  Alcotest.(check int) "keyword pairs" 10 (Eval_twig.selectivity bib q)

let test_zero_selectivity () =
  let q = parse_t "for t0 in //author, t1 in t0/movie" in
  Alcotest.(check int) "zero" 0 (Eval_twig.selectivity bib q)

let test_bindings_match_selectivity () =
  let q = Fx.example_2_1_query () in
  let bs = Eval_twig.bindings bib q in
  Alcotest.(check int) "3 tuples" 3 (List.length bs);
  List.iter
    (fun tuple ->
      Alcotest.(check int) "tuple width = twig size" (twig_size q) (Array.length tuple);
      (* every bound element carries the right tag *)
      Alcotest.(check string) "t0 is author" "author" (Doc.tag_name bib tuple.(0));
      Alcotest.(check string) "t4 is keyword" "keyword"
        (Doc.tag_name bib tuple.(Array.length tuple - 1)))
    bs

let test_bindings_limit () =
  let q = parse_t "for t0 in //paper, t1 in t0/keyword" in
  Alcotest.(check int) "limit respected" 2 (List.length (Eval_twig.bindings ~limit:2 bib q))

let test_bindings_count_figure4 () =
  let q = Fx.figure_4_query () in
  let doc = Fx.figure_4_doc_a () in
  let bs = Eval_twig.bindings ~limit:5000 doc q in
  Alcotest.(check int) "materialized = counted" 2000 (List.length bs);
  let uniq = List.sort_uniq compare bs in
  Alcotest.(check int) "all distinct" 2000 (List.length uniq)

let test_shared_subtwig_physical () =
  (* physically shared sub-twig values must not confuse the evaluator *)
  let sub = { path = [ step "keyword" ]; subs = [] } in
  let q = { path = [ step ~axis:Descendant "paper" ]; subs = [ sub; sub ] } in
  Alcotest.(check int) "shared subs" 10 (Eval_twig.selectivity bib q)

let test_node_matches () =
  let q = Fx.example_2_1_query () in
  Alcotest.(check int) "root matches = authors" 3 (Eval_twig.node_matches bib q)

(* property: for random simple chains, twig selectivity equals path count *)
let prop_chain_equals_path =
  let doc = Fx.bibliography () in
  let gen =
    QCheck2.Gen.(
      oneofl
        [
          "/bibliography/author";
          "/bibliography/author/paper";
          "/bibliography/author/paper/keyword";
          "//paper/title";
          "//book/title";
          "//author/name";
        ])
  in
  QCheck2.Test.make ~name:"chain twig = path count" ~count:50 gen (fun s ->
      let p = parse_p s in
      let t = { path = p; subs = [] } in
      Eval_twig.selectivity doc t = Eval_path.count doc ~from:None p)

(* the order-invariance of reordered evaluation (lib/opt) rests on
   sat_add/sat_mul being commutative, associative min-saturating ops;
   pin the edges at and just below the saturation ceiling *)
let test_saturation_edges () =
  let s = Eval_twig.saturation in
  Alcotest.(check int) "ceiling is 2^55" (1 lsl 55) s;
  Alcotest.(check int) "add below ceiling" (s - 1) (Eval_twig.sat_add (s - 2) 1);
  Alcotest.(check int) "add reaches ceiling" s (Eval_twig.sat_add (s - 1) 1);
  Alcotest.(check int) "add clamps past ceiling" s (Eval_twig.sat_add s s);
  Alcotest.(check int) "add identity" 7 (Eval_twig.sat_add 7 0);
  Alcotest.(check int) "mul below ceiling" (s - 2)
    (Eval_twig.sat_mul ((s / 2) - 1) 2);
  Alcotest.(check int) "mul reaches ceiling" s (Eval_twig.sat_mul (s / 2) 2);
  Alcotest.(check int) "mul clamps past ceiling" s
    (Eval_twig.sat_mul ((s / 2) + 1) 2);
  Alcotest.(check int) "mul clamps saturated operands" s (Eval_twig.sat_mul s s);
  Alcotest.(check int) "mul annihilates on zero" 0 (Eval_twig.sat_mul s 0);
  Alcotest.(check int) "mul annihilates on left zero" 0 (Eval_twig.sat_mul 0 s)

let test_saturation_order_free =
  QCheck2.Test.make ~name:"sat ops commute and associate near the ceiling"
    ~count:500
    QCheck2.Gen.(
      let edge =
        oneof
          [
            0 -- 1000;
            map (fun d -> (1 lsl 55) - d) (0 -- 1000);
            map (fun d -> (1 lsl 54) + d) (0 -- 1000);
          ]
      in
      triple edge edge edge)
    (fun (a, b, c) ->
      Eval_twig.sat_add a b = Eval_twig.sat_add b a
      && Eval_twig.sat_mul a b = Eval_twig.sat_mul b a
      && Eval_twig.sat_add (Eval_twig.sat_add a b) c
         = Eval_twig.sat_add a (Eval_twig.sat_add b c)
      && Eval_twig.sat_mul (Eval_twig.sat_mul a b) c
         = Eval_twig.sat_mul a (Eval_twig.sat_mul b c))

let () =
  Alcotest.run "evaluator"
    [
      ( "value-preds",
        [ Alcotest.test_case "semantics" `Quick test_value_pred_holds ] );
      ( "paths",
        [
          Alcotest.test_case "absolute" `Quick test_absolute_paths;
          Alcotest.test_case "descendant" `Quick test_descendant_paths;
          Alcotest.test_case "value predicates" `Quick test_value_predicates_on_paths;
          Alcotest.test_case "branch predicates" `Quick test_branch_predicates;
          Alcotest.test_case "distinct, ordered results" `Quick
            test_result_distinct_in_doc_order;
          Alcotest.test_case "exists" `Quick test_exists;
        ] );
      ( "twigs",
        [
          Alcotest.test_case "paper Example 2.1" `Quick test_example_2_1;
          Alcotest.test_case "paper Figure 4" `Quick test_figure_4;
          Alcotest.test_case "single node" `Quick test_single_node_twig;
          Alcotest.test_case "chain equals path" `Quick test_chain_twig_equals_path;
          Alcotest.test_case "star product" `Quick test_star_twig_product;
          Alcotest.test_case "self join" `Quick test_self_join_twig;
          Alcotest.test_case "zero selectivity" `Quick test_zero_selectivity;
          Alcotest.test_case "node matches" `Quick test_node_matches;
        ] );
      ( "bindings",
        [
          Alcotest.test_case "match selectivity" `Quick test_bindings_match_selectivity;
          Alcotest.test_case "limit" `Quick test_bindings_limit;
          Alcotest.test_case "figure 4 materialization" `Quick
            test_bindings_count_figure4;
          Alcotest.test_case "shared sub-twigs" `Quick test_shared_subtwig_physical;
        ] );
      ( "saturation",
        Alcotest.test_case "edges at 2^55" `Quick test_saturation_edges
        :: List.map QCheck_alcotest.to_alcotest [ test_saturation_order_free ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_chain_equals_path ] );
    ]
