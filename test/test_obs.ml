(* The observability layer's claims: metric cells are shared by
   (name, labels) and atomically updated; snapshot/diff isolates one
   run's activity; histogram percentiles interpolate; the Prometheus /
   JSON expositions are well-formed; trace spans pair B with E per
   domain (also under Pool fan-out, exceptions, and buffer
   saturation); and the Accuracy stream reproduces the sanity-bounded
   relative error of Error_metric. Metric names are unique per test —
   the registry is process-global. *)

module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module Accuracy = Xtwig_obs.Accuracy
module Log = Xtwig_obs.Log
module Slo = Xtwig_obs.Slo
module Pool = Xtwig_util.Pool

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count_sub needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub hay i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_basics () =
  let c = Metrics.counter "t.counter.basics" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "incremented" 42 (Metrics.counter_value c);
  (* same (name, labels) -> same cell *)
  let c' = Metrics.counter "t.counter.basics" in
  Metrics.incr c';
  Alcotest.(check int) "shared cell" 43 (Metrics.counter_value c)

let test_labels_distinguish_cells () =
  let a = Metrics.counter ~labels:[ ("k", "a") ] "t.counter.labeled" in
  let b = Metrics.counter ~labels:[ ("k", "b") ] "t.counter.labeled" in
  Metrics.incr ~by:3 a;
  Metrics.incr ~by:5 b;
  Alcotest.(check int) "label a" 3 (Metrics.counter_value a);
  Alcotest.(check int) "label b" 5 (Metrics.counter_value b);
  (* label order is normalized: same set -> same cell *)
  let ab = Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "t.counter.two" in
  let ba = Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "t.counter.two" in
  Metrics.incr ab;
  Alcotest.(check int) "order-insensitive" 1 (Metrics.counter_value ba)

let test_kind_mismatch_rejected () =
  let _ = Metrics.counter "t.kind.clash" in
  match Metrics.gauge "t.kind.clash" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_gauge () =
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Metrics.gauge_value g);
  Metrics.set g (-1.0);
  Alcotest.(check (float 0.0)) "overwrite" (-1.0) (Metrics.gauge_value g)

let test_histogram_and_percentiles () =
  let h = Metrics.histogram ~bounds:[| 10.0; 20.0 |] "t.hist.pct" in
  for _ = 1 to 10 do
    Metrics.observe h 5.0
  done;
  Metrics.observe h 15.0;
  Metrics.observe h 100.0 (* overflow bucket *);
  let v = Metrics.histogram_view h in
  Alcotest.(check int) "count" 12 v.Metrics.count;
  Alcotest.(check int) "bucket 0" 10 v.Metrics.counts.(0);
  Alcotest.(check int) "bucket 1" 1 v.Metrics.counts.(1);
  Alcotest.(check int) "overflow" 1 v.Metrics.counts.(2);
  Alcotest.(check (float 1e-9)) "sum" 165.0 v.Metrics.sum;
  (* rank p50 of 12 obs = 6 of the 10 in [0,10): 0 + 10 * 6/10 *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 6.0
    (Metrics.percentile_of v 50.0);
  (* overflow observations report the largest finite bound *)
  Alcotest.(check (float 1e-9)) "p100 clamps to last bound" 20.0
    (Metrics.percentile_of v 100.0);
  let empty =
    Metrics.histogram_view (Metrics.histogram ~bounds:[| 1.0 |] "t.hist.empty")
  in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Metrics.percentile_of empty 50.0))

let test_snapshot_diff () =
  let c = Metrics.counter "t.diff.counter" in
  let g = Metrics.gauge "t.diff.gauge" in
  let h = Metrics.histogram ~bounds:[| 1.0 |] "t.diff.hist" in
  Metrics.incr ~by:7 c;
  Metrics.set g 1.0;
  Metrics.observe h 0.5;
  let before = Metrics.snapshot () in
  Metrics.incr ~by:5 c;
  Metrics.set g 9.0;
  Metrics.observe h 0.5;
  Metrics.observe h 2.0;
  let d = Metrics.diff before (Metrics.snapshot ()) in
  Alcotest.(check int) "counter delta" 5 (Metrics.counter_of d "t.diff.counter");
  (match Metrics.find d "t.diff.gauge" with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 0.0)) "gauge keeps after" 9.0 v
  | _ -> Alcotest.fail "gauge missing from diff");
  (match Metrics.find d "t.diff.hist" with
  | Some (Metrics.Histogram v) ->
      Alcotest.(check int) "hist delta count" 2 v.Metrics.count;
      Alcotest.(check (float 1e-9)) "hist delta sum" 2.5 v.Metrics.sum
  | _ -> Alcotest.fail "histogram missing from diff");
  (* a cell registered after [before] counts from zero *)
  let late = Metrics.counter "t.diff.late" in
  Metrics.incr ~by:3 late;
  let d2 = Metrics.diff before (Metrics.snapshot ()) in
  Alcotest.(check int) "late cell counts from zero" 3
    (Metrics.counter_of d2 "t.diff.late")

let test_render_and_json () =
  let c = Metrics.counter ~labels:[ ("op.kind", "b-stabilize") ] "t.render.ops" in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0 |] "t.render.seconds" in
  Metrics.incr ~by:2 c;
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  let snap = Metrics.snapshot () in
  let text = Metrics.render snap in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TYPE comment" true (contains "# TYPE t_render_ops counter" text);
  Alcotest.(check bool) "label rendered" true
    (contains "t_render_ops{op_kind=\"b-stabilize\"} 2" text);
  Alcotest.(check bool) "cumulative buckets" true
    (contains "t_render_seconds_bucket{le=\"2\"} 2" text);
  Alcotest.(check bool) "+Inf bucket" true
    (contains "t_render_seconds_bucket{le=\"+Inf\"} 2" text);
  Alcotest.(check bool) "_count line" true (contains "t_render_seconds_count 2" text);
  let js = Metrics.to_json snap in
  Alcotest.(check bool) "json names the counter" true (contains "t.render.ops" js);
  Alcotest.(check bool) "json is an object" true
    (String.length js > 1 && js.[0] = '{')

let test_reset_all () =
  let c = Metrics.counter "t.reset.counter" in
  let h = Metrics.histogram ~bounds:[| 1.0 |] "t.reset.hist" in
  Metrics.incr ~by:9 c;
  Metrics.observe h 0.5;
  Metrics.reset_all ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0
    (Metrics.histogram_view h).Metrics.count

let test_counters_adapter () =
  (* the legacy Counters front-end shares cells with Metrics *)
  let c = Xtwig_util.Counters.counter "t.adapter.counter" in
  Xtwig_util.Counters.incr ~by:4 c;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "visible in Metrics snapshot" 4
    (Metrics.counter_of snap "t.adapter.counter");
  Alcotest.(check bool) "visible in Counters.snapshot" true
    (List.mem_assoc "t.adapter.counter" (Xtwig_util.Counters.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_disabled_is_passthrough () =
  Trace.disable ();
  Trace.reset ();
  Alcotest.(check bool) "disabled by default here" false (Trace.enabled ());
  let r = Trace.with_span ~name:"t.off" (fun () -> 21 * 2) in
  Alcotest.(check int) "value passes through" 42 r;
  match Trace.validate_string (Trace.to_json_string ()) with
  | Error _ -> ()
  | Ok n -> Alcotest.(check int) "no spans recorded" 0 n

let test_trace_nested_spans_validate () =
  Trace.enable ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let r =
    Trace.with_span ~name:"outer" ~args:[ ("k", "v") ] (fun () ->
        Trace.with_span ~name:"inner" (fun () -> Trace.instant "mark"; 7))
  in
  Alcotest.(check int) "nested result" 7 r;
  (* a span that raises still closes *)
  (match Trace.with_span ~name:"raises" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  match Trace.validate_string (Trace.to_json_string ()) with
  | Ok n -> Alcotest.(check int) "three well-formed spans" 3 n
  | Error e -> Alcotest.fail e

let test_trace_pool_workers () =
  Trace.enable ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Pool.with_pool ~domains:3 (fun p ->
      let ys =
        Pool.map_array p
          ~f:(fun i () -> Trace.with_span ~name:"worker.span" (fun () -> i))
          (Array.make 24 ())
      in
      Array.iteri (fun i y -> Alcotest.(check int) "result" i y) ys);
  match Trace.validate_string (Trace.to_json_string ()) with
  | Ok n -> Alcotest.(check int) "one span per job, all paired" 24 n
  | Error e -> Alcotest.fail e

let test_trace_dump_and_tamper () =
  Trace.enable ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.with_span ~name:"a" (fun () ->
      Trace.with_span ~name:"b" (fun () -> ()));
  let path = Filename.temp_file "xtwig_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.dump path;
  (match Trace.validate_file path with
  | Ok n -> Alcotest.(check int) "dump validates" 2 n
  | Error e -> Alcotest.fail e);
  (* drop one "E" line: pairing must now fail *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let is_end l =
    let rec contains i =
      i + 8 <= String.length l && (String.sub l i 8 = "\"ph\":\"E\"" || contains (i + 1))
    in
    contains 0
  in
  let dropped_one = ref false in
  let tampered =
    List.rev !lines
    |> List.filter (fun l ->
           if (not !dropped_one) && is_end l then (
             dropped_one := true;
             false)
           else true)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "found an E to drop" true !dropped_one;
  match Trace.validate_string tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered trace must not validate"

let test_trace_cap_drops_whole_spans () =
  Trace.enable ~cap:8 ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  for _ = 1 to 100 do
    Trace.with_span ~name:"capped" (fun () -> ())
  done;
  Alcotest.(check bool) "spans were dropped" true (Trace.dropped () > 0);
  match Trace.validate_string (Trace.to_json_string ()) with
  | Ok n -> Alcotest.(check bool) "survivors still pair" true (n > 0 && n <= 8)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Accuracy                                                            *)

let test_accuracy_rel_error () =
  let acc = Accuracy.create ~sanity:10.0 ~name:"t.acc.rel" () in
  Alcotest.(check (float 1e-9)) "sanity-bounded below" 0.5
    (Accuracy.rel_error acc ~truth:0.0 ~estimate:5.0);
  Alcotest.(check (float 1e-9)) "plain relative above" 0.5
    (Accuracy.rel_error acc ~truth:100.0 ~estimate:150.0);
  (* matches Error_metric's definition on a positive-truth workload
     (its computed sanity bound, 100.0 here, exceeds ours of 10.0, and
     truth = 100 dominates both) *)
  let truths = [| 100.0 |] and estimates = [| 150.0 |] in
  let m = Xtwig_workload.Error_metric.evaluate ~truths ~estimates in
  Alcotest.(check (float 1e-9)) "agrees with Error_metric"
    m.Xtwig_workload.Error_metric.per_query.(0)
    (Accuracy.rel_error acc ~truth:100.0 ~estimate:150.0)

let test_accuracy_stream_and_report () =
  let acc = Accuracy.create ~sanity:1.0 ~name:"t.acc.stream" () in
  for i = 1 to 100 do
    (* relative errors 0.01 .. 1.00 *)
    let truth = 100.0 in
    Accuracy.observe acc ~truth ~estimate:(truth +. float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Accuracy.count acc);
  let p50 = Accuracy.percentile acc 50.0 in
  let p90 = Accuracy.percentile acc 90.0 in
  let p99 = Accuracy.percentile acc 99.0 in
  Alcotest.(check bool) "p50 near 0.5" true (p50 > 0.2 && p50 < 0.8);
  Alcotest.(check bool) "percentiles ordered" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "p99 near 1.0" true (p99 > 0.7 && p99 <= 2.0);
  Alcotest.(check bool) "mean near 0.5" true
    (Float.abs (Accuracy.mean_rel acc -. 0.505) < 1e-6);
  let r = Accuracy.report acc in
  Alcotest.(check bool) "report names the count" true
    (let rec contains i =
       i + 3 <= String.length r && (String.sub r i 3 = "100" || contains (i + 1))
     in
     contains 0)

let test_render_escapes_label_values () =
  (* Prometheus exposition escapes exactly backslash, double quote and
     newline in label values; everything else passes through. *)
  let tricky = "a\\b\"c\nd" in
  let c = Metrics.counter ~labels:[ ("path", tricky) ] "t.escape.ops" in
  Metrics.incr c;
  let text = Metrics.render (Metrics.snapshot ()) in
  Alcotest.(check bool) "escaped value rendered" true
    (contains "t_escape_ops{path=\"a\\\\b\\\"c\\nd\"} 1" text);
  Alcotest.(check bool) "no raw newline inside the label value" false
    (contains "c\nd\"" text)

let test_render_family_comments_once () =
  (* # TYPE / # HELP appear exactly once per family even when several
     labeled series of the same family interleave with other families
     in registration order. *)
  let mk tenant = Metrics.counter ~help:"interleaved family"
      ~labels:[ ("tenant", tenant) ] "t.family.once" in
  let a = mk "a" in
  let _other = Metrics.counter "t.family.spacer" in
  let b = mk "b" in
  let _other2 = Metrics.gauge "t.family.spacer2" in
  let c = mk "c" in
  Metrics.incr a;
  Metrics.incr ~by:2 b;
  Metrics.incr ~by:3 c;
  let text = Metrics.render (Metrics.snapshot ()) in
  Alcotest.(check int) "one TYPE line" 1
    (count_sub "# TYPE t_family_once counter" text);
  Alcotest.(check int) "one HELP line" 1
    (count_sub "# HELP t_family_once interleaved family" text);
  Alcotest.(check int) "three series" 3 (count_sub "t_family_once{tenant=" text)

let test_trace_concurrent_domains_validate () =
  (* satellite (c): several domains emitting B/E spans, X complete
     events and instants concurrently still produce a trace the
     validator accepts — pairing is per-tid, never cross-domain.
     (enable keeps the previous soft cap, and the cap test above
     shrank it: restore a roomy one explicitly) *)
  Trace.enable ~cap:100_000 ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let worker k () =
    for i = 1 to 25 do
      Trace.with_trace_id ((k * 1000) + i) (fun () ->
          Trace.with_span ~name:"dom.outer" (fun () ->
              Trace.with_span ~name:"dom.inner" (fun () ->
                  Trace.instant "dom.mark");
              let start_ns = Int64.sub (Trace.now_ns ()) 1_000L in
              Trace.complete ~name:"dom.retro" ~start_ns ~dur_ns:1_000L ()))
    done
  in
  let doms = List.init 4 (fun k -> Domain.spawn (worker (k + 1))) in
  List.iter Domain.join doms;
  match Trace.validate_string (Trace.to_json_string ()) with
  | Ok n ->
      (* 4 domains x 25 iterations x (2 B/E spans + 1 X span) *)
      Alcotest.(check int) "all spans pair" 300 n
  | Error e -> Alcotest.fail e

let test_accuracy_empty_report_has_no_nan () =
  (* satellite (c): an empty stream must not leak NaN into JSON —
     percentiles of nothing render as null. *)
  let acc = Accuracy.create ~sanity:10.0 ~name:"t.acc.empty" () in
  let js = Accuracy.report_json acc in
  Alcotest.(check bool) "json object" true (String.length js > 0 && js.[0] = '{');
  Alcotest.(check bool) "no nan token" false (contains "nan" (String.lowercase_ascii js));
  Alcotest.(check bool) "no inf token" false (contains "inf" (String.lowercase_ascii js));
  Alcotest.(check bool) "count is zero" true (contains "\"count\": 0" js || contains "\"count\":0" js);
  (* the human report must not crash either *)
  let (_ : string) = Accuracy.report acc in
  ()

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)

let test_log_disabled_is_noop () =
  Log.disable ();
  Alcotest.(check bool) "disabled" false (Log.enabled ());
  Log.info ~fields:[ ("k", Log.S "v") ] "t.log.off";
  Alcotest.(check (list string)) "ring empty" [] (Log.recent ())

let test_log_ring_sink_and_levels () =
  let path = Filename.temp_file "xtwig_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> Log.disable (); Sys.remove path) @@ fun () ->
  Log.enable ~level:Log.Info ~ring_cap:4 ~path ();
  Log.debug "t.log.filtered" (* below threshold: dropped *);
  Log.info ~fields:[ ("tenant", Log.S "a\"b\\c"); ("bytes", Log.I 17) ] "t.log.access";
  Log.warn ~fields:[ ("depth", Log.I 3); ("ok", Log.B false) ] "t.log.shed";
  Log.error ~fields:[ ("ratio", Log.F 0.5) ] "t.log.fail";
  Alcotest.(check int) "three emitted" 3 (Log.emitted ());
  let ring = Log.recent () in
  Alcotest.(check int) "ring holds them" 3 (List.length ring);
  let first = List.hd ring in
  Alcotest.(check bool) "oldest first" true (contains "t.log.access" first);
  Alcotest.(check bool) "json-escaped field" true (contains "a\\\"b\\\\c" first);
  Alcotest.(check bool) "level tagged" true (contains "\"level\":\"info\"" first);
  (* overflow the ring: oldest records are overwritten, emitted keeps counting *)
  for i = 1 to 6 do
    Log.info ~fields:[ ("i", Log.I i) ] "t.log.spam"
  done;
  Alcotest.(check int) "emitted counts overwrites" 9 (Log.emitted ());
  Alcotest.(check int) "ring capped" 4 (List.length (Log.recent ()));
  Log.flush ();
  let ic = open_in path in
  let n = ref 0 and saw_access = ref false in
  (try
     while true do
       let l = input_line ic in
       incr n;
       if contains "t.log.access" l then saw_access := true;
       Alcotest.(check bool) "sink line is an object" true
         (String.length l > 0 && l.[0] = '{')
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "sink kept every record" 9 !n;
  Alcotest.(check bool) "sink kept the overwritten record" true !saw_access

let test_log_level_of_string () =
  Alcotest.(check bool) "debug" true (Log.level_of_string "debug" = Some Log.Debug);
  Alcotest.(check bool) "WARN case-insensitive" true
    (Log.level_of_string "WARN" = Some Log.Warn);
  Alcotest.(check bool) "warning alias" true
    (Log.level_of_string "warning" = Some Log.Warn);
  Alcotest.(check bool) "garbage rejected" true (Log.level_of_string "loud" = None)

(* ------------------------------------------------------------------ *)
(* Slo                                                                 *)

let test_slo_parse () =
  (match Slo.parse "movies=p99:5ms,err:0.1%" with
  | Ok ("movies", o) ->
      (match o.Slo.p99_s with
      | Some v -> Alcotest.(check (float 1e-12)) "5ms" 0.005 v
      | None -> Alcotest.fail "p99 missing");
      (match o.Slo.err_rate with
      | Some v -> Alcotest.(check (float 1e-12)) "0.1%" 0.001 v
      | None -> Alcotest.fail "err missing")
  | Ok _ -> Alcotest.fail "wrong tenant"
  | Error e -> Alcotest.fail e);
  (match Slo.parse "t=p99:250us" with
  | Ok (_, o) ->
      Alcotest.(check bool) "us suffix" true (o.Slo.p99_s = Some 0.00025);
      Alcotest.(check bool) "err absent" true (o.Slo.err_rate = None)
  | Error e -> Alcotest.fail e);
  (match Slo.parse "no-equals-sign" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec without '=' must be rejected");
  (match Slo.parse "t=p99:fast" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparseable duration must be rejected");
  (* objective_text round-trips through parse *)
  match Slo.parse "rt=p99:5ms,err:0.1%" with
  | Error e -> Alcotest.fail e
  | Ok (_, o) -> (
      match Slo.parse ("rt2=" ^ Slo.objective_text o) with
      | Ok (_, o') -> Alcotest.(check bool) "round trip" true (o = o')
      | Error e -> Alcotest.fail e)

let test_slo_burn_rate () =
  (* metric cells are process-global: tenant names unique to this test *)
  let t =
    Slo.create
      [
        ("obs_err", { Slo.p99_s = None; err_rate = Some 0.1 });
        ("obs_lat", { Slo.p99_s = Some 0.001; err_rate = None });
      ]
  in
  (* 9 good + 1 failed of 10 = 10% errors, exactly the 10% budget *)
  for _ = 1 to 9 do
    Slo.record t ~tenant:"obs_err" ~latency_s:0.0001 Slo.Served_ok
  done;
  Slo.record t ~tenant:"obs_err" Slo.Failed;
  Alcotest.(check (float 1e-9)) "at budget burns at 1.0" 1.0
    (Slo.burn_rate t "obs_err");
  (* every request blows the 1ms p99 bound: violation fraction 1.0
     against the 1% allowance = burn 100 *)
  for _ = 1 to 10 do
    Slo.record t ~tenant:"obs_lat" ~latency_s:0.5 Slo.Served_ok
  done;
  Alcotest.(check (float 1e-6)) "all-violating latency burns at 100" 100.0
    (Slo.burn_rate t "obs_lat");
  (* shed counts against the error budget too *)
  Slo.record t ~tenant:"obs_err" Slo.Shed;
  Alcotest.(check bool) "shed raises the burn" true
    (Slo.burn_rate t "obs_err" > 1.0);
  (* undeclared tenants are tracked but burn nothing *)
  Slo.record t ~tenant:"obs_walkin" Slo.Served_degraded;
  Alcotest.(check (float 0.0)) "no objective, no burn" 0.0
    (Slo.burn_rate t "obs_walkin");
  Alcotest.(check bool) "walk-in tenant tracked" true
    (List.mem "obs_walkin" (Slo.tenants t));
  let line = Slo.report_tenant t "obs_err" in
  Alcotest.(check bool) "report names the tenant" true (contains "obs_err" line);
  Alcotest.(check bool) "report shows the burn" true (contains "burn_rate" line)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels distinguish cells" `Quick
            test_labels_distinguish_cells;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram + percentiles" `Quick
            test_histogram_and_percentiles;
          Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
          Alcotest.test_case "render + json exposition" `Quick
            test_render_and_json;
          Alcotest.test_case "reset_all" `Quick test_reset_all;
          Alcotest.test_case "Counters adapter shares cells" `Quick
            test_counters_adapter;
          Alcotest.test_case "render escapes label values" `Quick
            test_render_escapes_label_values;
          Alcotest.test_case "family comments emitted once" `Quick
            test_render_family_comments_once;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is passthrough" `Quick
            test_trace_disabled_is_passthrough;
          Alcotest.test_case "nested spans validate" `Quick
            test_trace_nested_spans_validate;
          Alcotest.test_case "spans on pool workers" `Quick
            test_trace_pool_workers;
          Alcotest.test_case "dump validates, tampering caught" `Quick
            test_trace_dump_and_tamper;
          Alcotest.test_case "cap drops whole spans" `Quick
            test_trace_cap_drops_whole_spans;
          Alcotest.test_case "concurrent domains validate" `Quick
            test_trace_concurrent_domains_validate;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "relative error definition" `Quick
            test_accuracy_rel_error;
          Alcotest.test_case "stream + percentiles + report" `Quick
            test_accuracy_stream_and_report;
          Alcotest.test_case "empty stream has no NaN in JSON" `Quick
            test_accuracy_empty_report_has_no_nan;
        ] );
      ( "log",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_log_disabled_is_noop;
          Alcotest.test_case "ring, sink and level filtering" `Quick
            test_log_ring_sink_and_levels;
          Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse specs" `Quick test_slo_parse;
          Alcotest.test_case "burn-rate arithmetic" `Quick test_slo_burn_rate;
        ] );
    ]
