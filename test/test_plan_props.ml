(* Property tests for compiled-plan repatch eligibility: every
   refinement-op kind must take the cache path its documented class
   promises — payload-only ops (edge-refine, value-refine) never reach
   the structure phase of the compiler; structure-changing ops may
   recompile — and either way the cached estimates stay bit-equal to
   the reference evaluator on the refined sketch. *)

module Testgen = Xtwig_testgen.Testgen
module Sketch = Xtwig_sketch.Sketch
module Refinement = Xtwig_sketch.Refinement
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Plan = Xtwig_sketch.Plan
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Counters = Xtwig_util.Counters

let payload_class = function
  | Refinement.Edge_refine _ | Refinement.Value_refine _ -> true
  | Refinement.B_stabilize _ | Refinement.F_stabilize _
  | Refinement.Edge_expand _ | Refinement.Value_split _ -> false

(* One generated document with its default sketch, a small workload,
   and one sampled candidate pool: score every candidate through a
   warmed shared plan cache (the XBUILD inner-loop shape) and check
   the class contract plus bit-equality. *)
let prop_refinement_classes =
  QCheck2.Test.make
    ~name:"op classes: payload ops repatch (0 compiles), all ops bit-equal"
    ~count:40
    QCheck2.Gen.(pair Testgen.doc_with_sketch (0 -- 10_000))
    (fun ((doc, sk), seed) ->
      let prng = Prng.create seed in
      let queries =
        Wgen.generate { Wgen.paper_p with Wgen.n_queries = 5 } prng doc
      in
      match queries with
      | [] -> true
      | _ ->
          let cands = Refinement.gen_candidates ~count:6 sk prng in
          let cache = Embed.create_cache (Sketch.synopsis sk) in
          let plans = Plan.create_cache (Sketch.synopsis sk) in
          List.for_all
            (fun op ->
              (* re-warm against the base sketch: entries left behind by
                 the previous candidate's structure are repatched (or
                 recompiled) back to [sk]'s, so each candidate starts
                 from the state the XBUILD base pass would leave *)
              List.iter
                (fun q -> ignore (Est.estimate ~cache ~plans sk q))
                queries;
              let refined = Refinement.apply sk op in
              let same_syn = Sketch.synopsis refined == Sketch.synopsis sk in
              Counters.reset_all ();
              let bit_equal =
                if same_syn then
                  (* payload ops and same-synopsis structural ops share
                     the warmed caches, like XBUILD's non-split
                     candidates *)
                  List.for_all
                    (fun q ->
                      Float.equal
                        (Est.estimate ~cache ~plans refined q)
                        (Est.estimate_reference refined q))
                    queries
                else begin
                  (* synopsis-replacing ops get fresh caches chained to
                     the warmed one, like XBUILD's split candidates *)
                  let c2 = Embed.create_cache (Sketch.synopsis refined) in
                  let p2 =
                    Plan.create_cache ~fallback:plans (Sketch.synopsis refined)
                  in
                  List.for_all
                    (fun q ->
                      Float.equal
                        (Est.estimate ~cache:c2 ~plans:p2 refined q)
                        (Est.estimate_reference refined q))
                    queries
                end
              in
              let class_ok =
                (* payload-only ops keep the synopsis and must never
                   pay for the structure phase; structural ops may
                   repatch (no-op or shape-preserving) or recompile *)
                if payload_class op then
                  same_syn && Counters.get "plan.compiles" = 0
                else true
              in
              if not bit_equal then
                QCheck2.Test.fail_reportf "estimates diverge under %s"
                  (Refinement.kind_name op);
              if not class_ok then
                QCheck2.Test.fail_reportf
                  "%s compiled %d plans (payload class promises repatch)"
                  (Refinement.kind_name op)
                  (Counters.get "plan.compiles");
              true)
            cands)

(* The structural signature is what keys repatch-first behaviour:
   payload-only refinements must keep every plan's signature, and a
   recompile against the refined sketch agrees. *)
let prop_signature_stable_under_payload =
  QCheck2.Test.make
    ~name:"structural signature invariant under payload-only ops" ~count:40
    QCheck2.Gen.(pair Testgen.doc_with_sketch (0 -- 10_000))
    (fun ((doc, sk), seed) ->
      let prng = Prng.create seed in
      let queries =
        Wgen.generate { Wgen.paper_p with Wgen.n_queries = 4 } prng doc
      in
      let payload_ops =
        List.filter payload_class (Refinement.gen_candidates ~count:8 sk prng)
      in
      match (queries, payload_ops) with
      | [], _ | _, [] -> true
      | _ ->
          let syn = Sketch.synopsis sk in
          List.for_all
            (fun op ->
              let refined = Refinement.apply sk op in
              List.for_all
                (fun q ->
                  let embs = Embed.embeddings syn q in
                  let before = Plan.compile_roots sk embs in
                  let after = Plan.compile_roots refined embs in
                  Array.for_all2
                    (fun a b -> Plan.signature a = Plan.signature b)
                    before after)
                queries)
            payload_ops)

let () =
  Alcotest.run "plan_props"
    [
      ( "repatch-eligibility",
        List.map QCheck_alcotest.to_alcotest
          [ prop_refinement_classes; prop_signature_stable_under_payload ] );
    ]
