module Trie = Xtwig_cst.Suffix_trie
module Cst = Xtwig_cst.Cst
module Eval = Xtwig_eval.Eval_twig
module Fx = Xtwig_fixtures.Fixtures

let checkf = Alcotest.(check (float 1e-6))
let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let bib = Fx.bibliography ()

(* ---------------- suffix trie ---------------- *)

let test_trie_counts () =
  let t = Trie.build bib in
  Alcotest.(check (option int)) "//paper" (Some 4) (Trie.lookup t [ "paper" ]);
  Alcotest.(check (option int)) "//author/paper" (Some 4)
    (Trie.lookup t [ "author"; "paper" ]);
  Alcotest.(check (option int)) "//paper/title" (Some 4)
    (Trie.lookup t [ "paper"; "title" ]);
  Alcotest.(check (option int)) "//book/title" (Some 1)
    (Trie.lookup t [ "book"; "title" ]);
  Alcotest.(check (option int)) "//title" (Some 5) (Trie.lookup t [ "title" ]);
  Alcotest.(check (option int)) "unknown" None (Trie.lookup t [ "movie" ])

let test_trie_anchored () =
  let t = Trie.build bib in
  Alcotest.(check (option int)) "/bibliography" (Some 1)
    (Trie.lookup t [ Trie.anchor; "bibliography" ]);
  Alcotest.(check (option int)) "/bibliography/author" (Some 3)
    (Trie.lookup t [ Trie.anchor; "bibliography"; "author" ])

let test_trie_existed () =
  let t = Trie.build bib in
  Alcotest.(check bool) "existing" true (Trie.existed t [ "author"; "paper" ]);
  Alcotest.(check bool) "never" false (Trie.existed t [ "paper"; "author" ])

let test_trie_prune_keeps_labels () =
  let t = Trie.build bib in
  let full = Trie.node_count t in
  Trie.prune t ~budget_bytes:(12 * 8);
  Alcotest.(check bool) "shrunk" true (Trie.node_count t < full);
  (* depth-1 label counts always survive *)
  Alcotest.(check (option int)) "//paper survives" (Some 4) (Trie.lookup t [ "paper" ]);
  Alcotest.(check bool) "size accounting" true (Trie.size_bytes t = 12 * Trie.node_count t)

(* ---------------- maximal overlap ---------------- *)

let test_mo_exact_when_retained () =
  let c = Cst.build bib in
  checkf "//author/paper exact" 4.0 (Cst.path_count c ~anchored:false [ "author"; "paper" ]);
  checkf "/bibliography/author" 3.0
    (Cst.path_count c ~anchored:true [ "bibliography"; "author" ])

let test_mo_markov_on_pruned () =
  let c = Cst.build ~budget_bytes:(12 * 10) bib in
  (* deep sequences got pruned; the Markov rule still gives a sensible
     positive estimate for real paths *)
  let est = Cst.path_count c ~anchored:false [ "author"; "paper"; "keyword" ] in
  Alcotest.(check bool) "positive" true (est > 0.0);
  Alcotest.(check bool) "bounded" true (est <= 12.0)

let test_mo_impossible_is_zero () =
  let c = Cst.build bib in
  checkf "impossible" 0.0 (Cst.path_count c ~anchored:false [ "keyword"; "author" ])

(* ---------------- twig estimation ---------------- *)

let test_twig_chain () =
  let c = Cst.build bib in
  let q = parse_t "for t0 in //author, t1 in t0/paper, t2 in t1/keyword" in
  checkf "chain twig" 6.0 (Cst.estimate c q)

let test_twig_star_independence () =
  let c = Cst.build bib in
  (* papers x names per author under independence:
     3 * (4/3) * (3/3) = 4 — happens to be exact here *)
  let q = parse_t "for t0 in //author, t1 in t0/paper, t2 in t0/name" in
  checkf "star" 4.0 (Cst.estimate c q)

let test_twig_correlation_blindspot () =
  (* CST cannot see the Figure 4 correlation: both documents get the
     same (independence) estimate *)
  let q = Fx.figure_4_query () in
  let ca = Cst.build (Fx.figure_4_doc_a ()) in
  let cb = Cst.build (Fx.figure_4_doc_b ()) in
  checkf "same on both docs" (Cst.estimate ca q) (Cst.estimate cb q);
  checkf "independence value" 6050.0 (Cst.estimate ca q)

let test_twig_branch () =
  let c = Cst.build bib in
  let q = parse_t "for t0 in //author[book], t1 in t0/paper" in
  (* existence fraction 1/3, papers per author 4/3: 3 * 1/3 * 4/3 *)
  Alcotest.(check bool) "reasonable" true
    (let e = Cst.estimate c q in
     e > 0.5 && e < 4.0)

let test_twig_absolute_root () =
  let c = Cst.build bib in
  let q = parse_t "for t0 in /bibliography/author/paper, t1 in t0/keyword" in
  checkf "anchored twig" 6.0 (Cst.estimate c q)

(* property: on generated documents, unpruned CST is exact for simple
   child-axis path counts *)
let prop_unpruned_paths_exact =
  QCheck2.Test.make ~name:"unpruned CST exact on retained paths" ~count:20
    QCheck2.Gen.(0 -- 1000)
    (fun seed ->
      let doc = Xtwig_datagen.Sprot.generate ~seed ~scale:0.02 () in
      let c = Cst.build doc in
      List.for_all
        (fun labels ->
          let p =
            Xtwig_path.Path_types.(
              { axis = Descendant; label = List.hd labels; vpred = None; branches = [] }
              :: List.map (fun l -> Xtwig_path.Path_types.step l) (List.tl labels))
          in
          let truth =
            float_of_int (Xtwig_eval.Eval_path.count doc ~from:None p)
          in
          Float.abs (Cst.path_count c ~anchored:false labels -. truth) < 1e-6)
        [ [ "entry" ]; [ "entry"; "feature" ]; [ "feature"; "type" ]; [ "entry"; "keyword" ] ])

let () =
  Alcotest.run "cst"
    [
      ( "suffix-trie",
        [
          Alcotest.test_case "counts" `Quick test_trie_counts;
          Alcotest.test_case "anchored lookups" `Quick test_trie_anchored;
          Alcotest.test_case "existed" `Quick test_trie_existed;
          Alcotest.test_case "pruning" `Quick test_trie_prune_keeps_labels;
        ] );
      ( "maximal-overlap",
        [
          Alcotest.test_case "exact when retained" `Quick test_mo_exact_when_retained;
          Alcotest.test_case "markov on pruned" `Quick test_mo_markov_on_pruned;
          Alcotest.test_case "impossible is zero" `Quick test_mo_impossible_is_zero;
        ] );
      ( "twigs",
        [
          Alcotest.test_case "chain" `Quick test_twig_chain;
          Alcotest.test_case "star independence" `Quick test_twig_star_independence;
          Alcotest.test_case "correlation blind spot" `Quick
            test_twig_correlation_blindspot;
          Alcotest.test_case "branch predicate" `Quick test_twig_branch;
          Alcotest.test_case "absolute root" `Quick test_twig_absolute_root;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_unpruned_paths_exact ] );
    ]
