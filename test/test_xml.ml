module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module Parser = Xtwig_xml.Xml_parser
module Writer = Xtwig_xml.Xml_writer
module Xerror = Xtwig_util.Xerror

let parse_string s =
  match Parser.parse_string_res s with
  | Ok d -> d
  | Error e -> failwith (Xerror.to_string e)

let sample () =
  let b = Doc.Builder.create () in
  let root = Doc.Builder.root b "lib" in
  let a = Doc.Builder.child b root "author" in
  ignore (Doc.Builder.child b a ~value:(Value.Text "Ada") "name");
  let p = Doc.Builder.child b a "paper" in
  ignore (Doc.Builder.child b p ~value:(Value.Int 2001) "year");
  ignore (Doc.Builder.child b p ~value:(Value.Text "k1") "keyword");
  ignore (Doc.Builder.child b p ~value:(Value.Text "k2") "keyword");
  Doc.Builder.finish b

(* ---------------- Value ---------------- *)

let test_value_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "of_string (to_string v) = v" true
        (Value.equal v (Value.of_string (Value.to_string v))))
    [ Value.Null; Value.Int 42; Value.Int (-7); Value.Float 2.5; Value.Text "abc" ]

let test_value_as_float () =
  Alcotest.(check (option (float 1e-9))) "int" (Some 3.0) (Value.as_float (Int 3));
  Alcotest.(check (option (float 1e-9))) "float" (Some 2.5) (Value.as_float (Float 2.5));
  Alcotest.(check (option (float 1e-9))) "numeric text" (Some 7.0) (Value.as_float (Text "7"));
  Alcotest.(check (option (float 1e-9))) "text" None (Value.as_float (Text "abc"));
  Alcotest.(check (option (float 1e-9))) "null" None (Value.as_float Null)

let test_value_compare () =
  Alcotest.(check bool) "int < float" true (Value.compare (Int 1) (Float 2.0) < 0);
  Alcotest.(check bool) "null smallest" true (Value.compare Null (Int (-100)) < 0);
  Alcotest.(check bool) "text order" true (Value.compare (Text "a") (Text "b") < 0);
  Alcotest.(check bool) "int/float equal" true (Value.equal (Int 2) (Float 2.0))

(* ---------------- Doc ---------------- *)

let test_builder_structure () =
  let d = sample () in
  Alcotest.(check int) "size" 7 (Doc.size d);
  Alcotest.(check string) "root tag" "lib" (Doc.tag_name d (Doc.root d));
  Alcotest.(check (option int)) "root has no parent" None (Doc.parent d (Doc.root d));
  let authors = Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "author")) in
  Alcotest.(check int) "one author" 1 (Array.length authors);
  let a = authors.(0) in
  Alcotest.(check int) "author kids" 2 (Array.length (Doc.children d a));
  Alcotest.(check (option int)) "author parent is root" (Some (Doc.root d)) (Doc.parent d a)

let test_children_order () =
  let d = sample () in
  let p = (Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "paper"))).(0) in
  let kid_tags = Array.to_list (Array.map (Doc.tag_name d) (Doc.children d p)) in
  Alcotest.(check (list string)) "document order" [ "year"; "keyword"; "keyword" ] kid_tags

let test_children_with_tag () =
  let d = sample () in
  let p = (Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "paper"))).(0) in
  let kw = Option.get (Doc.tag_of_string d "keyword") in
  Alcotest.(check int) "2 keywords" 2 (Doc.children_with_tag d p kw)

let test_depth () =
  let d = sample () in
  Alcotest.(check int) "root depth" 0 (Doc.depth d (Doc.root d));
  Alcotest.(check int) "max depth" 3 (Doc.max_depth d)

let test_label_path () =
  let d = sample () in
  let y = (Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "year"))).(0) in
  Alcotest.(check (list string)) "path" [ "lib"; "author"; "paper"; "year" ]
    (Doc.label_path d y)

let test_leaf_count () =
  let d = sample () in
  Alcotest.(check int) "leaves" 4 (Doc.leaf_count d)

let test_fold_iter_agree () =
  let d = sample () in
  let n1 = Doc.fold d ~init:0 ~f:(fun acc _ -> acc + 1) in
  let n2 = ref 0 in
  Doc.iter d (fun _ -> incr n2);
  Alcotest.(check int) "fold = iter count" n1 !n2;
  Alcotest.(check int) "equals size" (Doc.size d) n1

let test_unknown_tag () =
  let d = sample () in
  Alcotest.(check (option int)) "unknown tag" None (Doc.tag_of_string d "nope")

(* ---------------- Parser / Writer ---------------- *)

let test_parse_basic () =
  let d = parse_string "<a><b>1</b><c x=\"2\"><d/></c></a>" in
  Alcotest.(check int) "5 nodes (attr becomes child)" 5 (Doc.size d);
  let b = (Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "b"))).(0) in
  Alcotest.(check bool) "b value is 1" true (Value.equal (Int 1) (Doc.value d b));
  let c = (Doc.nodes_with_tag d (Option.get (Doc.tag_of_string d "c"))).(0) in
  Alcotest.(check int) "c has attr child + d" 2 (Array.length (Doc.children d c))

let test_parse_entities () =
  let d = parse_string "<a>x &amp; y &lt;z&gt; &#65;</a>" in
  Alcotest.(check bool) "entities decoded" true
    (Value.equal (Text "x & y <z> A") (Doc.value d (Doc.root d)))

let test_parse_comments_decl () =
  let d =
    parse_string
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a><!-- bye -->"
  in
  Alcotest.(check int) "2 nodes" 2 (Doc.size d)

let test_parse_cdata () =
  let d = parse_string "<a><![CDATA[<not-a-tag>]]></a>" in
  Alcotest.(check bool) "cdata verbatim" true
    (Value.equal (Text "<not-a-tag>") (Doc.value d (Doc.root d)))

let test_parse_errors () =
  let fails s =
    match Parser.parse_string_res s with
    | Error (Xerror.Parse (Xerror.Xml, _)) -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatched close" true (fails "<a><b></a></b>");
  Alcotest.(check bool) "unterminated" true (fails "<a><b>");
  Alcotest.(check bool) "empty" true (fails "   ");
  Alcotest.(check bool) "trailing garbage" true (fails "<a/><b/>");
  Alcotest.(check bool) "bad entity" true (fails "<a>&nosuch;</a>")

let rec doc_equal d1 d2 n1 n2 =
  Doc.tag_name d1 n1 = Doc.tag_name d2 n2
  && Value.equal (Doc.value d1 n1) (Doc.value d2 n2)
  && Array.length (Doc.children d1 n1) = Array.length (Doc.children d2 n2)
  && Array.for_all2
       (fun a b -> doc_equal d1 d2 a b)
       (Doc.children d1 n1) (Doc.children d2 n2)

let test_write_parse_roundtrip () =
  let d = sample () in
  let d2 = parse_string (Writer.to_string d) in
  Alcotest.(check bool) "structurally equal" true
    (doc_equal d d2 (Doc.root d) (Doc.root d2))

let test_roundtrip_fixture () =
  let d = Xtwig_fixtures.Fixtures.bibliography () in
  let d2 = parse_string (Writer.to_string d) in
  Alcotest.(check int) "same size" (Doc.size d) (Doc.size d2);
  Alcotest.(check bool) "structurally equal" true
    (doc_equal d d2 (Doc.root d) (Doc.root d2))

let test_escape () =
  Alcotest.(check string) "escape" "&lt;a&gt; &amp; &quot;b&quot;"
    (Writer.escape "<a> & \"b\"")

let test_text_size () =
  let d = sample () in
  Alcotest.(check int) "text_size = |to_string|"
    (String.length (Writer.to_string d))
    (Writer.text_size d)

(* qcheck: random documents round-trip through write + parse. The
   generator lives in the shared toolkit (test/gen) so every suite
   draws documents from the same distribution. *)
let gen_doc = Xtwig_testgen.Testgen.doc

let prop_roundtrip =
  QCheck2.Test.make ~name:"write/parse roundtrip" ~count:100 gen_doc (fun d ->
      let d2 = parse_string (Writer.to_string d) in
      doc_equal d d2 (Doc.root d) (Doc.root d2))

let prop_depth_le_size =
  QCheck2.Test.make ~name:"max_depth < size" ~count:100 gen_doc (fun d ->
      Doc.max_depth d < Doc.size d)

let prop_children_partition =
  QCheck2.Test.make ~name:"every non-root node is some node's child" ~count:100
    gen_doc (fun d ->
      let counted = Doc.fold d ~init:0 ~f:(fun a n -> a + Array.length (Doc.children d n)) in
      counted = Doc.size d - 1)

let () =
  Alcotest.run "xml"
    [
      ( "value",
        [
          Alcotest.test_case "string roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "as_float" `Quick test_value_as_float;
          Alcotest.test_case "compare" `Quick test_value_compare;
        ] );
      ( "doc",
        [
          Alcotest.test_case "builder structure" `Quick test_builder_structure;
          Alcotest.test_case "children order" `Quick test_children_order;
          Alcotest.test_case "children_with_tag" `Quick test_children_with_tag;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "label path" `Quick test_label_path;
          Alcotest.test_case "leaf count" `Quick test_leaf_count;
          Alcotest.test_case "fold/iter agree" `Quick test_fold_iter_agree;
          Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "comments and declaration" `Quick test_parse_comments_decl;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "writer",
        [
          Alcotest.test_case "write/parse roundtrip" `Quick test_write_parse_roundtrip;
          Alcotest.test_case "fixture roundtrip" `Quick test_roundtrip_fixture;
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "text size" `Quick test_text_size;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_depth_le_size; prop_children_partition ] );
    ]
