module Doc = Xtwig_xml.Doc
module G = Xtwig_synopsis.Graph_synopsis
module Xmark = Xtwig_datagen.Xmark
module Imdb = Xtwig_datagen.Imdb
module Sprot = Xtwig_datagen.Sprot

let parse_p s =
  match Xtwig_path.Path_parser.parse_path_res s with
  | Ok p -> p
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

let count_path doc s = Xtwig_eval.Eval_path.count doc ~from:None (parse_p s)

(* full-scale generations are shared across tests *)
let xmark = lazy (Xmark.generate ())
let imdb = lazy (Imdb.generate ())
let sprot = lazy (Sprot.generate ())

let within_pct target pct actual =
  Float.abs (float_of_int actual -. float_of_int target) /. float_of_int target
  <= pct /. 100.0

(* ---------------- Table 1 calibration ---------------- *)

let test_element_counts () =
  Alcotest.(check bool) "xmark ~103K" true
    (within_pct 103_000 5.0 (Doc.size (Lazy.force xmark)));
  Alcotest.(check bool) "imdb ~103K" true
    (within_pct 103_000 5.0 (Doc.size (Lazy.force imdb)));
  Alcotest.(check bool) "sprot ~70K" true
    (within_pct 70_000 5.0 (Doc.size (Lazy.force sprot)))

let test_determinism () =
  let a = Imdb.generate ~seed:5 ~scale:0.01 () in
  let b = Imdb.generate ~seed:5 ~scale:0.01 () in
  Alcotest.(check int) "same size" (Doc.size a) (Doc.size b);
  Alcotest.(check string) "same serialization"
    (Digest.to_hex (Digest.string (Xtwig_xml.Xml_writer.to_string a)))
    (Digest.to_hex (Digest.string (Xtwig_xml.Xml_writer.to_string b)))

let test_seed_sensitivity () =
  let a = Imdb.generate ~seed:5 ~scale:0.01 () in
  let b = Imdb.generate ~seed:6 ~scale:0.01 () in
  Alcotest.(check bool) "different docs" true
    (Xtwig_xml.Xml_writer.to_string a <> Xtwig_xml.Xml_writer.to_string b)

let test_scale_parameter () =
  let small = Xmark.generate ~scale:0.1 () in
  let full = Lazy.force xmark in
  Alcotest.(check bool) "scale ~ 10x" true
    (Doc.size full / Doc.size small >= 8 && Doc.size full / Doc.size small <= 12)

(* ---------------- schema shape ---------------- *)

let test_xmark_schema () =
  let doc = Lazy.force xmark in
  Alcotest.(check string) "root" "site" (Doc.tag_name doc (Doc.root doc));
  Alcotest.(check bool) "items exist" true (count_path doc "//item" > 0);
  Alcotest.(check bool) "six regions" true (count_path doc "/site/regions/africa" = 1);
  Alcotest.(check bool) "persons" true (count_path doc "/site/people/person" > 0);
  Alcotest.(check bool) "open auctions with bidders" true
    (count_path doc "//open_auction/bidder/increase" > 0);
  Alcotest.(check bool) "every item has a name" true
    (count_path doc "//item" = count_path doc "//item[name]")

let test_imdb_schema () =
  let doc = Lazy.force imdb in
  Alcotest.(check string) "root" "imdb" (Doc.tag_name doc (Doc.root doc));
  Alcotest.(check bool) "movies" true (count_path doc "//movie" > 1000);
  Alcotest.(check bool) "actors have names" true
    (count_path doc "//actor" = count_path doc "//actor[name]");
  Alcotest.(check bool) "genres attached" true
    (count_path doc "//movie" = count_path doc "//movie[genre]")

let test_sprot_schema () =
  let doc = Lazy.force sprot in
  Alcotest.(check string) "root" "sprot" (Doc.tag_name doc (Doc.root doc));
  Alcotest.(check bool) "entries" true (count_path doc "//entry" > 1000);
  Alcotest.(check bool) "features have positions" true
    (count_path doc "//feature" = count_path doc "//feature[from][to]")

(* ---------------- the correlations the experiments rely on ---------------- *)

(* per-movie joint fanout expectation vs independence product: the
   IMDB generator must be strongly correlated, the XMark-like items
   must not be *)
let joint_vs_indep doc parent_label c1 c2 =
  let syn = G.label_split doc in
  let p = List.hd (G.nodes_with_label syn parent_label) in
  let n1 = List.hd (G.nodes_with_label syn c1) in
  let n2 = List.hd (G.nodes_with_label syn c2) in
  let sk = Xtwig_sketch.Sketch.coarsest syn in
  let d =
    Xtwig_sketch.Sketch.distribution sk p
      [|
        { Xtwig_sketch.Sketch.src = p; dst = n1; kind = Forward };
        { Xtwig_sketch.Sketch.src = p; dst = n2; kind = Forward };
      |]
  in
  let joint = Xtwig_hist.Sparse_dist.expected_product d ~over:[ 0; 1 ] in
  let indep = Xtwig_hist.Sparse_dist.mean d 0 *. Xtwig_hist.Sparse_dist.mean d 1 in
  joint /. indep

let test_imdb_correlated () =
  let r = joint_vs_indep (Imdb.generate ~scale:0.2 ()) "movie" "actor" "producer" in
  Alcotest.(check bool) "actor x producer correlated (ratio > 1.3)" true (r > 1.3)

let test_xmark_uncorrelated () =
  let r = joint_vs_indep (Xmark.generate ~scale:0.2 ()) "item" "incategory" "photo" in
  Alcotest.(check bool) "item fanouts near-independent" true
    (r > 0.85 && r < 1.15)

let test_imdb_genre_drives_structure () =
  let doc = Imdb.generate ~scale:0.2 () in
  (* movies with awards (drama/documentary) have far fewer actors than
     movies with box_office (action/comedy) *)
  let avg_actors filter =
    let q =
      parse_t (Printf.sprintf "for t0 in //movie[%s], t1 in t0/actor" filter)
    in
    let tuples = Xtwig_eval.Eval_twig.selectivity doc q in
    let movies = count_path doc (Printf.sprintf "//movie[%s]" filter) in
    float_of_int tuples /. float_of_int (max 1 movies)
  in
  Alcotest.(check bool) "award-movies actor-poor vs box-office movies" true
    (avg_actors "box_office" > 2.0 *. avg_actors "award")

let test_sprot_regular () =
  let doc = Sprot.generate ~scale:0.2 () in
  let r = joint_vs_indep doc "entry" "feature" "keyword" in
  Alcotest.(check bool) "sprot mild correlation" true (r > 0.8 && r < 1.3)

let () =
  Alcotest.run "datagen"
    [
      ( "calibration",
        [
          Alcotest.test_case "element counts (Table 1)" `Slow test_element_counts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "scale parameter" `Slow test_scale_parameter;
        ] );
      ( "schema",
        [
          Alcotest.test_case "xmark" `Slow test_xmark_schema;
          Alcotest.test_case "imdb" `Slow test_imdb_schema;
          Alcotest.test_case "sprot" `Slow test_sprot_schema;
        ] );
      ( "correlations",
        [
          Alcotest.test_case "imdb is correlated" `Quick test_imdb_correlated;
          Alcotest.test_case "xmark is not" `Quick test_xmark_uncorrelated;
          Alcotest.test_case "genre drives structure" `Quick
            test_imdb_genre_drives_structure;
          Alcotest.test_case "sprot is regular" `Quick test_sprot_regular;
        ] );
    ]
