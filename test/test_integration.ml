(* End-to-end scenarios across the whole stack: generate a document,
   build synopses, compare estimators against exact evaluation — the
   miniature version of the Section 6 experiments. *)

module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Cst = Xtwig_cst.Cst
module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng

let imdb = Xtwig_datagen.Imdb.generate ~scale:0.05 ()
let xmark = Xtwig_datagen.Xmark.generate ~scale:0.05 ()

let truth_of doc =
  let cache = Hashtbl.create 512 in
  fun q ->
    let key = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add cache key v;
        v

let error_on doc sk queries =
  let truth = truth_of doc in
  let truths = Array.of_list (List.map truth queries) in
  let estimates = Array.of_list (List.map (fun q -> Est.estimate sk q) queries) in
  EM.average_error ~truths ~estimates

(* ---------------- the paper's qualitative claims, miniature ---------------- *)

let test_imdb_vs_xmark_coarse_gap () =
  (* regular XMark must be much easier for the coarse summary than the
     correlated IMDB (Figure 9a's two curves) *)
  let queries doc =
    Wgen.generate { Wgen.paper_p with n_queries = 60 } (Prng.create 1) doc
  in
  let e_imdb = error_on imdb (Sketch.default_of_doc imdb) (queries imdb) in
  let e_xmark = error_on xmark (Sketch.default_of_doc xmark) (queries xmark) in
  Alcotest.(check bool)
    (Printf.sprintf "imdb %.3f >> xmark %.3f" e_imdb e_xmark)
    true
    (e_imdb > (1.4 *. e_xmark) +. 0.02)

let test_refinement_beats_coarse_on_imdb () =
  let queries =
    Wgen.generate { Wgen.paper_p with n_queries = 50 } (Prng.create 2) imdb
  in
  let truth = truth_of imdb in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with n_queries = 8 } prng imdb
  in
  let coarse = Sketch.default_of_doc imdb in
  let refined =
    Xbuild.build ~seed:4 ~candidates:6 ~max_steps:60 ~workload ~truth ~budget:4000
      imdb
  in
  let e0 = error_on imdb coarse queries in
  let e1 = error_on imdb refined queries in
  Alcotest.(check bool)
    (Printf.sprintf "xbuild improves error (%.3f -> %.3f)" e0 e1)
    true (e1 < e0)

let test_xsketch_beats_cst_on_correlated_data () =
  (* Figure 9(c): at comparable budgets, XSKETCH error < CST error on
     correlated data *)
  let queries =
    Wgen.generate { Wgen.simple_paths with n_queries = 50 } (Prng.create 3) imdb
  in
  let truth = truth_of imdb in
  let truths = Array.of_list (List.map truth queries) in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.simple_paths with n_queries = 8 } prng imdb
  in
  let sk =
    Xbuild.build ~seed:6 ~candidates:6 ~max_steps:50 ~workload ~truth ~budget:3000
      imdb
  in
  let cst = Cst.build ~budget_bytes:(Sketch.size_bytes sk) imdb in
  let e_x =
    EM.average_error ~truths
      ~estimates:(Array.of_list (List.map (fun q -> Est.estimate sk q) queries))
  in
  let e_c =
    EM.average_error ~truths
      ~estimates:(Array.of_list (List.map (fun q -> Cst.estimate cst q) queries))
  in
  Alcotest.(check bool)
    (Printf.sprintf "xsketch %.3f <= cst %.3f" e_x e_c)
    true (e_x <= e_c +. 0.01)

let test_negative_queries_near_zero () =
  (* Section 6.1: "our synopses consistently give close to zero
     estimates" for zero-selectivity queries *)
  let sk = Sketch.default_of_doc imdb in
  let negs =
    Wgen.generate_negative { Wgen.paper_p with n_queries = 20 } (Prng.create 7) imdb
  in
  List.iter
    (fun q ->
      let est = Est.estimate sk q in
      Alcotest.(check bool)
        (Xtwig_path.Path_printer.twig_to_string q)
        true (est < 1.0))
    negs

let test_xml_file_pipeline () =
  (* serialize to a temp file, parse back, rebuild, estimate: the full
     user-facing pipeline *)
  let doc = Xtwig_datagen.Sprot.generate ~scale:0.02 () in
  let path = Filename.temp_file "xtwig_test" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xtwig_xml.Xml_writer.to_file path doc;
      let doc2 =
        match Xtwig_xml.Xml_parser.parse_file_res path with
        | Ok d -> d
        | Error e -> Alcotest.failf "parse_file: %s" (Xtwig_util.Xerror.to_string e)
      in
      Alcotest.(check int) "same size" (Xtwig_xml.Doc.size doc) (Xtwig_xml.Doc.size doc2);
      let q =
        match
          Xtwig_path.Path_parser.parse_twig_res
            "for t0 in //entry, t1 in t0/feature, t2 in t1/type, t3 in t0/keyword"
        with
        | Ok q -> q
        | Error e -> Alcotest.failf "parse twig: %s" (Xtwig_util.Xerror.to_string e)
      in
      Alcotest.(check int) "same selectivity"
        (Xtwig_eval.Eval_twig.selectivity doc q)
        (Xtwig_eval.Eval_twig.selectivity doc2 q);
      let sk = Sketch.default_of_doc doc2 in
      Alcotest.(check bool) "estimator runs" true (Est.estimate sk q >= 0.0))

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "imdb vs xmark coarse gap" `Slow
            test_imdb_vs_xmark_coarse_gap;
          Alcotest.test_case "xbuild beats coarse" `Slow
            test_refinement_beats_coarse_on_imdb;
          Alcotest.test_case "xsketch beats cst" `Slow
            test_xsketch_beats_cst_on_correlated_data;
          Alcotest.test_case "negative queries near zero" `Slow
            test_negative_queries_near_zero;
          Alcotest.test_case "xml file pipeline" `Quick test_xml_file_pipeline;
        ] );
    ]
