(* Property tests for the cost-based branch orderer: the Selinger
   subset DP must be provably cost-optimal — its chosen order's cost
   equal (exactly, float for float) to the minimum over brute-force
   enumeration of all permutations — both on random cost models and on
   the models the planner derives from real estimates over generated
   documents; and the constraint-propagation pass must only ever
   narrow (intervals shrink, trueFractions fall). *)

module Testgen = Xtwig_testgen.Testgen
module Opt = Xtwig_opt.Opt
module Hist1d = Xtwig_hist.Hist1d
module Backend = Xtwig_backend.Estimator_backend
open Xtwig_path.Path_types

(* all permutations of [0 .. k-1], as arrays *)
let permutations k =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert x) (perms xs)
  in
  List.map Array.of_list (perms (List.init k Fun.id))

let exhaustive_min ~costs ~probs =
  List.fold_left
    (fun acc p -> Float.min acc (Opt.order_cost ~costs ~probs p))
    infinity
    (permutations (Array.length costs))

(* branch cost models: up to 6 branches (the oracle bound — 720
   permutations), costs positive, probabilities in [0, 1] *)
let model_gen =
  QCheck2.Gen.(
    let* k = 0 -- 6 in
    let* costs = array_size (return k) (float_range 0.01 50.0) in
    let* probs = array_size (return k) (float_range 0.0 1.0) in
    return (costs, probs))

let prop_dp_equals_exhaustive =
  QCheck2.Test.make
    ~name:"DP order cost = exhaustive permutation minimum (<= 6 branches)"
    ~count:500 model_gen
    (fun (costs, probs) ->
      let order, cost = Opt.best_order ~costs ~probs in
      let k = Array.length costs in
      (* the returned order must be a real permutation *)
      let sorted = Array.copy order in
      Array.sort compare sorted;
      sorted = Array.init k Fun.id
      (* its cost must replay exactly *)
      && cost = Opt.order_cost ~costs ~probs order
      (* and equal the brute-force minimum, bit for bit *)
      && (k = 0 || cost = exhaustive_min ~costs ~probs))

(* the same oracle over the planner's own cost models: plan a
   generated twig against a generated document's sketch estimates and
   check every multi-branch node's chosen order beats all
   permutations of the model the planner recorded *)
let prop_plan_nodes_optimal =
  QCheck2.Test.make
    ~name:"planned per-node orders are permutation-optimal on real twigs"
    ~count:60
    QCheck2.Gen.(pair Testgen.doc_with_sketch (Testgen.twig ~depth:2 ()))
    (fun ((_doc, sk), twig) ->
      let inst = Backend.of_sketch sk in
      let plan = Opt.plan ~estimate:(Backend.estimate inst) twig in
      (not plan.Opt.fallback)
      && plan.Opt.cost <= plan.Opt.default_cost
      && Array.for_all2
           (fun order (m : Opt.node_model) ->
             let k = Array.length m.Opt.costs in
             k < 2 || k > 6
             || Opt.order_cost ~costs:m.Opt.costs ~probs:m.Opt.probs order
                = exhaustive_min ~costs:m.Opt.costs ~probs:m.Opt.probs)
           plan.Opt.orders plan.Opt.models)

(* ------------------------------------------------------------------ *)
(* constraint propagation                                              *)

let value_pred_gen =
  QCheck2.Gen.(
    let cmp =
      oneofl [ Lt; Le; Eq; Ne; Ge; Gt ] >>= fun op ->
      oneof
        [
          map (fun v -> Cmp (op, Xtwig_xml.Value.Int v)) (-50 -- 50);
          map
            (fun v -> Cmp (op, Xtwig_xml.Value.Float (float_of_int v /. 2.)))
            (-100 -- 100);
          (* non-numeric: must not narrow, must still not widen *)
          return (Cmp (op, Xtwig_xml.Value.Text "abc"));
        ]
    in
    oneof
      [
        cmp;
        map2
          (fun a b ->
            Range (float_of_int (min a b), float_of_int (max a b)))
          (-50 -- 50) (-50 -- 50);
      ])

let hist_gen =
  QCheck2.Gen.(
    oneof
      [
        return None;
        map
          (fun vals ->
            Some (Hist1d.build (Array.map float_of_int (Array.of_list vals))))
          (list_size (1 -- 40) (-50 -- 50));
      ])

let subset a b = a.Opt.lo >= b.Opt.lo && a.Opt.hi <= b.Opt.hi

let prop_propagation_never_widens =
  QCheck2.Test.make
    ~name:"constraint propagation never widens (interval or trueFraction)"
    ~count:500
    QCheck2.Gen.(pair hist_gen (list_size (1 -- 8) value_pred_gen))
    (fun (hist, preds) ->
      let r0 = Opt.top ?hist () in
      let _, ok =
        List.fold_left
          (fun (r, ok) pred ->
            let r' = Opt.constrain ?hist r pred in
            ( r',
              ok && subset r'.Opt.itv r.Opt.itv
              && r'.Opt.frac <= r.Opt.frac
              && r'.Opt.frac >= 0.0 && r'.Opt.frac <= 1.0 ))
          (r0, r0.Opt.frac >= 0.0 && r0.Opt.frac <= 1.0)
          preds
      in
      ok)

let () =
  Alcotest.run "opt_props"
    [
      ( "dp-oracle",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dp_equals_exhaustive; prop_plan_nodes_optimal ] );
      ( "propagation",
        List.map QCheck_alcotest.to_alcotest
          [ prop_propagation_never_widens ] );
    ]
