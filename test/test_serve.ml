(* The xtwigd serving layer: protocol framing and codec, end-to-end
   service over a Unix socket, hot reload under live queries
   (differential against direct Engine calls, bitwise), admission
   control (typed overload responses, never a closed socket) and
   fault-spec chaos over the serve.* points with zero uncaught
   exceptions. *)

module P = Xtwig_serve.Protocol
module Server = Xtwig_serve.Server
module Catalog = Xtwig_serve.Catalog
module Xerror = Xtwig.Xerror
module Engine = Xtwig.Engine
module Metrics = Xtwig_obs.Metrics
module Fault = Xtwig_fault.Fault

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Xerror.to_string e)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ---------------- framing ---------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 5000 'q'; "a\nb\nc"; "\x00\xff bytes" ] in
  (* one stream, all frames, fed in every chunk size from 1 to 17 *)
  let stream = String.concat "" (List.map P.frame payloads) in
  for chunk = 1 to 17 do
    let d = P.decoder () in
    let got = ref [] in
    let i = ref 0 in
    while !i < String.length stream do
      let n = min chunk (String.length stream - !i) in
      P.feed d (Bytes.of_string (String.sub stream !i n)) n;
      i := !i + n;
      let continue = ref true in
      while !continue do
        match P.next_frame d with
        | Ok (Some p) -> got := p :: !got
        | Ok None -> continue := false
        | Error e -> Alcotest.failf "decoder error: %s" e
      done
    done;
    Alcotest.(check (list string))
      (Printf.sprintf "chunk size %d" chunk)
      payloads (List.rev !got)
  done

let test_frame_oversized () =
  let d = P.decoder () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (P.max_frame + 1));
  P.feed d b 4;
  match P.next_frame d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length accepted"

(* ---------------- codec ---------------- *)

let test_request_roundtrip () =
  let reqs =
    [
      P.Ping;
      P.List;
      P.Metrics;
      P.Stats "movies";
      P.Reload "t-1.a_b";
      P.Estimate { tenant = "m"; query = "for t0 in //a, t1 in t0/b"; trace = None };
      P.Estimate { tenant = "m"; query = "for t0 in //a"; trace = Some 42 };
      P.Batch
        {
          tenant = "m";
          queries = [ "x in //a"; "y in //b, z in y/c" ];
          trace = None;
        };
      P.Batch { tenant = "m"; queries = [ "x in //a" ]; trace = Some 0 };
      P.Explain { tenant = "m"; query = "for t0 in //a, t1 in t0/b"; trace = None };
      P.Explain { tenant = "m"; query = "for t0 in //a"; trace = Some 7 };
      P.Update
        {
          tenant = "m";
          op = P.Ins { parent = 0; fragment_xml = "<movie><a>1</a>\n</movie>" };
        };
      P.Update { tenant = "m"; op = P.Del 17 };
    ]
  in
  List.iteri
    (fun i req ->
      match P.decode_request (P.encode_request ~id:(i * 7) req) with
      | Ok (id, req') ->
          Alcotest.(check int) "id" (i * 7) id;
          Alcotest.(check bool) "request" true (req = req')
      | Error e -> Alcotest.failf "decode: %s" e)
    reqs

let test_response_roundtrip () =
  let errors =
    [
      Xerror.Usage "u";
      Xerror.Parse (Xerror.Xml, "x");
      Xerror.Parse (Xerror.Path, "p");
      Xerror.Parse (Xerror.Twig, "t");
      Xerror.Io "i";
      Xerror.Sketch_format "s";
      Xerror.Corrupt "c";
      Xerror.Engine "e";
      Xerror.Overload "queue full (64 pending)";
    ]
  in
  List.iteri
    (fun i e ->
      match P.decode_response (P.encode_response ~id:i (P.Fail e)) with
      | Ok (id, P.Fail e') ->
          Alcotest.(check int) "id" i id;
          Alcotest.(check bool) (P.error_class e) true (e = e')
      | Ok (_, P.Reply _) -> Alcotest.fail "error became ok"
      | Error msg -> Alcotest.failf "decode: %s" msg)
    errors;
  List.iter
    (fun body ->
      match P.decode_response (P.encode_response ~id:3 (P.Reply body)) with
      | Ok (3, P.Reply b) -> Alcotest.(check string) "body" body b
      | _ -> Alcotest.fail "reply roundtrip")
    [ ""; "one line"; "a\nb\nc" ]

let test_bad_inputs_rejected () =
  List.iter
    (fun s ->
      match P.decode_request s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      ""; "nope"; "-3 ping"; "x ping"; "7 frobnicate"; "7 estimate bad tenant";
      "7 estimate m trace=x"; "7 estimate m trace=-2"; "7 explain m bogus";
      "7 update m"; "7 update m\nfrob 3"; "7 update m\ninsert x\n<a/>";
      "7 update m\ninsert 0"; "7 update m\ndelete 3\n<a/>";
      "7 update m\ndelete -2"; "7 update m\ninsert -1\n<a/>";
    ]

let any_twig =
  lazy
    (match Xtwig.twig_of_string "for t0 in //a, t1 in t0/b" with
    | Ok t -> t
    | Error _ -> assert false)

let prop_answer_bitwise =
  QCheck2.Test.make ~name:"wire answers round-trip bitwise" ~count:500
    QCheck2.Gen.(map abs_float (float_bound_exclusive 1e18))
    (fun f ->
      let a =
        {
          Engine.query = Lazy.force any_twig;
          estimate = f;
          fallback = false;
          reason = None;
          retries = 0;
          elapsed_s = 0.0;
          trace_id = 0;
        }
      in
      match P.decode_answer (P.encode_answer a) with
      | Ok w -> Int64.equal (Int64.bits_of_float w.P.estimate) (Int64.bits_of_float f)
      | Error _ -> false)

(* ---------------- end-to-end over a unix socket ---------------- *)

let temp_path suffix =
  let p = Filename.temp_file "xtwig_serve" suffix in
  Sys.remove p;
  p

(* a small corpus shared by the service tests: one document on disk,
   two differently-budgeted sketches of it *)
type corpus = { doc_path : string; doc : Xtwig.doc; sk_a : string; sk_b : string }

let corpus =
  lazy
    (let doc = Xtwig_datagen.Imdb.generate ~scale:0.02 () in
     let doc_path = temp_path ".xml" in
     ok_exn (Xtwig.doc_to_file doc_path doc);
     let sk_a = temp_path ".sketch" in
     let sk_b = temp_path ".sketch" in
     let a = ok_exn (Xtwig.build_sketch ~budget:2000 ~seed:1 doc) in
     let b = ok_exn (Xtwig.build_sketch ~budget:4000 ~seed:2 doc) in
     ok_exn (Xtwig.save_sketch a sk_a);
     ok_exn (Xtwig.save_sketch b sk_b);
     { doc_path; doc; sk_a; sk_b })

let queries =
  [
    "for t0 in //movie, t1 in t0/actor";
    "for t0 in //movie, t1 in t0/actor, t2 in t0/producer";
    "for t0 in //movie[genre], t1 in t0/keyword";
  ]

let with_server ?(queue_cap = 64) ?(slo = []) tenants f =
  let sock = temp_path ".sock" in
  let cfg = { Server.default_config with listen = `Unix sock; queue_cap; slo } in
  let server = ok_exn (Server.create cfg tenants) in
  let th = Thread.create Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th)
    (fun () ->
      let client = ok_exn (P.Client.connect_unix sock) in
      Fun.protect ~finally:(fun () -> P.Client.close client) (fun () -> f client))

let call_ok client ~id req =
  match ok_exn (P.Client.call client ~id req) with
  | P.Reply body -> body
  | P.Fail e -> Alcotest.failf "request %d failed: %s" id (Xerror.to_string e)

(* direct answers: what the served answers must match byte for byte *)
let direct_answers sketch_path qs =
  let c = Lazy.force corpus in
  let sk = ok_exn (Xtwig.load_sketch c.doc sketch_path) in
  let engine = ok_exn (Xtwig.open_sketch_session sk) in
  Fun.protect
    ~finally:(fun () -> Xtwig.close_session engine)
    (fun () ->
      let twigs = List.map (fun q -> ok_exn (Xtwig.twig_of_string q)) qs in
      let answers = ok_exn (Xtwig.estimate_batch engine twigs) in
      List.map P.encode_answer answers)

let test_basic_service () =
  let c = Lazy.force corpus in
  with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      let pong = call_ok client ~id:1 P.Ping in
      Alcotest.(check string) "pong" ("pong " ^ Xtwig.version) pong;
      let listing = call_ok client ~id:2 P.List in
      Alcotest.(check bool) "list names tenant" true
        (String.length listing >= 6 && String.sub listing 0 6 = "movies");
      let stats = call_ok client ~id:3 (P.Stats "movies") in
      Alcotest.(check bool) "stats has backend" true
        (List.mem "backend xsketch" (String.split_on_char '\n' stats));
      let metrics = call_ok client ~id:4 P.Metrics in
      Alcotest.(check bool) "metrics mention serve.requests" true
        (contains metrics "serve_requests");
      match ok_exn (P.Client.call client ~id:5 (P.Stats "nosuch")) with
      | P.Fail (Xerror.Usage _) -> ()
      | _ -> Alcotest.fail "unknown tenant should be a usage error")

let test_served_answers_match_direct () =
  let c = Lazy.force corpus in
  with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      let body =
        call_ok client ~id:1 (P.Batch { tenant = "movies"; queries; trace = None })
      in
      Alcotest.(check (list string))
        "bitwise equal to direct engine"
        (direct_answers c.sk_a queries)
        (String.split_on_char '\n' body))

let test_hot_reload_during_queries () =
  let c = Lazy.force corpus in
  (* the tenant's sketch file starts as a copy of sk_a; mid-stream we
     atomically replace it with sk_b's content and reload *)
  let live = temp_path ".sketch" in
  let copy src =
    let sk = ok_exn (Xtwig.load_sketch c.doc src) in
    ok_exn (Xtwig.save_sketch sk live)
  in
  copy c.sk_a;
  with_server [ ("movies", Catalog.source ~sketch_path:live c.doc_path) ]
    (fun client ->
      (* pipeline the whole sequence before reading: queries, reload
         barrier, queries — the per-tenant FIFO answers pre-reload
         queries on the old engine, post-reload ones on the new *)
      ok_exn
        (P.Client.send client ~id:1
           (P.Batch { tenant = "movies"; queries; trace = None }));
      copy c.sk_b;
      ok_exn (P.Client.send client ~id:2 (P.Reload "movies"));
      ok_exn
        (P.Client.send client ~id:3
           (P.Batch { tenant = "movies"; queries; trace = None }));
      let responses = Hashtbl.create 4 in
      for _ = 1 to 3 do
        let id, resp = ok_exn (P.Client.recv client) in
        Hashtbl.add responses id resp
      done;
      let body id =
        match Hashtbl.find_opt responses id with
        | Some (P.Reply b) -> b
        | Some (P.Fail e) ->
            Alcotest.failf "request %d failed: %s" id (Xerror.to_string e)
        | None -> Alcotest.failf "no response for %d" id
      in
      Alcotest.(check (list string))
        "pre-reload answers = direct on old sketch"
        (direct_answers c.sk_a queries)
        (String.split_on_char '\n' (body 1));
      Alcotest.(check string) "reload bumped generation" "2" (body 2);
      Alcotest.(check (list string))
        "post-reload answers = direct on new sketch"
        (direct_answers c.sk_b queries)
        (String.split_on_char '\n' (body 3));
      (* and the two sketches really do answer differently, so the
         checks above are not vacuous *)
      Alcotest.(check bool) "sketches differ" false
        (direct_answers c.sk_a queries = direct_answers c.sk_b queries))

let test_reload_failure_keeps_serving () =
  let c = Lazy.force corpus in
  let live = temp_path ".sketch" in
  let sk = ok_exn (Xtwig.load_sketch c.doc c.sk_a) in
  ok_exn (Xtwig.save_sketch sk live);
  with_server [ ("movies", Catalog.source ~sketch_path:live c.doc_path) ]
    (fun client ->
      Sys.remove live;
      (match ok_exn (P.Client.call client ~id:1 (P.Reload "movies")) with
      | P.Fail (Xerror.Io _) -> ()
      | P.Fail e -> Alcotest.failf "expected io error, got %s" (Xerror.to_string e)
      | P.Reply _ -> Alcotest.fail "reload of a missing sketch succeeded");
      (* the old engine is still serving, answers unchanged *)
      let body =
        call_ok client ~id:2 (P.Batch { tenant = "movies"; queries; trace = None })
      in
      Alcotest.(check (list string))
        "still the old answers"
        (direct_answers c.sk_a queries)
        (String.split_on_char '\n' body))

let test_overload_sheds_typed () =
  let c = Lazy.force corpus in
  with_server ~queue_cap:2
    [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      (* pipeline many requests in one burst without reading: the
         server reads them in one tick, admits up to the cap and sheds
         the rest with a typed overload error *)
      let n = 24 in
      for id = 1 to n do
        ok_exn
          (P.Client.send client ~id
             (P.Estimate
                { tenant = "movies"; query = List.hd queries; trace = None }))
      done;
      let shed = ref 0 and served = ref 0 in
      let seen = Hashtbl.create n in
      for _ = 1 to n do
        let id, resp = ok_exn (P.Client.recv client) in
        Alcotest.(check bool) "fresh id" false (Hashtbl.mem seen id);
        Hashtbl.add seen id ();
        match resp with
        | P.Reply _ -> incr served
        | P.Fail (Xerror.Overload msg) ->
            incr shed;
            Alcotest.(check bool) "overload names the tenant" true
              (contains msg "movies")
        | P.Fail e -> Alcotest.failf "unexpected error %s" (Xerror.to_string e)
      done;
      (* every request got exactly one typed response — nothing was
         dropped and the socket is still usable *)
      Alcotest.(check int) "all answered" n (!served + !shed);
      Alcotest.(check bool) "some served" true (!served > 0);
      Alcotest.(check bool) "some shed" true (!shed > 0);
      let pong = call_ok client ~id:1000 P.Ping in
      Alcotest.(check string) "connection survives" ("pong " ^ Xtwig.version) pong;
      (* the queue-depth gauge tracks the queue through shed decisions
         as well as drains: with everything answered it reads 0 *)
      let depth =
        List.find_map
          (fun (e : Metrics.entry) ->
            if
              String.equal e.Metrics.name "serve.queue_depth"
              && List.assoc_opt "tenant" e.Metrics.labels = Some "movies"
            then
              match e.Metrics.value with Metrics.Gauge v -> Some v | _ -> None
            else None)
          (Metrics.snapshot ())
      in
      Alcotest.(check (option (float 0.0))) "queue depth drained to zero"
        (Some 0.0) depth)

(* ---------------- incremental updates over the wire ---------------- *)

(* what the served answers must match after a sequence of deltas: the
   same deltas applied through the facade to a fresh sketch *)
let direct_answers_of_sketch sk qs =
  let engine = ok_exn (Xtwig.open_sketch_session sk) in
  Fun.protect
    ~finally:(fun () -> Xtwig.close_session engine)
    (fun () ->
      let twigs = List.map (fun q -> ok_exn (Xtwig.twig_of_string q)) qs in
      List.map P.encode_answer (ok_exn (Xtwig.estimate_batch engine twigs)))

let test_update_over_the_wire () =
  let c = Lazy.force corpus in
  (* node ids on the wire refer to the document as the SERVER parsed
     it, so the comparator must start from the same parse *)
  let pdoc = ok_exn (Xtwig.doc_of_file c.doc_path) in
  let frag_xml =
    "<movie><title>Wire Delta</title><year>1999</year><actor>A</actor></movie>"
  in
  let root = Xtwig_xml.Doc.root pdoc in
  let victim =
    let tag = Option.get (Xtwig_xml.Doc.tag_of_string pdoc "movie") in
    (Xtwig_xml.Doc.nodes_with_tag pdoc tag).(0)
  in
  with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      (* pipeline the whole sequence: queries, insert barrier, queries,
         delete barrier, queries — the per-tenant FIFO must answer
         each batch against the document state at its queue position *)
      let batch id =
        ok_exn
          (P.Client.send client ~id
             (P.Batch { tenant = "movies"; queries; trace = None }))
      in
      batch 1;
      ok_exn
        (P.Client.send client ~id:2
           (P.Update
              {
                tenant = "movies";
                op = P.Ins { parent = root; fragment_xml = frag_xml };
              }));
      batch 3;
      ok_exn
        (P.Client.send client ~id:4
           (P.Update { tenant = "movies"; op = P.Del victim }));
      batch 5;
      let responses = Hashtbl.create 8 in
      for _ = 1 to 5 do
        let id, resp = ok_exn (P.Client.recv client) in
        Hashtbl.add responses id resp
      done;
      let body id =
        match Hashtbl.find_opt responses id with
        | Some (P.Reply b) -> b
        | Some (P.Fail e) ->
            Alcotest.failf "request %d failed: %s" id (Xerror.to_string e)
        | None -> Alcotest.failf "no response for %d" id
      in
      Alcotest.(check string) "insert bumped generation" "2" (body 2);
      Alcotest.(check string) "delete bumped generation" "3" (body 4);
      let sk0 = ok_exn (Xtwig.load_sketch pdoc c.sk_a) in
      let fragment = ok_exn (Xtwig.doc_of_string frag_xml) in
      let sk1 =
        ok_exn (Xtwig.update_sketch sk0 (Xtwig.Insert { parent = root; fragment }))
      in
      let sk2 = ok_exn (Xtwig.update_sketch sk1 (Xtwig.Delete victim)) in
      let answers id = String.split_on_char '\n' (body id) in
      Alcotest.(check (list string))
        "pre-update answers = direct on the loaded sketch"
        (direct_answers_of_sketch sk0 queries)
        (answers 1);
      Alcotest.(check (list string))
        "post-insert answers = direct on the maintained sketch"
        (direct_answers_of_sketch sk1 queries)
        (answers 3);
      Alcotest.(check (list string))
        "post-delete answers = direct on the maintained sketch"
        (direct_answers_of_sketch sk2 queries)
        (answers 5);
      (* the deltas really changed the answers, so the checks above
         are not vacuous *)
      Alcotest.(check bool) "insert visible" false (answers 1 = answers 3))

let test_update_failure_keeps_serving () =
  let c = Lazy.force corpus in
  with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      let before =
        call_ok client ~id:1 (P.Batch { tenant = "movies"; queries; trace = None })
      in
      (* deleting an out-of-range node is a usage error from the
         sketch layer; the tenant must keep serving unchanged *)
      (match
         ok_exn
           (P.Client.call client ~id:2
              (P.Update { tenant = "movies"; op = P.Del 999_999 }))
       with
      | P.Fail (Xerror.Usage _) -> ()
      | P.Fail e -> Alcotest.failf "expected Usage, got %s" (Xerror.to_string e)
      | P.Reply _ -> Alcotest.fail "out-of-range delete succeeded");
      (* a fragment that does not parse is rejected up front *)
      (match
         ok_exn
           (P.Client.call client ~id:3
              (P.Update
                 {
                   tenant = "movies";
                   op = P.Ins { parent = 0; fragment_xml = "<broken" };
                 }))
       with
      | P.Fail (Xerror.Parse (Xerror.Xml, _)) -> ()
      | P.Fail e -> Alcotest.failf "expected Parse, got %s" (Xerror.to_string e)
      | P.Reply _ -> Alcotest.fail "unparseable fragment accepted");
      (* unknown tenant is the usual usage error *)
      (match
         ok_exn
           (P.Client.call client ~id:4
              (P.Update { tenant = "nosuch"; op = P.Del 1 }))
       with
      | P.Fail (Xerror.Usage _) -> ()
      | _ -> Alcotest.fail "unknown tenant should be a usage error");
      let after =
        call_ok client ~id:5 (P.Batch { tenant = "movies"; queries; trace = None })
      in
      Alcotest.(check string) "answers unchanged" before after)

(* the explain verb's provenance: a cold query compiles fresh, the
   same query again is a plan-cache hit — the tier provably differs *)
let test_explain_cold_vs_cached () =
  let c = Lazy.force corpus in
  with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      let q = List.hd queries in
      let explain id =
        let body =
          call_ok client ~id (P.Explain { tenant = "movies"; query = q; trace = None })
        in
        match P.provenance_field body "tier" with
        | Some t -> (body, t)
        | None -> Alcotest.failf "no tier in explain body %S" body
      in
      let body1, tier1 = explain 1 in
      let _, tier2 = explain 2 in
      (* cold = real compile work: fresh, or adopting an isomorphic
         skeleton another session of this process already compiled *)
      Alcotest.(check bool)
        (Printf.sprintf "cold query did compile work (got %s)" tier1)
        true
        (List.mem tier1 [ "fresh_compile"; "skeleton_adoption" ]);
      Alcotest.(check string) "warm query hit the plan cache" "cache_hit" tier2;
      Alcotest.(check bool) "cold and cached tiers provably differ" true
        (not (String.equal tier1 tier2));
      Alcotest.(check (option string))
        "backend provenance" (Some "xsketch")
        (P.provenance_field body1 "backend");
      (match P.provenance_field body1 "embeddings" with
      | Some e ->
          Alcotest.(check bool) "embeddings counted" true (int_of_string e >= 1)
      | None -> Alcotest.fail "no embeddings field");
      (* the answer inside the provenance is the engine's answer,
         bitwise — same oracle as the estimate verb *)
      Alcotest.(check (option string))
        "provenance answer matches direct engine"
        (Some (List.hd (direct_answers c.sk_a [ q ])))
        (P.provenance_field body1 "answer"))

(* a client-supplied trace id must reach the serving-layer spans and
   the engine's spans: one trace file, one id, both halves *)
let test_trace_propagation () =
  let c = Lazy.force corpus in
  let module Trace = Xtwig_obs.Trace in
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
        (fun client ->
          let tid = 987654 in
          let _ =
            call_ok client ~id:1
              (P.Estimate
                 { tenant = "movies"; query = List.hd queries; trace = Some tid })
          in
          ()));
  let json = Xtwig_obs.Trace.to_json_string () in
  let needle = Printf.sprintf "\"trace_id\":\"%d\"" 987654 in
  let tagged_lines =
    List.filter (fun l -> contains l needle) (String.split_on_char '\n' json)
  in
  let tagged name =
    List.exists (fun l -> contains l ("\"name\":\"" ^ name)) tagged_lines
  in
  Alcotest.(check bool) "serve.queue_wait carries the client id" true
    (tagged "serve.queue_wait");
  Alcotest.(check bool) "serve.batch carries the client id" true
    (tagged "serve.batch");
  Alcotest.(check bool) "an engine-side span carries the client id" true
    (tagged "engine.");
  match Xtwig_obs.Trace.validate_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "captured trace invalid: %s" e

(* per-tenant SLO: the stats verb reports the declared objective,
   attribution counts and a burn rate *)
let test_stats_reports_slo () =
  let c = Lazy.force corpus in
  let slo =
    [ ("movies", { Xtwig_obs.Slo.p99_s = Some 1.0; err_rate = Some 0.5 }) ]
  in
  with_server ~slo [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
    (fun client ->
      let _ =
        call_ok client ~id:1
          (P.Estimate { tenant = "movies"; query = List.hd queries; trace = None })
      in
      let stats = call_ok client ~id:2 (P.Stats "movies") in
      Alcotest.(check bool) "objective rendered" true
        (contains stats "slo_objective p99:1000ms,err:50%");
      Alcotest.(check bool) "burn rate line present" true
        (contains stats "slo_burn_rate");
      (* attribution line (counters are process-global, so no exact
         counts — the line and its fields must be there) *)
      Alcotest.(check bool) "attribution line present" true
        (contains stats "slo movies: objective");
      Alcotest.(check bool) "attribution counts degraded and shed" true
        (contains stats "degraded" && contains stats "shed"))

(* chaos: probabilistic faults on the request-level serve.* points.
   Gate: every request gets a typed response and serve.uncaught
   stays zero. *)
let test_chaos_uncaught_zero () =
  let c = Lazy.force corpus in
  let uncaught = Metrics.counter "serve.uncaught" in
  let before = Metrics.counter_value uncaught in
  let spec =
    ok_exn
      (Result.map_error
         (fun e -> Xerror.Usage e)
         (Fault.parse_spec
            "seed=11;serve.decode:p0.15;serve.batch:p0.2;serve.reload:p0.5"))
  in
  Fault.install spec;
  Fun.protect ~finally:Fault.disable (fun () ->
      with_server [ ("movies", Catalog.source ~sketch_path:c.sk_a c.doc_path) ]
        (fun client ->
          let n = 60 in
          for id = 1 to n do
            let req =
              if id mod 10 = 0 then P.Reload "movies"
              else
                P.Estimate
                  {
                    tenant = "movies";
                    query = List.nth queries (id mod List.length queries);
                    trace = None;
                  }
            in
            ok_exn (P.Client.send client ~id req)
          done;
          let responses = ref 0 and injected = ref 0 in
          for _ = 1 to n do
            match ok_exn (P.Client.recv client) with
            | _, P.Reply _ -> incr responses
            | _, P.Fail (Xerror.Engine _) ->
                incr responses;
                incr injected
            | _, P.Fail e ->
                Alcotest.failf "unexpected class %s" (Xerror.to_string e)
          done;
          Alcotest.(check int) "every request answered" n !responses;
          Alcotest.(check bool) "chaos actually fired" true (!injected > 0)));
  Alcotest.(check int) "serve.uncaught stayed zero" before
    (Metrics.counter_value uncaught)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing roundtrip, all chunkings" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "oversized frame rejected" `Quick test_frame_oversized;
          Alcotest.test_case "request codec roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response codec roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "bad inputs rejected" `Quick test_bad_inputs_rejected;
          QCheck_alcotest.to_alcotest prop_answer_bitwise;
        ] );
      ( "service",
        [
          Alcotest.test_case "ping/list/stats/metrics" `Quick test_basic_service;
          Alcotest.test_case "served answers match direct engine" `Quick
            test_served_answers_match_direct;
          Alcotest.test_case "hot reload during queries" `Quick
            test_hot_reload_during_queries;
          Alcotest.test_case "failed reload keeps old engine" `Quick
            test_reload_failure_keeps_serving;
          Alcotest.test_case "overload sheds typed errors" `Quick
            test_overload_sheds_typed;
          Alcotest.test_case "explain: cold vs cached tier" `Quick
            test_explain_cold_vs_cached;
          Alcotest.test_case "update over the wire" `Quick
            test_update_over_the_wire;
          Alcotest.test_case "update failure keeps serving" `Quick
            test_update_failure_keeps_serving;
          Alcotest.test_case "trace id propagates client -> engine" `Quick
            test_trace_propagation;
          Alcotest.test_case "stats reports SLO attribution" `Quick
            test_stats_reports_slo;
          Alcotest.test_case "serve.* chaos, uncaught = 0" `Quick
            test_chaos_uncaught_zero;
        ] );
    ]
