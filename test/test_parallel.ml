(* The parallel layer's single correctness claim is determinism:
   worker domains change wall-clock time, never results. These tests
   pin that claim differentially (pooled build == sequential build,
   byte for byte; pooled batch == sequential batch, float for float)
   and exercise the pool/engine failure paths: panic propagation,
   shutdown discipline, per-query timeouts, sketch-format versioning. *)

module Pool = Xtwig_util.Pool
module Fault = Xtwig_fault.Fault
module Prng = Xtwig_util.Prng
module Xerror = Xtwig_util.Xerror
module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Sketch_io = Xtwig_sketch.Sketch_io
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module Engine = Xtwig_engine.Engine

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_submit_await () =
  Pool.with_pool ~domains:2 (fun p ->
      let f = Pool.submit p (fun () -> 6 * 7) in
      Alcotest.(check int) "await" 42 (Pool.await f);
      let fs = List.init 50 (fun i -> Pool.submit p (fun () -> i * i)) in
      List.iteri
        (fun i f -> Alcotest.(check int) "square" (i * i) (Pool.await f))
        fs)

let test_pool_map_array_order () =
  Pool.with_pool ~domains:3 (fun p ->
      let xs = Array.init 100 (fun i -> i) in
      let ys = Pool.map_array p ~f:(fun i x -> (i, x + 1)) xs in
      Array.iteri
        (fun i (j, y) ->
          Alcotest.(check int) "index" i j;
          Alcotest.(check int) "value in input order" (i + 1) y)
        ys)

exception Boom of int

let test_pool_panic_propagation () =
  Pool.with_pool ~domains:2 (fun p ->
      let f = Pool.submit p (fun () -> raise (Boom 7)) in
      (match Pool.await f with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ());
      (* the worker survived its job's panic *)
      let g = Pool.submit p (fun () -> "alive") in
      Alcotest.(check string) "pool survives a panic" "alive" (Pool.await g))

(* a deep enough call chain that the captured backtrace must contain
   at least one frame — [@inline never] keeps it in the trace *)
let[@inline never] rec deep n = if n = 0 then raise (Boom 42) else 1 + deep (n - 1)

let test_pool_panic_backtrace () =
  Pool.with_pool ~domains:1 (fun p ->
      let f = Pool.submit p (fun () -> deep 10) in
      match Pool.await_result f with
      | Ok _ -> Alcotest.fail "expected Boom"
      | Error (Boom 42, bt) ->
          (* regression: workers used to leave backtrace recording off,
             so the stored trace was always empty and the originating
             frame was lost on the domain hop *)
          Alcotest.(check bool)
            "panic carries a non-empty worker backtrace" true
            (Printexc.raw_backtrace_length bt > 0)
      | Error (e, _) -> raise e)

let test_pool_shutdown () =
  let p = Pool.create ~domains:2 () in
  let f = Pool.submit p (fun () -> 1) in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.(check int) "queued job drained before exit" 1 (Pool.await f);
  (match Pool.submit p (fun () -> 2) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_worker_prng () =
  Alcotest.(check bool)
    "no worker index outside a pool" true
    (Pool.worker_index () = None);
  (match Pool.prng () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Pool.with_pool ~seed:11 ~domains:3 (fun p ->
      let draws =
        Pool.map_array p
          ~f:(fun _ () ->
            let i = Option.get (Pool.worker_index ()) in
            (i, Prng.bits64 (Pool.prng ())))
          (Array.make 64 ())
      in
      Array.iter
        (fun (i, _) ->
          Alcotest.(check bool) "worker index in range" true (i >= 0 && i < 3))
        draws;
      (* two different workers never share a stream: group first draws
         by worker and check pairwise distinctness *)
      let first = Hashtbl.create 4 in
      Array.iter
        (fun (i, d) -> if not (Hashtbl.mem first i) then Hashtbl.add first i d)
        draws;
      let vals = Hashtbl.fold (fun _ d acc -> d :: acc) first [] in
      let distinct = List.sort_uniq compare vals in
      Alcotest.(check int)
        "per-worker streams differ"
        (List.length vals) (List.length distinct))

(* A 1-domain pool bypasses the queue and runs jobs inline on the
   submitting domain. The bypass must be observationally identical to
   a spawned single worker: same results in input order, the worker-0
   identity (index and persistent PRNG stream) inside jobs — restored
   outside — and the same scoped fault verdicts as any other pool
   size. *)
let test_pool_inline_bypass_differential () =
  let xs = Array.init 40 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1) xs in
  let results domains =
    Pool.with_pool ~domains (fun p ->
        Pool.map_array p ~f:(fun _ x -> (x * x) + 1) xs)
  in
  Alcotest.(check (array int)) "inline results" expected (results 1);
  Alcotest.(check (array int)) "2-domain results" expected (results 2);
  Pool.with_pool ~seed:3 ~domains:1 (fun p ->
      Alcotest.(check int) "1-domain pool has size 1" 1 (Pool.size p);
      let idx =
        Pool.map_array p
          ~f:(fun _ () -> Option.get (Pool.worker_index ()))
          (Array.make 4 ())
      in
      Array.iter
        (fun i -> Alcotest.(check int) "jobs run as worker 0" 0 i)
        idx;
      Alcotest.(check bool)
        "caller identity restored after inline jobs" true
        (Pool.worker_index () = None);
      (* the PRNG stream is persistent across jobs and calls, exactly
         like a spawned worker draining jobs in submission order: two
         2-draw fan-outs produce the same stream as one 4-draw fan-out
         on a fresh pool with the same seed *)
      let draw p n =
        Pool.map_array p ~f:(fun _ () -> Prng.bits64 (Pool.prng ())) (Array.make n ())
      in
      let a = draw p 2 in
      let b = draw p 2 in
      let c = Pool.with_pool ~seed:3 ~domains:1 (fun p2 -> draw p2 4) in
      Alcotest.(check (array int64))
        "stream continues across fan-outs" c (Array.append a b));
  (* scoped fault verdicts key on the work-unit index, not the pool
     size: the inline path must reproduce the multi-domain verdict
     pattern bit for bit *)
  let verdicts domains =
    (match Fault.parse_spec "seed=21;pool.task:p0.5" with
    | Error e -> Alcotest.fail ("bad spec: " ^ e)
    | Ok sp -> Fault.install sp);
    Fun.protect ~finally:Fault.disable @@ fun () ->
    Pool.with_pool ~domains (fun p ->
        let futs = Array.init 32 (fun i -> Pool.submit ~scope:i p (fun () -> i)) in
        Array.map
          (fun f ->
            match Pool.await_result f with
            | Ok _ -> false
            | Error (Fault.Injected _, _) -> true
            | Error (e, _) -> raise e)
          futs)
  in
  let v1 = verdicts 1 in
  let v2 = verdicts 2 in
  Alcotest.(check (array bool)) "fault verdicts identical" v2 v1;
  Alcotest.(check bool) "scenario fired" true (Array.exists Fun.id v1);
  Alcotest.(check bool) "some jobs survived" true (Array.exists not v1)

(* ------------------------------------------------------------------ *)
(* Differential: pooled XBUILD == sequential XBUILD                    *)

let truth_oracle doc =
  let cache = Hashtbl.create 256 in
  fun q ->
    let k = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add cache k v;
        v

let build_trace ?pool doc ~budget =
  let truth = truth_oracle doc in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with Wgen.n_queries = 8 } prng doc
  in
  let steps = ref [] in
  let sk =
    Xbuild.build ?pool ~seed:3 ~candidates:6 ~max_steps:40 ~workload ~truth
      ~budget
      ~on_step:(fun _ info -> steps := info.Xbuild.description :: !steps)
      doc
  in
  (List.rev !steps, Sketch_io.to_string sk)

let test_build_differential name doc budget () =
  ignore name;
  let steps_seq, bytes_seq = build_trace doc ~budget in
  Pool.with_pool ~domains:3 (fun p ->
      let steps_par, bytes_par = build_trace ~pool:p doc ~budget in
      Alcotest.(check (list string))
        "identical refinement sequence" steps_seq steps_par;
      Alcotest.(check string) "byte-identical synopsis" bytes_seq bytes_par);
  Alcotest.(check bool)
    "build did refine past the coarsest sketch" true
    (List.length steps_seq > 0)

let imdb = lazy (Xtwig_datagen.Imdb.generate ~seed:7 ~scale:0.02 ())
let xmark = lazy (Xtwig_datagen.Xmark.generate ~seed:7 ~scale:0.02 ())

let budgets doc =
  let coarse = Sketch.size_bytes (Sketch.default_of_doc doc) in
  (coarse * 2, coarse * 4)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let build_small doc =
  let truth = truth_oracle doc in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with Wgen.n_queries = 8 } prng doc
  in
  let budget = Sketch.size_bytes (Sketch.default_of_doc doc) * 2 in
  Xbuild.build ~seed:3 ~candidates:6 ~max_steps:30 ~workload ~truth ~budget doc

let queries_for doc n =
  Wgen.generate { Wgen.paper_p with Wgen.n_queries = n } (Prng.create 99) doc

let get = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Xerror.to_string e)

let test_engine_batch_differential () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let qs = queries_for doc 30 in
  let run jobs =
    let eng = get (Engine.of_sketch ~jobs sk) in
    Fun.protect
      ~finally:(fun () -> Engine.close eng)
      (fun () -> get (Engine.estimate_batch eng qs))
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check int) "answer count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Engine.answer) (b : Engine.answer) ->
      Alcotest.(check bool)
        "same query order" true
        (a.Engine.query == b.Engine.query);
      Alcotest.(check bool) "no fallback" false (a.fallback || b.fallback);
      Alcotest.(check (float 0.0))
        "bit-identical estimate" a.Engine.estimate b.Engine.estimate)
    seq par;
  (* and both agree with the one-shot estimator *)
  List.iter2
    (fun q (a : Engine.answer) ->
      Alcotest.(check (float 1e-9)) "matches Estimator.estimate"
        (Est.estimate sk q) a.Engine.estimate)
    qs seq

let test_engine_timeout_fallback () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let qs = queries_for doc 10 in
  (* hang one query: pick a victim with >= 2 embeddings so the
     deadline check between contributions must fire, then make every
     embedding visit of that query sleep past the deadline *)
  let syn = Sketch.synopsis sk in
  let victim =
    List.find (fun q -> List.length (Embed.embeddings syn q) >= 2) qs
  in
  let vkey = Xtwig_path.Path_printer.twig_to_string victim in
  let hang q =
    if Xtwig_path.Path_printer.twig_to_string q = vkey then Unix.sleepf 0.02
  in
  let eng = get (Engine.of_sketch ~jobs:2 ~timeout_s:0.005 ~on_embedding:hang sk) in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let answers = get (Engine.estimate_batch eng qs) in
      let coarse = Sketch.default_of_doc doc in
      List.iter2
        (fun q (a : Engine.answer) ->
          if Xtwig_path.Path_printer.twig_to_string q = vkey then begin
            Alcotest.(check bool) "victim degraded" true a.Engine.fallback;
            Alcotest.(check (float 1e-9))
              "fallback is the coarse label-split estimate"
              (Est.estimate coarse q) a.Engine.estimate
          end)
        qs answers;
      Alcotest.(check bool)
        "victim's timeout counted" true
        ((Engine.stats eng).Engine.timeouts >= 1))

let test_engine_expired_deadline_degrades_all () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let qs = queries_for doc 5 in
  let eng = get (Engine.of_sketch ~jobs:1 sk) in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      (* a deadline already in the past: every answer must still come
         back, flagged, with the coarse estimate *)
      let answers = get (Engine.estimate_batch ~timeout_s:(-1.0) eng qs) in
      let coarse = Sketch.default_of_doc doc in
      List.iter2
        (fun q (a : Engine.answer) ->
          Alcotest.(check bool) "fallback" true a.Engine.fallback;
          Alcotest.(check (float 1e-9))
            "coarse estimate" (Est.estimate coarse q) a.Engine.estimate)
        qs answers)

let test_engine_closed_and_invalid () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let eng = get (Engine.of_sketch sk) in
  Engine.close eng;
  Engine.close eng (* idempotent *);
  (match Engine.estimate_batch eng (queries_for doc 1) with
  | Error (Xerror.Engine _) -> ()
  | Ok _ -> Alcotest.fail "expected Engine error on closed session"
  | Error e -> Alcotest.fail (Xerror.to_string e));
  (match Engine.of_sketch ~jobs:0 sk with
  | Error (Xerror.Engine _) -> ()
  | _ -> Alcotest.fail "expected Engine error on jobs=0");
  match Engine.create ~budget:0 doc with
  | Error (Xerror.Engine _) -> ()
  | _ -> Alcotest.fail "expected Engine error on budget=0"

(* ------------------------------------------------------------------ *)
(* Sketch format versioning                                            *)

(* dune runtest runs with cwd = the test directory; dune exec from the
   project root does not *)
let fixture name =
  if Sys.file_exists (Filename.concat "fixtures" name) then
    Filename.concat "fixtures" name
  else Filename.concat "test/fixtures" name

let tiny_doc () =
  match Xtwig_xml.Xml_parser.parse_file_res (fixture "tiny.xml") with
  | Ok d -> d
  | Error e -> Alcotest.fail (Xerror.to_string e)

let test_v1_fixture_migration () =
  let doc = tiny_doc () in
  let meta, sk = get (Sketch_io.read_res doc (fixture "tiny.sketch.v1")) in
  Alcotest.(check int) "legacy version" 1 meta.Sketch_io.version;
  Alcotest.(check bool) "v1 carries no budget" true (meta.Sketch_io.budget = None);
  Alcotest.(check bool) "v1 carries no seed" true (meta.Sketch_io.seed = None);
  (* the migrated sketch is usable and re-serializes as v2 *)
  let q = get (Xtwig_path.Path_parser.parse_twig_res "for t0 in //movie") in
  Alcotest.(check bool) "estimates" true (Est.estimate sk q > 0.0);
  let text = Sketch_io.to_string ~budget:400 ~seed:5 sk in
  Alcotest.(check bool)
    "re-serialized as v2" true
    (String.length text > 15 && String.sub text 0 15 = "xtwig-sketch/v2");
  let meta2, sk2 = get (Sketch_io.of_string_res doc text) in
  Alcotest.(check int) "v2 after roundtrip" 2 meta2.Sketch_io.version;
  Alcotest.(check bool) "budget preserved" true (meta2.Sketch_io.budget = Some 400);
  Alcotest.(check bool) "seed preserved" true (meta2.Sketch_io.seed = Some 5);
  Alcotest.(check string) "identical body" text (Sketch_io.to_string ~budget:400 ~seed:5 sk2)

let test_unknown_version_rejected () =
  let doc = Lazy.force imdb in
  (match Sketch_io.of_string_res doc "xtwig-sketch/v9\nend\n" with
  | Error (Xerror.Sketch_format msg) ->
      Alcotest.(check bool)
        "message names the magic" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Sketch_format error");
  match Sketch_io.read_res doc (fixture "no-such-file.sketch") with
  | Error (Xerror.Io _) -> ()
  | _ -> Alcotest.fail "expected Io error"

let test_digest_mismatch_rejected () =
  (* a v2 sketch written over one document must be rejected against a
     document with a different tag table *)
  let doc_a = Lazy.force imdb in
  let text = Sketch_io.to_string (Sketch.default_of_doc doc_a) in
  let doc_b = tiny_doc () in
  match Sketch_io.of_string_res doc_b text with
  | Error (Xerror.Sketch_format _) -> ()
  | _ -> Alcotest.fail "expected Sketch_format error on digest mismatch"

(* ------------------------------------------------------------------ *)

let () =
  let diff name doc_lazy =
    let doc = Lazy.force doc_lazy in
    let b1, b2 = budgets doc in
    [
      Alcotest.test_case
        (Printf.sprintf "%s budget %d" name b1)
        `Slow
        (test_build_differential name doc b1);
      Alcotest.test_case
        (Printf.sprintf "%s budget %d" name b2)
        `Slow
        (test_build_differential name doc b2);
    ]
  in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "map_array input order" `Quick
            test_pool_map_array_order;
          Alcotest.test_case "panic propagation" `Quick
            test_pool_panic_propagation;
          Alcotest.test_case "panic keeps worker backtrace" `Quick
            test_pool_panic_backtrace;
          Alcotest.test_case "shutdown discipline" `Quick test_pool_shutdown;
          Alcotest.test_case "worker-local prng" `Quick test_pool_worker_prng;
          Alcotest.test_case "1-domain inline bypass differential" `Quick
            test_pool_inline_bypass_differential;
        ] );
      ("xbuild parallel == sequential", diff "imdb" imdb @ diff "xmark" xmark);
      ( "engine",
        [
          Alcotest.test_case "batch parallel == sequential" `Quick
            test_engine_batch_differential;
          Alcotest.test_case "hung query degrades to coarse" `Quick
            test_engine_timeout_fallback;
          Alcotest.test_case "expired deadline degrades all" `Quick
            test_engine_expired_deadline_degrades_all;
          Alcotest.test_case "closed session and invalid args" `Quick
            test_engine_closed_and_invalid;
        ] );
      ( "sketch format",
        [
          Alcotest.test_case "v1 fixture migrates" `Quick
            test_v1_fixture_migration;
          Alcotest.test_case "unknown version rejected" `Quick
            test_unknown_version_rejected;
          Alcotest.test_case "tag-digest mismatch rejected" `Quick
            test_digest_mismatch_rejected;
        ] );
    ]
