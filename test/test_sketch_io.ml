module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Sketch_io = Xtwig_sketch.Sketch_io
module Est = Xtwig_sketch.Estimator
module Ref = Xtwig_sketch.Refinement
module Fx = Xtwig_fixtures.Fixtures
module Xerror = Xtwig_util.Xerror

let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xerror.to_string e)

let of_string_exn doc text =
  match Sketch_io.of_string_res doc text with
  | Ok (_, sk) -> sk
  | Error e -> failwith (Xerror.to_string e)

let refined_sketch doc =
  let sk = Sketch.default_of_doc doc in
  let syn = Sketch.synopsis sk in
  (* make the configuration non-trivial: a split and a budget bump *)
  let sk =
    match G.nodes_with_label syn "title" with
    | t :: _ ->
        let e = List.hd (G.in_edges syn t) in
        Ref.apply sk (Ref.B_stabilize { src = e.src; dst = e.dst })
    | [] -> sk
  in
  let syn = Sketch.synopsis sk in
  match G.nodes_with_label syn "paper" with
  | p :: _ when (Sketch.config sk).especs.(p) <> [] ->
      Ref.apply sk (Ref.Edge_refine { node = p; hist = 0; extra_buckets = 4 })
  | _ -> sk

let queries =
  [
    "for t0 in //author, t1 in t0/paper, t2 in t1/keyword";
    "for t0 in //paper[year[. > 2000]], t1 in t0/title";
    "for t0 in //author[book], t1 in t0/name";
  ]

let test_roundtrip_estimates () =
  let doc = Fx.bibliography () in
  let sk = refined_sketch doc in
  let sk' = of_string_exn doc (Sketch_io.to_string sk) in
  Alcotest.(check int) "same size" (Sketch.size_bytes sk) (Sketch.size_bytes sk');
  List.iter
    (fun s ->
      let q = parse_t s in
      Alcotest.(check (float 1e-9)) s (Est.estimate sk q) (Est.estimate sk' q))
    queries

let test_roundtrip_file () =
  let doc = Fx.bibliography () in
  let sk = refined_sketch doc in
  let path = Filename.temp_file "xtwig_sketch" ".sketch" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Sketch_io.write_res sk path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Xerror.to_string e));
      let sk' =
        match Sketch_io.read_res doc path with
        | Ok (_, sk') -> sk'
        | Error e -> Alcotest.failf "read: %s" (Xerror.to_string e)
      in
      let q = parse_t (List.hd queries) in
      Alcotest.(check (float 1e-9)) "file roundtrip" (Est.estimate sk q)
        (Est.estimate sk' q))

let test_document_mismatch () =
  let doc = Fx.bibliography () in
  let other = Fx.movie_fragment () in
  let text = Sketch_io.to_string (Sketch.default_of_doc doc) in
  Alcotest.(check bool) "mismatch refused" true
    (match Sketch_io.of_string_res other text with
    | Error (Xerror.Sketch_format _) -> true
    | _ -> false)

let test_garbage_refused () =
  let doc = Fx.bibliography () in
  List.iter
    (fun text ->
      Alcotest.(check bool) ("refuses " ^ String.escaped text) true
        (match Sketch_io.of_string_res doc text with
        | Error (Xerror.Sketch_format _ | Xerror.Corrupt _) -> true
        | _ -> false))
    [
      "";
      "not a sketch\nelements 0\ntags x\nnodes 0\npartition \nend";
      "xtwig-sketch v1\nelements 99\ntags x\nnodes 1\npartition 0*99\nend";
    ]

let test_roundtrip_after_xbuild () =
  let doc = Xtwig_datagen.Imdb.generate ~scale:0.02 () in
  let truth q = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
  let workload prng ~focus =
    Xtwig_workload.Wgen.generate ~focus
      { Xtwig_workload.Wgen.paper_p with n_queries = 6 }
      prng doc
  in
  let sk =
    Xtwig_sketch.Xbuild.build ~seed:3 ~max_steps:25 ~budget:3000 ~workload ~truth doc
  in
  let sk' = of_string_exn doc (Sketch_io.to_string sk) in
  let q = parse_t "for t0 in //movie, t1 in t0/actor, t2 in t0/producer" in
  Alcotest.(check (float 1e-9)) "xbuild result roundtrips" (Est.estimate sk q)
    (Est.estimate sk' q)

let () =
  Alcotest.run "sketch-io"
    [
      ( "persistence",
        [
          Alcotest.test_case "string roundtrip" `Quick test_roundtrip_estimates;
          Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
          Alcotest.test_case "document mismatch" `Quick test_document_mismatch;
          Alcotest.test_case "garbage refused" `Quick test_garbage_refused;
          Alcotest.test_case "xbuild roundtrip" `Slow test_roundtrip_after_xbuild;
        ] );
    ]
