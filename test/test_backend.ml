(* The Estimator_backend registry and the generic engine path: both
   built-in backends resolve, build and estimate; the generic
   of_backend session agrees with the direct backend estimate; the
   xsketch backend agrees with the dedicated sketch session. *)

module Backend = Xtwig.Backend
module Engine = Xtwig.Engine
module Xerror = Xtwig.Xerror

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Xerror.to_string e)

let doc = lazy (Xtwig_datagen.Imdb.generate ~scale:0.02 ())

let queries =
  [
    "for t0 in //movie, t1 in t0/actor";
    "for t0 in //movie, t1 in t0/actor, t2 in t0/producer";
    "for t0 in //movie[genre], t1 in t0/keyword";
  ]

let twigs () = List.map (fun q -> ok_exn (Xtwig.twig_of_string q)) queries

let test_registry () =
  let names = Backend.names () in
  Alcotest.(check bool) "xsketch registered" true (List.mem "xsketch" names);
  Alcotest.(check bool) "cst registered" true (List.mem "cst" names);
  (match Backend.find "XSketch" with
  | Ok (module B) -> Alcotest.(check string) "case-insensitive" "xsketch" B.name
  | Error e -> Alcotest.failf "find XSketch: %s" (Xerror.to_string e));
  match Backend.find "nope" with
  | Error (Xerror.Usage msg) ->
      (* a miss must name the alternatives *)
      Alcotest.(check bool) "usage error lists backends" true
        (List.for_all
           (fun n ->
             let nh = String.length msg and nn = String.length n in
             let rec at i =
               i + nn <= nh && (String.sub msg i nn = n || at (i + 1))
             in
             at 0)
           names)
  | Error e -> Alcotest.failf "wrong class: %s" (Xerror.to_string e)
  | Ok _ -> Alcotest.fail "unknown backend resolved"

let test_build_and_estimate () =
  let doc = Lazy.force doc in
  List.iter
    (fun backend ->
      let inst = ok_exn (Xtwig.build_backend ~backend ~budget:4000 doc) in
      Alcotest.(check string) "name_of" backend (Backend.name_of inst);
      Alcotest.(check bool)
        (backend ^ " size positive")
        true
        (Backend.size_bytes inst > 0);
      List.iter
        (fun t ->
          let e = Backend.estimate inst t in
          let c = Backend.coarse inst t in
          Alcotest.(check bool)
            (backend ^ " estimate finite, nonnegative")
            true
            (Float.is_finite e && e >= 0.0);
          Alcotest.(check bool)
            (backend ^ " coarse finite, nonnegative")
            true
            (Float.is_finite c && c >= 0.0))
        (twigs ()))
    [ "xsketch"; "cst" ]

let test_cst_has_no_persistence () =
  let doc = Lazy.force doc in
  match Xtwig.load_backend ~backend:"cst" doc "/nonexistent.sketch" with
  | Error (Xerror.Sketch_format _) -> ()
  | Error e -> Alcotest.failf "wrong class: %s" (Xerror.to_string e)
  | Ok _ -> Alcotest.fail "cst loaded a sketch"

let test_generic_session_matches_direct () =
  let doc = Lazy.force doc in
  List.iter
    (fun backend ->
      let inst = ok_exn (Xtwig.build_backend ~backend ~budget:4000 doc) in
      let engine = ok_exn (Xtwig.open_backend_session ~name:"t" inst) in
      Fun.protect
        ~finally:(fun () -> Xtwig.close_session engine)
        (fun () ->
          let answers = ok_exn (Xtwig.estimate_batch engine (twigs ())) in
          List.iter2
            (fun (a : Engine.answer) t ->
              Alcotest.(check bool) "no fallback" false a.Engine.fallback;
              Alcotest.(check (float 0.0))
                (backend ^ " session = direct estimate")
                (Backend.estimate inst t) a.Engine.estimate)
            answers (twigs ());
          let stats = Engine.stats engine in
          Alcotest.(check string) "stats backend" backend stats.Engine.backend;
          Alcotest.(check string) "stats tenant name" "t" stats.Engine.name;
          Alcotest.(check int) "queries counted" (List.length queries)
            stats.Engine.queries_served))
    [ "xsketch"; "cst" ]

let test_xsketch_backend_matches_sketch_session () =
  let doc = Lazy.force doc in
  let sketch = ok_exn (Xtwig.build_sketch ~budget:4000 doc) in
  let generic =
    ok_exn (Xtwig.open_backend_session (Backend.of_sketch sketch))
  in
  let dedicated = ok_exn (Xtwig.open_sketch_session sketch) in
  Fun.protect
    ~finally:(fun () ->
      Xtwig.close_session generic;
      Xtwig.close_session dedicated)
    (fun () ->
      let a = ok_exn (Xtwig.estimate_batch generic (twigs ())) in
      let b = ok_exn (Xtwig.estimate_batch dedicated (twigs ())) in
      List.iter2
        (fun (x : Engine.answer) (y : Engine.answer) ->
          Alcotest.(check bool) "bitwise equal paths" true
            (Int64.equal
               (Int64.bits_of_float x.Engine.estimate)
               (Int64.bits_of_float y.Engine.estimate)))
        a b)

let () =
  Alcotest.run "backend"
    [
      ( "registry",
        [
          Alcotest.test_case "builtin backends resolve" `Quick test_registry;
          Alcotest.test_case "build + estimate both backends" `Quick
            test_build_and_estimate;
          Alcotest.test_case "cst refuses load" `Quick test_cst_has_no_persistence;
        ] );
      ( "engine",
        [
          Alcotest.test_case "generic session matches direct" `Quick
            test_generic_session_matches_direct;
          Alcotest.test_case "xsketch backend matches sketch session" `Quick
            test_xsketch_backend_matches_sketch_session;
        ] );
    ]
