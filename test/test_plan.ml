(* Compiled-plan tests: [Estimator.estimate] (compile-then-run) must
   be bit-identical to [Estimator.estimate_reference] (the recursive
   evaluator) — across datasets, workloads and refinement budgets —
   and the plan cache must stay correct through reuse, histogram-only
   invalidation (the repatch path) and structural invalidation. *)

module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Refinement = Xtwig_sketch.Refinement
module Embed = Xtwig_sketch.Embed
module Est = Xtwig_sketch.Estimator
module Plan = Xtwig_sketch.Plan
module Xbuild = Xtwig_sketch.Xbuild
module Edge_hist = Xtwig_hist.Edge_hist
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng
module Counters = Xtwig_util.Counters
module Fault = Xtwig_fault.Fault

let docs =
  lazy
    [
      ("imdb", Xtwig_datagen.Imdb.generate ~scale:0.03 ());
      ("sprot", Xtwig_datagen.Sprot.generate ~scale:0.03 ());
    ]

let queries_of doc =
  Wgen.generate { Wgen.paper_p with Wgen.n_queries = 30 } (Prng.create 17) doc

(* An XBUILD run at [budget_mult] x the coarsest size: exercises plans
   over sketches that mix refined histograms, expanded dimensions,
   value summaries and structural splits. *)
let refined doc ~budget_mult =
  let truth q = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with Wgen.n_queries = 8 } prng doc
  in
  let budget = Sketch.size_bytes (Sketch.default_of_doc doc) * budget_mult in
  Xbuild.build ~seed:5 ~candidates:4 ~max_steps:12 ~workload ~truth ~budget doc

(* 1. Compiled estimates are bit-equal to the reference evaluator on
   every dataset, at every refinement budget, for every query. *)
let test_compiled_equals_reference () =
  List.iter
    (fun (name, doc) ->
      let queries = queries_of doc in
      let sketches =
        ("coarsest", Sketch.default_of_doc doc)
        :: List.map
             (fun m -> (Printf.sprintf "budget x%d" m, refined doc ~budget_mult:m))
             [ 2; 4; 8 ]
      in
      List.iter
        (fun (sname, sk) ->
          List.iteri
            (fun i q ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s/%s: q%d" name sname i)
                (Est.estimate_reference sk q)
                (Est.estimate sk q))
            queries)
        sketches)
    (Lazy.force docs)

(* 2. The plan cache serves hits without changing values. *)
let test_plan_cache_hits () =
  let _, doc = List.hd (Lazy.force docs) in
  let sk = refined doc ~budget_mult:4 in
  let queries = queries_of doc in
  let cache = Embed.create_cache (Sketch.synopsis sk) in
  let plans = Plan.create_cache (Sketch.synopsis sk) in
  Counters.reset_all ();
  List.iter
    (fun q ->
      let plain = Est.estimate_reference sk q in
      let cold = Est.estimate ~cache ~plans sk q in
      let warm = Est.estimate ~cache ~plans sk q in
      Alcotest.(check (float 0.0)) "cold cached estimate" plain cold;
      Alcotest.(check (float 0.0)) "warm cached estimate" plain warm)
    queries;
  Alcotest.(check bool)
    "plan cache hits recorded" true
    (Counters.get "plan.cache_hits" > 0);
  (* a frozen cache still serves valid plans *)
  Plan.freeze plans;
  let q = List.hd queries in
  Alcotest.(check (float 0.0))
    "frozen plan cache still correct"
    (Est.estimate_reference sk q)
    (Est.estimate ~cache ~plans sk q)

(* One histogram-only op (same synopsis, same dimension structure) and
   one structure-changing op for the invalidation tests. The refined
   node must carry a histogram some query's embeddings actually visit,
   or every cached plan stays valid and nothing invalidates. *)
(* Synopsis nodes appearing as tree nodes of some embedding — the only
   nodes whose histograms compiled plans consult ([visited_nodes] also
   lists branch-predicate nodes, which plans read through the synopsis,
   not through histograms). *)
let tree_nodes syn queries =
  let seen = Hashtbl.create 32 in
  let rec walk (e : Embed.enode) =
    Hashtbl.replace seen e.Embed.snode ();
    List.iter (List.iter walk) e.Embed.kids
  in
  List.iter (fun q -> List.iter walk (Embed.embeddings syn q)) queries;
  List.sort_uniq compare (Hashtbl.fold (fun k () a -> k :: a) seen [])

let hist_only_op sk queries =
  let cfg = Sketch.config sk in
  let syn = Sketch.synopsis sk in
  let visited = tree_nodes syn queries in
  (* plan validity keys on the interned bucket tables, so the op only
     invalidates if some table at the node physically changes (a
     refinement of an already-exact histogram re-interns to the same
     table and leaves every plan valid) *)
  let changes_a_table n =
    let try_hist i =
      let op = Refinement.Edge_refine { node = n; hist = i; extra_buckets = 4 } in
      let applied = Refinement.apply sk op in
      if
        applied != sk
        && Sketch.synopsis applied == syn
        && List.exists2
             (fun (_, a) (_, b) -> Edge_hist.table a != Edge_hist.table b)
             (Sketch.hists sk n) (Sketch.hists applied n)
      then Some applied
      else None
    in
    List.find_map try_hist (List.mapi (fun i _ -> i) cfg.Sketch.especs.(n))
  in
  match List.find_map changes_a_table visited with
  | Some r -> r
  | None -> Alcotest.failf "no table-changing histogram refinement found"

let structural_op sk queries =
  let syn = Sketch.synopsis sk in
  let nodes = tree_nodes syn queries in
  (* "structural" from the plan's point of view: either the dimension
     shape of a tree node's histograms changes (repatch must bail) or
     the synopsis itself does (the cache is bypassed entirely) *)
  let dims_changed a b =
    List.compare_lengths a b <> 0
    || List.exists2 (fun (da, _) (db, _) -> da <> db) a b
  in
  let changes n =
    let expand =
      List.find_map
        (fun (s, d) ->
          let kind = if s = n then Sketch.Forward else Sketch.Backward in
          let op =
            Refinement.Edge_expand
              { node = n; dim = { Sketch.src = s; dst = d; kind }; into = None }
          in
          let applied = Refinement.apply sk op in
          if
            applied != sk
            && Sketch.synopsis applied == syn
            && dims_changed (Sketch.hists sk n) (Sketch.hists applied n)
          then Some applied
          else None)
        (Sketch.dim_edges_of_node sk n)
    in
    match expand with
    | Some _ -> expand
    | None ->
        let applied =
          Refinement.apply sk (Refinement.Value_split { node = n; ways = 2 })
        in
        if applied != sk && Sketch.synopsis applied != syn then Some applied
        else None
  in
  match List.find_map changes nodes with
  | Some r -> r
  | None -> Alcotest.failf "no effective structure-changing op"

(* 3. Refining a histogram invalidates cached plans; the repaired
   (repatched or recompiled) plans are bit-equal to the reference on
   the refined sketch. *)
let test_plan_cache_invalidation () =
  let _, doc = List.hd (Lazy.force docs) in
  (* start from the coarsest sketch: its histograms are lossy, so a
     refinement genuinely changes bucket tables *)
  let sk = Sketch.default_of_doc doc in
  let queries = queries_of doc in
  let cache = Embed.create_cache (Sketch.synopsis sk) in
  let plans = Plan.create_cache (Sketch.synopsis sk) in
  (* warm the cache against [sk] *)
  List.iter (fun q -> ignore (Est.estimate ~cache ~plans sk q)) queries;
  let refined_sk = hist_only_op sk queries in
  Counters.reset_all ();
  List.iteri
    (fun i q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "after Edge_refine: q%d" i)
        (Est.estimate_reference refined_sk q)
        (Est.estimate ~cache ~plans refined_sk q))
    queries;
  Alcotest.(check bool)
    "invalidations recorded" true
    (Counters.get "plan.cache_invalidations" > 0);
  Alcotest.(check bool)
    "histogram-only invalidation repatches instead of recompiling" true
    (Counters.get "plan.repatches" > 0);
  (* the payload-only op must never reach the structure phase: every
     stale entry is cause=payload, none structure, zero compiles *)
  Alcotest.(check bool)
    "payload cause recorded" true
    (Counters.get "plan.invalidation{cause=payload}" > 0);
  Alcotest.(check int)
    "no structure-cause invalidations" 0
    (Counters.get "plan.invalidation{cause=structure}");
  Alcotest.(check int)
    "payload-only refinement compiles nothing" 0
    (Counters.get "plan.compiles");
  (* re-enumerating the same queries (a fresh embedding cache) replaces
     entries without any sketch drift: an eviction, not an
     invalidation — and the structurally-identical enumeration is
     repatched, not recompiled *)
  let cache2 = Embed.create_cache (Sketch.synopsis refined_sk) in
  Counters.reset_all ();
  List.iteri
    (fun i q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "re-enumerated: q%d" i)
        (Est.estimate_reference refined_sk q)
        (Est.estimate ~cache:cache2 ~plans refined_sk q))
    queries;
  Alcotest.(check bool)
    "evictions recorded" true
    (Counters.get "plan.invalidation{cause=evict}" > 0);
  Alcotest.(check int)
    "evictions are not invalidations" 0
    (Counters.get "plan.cache_invalidations");
  Alcotest.(check int)
    "re-enumeration repatches under the structural remap" 0
    (Counters.get "plan.compiles");
  (* a structure-changing op must fall back to the full compiler and
     still agree with the reference *)
  let structural = structural_op sk queries in
  Counters.reset_all ();
  List.iteri
    (fun i q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "after structural op: q%d" i)
        (Est.estimate_reference structural q)
        (* [cache2] holds the enumeration the plan entries now carry,
           so a same-synopsis structural op exercises the genuine
           invalidation path rather than an eviction *)
        (Est.estimate ~cache:cache2 ~plans structural q))
    queries;
  Alcotest.(check bool)
    "structural change recompiles" true
    (Counters.get "plan.compiles" > 0);
  if Sketch.synopsis structural == Sketch.synopsis sk then
    (* the plan cache was consulted (same synopsis): the recompiles
       must have been accounted as structure-cause invalidations *)
    Alcotest.(check bool)
      "structure cause recorded" true
      (Counters.get "plan.invalidation{cause=structure}" > 0)

(* 4. The interpreter is a zero-allocation kernel: once the per-domain
   arena has grown to the largest plan, a [run_batch] over every plan
   of every query allocates zero minor words — no closures, no float
   boxing, no scratch arrays. ([Gc.minor_words] itself is [@@noalloc]
   with an unboxed float return, and the samples are stored straight
   into a preallocated float array, so the measurement does not
   perturb the measured.) *)
let test_run_batch_zero_alloc () =
  let _, doc = List.hd (Lazy.force docs) in
  let sk = refined doc ~budget_mult:4 in
  let syn = Sketch.synopsis sk in
  let queries = queries_of doc in
  let per_query =
    List.map
      (fun q -> Plan.compile_roots sk (Embed.embeddings syn q))
      queries
  in
  let plans = Array.concat per_query in
  Alcotest.(check bool) "some plans to run" true (Array.length plans > 0);
  let out = Array.make (Array.length plans) 0.0 in
  let words = Array.make 2 0.0 in
  (* warm-up: grows the arena and faults in the code paths *)
  Plan.run_batch plans out;
  words.(0) <- Gc.minor_words ();
  Plan.run_batch plans out;
  words.(1) <- Gc.minor_words ();
  Alcotest.(check (float 0.0))
    "steady-state run_batch allocates zero minor words" 0.0
    (words.(1) -. words.(0));
  (* and the batch results are the reference estimates *)
  let off = ref 0 in
  List.iteri
    (fun i q ->
      let n = Array.length (List.nth per_query i) in
      let sum = ref 0.0 in
      for j = !off to !off + n - 1 do
        sum := !sum +. out.(j)
      done;
      off := !off + n;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "batch sum equals reference: q%d" i)
        (Est.estimate_reference sk q)
        !sum)
    queries

(* 5. Differential under injected faults: when plan/embedding cache
   fills fail intermittently and the caller retries, every eventually
   successful estimate — including those served by plans repatched
   after a histogram refinement — is still bit-equal to the reference
   evaluator, and the cache never serves a value computed from a
   half-filled entry. *)
let test_plan_fill_faults_retry_differential () =
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let _, doc = List.hd (Lazy.force docs) in
  let sk = Sketch.default_of_doc doc in
  let queries = queries_of doc in
  let expected = List.map (Est.estimate_reference sk) queries in
  let cache = Embed.create_cache (Sketch.synopsis sk) in
  let plans = Plan.create_cache (Sketch.synopsis sk) in
  let rec with_retry k f =
    match f () with
    | v -> v
    | exception Fault.Injected _ when k > 0 -> with_retry (k - 1) f
  in
  (match Fault.parse_spec "seed=11;plan.fill:p0.5;embed.fill:p0.3" with
  | Error e -> Alcotest.fail ("bad spec: " ^ e)
  | Ok sp -> Fault.install sp);
  List.iteri
    (fun i q ->
      let got = with_retry 100 (fun () -> Est.estimate ~cache ~plans sk q) in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "retried fill: q%d" i)
        (List.nth expected i) got)
    queries;
  Alcotest.(check bool) "the scenario actually fired" true
    (Fault.injected_count () > 0);
  (* warm entries survived the storm: with injection off, the cache
     serves every query, still bit-equal *)
  Fault.disable ();
  List.iteri
    (fun i q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "post-storm cache: q%d" i)
        (List.nth expected i)
        (Est.estimate ~cache ~plans sk q))
    queries;
  (* a histogram refinement now forces the repatch path; faulting its
     fills and retrying must converge to the refined reference *)
  let refined_sk = hist_only_op sk queries in
  (match Fault.parse_spec "seed=12;plan.fill:p0.5" with
  | Error e -> Alcotest.fail ("bad spec: " ^ e)
  | Ok sp -> Fault.install sp);
  List.iteri
    (fun i q ->
      let got =
        with_retry 100 (fun () -> Est.estimate ~cache ~plans refined_sk q)
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "repatch under faults: q%d" i)
        (Est.estimate_reference refined_sk q)
        got)
    queries

let () =
  Alcotest.run "plan"
    [
      ( "compiled-plans",
        [
          Alcotest.test_case
            "compiled == reference (2 datasets x 4 budgets x 30 queries)" `Slow
            test_compiled_equals_reference;
          Alcotest.test_case "plan cache hits, values unchanged" `Quick
            test_plan_cache_hits;
          Alcotest.test_case "invalidation: repatch + recompile correct" `Quick
            test_plan_cache_invalidation;
          Alcotest.test_case "run_batch allocates zero minor words" `Quick
            test_run_batch_zero_alloc;
          Alcotest.test_case "fill faults + retry: differential vs reference"
            `Quick test_plan_fill_faults_retry_differential;
        ] );
    ]
