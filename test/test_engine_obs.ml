(* Engine observability: a query whose deadline expires must degrade
   to the coarse label-split estimate, flag the answer, bump the
   engine.timeouts metric, and carry a trace id that correlates the
   answer with its spans in a trace dump. *)

module Metrics = Xtwig_obs.Metrics
module Trace = Xtwig_obs.Trace
module Prng = Xtwig_util.Prng
module Xerror = Xtwig_util.Xerror
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module Engine = Xtwig_engine.Engine

let imdb = lazy (Xtwig_datagen.Imdb.generate ~seed:7 ~scale:0.02 ())

let get = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Xerror.to_string e)

let truth_oracle doc =
  let cache = Hashtbl.create 256 in
  fun q ->
    let k = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add cache k v;
        v

let build_small doc =
  let truth = truth_oracle doc in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with Wgen.n_queries = 8 } prng doc
  in
  let budget = Sketch.size_bytes (Sketch.default_of_doc doc) * 2 in
  Xbuild.build ~seed:3 ~candidates:6 ~max_steps:30 ~workload ~truth ~budget doc

(* a deep-branching twig: embedding counts multiply along the branches,
   so its evaluation has many deadline checkpoints *)
let deep_twig () =
  get
    (Xtwig_path.Path_parser.parse_twig_res
       "for t0 in //movie, t1 in t0/actor, t2 in t0/producer, t3 in \
        t0/keyword")

let test_timeout_bumps_metric () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let q = deep_twig () in
  let before = Metrics.snapshot () in
  let eng = get (Engine.of_sketch ~timeout_s:1e-9 sk) in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let a = get (Engine.estimate eng q) in
      Alcotest.(check bool) "fallback flagged" true a.Engine.fallback;
      let coarse = Sketch.default_of_doc doc in
      Alcotest.(check (float 1e-9))
        "estimate is the coarse label-split estimate"
        (Est.estimate coarse q) a.Engine.estimate;
      Alcotest.(check bool) "trace id assigned" true (a.Engine.trace_id > 0);
      Alcotest.(check bool) "elapsed recorded" true (a.Engine.elapsed_s >= 0.0);
      let d = Metrics.diff before (Metrics.snapshot ()) in
      Alcotest.(check int) "engine.timeouts bumped" 1
        (Metrics.counter_of d "engine.timeouts");
      Alcotest.(check int) "engine.queries bumped" 1
        (Metrics.counter_of d "engine.queries");
      (* the labeled fallback counter carries the reason *)
      let fb =
        List.find_opt
          (fun (e : Metrics.entry) ->
            e.Metrics.name = "engine.fallback"
            && e.Metrics.labels = [ ("reason", "timeout") ])
          d
      in
      match fb with
      | Some { Metrics.value = Metrics.Counter 1; _ } -> ()
      | _ -> Alcotest.fail "engine.fallback{reason=timeout} not bumped by 1")

let test_no_timeout_no_bump () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let q = deep_twig () in
  let before = Metrics.snapshot () in
  let eng = get (Engine.of_sketch ~timeout_s:60.0 sk) in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let a = get (Engine.estimate eng q) in
      Alcotest.(check bool) "no fallback" false a.Engine.fallback;
      Alcotest.(check (float 1e-9))
        "full-sketch estimate" (Est.estimate sk q) a.Engine.estimate;
      let d = Metrics.diff before (Metrics.snapshot ()) in
      Alcotest.(check int) "no timeout counted" 0
        (Metrics.counter_of d "engine.timeouts");
      (* the query landed in the latency histogram *)
      match Metrics.find d "engine.query.seconds" with
      | Some (Metrics.Histogram v) ->
          Alcotest.(check int) "one latency observation" 1 v.Metrics.count
      | _ -> Alcotest.fail "engine.query.seconds missing from diff")

let test_batch_trace_ids_and_spans () =
  let doc = Lazy.force imdb in
  let sk = build_small doc in
  let qs =
    Wgen.generate { Wgen.paper_p with Wgen.n_queries = 5 } (Prng.create 99) doc
  in
  Trace.enable ();
  Trace.reset ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let eng = get (Engine.of_sketch ~jobs:2 sk) in
  let answers =
    Fun.protect
      ~finally:(fun () -> Engine.close eng)
      (fun () -> get (Engine.estimate_batch eng qs))
  in
  (* one batch = one trace id, shared by every answer *)
  let ids =
    List.sort_uniq compare (List.map (fun a -> a.Engine.trace_id) answers)
  in
  Alcotest.(check int) "one trace id per batch" 1 (List.length ids);
  Alcotest.(check bool) "id is positive" true (List.hd ids > 0);
  (* a second batch gets a fresh id *)
  let eng2 = get (Engine.of_sketch sk) in
  let answers2 =
    Fun.protect
      ~finally:(fun () -> Engine.close eng2)
      (fun () -> get (Engine.estimate_batch eng2 qs))
  in
  Alcotest.(check bool) "ids advance across batches" true
    ((List.hd answers2).Engine.trace_id > List.hd ids);
  (* the trace is well-formed and contains the per-query spans *)
  let js = Trace.to_json_string () in
  (match Trace.validate_string js with
  | Ok n ->
      Alcotest.(check bool)
        "at least one span per query across both batches" true
        (n >= 2 * List.length qs)
  | Error e -> Alcotest.fail e);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "engine.query spans present" true
    (contains "engine.query" js);
  Alcotest.(check bool) "batch span present" true
    (contains "engine.estimate_batch" js)

let () =
  Alcotest.run "engine_obs"
    [
      ( "engine observability",
        [
          Alcotest.test_case "timeout degrades and bumps engine.timeouts"
            `Quick test_timeout_bumps_metric;
          Alcotest.test_case "no timeout, latency histogram observed" `Quick
            test_no_timeout_no_bump;
          Alcotest.test_case "batch trace ids and spans" `Quick
            test_batch_trace_ids_and_spans;
        ] );
    ]
