(* The streaming-ingestion path of PR 9.

   Claims under test:
   - the chunked SAX parser produces documents identical to the
     retained PR-8 reference parser — same node ids, tag codes,
     parents, values — on canned corner cases, fixtures and generated
     datasets, at every window size down to 1 byte;
   - parse errors keep the reference parser's class and message;
   - Sketch.apply_delta upholds its differential contract: the
     delta-maintained sketch re-serializes byte-identical to a
     from-scratch build over the same synopsis + configuration, with
     and without summary reuse, for inserts of known tags, inserts of
     fresh tags, and subtree deletes;
   - value summaries survive the edge inputs (empty text nodes,
     duplicate values straddling bucket boundaries, all-equal
     columns) under both the build and the delta paths;
   - Engine.update swaps a live session onto the maintained sketch
     (answers bitwise equal to a fresh session over the same sketch)
     and fails typed on backend sessions and closed sessions. *)

module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module P = Xtwig_xml.Xml_parser
module Sax = Xtwig_xml.Sax
module W = Xtwig_xml.Xml_writer
module Sketch = Xtwig_sketch.Sketch
module Sketch_io = Xtwig_sketch.Sketch_io
module Est = Xtwig_sketch.Estimator
module Xerror = Xtwig_util.Xerror
module Counters = Xtwig_util.Counters

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Xerror.to_string e)

let parse s = ok_exn (P.parse_string_res s)

(* index-wise document equality: the parsers promise identical node
   numbering, not just structural equivalence *)
let check_docs_identical msg a b =
  Alcotest.(check int) (msg ^ ": size") (Doc.size a) (Doc.size b);
  for e = 0 to Doc.size a - 1 do
    if
      not
        (String.equal (Doc.tag_name a e) (Doc.tag_name b e)
        && Doc.tag a e = Doc.tag b e
        && Doc.parent a e = Doc.parent b e
        && Value.equal (Doc.value a e) (Doc.value b e)
        && Doc.children a e = Doc.children b e)
    then Alcotest.failf "%s: node %d differs" msg e
  done

(* ------------------------------------------------------------------ *)
(* Streaming parser vs reference parser *)

let corner_cases =
  [
    "<a><b>1</b><c x=\"2\"><d/></c></a>";
    "<a>x &amp; y &lt;z&gt; &#65;</a>";
    "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a><!-- bye -->";
    "<a><![CDATA[<not-a-tag>]]></a>";
    "<a>  one <b/> two  <b>3.5</b>tail</a>";
    "<r a='1' b=\"t&quot;x\">mid<child k=\"\"><gc/>deep</child> end </r>";
  ]

let test_differential_corner_cases () =
  List.iter
    (fun s ->
      let a = parse s in
      let b = ok_exn (P.reference_parse_string_res s) in
      check_docs_identical s a b)
    corner_cases

let test_differential_chunk_sizes () =
  (* every refill/compaction boundary: windows far smaller than any
     token force mid-name, mid-text and mid-entity refills *)
  List.iter
    (fun s ->
      let b = ok_exn (P.reference_parse_string_res s) in
      List.iter
        (fun chunk ->
          let a = Sax.parse_string ~chunk s in
          check_docs_identical (Printf.sprintf "%s (chunk %d)" s chunk) a b)
        [ 1; 2; 3; 7; 16 ])
    corner_cases

let test_differential_fixtures_and_datasets () =
  List.iter
    (fun doc ->
      let s = W.to_string doc in
      let a = parse s in
      let b = ok_exn (P.reference_parse_string_res s) in
      check_docs_identical "fixture/dataset" a b;
      (* a bounded window on a realistic input exercises many refills *)
      check_docs_identical "chunk 997" (Sax.parse_string ~chunk:997 s) b;
      (* re-serialization closes the roundtrip *)
      Alcotest.(check string) "re-serialization" s (W.to_string a))
    [
      Xtwig_fixtures.Fixtures.bibliography ();
      Xtwig_fixtures.Fixtures.figure_4_doc_a ();
      Xtwig_datagen.Imdb.generate ~scale:0.02 ();
      Xtwig_datagen.Xmark.generate ~scale:0.02 ();
    ]

let test_error_parity () =
  List.iter
    (fun s ->
      match (P.parse_string_res s, P.reference_parse_string_res s) with
      | Error (Xerror.Parse (Xml, m1)), Error (Xerror.Parse (Xml, m2)) ->
          Alcotest.(check string) ("error message for " ^ s) m2 m1
      | Ok _, Ok _ -> Alcotest.failf "both parsers accepted %s" s
      | r, _ ->
          Alcotest.failf "parsers disagree on %s: %s" s
            (match r with
            | Ok _ -> "stream accepted, reference rejected"
            | Error e -> "stream: " ^ Xerror.to_string e))
    [
      "<a><b></a></b>";
      "<a><b>";
      "   ";
      "<a/><b/>";
      "<a>&nosuch;</a>";
      "<a x=3></a>";
      "<a><![CDATA[x]]</a>";
    ]

(* ------------------------------------------------------------------ *)
(* Delta maintenance: the differential contract *)

let sketch_bytes = Sketch_io.to_string

(* the contract of apply_delta, checked to the byte: the maintained
   sketch equals a from-scratch build over its synopsis + config, and
   the reuse path equals the no-reuse path *)
let check_delta_contract msg sk delta =
  let maintained = Sketch.apply_delta ~reuse:true sk delta in
  let rebuilt =
    Sketch.build (Sketch.synopsis maintained) (Sketch.config maintained)
  in
  let no_reuse = Sketch.apply_delta ~reuse:false sk delta in
  Alcotest.(check string)
    (msg ^ ": delta = rebuild-from-scratch")
    (sketch_bytes rebuilt) (sketch_bytes maintained);
  Alcotest.(check string)
    (msg ^ ": reuse = no-reuse")
    (sketch_bytes no_reuse) (sketch_bytes maintained);
  maintained

let lib_doc =
  lazy
    (parse
       "<lib><book><title>t1</title><year>1999</year></book><book><title>t2</\
        title><year>2001</year></book><book><title>t3</title><year>2003</\
        year></book></lib>")

let book_query =
  lazy (ok_exn (Xtwig_path.Path_parser.parse_twig_res "for t0 in //book, t1 in t0/year"))

let test_delta_insert_known_tag () =
  let doc = Lazy.force lib_doc in
  let sk = Sketch.default_of_doc doc in
  let fragment = parse "<book><title>t4</title><year>2007</year></book>" in
  let kept0 = Counters.get "sketch.delta_nodes_kept" in
  let sk' =
    check_delta_contract "insert book" sk
      (Sketch.Insert { parent = Doc.root doc; fragment })
  in
  Alcotest.(check int) "document grew by the fragment"
    (Doc.size doc + Doc.size fragment)
    (Doc.size (Sketch.doc sk'));
  Alcotest.(check bool) "summaries were reused" true
    (Counters.get "sketch.delta_nodes_kept" > kept0);
  (* the estimate over the maintained sketch sees the new subtree *)
  let q = Lazy.force book_query in
  Alcotest.(check (float 0.0)) "estimate counts the insert" 4.0
    (Est.estimate sk' q)

let test_delta_insert_fresh_tag () =
  let doc = Lazy.force lib_doc in
  let sk = Sketch.default_of_doc doc in
  let fragment = parse "<dvd><runtime>120</runtime></dvd>" in
  let sk' =
    check_delta_contract "insert fresh tags" sk
      (Sketch.Insert { parent = Doc.root doc; fragment })
  in
  (* the fresh tags got their own synopsis nodes *)
  let syn = Sketch.synopsis sk' in
  List.iter
    (fun tag ->
      Alcotest.(check int)
        (tag ^ " has one synopsis node")
        1
        (List.length (Xtwig_synopsis.Graph_synopsis.nodes_with_label syn tag)))
    [ "dvd"; "runtime" ]

let test_delta_delete () =
  let doc = Lazy.force lib_doc in
  let sk = Sketch.default_of_doc doc in
  let victim = (Doc.children doc (Doc.root doc)).(1) in
  let sk' = check_delta_contract "delete book" sk (Sketch.Delete victim) in
  Alcotest.(check int) "subtree removed" (Doc.size doc - 3)
    (Doc.size (Sketch.doc sk'));
  Alcotest.(check (float 0.0)) "estimate counts the delete" 2.0
    (Est.estimate sk' (Lazy.force book_query))

let test_delta_chain_and_xbuild_config () =
  (* deltas over an XBUILD-refined sketch (multi-dim histograms, value
     summaries), chained insert-then-delete *)
  let doc = Xtwig_datagen.Imdb.generate ~scale:0.02 () in
  let sk = ok_exn (Xtwig.build_sketch ~budget:4000 ~seed:7 doc) in
  let fragment =
    parse "<movie><title>Delta</title><year>1999</year><actor>A</actor></movie>"
  in
  let sk' =
    check_delta_contract "insert over refined sketch" sk
      (Sketch.Insert { parent = Doc.root doc; fragment })
  in
  let doc' = Sketch.doc sk' in
  let victim =
    let tag = Option.get (Doc.tag_of_string doc' "movie") in
    (Doc.nodes_with_tag doc' tag).(0)
  in
  ignore (check_delta_contract "delete after insert" sk' (Sketch.Delete victim))

let test_delta_invalid_arguments () =
  let doc = Lazy.force lib_doc in
  let sk = Sketch.default_of_doc doc in
  let fragment = parse "<x/>" in
  let expect_invalid msg f =
    match f () with
    | (_ : Sketch.t) -> Alcotest.fail (msg ^ ": no exception")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "delete root" (fun () ->
      Sketch.apply_delta sk (Sketch.Delete (Doc.root doc)));
  expect_invalid "delete out of range" (fun () ->
      Sketch.apply_delta sk (Sketch.Delete 99999));
  expect_invalid "insert under out-of-range parent" (fun () ->
      Sketch.apply_delta sk (Sketch.Insert { parent = 99999; fragment }))

(* ------------------------------------------------------------------ *)
(* Value summaries on edge inputs, build and delta paths *)

let items values =
  "<r>" ^ String.concat "" (List.map (fun v -> "<i>" ^ v ^ "</i>") values) ^ "</r>"

let test_values_empty_text () =
  (* empty and whitespace-only text nodes carry no value; a mixed
     column still summarizes, and inserting more empties maintains *)
  let doc = parse (items [ ""; ""; "  "; "3"; ""; "5" ]) in
  let sk = Sketch.default_of_doc doc in
  let fragment = parse "<i></i>" in
  ignore
    (check_delta_contract "insert empty-text node" sk
       (Sketch.Insert { parent = Doc.root doc; fragment }))

let test_values_duplicates_straddling_buckets () =
  (* ten values, heavy duplicate runs, 2 buckets: some boundary must
     fall inside a duplicate run; the summary and its delta
     maintenance must agree with the from-scratch build regardless *)
  let doc =
    parse (items [ "1"; "1"; "1"; "1"; "2"; "2"; "2"; "3"; "3"; "4" ])
  in
  let sk = Sketch.default_of_doc ~vbudget:2 doc in
  let inode =
    List.hd
      (Xtwig_synopsis.Graph_synopsis.nodes_with_label (Sketch.synopsis sk) "i")
  in
  Alcotest.(check bool) "numeric column has a value histogram" true
    (Sketch.vhist sk inode <> None);
  let fragment = parse "<i>2</i>" in
  ignore
    (check_delta_contract "insert duplicate value" sk
       (Sketch.Insert { parent = Doc.root doc; fragment }))

let test_values_all_equal_column () =
  let doc = parse (items (List.init 12 (fun _ -> "7"))) in
  let sk = Sketch.default_of_doc doc in
  let inode =
    List.hd
      (Xtwig_synopsis.Graph_synopsis.nodes_with_label (Sketch.synopsis sk) "i")
  in
  Alcotest.(check bool) "all-equal column has a value histogram" true
    (Sketch.vhist sk inode <> None);
  let victim = (Doc.children doc (Doc.root doc)).(3) in
  ignore (check_delta_contract "delete from all-equal column" sk (Sketch.Delete victim))

(* ------------------------------------------------------------------ *)
(* Session updates through the facade *)

let test_session_update_swaps_live () =
  let doc = Lazy.force lib_doc in
  let sk = ok_exn (Xtwig.build_sketch ~budget:2000 ~seed:3 doc) in
  let session = ok_exn (Xtwig.open_sketch_session sk) in
  Fun.protect
    ~finally:(fun () -> Xtwig.close_session session)
    (fun () ->
      let q = Lazy.force book_query in
      let before = (ok_exn (Xtwig.estimate session q)).Xtwig.Engine.estimate in
      let fragment = parse "<book><title>t4</title><year>2007</year></book>" in
      let delta = Xtwig.Insert { parent = Doc.root doc; fragment } in
      ok_exn (Xtwig.update_session session delta);
      let after = (ok_exn (Xtwig.estimate session q)).Xtwig.Engine.estimate in
      (* bitwise equal to a fresh session over the same maintained sketch *)
      let sk' = ok_exn (Xtwig.update_sketch sk delta) in
      let fresh = ok_exn (Xtwig.open_sketch_session sk') in
      Fun.protect
        ~finally:(fun () -> Xtwig.close_session fresh)
        (fun () ->
          let expect = (ok_exn (Xtwig.estimate fresh q)).Xtwig.Engine.estimate in
          Alcotest.(check bool) "update visible in the estimate" true
            (after <> before);
          Alcotest.(check bool) "equal to a fresh session" true
            (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float after))))

let test_session_update_backend_rejected () =
  let doc = Lazy.force lib_doc in
  let inst = ok_exn (Xtwig.build_backend ~backend:"cst" ~budget:2000 doc) in
  let session = ok_exn (Xtwig.open_backend_session inst) in
  Fun.protect
    ~finally:(fun () -> Xtwig.close_session session)
    (fun () ->
      match
        Xtwig.update_session session (Xtwig.Delete 1)
      with
      | Error (Xerror.Usage _) -> ()
      | Ok () -> Alcotest.fail "backend session accepted an update"
      | Error e -> Alcotest.failf "expected Usage, got %s" (Xerror.to_string e))

let test_session_update_closed_rejected () =
  let doc = Lazy.force lib_doc in
  let sk = Sketch.default_of_doc doc in
  let session = ok_exn (Xtwig.open_sketch_session sk) in
  Xtwig.close_session session;
  match Xtwig.update_session session (Xtwig.Delete 1) with
  | Error (Xerror.Engine _) -> ()
  | Ok () -> Alcotest.fail "closed session accepted an update"
  | Error e -> Alcotest.failf "expected Engine, got %s" (Xerror.to_string e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ingest"
    [
      ( "streaming parser",
        [
          Alcotest.test_case "differential: corner cases" `Quick
            test_differential_corner_cases;
          Alcotest.test_case "differential: chunk sizes 1..16" `Quick
            test_differential_chunk_sizes;
          Alcotest.test_case "differential: fixtures and datasets" `Quick
            test_differential_fixtures_and_datasets;
          Alcotest.test_case "error parity with the reference parser" `Quick
            test_error_parity;
        ] );
      ( "delta maintenance",
        [
          Alcotest.test_case "insert of a known tag" `Quick
            test_delta_insert_known_tag;
          Alcotest.test_case "insert of fresh tags" `Quick
            test_delta_insert_fresh_tag;
          Alcotest.test_case "subtree delete" `Quick test_delta_delete;
          Alcotest.test_case "chained deltas over an XBUILD sketch" `Quick
            test_delta_chain_and_xbuild_config;
          Alcotest.test_case "invalid arguments" `Quick
            test_delta_invalid_arguments;
        ] );
      ( "value summaries",
        [
          Alcotest.test_case "empty text nodes" `Quick test_values_empty_text;
          Alcotest.test_case "duplicates straddling buckets" `Quick
            test_values_duplicates_straddling_buckets;
          Alcotest.test_case "all-equal column" `Quick
            test_values_all_equal_column;
        ] );
      ( "session updates",
        [
          Alcotest.test_case "update swaps the live session" `Quick
            test_session_update_swaps_live;
          Alcotest.test_case "backend session rejects updates" `Quick
            test_session_update_backend_rejected;
          Alcotest.test_case "closed session rejects updates" `Quick
            test_session_update_closed_rejected;
        ] );
    ]
