module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Sketch = Xtwig_sketch.Sketch
module Embed = Xtwig_sketch.Embed
module Treeparse = Xtwig_sketch.Treeparse
module EH = Xtwig_hist.Edge_hist
module Fx = Xtwig_fixtures.Fixtures

let checkf = Alcotest.(check (float 1e-9))

let bib = Fx.bibliography ()
let syn = G.label_split bib

let node label =
  match G.nodes_with_label syn label with
  | [ n ] -> n
  | _ -> Alcotest.failf "expected one %s node" label

(* exact sketch over the full eligible scope of every node *)
let exact_full doc =
  let syn = G.label_split doc in
  let groupings =
    Array.init (G.node_count syn) (fun n ->
        match Tsn.scope_edges syn n with
        | [] -> []
        | edges ->
            [
              List.map
                (fun (src, dst) ->
                  let kind = if src = n then Sketch.Forward else Sketch.Backward in
                  { Sketch.src; dst; kind })
                edges;
            ])
  in
  (syn, Sketch.exact_for_scopes syn groupings)

(* ---------------- distributions ---------------- *)

let test_distribution_forward () =
  let sk = Sketch.coarsest syn in
  let a = node "author" and p = node "paper" in
  let d =
    Sketch.distribution sk a [| { Sketch.src = a; dst = p; kind = Forward } |]
  in
  (* authors have 2, 1, 1 papers *)
  checkf "frac 2 papers" (1.0 /. 3.0) (Xtwig_hist.Sparse_dist.frac d [| 2 |]);
  checkf "frac 1 paper" (2.0 /. 3.0) (Xtwig_hist.Sparse_dist.frac d [| 1 |])

let test_distribution_backward () =
  let sk = Sketch.coarsest syn in
  let a = node "author" and p = node "paper" in
  (* per paper: how many papers does its author have? p4,p5 -> 2; p8,p9 -> 1 *)
  let d =
    Sketch.distribution sk p [| { Sketch.src = a; dst = p; kind = Backward } |]
  in
  checkf "half under 2-paper authors" 0.5 (Xtwig_hist.Sparse_dist.frac d [| 2 |]);
  checkf "half under 1-paper authors" 0.5 (Xtwig_hist.Sparse_dist.frac d [| 1 |])

let test_distribution_example_3_1 () =
  (* the joint f_P(C_K, C_Y, C_P) of Example 3.1 computed on our
     fixture: keywords, years, and the author's paper count *)
  let sk = Sketch.coarsest syn in
  let a = node "author" and p = node "paper" in
  let k = node "keyword" and y = node "year" in
  let d =
    Sketch.distribution sk p
      [|
        { Sketch.src = p; dst = k; kind = Forward };
        { Sketch.src = p; dst = y; kind = Forward };
        { Sketch.src = a; dst = p; kind = Backward };
      |]
  in
  (* p4: (2,1,2); p5: (2,1,2); p8: (1,1,1); p9: (1,1,1) *)
  checkf "(2,1,2)" 0.5 (Xtwig_hist.Sparse_dist.frac d [| 2; 1; 2 |]);
  checkf "(1,1,1)" 0.5 (Xtwig_hist.Sparse_dist.frac d [| 1; 1; 1 |])

(* ---------------- build and config ---------------- *)

let test_coarsest_structure () =
  let sk = Sketch.coarsest syn in
  (* paper -> title/year/keyword are F-stable: three 1-d histograms *)
  let hs = Sketch.hists sk (node "paper") in
  Alcotest.(check int) "3 forward histograms" 3 (List.length hs);
  List.iter
    (fun (dims, h) ->
      Alcotest.(check int) "1-d" 1 (Array.length dims);
      Alcotest.(check bool) "1 bucket" true (EH.bucket_count h <= 1))
    hs

let test_coarsest_drops_unstable () =
  let sk = Sketch.coarsest syn in
  (* author -> book is not F-stable: no histogram may cover it *)
  let a = node "author" and b = node "book" in
  Alcotest.(check (option unit)) "book edge uncovered" None
    (Option.map
       (fun _ -> ())
       (Sketch.covering_hist sk a { Sketch.src = a; dst = b; kind = Forward }))

let test_invalid_dims_dropped () =
  (* a config naming an ineligible edge builds, dropping the dim *)
  let a = node "author" and b = node "book" in
  let especs = Array.make (G.node_count syn) [] in
  especs.(a) <-
    [ { Sketch.dims = [ { Sketch.src = a; dst = b; kind = Forward } ]; budget = 4 } ];
  let sk = Sketch.build syn { especs; vbudgets = Array.make (G.node_count syn) 0 } in
  Alcotest.(check int) "no histograms" 0 (List.length (Sketch.hists sk a))

let test_value_hists () =
  let sk = Sketch.coarsest syn in
  Alcotest.(check bool) "year node has a value hist" true
    (Sketch.vhist sk (node "year") <> None);
  (* 'paper' has no values *)
  Alcotest.(check bool) "paper node has none" true
    (Sketch.vhist sk (node "paper") = None)

let test_value_frac () =
  let _, sk = exact_full bib in
  let y = node "year" in
  checkf "years > 2000" 0.5
    (Sketch.value_frac sk y (Xtwig_path.Path_types.Cmp (Gt, Xtwig_xml.Value.Int 2000)));
  checkf "range 1998-1999" 0.5
    (Sketch.value_frac sk y (Xtwig_path.Path_types.Range (1998.0, 1999.0)))

let test_avg_fanout () =
  let sk = Sketch.coarsest syn in
  checkf "papers per author" (4.0 /. 3.0)
    (Sketch.avg_fanout sk ~src:(node "author") ~dst:(node "paper"));
  checkf "absent edge" 0.0 (Sketch.avg_fanout sk ~src:(node "keyword") ~dst:(node "author"))

let test_size_bytes_monotone () =
  let sk0 = Sketch.coarsest ~ebudget:1 syn in
  let sk1 = Sketch.coarsest ~ebudget:8 ~vbudget:16 syn in
  Alcotest.(check bool) "bigger budgets, bigger size" true
    (Sketch.size_bytes sk1 >= Sketch.size_bytes sk0);
  Alcotest.(check bool) "includes structure" true
    (Sketch.size_bytes sk0 >= G.structure_bytes syn)

let test_build_reuse () =
  let sk = Sketch.coarsest syn in
  let cfg = Sketch.config sk in
  let sk2 = Sketch.build ~prev:sk syn cfg in
  (* identical config: all histograms physically reused *)
  for n = 0 to G.node_count syn - 1 do
    Alcotest.(check bool) "hists shared" true (Sketch.hists sk n == Sketch.hists sk2 n)
  done

(* ---------------- embeddings ---------------- *)

let parse_t s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> failwith (Xtwig_util.Xerror.to_string e)

(* descend a chain of single-alternative embedding nodes to the first
   node with the given tag *)
let rec find_node label (e : Embed.enode) =
  if G.tag_name syn e.Embed.snode = label then Some e
  else
    List.fold_left
      (fun acc alts ->
        match acc with
        | Some _ -> acc
        | None -> (
            match alts with [ k ] -> find_node label k | _ -> None))
      None e.Embed.kids

let test_embed_simple () =
  (* '//' expands from the synopsis root: the maximal twig is the chain
     bibliography/author/paper with the keyword child at its end *)
  let q = parse_t "for t0 in //paper, t1 in t0/keyword" in
  match Embed.embeddings syn q with
  | [ e ] -> (
      Alcotest.(check string) "rooted at the document root" "bibliography"
        (G.tag_name syn e.Embed.snode);
      match find_node "paper" e with
      | Some p -> (
          match p.Embed.kids with
          | [ [ k ] ] ->
              Alcotest.(check string) "kid is keyword" "keyword"
                (G.tag_name syn k.Embed.snode)
          | _ -> Alcotest.fail "expected one kid with one alternative")
      | None -> Alcotest.fail "paper node not found in the chain")
  | l -> Alcotest.failf "expected 1 embedding, got %d" (List.length l)

let test_embed_descendant_chains () =
  (* //title reaches titles under paper and under book: two root chains
     through the synopsis *)
  let q = parse_t "for t0 in //title" in
  let es = Embed.embeddings syn q in
  Alcotest.(check int) "two embeddings" 2 (List.length es);
  List.iter
    (fun (e : Embed.enode) ->
      Alcotest.(check string) "rooted at bibliography" "bibliography"
        (G.tag_name syn e.snode))
    es

let test_embed_absolute_anchoring () =
  let q = parse_t "for t0 in /bibliography/author" in
  Alcotest.(check int) "one embedding" 1 (List.length (Embed.embeddings syn q));
  let q2 = parse_t "for t0 in /author" in
  Alcotest.(check int) "author is not the root" 0 (List.length (Embed.embeddings syn q2))

let test_embed_unsatisfiable_branch () =
  let q = parse_t "for t0 in //paper[movie]" in
  Alcotest.(check int) "no embeddings" 0 (List.length (Embed.embeddings syn q))

let test_embed_branch_alternatives () =
  let q = parse_t "for t0 in //author[book]" in
  match Embed.embeddings syn q with
  | [ e ] -> (
      match find_node "author" e with
      | Some a -> (
          Alcotest.(check bool) "no kids" true (a.Embed.kids = []);
          match a.Embed.branches with
          | [ [ b ] ] ->
              Alcotest.(check string) "branch node is book" "book"
                (G.tag_name syn b.Embed.bnode)
          | _ -> Alcotest.fail "expected one branch predicate with one alternative")
      | None -> Alcotest.fail "author not found")
  | l -> Alcotest.failf "expected 1 embedding, got %d" (List.length l)

let test_embed_unknown_label () =
  let q = parse_t "for t0 in //nonexistent" in
  Alcotest.(check int) "nothing" 0 (List.length (Embed.embeddings syn q));
  Alcotest.(check bool) "not truncated" false (Embed.last_truncated ())

let test_embed_size () =
  (* chain bibliography/author/paper + keyword + year = 5 nodes *)
  let q = parse_t "for t0 in //paper, t1 in t0/keyword, t2 in t0/year" in
  match Embed.embeddings syn q with
  | [ e ] -> Alcotest.(check int) "5 nodes" 5 (Embed.size e)
  | _ -> Alcotest.fail "expected one embedding"

(* ---------------- TREEPARSE ---------------- *)

let sets_of parsed label =
  match
    List.find_opt
      (fun ((e : Embed.enode), _) -> G.tag_name syn e.snode = label)
      parsed
  with
  | Some (_, s) -> s
  | None -> Alcotest.failf "no TREEPARSE entry for %s" label

let test_treeparse_sets () =
  let _, sk = exact_full bib in
  let q = parse_t "for t0 in //author, t1 in t0/name, t2 in t0/paper, t3 in t2/keyword" in
  match Embed.embeddings (Sketch.synopsis sk) q with
  | [ e ] ->
      let parsed = Treeparse.parse sk e in
      (* internal nodes: the bibliography chain head, author, paper *)
      Alcotest.(check int) "three internal nodes" 3 (List.length parsed);
      let sa = sets_of parsed "author" and sp = sets_of parsed "paper" in
      let a = node "author" and p = node "paper" in
      Alcotest.(check bool) "author expansion covers name edge" true
        (List.mem (a, node "name") sa.Treeparse.expansion);
      Alcotest.(check bool) "author expansion covers paper edge" true
        (List.mem (a, p) sa.Treeparse.expansion);
      Alcotest.(check (list (pair int int))) "author: nothing uncovered" []
        sa.Treeparse.uncovered;
      (* at paper, the author->paper backward count was already covered *)
      Alcotest.(check bool) "paper correlates on author->paper" true
        (List.mem (a, p) sp.Treeparse.correlation)
  | _ -> Alcotest.fail "expected one embedding"

let test_treeparse_uncovered () =
  let sk = Sketch.coarsest syn in
  (* author->book is not covered by any histogram *)
  let q = parse_t "for t0 in //author, t1 in t0/book" in
  match Embed.embeddings (Sketch.synopsis sk) q with
  | [ e ] ->
      let parsed = Treeparse.parse sk e in
      let sa = sets_of parsed "author" in
      Alcotest.(check (list (pair int int))) "book edge uncovered"
        [ (node "author", node "book") ]
        sa.Treeparse.uncovered
  | _ -> Alcotest.fail "expected one embedding"

(* property: histograms built at any budget have total fraction 1 on
   non-empty nodes of generated documents *)
let prop_built_hists_normalized =
  QCheck2.Test.make ~name:"built histograms are normalized" ~count:20
    QCheck2.Gen.(pair (0 -- 500) (1 -- 8))
    (fun (seed, budget) ->
      let doc = Xtwig_datagen.Imdb.generate ~seed ~scale:0.005 () in
      let syn = G.label_split doc in
      let sk = Sketch.coarsest ~ebudget:budget syn in
      List.for_all
        (fun n ->
          List.for_all
            (fun (_, h) -> Float.abs (EH.total_frac h -. 1.0) < 1e-9)
            (Sketch.hists sk n))
        (List.init (G.node_count syn) Fun.id))

let () =
  Alcotest.run "sketch"
    [
      ( "distributions",
        [
          Alcotest.test_case "forward counts" `Quick test_distribution_forward;
          Alcotest.test_case "backward counts" `Quick test_distribution_backward;
          Alcotest.test_case "paper Example 3.1" `Quick test_distribution_example_3_1;
        ] );
      ( "build",
        [
          Alcotest.test_case "coarsest structure" `Quick test_coarsest_structure;
          Alcotest.test_case "unstable edges dropped" `Quick test_coarsest_drops_unstable;
          Alcotest.test_case "invalid dims dropped" `Quick test_invalid_dims_dropped;
          Alcotest.test_case "value hists placement" `Quick test_value_hists;
          Alcotest.test_case "value fractions" `Quick test_value_frac;
          Alcotest.test_case "avg fanout" `Quick test_avg_fanout;
          Alcotest.test_case "size monotone" `Quick test_size_bytes_monotone;
          Alcotest.test_case "incremental reuse" `Quick test_build_reuse;
        ] );
      ( "embed",
        [
          Alcotest.test_case "simple" `Quick test_embed_simple;
          Alcotest.test_case "descendant chains" `Quick test_embed_descendant_chains;
          Alcotest.test_case "absolute anchoring" `Quick test_embed_absolute_anchoring;
          Alcotest.test_case "unsatisfiable branch" `Quick test_embed_unsatisfiable_branch;
          Alcotest.test_case "branch alternatives" `Quick test_embed_branch_alternatives;
          Alcotest.test_case "unknown label" `Quick test_embed_unknown_label;
          Alcotest.test_case "size" `Quick test_embed_size;
        ] );
      ( "treeparse",
        [
          Alcotest.test_case "E/U/D sets" `Quick test_treeparse_sets;
          Alcotest.test_case "uncovered edges" `Quick test_treeparse_uncovered;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_built_hists_normalized ] );
    ]
