(* The paper's running example, end to end: the Figure 1 bibliography
   document, Example 2.1's twig query and its three binding tuples,
   the Example 3.1 edge distribution, the TREEPARSE decomposition and
   the estimation pipeline over it.

   Run with:  dune exec examples/bibliography.exe *)

module Doc = Xtwig_xml.Doc
module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Sketch = Xtwig_sketch.Sketch
module Fx = Xtwig_fixtures.Fixtures

let parse_twig s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> (print_endline (Xtwig_util.Xerror.to_string e); exit 1)

let () =
  let doc = Fx.bibliography () in
  Format.printf "--- Figure 1 document ---@.%s@."
    (Xtwig_xml.Xml_writer.to_string doc);

  (* Example 2.1: the twig query and its binding tuples *)
  let q = Fx.example_2_1_query () in
  Format.printf "--- Example 2.1 ---@.query: %s@."
    (Xtwig_path.Path_printer.twig_to_string q);
  let tuples = Xtwig_eval.Eval_twig.bindings doc q in
  Format.printf "%d binding tuples:@." (List.length tuples);
  List.iter
    (fun tuple ->
      Format.printf "  [%s]@."
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun e -> Printf.sprintf "%s#%d" (Doc.tag_name doc e) e)
                 tuple))))
    tuples;

  (* The Figure 3 synopsis: label-split with stabilities *)
  let syn = G.label_split doc in
  Format.printf "@.--- Figure 3(b): label-split synopsis ---@.%a" G.pp syn;

  (* Example 3.1: the edge distribution f_P(C_K, C_Y, C_P) *)
  let node l = List.hd (G.nodes_with_label syn l) in
  let sk = Sketch.coarsest syn in
  let dims =
    [|
      { Sketch.src = node "paper"; dst = node "keyword"; kind = Sketch.Forward };
      { Sketch.src = node "paper"; dst = node "year"; kind = Sketch.Forward };
      { Sketch.src = node "author"; dst = node "paper"; kind = Sketch.Backward };
    |]
  in
  let dist = Sketch.distribution sk (node "paper") dims in
  Format.printf "@.--- Example 3.1: f_P(C_K, C_Y, C_P) ---@.";
  Format.printf "  C_K C_Y C_P   f_P@.";
  Xtwig_hist.Sparse_dist.fold dist ~init:() ~f:(fun () v f ->
      Format.printf "  %3d %3d %3d   %.2f@." v.(0) v.(1) v.(2) f);

  (* TREEPARSE over a full-information sketch *)
  let full =
    let groupings =
      Array.init (G.node_count syn) (fun n ->
          match Tsn.scope_edges syn n with
          | [] -> []
          | edges ->
              [
                List.map
                  (fun (src, dst) ->
                    let kind = if src = n then Sketch.Forward else Sketch.Backward in
                    { Sketch.src; dst; kind })
                  edges;
              ])
    in
    Sketch.exact_for_scopes syn groupings
  in
  let q2 =
    parse_twig
      "for t0 in //author, t1 in t0/name, t2 in t0/paper, t3 in t2/keyword"
  in
  (match Xtwig_sketch.Embed.embeddings syn q2 with
  | e :: _ ->
      Format.printf "@.--- TREEPARSE of %s ---@."
        (Xtwig_path.Path_printer.twig_to_string q2);
      Xtwig_sketch.Treeparse.pp syn Format.std_formatter
        (Xtwig_sketch.Treeparse.parse full e)
  | [] -> ());

  (* and the estimates *)
  Format.printf "@.--- Estimates ---@.";
  List.iter
    (fun (name, query) ->
      Format.printf "%-60s exact %5d   estimate %8.3f@." name
        (Xtwig_eval.Eval_twig.selectivity doc query)
        (Xtwig_sketch.Estimator.estimate full query))
    [
      ("Example 2.1 (branch + value predicates)", q);
      ("authors x names x papers x keywords", q2);
      ( "keyword self-join",
        parse_twig "for t0 in //paper, t1 in t0/keyword, t2 in t0/keyword" );
    ]
