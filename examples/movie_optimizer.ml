(* Using twig selectivity estimates the way a query optimizer would:
   choosing the evaluation order of the introduction's movie query

     for t0 in //movie[genre = X], t1 in t0/actor, t2 in t0/producer

   The optimizer must decide which genre filters are selective enough
   to drive the plan; the correlation between genre and the number of
   actors/producers (action movies produce ~30x more tuples per
   movie than documentaries) is exactly what the Twig XSKETCH captures
   and a coarse, independence-based synopsis cannot.

   Run with:  dune exec examples/movie_optimizer.exe *)

module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Wgen = Xtwig_workload.Wgen

let parse_twig s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> (print_endline (Xtwig_util.Xerror.to_string e); exit 1)

let () =
  let doc = Xtwig_datagen.Imdb.generate ~scale:0.2 () in
  Format.printf "catalog: %d elements@." (Xtwig_xml.Doc.size doc);

  (* an optimizer-grade synopsis built by XBUILD for a twig workload *)
  let truth q = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
  in
  let sketch = Xtwig_sketch.Xbuild.build ~budget:8192 ~max_steps:120 ~workload ~truth doc in
  Format.printf "synopsis: %d bytes@.@." (Sketch.size_bytes sketch);

  (* per-genre cardinalities of the movie/actor/producer join: the
     FROM-clause sizes the optimizer compares *)
  let queries =
    List.map
      (fun genre ->
        ( genre,
          parse_twig
            (Printf.sprintf
               "for t0 in //movie[genre[. = \"%s\"]], t1 in t0/actor, t2 in \
                t0/producer"
               genre) ))
      [ "action"; "drama"; "comedy"; "documentary"; "thriller" ]
  in
  Format.printf "%-14s %12s %12s %9s@." "genre filter" "estimated" "actual" "error";
  let coarse = Sketch.default_of_doc doc in
  List.iter
    (fun (genre, q) ->
      let est = Est.estimate sketch q in
      let act = truth q in
      Format.printf "%-14s %12.0f %12.0f %8.0f%%@." genre est act
        (100.0 *. Float.abs (est -. act) /. Stdlib.max 1.0 act);
      ignore coarse)
    queries;

  (* plan choice: evaluate the most selective (fewest-tuples) genre
     first when intersecting two genre filters with a shared actor
     pool; report which order each synopsis picks *)
  (* the genre-to-fanout correlation needs the value-split extension:
     split the genre node by its most common values, then f-stabilize
     movie edges toward the per-genre nodes so each movie class carries
     its own fanout statistics *)
  let module G = Xtwig_synopsis.Graph_synopsis in
  let value_aware =
    let with_genre_split =
      let syn = Sketch.synopsis coarse in
      let genre = List.hd (G.nodes_with_label syn "genre") in
      Xtwig_sketch.Refinement.apply coarse
        (Xtwig_sketch.Refinement.Value_split { node = genre; ways = 5 })
    in
    let rec stabilize sk fuel =
      if fuel = 0 then sk
      else
        let syn = Sketch.synopsis sk in
        let unstable =
          List.concat_map
            (fun m ->
              List.filter_map
                (fun (e : G.edge) ->
                  if (not e.f_stable) && G.tag_name syn e.dst = "genre" then
                    Some (e.src, e.dst)
                  else None)
                (G.out_edges syn m))
            (G.nodes_with_label syn "movie")
        in
        match unstable with
        | [] -> sk
        | (src, dst) :: _ ->
            stabilize
              (Xtwig_sketch.Refinement.apply sk
                 (Xtwig_sketch.Refinement.F_stabilize { src; dst }))
              (fuel - 1)
    in
    stabilize with_genre_split 24
  in
  Format.printf "@.value-split synopsis: %d bytes@." (Sketch.size_bytes value_aware);
  Format.printf "%-14s %12s %12s %9s@." "genre filter" "estimated" "actual" "error";
  List.iter
    (fun (genre, q) ->
      let est = Est.estimate value_aware q in
      let act = truth q in
      Format.printf "%-14s %12.0f %12.0f %8.0f%%@." genre est act
        (100.0 *. Float.abs (est -. act) /. Stdlib.max 1.0 act))
    queries;

  let order_by_estimate sk =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a b)
      (List.map (fun (g, q) -> (g, Est.estimate sk q)) queries)
    |> List.map fst
  in
  let order_by_truth =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a b)
      (List.map (fun (g, q) -> (g, truth q)) queries)
    |> List.map fst
  in
  Format.printf "@.join order by true cardinality:      %s@."
    (String.concat " < " order_by_truth);
  Format.printf "join order via value-split XSKETCH:  %s@."
    (String.concat " < " (order_by_estimate value_aware));
  Format.printf "join order via workload-built sketch: %s@."
    (String.concat " < " (order_by_estimate sketch));
  Format.printf "join order via coarse model:         %s@."
    (String.concat " < " (order_by_estimate coarse));
  (* score each model by the fraction of genre pairs it orders like
     the truth (Kendall agreement) *)
  let pairwise_agreement order =
    let pos l g = Option.get (List.find_index (String.equal g) l) in
    let pairs = ref 0 and ok = ref 0 in
    List.iteri
      (fun i (ga, _) ->
        List.iteri
          (fun j (gb, _) ->
            if i < j then begin
              incr pairs;
              let truth_lt = pos order_by_truth ga < pos order_by_truth gb in
              let est_lt = pos order ga < pos order gb in
              if truth_lt = est_lt then incr ok
            end)
          queries)
      queries;
    float_of_int !ok /. float_of_int !pairs
  in
  Format.printf
    "@.pairwise order agreement with the truth: value-split %.0f%%, \
     workload-built %.0f%%, coarse %.0f%%@."
    (100.0 *. pairwise_agreement (order_by_estimate value_aware))
    (100.0 *. pairwise_agreement (order_by_estimate sketch))
    (100.0 *. pairwise_agreement (order_by_estimate coarse))
