(* Quickstart: parse an XML document, build a Twig XSKETCH, estimate a
   twig query, compare against the exact answer.

   Run with:  dune exec examples/quickstart.exe *)

module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Estimator = Xtwig_sketch.Estimator

let parse_doc s =
  match Xtwig_xml.Xml_parser.parse_string_res s with
  | Ok d -> d
  | Error e -> (print_endline (Xtwig_util.Xerror.to_string e); exit 1)

let parse_twig s =
  match Xtwig_path.Path_parser.parse_twig_res s with
  | Ok t -> t
  | Error e -> (print_endline (Xtwig_util.Xerror.to_string e); exit 1)

(* actor and producer counts are anticorrelated across movies, so the
   independence product E[actors] x E[producers] misestimates the join *)
let xml =
  {|<catalog>
  <movie><title>Heat</title><genre>action</genre><year>1995</year>
    <actor>Pacino</actor><actor>De Niro</actor><actor>Kilmer</actor><actor>Venora</actor>
    <producer>Milchan</producer></movie>
  <movie><title>Koyaanisqatsi</title><genre>documentary</genre><year>1982</year>
    <actor>Narrator</actor>
    <producer>Reggio</producer><producer>Coppola</producer><producer>Gardner</producer></movie>
  <movie><title>Ran</title><genre>drama</genre><year>1985</year>
    <actor>Nakadai</actor><actor>Terao</actor>
    <producer>Kurosawa</producer><producer>Silberman</producer></movie>
</catalog>|}

let () =
  (* 1. Parse the document. *)
  let doc = parse_doc xml in
  Format.printf "parsed: %a@." Doc.pp_summary doc;

  (* 2. Write a twig query: movies paired with every (actor, producer)
        combination — the paper's canonical structural join. *)
  let query =
    parse_twig "for t0 in //movie, t1 in t0/actor, t2 in t0/producer"
  in
  Format.printf "query:  %s@." (Xtwig_path.Path_printer.twig_to_string query);

  (* 3. The exact answer, by full evaluation. *)
  let exact = Xtwig_eval.Eval_twig.selectivity doc query in
  Format.printf "exact selectivity: %d binding tuples@." exact;

  (* 4. A coarse synopsis (label-split + 1-bucket histograms). *)
  let coarse = Sketch.default_of_doc doc in
  Format.printf "coarse synopsis (%d bytes) estimate: %.2f@."
    (Sketch.size_bytes coarse)
    (Estimator.estimate coarse query);

  (* 5. Refine by hand: put the (movie->actor, movie->producer) pair
        into one joint histogram, lifting the independence assumption
        across the join — the paper's edge-expand refinement. *)
  let syn = Sketch.synopsis coarse in
  let module G = Xtwig_synopsis.Graph_synopsis in
  let movie = List.hd (G.nodes_with_label syn "movie") in
  let actor = List.hd (G.nodes_with_label syn "actor") in
  let producer = List.hd (G.nodes_with_label syn "producer") in
  let refined =
    Xtwig_sketch.Refinement.apply coarse
      (Xtwig_sketch.Refinement.Edge_expand
         {
           node = movie;
           dim = { Sketch.src = movie; dst = producer; kind = Sketch.Forward };
           into = None;
         })
  in
  let refined =
    Xtwig_sketch.Refinement.apply refined
      (Xtwig_sketch.Refinement.Edge_expand
         {
           node = movie;
           dim = { Sketch.src = movie; dst = actor; kind = Sketch.Forward };
           into = Some (List.length (Sketch.config refined).especs.(movie) - 1);
         })
  in
  (* ... and give the joint histogram buckets to spend (edge-refine) *)
  let refined =
    Xtwig_sketch.Refinement.apply refined
      (Xtwig_sketch.Refinement.Edge_refine
         {
           node = movie;
           hist = List.length (Sketch.config refined).especs.(movie) - 1;
           extra_buckets = 4;
         })
  in
  Format.printf "refined synopsis (%d bytes) estimate: %.2f@."
    (Sketch.size_bytes refined)
    (Estimator.estimate refined query);

  (* 6. Or let XBUILD do the refining against a workload. *)
  let truth q = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
  let workload prng ~focus =
    Xtwig_workload.Wgen.generate ~focus
      { Xtwig_workload.Wgen.paper_p with n_queries = 12; min_nodes = 3; max_nodes = 4 }
      prng doc
  in
  let built =
    Xtwig_sketch.Xbuild.build ~budget:2048 ~max_steps:80 ~workload ~truth doc
  in
  let eval_wl =
    Xtwig_workload.Wgen.generate
      { Xtwig_workload.Wgen.paper_p with n_queries = 30; min_nodes = 2; max_nodes = 4 }
      (Xtwig_util.Prng.create 99) doc
  in
  Format.printf "XBUILD synopsis (%d bytes) workload error: %.3f (coarse: %.3f)@."
    (Sketch.size_bytes built)
    (Xtwig_sketch.Xbuild.workload_error built ~truth eval_wl)
    (Xtwig_sketch.Xbuild.workload_error coarse ~truth eval_wl)
