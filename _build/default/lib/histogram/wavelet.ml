type t = {
  length : int; (* original length *)
  padded : int; (* power-of-two transform length *)
  coeffs : (int * float) list; (* kept (index, value) in the transform *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* In-place standard Haar decomposition of a power-of-two vector. *)
let decompose a =
  let n = Array.length a in
  let tmp = Array.make n 0.0 in
  let len = ref n in
  while !len > 1 do
    let half = !len / 2 in
    for i = 0 to half - 1 do
      tmp.(i) <- (a.(2 * i) +. a.((2 * i) + 1)) /. 2.0;
      tmp.(half + i) <- (a.(2 * i) -. a.((2 * i) + 1)) /. 2.0
    done;
    Array.blit tmp 0 a 0 !len;
    len := half
  done

let reconstruct_full padded coeffs =
  let a = Array.make padded 0.0 in
  List.iter (fun (i, v) -> a.(i) <- v) coeffs;
  let len = ref 1 in
  let tmp = Array.make padded 0.0 in
  while !len < padded do
    let half = !len in
    for i = 0 to half - 1 do
      tmp.(2 * i) <- a.(i) +. a.(half + i);
      tmp.((2 * i) + 1) <- a.(i) -. a.(half + i)
    done;
    Array.blit tmp 0 a 0 (2 * half);
    len := 2 * half
  done;
  a

(* Normalization weight for thresholding: level-dependent, so that
   dropping a coefficient costs its true L2 energy. *)
let level_weight padded idx =
  if idx = 0 then sqrt (float_of_int padded)
  else
    let rec level i l = if i = 0 then l else level (i / 2) (l + 1) in
    let l = level idx 0 in
    sqrt (float_of_int padded /. float_of_int (1 lsl l))

let build ?(budget = 16) data =
  let length = Array.length data in
  if length = 0 then { length; padded = 1; coeffs = [] }
  else begin
    let padded = next_pow2 length in
    let a = Array.make padded 0.0 in
    Array.blit data 0 a 0 length;
    decompose a;
    let scored =
      Array.to_list
        (Array.mapi (fun i v -> (Float.abs v *. level_weight padded i, i, v)) a)
    in
    let sorted = List.sort (fun (x, _, _) (y, _, _) -> Float.compare y x) scored in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | (_, i, v) :: rest ->
          if v = 0.0 then take k rest else (i, v) :: take (k - 1) rest
    in
    { length; padded; coeffs = take (Stdlib.max 1 budget) sorted }
  end

let reconstruct t =
  let full = reconstruct_full t.padded t.coeffs in
  Array.sub full 0 t.length

let point t i =
  if i < 0 || i >= t.length then 0.0 else (reconstruct t).(i)

let coefficients_kept t = List.length t.coeffs
let original_length t = t.length
let size_bytes t = 8 * coefficients_kept t
