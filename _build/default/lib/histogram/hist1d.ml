type bucket = {
  lo : float;
  hi : float;
  frac : float;
  distinct : int;
}

type t = { buckets : bucket array; count : int }

let build ?(budget = 16) data =
  let budget = Stdlib.max 1 budget in
  let n = Array.length data in
  if n = 0 then { buckets = [||]; count = 0 }
  else begin
    let sorted = Array.copy data in
    Array.sort Float.compare sorted;
    let per = Stdlib.max 1 (n / budget) in
    let buckets = ref [] in
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let stop0 = Stdlib.min (n - 1) (start + per - 1) in
      (* extend so equal boundary values stay in one bucket *)
      let stop = ref stop0 in
      while !stop + 1 < n && sorted.(!stop + 1) = sorted.(!stop) do
        incr stop
      done;
      let members = !stop - start + 1 in
      let distinct = ref 1 in
      for k = start + 1 to !stop do
        if sorted.(k) <> sorted.(k - 1) then incr distinct
      done;
      buckets :=
        {
          lo = sorted.(start);
          hi = sorted.(!stop);
          frac = float_of_int members /. float_of_int n;
          distinct = !distinct;
        }
        :: !buckets;
      i := !stop + 1
    done;
    { buckets = Array.of_list (List.rev !buckets); count = n }
  end

let count t = t.count
let bucket_count t = Array.length t.buckets

(* Fraction of one bucket's mass below-or-equal x, uniform inside. *)
let bucket_mass_le b x =
  if x < b.lo then 0.0
  else if x >= b.hi then b.frac
  else if b.hi = b.lo then b.frac
  else b.frac *. ((x -. b.lo) /. (b.hi -. b.lo))

let frac_le t x = Array.fold_left (fun a b -> a +. bucket_mass_le b x) 0.0 t.buckets

let frac_range t lo hi =
  if hi < lo then 0.0
  else
    let below_hi = frac_le t hi in
    (* subtract strictly-below-lo mass; approximate P(v = lo) by the
       containing bucket's per-distinct-value density *)
    let below_lo = frac_le t lo in
    let at_lo =
      Array.fold_left
        (fun a b ->
          if lo >= b.lo && lo <= b.hi then a +. (b.frac /. float_of_int b.distinct)
          else a)
        0.0 t.buckets
    in
    Stdlib.max 0.0 (Stdlib.min 1.0 (below_hi -. below_lo +. at_lo))

let frac_eq t x =
  Array.fold_left
    (fun a b ->
      if x >= b.lo && x <= b.hi then a +. (b.frac /. float_of_int b.distinct)
      else a)
    0.0 t.buckets

let frac_cmp t op x =
  let le = frac_le t x in
  let eq = frac_eq t x in
  match op with
  | `Le -> le
  | `Lt -> Stdlib.max 0.0 (le -. eq)
  | `Eq -> eq
  | `Ne -> 1.0 -. eq
  | `Gt -> Stdlib.max 0.0 (1.0 -. le)
  | `Ge -> Stdlib.min 1.0 (1.0 -. le +. eq)

let domain t =
  if Array.length t.buckets = 0 then None
  else Some (t.buckets.(0).lo, t.buckets.(Array.length t.buckets - 1).hi)

let size_bytes t = 12 * bucket_count t
