type t = {
  total : int;
  entries : (string * float) list; (* most frequent first *)
  other_mass : float;
  other_distinct : int;
}

let build ?(budget = 8) values =
  let budget = Stdlib.max 1 budget in
  let counts = Hashtbl.create 64 in
  let total = List.length values in
  List.iter
    (fun v ->
      Hashtbl.replace counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    values;
  let all =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
    |> List.sort (fun (va, a) (vb, b) ->
           match compare b a with 0 -> compare va vb | c -> c)
  in
  let kept = List.filteri (fun i _ -> i < budget) all in
  let dropped = List.filteri (fun i _ -> i >= budget) all in
  let tf = float_of_int (Stdlib.max 1 total) in
  {
    total;
    entries = List.map (fun (v, c) -> (v, float_of_int c /. tf)) kept;
    other_mass =
      List.fold_left (fun a (_, c) -> a +. (float_of_int c /. tf)) 0.0 dropped;
    other_distinct = List.length dropped;
  }

let count t = t.total
let entries t = t.entries
let other_mass t = t.other_mass
let other_distinct t = t.other_distinct

let frac_eq t v =
  match List.assoc_opt v t.entries with
  | Some f -> f
  | None ->
      if t.other_distinct = 0 then 0.0
      else t.other_mass /. float_of_int t.other_distinct

let frac_ne t v = Stdlib.max 0.0 (1.0 -. frac_eq t v)

let rank t v =
  let rec go i = function
    | [] -> None
    | (v', _) :: rest -> if String.equal v v' then Some i else go (i + 1) rest
  in
  go 0 t.entries

let size_bytes t = (12 * List.length t.entries) + 8
