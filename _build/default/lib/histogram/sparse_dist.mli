(** Exact multidimensional distributions of integer count vectors.

    An edge distribution [f_i(C_1, ..., C_k)] (Section 3.2 of the
    paper) maps each observed vector of edge counts to the fraction of
    elements exhibiting it. This module stores such a distribution
    exactly; {!Edge_hist} compresses it to a space budget.

    The module is generic: dimensions are just positions [0 .. k-1];
    the synopsis layer maps them to synopsis edges. *)

type t

val of_vectors : dims:int -> int array list -> t
(** Aggregates one count vector per element. All vectors must have
    length [dims]. *)

val of_counted : dims:int -> (int array * int) list -> t
(** Pre-aggregated form: (vector, multiplicity). Multiplicities of
    equal vectors are merged. *)

val dims : t -> int

val support : t -> int
(** Number of distinct vectors. *)

val total : t -> int
(** Number of underlying elements (sum of multiplicities). *)

val frac : t -> int array -> float
(** Fraction of elements with exactly this vector (0 if absent). *)

val fold : t -> init:'a -> f:('a -> int array -> float -> 'a) -> 'a
(** Iterates (vector, fraction) pairs. The vectors must not be
    mutated. *)

val points : t -> (int array * int) list
(** All (vector, multiplicity) pairs, in an unspecified order. *)

val marginalize : t -> keep:int list -> t
(** Projects onto the given dimensions (in the order listed). *)

val expected_product : t -> over:int list -> float
(** [Σ_v frac(v) · Π_{d ∈ over} v.(d)] — the [ΣF] operator of
    Section 4. A dimension listed twice is squared, matching the
    semantics of two twig children following the same edge. *)

val mean : t -> int -> float
(** Expected count on one dimension. *)

val correlation : t -> int -> int -> float
(** Pearson correlation between two dimensions; 0 when either is
    constant. Drives the edge-expand refinement's choice of which
    dimension to add. *)

val conditional_correlation_gain : t -> int -> float
(** How much dimension [d] matters to the joint product expectation:
    |E[Π all] − E[d]·E[Π others]| / max(E[Π all], epsilon). Used to
    rank candidate dimensions. *)
