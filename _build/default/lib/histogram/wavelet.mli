(** One-dimensional Haar wavelet summaries.

    Section 3.2 notes that edge distributions "can be summarized very
    efficiently using multidimensional methods such as histograms and
    wavelets". This module provides the wavelet alternative for the
    one-dimensional case, used by the ablation benchmark that compares
    bucket histograms against wavelet coefficient retention on the
    same space budget. *)

type t

val build : ?budget:int -> float array -> t
(** [build ~budget data] decomposes the frequency vector [data]
    (implicitly zero-padded to a power of two) with the Haar
    transform and keeps the [budget] largest coefficients by absolute
    normalized magnitude (default 16). *)

val reconstruct : t -> float array
(** Approximate frequency vector, truncated to the original length. *)

val point : t -> int -> float
(** Reconstructed value at one index (0 outside the original range). *)

val coefficients_kept : t -> int
val original_length : t -> int
val size_bytes : t -> int
(** 8 bytes per kept coefficient (index + value). *)
