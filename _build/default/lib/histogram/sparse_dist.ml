type t = {
  dims : int;
  table : (int array, int) Hashtbl.t; (* vector -> multiplicity *)
  total : int;
}

let of_counted ~dims pairs =
  let table = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun (v, m) ->
      assert (Array.length v = dims);
      assert (m > 0);
      total := !total + m;
      match Hashtbl.find_opt table v with
      | Some m0 -> Hashtbl.replace table v (m0 + m)
      | None -> Hashtbl.add table (Array.copy v) m)
    pairs;
  { dims; table; total = !total }

let of_vectors ~dims vectors =
  of_counted ~dims (List.map (fun v -> (v, 1)) vectors)

let dims t = t.dims
let support t = Hashtbl.length t.table
let total t = t.total

let frac t v =
  if t.total = 0 then 0.0
  else
    match Hashtbl.find_opt t.table v with
    | Some m -> float_of_int m /. float_of_int t.total
    | None -> 0.0

let fold t ~init ~f =
  if t.total = 0 then init
  else
    let tot = float_of_int t.total in
    Hashtbl.fold (fun v m acc -> f acc v (float_of_int m /. tot)) t.table init

let points t = Hashtbl.fold (fun v m acc -> (v, m) :: acc) t.table []

let marginalize t ~keep =
  let arr = Array.of_list keep in
  let pairs =
    Hashtbl.fold
      (fun v m acc -> (Array.map (fun d -> v.(d)) arr, m) :: acc)
      t.table []
  in
  of_counted ~dims:(Array.length arr) pairs

let expected_product t ~over =
  fold t ~init:0.0 ~f:(fun acc v f ->
      let p = List.fold_left (fun p d -> p *. float_of_int v.(d)) 1.0 over in
      acc +. (f *. p))

let mean t d = expected_product t ~over:[ d ]

let correlation t a b =
  let ma = mean t a and mb = mean t b in
  let cov, va, vb =
    fold t ~init:(0.0, 0.0, 0.0) ~f:(fun (cov, va, vb) v f ->
        let da = float_of_int v.(a) -. ma and db = float_of_int v.(b) -. mb in
        (cov +. (f *. da *. db), va +. (f *. da *. da), vb +. (f *. db *. db)))
  in
  if va <= 1e-12 || vb <= 1e-12 then 0.0 else cov /. sqrt (va *. vb)

let conditional_correlation_gain t d =
  let all = List.init t.dims Fun.id in
  let others = List.filter (fun x -> x <> d) all in
  let joint = expected_product t ~over:all in
  let indep = mean t d *. expected_product t ~over:others in
  let denom = Stdlib.max joint 1e-9 in
  Float.abs (joint -. indep) /. denom
