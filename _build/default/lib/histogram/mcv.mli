(** Most-common-value summaries for categorical (text) values.

    The paper's prototype keeps single-dimensional histograms over
    numeric values; real documents also carry low-cardinality string
    values (genres, types, country codes) on which equality predicates
    are common. An MCV summary stores the top-k values with their
    exact fractions and lumps the rest into an "other" mass — the
    classic optimizer structure. Section 3.3 notes that count-based
    estimation frees the join machinery from value-distribution
    assumptions "e.g. attributes with categorical values"; this module
    supplies the selection-predicate side for those attributes. *)

type t

val build : ?budget:int -> string list -> t
(** Keeps the [budget] (default 8) most frequent values. *)

val count : t -> int
(** Number of summarized values. *)

val entries : t -> (string * float) list
(** The retained (value, fraction) pairs, most frequent first. *)

val other_mass : t -> float
(** Total fraction of values not retained. *)

val other_distinct : t -> int
(** Number of distinct values not retained. *)

val frac_eq : t -> string -> float
(** Estimated fraction of values equal to the string: exact for
    retained values, [other_mass / other_distinct] for the rest. *)

val frac_ne : t -> string -> float

val rank : t -> string -> int option
(** Position of a retained value (0 = most frequent); [None] when the
    value fell into "other". *)

val size_bytes : t -> int
(** 12 bytes per retained entry (hashed value + fraction) plus 8 for
    the other-mass summary. *)
