(** One-dimensional equi-depth value histograms.

    These implement the paper's per-node value summaries [H(v)] in the
    single-dimensional configuration its prototype uses: the fraction
    of a synopsis node's elements whose value satisfies a range or
    comparison predicate. *)

type t

val build : ?budget:int -> float array -> t
(** Equi-depth over the (copied, sorted) data; [budget] buckets
    (default 16, min 1). The empty array yields an empty histogram
    whose selectivities are all 0. *)

val count : t -> int
(** Number of summarized values. *)

val bucket_count : t -> int

val frac_range : t -> float -> float -> float
(** Estimated fraction of values in [\[lo, hi\]] (inclusive), assuming
    uniformity inside buckets. *)

val frac_le : t -> float -> float
(** Estimated fraction of values [<= x]. *)

val frac_cmp : t -> [ `Lt | `Le | `Eq | `Ne | `Ge | `Gt ] -> float -> float
(** Estimated fraction of values satisfying [v op x]. [`Eq] uses the
    containing bucket's density over its distinct-value count. *)

val domain : t -> (float * float) option
(** Min and max summarized value; [None] when empty. *)

val size_bytes : t -> int
(** [12] bytes per bucket (boundary, cumulative fraction, distinct
    count). *)
