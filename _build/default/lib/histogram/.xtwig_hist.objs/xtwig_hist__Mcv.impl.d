lib/histogram/mcv.ml: Hashtbl List Option Stdlib String
