lib/histogram/mcv.mli:
