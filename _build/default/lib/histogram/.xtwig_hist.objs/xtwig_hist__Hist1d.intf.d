lib/histogram/hist1d.mli:
