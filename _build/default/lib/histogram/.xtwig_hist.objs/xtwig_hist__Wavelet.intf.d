lib/histogram/wavelet.mli:
