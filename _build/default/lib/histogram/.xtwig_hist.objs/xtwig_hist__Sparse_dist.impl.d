lib/histogram/sparse_dist.ml: Array Float Fun Hashtbl List Stdlib
