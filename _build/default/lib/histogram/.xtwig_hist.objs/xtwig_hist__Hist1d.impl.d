lib/histogram/hist1d.ml: Array Float List Stdlib
