lib/histogram/edge_hist.ml: Array Format List Printf Sparse_dist Stdlib String
