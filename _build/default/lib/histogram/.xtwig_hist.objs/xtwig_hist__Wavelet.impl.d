lib/histogram/wavelet.ml: Array Float List Stdlib
