lib/histogram/edge_hist.mli: Format Sparse_dist
