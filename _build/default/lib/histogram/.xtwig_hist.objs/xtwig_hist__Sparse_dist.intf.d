lib/histogram/sparse_dist.mli:
