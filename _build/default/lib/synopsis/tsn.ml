module G = Graph_synopsis

let b_stable_ancestors syn n =
  let visited = Hashtbl.create 8 in
  let rec up cur acc =
    if Hashtbl.mem visited cur then List.rev acc
    else begin
      Hashtbl.add visited cur ();
      let acc = cur :: acc in
      match List.find_opt (fun (e : G.edge) -> e.b_stable) (G.in_edges syn cur) with
      | Some e -> up e.src acc
      | None -> List.rev acc
    end
  in
  up n []

let scope_edges syn n =
  let anc = b_stable_ancestors syn n in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun (e : G.edge) -> if e.f_stable then Some (e.src, e.dst) else None)
        (G.out_edges syn a))
    anc

let nodes syn n =
  let anc = b_stable_ancestors syn n in
  let fkids = List.map snd (scope_edges syn n) in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    (anc @ fkids)

let eligible syn n ~src ~dst =
  List.mem (src, dst) (scope_edges syn n)
