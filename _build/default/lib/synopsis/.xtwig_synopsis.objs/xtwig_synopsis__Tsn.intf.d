lib/synopsis/tsn.mli: Graph_synopsis
