lib/synopsis/graph_synopsis.mli: Format Xtwig_xml
