lib/synopsis/graph_synopsis.ml: Array Format Fun Hashtbl List Option Xtwig_xml
