lib/synopsis/tsn.ml: Graph_synopsis Hashtbl List
