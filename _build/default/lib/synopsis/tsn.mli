(** Twig stable neighborhoods (Section 3.2).

    [TSN(n)] is the set of synopsis nodes that (a) reach [n] through a
    chain of B-stable edges (including [n] itself), or (b) are reached
    from an (a)-node by one F-stable edge. Every element of [n]
    provably participates in a document twig touching all of
    [TSN(n)], which is what makes the corresponding edge counts
    well-defined for {e every} element of [n]: a histogram at [n] may
    only carry dimensions for edges inside the neighborhood. *)

val b_stable_ancestors : Graph_synopsis.t -> int -> int list
(** The (a)-set: [n] followed by the chain of nodes reaching it
    through B-stable edges, nearest first. Cycle-safe on synopses of
    recursive documents. *)

val nodes : Graph_synopsis.t -> int -> int list
(** All of [TSN(n)], (a)-set first, then (b)-nodes, deduplicated. *)

val scope_edges : Graph_synopsis.t -> int -> (int * int) list
(** The edges whose counts a histogram at [n] may cover: [(a, z)]
    pairs where [a] is in the (a)-set and [a -> z] is F-stable.
    Deterministically ordered: the edges out of [n] first (nearest
    ancestor last), each group sorted by destination id. *)

val eligible : Graph_synopsis.t -> int -> src:int -> dst:int -> bool
(** Whether one specific edge may appear in [n]'s histogram scope. *)
