open Xtwig_path.Path_types
module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module Prng = Xtwig_util.Prng

type spec = {
  n_queries : int;
  min_nodes : int;
  max_nodes : int;
  branch_prob : float;
  value_pred_frac : float;
  value_range_frac : float;
  descendant_root_prob : float;
  max_path_steps : int;
  leaf_roots : bool;
}

let paper_p =
  {
    n_queries = 1000;
    min_nodes = 4;
    max_nodes = 8;
    branch_prob = 0.4;
    value_pred_frac = 0.0;
    value_range_frac = 0.1;
    descendant_root_prob = 0.5;
    max_path_steps = 2;
    leaf_roots = false;
  }

let paper_pv = { paper_p with value_pred_frac = 0.5 }

let simple_paths =
  {
    paper_p with
    n_queries = 500;
    branch_prob = 0.0;
    descendant_root_prob = 0.3;
    max_path_steps = 2;
  }

(* Mutable twig under construction; [witness] is the document element
   the node's bindings are guaranteed to contain. *)
type mnode = {
  mutable mpath : path;
  mutable msubs : mnode list;
  witness : Doc.node;
}

let rec freeze m = { path = m.mpath; subs = List.map freeze m.msubs }

let rec all_mnodes m = m :: List.concat_map all_mnodes m.msubs

(* Fraction of parent-tag elements having at least one child of a
   given tag: branching predicates drawn on optional tags (fraction
   well below 1) actually select something, where a predicate on a
   mandatory tag is vacuous. *)
let optionality doc =
  let with_child = Hashtbl.create 64 in
  let parents = Hashtbl.create 64 in
  Doc.iter doc (fun e ->
      let pt = Doc.tag doc e in
      Hashtbl.replace parents pt
        (1 + Option.value ~default:0 (Hashtbl.find_opt parents pt));
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun k ->
          let ct = Doc.tag doc k in
          if not (Hashtbl.mem seen ct) then begin
            Hashtbl.add seen ct ();
            Hashtbl.replace with_child (pt, ct)
              (1 + Option.value ~default:0 (Hashtbl.find_opt with_child (pt, ct)))
          end)
        (Doc.children doc e));
  fun pt ct ->
    match (Hashtbl.find_opt with_child (pt, ct), Hashtbl.find_opt parents pt) with
    | Some w, Some p -> float_of_int w /. float_of_int p
    | _ -> 0.0

(* Numeric value domain per tag. *)
let numeric_domains doc =
  let tbl = Hashtbl.create 32 in
  Doc.iter doc (fun e ->
      match Value.as_float (Doc.value doc e) with
      | None -> ()
      | Some v -> (
          let t = Doc.tag doc e in
          match Hashtbl.find_opt tbl t with
          | None -> Hashtbl.replace tbl t (v, v)
          | Some (lo, hi) ->
              Hashtbl.replace tbl t (Stdlib.min lo v, Stdlib.max hi v)));
  tbl

let root_path_of prng spec doc w =
  let labels = Doc.label_path doc w in
  if Prng.chance prng spec.descendant_root_prob then begin
    (* '//'-anchored suffix of the witness's path *)
    let n = List.length labels in
    let keep = Stdlib.min n (Prng.int_range prng 1 2) in
    let suffix = List.filteri (fun i _ -> i >= n - keep) labels in
    match suffix with
    | [] -> [ step ~axis:Descendant (Doc.tag_name doc w) ]
    | first :: rest -> step ~axis:Descendant first :: List.map (fun l -> step l) rest
  end
  else List.map (fun l -> step l) labels

(* A 1-2 step child path starting under [e], with its witness. [used]
   tracks tags already grown from [e] so queries favour distinct child
   tags (repeats stay possible — pairing two [actor] variables is a
   legitimate and interesting twig). *)
let grow_path prng spec doc e ~used =
  let kids = Doc.children doc e in
  if Array.length kids = 0 then None
  else begin
    let occurrences t = List.length (List.filter (fun u -> u = t) used) in
    let fresh =
      Array.of_list
        (List.filter
           (fun k -> occurrences (Doc.tag doc k) = 0)
           (Array.to_list kids))
    in
    (* a tag may recur once (pairing two same-tag variables is the
       intro's motivating twig) but not degenerate into self-join
       powers *)
    let reusable =
      Array.of_list
        (List.filter
           (fun k -> occurrences (Doc.tag doc k) < 2)
           (Array.to_list kids))
    in
    if Array.length fresh = 0 && Array.length reusable = 0 then None
    else
      let c =
        if Array.length fresh > 0 && (Array.length reusable = 0 || not (Prng.chance prng 0.25))
        then Prng.pick prng fresh
        else Prng.pick prng reusable
      in
    let gkids = Doc.children doc c in
    let fan1 =
      float_of_int (Stdlib.max 1 (Doc.children_with_tag doc e (Doc.tag doc c)))
    in
    if
      spec.max_path_steps >= 2
      && Array.length gkids > 0
      && Prng.chance prng 0.35
    then begin
      let g = Prng.pick prng gkids in
      let fan2 =
        float_of_int (Stdlib.max 1 (Doc.children_with_tag doc c (Doc.tag doc g)))
      in
      Some ([ step (Doc.tag_name doc c); step (Doc.tag_name doc g) ], g, fan1 *. fan2)
    end
    else Some ([ step (Doc.tag_name doc c) ], c, fan1)
  end

(* Ascend from a uniformly sampled element toward structurally rich
   ancestors, so twig roots land on elements that can actually fan
   out (a uniform draw lands on leaves most of the time). *)
let pick_witness prng doc start =
  let rec up e hops =
    let enough = Array.length (Doc.children doc e) >= 2 in
    match Doc.parent doc e with
    | None -> e
    | Some p when Doc.parent doc p = None ->
        (* stop below the document root: twigs rooted at the root pair
           its thousands of top-level children multiplicatively and mean
           nothing as queries *)
        ignore enough;
        e
    | Some p ->
        if (not enough) || (hops > 0 && Prng.chance prng 0.45) then up p (hops + 1)
        else e
  in
  up start 0

(* Attach [p] as a branching predicate on the last step of [m]'s path;
   duplicate predicates are vacuous and skipped. *)
let attach_branch m p =
  match List.rev m.mpath with
  | [] -> ()
  | last :: before ->
      if not (List.mem p last.branches) then begin
        let last = { last with branches = last.branches @ [ p ] } in
        m.mpath <- List.rev (last :: before)
      end

(* Attaches 1-2 range predicates on twig nodes whose witnesses carry
   numeric values; returns whether at least one was attached. *)
let add_value_preds prng spec doc domains root =
  let nodes = all_mnodes root in
  let candidates =
    List.filter_map
      (fun m ->
        match Value.as_float (Doc.value doc m.witness) with
        | Some v when Hashtbl.mem domains (Doc.tag doc m.witness) -> Some (m, v)
        | _ -> None)
      nodes
  in
  match candidates with
  | [] -> false
  | _ ->
      let n_preds = Prng.int_range prng 1 2 in
      let arr = Array.of_list candidates in
      Prng.shuffle prng arr;
      Array.iteri
        (fun i (m, v) ->
          if i < n_preds then begin
            let lo_d, hi_d = Hashtbl.find domains (Doc.tag doc m.witness) in
            let span = Stdlib.max 1.0 ((hi_d -. lo_d) *. spec.value_range_frac) in
            (* a random window of the domain containing the witness *)
            let off = Prng.float prng span in
            let lo = v -. off in
            let hi = lo +. span in
            match List.rev m.mpath with
            | [] -> ()
            | last :: before ->
                let last = { last with vpred = Some (Range (lo, hi)) } in
                m.mpath <- List.rev (last :: before)
          end)
        arr;
      true

let gen_one prng spec doc domains ~opt_frac ~focus_elems =
  let start =
    match focus_elems with
    | Some arr when Array.length arr > 0 && Prng.chance prng 0.8 ->
        Prng.pick prng arr
    | _ -> Prng.int prng (Doc.size doc)
  in
  let w = if spec.leaf_roots then start else pick_witness prng doc start in
  let root = { mpath = root_path_of prng spec doc w; msubs = []; witness = w } in
  let target = Prng.int_range prng spec.min_nodes spec.max_nodes in
  let size = ref 1 in
  let frontier = ref [ root ] in
  let used : (Doc.node, Doc.tag list) Hashtbl.t = Hashtbl.create 8 in
  let attempts = ref 0 in
  (* rough upper bound on the query's result cardinality: number of
     same-tag root candidates times the witness fanouts of every grown
     edge; growth stops before the bound explodes, keeping workloads in
     the paper's "thousands of tuples" territory *)
  let est_card =
    ref (float_of_int (Array.length (Doc.nodes_with_tag doc (Doc.tag doc w))))
  in
  let card_cap = 2e5 in
  while !size < target && !frontier <> [] && !attempts < 50 do
    incr attempts;
    (* chain bias: extend the most recent node most of the time, so
       fanouts land near the paper's 1.6-2.0 averages *)
    let idx =
      let n = List.length !frontier in
      if Prng.chance prng 0.7 then 0 else Prng.int prng n
    in
    let m = List.nth !frontier idx in
    let used_tags = Option.value ~default:[] (Hashtbl.find_opt used m.witness) in
    match grow_path prng spec doc m.witness ~used:used_tags with
    | None -> frontier := List.filteri (fun i _ -> i <> idx) !frontier
    | Some (p, witness, fanout) ->
        (match p with
        | s :: _ -> (
            match Doc.tag_of_string doc s.label with
            | Some t -> Hashtbl.replace used m.witness (t :: used_tags)
            | None -> ())
        | [] -> ());
        (* a grown edge becomes a branching predicate when the dice say
           so AND it is informative (selective on its parent tag) —
           vacuous predicates on mandatory children teach nothing *)
        let informative =
          match p with
          | s :: _ -> (
              match Doc.tag_of_string doc s.label with
              | Some ct -> opt_frac (Doc.tag doc m.witness) ct < 0.95
              | None -> false)
          | [] -> false
        in
        if
          spec.branch_prob > 0.0
          && Prng.chance prng
               (if informative then spec.branch_prob else spec.branch_prob /. 4.0)
        then attach_branch m p
        else if !est_card *. fanout > card_cap then begin
          (* too heavy as a binding child: keep it as an (existential)
             predicate instead so the query still gains structure —
             unless the workload forbids branches entirely *)
          if spec.branch_prob > 0.0 then attach_branch m p
        end
        else begin
          est_card := !est_card *. fanout;
          let child = { mpath = p; msubs = []; witness } in
          m.msubs <- m.msubs @ [ child ];
          incr size;
          frontier := child :: !frontier
        end
  done;
  if !size < spec.min_nodes then None
  else if spec.value_pred_frac > 0.0 && Prng.chance prng spec.value_pred_frac then
    (* this query was drawn to carry value predicates: retry from a
       different witness if none can be attached, so the workload hits
       the configured fraction (the paper fixes it at exactly half) *)
    if add_value_preds prng spec doc domains root then Some (freeze root) else None
  else Some (freeze root)

let generate ?(focus = []) spec prng doc =
  let domains = numeric_domains doc in
  let opt_frac = optionality doc in
  let focus_elems =
    match focus with
    | [] -> None
    | labels ->
        let tags = List.filter_map (Doc.tag_of_string doc) labels in
        let elems = List.concat_map (fun t -> Array.to_list (Doc.nodes_with_tag doc t)) tags in
        Some (Array.of_list elems)
  in
  let out = ref [] in
  let n = ref 0 in
  let attempts = ref 0 in
  while !n < spec.n_queries && !attempts < spec.n_queries * 30 do
    incr attempts;
    match gen_one prng spec doc domains ~opt_frac ~focus_elems with
    | Some t ->
        out := t :: !out;
        incr n
    | None -> ()
  done;
  List.rev !out

let generate_negative spec prng doc =
  let positives = generate spec prng doc in
  List.map
    (fun t ->
      (* poison one label on a random twig node's last step *)
      let rec poison i t =
        if i = 0 then
          match List.rev t.path with
          | [] -> t
          | last :: before ->
              {
                t with
                path = List.rev ({ last with label = "zz_" ^ last.label } :: before);
              }
        else
          match t.subs with
          | [] -> poison 0 t
          | s :: rest -> { t with subs = poison (i - 1) s :: rest }
      in
      poison (Prng.int prng (Stdlib.max 1 (twig_size t))) t)
    positives

let characteristics doc queries =
  let cards =
    List.map (fun q -> float_of_int (Xtwig_eval.Eval_twig.selectivity doc q)) queries
  in
  let fanouts = List.concat_map (fun q -> twig_fanouts q) queries in
  ( Xtwig_util.Stats.mean_list cards,
    Xtwig_util.Stats.mean_list (List.map float_of_int fanouts) )
