lib/workload/wgen.ml: Array Hashtbl List Option Stdlib Xtwig_eval Xtwig_path Xtwig_util Xtwig_xml
