lib/workload/wgen.mli: Xtwig_path Xtwig_util Xtwig_xml
