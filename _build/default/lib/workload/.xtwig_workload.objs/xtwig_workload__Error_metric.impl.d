lib/workload/error_metric.ml: Array Float List Stdlib Xtwig_util
