(** Workload generation (Section 6.1).

    Generates "positive" twig queries (non-zero selectivity) by
    sampling witness elements from the document and growing the query
    tree along the witness's actual structure, so positivity holds by
    construction. Configurations mirror the paper's workloads:

    - {!paper_p}: 4-8 twig nodes, branching predicates, no value
      predicates (the P workload);
    - {!paper_pv}: P plus value predicates on half the queries, each a
      random 10% range of the value domain (the P+V workload);
    - {!simple_paths}: twigs of simple child-axis paths, no predicates
      (the CST-comparison workload). *)

type spec = {
  n_queries : int;
  min_nodes : int;
  max_nodes : int;  (** twig nodes per query, uniform *)
  branch_prob : float;
      (** probability a grown edge becomes a branching predicate
          instead of a twig child *)
  value_pred_frac : float;
      (** fraction of queries receiving 1-2 value predicates *)
  value_range_frac : float;  (** width of a range predicate, as a
      fraction of the tag's value domain (the paper uses 0.1) *)
  descendant_root_prob : float;
      (** probability the root path is ['//']-anchored *)
  max_path_steps : int;  (** steps per twig-node path (1-2 typical) *)
  leaf_roots : bool;
      (** root the twig at the sampled element itself (possibly a
          value-carrying leaf) instead of ascending to a structurally
          rich ancestor — used by single-path workloads, where the one
          node must be able to end on a leaf for value predicates to
          exist *)
}

val paper_p : spec
val paper_pv : spec
val simple_paths : spec
(** 500 queries, as in the Section 6.2 CST comparison. *)

val generate :
  ?focus:string list ->
  spec ->
  Xtwig_util.Prng.t ->
  Xtwig_xml.Doc.t ->
  Xtwig_path.Path_types.twig list
(** Non-zero-selectivity queries. [focus] biases witness sampling
    toward elements whose tag is listed (used by XBUILD's
    region-focused scoring workloads). *)

val generate_negative :
  spec -> Xtwig_util.Prng.t -> Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig list
(** Zero-selectivity variants (a positive query with one label
    replaced by a label that never occurs in that context). *)

val characteristics :
  Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig list -> float * float
(** (average true result cardinality, average internal-node fanout) —
    the two rows of Table 2. *)
