(** Abstract syntax of the XPath fragment and of twig queries.

    The paper's path expressions have the form
    [l1{s1}\[b1\]/.../ln{sn}\[bn\]] where [li] is a label, [{si}] an
    optional value predicate and [\[bi\]] an optional branching
    predicate (itself a path that must have at least one match). The
    leading step may also use the descendant axis ['//'].

    A twig query is a node-labeled tree where each node carries the
    path expression that relates its bindings to its parent's
    bindings. *)

type comparison = Lt | Le | Eq | Ne | Ge | Gt

type value_pred =
  | Cmp of comparison * Xtwig_xml.Value.t
      (** [. op v] — numeric comparison when both sides are numeric,
          string comparison otherwise. *)
  | Range of float * float
      (** [. in lo .. hi], inclusive on both ends — the paper's P+V
          workloads use random 10% ranges of the value domain. *)

type axis = Child | Descendant

type step = {
  axis : axis;
  label : string;
  vpred : value_pred option;
  branches : path list;
      (** Branching predicates: each must have at least one match
          below the element bound at this step. *)
}

and path = step list
(** Non-empty list of navigation steps. *)

type twig = { path : path; subs : twig list }
(** A twig node: [path] is evaluated from the parent node's bindings
    (from the document root for the query root). *)

(** {1 Constructors} *)

val step :
  ?axis:axis -> ?vpred:value_pred -> ?branches:path list -> string -> step
(** [step l] is a child-axis step across label [l]. *)

val path_of_labels : string list -> path
(** Simple child-axis path, no predicates. *)

val twig : path -> twig list -> twig

(** {1 Shape accessors} *)

val twig_size : twig -> int
(** Number of twig nodes. *)

val twig_fanouts : twig -> int list
(** Fanout of every internal (non-leaf) twig node — the "Avg. Fanout"
    statistic of Table 2. *)

val twig_fold : twig -> init:'a -> f:('a -> twig -> 'a) -> 'a
(** Pre-order fold over twig nodes. *)

val path_has_value_pred : path -> bool
val twig_has_value_pred : twig -> bool
val twig_has_branches : twig -> bool

val twig_labels : twig -> string list
(** All labels mentioned anywhere in the query (steps and branches),
    without duplicates. *)

val equal_twig : twig -> twig -> bool
val compare_twig : twig -> twig -> int
