lib/pathlang/path_types.mli: Xtwig_xml
