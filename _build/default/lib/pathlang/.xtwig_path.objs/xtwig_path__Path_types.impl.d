lib/pathlang/path_types.ml: Hashtbl List Stdlib Xtwig_xml
