lib/pathlang/path_parser.mli: Path_types
