lib/pathlang/path_printer.mli: Format Path_types
