lib/pathlang/path_printer.ml: Buffer Format List Path_types Printf String Xtwig_xml
