lib/pathlang/path_parser.ml: Buffer Float List Path_types Printf String Xtwig_xml
