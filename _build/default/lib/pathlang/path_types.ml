type comparison = Lt | Le | Eq | Ne | Ge | Gt

type value_pred =
  | Cmp of comparison * Xtwig_xml.Value.t
  | Range of float * float

type axis = Child | Descendant

type step = {
  axis : axis;
  label : string;
  vpred : value_pred option;
  branches : path list;
}

and path = step list

type twig = { path : path; subs : twig list }

let step ?(axis = Child) ?vpred ?(branches = []) label =
  { axis; label; vpred; branches }

let path_of_labels labels =
  assert (labels <> []);
  List.map (fun l -> step l) labels

let twig path subs = { path; subs }

let rec twig_size t = 1 + List.fold_left (fun acc s -> acc + twig_size s) 0 t.subs

let twig_fanouts t =
  let rec go t acc =
    let acc = if t.subs = [] then acc else List.length t.subs :: acc in
    List.fold_left (fun acc s -> go s acc) acc t.subs
  in
  List.rev (go t [])

let twig_fold t ~init ~f =
  let rec go acc t = List.fold_left go (f acc t) t.subs in
  go init t

let rec path_has_value_pred p =
  List.exists
    (fun s -> s.vpred <> None || List.exists path_has_value_pred s.branches)
    p

let twig_has_value_pred t =
  twig_fold t ~init:false ~f:(fun acc n -> acc || path_has_value_pred n.path)

let twig_has_branches t =
  twig_fold t ~init:false ~f:(fun acc n ->
      acc || List.exists (fun s -> s.branches <> []) n.path)

let twig_labels t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      out := l :: !out
    end
  in
  let rec go_path p =
    List.iter
      (fun s ->
        add s.label;
        List.iter go_path s.branches)
      p
  in
  let rec go_twig t =
    go_path t.path;
    List.iter go_twig t.subs
  in
  go_twig t;
  List.rev !out

let compare_twig = Stdlib.compare
let equal_twig a b = compare_twig a b = 0
