(** Parser for the concrete syntax of paths and twig queries.

    Path syntax (grammar, informally):
    {v
      path      ::= ("/" | "//")? segment (("/" | "//") segment)*
      segment   ::= label pred*
      pred      ::= "[" value-pred "]" | "[" rel-path "]"
      value-pred::= "." cmp literal | "." "in" number ".." number
      cmp       ::= "<" | "<=" | "=" | "!=" | ">=" | ">"
      literal   ::= number | quoted-string
    v}
    A leading ["//"] (or an interior one) makes the following step use
    the descendant axis.

    Twig syntax is a for-clause:
    {v
      for t0 in //movie[genre], t1 in t0/actor, t2 in t0/producer
    v}
    The [for] keyword is optional; bindings are separated by [','] or
    [';']; each non-first binding must start with a previously bound
    variable. A trailing [return ...] clause is ignored. *)

exception Parse_error of string

val path_of_string : string -> Path_types.path
(** Raises {!Parse_error} on malformed input. *)

val twig_of_string : string -> Path_types.twig
(** Raises {!Parse_error} on malformed input, including re-bound or
    unbound variables. *)
