open Path_types

let comparison_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="
  | Ne -> "!="
  | Ge -> ">="
  | Gt -> ">"

let value_to_syntax (v : Xtwig_xml.Value.t) =
  match v with
  | Null -> "\"\""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Text s -> Printf.sprintf "%S" s

let value_pred_to_string = function
  | Cmp (op, v) ->
      Printf.sprintf ". %s %s" (comparison_to_string op) (value_to_syntax v)
  | Range (lo, hi) -> Printf.sprintf ". in %.6g .. %.6g" lo hi

let rec step_to_string s =
  let buf = Buffer.create 16 in
  Buffer.add_string buf s.label;
  (match s.vpred with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf "[%s]" (value_pred_to_string p)));
  List.iter
    (fun b -> Buffer.add_string buf (Printf.sprintf "[%s]" (path_to_string_rel b)))
    s.branches;
  Buffer.contents buf

and path_to_string_rel p =
  String.concat ""
    (List.mapi
       (fun i s ->
         let sep =
           match (i, s.axis) with
           | 0, Child -> ""
           | 0, Descendant -> "//"
           | _, Child -> "/"
           | _, Descendant -> "//"
         in
         sep ^ step_to_string s)
       p)

let path_to_string p =
  match p with
  | [] -> ""
  | first :: _ ->
      let prefix = match first.axis with Child -> "/" | Descendant -> "//" in
      let body =
        String.concat ""
          (List.mapi
             (fun i s ->
               let sep =
                 if i = 0 then ""
                 else match s.axis with Child -> "/" | Descendant -> "//"
               in
               sep ^ step_to_string s)
             p)
      in
      prefix ^ body

let twig_to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "for ";
  let counter = ref 0 in
  let rec go parent t =
    let var = Printf.sprintf "t%d" !counter in
    incr counter;
    if !counter > 1 then Buffer.add_string buf ", ";
    (match parent with
    | None -> Buffer.add_string buf (Printf.sprintf "%s in %s" var (path_to_string t.path))
    | Some pvar ->
        Buffer.add_string buf
          (Printf.sprintf "%s in %s%s%s" var pvar
             (match t.path with
             | { axis = Descendant; _ } :: _ -> "//"
             | _ -> "/")
             (path_to_string_rel_no_axis t.path)));
    List.iter (go (Some var)) t.subs
  and path_to_string_rel_no_axis p =
    String.concat ""
      (List.mapi
         (fun i s ->
           let sep =
             if i = 0 then ""
             else match s.axis with Child -> "/" | Descendant -> "//"
           in
           sep ^ step_to_string s)
         p)
  in
  go None t;
  Buffer.contents buf

let pp_path ppf p = Format.pp_print_string ppf (path_to_string p)
let pp_twig ppf t = Format.pp_print_string ppf (twig_to_string t)
