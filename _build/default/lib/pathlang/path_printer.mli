(** Rendering of paths and twig queries to concrete syntax.

    The output parses back with {!Path_parser} to a structurally equal
    value (the round-trip property tested by the qcheck suite). *)

val comparison_to_string : Path_types.comparison -> string
val value_pred_to_string : Path_types.value_pred -> string
val step_to_string : Path_types.step -> string
val path_to_string : Path_types.path -> string

val twig_to_string : Path_types.twig -> string
(** Renders as a for-clause, e.g.
    [for t0 in //movie, t1 in t0/actor, t2 in t0/producer]. Variables
    are numbered in pre-order. *)

val pp_path : Format.formatter -> Path_types.path -> unit
val pp_twig : Format.formatter -> Path_types.twig -> unit
