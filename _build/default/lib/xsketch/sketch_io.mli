(** Persistence for Twig XSKETCH configurations.

    A built sketch is determined by (document, element partition,
    histogram configuration); the histograms themselves are cheap to
    recompute (one document pass) while {e finding} a good partition
    and configuration is what XBUILD spends minutes on. This module
    saves exactly that product — the partition (run-length encoded)
    and the configuration — in a small, versioned, line-oriented text
    format, and rebuilds the sketch against the same document on load.

    The format embeds the document's element count and tag list as a
    consistency check: loading against a different document is
    refused. *)

exception Format_error of string

val save : Sketch.t -> string -> unit
(** [save sketch path] writes the sketch's partition and
    configuration. *)

val load : Xtwig_xml.Doc.t -> string -> Sketch.t
(** [load doc path] rebuilds the sketch against [doc]. Raises
    {!Format_error} on malformed input or a document mismatch, and
    [Sys_error] on I/O failure. *)

val to_string : Sketch.t -> string
val of_string : Xtwig_xml.Doc.t -> string -> Sketch.t
