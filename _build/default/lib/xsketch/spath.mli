(** The structural (single-path) XSKETCH baseline.

    Our earlier-work baseline (Polyzotis & Garofalakis, SIGMOD'02)
    estimates single XPath expressions from the synopsis structure
    alone — node counts, edge counts and stabilities — with no edge
    histograms. It is realized here as a Twig XSKETCH stripped of its
    edge histograms, evaluated through the same estimation framework
    (which then degenerates to count propagation under uniformity and
    independence). Used by the single-path comparison experiment of
    Section 6.2. *)

val strip_edge_hists : Sketch.t -> Sketch.t
(** Same synopsis and value histograms, no edge histograms. *)

val estimate_path : Sketch.t -> Xtwig_path.Path_types.path -> float
(** Single-path estimate using structure (and value histograms)
    only. *)

val estimate : Sketch.t -> Xtwig_path.Path_types.twig -> float
(** Twig estimate under the structural model — what a single-path
    XSKETCH would answer if forced to estimate a twig (degenerates to
    full independence across the twig's branches). *)
